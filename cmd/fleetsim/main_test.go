package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunReportAndMetrics(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	out, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	metPath := filepath.Join(dir, "metrics.json")
	if err := run(40, 4, 5*time.Second, time.Second, 2, 1, false, 16, metPath, out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 40 || rep.Ticks != 5 || rep.Observations != 200 {
		t.Fatalf("bad report %+v", rep)
	}
	if rep.Fingerprint == "" || rep.ObsPerSec <= 0 {
		t.Fatalf("report missing derived fields: %+v", rep)
	}
	met, err := os.ReadFile(metPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(met, &snap); err != nil {
		t.Fatal(err)
	}
	if len(met) == 0 {
		t.Fatal("empty metrics dump")
	}
}

func TestRunRejectsBadDurations(t *testing.T) {
	if err := run(4, 2, 0, time.Second, 0, 1, false, 0, "", os.Stdout); err == nil {
		t.Error("zero duration accepted")
	}
	if err := run(4, 2, time.Second, 0, 0, 1, false, 0, "", os.Stdout); err == nil {
		t.Error("zero tick accepted")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func baseOpts() options {
	return options{
		Sessions: 40,
		Shards:   4,
		Duration: 5 * time.Second,
		Tick:     time.Second,
		Workers:  2,
		Seed:     1,
		Traffic:  "uniform",
	}
}

func runToReport(t *testing.T, o options) report {
	t.Helper()
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	out, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunReportAndMetrics(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	out, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.ChunkBytes = 16
	o.Metrics = filepath.Join(dir, "metrics.json")
	if err := run(o, out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 40 || rep.Ticks != 5 || rep.Observations != 200 {
		t.Fatalf("bad report %+v", rep)
	}
	if rep.Fingerprint == "" || rep.ObsPerSec <= 0 {
		t.Fatalf("report missing derived fields: %+v", rep)
	}
	met, err := os.ReadFile(o.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(met, &snap); err != nil {
		t.Fatal(err)
	}
	if len(met) == 0 {
		t.Fatal("empty metrics dump")
	}
}

// TestChurnFingerprintMatchesBaseline is the command-level determinism
// check: a churny, snapshotting run reports the same fingerprint as the
// plain run.
func TestChurnFingerprintMatchesBaseline(t *testing.T) {
	base := runToReport(t, baseOpts())
	churny := baseOpts()
	churny.ChurnRate = 1.5
	churny.SnapshotEvery = 2
	rep := runToReport(t, churny)
	if rep.Fingerprint != base.Fingerprint {
		t.Fatalf("churn run fingerprint %s, baseline %s", rep.Fingerprint, base.Fingerprint)
	}
	if rep.Disconnects == 0 || rep.Reconnects != rep.Disconnects {
		t.Fatalf("churn accounting off: %d disconnects, %d reconnects", rep.Disconnects, rep.Reconnects)
	}
	if rep.SnapshotBytes == 0 {
		t.Fatalf("snapshot round trips reported zero bytes")
	}
}

// TestTrafficAndDeviceClassFlags checks the scenario knobs change the run
// (different traffic → different fingerprint) without breaking it.
func TestTrafficAndDeviceClassFlags(t *testing.T) {
	// Launch-gap draws only diverge once launches fire, so give the run
	// enough rounds for every session's schedule to trigger repeatedly.
	long := baseOpts()
	long.Duration = 2 * time.Minute
	base := runToReport(t, long)
	for _, traffic := range []string{"bursty", "diurnal", "adversarial"} {
		o := long
		o.Traffic = traffic
		rep := runToReport(t, o)
		if rep.Traffic != traffic {
			t.Errorf("traffic %q reported as %q", traffic, rep.Traffic)
		}
		if rep.Fingerprint == base.Fingerprint {
			t.Errorf("traffic %q produced the uniform fingerprint", traffic)
		}
	}
	o := long
	o.DeviceClasses = true
	rep := runToReport(t, o)
	if rep.Fingerprint == base.Fingerprint {
		t.Errorf("heterogeneous device classes produced the homogeneous fingerprint")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	cases := map[string]func(o *options){
		"zero duration": func(o *options) { o.Duration = 0 },
		"zero tick":     func(o *options) { o.Tick = 0 },
		"bad traffic":   func(o *options) { o.Traffic = "nope" },
		"neg churn":     func(o *options) { o.ChurnRate = -1 },
		"neg snapshot":  func(o *options) { o.SnapshotEvery = -2 },
	}
	for name, corrupt := range cases {
		o := baseOpts()
		corrupt(&o)
		if err := run(o, os.Stdout); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// Command fleetsim runs the deterministic multi-device fleet simulation:
// thousands of concurrent sessions, each a full affect-control stack
// (hysteresis manager, decoder-mode policy, emotional background manager),
// with per-shard coalesced int8 classification.
//
// Usage:
//
//	fleetsim [-sessions N] [-shards N] [-duration D] [-tick D] [-workers N]
//	         [-seed N] [-serial] [-chunk-bytes N] [-metrics path]
//
// The run advances duration/tick observation rounds of virtual time and
// prints an aggregate JSON report (throughput, switches, launches, kills,
// batching) to stdout. Results are bit-identical at any -workers count;
// -metrics additionally dumps the library observability snapshot ("-" =
// stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"affectedge"
	"affectedge/internal/fleet"
	"affectedge/internal/parallel"
)

// report is the machine-readable run summary.
type report struct {
	fleet.Stats
	Workers     int     `json:"workers"`
	Seed        int64   `json:"seed"`
	SerialInfer bool    `json:"serial_infer"`
	ChunkBytes  int     `json:"chunk_bytes"`
	ObsPerSec   float64 `json:"observations_per_sec"`
	Fingerprint string  `json:"fingerprint"`
}

func main() {
	sessions := flag.Int("sessions", 2000, "simulated device sessions")
	shards := flag.Int("shards", 8, "lock stripes / batching domains")
	duration := flag.Duration("duration", 10*time.Second, "virtual time to simulate")
	tick := flag.Duration("tick", time.Second, "virtual time per observation round")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores); results are identical at any value")
	seed := flag.Int64("seed", 1, "fleet seed")
	serial := flag.Bool("serial", false, "per-session serial inference instead of coalesced batches (same results, slower)")
	chunkBytes := flag.Int("chunk-bytes", 0, "drive sessions with chunked streaming ingest in this byte granularity (0 = whole-buffer; fingerprints are identical either way)")
	metrics := flag.String("metrics", "", `write a JSON metrics dump here after the run ("-" = stdout)`)
	flag.Parse()

	if err := run(*sessions, *shards, *duration, *tick, *workers, *seed, *serial, *chunkBytes, *metrics, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func run(sessions, shards int, duration, tick time.Duration, workers int, seed int64, serial bool, chunkBytes int, metrics string, out *os.File) error {
	if tick <= 0 {
		return fmt.Errorf("tick %v, want > 0", tick)
	}
	ticks := int(duration / tick)
	if ticks <= 0 {
		return fmt.Errorf("duration %v shorter than one %v tick", duration, tick)
	}
	if workers > 0 {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
	}
	var reg *affectedge.MetricsRegistry
	if metrics != "" {
		reg = affectedge.NewMetricsRegistry()
		affectedge.WireMetrics(reg)
		defer affectedge.WireMetrics(nil)
	}
	st, err := fleet.Run(fleet.Config{
		Sessions:    sessions,
		Shards:      shards,
		Ticks:       ticks,
		TickEvery:   tick,
		Seed:        seed,
		SerialInfer: serial,
		ChunkBytes:  chunkBytes,
	})
	if err != nil {
		return err
	}
	rep := report{
		Stats:       *st,
		Workers:     workers,
		Seed:        seed,
		SerialInfer: serial,
		ChunkBytes:  chunkBytes,
		ObsPerSec:   float64(st.Observations) / st.WallTime.Seconds(),
		Fingerprint: st.Fingerprint(),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if metrics != "" {
		return affectedge.DumpMetrics(reg, metrics)
	}
	return nil
}

// Command fleetsim runs the deterministic multi-device fleet simulation:
// thousands of concurrent sessions, each a full affect-control stack
// (hysteresis manager, decoder-mode policy, emotional background manager),
// with per-shard coalesced int8 classification.
//
// Usage:
//
//	fleetsim [-sessions N] [-shards N] [-duration D] [-tick D] [-workers N]
//	         [-seed N] [-serial] [-chunk-bytes N] [-metrics path]
//	         [-traffic uniform|bursty|diurnal|adversarial]
//	         [-churn-rate R] [-snapshot-every N] [-device-classes]
//
// The run advances duration/tick observation rounds of virtual time and
// prints an aggregate JSON report (throughput, switches, launches, kills,
// batching) to stdout. Results are bit-identical at any -workers count;
// -metrics additionally dumps the library observability snapshot ("-" =
// stdout).
//
// -churn-rate R disconnects on average R sessions per tick (reconnecting
// parked ones at the same rate) and -snapshot-every N round-trips the
// whole fleet through its gob snapshot every N ticks; every disconnected
// session reconnects before the final stats, so the reported fingerprint
// is identical to the churn-free run — the session-lifecycle determinism
// contract, exercised from the command line.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"affectedge"
	"affectedge/internal/android"
	"affectedge/internal/fleet"
	"affectedge/internal/parallel"
)

// options carries the flag set into run.
type options struct {
	Sessions      int
	Shards        int
	Duration      time.Duration
	Tick          time.Duration
	Workers       int
	Seed          int64
	Serial        bool
	ChunkBytes    int
	Metrics       string
	Traffic       string
	ChurnRate     float64
	SnapshotEvery int
	DeviceClasses bool
}

// report is the machine-readable run summary.
type report struct {
	fleet.Stats
	Workers       int     `json:"workers"`
	Seed          int64   `json:"seed"`
	SerialInfer   bool    `json:"serial_infer"`
	ChunkBytes    int     `json:"chunk_bytes"`
	Traffic       string  `json:"traffic"`
	ChurnRate     float64 `json:"churn_rate"`
	Disconnects   int64   `json:"disconnects"`
	Reconnects    int64   `json:"reconnects"`
	SnapshotEvery int     `json:"snapshot_every"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	ObsPerSec     float64 `json:"observations_per_sec"`
	Fingerprint   string  `json:"fingerprint"`
}

func main() {
	var o options
	flag.IntVar(&o.Sessions, "sessions", 2000, "simulated device sessions")
	flag.IntVar(&o.Shards, "shards", 8, "lock stripes / batching domains")
	flag.DurationVar(&o.Duration, "duration", 10*time.Second, "virtual time to simulate")
	flag.DurationVar(&o.Tick, "tick", time.Second, "virtual time per observation round")
	flag.IntVar(&o.Workers, "workers", 0, "parallel workers (0 = all cores); results are identical at any value")
	flag.Int64Var(&o.Seed, "seed", 1, "fleet seed")
	flag.BoolVar(&o.Serial, "serial", false, "per-session serial inference instead of coalesced batches (same results, slower)")
	flag.IntVar(&o.ChunkBytes, "chunk-bytes", 0, "drive sessions with chunked streaming ingest in this byte granularity (0 = whole-buffer; fingerprints are identical either way)")
	flag.StringVar(&o.Metrics, "metrics", "", `write a JSON metrics dump here after the run ("-" = stdout)`)
	flag.StringVar(&o.Traffic, "traffic", "uniform", "traffic model: uniform|bursty|diurnal|adversarial")
	flag.Float64Var(&o.ChurnRate, "churn-rate", 0, "mean sessions disconnected (and parked ones reconnected) per tick; all reconnect before the final stats")
	flag.IntVar(&o.SnapshotEvery, "snapshot-every", 0, "round-trip the fleet through its gob snapshot every N ticks (0 = never)")
	flag.BoolVar(&o.DeviceClasses, "device-classes", false, "heterogeneous shards: cycle budget/mid/flagship hardware classes across shards")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func run(o options, out *os.File) error {
	if o.Tick <= 0 {
		return fmt.Errorf("tick %v, want > 0", o.Tick)
	}
	ticks := int(o.Duration / o.Tick)
	if ticks <= 0 {
		return fmt.Errorf("duration %v shorter than one %v tick", o.Duration, o.Tick)
	}
	if o.ChurnRate < 0 {
		return fmt.Errorf("churn rate %g, want >= 0", o.ChurnRate)
	}
	if o.SnapshotEvery < 0 {
		return fmt.Errorf("snapshot every %d, want >= 0", o.SnapshotEvery)
	}
	traffic, err := fleet.TrafficByName(o.Traffic)
	if err != nil {
		return err
	}
	if o.Workers > 0 {
		defer parallel.SetWorkers(parallel.SetWorkers(o.Workers))
	}
	var reg *affectedge.MetricsRegistry
	if o.Metrics != "" {
		reg = affectedge.NewMetricsRegistry()
		affectedge.WireMetrics(reg)
		defer affectedge.WireMetrics(nil)
	}
	cfg := fleet.Config{
		Sessions:    o.Sessions,
		Shards:      o.Shards,
		Ticks:       ticks,
		TickEvery:   o.Tick,
		Seed:        o.Seed,
		SerialInfer: o.Serial,
		ChunkBytes:  o.ChunkBytes,
		Traffic:     traffic,
	}
	if o.DeviceClasses {
		for _, dc := range android.DeviceClasses() {
			cfg.Profiles = append(cfg.Profiles, fleet.ShardProfile{Device: dc})
		}
	}

	start := time.Now()
	var st *fleet.Stats
	rep := report{
		Workers:       o.Workers,
		Seed:          o.Seed,
		SerialInfer:   o.Serial,
		ChunkBytes:    o.ChunkBytes,
		Traffic:       traffic.Name(),
		ChurnRate:     o.ChurnRate,
		SnapshotEvery: o.SnapshotEvery,
	}
	if o.ChurnRate > 0 || o.SnapshotEvery > 0 {
		st, err = runChurn(cfg, o, ticks, &rep)
	} else {
		f, ferr := fleet.New(cfg)
		if ferr != nil {
			return ferr
		}
		st, err = f.RunTicks(ticks)
	}
	if err != nil {
		return err
	}
	st.WallTime = time.Since(start)

	rep.Stats = *st
	rep.ObsPerSec = float64(st.Observations) / st.WallTime.Seconds()
	rep.Fingerprint = st.Fingerprint()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if o.Metrics != "" {
		return affectedge.DumpMetrics(reg, o.Metrics)
	}
	return nil
}

// runChurn drives the fleet tick by tick under a seeded churn schedule:
// each round it disconnects (or reconnects) sessions at the configured
// rate, periodically round-trips the whole fleet through its snapshot, and
// reconnects everything at the end — so the final fingerprint matches the
// churn-free run exactly.
func runChurn(cfg fleet.Config, o options, ticks int, rep *report) (*fleet.Stats, error) {
	f, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	churn := rand.New(rand.NewSource(o.Seed + 0x5eed))
	parked := map[int]bool{}
	var buf bytes.Buffer
	for t := 0; t < ticks; t++ {
		if _, err := f.RunTicks(1); err != nil {
			return nil, err
		}
		ops := int(o.ChurnRate)
		if churn.Float64() < o.ChurnRate-float64(ops) {
			ops++
		}
		for i := 0; i < ops; i++ {
			id := churn.Intn(o.Sessions)
			if parked[id] {
				if err := f.Reconnect(id); err != nil {
					return nil, err
				}
				delete(parked, id)
				rep.Reconnects++
			} else {
				if err := f.Disconnect(id); err != nil {
					return nil, err
				}
				parked[id] = true
				rep.Disconnects++
			}
		}
		if o.SnapshotEvery > 0 && (t+1)%o.SnapshotEvery == 0 {
			buf.Reset()
			if err := f.Snapshot(&buf); err != nil {
				return nil, err
			}
			rep.SnapshotBytes = int64(buf.Len())
			if err := f.Restore(&buf); err != nil {
				return nil, err
			}
		}
	}
	for id := range parked {
		if err := f.Reconnect(id); err != nil {
			return nil, err
		}
		rep.Reconnects++
	}
	return f.Stats(), nil
}

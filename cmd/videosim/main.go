// Command videosim exercises the affect-adaptive H.264 decoder: it
// encodes a synthetic clip, decodes it in every operating mode (or a
// custom S_th/f point), and reports power, quality, and deletion
// statistics.
//
// Usage:
//
//	videosim [-frames N] [-qp N] [-sth N] [-f N] [-seed N] [-workers N] [-metrics path]
//
// -metrics dumps the decoder observability snapshot (NAL units seen and
// dropped, bytes skipped, deblock transitions, pre-store high water) as
// JSON after the run; "-" writes to stdout. -workers sizes the worker
// pool the four operating modes decode on; output is byte-identical at
// any worker count (0 keeps the default pool size).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"affectedge"
	"affectedge/internal/h264"
	"affectedge/internal/parallel"
)

func main() {
	frames := flag.Int("frames", 48, "frames to encode")
	qp := flag.Int("qp", 34, "encoder quantization parameter")
	sth := flag.Int("sth", 0, "custom deletion threshold S_th in bytes (0 = run the four standard modes)")
	f := flag.Int("f", 1, "custom deletion frequency f (with -sth)")
	seed := flag.Int64("seed", 1, "video seed")
	breakdown := flag.Bool("breakdown", false, "print the per-component power breakdown of standard mode")
	metrics := flag.String("metrics", "", `write a JSON metrics dump here after the run ("-" = stdout)`)
	workers := flag.Int("workers", 0, "worker pool size for per-mode parallel decode (0 = default)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	var reg *affectedge.MetricsRegistry
	if *metrics != "" {
		reg = affectedge.NewMetricsRegistry()
		affectedge.WireMetrics(reg)
	}
	err := func() error {
		if *breakdown {
			return runBreakdown(*frames, *qp, *seed)
		}
		return run(*frames, *qp, *sth, *f, *seed)
	}()
	if err == nil && *metrics != "" {
		err = affectedge.DumpMetrics(reg, *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "videosim:", err)
		os.Exit(1)
	}
}

func run(frames, qp, sth, f int, seed int64) error {
	vc := h264.CalibrationVideoConfig(frames)
	vc.Seed = seed
	src, err := h264.GenerateVideo(vc)
	if err != nil {
		return err
	}
	enc := h264.CalibrationEncoderConfig()
	enc.QP = qp
	model := h264.DefaultEnergyModel()

	if sth <= 0 {
		encoder, err := h264.NewEncoder(enc)
		if err != nil {
			return err
		}
		stream, _, err := encoder.EncodeSequence(src)
		if err != nil {
			return err
		}
		stats, err := h264.AnalyzeStream(stream, nil)
		if err != nil {
			return err
		}
		fmt.Printf("bitstream: %s\n", stats)
		reports, err := h264.CompareModes(src, enc, model)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s%12s%12s%10s%10s\n", "mode", "norm power", "saving %", "PSNR dB", "deleted")
		for _, r := range reports {
			fmt.Printf("%-10s%12.3f%12.1f%10s%10d\n",
				r.Mode, r.NormPower, r.SavingPct, psnrString(r.PSNR), r.Deleted)
		}
		return nil
	}

	// Custom deletion point: compare against standard.
	encoder, err := h264.NewEncoder(enc)
	if err != nil {
		return err
	}
	stream, _, err := encoder.EncodeSequence(src)
	if err != nil {
		return err
	}
	std, err := h264.DecodePipeline(stream, h264.ModeStandard)
	if err != nil {
		return err
	}
	units, err := h264.SplitStream(stream)
	if err != nil {
		return err
	}
	kept, st := h264.ApplySelector(units, h264.SelectorConfig{Sth: sth, F: f})
	keptStream, err := h264.MarshalStream(kept)
	if err != nil {
		return err
	}
	dec := h264.NewDecoder()
	frames2, err := dec.DecodeStream(keptStream)
	if err != nil {
		return err
	}
	frames2 = append(frames2, dec.ConcealTo(len(src))...)
	lumaBytes := enc.Width * enc.Height
	eStd := model.Charge(std.Activity, lumaBytes).Total()
	eDel := model.Charge(dec.Activity(), lumaBytes).Total()
	p, err := h264.MeanPSNR(src, frames2)
	if err != nil {
		return err
	}
	fmt.Printf("S_th=%d f=%d: deleted %d/%d units (%d bytes), saving %.1f%%, PSNR %s dB\n",
		sth, f, st.UnitsDeleted, st.UnitsIn, st.BytesDeleted,
		100*(1-eDel/eStd), psnrString(p))
	return nil
}

// runBreakdown prints the standard-mode component energy split (the
// calibration behind Fig 6: deblocking ~31.4% of decoder power).
func runBreakdown(frames, qp int, seed int64) error {
	vc := h264.CalibrationVideoConfig(frames)
	vc.Seed = seed
	src, err := h264.GenerateVideo(vc)
	if err != nil {
		return err
	}
	enc := h264.CalibrationEncoderConfig()
	enc.QP = qp
	encoder, err := h264.NewEncoder(enc)
	if err != nil {
		return err
	}
	stream, _, err := encoder.EncodeSequence(src)
	if err != nil {
		return err
	}
	res, err := h264.DecodePipeline(stream, h264.ModeStandard)
	if err != nil {
		return err
	}
	ledger := h264.DefaultEnergyModel().Charge(res.Activity, enc.Width*enc.Height)
	fmt.Print(ledger)
	model := h264.DefaultCycleModel()
	rep, err := model.Timing(res.Activity, 24)
	if err != nil {
		return err
	}
	fmt.Printf("timing at 24 fps: %.2f Mcycles/frame, min clock %.1f MHz, utilization %.0f%% of %g MHz\n",
		rep.CyclesPerFrame/1e6, rep.MinClockHz/1e6, 100*rep.Utilization, h264.PaperClockHz/1e6)
	return nil
}

func psnrString(p float64) string {
	if math.IsInf(p, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.1f", p)
}

package main

import "testing"

func TestRunStandardModes(t *testing.T) {
	if err := run(12, 34, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomSth(t *testing.T) {
	if err := run(12, 34, 140, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBreakdown(t *testing.T) {
	if err := runBreakdown(12, 34, 1); err != nil {
		t.Fatal(err)
	}
}

// Command appsim runs the §5 app/memory-management case study: a seeded
// 20-minute emotional usage session replayed under the FIFO baseline and
// the emotional background manager, printing Fig 9 process diagrams and
// Fig 10 savings, with optional CSV / Chrome-trace export.
//
// Usage:
//
//	appsim [-seed N] [-width N] [-diagram] [-csv file] [-chrometrace file]
package main

import (
	"flag"
	"fmt"
	"os"

	"affectedge/internal/core"
	"affectedge/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "workload seed")
	width := flag.Int("width", 100, "diagram width in columns")
	diagram := flag.Bool("diagram", true, "print Fig 9 process diagrams")
	csvPath := flag.String("csv", "", "write the emotional manager's event log as CSV")
	chromePath := flag.String("chrometrace", "", "write a Perfetto-compatible JSON trace")
	flag.Parse()

	if err := run(*seed, *width, *diagram, *csvPath, *chromePath); err != nil {
		fmt.Fprintln(os.Stderr, "appsim:", err)
		os.Exit(1)
	}
}

func run(seed int64, width int, diagram bool, csvPath, chromePath string) error {
	cfg := core.DefaultAppStudyConfig()
	cfg.Monkey.Seed = seed
	res, err := core.RunAppStudy(cfg)
	if err != nil {
		return err
	}
	c := res.Comparison
	fmt.Printf("workload: %d launches over %v (12 min excited + 8 min calm)\n\n",
		len(res.Workload.Events), res.Horizon)
	fmt.Printf("%-12s%12s%12s%14s%14s%8s\n", "policy", "cold", "warm", "bytes loaded", "loading time", "kills")
	fmt.Printf("%-12s%12d%12d%14d%14v%8d\n", "baseline",
		c.Baseline.Metrics.ColdStarts, c.Baseline.Metrics.WarmStarts,
		c.Baseline.Metrics.BytesLoaded, c.Baseline.Metrics.LoadingTime.Round(1e7), c.Baseline.Metrics.Kills)
	fmt.Printf("%-12s%12d%12d%14d%14v%8d\n", "emotional",
		c.Emotional.Metrics.ColdStarts, c.Emotional.Metrics.WarmStarts,
		c.Emotional.Metrics.BytesLoaded, c.Emotional.Metrics.LoadingTime.Round(1e7), c.Emotional.Metrics.Kills)
	fmt.Printf("\nFig 10: memory-loading saving %.1f%% (paper 17%%), loading-time saving %.1f%% (paper 12%%)\n\n",
		c.MemorySavingPct, c.TimeSavingPct)

	if diagram {
		fmt.Printf("Fig 9 (top) — default FIFO manager:\n%s\n",
			c.Baseline.Device.Trace().RenderASCII(res.Horizon, width))
		fmt.Printf("Fig 9 (bottom) — emotional manager:\n%s\n",
			c.Emotional.Device.Trace().RenderASCII(res.Horizon, width))
		fmt.Printf("per-app lifecycle (emotional manager):\n%s\n",
			trace.FormatStats(c.Emotional.Device.Trace().Stats(res.Horizon)))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.Emotional.Device.Trace().WriteCSV(f); err != nil {
			return err
		}
		fmt.Println("wrote", csvPath)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.Emotional.Device.Trace().WriteChromeTrace(f, res.Horizon); err != nil {
			return err
		}
		fmt.Println("wrote", chromePath)
	}
	return nil
}

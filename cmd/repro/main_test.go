package main

import "testing"

func TestRunFig7(t *testing.T) {
	// Fig 7 is pure data tables: cheap smoke test of the CLI plumbing.
	if err := run("7", 1, 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig9(t *testing.T) {
	if err := run("9", 1, 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("42", 1, 0, 0, false, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

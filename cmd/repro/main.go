// Command repro regenerates every quantitative figure of the paper and
// prints paper-vs-measured tables.
//
// Usage:
//
//	repro [-fig 3|6|7|9|10|all] [-seed N] [-clips N] [-epochs N] [-paperscale] [-v]
//	      [-metrics path] [-debug-addr host:port]
//
// -paperscale trains the full ~0.5M-parameter classifiers for Fig 3
// (slow); the default reduced models preserve the qualitative ordering.
// -metrics dumps the observability snapshot as JSON after the run ("-"
// writes to stdout); -debug-addr serves /metrics, /debug/vars, and
// /debug/pprof while the run is in flight.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"affectedge"
	"affectedge/internal/obs/obshttp"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 3, 6, 7, 9, 10 or all")
	seed := flag.Int64("seed", 1, "experiment seed")
	clips := flag.Int("clips", 0, "clips per corpus for Fig 3 (0 = default 420)")
	epochs := flag.Int("epochs", 0, "training epochs for Fig 3 (0 = default 14)")
	paperScale := flag.Bool("paperscale", false, "train full paper-size classifiers (slow)")
	verbose := flag.Bool("v", false, "per-model training progress")
	metrics := flag.String("metrics", "", `write a JSON metrics dump here after the run ("-" = stdout)`)
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.Parse()

	var reg *affectedge.MetricsRegistry
	if *metrics != "" || *debugAddr != "" {
		reg = affectedge.NewMetricsRegistry()
		affectedge.WireMetrics(reg)
	}
	if *debugAddr != "" {
		srv, errc := obshttp.Serve(*debugAddr, reg)
		defer srv.Close()
		select {
		case err := <-errc:
			fmt.Fprintln(os.Stderr, "repro: debug server:", err)
			os.Exit(1)
		default:
		}
	}
	if err := run(*fig, *seed, *clips, *epochs, *paperScale, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := affectedge.DumpMetrics(reg, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
}

func run(fig string, seed int64, clips, epochs int, paperScale, verbose bool) error {
	all := fig == "all"
	if all || fig == "3" {
		var progress io.Writer
		if verbose {
			progress = os.Stderr
		}
		rep, err := affectedge.RunFig3(affectedge.Fig3Options{
			ClipsPerCorpus: clips, Epochs: epochs, PaperScale: paperScale,
			Seed: seed, Progress: progress,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep.FormatFig3())
	}
	if all || fig == "6" {
		rep, err := affectedge.RunFig6(seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.FormatFig6())
	}
	if all || fig == "7" {
		fmt.Println(affectedge.RunFig7().FormatFig7())
	}
	if all || fig == "9" {
		rep, err := affectedge.RunFig9(seed, 100)
		if err != nil {
			return err
		}
		fmt.Println(rep.FormatFig9())
	}
	if all || fig == "10" {
		rep, err := affectedge.RunFig10(nil)
		if err != nil {
			return err
		}
		fmt.Println(rep.FormatFig10())
	}
	switch fig {
	case "all", "3", "6", "7", "9", "10":
		return nil
	}
	return fmt.Errorf("unknown figure %q", fig)
}

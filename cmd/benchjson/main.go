// Command benchjson parses `go test -bench` text output into a JSON
// snapshot, so the performance trajectory of the repository stays
// machine-readable across PRs (see `make bench-json`, which writes
// BENCH_<n>.json files).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson [-in file] [-out file]
//
// Every benchmark result line is captured: iterations, ns/op, B/op,
// allocs/op, and any custom b.ReportMetric units (the repo reports
// paper-figure numbers that way).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix trimmed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value ("ns/op", "B/op", "allocs/op", and any
	// custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file-level JSON document.
type Snapshot struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	inPath := flag.String("in", "", "bench output file (default stdin)")
	outPath := flag.String("out", "", "JSON destination (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	snap, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Parse reads `go test -bench` output and collects every result line into
// a snapshot.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
// Non-benchmark lines (headers, PASS/ok, test logs) return ok=false.
func parseLine(line string) (Benchmark, bool) {
	fields := splitFields(line)
	if len(fields) < 2 || len(fields[0]) <= len("Benchmark") ||
		fields[0][:len("Benchmark")] != "Benchmark" {
		return Benchmark{}, false
	}
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil || iters <= 0 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// splitProcs separates the trailing -N GOMAXPROCS suffix from a benchmark
// name; names without one report procs=1.
func splitProcs(name string) (string, int) {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			var n int
			fmt.Sscanf(name[i+1:], "%d", &n)
			if n > 0 {
				return name[:i], n
			}
		}
		break
	}
	return name, 1
}

// splitFields splits on runs of spaces/tabs.
func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}

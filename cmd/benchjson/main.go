// Command benchjson parses `go test -bench` text output into a JSON
// snapshot, so the performance trajectory of the repository stays
// machine-readable across PRs (see `make bench-json`, which writes
// BENCH_<n>.json files).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson [-in file] [-out file]
//	benchjson -compare OLD.json NEW.json
//
// Every benchmark result line is captured: iterations, ns/op, B/op,
// allocs/op, and any custom b.ReportMetric units (the repo reports
// paper-figure numbers that way).
//
// The -compare mode diffs two snapshots (see `make bench-compare`, which
// feeds it the latest two BENCH_<n>.json files) and prints per-benchmark
// ns/op and allocs/op deltas. With -max-regress P it becomes a CI gate:
// any benchmark whose new/old ns/op ratio exceeds 1+P/100 fails the run
// with a nonzero exit (see `make bench-guard`); -match RE restricts the
// gate to benchmark names matching RE, so noisy end-to-end numbers don't
// veto a hot-path guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix trimmed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value ("ns/op", "B/op", "allocs/op", and any
	// custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file-level JSON document.
type Snapshot struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	inPath := flag.String("in", "", "bench output file (default stdin)")
	outPath := flag.String("out", "", "JSON destination (default stdout)")
	compare := flag.Bool("compare", false, "diff two snapshot files: benchjson -compare OLD.json NEW.json")
	maxRegress := flag.Float64("max-regress", 0, "with -compare: fail (exit 1) when any gated benchmark's ns/op grows more than this percentage")
	match := flag.String("match", "", "with -max-regress: regexp restricting the regression gate to matching benchmark names (default: all)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two snapshot files, got %d", flag.NArg()))
		}
		oldSnap, err := loadSnapshot(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		newSnap, err := loadSnapshot(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("comparing %s -> %s\n", flag.Arg(0), flag.Arg(1))
		os.Stdout.WriteString(Compare(oldSnap, newSnap))
		if *maxRegress > 0 {
			var re *regexp.Regexp
			if *match != "" {
				re, err = regexp.Compile(*match)
				if err != nil {
					fatal(fmt.Errorf("-match: %w", err))
				}
			}
			bad := Regressions(oldSnap, newSnap, re, *maxRegress)
			if len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %g%%:\n", len(bad), *maxRegress)
				for _, line := range bad {
					fmt.Fprintln(os.Stderr, " ", line)
				}
				os.Exit(1)
			}
			fmt.Printf("regression gate: ok (max %g%%)\n", *maxRegress)
		}
		return
	}
	if *maxRegress > 0 || *match != "" {
		fatal(fmt.Errorf("-max-regress/-match only apply with -compare"))
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	snap, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// loadSnapshot reads a previously written snapshot JSON file.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// Compare renders a per-benchmark diff of two snapshots. Benchmarks are
// matched by name (first occurrence wins on duplicates); ones present in
// only one snapshot are listed as added or removed. The delta column is
// new/old ns/op, so values below 1.00x are speedups.
func Compare(oldSnap, newSnap *Snapshot) string {
	oldBy := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		if _, ok := oldBy[b.Name]; !ok {
			oldBy[b.Name] = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-52s %14s %14s %8s %11s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "allocs/op")
	seen := map[string]bool{}
	for _, nb := range newSnap.Benchmarks {
		if seen[nb.Name] {
			continue
		}
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-52s %14s %14.0f %8s %11s\n",
				nb.Name, "(added)", nb.Metrics["ns/op"], "", allocsDelta(nb.Metrics, nb.Metrics))
			continue
		}
		ratio := "n/a"
		if o := ob.Metrics["ns/op"]; o > 0 {
			ratio = fmt.Sprintf("%.2fx", nb.Metrics["ns/op"]/o)
		}
		fmt.Fprintf(&sb, "%-52s %14.0f %14.0f %8s %11s\n",
			nb.Name, ob.Metrics["ns/op"], nb.Metrics["ns/op"], ratio, allocsDelta(ob.Metrics, nb.Metrics))
	}
	for _, ob := range oldSnap.Benchmarks {
		if seen[ob.Name] {
			continue
		}
		seen[ob.Name] = true
		fmt.Fprintf(&sb, "%-52s %14.0f %14s\n", ob.Name, ob.Metrics["ns/op"], "(removed)")
	}
	return sb.String()
}

// Regressions lists the benchmarks present in both snapshots (optionally
// restricted to names matching re) whose ns/op grew by more than maxPct
// percent. Added and removed benchmarks never trip the gate — new code
// has no baseline, and deletions are judged in review, not by timing.
func Regressions(oldSnap, newSnap *Snapshot, re *regexp.Regexp, maxPct float64) []string {
	oldBy := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		if _, ok := oldBy[b.Name]; !ok {
			oldBy[b.Name] = b
		}
	}
	limit := 1 + maxPct/100
	var bad []string
	seen := map[string]bool{}
	for _, nb := range newSnap.Benchmarks {
		if seen[nb.Name] {
			continue
		}
		seen[nb.Name] = true
		if re != nil && !re.MatchString(nb.Name) {
			continue
		}
		ob, ok := oldBy[nb.Name]
		if !ok {
			continue
		}
		o, n := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		if o > 0 && n/o > limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx)", nb.Name, o, n, n/o))
		}
	}
	return bad
}

// allocsDelta formats the allocs/op transition, or blank when the metric is
// absent from both snapshots (benchmarks without -benchmem).
func allocsDelta(oldM, newM map[string]float64) string {
	ov, ook := oldM["allocs/op"]
	nv, nok := newM["allocs/op"]
	if !ook && !nok {
		return ""
	}
	if ov == nv {
		return fmt.Sprintf("%.0f", nv)
	}
	return fmt.Sprintf("%.0f->%.0f", ov, nv)
}

// Parse reads `go test -bench` output and collects every result line into
// a snapshot.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
// Non-benchmark lines (headers, PASS/ok, test logs) return ok=false.
func parseLine(line string) (Benchmark, bool) {
	fields := splitFields(line)
	if len(fields) < 2 || len(fields[0]) <= len("Benchmark") ||
		fields[0][:len("Benchmark")] != "Benchmark" {
		return Benchmark{}, false
	}
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil || iters <= 0 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// splitProcs separates the trailing -N GOMAXPROCS suffix from a benchmark
// name; names without one report procs=1.
func splitProcs(name string) (string, int) {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			var n int
			fmt.Sscanf(name[i+1:], "%d", &n)
			if n > 0 {
				return name[:i], n
			}
		}
		break
	}
	return name, 1
}

// splitFields splits on runs of spaces/tabs.
func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}

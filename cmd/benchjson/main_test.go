package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: affectedge/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFFT           	  299716	      4000 ns/op	       0 B/op	       0 allocs/op
BenchmarkMFCC-8        	     674	   1820784 ns/op	  889272 B/op	     831 allocs/op
BenchmarkDatasetParallel/serial-4 	      10	 104000000 ns/op	 5160000 B/op	   13800 allocs/op
BenchmarkFig3bClassifierAccuracy 	       1	32000000000 ns/op	  62.8 NN_acc_% 	  74.2 CNN_acc_%
PASS
ok  	affectedge/internal/dsp	6.502s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	fft := snap.Benchmarks[0]
	if fft.Name != "BenchmarkFFT" || fft.Procs != 1 || fft.Iterations != 299716 {
		t.Errorf("FFT line parsed wrong: %+v", fft)
	}
	if fft.Metrics["ns/op"] != 4000 || fft.Metrics["allocs/op"] != 0 {
		t.Errorf("FFT metrics wrong: %v", fft.Metrics)
	}
	mfcc := snap.Benchmarks[1]
	if mfcc.Name != "BenchmarkMFCC" || mfcc.Procs != 8 {
		t.Errorf("procs suffix not split: %+v", mfcc)
	}
	sub := snap.Benchmarks[2]
	if sub.Name != "BenchmarkDatasetParallel/serial" || sub.Procs != 4 {
		t.Errorf("sub-benchmark name parsed wrong: %+v", sub)
	}
	fig := snap.Benchmarks[3]
	if fig.Metrics["NN_acc_%"] != 62.8 || fig.Metrics["CNN_acc_%"] != 74.2 {
		t.Errorf("custom metrics lost: %v", fig.Metrics)
	}
	if fig.Metrics["ns/op"] != 32000000000 {
		t.Errorf("ns/op wrong: %v", fig.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	snap, err := Parse(strings.NewReader("PASS\nok \tx\t1s\nBenchmark\nBenchmarkBad abc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Errorf("noise lines parsed as benchmarks: %+v", snap.Benchmarks)
	}
}

func TestCompare(t *testing.T) {
	oldSnap := &Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 12}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 50}},
	}}
	newSnap := &Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 250, "allocs/op": 0}},
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 90, "allocs/op": 3}},
	}}
	out := Compare(oldSnap, newSnap)
	for _, want := range []string{
		"BenchmarkA", "0.25x", "12->0",
		"BenchmarkNew", "(added)",
		"BenchmarkGone", "(removed)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNoNsOp(t *testing.T) {
	oldSnap := &Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkZ", Metrics: map[string]float64{"ns/op": 0}},
	}}
	newSnap := &Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkZ", Metrics: map[string]float64{"ns/op": 10}},
	}}
	if out := Compare(oldSnap, newSnap); !strings.Contains(out, "n/a") {
		t.Errorf("zero old ns/op should render n/a ratio:\n%s", out)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX-8/sub-2", "BenchmarkX-8/sub", 2},
		{"BenchmarkFFT1024", "BenchmarkFFT1024", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}

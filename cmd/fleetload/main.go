// Command fleetload drives the TCP ingest server with N concurrent
// window-1 sessions of deterministic seeded traffic and reports
// throughput and ingest-latency percentiles.
//
// Usage:
//
//	fleetload [-addr host:port] [-sessions N] [-obs N] [-shards N]
//	          [-seed N] [-chunk-every N] [-batch N] [-window N] [-linger D]
//	          [-max-batch N] [-queue-depth N] [-timeout D] [-dial-burst N]
//	          [-verify] [-control addr] [-metrics path]
//
// -batch N switches the clients to pipelined batching: observations
// accumulate into OBSERVE_BATCH frames of N, up to -window frames ride
// the wire unacknowledged, and the coalesced ACK_BATCH bitmaps drive
// per-item retry. The latency percentiles then report the *amortized*
// per-observation cost (round trip / batch size), and the report adds
// "amortized_us_per_obs" (histogram mean) plus the batching knobs.
//
// With no -addr, fleetload builds an in-process fleet, serves it on a
// loopback socket, and aims the load at itself — the self-contained
// stress mode the acceptance run uses (10k+ concurrent sessions, every
// observation retried through backpressure until ACKed, so a clean run
// reports zero unexpected drops). -addr aims the same traffic at an
// external server instead; the report then carries client-side numbers
// only.
//
// -verify runs the determinism proof: the fleet is pinned to MaxBatch 1
// and a no-drop queue depth, the identical traffic is also fed to a twin
// fleet in-process (no sockets), and the two Stats.Fingerprint values
// must match — the wire adds no semantics. The report carries both
// fingerprints and "verify_match".
//
// -control serves the HTTP control/metrics plane on the given address
// for the duration of the run; -metrics dumps the full library+server
// observability snapshot after it ("-" = stdout).
//
// Two more modes split the endpoints across processes — at 10k+
// concurrent connections a single process needs both socket ends (20k+
// descriptors), which can exceed RLIMIT_NOFILE:
//
//	-listen addr   serve an ingest fleet on addr and block; SIGINT/SIGTERM
//	               drains (server close, fleet close) and prints a final
//	               JSON report with counters and the fleet fingerprint.
//	               -read-timeout widens the per-connection idle deadline
//	               for slow multi-process ramps. With -verify the fleet is
//	               pinned to the determinism config (MaxBatch 1, no-drop
//	               queues sized from -sessions/-obs/-shards).
//	-direct        no sockets: feed the identical traffic straight into an
//	               in-process fleet and print its fingerprint — the twin
//	               to compare a -listen run's final fingerprint against.
//
// The report is one JSON object on stdout: sent/acked/nacked, obs/sec,
// and p50/p95/p99 round-trip latency in microseconds, estimated from the
// loadgen's exponential-bucket obs histogram.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"affectedge"
	"affectedge/internal/fleet"
	"affectedge/internal/obs"
	"affectedge/internal/server"
)

type options struct {
	Addr        string
	Listen      string
	Direct      bool
	Sessions    int
	Obs         int
	Shards      int
	Seed        int64
	ChunkEvery  int
	Batch       int
	Window      int
	Linger      time.Duration
	MaxBatch    int
	QueueDepth  int
	Timeout     time.Duration
	ReadTimeout time.Duration
	DialBurst   int
	Verify      bool
	Control     string
	Metrics     string
}

// report is the machine-readable run summary.
type report struct {
	Sessions   int   `json:"sessions"`
	ObsPerSess int   `json:"obs_per_session"`
	Seed       int64 `json:"seed"`

	Sent    int64         `json:"sent"`
	Acked   int64         `json:"acked"`
	Nacked  int64         `json:"nacked"`
	Lost    int64         `json:"lost"` // acked short of sessions×obs — 0 on a clean run
	Elapsed time.Duration `json:"elapsed_ns"`
	ObsSec  float64       `json:"observations_per_sec"`

	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`

	// -batch mode only: the pipelining knobs and the histogram-mean
	// amortized per-observation latency (percentiles above are already
	// amortized in this mode).
	Batch   int     `json:"batch,omitempty"`
	Window  int     `json:"window,omitempty"`
	AmortUs float64 `json:"amortized_us_per_obs,omitempty"`

	// In-process mode only.
	Counters    *server.Counters `json:"server_counters,omitempty"`
	Fingerprint string           `json:"fingerprint,omitempty"`

	// -verify only.
	DirectFingerprint string `json:"direct_fingerprint,omitempty"`
	VerifyMatch       *bool  `json:"verify_match,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "", "external server address (empty: serve an in-process fleet on loopback)")
	flag.StringVar(&o.Listen, "listen", "", "serve an ingest fleet on this address and block until SIGINT (no load)")
	flag.BoolVar(&o.Direct, "direct", false, "feed the traffic straight into an in-process fleet (no sockets) and print its fingerprint")
	flag.IntVar(&o.Sessions, "sessions", 1000, "concurrent sessions (ids 0..N-1)")
	flag.IntVar(&o.Obs, "obs", 20, "observations per session")
	flag.IntVar(&o.Shards, "shards", 8, "fleet shards (in-process mode)")
	flag.Int64Var(&o.Seed, "seed", 1, "fleet and traffic seed")
	flag.IntVar(&o.ChunkEvery, "chunk-every", 0, "send every Nth observation through the chunked path (0 = never)")
	flag.IntVar(&o.Batch, "batch", 0, "observations per OBSERVE_BATCH frame (0 = window-1 singles)")
	flag.IntVar(&o.Window, "window", 0, "in-flight OBSERVE_BATCH frames per session (0 = default 4)")
	flag.DurationVar(&o.Linger, "linger", 0, "partial-batch flush deadline (0 = size-triggered only)")
	flag.IntVar(&o.MaxBatch, "max-batch", 0, "fleet MaxBatch (0 = default; -verify forces 1)")
	flag.IntVar(&o.QueueDepth, "queue-depth", 0, "shard queue depth (0 = default; -verify forces no-drop sizing)")
	flag.DurationVar(&o.Timeout, "timeout", 30*time.Second, "per round-trip deadline")
	flag.DurationVar(&o.ReadTimeout, "read-timeout", 0, "server per-connection idle deadline (-listen mode; 0 = library default)")
	flag.IntVar(&o.DialBurst, "dial-burst", 512, "concurrent dials while ramping")
	flag.BoolVar(&o.Verify, "verify", false, "also run the in-process twin and compare fleet fingerprints")
	flag.StringVar(&o.Control, "control", "", "serve the HTTP control/metrics plane here during the run (in-process mode)")
	flag.StringVar(&o.Metrics, "metrics", "", `write a JSON metrics dump here after the run ("-" = stdout)`)
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetload:", err)
		os.Exit(1)
	}
}

// pinnedConfig sizes the determinism-pinned fleet for -verify runs: one
// row per inference round and queues deep enough to hold a shard's whole
// traffic share, so Drops — a fingerprint field — cannot occur.
func pinnedConfig(o options) fleet.Config {
	depth := ((o.Sessions+o.Shards-1)/o.Shards)*o.Obs + 1
	return server.VerifyConfig(o.Sessions, o.Shards, depth, o.Seed)
}

func fleetConfig(o options) fleet.Config {
	if o.Verify {
		return pinnedConfig(o)
	}
	return fleet.Config{
		Sessions:   o.Sessions,
		Shards:     o.Shards,
		Seed:       o.Seed,
		MaxBatch:   o.MaxBatch,
		QueueDepth: o.QueueDepth,
	}
}

func run(o options, out *os.File) error {
	if o.Sessions <= 0 || o.Obs <= 0 {
		return fmt.Errorf("sessions %d / obs %d, want > 0", o.Sessions, o.Obs)
	}
	if o.Addr != "" && o.Verify {
		return errors.New("-verify needs the in-process fleet (drop -addr)")
	}
	if o.Listen != "" {
		return serve(o, out)
	}
	if o.Direct {
		return direct(o, out)
	}

	reg := affectedge.NewMetricsRegistry()
	if o.Metrics != "" {
		affectedge.WireMetrics(reg)
		defer affectedge.WireMetrics(nil)
	}
	server.WireMetrics(reg.Scope("server"))
	lat := reg.Scope("loadgen").Histogram("rtt_us", obs.ExponentialBuckets(1, 2, 24))

	load := server.LoadConfig{
		Addr:       o.Addr,
		Sessions:   o.Sessions,
		Obs:        o.Obs,
		ChunkEvery: o.ChunkEvery,
		Batch:      o.Batch,
		Window:     o.Window,
		Linger:     o.Linger,
		Seed:       o.Seed,
		Timeout:    o.Timeout,
		DialBurst:  o.DialBurst,
		Latency:    lat,
	}
	rep := report{Sessions: o.Sessions, ObsPerSess: o.Obs, Seed: o.Seed}

	var (
		f   *fleet.Fleet
		srv *server.Server
	)
	if o.Addr == "" {
		var err error
		f, err = fleet.New(fleetConfig(o))
		if err != nil {
			return err
		}
		if err := f.Start(); err != nil {
			return err
		}
		srv = server.New(f, server.Config{})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		load.Addr = addr.String()
		load.Dim = f.FeatureDim()
		if o.Control != "" {
			ctl, _ := srv.ServeControl(o.Control, reg)
			defer ctl.Close()
		}
	} else {
		ncfg, err := fleet.Config{Sessions: 1}.Normalize()
		if err != nil {
			return err
		}
		load.Dim = ncfg.FeatureDim
	}

	res, err := server.RunLoad(load)
	if err != nil {
		return err
	}
	rep.Sent, rep.Acked, rep.Nacked = res.Sent, res.Acked, res.Nacked
	rep.Lost = int64(o.Sessions)*int64(o.Obs) - res.Acked
	rep.Elapsed = res.Elapsed
	rep.ObsSec = float64(res.Acked) / res.Elapsed.Seconds()
	if snap, ok := reg.Snapshot().Histogram("loadgen.rtt_us"); ok {
		rep.P50us = snap.Quantile(0.50)
		rep.P95us = snap.Quantile(0.95)
		rep.P99us = snap.Quantile(0.99)
		if o.Batch > 0 && snap.Count > 0 {
			rep.Batch = o.Batch
			rep.Window = o.Window
			if rep.Window == 0 {
				rep.Window = 4
			}
			rep.AmortUs = float64(snap.Sum) / float64(snap.Count)
		}
	}

	if srv != nil {
		srv.Close()
		f.Close()
		c := srv.Counters()
		rep.Counters = &c
		st := f.Stats()
		rep.Fingerprint = st.Fingerprint()
	}

	if o.Verify {
		twin, err := fleet.New(pinnedConfig(o))
		if err != nil {
			return err
		}
		if err := twin.Start(); err != nil {
			return err
		}
		if _, err := server.DirectLoad(twin, load); err != nil {
			return err
		}
		twin.Close()
		rep.DirectFingerprint = twin.Stats().Fingerprint()
		match := rep.DirectFingerprint == rep.Fingerprint
		rep.VerifyMatch = &match
		if !match {
			defer os.Exit(1)
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if o.Metrics != "" {
		return affectedge.DumpMetrics(reg, o.Metrics)
	}
	return nil
}

// serveReport is the -listen mode's shutdown summary: written on SIGINT
// after the server and fleet have fully drained, so Fingerprint is the
// final state a -direct twin must reproduce.
type serveReport struct {
	Sessions    int             `json:"sessions"`
	Seed        int64           `json:"seed"`
	Counters    server.Counters `json:"server_counters"`
	Drops       int64           `json:"drops"`
	Fingerprint string          `json:"fingerprint"`
}

// serve runs the ingest fleet as a standalone process: listen, announce
// on stderr, block until SIGINT/SIGTERM, drain, report on stdout.
func serve(o options, out *os.File) error {
	reg := affectedge.NewMetricsRegistry()
	if o.Metrics != "" {
		affectedge.WireMetrics(reg)
		defer affectedge.WireMetrics(nil)
	}
	server.WireMetrics(reg.Scope("server"))
	f, err := fleet.New(fleetConfig(o))
	if err != nil {
		return err
	}
	if err := f.Start(); err != nil {
		return err
	}
	srv := server.New(f, server.Config{ReadTimeout: o.ReadTimeout})
	addr, err := srv.Listen(o.Listen)
	if err != nil {
		return err
	}
	if o.Control != "" {
		ctl, _ := srv.ServeControl(o.Control, reg)
		defer ctl.Close()
	}
	fmt.Fprintf(os.Stderr, "fleetload: serving %d sessions on %s\n", o.Sessions, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	f.Close()
	st := f.Stats()
	rep := serveReport{
		Sessions:    o.Sessions,
		Seed:        o.Seed,
		Counters:    srv.Counters(),
		Drops:       st.Drops,
		Fingerprint: st.Fingerprint(),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if o.Metrics != "" {
		return affectedge.DumpMetrics(reg, o.Metrics)
	}
	return nil
}

// direct runs the socket-free twin: identical traffic into an in-process
// fleet, fingerprint on stdout.
func direct(o options, out *os.File) error {
	f, err := fleet.New(fleetConfig(o))
	if err != nil {
		return err
	}
	if err := f.Start(); err != nil {
		return err
	}
	load := server.LoadConfig{
		Sessions:   o.Sessions,
		Obs:        o.Obs,
		Dim:        f.FeatureDim(),
		ChunkEvery: o.ChunkEvery,
		Seed:       o.Seed,
		Timeout:    o.Timeout,
	}
	res, err := server.DirectLoad(f, load)
	if err != nil {
		return err
	}
	f.Close()
	st := f.Stats()
	rep := report{
		Sessions:    o.Sessions,
		ObsPerSess:  o.Obs,
		Seed:        o.Seed,
		Sent:        res.Sent,
		Acked:       res.Acked,
		Nacked:      res.Nacked,
		Lost:        int64(o.Sessions)*int64(o.Obs) - res.Acked,
		Elapsed:     res.Elapsed,
		ObsSec:      float64(res.Acked) / res.Elapsed.Seconds(),
		Fingerprint: st.Fingerprint(),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Command affectbench runs the §2 classifier comparison (Fig 3): it
// synthesizes the three emotional-speech corpora, trains MLP/CNN/LSTM
// classifiers, and reports accuracy, weight size, and int8 quantization
// impact.
//
// Usage:
//
//	affectbench [-clips N] [-epochs N] [-paperscale] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"affectedge"
	"affectedge/internal/affect"
	"affectedge/internal/affectdata"
	"affectedge/internal/nn"
)

func main() {
	clips := flag.Int("clips", 0, "clips per corpus (0 = default 420)")
	epochs := flag.Int("epochs", 0, "training epochs (0 = default 14)")
	paperScale := flag.Bool("paperscale", false, "train full paper-size models (~0.5M params, slow)")
	seed := flag.Int64("seed", 1, "experiment seed")
	extended := flag.Bool("extended", false, "also train the GRU and spectrogram-CNN extension variants")
	flag.Parse()

	if *extended {
		if err := runExtended(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "affectbench:", err)
			os.Exit(1)
		}
	}
	rep, err := affectedge.RunFig3(affectedge.Fig3Options{
		ClipsPerCorpus: *clips,
		Epochs:         *epochs,
		PaperScale:     *paperScale,
		Seed:           *seed,
		Progress:       os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "affectbench:", err)
		os.Exit(1)
	}
	fmt.Println(rep.FormatFig3())
}

// runExtended trains the two extension families on EMOVO and prints their
// accuracy next to their parameter budgets.
func runExtended(seed int64) error {
	feature := affect.DefaultFeatureConfig(8000)
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(seed, 280)
	if err != nil {
		return err
	}
	train, test := affectdata.Split(clips, 0.25)
	trainEx, classOf, err := affect.Dataset(train, feature)
	if err != nil {
		return err
	}
	var testEx []nn.Example
	for _, c := range test {
		x, err := affect.Features(c.Wave, feature)
		if err != nil {
			return err
		}
		testEx = append(testEx, nn.Example{X: x, Y: classOf[int(c.Label)]})
	}
	fmt.Println("extension families on EMOVO:")
	builders := []struct {
		name  string
		build func() (*nn.Sequential, error)
	}{
		{"GRU", func() (*nn.Sequential, error) {
			return affect.BuildGRU(feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, seed)
		}},
		{"CNN-2D", func() (*nn.Sequential, error) {
			return affect.BuildSpectrogramCNN(feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, seed)
		}},
	}
	for _, b := range builders {
		net, err := b.build()
		if err != nil {
			return err
		}
		tc := nn.TrainConfig{Epochs: 12, BatchSize: 16, Optimizer: nn.NewAdam(2e-3), Seed: seed}
		if _, err := net.Fit(trainEx, tc); err != nil {
			return err
		}
		acc, err := net.Evaluate(testEx)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s acc %.1f%%  (%d params)\n", b.name, 100*acc, net.NumParams())
	}
	return nil
}

// Command corpusgen exports the synthetic evaluation data to disk:
// emotional-speech clips as WAV files (one per label/actor combination)
// and the uulmMAC-style skin-conductance trace as CSV, so the substituted
// datasets can be inspected, played back, or consumed by external tools.
//
// Usage:
//
//	corpusgen -out DIR [-corpus RAVDESS|EMOVO|CREMA-D] [-clips N] [-seed N] [-sc]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"affectedge/internal/affectdata"
	"affectedge/internal/dsp"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	corpus := flag.String("corpus", "EMOVO", "corpus to synthesize: RAVDESS, EMOVO or CREMA-D")
	clips := flag.Int("clips", 28, "number of clips to export")
	seed := flag.Int64("seed", 1, "generation seed")
	withSC := flag.Bool("sc", true, "also export the 40-min skin-conductance trace as CSV")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required")
		os.Exit(2)
	}
	if err := run(*out, *corpus, *clips, *seed, *withSC); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(out, corpus string, clips int, seed int64, withSC bool) error {
	var spec affectdata.Spec
	switch corpus {
	case "RAVDESS":
		spec = affectdata.RAVDESS()
	case "EMOVO":
		spec = affectdata.EMOVO()
	case "CREMA-D":
		spec = affectdata.CREMAD()
	default:
		return fmt.Errorf("unknown corpus %q", corpus)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	data, err := spec.Generate(seed, clips)
	if err != nil {
		return err
	}
	for i, c := range data {
		name := fmt.Sprintf("%s_%03d_actor%02d_%s.wav", spec.Name, i, c.Actor, c.Label)
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		err = dsp.WriteWAV(f, c.Wave, int(spec.SampleRate))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d clips of %s to %s\n", len(data), spec.Name, out)

	if withSC {
		tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, seed)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(out, "sc_trace.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := fmt.Fprintln(f, "minute,sc_uS,state"); err != nil {
			return err
		}
		for i, v := range tr.Samples {
			min := float64(i) / tr.SampleRate / 60
			if _, err := fmt.Fprintf(f, "%.4f,%.4f,%s\n", min, v, tr.StateAt(min)); err != nil {
				return err
			}
		}
		fmt.Printf("wrote sc_trace.csv (%d samples)\n", len(tr.Samples))
	}
	return nil
}

package affectedge

import (
	"testing"

	"affectedge/internal/affect"
	"affectedge/internal/affectdata"
	"affectedge/internal/nn"
)

// TestFig3bModelOrdering is the headline classifier assertion: at the
// default study scale, CNN and LSTM must outperform the MLP on mean
// accuracy across the three corpora (Fig 3b), and quantization must cost
// less than 3 percentage points (Fig 3d). This trains nine models, so it
// runs only in full (non -short) test mode.
func TestFig3bModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full classifier study skipped in -short mode")
	}
	rep, err := RunFig3(Fig3Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nn := rep.MeanAccuracy["NN"]
	cnn := rep.MeanAccuracy["CNN"]
	lstm := rep.MeanAccuracy["LSTM"]
	t.Logf("mean accuracy: NN %.1f%%, CNN %.1f%%, LSTM %.1f%%", 100*nn, 100*cnn, 100*lstm)
	if cnn <= nn {
		t.Errorf("CNN (%.3f) should beat the MLP (%.3f)", cnn, nn)
	}
	if lstm <= nn {
		t.Errorf("LSTM (%.3f) should beat the MLP (%.3f)", lstm, nn)
	}
	// All models must be usefully accurate (well above the worst corpus
	// chance level of 1/6).
	for name, acc := range rep.MeanAccuracy {
		if acc < 0.5 {
			t.Errorf("%s mean accuracy %.3f below 0.5", name, acc)
		}
	}
	// Fig 3d: <3 pp quantization loss per model on EMOVO.
	for name, q := range rep.QuantAccuracy {
		if loss := (q[0] - q[1]) * 100; loss > 3 {
			t.Errorf("%s quantization loss %.1f pp exceeds the paper's 3 pp", name, loss)
		}
	}
	// Fig 3c: paper-scale sizes within 10% of the paper's budgets.
	wants := map[string]float64{"NN": 508_000 * 4, "CNN": 649_000 * 4, "LSTM": 429_000 * 4}
	for name, want := range wants {
		gotKB := rep.WeightKB[name][0]
		ratio := gotKB * 1024 / want
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s float size %.0f KB, want within 10%% of %.0f KB", name, gotKB, want/1024)
		}
		if int8Ratio := rep.WeightKB[name][0] / rep.WeightKB[name][1]; int8Ratio < 3.9 || int8Ratio > 4.1 {
			t.Errorf("%s int8 ratio %.2f, want ~4", name, int8Ratio)
		}
	}
}

// TestExtendedModelFamilies exercises the extension study: the GRU and
// spectrogram-CNN variants must also learn the affect task well beyond
// chance.
func TestExtendedModelFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("extension training skipped in -short mode")
	}
	feature := affect.FeatureConfig{SampleRate: 8000, NumFrames: 30, NumMFCC: 13, HistBins: 10}
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(5, 84)
	if err != nil {
		t.Fatal(err)
	}
	train, test := affectdata.Split(clips, 0.25)
	trainEx, classOf, err := affect.Dataset(train, feature)
	if err != nil {
		t.Fatal(err)
	}
	testEx := make([]nn.Example, 0, len(test))
	for _, c := range test {
		x, err := affect.Features(c.Wave, feature)
		if err != nil {
			t.Fatal(err)
		}
		testEx = append(testEx, nn.Example{X: x, Y: classOf[int(c.Label)]})
	}
	builders := map[string]func() (*nn.Sequential, error){
		"gru": func() (*nn.Sequential, error) {
			return affect.BuildGRU(feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		},
		"spectrogram-cnn": func() (*nn.Sequential, error) {
			return affect.BuildSpectrogramCNN(feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		},
	}
	chance := 1.0 / float64(len(classOf))
	for name, build := range builders {
		net, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tc := nn.TrainConfig{Epochs: 10, BatchSize: 8, Optimizer: nn.NewAdam(3e-3), Seed: 5}
		if _, err := net.Fit(trainEx, tc); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc, err := net.Evaluate(testEx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s accuracy %.3f (chance %.3f)", name, acc, chance)
		if acc < 2*chance {
			t.Errorf("%s accuracy %.3f below 2x chance", name, acc)
		}
	}
}

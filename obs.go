package affectedge

import (
	"fmt"
	"io"
	"os"

	"affectedge/internal/affect"
	"affectedge/internal/android"
	"affectedge/internal/core"
	"affectedge/internal/fleet"
	"affectedge/internal/h264"
	"affectedge/internal/nn"
	"affectedge/internal/obs"
	"affectedge/internal/stream"
)

// MetricsRegistry owns the library's named metrics. See internal/obs for
// the metric model: atomic counters/gauges, fixed-bucket histograms,
// deterministic sorted snapshots.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry ready for WireMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WireMetrics routes every subsystem's instrumentation into reg under the
// scopes affect, nn, h264, core, android, fleet, and stream. Pass nil to
// unwire (the default state): unwired instrumentation is a nil-check and
// costs nothing.
//
// Wire before starting work — handle swaps are not synchronized with
// running studies, decodes, or simulations. All metric updates themselves
// are concurrency-safe and allocation-free.
func WireMetrics(reg *MetricsRegistry) {
	affect.WireMetrics(reg.Scope("affect"))
	nn.WireMetrics(reg.Scope("nn"))
	h264.WireMetrics(reg.Scope("h264"))
	core.WireMetrics(reg.Scope("core"))
	android.WireMetrics(reg.Scope("android"))
	fleet.WireMetrics(reg.Scope("fleet"))
	stream.WireMetrics(reg.Scope("stream"))
}

// DumpMetrics writes reg's snapshot as indented JSON to path; "-" writes
// to stdout.
func DumpMetrics(reg *MetricsRegistry, path string) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("affectedge: metrics dump: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("affectedge: metrics dump: %w", err)
	}
	return f.Close()
}

// WriteMetrics writes reg's snapshot as indented JSON to w.
func WriteMetrics(reg *MetricsRegistry, w io.Writer) error { return reg.WriteJSON(w) }

package affectedge

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//	BenchmarkAblationDeletionF      — deletion frequency f sweep (S_th fixed)
//	BenchmarkAblationKillPolicy     — FIFO / LRU / random / hybrid / emotional
//	BenchmarkAblationLearnedTable   — oracle vs online-learned affect table
//	BenchmarkAblationHysteresis     — manager switching stability
//	BenchmarkRateDistortion         — QP sweep: rate/quality/deletable units

import (
	"testing"
	"time"

	"affectedge/internal/affect"
	"affectedge/internal/affectdata"
	"affectedge/internal/android"
	"affectedge/internal/core"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/monkey"
	"affectedge/internal/nn"
)

func BenchmarkAblationDeletionF(b *testing.B) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := h264.NewEncoder(h264.CalibrationEncoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		b.Fatal(err)
	}
	model := h264.DefaultEnergyModel()
	lumaBytes := 176 * 144
	std, err := h264.DecodePipeline(stream, h264.ModeStandard)
	if err != nil {
		b.Fatal(err)
	}
	eStd := model.Charge(std.Activity, lumaBytes).Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range []int{1, 2, 4} {
			units, err := h264.SplitStream(stream)
			if err != nil {
				b.Fatal(err)
			}
			kept, st := h264.ApplySelector(units, h264.SelectorConfig{Sth: h264.PaperSth, F: f})
			ks, err := h264.MarshalStream(kept)
			if err != nil {
				b.Fatal(err)
			}
			dec := h264.NewDecoder()
			frames, err := dec.DecodeStream(ks)
			if err != nil {
				b.Fatal(err)
			}
			frames = append(frames, dec.ConcealTo(len(src))...)
			e := model.Charge(dec.Activity(), lumaBytes).Total()
			psnr, err := h264.MeanPSNR(src, frames)
			if err != nil {
				b.Fatal(err)
			}
			prefix := "f" + itoa(f)
			b.ReportMetric(100*(1-e/eStd), prefix+"_saving_%")
			b.ReportMetric(psnr, prefix+"_psnr_dB")
			b.ReportMetric(float64(st.UnitsDeleted), prefix+"_deleted")
		}
	}
}

func BenchmarkAblationKillPolicy(b *testing.B) {
	mc := monkey.DefaultConfig()
	mc.AppDist = core.MoodAppDistributions()
	table, err := android.AffectTableFromSubjects()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		totals := map[string]int64{}
		for seed := int64(1); seed <= 6; seed++ {
			cfg := mc
			cfg.Seed = seed
			wl, err := monkey.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			events := make([]android.WorkloadEvent, len(wl.Events))
			for j, e := range wl.Events {
				events[j] = android.WorkloadEvent{At: e.At, App: e.App, Mood: e.Mood}
			}
			results, err := android.PolicyAblation(android.DefaultDeviceConfig(), table, events, seed)
			if err != nil {
				b.Fatal(err)
			}
			for name, m := range results {
				totals[name] += m.BytesLoaded
			}
		}
		base := float64(totals["fifo"])
		for _, name := range []string{"lru", "random", "hybrid(0.50)", "emotional"} {
			b.ReportMetric(100*(1-float64(totals[name])/base), name+"_vs_fifo_%")
		}
	}
}

func BenchmarkAblationLearnedTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var oracleMem, learnedMem float64
		for seed := int64(1); seed <= 6; seed++ {
			cfg := core.DefaultAppStudyConfig()
			cfg.Monkey.Seed = seed
			res, err := core.RunAppStudy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			oracleMem += res.Comparison.MemorySavingPct
			cfg.LearnedTable = true
			res, err = core.RunAppStudy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			learnedMem += res.Comparison.MemorySavingPct
		}
		b.ReportMetric(oracleMem/6, "oracle_mem_saving_%")
		b.ReportMetric(learnedMem/6, "learned_mem_saving_%")
	}
}

func BenchmarkAblationHysteresis(b *testing.B) {
	// Feed a noisy observation stream (occasional misclassifications) and
	// count mode switches per hysteresis setting: higher hysteresis means
	// fewer spurious hardware reconfigurations.
	mkStream := func() []core.Observation {
		var obs []core.Observation
		labels := []emotion.Label{emotion.Calm, emotion.Calm, emotion.Calm, emotion.Angry,
			emotion.Calm, emotion.Calm, emotion.Angry, emotion.Calm}
		for i := 0; i < 200; i++ {
			obs = append(obs, core.Observation{
				At: time.Duration(i) * 15 * time.Second, Label: labels[i%len(labels)], Confidence: 0.9,
			})
		}
		return obs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range []int{1, 2, 3} {
			cfg := core.DefaultManagerConfig()
			cfg.Hysteresis = h
			m, err := core.NewManager(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var switches int
			for _, o := range mkStream() {
				sw, err := m.Observe(o)
				if err != nil {
					b.Fatal(err)
				}
				if sw {
					switches++
				}
			}
			b.ReportMetric(float64(switches), "h"+itoa(h)+"_switches")
		}
	}
}

func BenchmarkRateDistortion(b *testing.B) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(24))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := h264.RateDistortionSweep(src, h264.CalibrationEncoderConfig(),
			[]int{22, 28, 34, 40}, h264.DefaultEnergyModel(), 24)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			prefix := "qp" + itoa(p.QP)
			b.ReportMetric(p.BitsPerSec/1000, prefix+"_kbps")
			b.ReportMetric(p.PSNR, prefix+"_psnr_dB")
			b.ReportMetric(float64(p.SmallUnits), prefix+"_deletable")
		}
	}
}

// BenchmarkAblationModelFamilies extends the Fig 3 comparison with the GRU
// and spectrogram-CNN variants: five families on one corpus.
func BenchmarkAblationModelFamilies(b *testing.B) {
	feature := affect.FeatureConfig{SampleRate: 8000, NumFrames: 30, NumMFCC: 13, HistBins: 10}
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(1, 140)
	if err != nil {
		b.Fatal(err)
	}
	train, test := affectdata.Split(clips, 0.25)
	trainEx, classOf, err := affect.Dataset(train, feature)
	if err != nil {
		b.Fatal(err)
	}
	var testEx []nn.Example
	for _, c := range test {
		x, err := affect.Features(c.Wave, feature)
		if err != nil {
			b.Fatal(err)
		}
		testEx = append(testEx, nn.Example{X: x, Y: classOf[int(c.Label)]})
	}
	builders := []struct {
		name  string
		build func() (*nn.Sequential, error)
	}{
		{"NN", func() (*nn.Sequential, error) {
			return affect.Build(affect.MLP, feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		}},
		{"CNN", func() (*nn.Sequential, error) {
			return affect.Build(affect.CNN, feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		}},
		{"LSTM", func() (*nn.Sequential, error) {
			return affect.Build(affect.LSTMNet, feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		}},
		{"GRU", func() (*nn.Sequential, error) {
			return affect.BuildGRU(feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		}},
		{"CNN2D", func() (*nn.Sequential, error) {
			return affect.BuildSpectrogramCNN(feature.NumFrames, feature.Dim(), len(classOf), affect.FastScale, 1)
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range builders {
			net, err := f.build()
			if err != nil {
				b.Fatal(err)
			}
			tc := nn.TrainConfig{Epochs: 8, BatchSize: 8, Optimizer: nn.NewAdam(3e-3), Seed: 1}
			if _, err := net.Fit(trainEx, tc); err != nil {
				b.Fatal(err)
			}
			acc, err := net.Evaluate(testEx)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*acc, f.name+"_acc_%")
			b.ReportMetric(float64(net.NumParams())/1000, f.name+"_kparams")
		}
	}
}

// BenchmarkInt8Inference compares the true integer pipeline against the
// float MLP on the paper's feature shape — the wearable deployment story.
func BenchmarkInt8Inference(b *testing.B) {
	feature := affect.DefaultFeatureConfig(8000)
	net, err := affect.Build(affect.MLP, feature.NumFrames, feature.Dim(), 7, affect.FastScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(1, 8)
	if err != nil {
		b.Fatal(err)
	}
	var exs []nn.Example
	for _, c := range clips {
		x, err := affect.Features(c.Wave, feature)
		if err != nil {
			b.Fatal(err)
		}
		exs = append(exs, nn.Example{X: x, Y: 0})
	}
	st, err := nn.CalibrateMLP(net, exs)
	if err != nil {
		b.Fatal(err)
	}
	q, err := nn.BuildQMLP(net, st)
	if err != nil {
		b.Fatal(err)
	}
	flat := &nn.Tensor{Data: exs[0].X.Data, Cols: len(exs[0].X.Data)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Infer(flat); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nn.Float32SizeBytes(net))/1024, "float_KB")
	b.ReportMetric(float64(q.SizeBytes())/1024, "int8_KB")
}

// BenchmarkAblationPrefetch measures the prefetching extension: proactive
// loading of mood favorites versus the plain emotional manager.
func BenchmarkAblationPrefetch(b *testing.B) {
	table, err := android.AffectTableFromSubjects()
	if err != nil {
		b.Fatal(err)
	}
	mc := monkey.DefaultConfig()
	mc.AppDist = core.MoodAppDistributions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var plainBytes, pfBytes, pfTraffic int64
		var useful, prefetches int
		for seed := int64(1); seed <= 6; seed++ {
			cfg := mc
			cfg.Seed = seed
			wl, err := monkey.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			events := make([]android.WorkloadEvent, len(wl.Events))
			for j, e := range wl.Events {
				events[j] = android.WorkloadEvent{At: e.At, App: e.App, Mood: e.Mood}
			}
			policy, err := android.NewEmotionalPolicy(table)
			if err != nil {
				b.Fatal(err)
			}
			plain, err := android.Run(android.DefaultDeviceConfig(), policy, events)
			if err != nil {
				b.Fatal(err)
			}
			pf, err := android.RunWithPrefetch(android.DefaultDeviceConfig(), table, events, android.DefaultPrefetchConfig())
			if err != nil {
				b.Fatal(err)
			}
			plainBytes += plain.Metrics.BytesLoaded
			pfBytes += pf.BytesLoaded
			pfTraffic += pf.BytesLoaded + pf.PrefetchBytes
			useful += pf.PrefetchUseful
			prefetches += pf.Prefetches
		}
		b.ReportMetric(100*(1-float64(pfBytes)/float64(plainBytes)), "launch_load_saving_%")
		b.ReportMetric(100*(float64(pfTraffic)/float64(plainBytes)-1), "total_traffic_overhead_%")
		b.ReportMetric(100*float64(useful)/float64(prefetches), "prefetch_hit_%")
	}
}

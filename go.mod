module affectedge

go 1.22

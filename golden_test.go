package affectedge

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"testing"

	"affectedge/internal/affect"
	"affectedge/internal/fleet"
	"affectedge/internal/h264"
)

// goldenFingerprint is the end-to-end regression hash: a miniature
// training study plus a full decoder-pipeline pass, every numeric output
// folded into one SHA-256. The repo's determinism contract (bit-identical
// results at any worker count, kernel batch size, and SIMD backend) is
// what makes a single checked-in value meaningful — any unintended change
// to the DSP, training, quantization, encoder, selector, or decoder
// arithmetic shows up here as a one-line diff.
//
// When a change intentionally alters numeric behavior, regenerate with:
//
//	go test -run TestGoldenFingerprint -v .
//
// and update the constant with the logged value.
const goldenFingerprint = "a4ed8d3687b9e1774e058ed2a74aa7efe77e9967bbb18cc3bbb5e4da832c61ff"

func TestGoldenFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fingerprint skipped in -short mode")
	}
	h := sha256.New()
	fingerprintStudy(t, h)
	fingerprintDecoder(t, h)
	got := fmt.Sprintf("%x", h.Sum(nil))
	t.Logf("fingerprint %s", got)
	if got != goldenFingerprint {
		t.Errorf("end-to-end fingerprint changed:\n  got  %s\n  want %s\n"+
			"If the numeric change is intentional, update goldenFingerprint.", got, goldenFingerprint)
	}
}

// fingerprintStudy folds a miniature RunStudy (3 corpora x 3 model
// families, reduced clips/epochs) into h: accuracies as exact float bits,
// parameter and deployment sizes, and every confusion-matrix cell.
func fingerprintStudy(t *testing.T, h hash.Hash) {
	cfg := affect.DefaultStudyConfig()
	cfg.ClipsPerCorpus = 48
	cfg.Epochs = 2
	cfg.Seed = 1
	rep, err := affect.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	affect.SortResults(rep.Results)
	for _, r := range rep.Results {
		put(h, []byte(r.Corpus), []byte(r.Kind.String()))
		put(h, int64(r.Params), int64(r.FloatBytes), int64(r.QuantBytes))
		put(h, math.Float64bits(r.Accuracy), math.Float64bits(r.QuantAccuracy), math.Float64bits(r.MacroF1))
		for _, row := range r.Confusion {
			for _, v := range row {
				put(h, int64(v))
			}
		}
	}
}

// fingerprintDecoder folds an encode + all-modes DecodePipeline pass into
// h: bitstream bytes, per-mode selector/buffer statistics, activity
// counters, and every output pixel.
func fingerprintDecoder(t *testing.T, h hash.Hash) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := h264.NewEncoder(h264.CalibrationEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	put(h, stream)
	for _, mode := range h264.Modes() {
		res, err := h264.DecodePipeline(stream, mode)
		if err != nil {
			t.Fatal(err)
		}
		put(h, []byte(mode.String()),
			int64(res.Selector.UnitsIn), int64(res.Selector.UnitsDeleted),
			int64(res.Selector.BytesIn), int64(res.Selector.BytesDeleted),
			int64(res.PreStoreIn), int64(res.PreStoreOut),
			int64(res.CircularIn), int64(res.CircularOut),
			int64(res.PreStoreRewinds), int64(res.Stalls),
			int64(res.Activity.HeaderBits), int64(res.Activity.ResidualBits),
			int64(res.Activity.BlocksIQIT), int64(res.Activity.SkipMBs),
			int64(res.Activity.CodedMBs), int64(res.Activity.FramesOut),
			int64(res.Activity.Concealed))
		for _, fr := range res.Frames {
			put(h, int64(fr.Width), int64(fr.Height), fr.Y, fr.Cb, fr.Cr)
		}
	}
}

// put hashes each value in a fixed little-endian encoding.
func put(h hash.Hash, vals ...any) {
	var buf [8]byte
	for _, v := range vals {
		switch x := v.(type) {
		case []byte:
			binary.LittleEndian.PutUint64(buf[:], uint64(len(x)))
			h.Write(buf[:])
			h.Write(x)
		case int64:
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			h.Write(buf[:])
		case uint64:
			binary.LittleEndian.PutUint64(buf[:], x)
			h.Write(buf[:])
		default:
			panic(fmt.Sprintf("golden: unhashable %T", v))
		}
	}
}

// goldenFleetFingerprint pins the multi-device fleet simulation alongside
// the single-device fingerprint above: 120 sessions on 8 shards, 40
// virtual seconds, a dense launch schedule. Stats.Fingerprint hashes every
// deterministic aggregate (control-loop switches, launches/kills, batch
// accounting), so changes to the session RNG discipline, the stream
// model, the coalesced int8 inference, the hysteresis manager, or the
// emotional background manager all surface here. Regenerate with:
//
//	go test -run TestGoldenFleetFingerprint -v .
const goldenFleetFingerprint = "86bd2910d9f47801feb9dbf0e75519c9bc60a32b2f61b99dbfebcbc996684b0c"

func TestGoldenFleetFingerprint(t *testing.T) {
	st, err := fleet.Run(fleet.Config{
		Sessions:    120,
		Shards:      8,
		Ticks:       40,
		Seed:        3,
		LaunchEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := st.Fingerprint()
	t.Logf("fleet fingerprint %s", got)
	if got != goldenFleetFingerprint {
		t.Errorf("fleet fingerprint changed:\n  got  %s\n  want %s\n"+
			"If the numeric change is intentional, update goldenFleetFingerprint.", got, goldenFleetFingerprint)
	}
}

package affectedge_test

import (
	"fmt"
	"time"

	"affectedge"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
)

// ExampleNewManager shows the manager reacting to a stream of affect
// observations with hysteresis.
func ExampleNewManager() {
	mgr, err := affectedge.NewManager()
	if err != nil {
		panic(err)
	}
	// Two agreeing high-arousal observations flip the state.
	for i := 0; i < 2; i++ {
		if _, err := mgr.Observe(affectedge.Observation{
			At:         time.Duration(i) * time.Second,
			Label:      emotion.Angry,
			Confidence: 0.9,
		}); err != nil {
			panic(err)
		}
	}
	fmt.Println(mgr.Attention(), mgr.Mood(), mgr.DecoderMode())
	// Output: tense excited standard
}

// ExampleSimulatedSession compares the emotional app manager with the
// stock FIFO baseline on the same 20-minute session.
func ExampleSimulatedSession() {
	fifo, err := affectedge.SimulatedSession(1, "fifo")
	if err != nil {
		panic(err)
	}
	emo, err := affectedge.SimulatedSession(1, "emotional")
	if err != nil {
		panic(err)
	}
	fmt.Println(fifo.Launches == emo.Launches, emo.BytesLoaded < fifo.BytesLoaded)
	// Output: true true
}

// ExampleAdaptiveDecode decodes a stream in the combined power-saving
// mode.
func ExampleAdaptiveDecode() {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(12))
	if err != nil {
		panic(err)
	}
	enc, err := h264.NewEncoder(h264.CalibrationEncoderConfig())
	if err != nil {
		panic(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		panic(err)
	}
	frames, deleted, _, err := affectedge.AdaptiveDecode(stream, h264.ModeCombined)
	if err != nil {
		panic(err)
	}
	fmt.Println(frames == 12, deleted > 0)
	// Output: true true
}

// Wearable: the integrated end-to-end system of Fig 2/Fig 4 on one
// discrete-event timeline. A simulated wearable streams skin conductance;
// every 30 s the on-device classifier emits an affect observation; the
// system manager applies hysteresis and simultaneously retunes the video
// decoder's operating mode and the app manager's kill ranking, while the
// user launches apps throughout the session.
//
//	go run ./examples/wearable
package main

import (
	"fmt"
	"log"

	"affectedge/internal/core"
	"affectedge/internal/power"
)

func main() {
	cfg := core.DefaultSessionConfig()
	res, err := core.RunSession(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("40-minute integrated session (%d affect observations, %.0f%% agree with ground truth)\n\n",
		res.Observations, 100*res.AttentionAccuracy)

	fmt.Println("manager transitions:")
	for _, tr := range res.Transitions {
		fmt.Printf("  %7v  attention=%-12s mood=%-7s decoder=%s\n",
			tr.At.Round(1e9), tr.Attention, tr.Mood, tr.Mode)
	}

	fmt.Printf("\nvideo decode energy:   %.3g (affect-driven) vs %.3g (always standard) -> %.1f%% saving\n",
		res.VideoEnergy, res.VideoBaselineEnergy, res.VideoSavingPct)
	fmt.Printf("app flash loading:     %d bytes (emotional) vs %d bytes (FIFO) -> %.1f%% saving\n",
		res.AppEmotional.BytesLoaded, res.AppBaseline.BytesLoaded, res.AppMemorySavingPct)
	fmt.Printf("app cold/warm starts:  emotional %d/%d, FIFO %d/%d over %d launches\n",
		res.AppEmotional.ColdStarts, res.AppEmotional.WarmStarts,
		res.AppBaseline.ColdStarts, res.AppBaseline.WarmStarts,
		res.AppEmotional.Launches)

	watch := power.SmartwatchBattery()
	base, err := watch.Lifetime()
	if err != nil {
		log.Fatal(err)
	}
	run, gained, err := watch.LifetimeWithSaving(res.VideoSavingPct / 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smartwatch battery:    %.1f h -> %.1f h during playback (+%.1f h from the %.1f%% saving)\n",
		base.Hours(), run.Hours(), gained.Hours(), res.VideoSavingPct)
}

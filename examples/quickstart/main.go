// Quickstart: the full affect-to-hardware loop in ~40 lines.
//
// A synthetic emotional utterance is classified, the resulting affect
// stream drives the system manager, and the manager's decisions configure
// the video decoder mode and the app-manager mood.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"affectedge"
	"affectedge/internal/emotion"
)

func main() {
	// 1. Train a small on-device classifier (a few seconds).
	clf, err := affectedge.TrainClassifier(affectedge.ClassifierLSTM, affectedge.TrainOptions{
		Corpus: "EMOVO", Clips: 140, Epochs: 8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained LSTM classifier: %d parameters, %d classes\n",
		clf.NumParams(), len(clf.Classes()))

	// 2. Classify a stream of incoming utterances and feed the manager.
	mgr, err := affectedge.NewManager()
	if err != nil {
		log.Fatal(err)
	}
	for i, want := range []affectedge.Emotion{emotion.Angry, emotion.Angry, emotion.Calm, emotion.Calm, emotion.Calm} {
		wave, _, err := affectedge.SyntheticSpeech(want, int64(200+i))
		if err != nil {
			log.Fatal(err)
		}
		got, probs, err := clf.Classify(wave)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Observe(affectedge.Observation{
			At: time.Duration(i) * 5 * time.Second, Label: got, Confidence: probs[argmax(probs)],
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%2ds  uttered %-9s classified %-9s -> attention=%-12s mood=%-7s decoder=%s\n",
			i*5, want, got, mgr.Attention(), mgr.Mood(), mgr.DecoderMode())
	}

	// 3. The manager's mood also drives the app manager; run one session.
	mem, tm, err := affectedge.AppStudy(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemotional app manager vs FIFO on a 20-min session: "+
		"%.1f%% less memory loaded, %.1f%% less loading time\n", mem, tm)
}

func argmax(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

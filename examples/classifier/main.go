// Classifier: the §2 workflow for one model — train an affect classifier
// on a synthetic corpus, evaluate it, quantize it to int8 for wearable
// deployment, and compare sizes and accuracy (the Fig 3c/3d story for a
// single model).
//
//	go run ./examples/classifier [-kind mlp|cnn|lstm]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"affectedge"
	"affectedge/internal/emotion"
)

func main() {
	kindName := flag.String("kind", "lstm", "classifier family: mlp, cnn or lstm")
	flag.Parse()

	var kind affectedge.ClassifierKind
	switch *kindName {
	case "mlp":
		kind = affectedge.ClassifierMLP
	case "cnn":
		kind = affectedge.ClassifierCNN
	case "lstm":
		kind = affectedge.ClassifierLSTM
	default:
		log.Fatalf("unknown kind %q", *kindName)
	}

	fmt.Printf("training %s on synthetic EMOVO...\n", *kindName)
	clf, err := affectedge.TrainClassifier(kind, affectedge.TrainOptions{
		Corpus: "EMOVO", Clips: 210, Epochs: 10, Seed: 7, Progress: os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate on fresh utterances.
	labels := []affectedge.Emotion{
		emotion.Neutral, emotion.Happy, emotion.Sad, emotion.Angry, emotion.Fearful,
	}
	var hits, total int
	for seed := int64(500); seed < 508; seed++ {
		for _, want := range labels {
			wave, _, err := affectedge.SyntheticSpeech(want, seed)
			if err != nil {
				log.Fatal(err)
			}
			got, _, err := clf.Classify(wave)
			if err != nil {
				log.Fatal(err)
			}
			total++
			if got == want {
				hits++
			}
		}
	}
	floatAcc := float64(hits) / float64(total)

	// Quantize and re-evaluate — the wearable deployment path.
	floatBytes, int8Bytes, err := clf.Quantize()
	if err != nil {
		log.Fatal(err)
	}
	hits = 0
	for seed := int64(500); seed < 508; seed++ {
		for _, want := range labels {
			wave, _, err := affectedge.SyntheticSpeech(want, seed)
			if err != nil {
				log.Fatal(err)
			}
			got, _, err := clf.Classify(wave)
			if err != nil {
				log.Fatal(err)
			}
			if got == want {
				hits++
			}
		}
	}
	int8Acc := float64(hits) / float64(total)

	fmt.Printf("\nmodel: %d trainable parameters\n", clf.NumParams())
	fmt.Printf("deployment size: float32 %d KB -> int8 %d KB (%.1fx smaller)\n",
		floatBytes/1024, int8Bytes/1024, float64(floatBytes)/float64(int8Bytes))
	fmt.Printf("accuracy: float %.1f%% -> int8 %.1f%% (loss %.1f pp; paper reports <3 pp)\n",
		100*floatAcc, 100*int8Acc, 100*(floatAcc-int8Acc))
}

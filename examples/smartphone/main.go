// Smartphone: the §5 case study. A seeded 20-minute usage session
// (12 min excited + 8 min calm, app mix from the personality study's proxy
// subjects) is replayed on a simulated 4 GB Android-class device under the
// stock FIFO background killer and the Emotional Background Manager, and
// the example prints the Fig 9 process diagrams and Fig 10 savings.
//
//	go run ./examples/smartphone
package main

import (
	"fmt"
	"log"

	"affectedge/internal/core"
)

func main() {
	cfg := core.DefaultAppStudyConfig()
	cfg.Monkey.Seed = 4
	res, err := core.RunAppStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := res.Comparison

	fmt.Printf("session: %d app launches over %v\n\n", len(res.Workload.Events), res.Horizon)
	fmt.Println("process lifespan, default FIFO manager ('=' alive, '.' killed):")
	fmt.Println(c.Baseline.Device.Trace().RenderASCII(res.Horizon, 88))
	fmt.Println("process lifespan, emotional manager:")
	fmt.Println(c.Emotional.Device.Trace().RenderASCII(res.Horizon, 88))

	fmt.Printf("%-12s %6s %6s %14s %12s %6s\n",
		"policy", "cold", "warm", "bytes loaded", "load time", "kills")
	fmt.Printf("%-12s %6d %6d %14d %12v %6d\n", "fifo",
		c.Baseline.Metrics.ColdStarts, c.Baseline.Metrics.WarmStarts,
		c.Baseline.Metrics.BytesLoaded, c.Baseline.Metrics.LoadingTime.Round(1e7),
		c.Baseline.Metrics.Kills)
	fmt.Printf("%-12s %6d %6d %14d %12v %6d\n", "emotional",
		c.Emotional.Metrics.ColdStarts, c.Emotional.Metrics.WarmStarts,
		c.Emotional.Metrics.BytesLoaded, c.Emotional.Metrics.LoadingTime.Round(1e7),
		c.Emotional.Metrics.Kills)
	fmt.Printf("\nsavings: %.1f%% memory loading, %.1f%% loading time (paper: 17%% / 12%% on average)\n",
		c.MemorySavingPct, c.TimeSavingPct)
}

// Videoplayback: the §4 case study end to end. A 40-minute synthetic
// skin-conductance recording (uulmMAC-style) is classified into attention
// states, each state selects a decoder operating mode, and the example
// reports per-mode power, per-segment modes, and the session energy saving
// versus an always-standard decoder.
//
//	go run ./examples/videoplayback
package main

import (
	"fmt"
	"log"

	"affectedge/internal/affectdata"
	"affectedge/internal/h264"
	"affectedge/internal/sc"
	"affectedge/internal/video"
)

func main() {
	// Reference clip + per-mode power rates.
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		log.Fatal(err)
	}
	rates, err := video.MeasureModeRates(src, h264.CalibrationEncoderConfig(),
		h264.DefaultEnergyModel(), 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decoder mode power (normalized to standard):")
	std := rates.EnergyPerMin[h264.ModeStandard]
	for _, m := range h264.Modes() {
		fmt.Printf("  %-9s %.3f  (PSNR %.1f dB)\n", m, rates.EnergyPerMin[m]/std, rates.PSNR[m])
	}

	// Synthetic 40-minute SC recording with the paper's label timeline.
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := video.RunWithClassifier(tr.Samples, tr.SampleRate, sc.DefaultConfig(),
		rates, video.PaperPolicy(), tr.StateAt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSC classifier accuracy vs ground truth: %.0f%%\n", 100*res.ClassifierAccuracy)
	fmt.Println("\nper-segment decisions (30 s windows, first 10 shown):")
	for i, s := range res.Segments {
		if i >= 10 {
			fmt.Printf("  ... %d more windows\n", len(res.Segments)-10)
			break
		}
		fmt.Printf("  %5.1f-%5.1f min  %-12s -> %s\n", s.StartMin, s.EndMin, s.State, s.Mode)
	}
	fmt.Printf("\nmode timeline (Fig 6 bottom):\n%s", video.RenderTimeline(res, 80))
	fmt.Printf("\nsession energy: %.3g (affect-driven) vs %.3g (always standard)\n",
		res.Energy, res.BaselineEnergy)
	fmt.Printf("energy saving: %.1f%%  (paper reports 23.1%%)\n", res.SavingPct)
}

package affectedge

import (
	"strings"
	"testing"

	"affectedge/internal/stream"
)

// TestWireMetricsStreamScope checks the stream FIFO family reaches the
// public registry: after WireMetrics, FIFO traffic lands under "stream."
// names in the JSON dump, and unwiring restores the nop path.
func TestWireMetricsStreamScope(t *testing.T) {
	reg := NewMetricsRegistry()
	WireMetrics(reg)
	defer WireMetrics(nil)

	q, err := stream.New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := q.TryPush(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.TryPush(99); err == nil {
		t.Fatal("full ring accepted a push")
	}

	var sb strings.Builder
	if err := WriteMetrics(reg, &sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	for _, name := range []string{
		"stream.queue_depth_high",
		"stream.backpressure",
		"stream.stalls",
		"stream.occupancy",
	} {
		if !strings.Contains(dump, name) {
			t.Errorf("metrics dump missing %q", name)
		}
	}
	if !strings.Contains(dump, "fleet.") {
		t.Error("existing fleet scope missing from dump")
	}
}

package affectedge

// Benchmark harness: one benchmark per quantitative figure of the paper.
// Each reports the paper-comparable headline numbers via b.ReportMetric
// (units in the metric name) so `go test -bench=.` regenerates the whole
// evaluation:
//
//	BenchmarkFig3aConfusionMatrix    — LSTM confusion on RAVDESS
//	BenchmarkFig3bClassifierAccuracy — accuracy per model family
//	BenchmarkFig3cWeightSize         — float vs int8 model size
//	BenchmarkFig3dQuantizedAccuracy  — float vs int8 accuracy
//	BenchmarkFig6DecoderModes        — per-mode power savings
//	BenchmarkFig6PlaybackEnergy      — 40-min session energy saving
//	BenchmarkFig7UsageDistribution   — subject usage mixes
//	BenchmarkFig9ProcessDiagram      — kills under both managers
//	BenchmarkFig10MemorySavings      — memory/time savings
//
// Absolute wall-clock numbers measure the simulator, not the paper's
// silicon; the reported custom metrics are the reproduction targets.

import (
	"testing"

	"affectedge/internal/affect"
	"affectedge/internal/affectdata"
	"affectedge/internal/core"
	"affectedge/internal/h264"
	"affectedge/internal/sc"
	"affectedge/internal/video"
)

// benchFig3Config keeps the training benches affordable while preserving
// the qualitative orderings.
func benchFig3Config(seed int64) affect.StudyConfig {
	cfg := affect.DefaultStudyConfig()
	cfg.ClipsPerCorpus = 140
	cfg.Epochs = 8
	cfg.Seed = seed
	return cfg
}

func BenchmarkFig3aConfusionMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchFig3Config(int64(i) + 1)
		spec := affectdata.RAVDESS()
		clips, err := spec.Generate(cfg.Seed, cfg.ClipsPerCorpus)
		if err != nil {
			b.Fatal(err)
		}
		train, test := affectdata.Split(clips, cfg.TestFraction)
		_ = train
		_ = test
		study, err := affect.RunStudy(affect.StudyConfig{
			ClipsPerCorpus: cfg.ClipsPerCorpus, TestFraction: cfg.TestFraction,
			Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, LearningRate: cfg.LearningRate,
			Scale: cfg.Scale, Seed: cfg.Seed, Feature: cfg.Feature,
		})
		if err != nil {
			b.Fatal(err)
		}
		r, ok := study.Get("RAVDESS", affect.LSTMNet)
		if !ok {
			b.Fatal("no RAVDESS LSTM result")
		}
		var diag, total int
		for i, row := range r.Confusion {
			for j, v := range row {
				total += v
				if i == j {
					diag += v
				}
			}
		}
		b.ReportMetric(100*float64(diag)/float64(total), "diag_acc_%")
	}
}

func BenchmarkFig3bClassifierAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := affect.RunStudy(benchFig3Config(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*study.MeanAccuracy(affect.MLP), "NN_acc_%")
		b.ReportMetric(100*study.MeanAccuracy(affect.CNN), "CNN_acc_%")
		b.ReportMetric(100*study.MeanAccuracy(affect.LSTMNet), "LSTM_acc_%")
	}
}

func BenchmarkFig3cWeightSize(b *testing.B) {
	// Sizes are properties of the paper-scale builders; no training needed.
	cfg := affect.DefaultFeatureConfig(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		budgets, err := affect.ParamBudgets(cfg, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(budgets[affect.MLP])*4/1024, "NN_float_KB")
		b.ReportMetric(float64(budgets[affect.CNN])*4/1024, "CNN_float_KB")
		b.ReportMetric(float64(budgets[affect.LSTMNet])*4/1024, "LSTM_float_KB")
		b.ReportMetric(float64(budgets[affect.MLP])/1024, "NN_8bit_KB")
		b.ReportMetric(float64(budgets[affect.CNN])/1024, "CNN_8bit_KB")
		b.ReportMetric(float64(budgets[affect.LSTMNet])/1024, "LSTM_8bit_KB")
	}
}

func BenchmarkFig3dQuantizedAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := affect.RunStudy(benchFig3Config(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range affect.ModelKinds() {
			r, ok := study.Get("EMOVO", kind)
			if !ok {
				b.Fatal("missing EMOVO result")
			}
			b.ReportMetric(100*r.Accuracy, kind.String()+"_float_%")
			b.ReportMetric(100*r.QuantAccuracy, kind.String()+"_8bit_%")
		}
	}
}

func BenchmarkFig6DecoderModes(b *testing.B) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := h264.CompareModes(src, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			b.ReportMetric(r.SavingPct, string(r.Mode.String())+"_saving_%")
		}
	}
}

func BenchmarkFig6PlaybackEnergy(b *testing.B) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		b.Fatal(err)
	}
	rates, err := video.MeasureModeRates(src, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel(), 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var schedule []video.Scheduled
		for _, s := range affectdata.UulmMACSchedule() {
			schedule = append(schedule, video.Scheduled{StartMin: s.StartMin, EndMin: s.EndMin, State: s.State})
		}
		truth, err := video.RunWithSchedule(schedule, rates, video.PaperPolicy())
		if err != nil {
			b.Fatal(err)
		}
		tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		cls, err := video.RunWithClassifier(tr.Samples, tr.SampleRate, sc.DefaultConfig(),
			rates, video.PaperPolicy(), tr.StateAt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(truth.SavingPct, "truth_saving_%")
		b.ReportMetric(cls.SavingPct, "classifier_saving_%")
		b.ReportMetric(100*cls.ClassifierAccuracy, "sc_acc_%")
	}
}

func BenchmarkFig7UsageDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := RunFig7()
		for _, s := range rep.Subjects {
			b.ReportMetric(100*s.MessagingBrowsingShare(),
				"subj"+string(rune('0'+s.ID))+"_msg_browse_%")
		}
	}
}

func BenchmarkFig9ProcessDiagram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultAppStudyConfig()
		cfg.Monkey.Seed = int64(i) + 1
		res, err := core.RunAppStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Comparison.Baseline.Metrics.Kills), "fifo_kills")
		b.ReportMetric(float64(res.Comparison.Emotional.Metrics.Kills), "emotional_kills")
	}
}

func BenchmarkFig10MemorySavings(b *testing.B) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i := 0; i < b.N; i++ {
		rep, err := RunFig10(seeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MemorySavingPct, "memory_saving_%")
		b.ReportMetric(rep.TimeSavingPct, "time_saving_%")
		b.ReportMetric(float64(rep.BaselineBytes), "baseline_bytes")
	}
}

// BenchmarkAblationSth sweeps the Input Selector threshold, the design
// knob DESIGN.md calls out: larger S_th deletes more units for more power
// saving at more quality loss.
func BenchmarkAblationSth(b *testing.B) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := h264.NewEncoder(h264.CalibrationEncoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	stream, units, err := enc.EncodeSequence(src)
	if err != nil {
		b.Fatal(err)
	}
	_ = units
	model := h264.DefaultEnergyModel()
	lumaBytes := 176 * 144
	std, err := h264.DecodePipeline(stream, h264.ModeStandard)
	if err != nil {
		b.Fatal(err)
	}
	eStd := model.Charge(std.Activity, lumaBytes).Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sth := range []int{70, 140, 280, 560} {
			all, err := h264.SplitStream(stream)
			if err != nil {
				b.Fatal(err)
			}
			kept, st := h264.ApplySelector(all, h264.SelectorConfig{Sth: sth, F: 1})
			ks, err := h264.MarshalStream(kept)
			if err != nil {
				b.Fatal(err)
			}
			dec := h264.NewDecoder()
			frames, err := dec.DecodeStream(ks)
			if err != nil {
				b.Fatal(err)
			}
			frames = append(frames, dec.ConcealTo(len(src))...)
			e := model.Charge(dec.Activity(), lumaBytes).Total()
			psnr, err := h264.MeanPSNR(src, frames)
			if err != nil {
				b.Fatal(err)
			}
			prefix := "sth" + itoa(sth)
			b.ReportMetric(100*(1-e/eStd), prefix+"_saving_%")
			b.ReportMetric(psnr, prefix+"_psnr_dB")
			b.ReportMetric(float64(st.UnitsDeleted), prefix+"_deleted")
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

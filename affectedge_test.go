package affectedge

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/h264"
)

func TestTrainAndClassify(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	c, err := TrainClassifier(ClassifierLSTM, TrainOptions{
		Corpus: "EMOVO", Clips: 84, Epochs: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Classes()) != 7 {
		t.Fatalf("%d classes, want 7 (EMOVO)", len(c.Classes()))
	}
	// Classify a batch of fresh utterances; accuracy must beat chance.
	var hits, total int
	for seed := int64(100); seed < 104; seed++ {
		for _, label := range []Emotion{emotion.Happy, emotion.Sad, emotion.Angry} {
			wave, _, err := SyntheticSpeech(label, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, probs, err := c.Classify(wave)
			if err != nil {
				t.Fatal(err)
			}
			if len(probs) != 7 {
				t.Fatalf("%d probabilities", len(probs))
			}
			var sum float64
			for _, p := range probs {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("probabilities sum to %g", sum)
			}
			total++
			if got == label {
				hits++
			}
		}
	}
	if float64(hits)/float64(total) < 0.34 { // chance is 1/7
		t.Errorf("classification %d/%d below 2x chance", hits, total)
	}
}

func TestClassifierSaveLoadQuantize(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	c, err := TrainClassifier(ClassifierMLP, TrainOptions{Clips: 42, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := TrainClassifier(ClassifierMLP, TrainOptions{Clips: 42, Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	fb, qb, err := c.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if fb <= qb*3 {
		t.Errorf("quantized size %d not ~4x below float %d", qb, fb)
	}
	if c.NumParams() == 0 {
		t.Error("no parameters reported")
	}
}

func TestTrainClassifierValidation(t *testing.T) {
	if _, err := TrainClassifier(ClassifierKind(9), TrainOptions{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := TrainClassifier(ClassifierMLP, TrainOptions{Corpus: "nope"}); err == nil {
		t.Error("unknown corpus accepted")
	}
}

func TestNewManagerAndObserve(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Observe(Observation{
			At: time.Duration(i) * time.Second, Label: emotion.Angry, Confidence: 0.9,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m.DecoderMode() != h264.ModeStandard {
		t.Errorf("mode %v after sustained anger, want standard (tense)", m.DecoderMode())
	}
	if m.Mood() != emotion.Excited {
		t.Error("mood should be excited")
	}
}

func TestAdaptiveDecode(t *testing.T) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := h264.NewEncoder(h264.CalibrationEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	frames, deleted, eStd, err := AdaptiveDecode(stream, h264.ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 12 || deleted != 0 {
		t.Errorf("standard: frames=%d deleted=%d", frames, deleted)
	}
	framesC, deletedC, eCmb, err := AdaptiveDecode(stream, h264.ModeCombined)
	if err != nil {
		t.Fatal(err)
	}
	if framesC != 12 {
		t.Errorf("combined output %d frames", framesC)
	}
	if deletedC == 0 {
		t.Error("combined mode deleted nothing")
	}
	if eCmb >= eStd {
		t.Errorf("combined energy %.0f not below standard %.0f", eCmb, eStd)
	}
}

func TestPlaybackAndAppStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("studies skipped in -short mode")
	}
	samples, rate, err := SyntheticSCRecording(5)
	if err != nil {
		t.Fatal(err)
	}
	saving, err := PlaybackStudy(samples, rate)
	if err != nil {
		t.Fatal(err)
	}
	if saving < 10 || saving > 35 {
		t.Errorf("playback saving %.1f%% implausible", saving)
	}
	mem, tm, err := AppStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if mem <= -20 || mem >= 60 || tm <= -20 || tm >= 60 {
		t.Errorf("app study savings %.1f/%.1f implausible", mem, tm)
	}
}

func TestSimulatedSession(t *testing.T) {
	fifo, err := SimulatedSession(1, "fifo")
	if err != nil {
		t.Fatal(err)
	}
	emo, err := SimulatedSession(1, "emotional")
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Launches != emo.Launches {
		t.Error("policies saw different workloads")
	}
	if fifo.ColdStarts == 0 {
		t.Error("no cold starts recorded")
	}
	if _, err := SimulatedSession(1, "lru"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunFig6Report(t *testing.T) {
	if testing.Short() {
		t.Skip("decode-heavy report skipped in -short mode")
	}
	rep, err := RunFig6(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Modes) != 4 {
		t.Fatalf("%d modes", len(rep.Modes))
	}
	out := rep.FormatFig6()
	for _, want := range []string{"standard", "df-off", "deletion", "combined", "23.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q", want)
		}
	}
}

func TestRunFig7Report(t *testing.T) {
	out := RunFig7().FormatFig7()
	for _, want := range []string{"messaging", "internet_browser", "subj1", "subj4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 output missing %q", want)
		}
	}
}

func TestRunFig9Report(t *testing.T) {
	rep, err := RunFig9(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineKills <= rep.EmotionalKills {
		t.Errorf("baseline kills %d <= emotional %d", rep.BaselineKills, rep.EmotionalKills)
	}
	out := rep.FormatFig9()
	if !strings.Contains(out, "FIFO") || !strings.Contains(out, "emotional") {
		t.Error("Fig9 output missing manager names")
	}
}

func TestRunFig10Report(t *testing.T) {
	rep, err := RunFig10([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineBytes <= rep.EmotionalBytes {
		t.Errorf("baseline bytes %d <= emotional %d", rep.BaselineBytes, rep.EmotionalBytes)
	}
	out := rep.FormatFig10()
	if !strings.Contains(out, "paper 17%") || !strings.Contains(out, "paper 12%") {
		t.Error("Fig10 output missing paper references")
	}
}

func TestSyntheticSpeech(t *testing.T) {
	wave, rate, err := SyntheticSpeech(emotion.Happy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 || len(wave) < 4000 {
		t.Errorf("rate=%g len=%d", rate, len(wave))
	}
}

// Package affectedge is a library-level reproduction of "Human Emotion
// Based Real-time Memory and Computation Management on Resource-Limited
// Edge Devices" (Wei, Zhong, Gu — DAC 2022).
//
// It couples real-time affect detection with hardware/system management on
// edge devices, providing three cooperating subsystems:
//
//   - Affect classification (§2): MLP/CNN/LSTM classifiers over speech
//     features (MFCC, zero-crossing rate, RMS energy, pitch, spectral
//     magnitude) at the paper's parameter budgets, with int8 post-training
//     quantization for wearable deployment.
//
//   - An affect-adaptive H.264/AVC decoder (§4): an Input Selector that
//     drops small P/B NAL units (parameters S_th, f), a 128x16-bit
//     pre-store buffer, and a deactivatable deblocking filter, with a
//     calibrated component power model (DF ~31.4% of decoder power).
//
//   - An emotional app/memory manager for Android-class devices (§5): an
//     App Affect Table and rank generator replacing the FIFO background
//     killer, cutting flash reload traffic.
//
// The affectedge package itself is the public facade; the heavy lifting
// lives in internal/ subpackages. The Experiments API (experiments.go)
// regenerates every quantitative figure of the paper.
package affectedge

import (
	"fmt"
	"io"
	"time"

	"affectedge/internal/affect"
	"affectedge/internal/affectdata"
	"affectedge/internal/android"
	"affectedge/internal/core"
	"affectedge/internal/emotion"
	"affectedge/internal/h264"
	"affectedge/internal/monkey"
	"affectedge/internal/nn"
	"affectedge/internal/sc"
	"affectedge/internal/video"
)

// Re-exported core vocabulary. These aliases give external callers the
// full type (methods included) without reaching into internal packages.
type (
	// Emotion is a discrete affect label (happy, sad, angry, ...).
	Emotion = emotion.Label
	// Affect is a point in the Russell circumplex (valence/arousal/dominance).
	Affect = emotion.Point
	// Attention is the task-attention state driving video quality.
	Attention = emotion.Attention
	// Mood is the coarse excited/calm state driving app management.
	Mood = emotion.Mood
	// DecoderMode is an operating point of the adaptive H.264 decoder.
	DecoderMode = h264.DecoderMode
	// Manager is the affect-driven system manager (the paper's core
	// contribution): it consumes classifier observations and commands the
	// decoder mode and app-ranking mood.
	Manager = core.Manager
	// Observation is one classifier output fed to the Manager.
	Observation = core.Observation
)

// Classifier is a trained on-device affect classifier with its feature
// pipeline attached.
type Classifier struct {
	kind    affect.ModelKind
	net     *nn.Sequential
	feature affect.FeatureConfig
	classes []emotion.Label
}

// ClassifierKind selects the model family.
type ClassifierKind int

// Classifier families from §2.2.
const (
	ClassifierMLP ClassifierKind = iota
	ClassifierCNN
	ClassifierLSTM
)

func (k ClassifierKind) internal() (affect.ModelKind, error) {
	switch k {
	case ClassifierMLP:
		return affect.MLP, nil
	case ClassifierCNN:
		return affect.CNN, nil
	case ClassifierLSTM:
		return affect.LSTMNet, nil
	}
	return 0, fmt.Errorf("affectedge: unknown classifier kind %d", int(k))
}

// TrainOptions controls TrainClassifier.
type TrainOptions struct {
	// Corpus is "RAVDESS", "EMOVO" or "CREMA-D" (default EMOVO).
	Corpus string
	// Clips caps the synthesized corpus size (0 = a fast default of 420).
	Clips int
	// Epochs of training (0 = 14).
	Epochs int
	// PaperScale builds the full ~0.5M-parameter models instead of the
	// fast reduced ones.
	PaperScale bool
	Seed       int64
	// Progress, when non-nil, receives one line per epoch.
	Progress io.Writer
}

// TrainClassifier synthesizes the named corpus, trains a classifier of the
// given kind on it, and returns the deployable model.
func TrainClassifier(kind ClassifierKind, opts TrainOptions) (*Classifier, error) {
	mk, err := kind.internal()
	if err != nil {
		return nil, err
	}
	var spec affectdata.Spec
	switch opts.Corpus {
	case "", "EMOVO":
		spec = affectdata.EMOVO()
	case "RAVDESS":
		spec = affectdata.RAVDESS()
	case "CREMA-D":
		spec = affectdata.CREMAD()
	default:
		return nil, fmt.Errorf("affectedge: unknown corpus %q", opts.Corpus)
	}
	clips := opts.Clips
	if clips <= 0 {
		clips = 420
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = 14
	}
	scale := affect.FastScale
	if opts.PaperScale {
		scale = affect.PaperScale
	}
	data, err := spec.Generate(opts.Seed, clips)
	if err != nil {
		return nil, err
	}
	fc := affect.DefaultFeatureConfig(spec.SampleRate)
	examples, classOf, err := affect.Dataset(data, fc)
	if err != nil {
		return nil, err
	}
	classes := make([]emotion.Label, len(classOf))
	for lbl, cls := range classOf {
		classes[cls] = emotion.Label(lbl)
	}
	net, err := affect.Build(mk, fc.NumFrames, fc.Dim(), len(classes), scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	tc := nn.TrainConfig{Epochs: epochs, BatchSize: 16, Optimizer: nn.NewAdam(2e-3), Seed: opts.Seed}
	if opts.Progress != nil {
		tc.Verbose = func(epoch int, loss, acc float64) {
			fmt.Fprintf(opts.Progress, "epoch %2d  loss %.4f  acc %.3f\n", epoch, loss, acc)
		}
	}
	if _, err := net.Fit(examples, tc); err != nil {
		return nil, err
	}
	return &Classifier{kind: mk, net: net, feature: fc, classes: classes}, nil
}

// Classify returns the most probable emotion for a speech waveform along
// with the class-probability vector (ordered per Classes).
func (c *Classifier) Classify(wave []float64) (Emotion, []float64, error) {
	x, err := affect.Features(wave, c.feature)
	if err != nil {
		return 0, nil, err
	}
	probs, err := c.net.Predict(x)
	if err != nil {
		return 0, nil, err
	}
	return c.classes[nn.Argmax(probs)], probs, nil
}

// Classes returns the label per class index.
func (c *Classifier) Classes() []Emotion { return append([]Emotion(nil), c.classes...) }

// NumParams returns the trainable parameter count.
func (c *Classifier) NumParams() int { return c.net.NumParams() }

// Quantize converts the classifier to int8 storage (the wearable
// deployment path) and returns the deployment sizes in bytes.
func (c *Classifier) Quantize() (floatBytes, int8Bytes int, err error) {
	qm := nn.Quantize(c.net)
	if err := qm.ApplyTo(c.net); err != nil {
		return 0, 0, err
	}
	return nn.Float32SizeBytes(c.net), qm.SizeBytes(), nil
}

// Save serializes the model weights.
func (c *Classifier) Save(w io.Writer) error { return c.net.Save(w) }

// Load restores weights saved from an identically configured classifier.
func (c *Classifier) Load(r io.Reader) error { return c.net.Load(r) }

// NewManager returns the affect-driven system manager with the paper's
// default policy (see core.DefaultManagerConfig).
func NewManager() (*Manager, error) {
	return core.NewManager(core.DefaultManagerConfig())
}

// AdaptiveDecode runs an annex-B H.264 stream through the affect-adaptive
// decoder front end in the given mode, returning decoded frame count,
// deleted NAL units, and normalized energy.
func AdaptiveDecode(stream []byte, mode DecoderMode) (frames, deleted int, energy float64, err error) {
	res, err := h264.DecodePipeline(stream, mode)
	if err != nil {
		return 0, 0, 0, err
	}
	model := h264.DefaultEnergyModel()
	// Frame luma size is known to the decoder via SPS; use the pipeline's
	// first frame.
	lumaBytes := 0
	if len(res.Frames) > 0 {
		lumaBytes = res.Frames[0].Width * res.Frames[0].Height
	}
	ledger := model.Charge(res.Activity, lumaBytes)
	return len(res.Frames), res.Selector.UnitsDeleted, ledger.Total(), nil
}

// PlaybackStudy runs the §4 case study: an SC recording drives decoder
// modes over a session; returns the energy saving versus always-standard.
func PlaybackStudy(scSamples []float64, scRate float64) (savingPct float64, err error) {
	src, err := h264.GenerateVideo(h264.CalibrationVideoConfig(48))
	if err != nil {
		return 0, err
	}
	rates, err := video.MeasureModeRates(src, h264.CalibrationEncoderConfig(), h264.DefaultEnergyModel(), 24)
	if err != nil {
		return 0, err
	}
	res, err := video.RunWithClassifier(scSamples, scRate, sc.DefaultConfig(), rates, video.PaperPolicy(), nil)
	if err != nil {
		return 0, err
	}
	return res.SavingPct, nil
}

// AppStudy runs the §5 case study with the given seed and returns the
// memory-loading and loading-time savings of the emotional manager over
// the FIFO baseline.
func AppStudy(seed int64) (memSavingPct, timeSavingPct float64, err error) {
	cfg := core.DefaultAppStudyConfig()
	cfg.Monkey.Seed = seed
	res, err := core.RunAppStudy(cfg)
	if err != nil {
		return 0, 0, err
	}
	return res.Comparison.MemorySavingPct, res.Comparison.TimeSavingPct, nil
}

// SimulatedSession generates a seeded 20-minute emotional usage session
// (12 min excited + 8 min calm) and replays it on a simulated device under
// the named policy ("emotional" or "fifo"), returning the metrics.
func SimulatedSession(seed int64, policyName string) (android.Metrics, error) {
	cfg := core.DefaultAppStudyConfig()
	cfg.Monkey.Seed = seed
	wl, err := monkey.Generate(cfg.Monkey)
	if err != nil {
		return android.Metrics{}, err
	}
	events := make([]android.WorkloadEvent, len(wl.Events))
	for i, e := range wl.Events {
		events[i] = android.WorkloadEvent{At: e.At, App: e.App, Mood: e.Mood}
	}
	var policy android.KillPolicy
	switch policyName {
	case "fifo":
		policy = android.FIFOPolicy{}
	case "emotional":
		table, err := android.AffectTableFromSubjects()
		if err != nil {
			return android.Metrics{}, err
		}
		policy, err = android.NewEmotionalPolicy(table)
		if err != nil {
			return android.Metrics{}, err
		}
	default:
		return android.Metrics{}, fmt.Errorf("affectedge: unknown policy %q", policyName)
	}
	res, err := android.Run(cfg.Device, policy, events)
	if err != nil {
		return android.Metrics{}, err
	}
	return res.Metrics, nil
}

// SyntheticSCRecording returns a seeded 40-minute uulmMAC-style skin
// conductance trace (samples, sample rate) with the paper's label
// timeline, for use with PlaybackStudy.
func SyntheticSCRecording(seed int64) ([]float64, float64, error) {
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, seed)
	if err != nil {
		return nil, 0, err
	}
	return tr.Samples, tr.SampleRate, nil
}

// SyntheticSpeech returns one seeded synthetic emotional utterance with
// the requested label, for demos and tests.
func SyntheticSpeech(label Emotion, seed int64) ([]float64, float64, error) {
	spec := affectdata.RAVDESS()
	clips, err := spec.Generate(seed, 64)
	if err != nil {
		return nil, 0, err
	}
	for _, c := range clips {
		if c.Label == label {
			return c.Wave, spec.SampleRate, nil
		}
	}
	return nil, 0, fmt.Errorf("affectedge: label %v not in generated batch", label)
}

// Version is the library version.
const Version = "1.0.0"

// sessionDuration is the paper's compressed app-management session length.
const sessionDuration = 20 * time.Minute

package emotion

import "math"

// Mood-angle sector mapping (Fig 1a): the circumplex plane divides into
// sectors, one per discrete label, by the angle of the canonical label
// placements. FromMoodAngle quantizes a continuous classifier output
// (angle + intensity) back onto the discrete label set — the inverse of
// Label.Circumplex for angular inputs.

// sector is a half-open angular interval [from, to) owning a label.
type sector struct {
	from, to float64
	label    Label
}

// sectors are built once from the canonical placements, ordered by angle.
var sectors = buildSectors()

func buildSectors() []sector {
	type entry struct {
		angle float64
		label Label
	}
	var entries []entry
	for _, l := range Labels() {
		if l == Neutral {
			continue
		}
		entries = append(entries, entry{l.Circumplex().MoodAngle(), l})
	}
	// Insertion sort by angle.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].angle < entries[j-1].angle; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	// Sector boundaries at the midpoints between adjacent label angles
	// (wrapping around the circle).
	n := len(entries)
	out := make([]sector, n)
	for i := 0; i < n; i++ {
		prev := entries[(i+n-1)%n].angle
		cur := entries[i].angle
		next := entries[(i+1)%n].angle
		from := midAngle(prev, cur)
		to := midAngle(cur, next)
		out[i] = sector{from: from, to: to, label: entries[i].label}
	}
	return out
}

// midAngle returns the midpoint of the shorter arc from a to b.
func midAngle(a, b float64) float64 {
	d := b - a
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	m := a + d/2
	for m <= -math.Pi {
		m += 2 * math.Pi
	}
	for m > math.Pi {
		m -= 2 * math.Pi
	}
	return m
}

// inArc reports whether angle x lies on the arc from from to to (going
// counterclockwise).
func inArc(x, from, to float64) bool {
	span := to - from
	for span <= 0 {
		span += 2 * math.Pi
	}
	d := x - from
	for d < 0 {
		d += 2 * math.Pi
	}
	return d < span
}

// FromMoodAngle maps a mood angle (radians) and intensity onto the
// discrete label whose sector contains the angle. Intensities below the
// neutral radius map to Neutral.
func FromMoodAngle(angle, intensity float64) Label {
	const neutralRadius = 0.20
	if intensity < neutralRadius {
		return Neutral
	}
	for _, s := range sectors {
		if inArc(angle, s.from, s.to) {
			return s.label
		}
	}
	// Numerically unreachable; the sectors tile the circle.
	return Neutral
}

// FromPointSector maps a circumplex point onto a label via its mood angle
// (sector quantization rather than nearest-neighbor distance).
func FromPointSector(p Point) Label {
	return FromMoodAngle(p.MoodAngle(), p.Intensity())
}

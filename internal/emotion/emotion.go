// Package emotion defines the affect taxonomy used throughout the system:
// discrete emotion labels as used by the speech corpora (neutral, happy,
// angry, sad, ...), the continuous Russell circumplex model
// (valence/arousal/dominance), and the task-oriented attention states used
// by the uulmMAC-style playback case study (distracted, concentrated,
// tense, relaxed).
//
// The paper (Fig 1) quantifies mental states by the "mood angle" formed in
// valence/arousal (/dominance) space; this package provides the mapping in
// both directions so classifiers emitting either representation can drive
// the same system-management policies.
package emotion

import (
	"fmt"
	"math"
)

// Label is a discrete emotion class as used by the emotional-speech corpora
// (RAVDESS, EMOVO, CREMA-D) and by the system-management policy tables.
type Label int

// Discrete emotion labels. The first eight mirror the RAVDESS label set;
// the corpora used in the paper each use a subset.
const (
	Neutral Label = iota
	Calm
	Happy
	Sad
	Angry
	Fearful
	Disgust
	Surprised
	numLabels
)

// NumLabels is the number of discrete emotion labels.
const NumLabels = int(numLabels)

var labelNames = [...]string{
	Neutral:   "neutral",
	Calm:      "calm",
	Happy:     "happy",
	Sad:       "sad",
	Angry:     "angry",
	Fearful:   "fearful",
	Disgust:   "disgust",
	Surprised: "surprised",
}

// String returns the lowercase corpus-style name of the label.
func (l Label) String() string {
	if l < 0 || int(l) >= len(labelNames) {
		return fmt.Sprintf("label(%d)", int(l))
	}
	return labelNames[l]
}

// Valid reports whether l is one of the defined labels.
func (l Label) Valid() bool { return l >= 0 && l < numLabels }

// ParseLabel returns the Label with the given name.
func ParseLabel(name string) (Label, error) {
	for i, n := range labelNames {
		if n == name {
			return Label(i), nil
		}
	}
	return 0, fmt.Errorf("emotion: unknown label %q", name)
}

// Labels returns all defined labels in order.
func Labels() []Label {
	out := make([]Label, NumLabels)
	for i := range out {
		out[i] = Label(i)
	}
	return out
}

// Point is a coordinate in the Russell circumplex model. Valence is the
// pleasure/displeasure axis, Arousal the activation axis, and Dominance the
// in-control/controlled axis. All three are normalized to [-1, 1].
type Point struct {
	Valence   float64
	Arousal   float64
	Dominance float64
}

// MoodAngle returns the angle (radians, in (-pi, pi]) of the point in the
// valence/arousal plane, the paper's two-dimensional "mood angle". Zero
// radians points along positive valence (contented/happy side); pi/2 along
// positive arousal (alert/excited side).
func (p Point) MoodAngle() float64 { return math.Atan2(p.Arousal, p.Valence) }

// Intensity returns the radial distance from the neutral origin in the
// valence/arousal plane, i.e. how strongly the affect deviates from neutral.
func (p Point) Intensity() float64 { return math.Hypot(p.Valence, p.Arousal) }

// circumplex is the canonical placement of each discrete label in
// valence/arousal/dominance space, following Russell's circumplex (Fig 1a/1b).
var circumplex = map[Label]Point{
	Neutral:   {0, 0, 0},
	Calm:      {0.45, -0.55, 0.15},
	Happy:     {0.80, 0.50, 0.40},
	Sad:       {-0.70, -0.45, -0.40},
	Angry:     {-0.65, 0.75, 0.30},
	Fearful:   {-0.60, 0.65, -0.55},
	Disgust:   {-0.70, 0.25, 0.05},
	Surprised: {0.25, 0.85, -0.10},
}

// Circumplex returns the canonical circumplex coordinates of a label.
func (l Label) Circumplex() Point { return circumplex[l] }

// Nearest returns the discrete label whose circumplex placement is closest
// (Euclidean, valence/arousal plane) to p. Points with intensity below
// neutralRadius map to Neutral.
func Nearest(p Point) Label {
	const neutralRadius = 0.20
	if p.Intensity() < neutralRadius {
		return Neutral
	}
	best, bestD := Neutral, math.Inf(1)
	for l, c := range circumplex {
		if l == Neutral {
			continue
		}
		d := math.Hypot(p.Valence-c.Valence, p.Arousal-c.Arousal)
		if d < bestD || (d == bestD && l < best) {
			best, bestD = l, d
		}
	}
	return best
}

// Attention is the task-oriented affect state used by the uulmMAC-style
// video playback case study (§4, Fig 6 bottom). It captures how critical
// perceived video quality is to the user right now.
type Attention int

// Attention states, ordered by increasing quality criticality.
const (
	Distracted   Attention = iota // quality not critical: maximum power saving
	Relaxed                       // quality somewhat relevant
	Concentrated                  // quality relevant
	Tense                         // highly concentrated: best quality
	numAttention
)

// NumAttention is the number of attention states.
const NumAttention = int(numAttention)

var attentionNames = [...]string{
	Distracted:   "distracted",
	Relaxed:      "relaxed",
	Concentrated: "concentrated",
	Tense:        "tense",
}

// String returns the lowercase name of the attention state.
func (a Attention) String() string {
	if a < 0 || int(a) >= len(attentionNames) {
		return fmt.Sprintf("attention(%d)", int(a))
	}
	return attentionNames[a]
}

// Valid reports whether a is one of the defined attention states.
func (a Attention) Valid() bool { return a >= 0 && a < numAttention }

// ParseAttention returns the Attention state with the given name.
func ParseAttention(name string) (Attention, error) {
	for i, n := range attentionNames {
		if n == name {
			return Attention(i), nil
		}
	}
	return 0, fmt.Errorf("emotion: unknown attention state %q", name)
}

// Mood is the coarse binary mood used by the app-management case study
// (§5, Fig 9): the workload alternates between an excited and a calm phase.
type Mood int

// Moods used by the app-management experiments.
const (
	Excited Mood = iota
	CalmMood
	numMoods
)

// NumMoods is the number of coarse moods.
const NumMoods = int(numMoods)

// String returns the name of the mood.
func (m Mood) String() string {
	switch m {
	case Excited:
		return "excited"
	case CalmMood:
		return "calm"
	}
	return fmt.Sprintf("mood(%d)", int(m))
}

// Valid reports whether m is one of the defined moods.
func (m Mood) Valid() bool { return m >= 0 && m < numMoods }

// MoodOf collapses a discrete label onto the coarse excited/calm axis by
// its arousal coordinate. High-arousal states count as excited.
func MoodOf(l Label) Mood {
	if l.Circumplex().Arousal > 0.1 {
		return Excited
	}
	return CalmMood
}

// AttentionOf maps a circumplex point to an attention state using arousal
// as the activation proxy: strongly negative arousal reads as distracted,
// strongly positive as tense. This mirrors the paper's use of SC magnitude
// (an arousal correlate) to derive the playback states.
func AttentionOf(p Point) Attention {
	switch {
	case p.Arousal < -0.35:
		return Distracted
	case p.Arousal < 0.10:
		return Relaxed
	case p.Arousal < 0.55:
		return Concentrated
	default:
		return Tense
	}
}

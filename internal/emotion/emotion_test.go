package emotion

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		Neutral:   "neutral",
		Happy:     "happy",
		Angry:     "angry",
		Surprised: "surprised",
		Label(99): "label(99)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Label(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestParseLabelRoundTrip(t *testing.T) {
	for _, l := range Labels() {
		got, err := ParseLabel(l.String())
		if err != nil {
			t.Fatalf("ParseLabel(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("ParseLabel(%q) = %v, want %v", l.String(), got, l)
		}
	}
	if _, err := ParseLabel("bogus"); err == nil {
		t.Error("ParseLabel(bogus) succeeded, want error")
	}
}

func TestLabelsCount(t *testing.T) {
	if len(Labels()) != NumLabels {
		t.Fatalf("Labels() has %d entries, want %d", len(Labels()), NumLabels)
	}
	for _, l := range Labels() {
		if !l.Valid() {
			t.Errorf("label %v not valid", l)
		}
	}
	if Label(-1).Valid() || Label(NumLabels).Valid() {
		t.Error("out-of-range labels reported valid")
	}
}

func TestMoodAngle(t *testing.T) {
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{Valence: 1, Arousal: 0}, 0},
		{Point{Valence: 0, Arousal: 1}, math.Pi / 2},
		{Point{Valence: -1, Arousal: 0}, math.Pi},
		{Point{Valence: 1, Arousal: 1}, math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.p.MoodAngle(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MoodAngle(%+v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestIntensity(t *testing.T) {
	p := Point{Valence: 3, Arousal: 4}
	if got := p.Intensity(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Intensity = %g, want 5", got)
	}
}

func TestNearestRecoversCanonicalPlacements(t *testing.T) {
	// Every non-neutral label's own circumplex point must map back to it.
	for _, l := range Labels() {
		if l == Neutral {
			continue
		}
		if got := Nearest(l.Circumplex()); got != l {
			t.Errorf("Nearest(circumplex(%v)) = %v", l, got)
		}
	}
}

func TestNearestNeutralOrigin(t *testing.T) {
	if got := Nearest(Point{}); got != Neutral {
		t.Errorf("Nearest(origin) = %v, want neutral", got)
	}
	if got := Nearest(Point{Valence: 0.05, Arousal: -0.05}); got != Neutral {
		t.Errorf("Nearest(near origin) = %v, want neutral", got)
	}
}

func TestAttentionParseRoundTrip(t *testing.T) {
	for i := 0; i < NumAttention; i++ {
		a := Attention(i)
		got, err := ParseAttention(a.String())
		if err != nil {
			t.Fatalf("ParseAttention(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("ParseAttention(%q) = %v, want %v", a.String(), got, a)
		}
	}
	if _, err := ParseAttention("asleep"); err == nil {
		t.Error("ParseAttention(asleep) succeeded, want error")
	}
}

func TestAttentionOfOrdering(t *testing.T) {
	// Attention must be monotone non-decreasing in arousal.
	prev := Distracted
	for a := -1.0; a <= 1.0; a += 0.01 {
		cur := AttentionOf(Point{Arousal: a})
		if cur < prev {
			t.Fatalf("AttentionOf not monotone at arousal %g: %v after %v", a, cur, prev)
		}
		prev = cur
	}
	if AttentionOf(Point{Arousal: -1}) != Distracted {
		t.Error("lowest arousal should be distracted")
	}
	if AttentionOf(Point{Arousal: 1}) != Tense {
		t.Error("highest arousal should be tense")
	}
}

func TestMoodOf(t *testing.T) {
	if MoodOf(Happy) != Excited || MoodOf(Angry) != Excited {
		t.Error("high-arousal labels should map to excited")
	}
	if MoodOf(Calm) != CalmMood || MoodOf(Sad) != CalmMood || MoodOf(Neutral) != CalmMood {
		t.Error("low-arousal labels should map to calm")
	}
}

func TestMoodString(t *testing.T) {
	if Excited.String() != "excited" || CalmMood.String() != "calm" {
		t.Error("mood names wrong")
	}
	if Mood(7).String() != "mood(7)" {
		t.Error("out-of-range mood name wrong")
	}
}

// Property: Nearest always returns a valid label, and intensity below the
// neutral radius always yields Neutral.
func TestNearestProperties(t *testing.T) {
	f := func(v, a float64) bool {
		// Clamp quick's unbounded floats into the model's domain.
		v = math.Mod(v, 1)
		a = math.Mod(a, 1)
		if math.IsNaN(v) || math.IsNaN(a) {
			return true
		}
		p := Point{Valence: v, Arousal: a}
		l := Nearest(p)
		if !l.Valid() {
			return false
		}
		if p.Intensity() < 0.20 && l != Neutral {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mood angle is always in (-pi, pi], intensity non-negative.
func TestMoodAngleRange(t *testing.T) {
	f := func(v, a float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsInf(v, 0) || math.IsInf(a, 0) {
			return true
		}
		p := Point{Valence: v, Arousal: a}
		ang := p.MoodAngle()
		return ang > -math.Pi-1e-9 && ang <= math.Pi+1e-9 && p.Intensity() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package emotion

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSectorsRecoverCanonicalLabels(t *testing.T) {
	// Each label's own canonical angle must fall in its own sector.
	for _, l := range Labels() {
		if l == Neutral {
			continue
		}
		p := l.Circumplex()
		if got := FromMoodAngle(p.MoodAngle(), p.Intensity()); got != l {
			t.Errorf("FromMoodAngle(circumplex(%v)) = %v", l, got)
		}
		if got := FromPointSector(p); got != l {
			t.Errorf("FromPointSector(circumplex(%v)) = %v", l, got)
		}
	}
}

func TestSectorsTileTheCircle(t *testing.T) {
	// Every angle belongs to exactly one sector.
	for a := -math.Pi + 1e-6; a < math.Pi; a += 0.01 {
		var owners int
		for _, s := range sectors {
			if inArc(a, s.from, s.to) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("angle %.3f owned by %d sectors", a, owners)
		}
	}
}

func TestFromMoodAngleNeutral(t *testing.T) {
	if FromMoodAngle(1.0, 0.05) != Neutral {
		t.Error("low intensity should be neutral")
	}
	if FromMoodAngle(1.0, 0.5) == Neutral {
		t.Error("high intensity should not be neutral")
	}
}

// Property: sector mapping always yields a valid label, and agrees with
// nearest-neighbor on the canonical points themselves.
func TestSectorProperties(t *testing.T) {
	f := func(angle, intensity float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		angle = math.Mod(angle, math.Pi)
		intensity = math.Abs(math.Mod(intensity, 1))
		return FromMoodAngle(angle, intensity).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidAngleWrapping(t *testing.T) {
	// Midpoint across the -pi/pi seam.
	m := midAngle(math.Pi-0.1, -math.Pi+0.1)
	if math.Abs(math.Abs(m)-math.Pi) > 0.11 {
		t.Errorf("seam midpoint %g not near +-pi", m)
	}
	if got := midAngle(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("midAngle(0,1) = %g", got)
	}
}

package monkey

import (
	"fmt"
	"math/rand"
	"time"

	"affectedge/internal/emotion"
)

// DayConfig generates a full-day usage pattern: multiple sessions
// separated by idle gaps, each session carrying its own mood. The paper
// compresses sessions by removing idle time; this generator produces the
// uncompressed timeline so compression itself can be studied.
type DayConfig struct {
	// Sessions is the number of usage sessions in the day.
	Sessions int
	// SessionMean is the mean session length; actual lengths vary ±50%.
	SessionMean time.Duration
	// GapMean is the mean idle gap between sessions.
	GapMean time.Duration
	// Session is the per-session generation config; its Phases are
	// replaced per session, its AppDist must cover both moods.
	Session Config
	// ExcitedProb is the probability a session is excited (vs calm).
	ExcitedProb float64
	Seed        int64
}

// DefaultDayConfig returns an 8-session day.
func DefaultDayConfig() DayConfig {
	s := DefaultConfig()
	return DayConfig{
		Sessions:    8,
		SessionMean: 15 * time.Minute,
		GapMean:     75 * time.Minute,
		Session:     s,
		ExcitedProb: 0.45,
		Seed:        1,
	}
}

// Day is a generated full-day workload.
type Day struct {
	Events  []LaunchEvent
	Horizon time.Duration
	// SessionBounds are the [start, end) of each session.
	SessionBounds [][2]time.Duration
	// Moods per session.
	Moods []emotion.Mood
}

// GenerateDay builds the day: sessions with per-session moods, idle gaps
// between them, events time-shifted onto the day timeline.
func GenerateDay(cfg DayConfig) (*Day, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("monkey: day needs at least one session")
	}
	if cfg.SessionMean <= 0 || cfg.GapMean < 0 {
		return nil, fmt.Errorf("monkey: invalid day durations")
	}
	if cfg.ExcitedProb < 0 || cfg.ExcitedProb > 1 {
		return nil, fmt.Errorf("monkey: excited probability %g outside [0,1]", cfg.ExcitedProb)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	day := &Day{}
	var clock time.Duration
	for s := 0; s < cfg.Sessions; s++ {
		dur := time.Duration(float64(cfg.SessionMean) * (0.5 + rng.Float64()))
		mood := emotion.CalmMood
		if rng.Float64() < cfg.ExcitedProb {
			mood = emotion.Excited
		}
		sc := cfg.Session
		sc.Phases = []Phase{{Mood: mood, Duration: dur}}
		sc.Seed = cfg.Seed*1000 + int64(s)
		wl, err := Generate(sc)
		if err != nil {
			return nil, fmt.Errorf("monkey: session %d: %w", s, err)
		}
		for _, e := range wl.Events {
			e.At += clock
			day.Events = append(day.Events, e)
		}
		day.SessionBounds = append(day.SessionBounds, [2]time.Duration{clock, clock + dur})
		day.Moods = append(day.Moods, mood)
		clock += dur
		if s < cfg.Sessions-1 {
			clock += time.Duration(float64(cfg.GapMean) * (0.5 + rng.Float64()))
		}
	}
	day.Horizon = clock
	return day, nil
}

// Compress removes idle time: events are re-timed so sessions abut,
// exactly the paper's "shortened the operation time ... and removed the
// idle time" preprocessing. Returns the compressed workload.
func (d *Day) Compress() *Workload {
	wl := &Workload{}
	var offset time.Duration // accumulated idle removed so far
	prevEnd := time.Duration(0)
	for i, b := range d.SessionBounds {
		offset += b[0] - prevEnd
		prevEnd = b[1]
		for _, e := range d.Events {
			if e.At >= b[0] && e.At < b[1] {
				e2 := e
				e2.At -= offset
				wl.Events = append(wl.Events, e2)
			}
		}
		_ = i
	}
	wl.Horizon = d.Horizon - offset
	return wl
}

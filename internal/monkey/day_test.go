package monkey

import (
	"testing"
	"time"

	"affectedge/internal/emotion"
)

func dayConfig(seed int64) DayConfig {
	cfg := DefaultDayConfig()
	cfg.Seed = seed
	cfg.Session.AppDist = testDist()
	return cfg
}

func TestGenerateDayStructure(t *testing.T) {
	day, err := GenerateDay(dayConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(day.SessionBounds) != 8 || len(day.Moods) != 8 {
		t.Fatalf("%d sessions", len(day.SessionBounds))
	}
	// Sessions are disjoint and ordered, with gaps between them.
	for i := 1; i < len(day.SessionBounds); i++ {
		if day.SessionBounds[i][0] <= day.SessionBounds[i-1][1] {
			t.Fatal("sessions overlap or abut (no idle gap)")
		}
	}
	// Every event falls inside some session and carries its mood.
	for _, e := range day.Events {
		var inside bool
		for i, b := range day.SessionBounds {
			if e.At >= b[0] && e.At < b[1] {
				inside = true
				if e.Mood != day.Moods[i] {
					t.Fatalf("event mood %v in session with mood %v", e.Mood, day.Moods[i])
				}
				break
			}
		}
		if !inside {
			t.Fatalf("event at %v outside all sessions", e.At)
		}
	}
	if day.Horizon <= day.SessionBounds[7][0] {
		t.Error("horizon before last session")
	}
}

func TestGenerateDayDeterministic(t *testing.T) {
	a, err := GenerateDay(dayConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDay(dayConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestDayMoodMix(t *testing.T) {
	// Over several days, both moods must appear.
	var excited, calm int
	for seed := int64(1); seed <= 5; seed++ {
		day, err := GenerateDay(dayConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range day.Moods {
			if m == emotion.Excited {
				excited++
			} else {
				calm++
			}
		}
	}
	if excited == 0 || calm == 0 {
		t.Errorf("mood mix degenerate: %d excited, %d calm", excited, calm)
	}
}

func TestCompressRemovesIdle(t *testing.T) {
	day, err := GenerateDay(dayConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	wl := day.Compress()
	if len(wl.Events) != len(day.Events) {
		t.Fatalf("compression lost events: %d vs %d", len(wl.Events), len(day.Events))
	}
	if wl.Horizon >= day.Horizon {
		t.Error("compression did not shorten the timeline")
	}
	// Still time-ordered and non-negative.
	for i, e := range wl.Events {
		if e.At < 0 || e.At > wl.Horizon {
			t.Fatalf("compressed event at %v outside [0, %v]", e.At, wl.Horizon)
		}
		if i > 0 && e.At < wl.Events[i-1].At {
			t.Fatal("compressed events out of order")
		}
	}
	// Compressed horizon equals the summed session lengths.
	var sessions time.Duration
	for _, b := range day.SessionBounds {
		sessions += b[1] - b[0]
	}
	if wl.Horizon != sessions {
		t.Errorf("compressed horizon %v, want %v", wl.Horizon, sessions)
	}
}

func TestGenerateDayValidation(t *testing.T) {
	cfg := dayConfig(1)
	cfg.Sessions = 0
	if _, err := GenerateDay(cfg); err == nil {
		t.Error("zero sessions accepted")
	}
	cfg = dayConfig(1)
	cfg.ExcitedProb = 2
	if _, err := GenerateDay(cfg); err == nil {
		t.Error("bad probability accepted")
	}
	cfg = dayConfig(1)
	cfg.SessionMean = 0
	if _, err := GenerateDay(cfg); err == nil {
		t.Error("zero session mean accepted")
	}
}

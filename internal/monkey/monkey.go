// Package monkey generates the simulated daily-usage workload of §5.2: a
// seeded sequence of app launches whose frequencies match the proxy
// subjects' category statistics (Fig 7), organized into mood phases
// (12 min excited, then 8 min calm in the paper's run), with temporal
// locality (users bounce within a small working set), periodic messaging
// check-ins, and random touch/typing interaction counts per app session.
package monkey

import (
	"fmt"
	"math/rand"
	"time"

	"affectedge/internal/emotion"
)

// Phase is one mood span of the session.
type Phase struct {
	Mood     emotion.Mood
	Duration time.Duration
}

// LaunchEvent is one app activation.
type LaunchEvent struct {
	At   time.Duration
	App  string
	Mood emotion.Mood
	// TouchEvents/KeyEvents are the random interaction inputs the monkey
	// script injects during the app session.
	TouchEvents int
	KeyEvents   int
}

// Workload is a generated session.
type Workload struct {
	Events  []LaunchEvent
	Horizon time.Duration
}

// Config parameterizes generation.
type Config struct {
	Phases []Phase
	// AppDist maps each phase mood to its app-launch distribution
	// (app name -> weight). Every phase mood must have an entry.
	AppDist map[emotion.Mood]map[string]float64
	// MeanInterval is the mean time between launches (exponential).
	MeanInterval time.Duration
	// RepeatProb is the probability of revisiting the recent working set
	// instead of sampling fresh from the mood distribution.
	RepeatProb float64
	// FavoriteProb is the probability of launching one of the mood's
	// favorite apps (its FavoriteCount most-weighted apps) regardless of
	// recency — users keep returning to mood-specific favorites across the
	// whole session, which is the revisit pattern the App Affect Table
	// exploits.
	FavoriteProb float64
	// FavoriteCount is the size of the per-mood favorites pool.
	FavoriteCount int
	// WorkingSet is the number of recent distinct apps kept for revisits.
	WorkingSet int
	// MessagingEvery inserts a periodic messaging check-in (0 disables).
	MessagingEvery time.Duration
	Seed           int64
}

// DefaultConfig returns the paper's compressed 20-minute session: a
// 12-minute excited phase followed by an 8-minute calm phase, with
// launches every ~15 s (idle time removed, per §5.2).
func DefaultConfig() Config {
	return Config{
		Phases: []Phase{
			{Mood: emotion.Excited, Duration: 12 * time.Minute},
			{Mood: emotion.CalmMood, Duration: 8 * time.Minute},
		},
		MeanInterval:   12 * time.Second,
		RepeatProb:     0.44,
		FavoriteProb:   0.16,
		FavoriteCount:  8,
		WorkingSet:     5,
		MessagingEvery: 2 * time.Minute,
		Seed:           1,
	}
}

// Generate builds a seeded workload. App choice: with RepeatProb revisit
// the working set (recency-weighted), otherwise sample an app from the
// current mood's subject distribution spread over the catalog.
func Generate(cfg Config) (*Workload, error) {
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("monkey: no phases")
	}
	if cfg.MeanInterval <= 0 {
		return nil, fmt.Errorf("monkey: mean interval %v must be positive", cfg.MeanInterval)
	}
	if cfg.RepeatProb < 0 || cfg.RepeatProb >= 1 {
		return nil, fmt.Errorf("monkey: repeat probability %g outside [0,1)", cfg.RepeatProb)
	}
	if cfg.FavoriteProb < 0 || cfg.RepeatProb+cfg.FavoriteProb >= 1 {
		return nil, fmt.Errorf("monkey: repeat+favorite probability %g outside [0,1)", cfg.RepeatProb+cfg.FavoriteProb)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	dists := map[emotion.Mood][]weighted{}
	favorites := map[emotion.Mood][]string{}
	for _, ph := range cfg.Phases {
		if _, ok := dists[ph.Mood]; ok {
			continue
		}
		d, ok := cfg.AppDist[ph.Mood]
		if !ok || len(d) == 0 {
			return nil, fmt.Errorf("monkey: no app distribution for mood %v", ph.Mood)
		}
		dists[ph.Mood] = toWeighted(d)
		favorites[ph.Mood] = topApps(d, cfg.FavoriteCount)
	}

	var wl Workload
	var now time.Duration
	var phaseEnd time.Duration
	var working []string
	nextMessaging := cfg.MessagingEvery

	for _, ph := range cfg.Phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("monkey: phase duration %v must be positive", ph.Duration)
		}
		phaseEnd += ph.Duration
		for now < phaseEnd {
			step := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterval))
			if step < time.Second {
				step = time.Second
			}
			now += step
			if now >= phaseEnd {
				break
			}
			var app string
			roll := rng.Float64()
			if cfg.MessagingEvery > 0 && now >= nextMessaging {
				app = "messages"
				nextMessaging = now + cfg.MessagingEvery
			} else if favs := favorites[ph.Mood]; len(favs) > 0 && roll < cfg.FavoriteProb {
				app = favs[rng.Intn(len(favs))]
			} else if len(working) > 0 && roll < cfg.FavoriteProb+cfg.RepeatProb {
				// Recency-weighted revisit: newest entries twice as likely.
				idx := len(working) - 1 - int(float64(len(working))*rng.Float64()*rng.Float64())
				if idx < 0 {
					idx = 0
				}
				app = working[idx]
			} else {
				app = sample(rng, dists[ph.Mood])
			}
			wl.Events = append(wl.Events, LaunchEvent{
				At:          now,
				App:         app,
				Mood:        ph.Mood,
				TouchEvents: 3 + rng.Intn(40),
				KeyEvents:   rng.Intn(25),
			})
			working = pushWorkingSet(working, app, cfg.WorkingSet)
		}
	}
	wl.Horizon = phaseEnd
	if len(wl.Events) == 0 {
		return nil, fmt.Errorf("monkey: generated no events; intervals too long for phases")
	}
	return &wl, nil
}

// topApps returns the n highest-weighted apps of a distribution.
func topApps(dist map[string]float64, n int) []string {
	if n <= 0 {
		return nil
	}
	ws := toWeighted(dist)
	// Selection sort by weight descending (stable on the name-sorted base).
	for i := 0; i < len(ws) && i < n; i++ {
		best := i
		for j := i + 1; j < len(ws); j++ {
			if ws[j].weight > ws[best].weight {
				best = j
			}
		}
		ws[i], ws[best] = ws[best], ws[i]
	}
	if n > len(ws) {
		n = len(ws)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ws[i].app
	}
	return out
}

// weighted is one app with cumulative-sampling weight.
type weighted struct {
	app    string
	weight float64
}

func toWeighted(dist map[string]float64) []weighted {
	out := make([]weighted, 0, len(dist))
	for a, w := range dist {
		out = append(out, weighted{a, w})
	}
	// Deterministic order for reproducible sampling.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].app < out[j-1].app; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sample(rng *rand.Rand, dist []weighted) string {
	var total float64
	for _, w := range dist {
		total += w.weight
	}
	r := rng.Float64() * total
	for _, w := range dist {
		r -= w.weight
		if r <= 0 {
			return w.app
		}
	}
	return dist[len(dist)-1].app
}

// pushWorkingSet appends app (moving it to the back if present), capped.
func pushWorkingSet(ws []string, app string, cap int) []string {
	for i, a := range ws {
		if a == app {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	ws = append(ws, app)
	if cap > 0 && len(ws) > cap {
		ws = ws[len(ws)-cap:]
	}
	return ws
}

// MoodAt returns the phase mood at a time within the workload.
func (w *Workload) MoodAt(phases []Phase, t time.Duration) emotion.Mood {
	return PhaseMoodAt(phases, t)
}

// PhaseMoodAt returns the mood of the phase covering time t; past the last
// phase it sticks to the final mood, and an empty phase list is calm. The
// fleet's diurnal traffic model reuses this to map its virtual clock onto
// a mood timeline.
func PhaseMoodAt(phases []Phase, t time.Duration) emotion.Mood {
	var end time.Duration
	for _, ph := range phases {
		end += ph.Duration
		if t < end {
			return ph.Mood
		}
	}
	if len(phases) == 0 {
		return emotion.CalmMood
	}
	return phases[len(phases)-1].Mood
}

package monkey

import (
	"testing"
	"time"

	"affectedge/internal/emotion"
)

// Seam tests for the pieces the fleet's diurnal traffic model leans on:
// GenerateDay's input validation and PhaseMoodAt's edge behavior.

func TestGenerateDayRejects(t *testing.T) {
	cases := map[string]func(c *DayConfig){
		"zero sessions":     func(c *DayConfig) { c.Sessions = 0 },
		"negative sessions": func(c *DayConfig) { c.Sessions = -4 },
		"zero session mean": func(c *DayConfig) { c.SessionMean = 0 },
		"negative gap":      func(c *DayConfig) { c.GapMean = -time.Minute },
		"prob > 1":          func(c *DayConfig) { c.ExcitedProb = 1.5 },
		"prob < 0":          func(c *DayConfig) { c.ExcitedProb = -0.1 },
		"bad session cfg":   func(c *DayConfig) { c.Session.MeanInterval = 0 },
	}
	for name, corrupt := range cases {
		cfg := DefaultDayConfig()
		corrupt(&cfg)
		if _, err := GenerateDay(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPhaseMoodAtEdges(t *testing.T) {
	phases := []Phase{
		{Mood: emotion.Excited, Duration: 10 * time.Second},
		{Mood: emotion.CalmMood, Duration: 5 * time.Second},
	}
	cases := []struct {
		at   time.Duration
		want emotion.Mood
	}{
		{0, emotion.Excited},
		{10*time.Second - time.Nanosecond, emotion.Excited},
		{10 * time.Second, emotion.CalmMood}, // boundary belongs to the next phase
		{15*time.Second - time.Nanosecond, emotion.CalmMood},
		{15 * time.Second, emotion.CalmMood}, // past the day: sticks to final mood
		{time.Hour, emotion.CalmMood},
	}
	for _, c := range cases {
		if got := PhaseMoodAt(phases, c.at); got != c.want {
			t.Errorf("PhaseMoodAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	// Degenerate timelines must still return a valid mood, not panic.
	if got := PhaseMoodAt(nil, time.Second); got != emotion.CalmMood {
		t.Errorf("empty phases: %v", got)
	}
	zero := []Phase{{Mood: emotion.Excited, Duration: 0}}
	if got := PhaseMoodAt(zero, 0); got != emotion.Excited {
		t.Errorf("zero-length day: %v, want the final phase mood", got)
	}
}

// TestWorkloadMoodAtDelegates pins that Workload.MoodAt and the exported
// PhaseMoodAt agree — the fleet's diurnal model uses the latter against
// the same phase list a workload was generated from.
func TestWorkloadMoodAtDelegates(t *testing.T) {
	cfg := testConfig(1)
	wl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, time.Minute, 13 * time.Minute, 25 * time.Minute} {
		if got, want := wl.MoodAt(cfg.Phases, at), PhaseMoodAt(cfg.Phases, at); got != want {
			t.Errorf("MoodAt(%v) = %v, PhaseMoodAt = %v", at, got, want)
		}
	}
}

package monkey

import (
	"testing"
	"time"

	"affectedge/internal/emotion"
)

func testDist() map[emotion.Mood]map[string]float64 {
	return map[emotion.Mood]map[string]float64{
		emotion.Excited: {
			"messages": 0.3, "chrome": 0.25, "voip-call": 0.2,
			"ride-hail": 0.15, "camera": 0.1,
		},
		emotion.CalmMood: {
			"messages": 0.3, "chrome": 0.3, "gmail": 0.2,
			"gallery": 0.1, "clouddrive": 0.1,
		},
	}
}

func testConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.AppDist = testDist()
	cfg.Seed = seed
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("events not deterministic")
		}
	}
	c, err := Generate(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i].App != a.Events[i].App || c.Events[i].At != a.Events[i].At {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	wl, err := Generate(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Horizon != 20*time.Minute {
		t.Errorf("horizon %v, want 20m", wl.Horizon)
	}
	// Time-ordered, within horizon, moods match phases.
	for i, e := range wl.Events {
		if i > 0 && e.At < wl.Events[i-1].At {
			t.Fatal("events not ordered")
		}
		if e.At >= wl.Horizon {
			t.Fatal("event past horizon")
		}
		wantMood := emotion.Excited
		if e.At >= 12*time.Minute {
			wantMood = emotion.CalmMood
		}
		if e.Mood != wantMood {
			t.Fatalf("event at %v has mood %v", e.At, e.Mood)
		}
		if e.TouchEvents < 3 {
			t.Error("touch events below minimum")
		}
	}
	if len(wl.Events) < 40 {
		t.Errorf("only %d events in 20 minutes", len(wl.Events))
	}
}

func TestMessagingPeriodic(t *testing.T) {
	wl, err := Generate(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// With 2-minute check-ins over 20 minutes, messages appears at least
	// ~8 times.
	var count int
	for _, e := range wl.Events {
		if e.App == "messages" {
			count++
		}
	}
	if count < 8 {
		t.Errorf("messages launched %d times, want >= 8", count)
	}
}

func TestMoodShapesAppMix(t *testing.T) {
	wl, err := Generate(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var excitedCall, calmCall int
	for _, e := range wl.Events {
		if e.App == "voip-call" {
			if e.Mood == emotion.Excited {
				excitedCall++
			} else {
				calmCall++
			}
		}
		// Apps outside a phase's distribution can only come from working-
		// set carry-over right after the phase switch.
		if e.Mood == emotion.Excited && e.App == "gmail" {
			t.Error("calm-only app sampled during excited phase")
		}
	}
	if excitedCall == 0 {
		t.Error("excited favorite never launched in excited phase")
	}
	if calmCall > excitedCall {
		t.Errorf("voip-call more frequent in calm (%d) than excited (%d)", calmCall, excitedCall)
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := testConfig(1)
	cfg.Phases = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("no phases accepted")
	}
	cfg = testConfig(1)
	cfg.MeanInterval = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero interval accepted")
	}
	cfg = testConfig(1)
	cfg.RepeatProb = 0.9
	cfg.FavoriteProb = 0.3
	if _, err := Generate(cfg); err == nil {
		t.Error("repeat+favorite >= 1 accepted")
	}
	cfg = testConfig(1)
	cfg.AppDist = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("missing distribution accepted")
	}
	cfg = testConfig(1)
	cfg.Phases[0].Duration = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero-duration phase accepted")
	}
}

func TestMoodAt(t *testing.T) {
	cfg := testConfig(1)
	wl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wl.MoodAt(cfg.Phases, 5*time.Minute) != emotion.Excited {
		t.Error("mood at 5m should be excited")
	}
	if wl.MoodAt(cfg.Phases, 15*time.Minute) != emotion.CalmMood {
		t.Error("mood at 15m should be calm")
	}
	if wl.MoodAt(cfg.Phases, time.Hour) != emotion.CalmMood {
		t.Error("mood past end should clamp to last phase")
	}
}

func TestTopApps(t *testing.T) {
	dist := map[string]float64{"a": 0.1, "b": 0.5, "c": 0.3, "d": 0.1}
	top := topApps(dist, 2)
	if len(top) != 2 || top[0] != "b" || top[1] != "c" {
		t.Errorf("topApps = %v", top)
	}
	if topApps(dist, 0) != nil {
		t.Error("topApps(0) should be nil")
	}
	if got := topApps(dist, 99); len(got) != 4 {
		t.Errorf("over-long topApps returned %d", len(got))
	}
}

func TestPushWorkingSet(t *testing.T) {
	ws := pushWorkingSet(nil, "a", 3)
	ws = pushWorkingSet(ws, "b", 3)
	ws = pushWorkingSet(ws, "c", 3)
	ws = pushWorkingSet(ws, "a", 3) // moves a to back
	if len(ws) != 3 || ws[2] != "a" || ws[0] != "b" {
		t.Errorf("working set %v", ws)
	}
	ws = pushWorkingSet(ws, "d", 3) // evicts b
	if len(ws) != 3 || ws[0] != "c" {
		t.Errorf("working set after eviction %v", ws)
	}
}

package h264

import (
	"fmt"
)

// SliceType is the coded picture type.
type SliceType int

// Slice types. B slices in this model are forward-predicted from the
// previous reference picture and are never themselves references
// (nal_ref_idc == 0), which makes them the droppable units the paper's
// Input Selector targets.
const (
	SliceP SliceType = 0
	SliceB SliceType = 1
	SliceI SliceType = 2
)

// String returns the slice type letter.
func (t SliceType) String() string {
	switch t {
	case SliceP:
		return "P"
	case SliceB:
		return "B"
	case SliceI:
		return "I"
	}
	return fmt.Sprintf("slice(%d)", int(t))
}

// EncoderConfig parameterizes the encoder.
type EncoderConfig struct {
	Width, Height int
	QP            int
	// IntraPeriod is the distance between I frames (GOP length).
	IntraPeriod int
	// BFrames is the number of consecutive B frames between references
	// (pattern I B..B P B..B P ...).
	BFrames int
	// SearchWindow is the full-pel motion search range.
	SearchWindow int
	// Chroma enables 4:2:0 chroma coding (signalled in the SPS). The
	// Fig 6 power-calibration profile is luma-only.
	Chroma bool
}

// DefaultEncoderConfig returns a QCIF-class configuration.
func DefaultEncoderConfig(width, height int) EncoderConfig {
	return EncoderConfig{
		Width: width, Height: height,
		QP:           30,
		IntraPeriod:  12,
		BFrames:      2,
		SearchWindow: 4,
	}
}

func (c EncoderConfig) validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Width%16 != 0 || c.Height%16 != 0 {
		return fmt.Errorf("h264: encoder size %dx%d must be positive multiples of 16", c.Width, c.Height)
	}
	if !ValidQP(c.QP) {
		return fmt.Errorf("h264: encoder QP %d out of range", c.QP)
	}
	if c.IntraPeriod <= 0 {
		return fmt.Errorf("h264: intra period %d must be positive", c.IntraPeriod)
	}
	if c.BFrames < 0 || c.BFrames >= c.IntraPeriod {
		return fmt.Errorf("h264: BFrames %d must be in [0, intra period)", c.BFrames)
	}
	if c.SearchWindow < 0 {
		return fmt.Errorf("h264: negative search window")
	}
	return nil
}

// Encoder turns raw frames into an annex-B byte stream. It keeps the
// decoder-side reconstruction of reference pictures so prediction cannot
// drift.
type Encoder struct {
	cfg     EncoderConfig
	lastRef *Frame // reconstructed previous reference
	nFrames int

	pool      *FramePool // recycles superseded reference / B reconstructions
	mbScratch []mbInfo   // per-frame macroblock info, reused across frames
}

// NewEncoder returns an encoder for the given configuration.
func NewEncoder(cfg EncoderConfig) (*Encoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Encoder{cfg: cfg, pool: NewFramePool()}, nil
}

// writeSPS emits the sequence parameter set (dimensions in macroblocks).
func (e *Encoder) writeSPS() NAL {
	w := NewBitWriter()
	w.WriteUE(uint32(e.cfg.Width/16 - 1))
	w.WriteUE(uint32(e.cfg.Height/16 - 1))
	if e.cfg.Chroma {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	return NAL{Type: NALSPS, RefIDC: 3, Payload: w.Bytes(true)}
}

// writePPS emits the picture parameter set (QP).
func (e *Encoder) writePPS() NAL {
	w := NewBitWriter()
	w.WriteUE(uint32(e.cfg.QP))
	return NAL{Type: NALPPS, RefIDC: 3, Payload: w.Bytes(true)}
}

// frameType returns the slice type of display-order frame n.
func (e *Encoder) frameType(n int) SliceType {
	pos := n % e.cfg.IntraPeriod
	if pos == 0 {
		return SliceI
	}
	// Positions within the GOP cycle: after a reference, BFrames B
	// pictures precede the next P reference.
	if e.cfg.BFrames > 0 && pos%(e.cfg.BFrames+1) != 0 {
		return SliceB
	}
	return SliceP
}

// EncodeSequence encodes frames (display order) into a complete annex-B
// stream beginning with SPS and PPS.
func (e *Encoder) EncodeSequence(frames []*Frame) ([]byte, []NAL, error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("h264: no frames to encode")
	}
	units := []NAL{e.writeSPS(), e.writePPS()}
	for _, f := range frames {
		nal, err := e.EncodeFrame(f)
		if err != nil {
			return nil, nil, err
		}
		units = append(units, nal)
	}
	stream, err := MarshalStream(units)
	if err != nil {
		return nil, nil, err
	}
	return stream, units, nil
}

// EncodeFrame encodes the next display-order frame into one slice NAL.
func (e *Encoder) EncodeFrame(orig *Frame) (NAL, error) {
	if orig.Width != e.cfg.Width || orig.Height != e.cfg.Height {
		return NAL{}, fmt.Errorf("h264: frame %dx%d does not match encoder %dx%d",
			orig.Width, orig.Height, e.cfg.Width, e.cfg.Height)
	}
	n := e.nFrames
	e.nFrames++
	st := e.frameType(n)
	if st != SliceI && e.lastRef == nil {
		st = SliceI // cannot predict without a reference
	}

	w := NewBitWriter()
	w.WriteUE(uint32(st))
	w.WriteUE(uint32(n))
	recon, err := e.pool.Get(e.cfg.Width, e.cfg.Height)
	if err != nil {
		return NAL{}, err
	}
	mbw, mbh := orig.MBWidth(), orig.MBHeight()
	if cap(e.mbScratch) < mbw*mbh {
		e.mbScratch = make([]mbInfo, mbw*mbh)
	}
	mbs := e.mbScratch[:mbw*mbh]
	for i := range mbs {
		mbs[i] = mbInfo{}
	}
	qp := e.cfg.QP
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			info := &mbs[my*mbw+mx]
			if st == SliceI {
				if err := e.encodeIntraMB(w, orig, recon, mx, my, qp, info); err != nil {
					return NAL{}, err
				}
			} else {
				if err := e.encodeInterMB(w, orig, recon, mx, my, qp, info); err != nil {
					return NAL{}, err
				}
			}
		}
	}
	// In-loop filter on the reconstruction; references must match the
	// decoder's filtered reconstruction.
	DeblockFrame(recon, mbs, qp)
	nal := NAL{Type: NALSliceNonIDR, RefIDC: 2, Payload: w.Bytes(true)}
	// Reconstructions never escape the encoder, so superseded references
	// and B-frame recons (which are never references) recycle immediately:
	// frame encoding reaches a steady state of zero plane allocations.
	switch st {
	case SliceI:
		nal.Type = NALSliceIDR
		nal.RefIDC = 3
		e.pool.Put(e.lastRef)
		e.lastRef = recon
	case SliceP:
		e.pool.Put(e.lastRef)
		e.lastRef = recon
	case SliceB:
		nal.RefIDC = 0 // non-reference: droppable
		e.pool.Put(recon)
	}
	return nal, nil
}

// encodeIntraMB codes a 16x16 macroblock as 16 intra 4x4 blocks: per block
// a mode ue(v) then the CAVLC residual.
func (e *Encoder) encodeIntraMB(w *BitWriter, orig, recon *Frame, mx, my, qp int, info *mbInfo) error {
	info.intra = true
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			x, y := mx*16+bx, my*16+by
			mode, pred, err := bestIntraMode(orig, recon, x, y)
			if err != nil {
				return err
			}
			w.WriteUE(uint32(mode))
			res := blockResidual(orig, x, y, pred)
			var scan [16]int32
			nz, err := transformQuantizeScan(&res, qp, &scan)
			if err != nil {
				return err
			}
			if nz > 0 {
				info.coded = true
			}
			encodeResidualScan(w, &scan)
			var rec Block4
			if err := iqitScanInto(&scan, qp, &rec); err != nil {
				return err
			}
			reconstructBlock(recon, x, y, pred, rec)
		}
	}
	if e.cfg.Chroma {
		if err := e.encodeChromaMB(w, orig, recon, mx, my, qp, true, MV{}); err != nil {
			return err
		}
	}
	return nil
}

// bestIntraMode picks the lowest-SAD mode among vertical/horizontal/DC
// using reconstructed neighbors.
func bestIntraMode(orig, recon *Frame, x, y int) (IntraMode, Block4, error) {
	bestMode := IntraDC
	var bestPred Block4
	bestSAD := 1 << 30
	for _, m := range []IntraMode{IntraVertical, IntraHorizontal, IntraDC} {
		pred, err := PredictIntra4(recon, x, y, m)
		if err != nil {
			return 0, Block4{}, err
		}
		var sad int
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				d := int(orig.YAt(x+c, y+r)) - int(pred[r*4+c])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			bestSAD, bestMode, bestPred = sad, m, pred
		}
	}
	return bestMode, bestPred, nil
}

// encodeInterMB codes a P/B macroblock: skip bit, else MV (se(v) x2) and
// 16 CAVLC residual blocks.
func (e *Encoder) encodeInterMB(w *BitWriter, orig, recon *Frame, mx, my, qp int, info *mbInfo) error {
	ref := e.lastRef
	mv := searchMV(orig, ref, mx, my, e.cfg.SearchWindow)
	info.mv = mv
	// Evaluate skip: zero MV and negligible residual.
	var zeroSAD int
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			zeroSAD += sadBlock(orig, ref, mx*16+bx, my*16+by, MV{})
		}
	}
	if zeroSAD <= 16*16 { // about 1 gray level per sample
		w.WriteBit(1) // mb_skip
		info.mv = MV{}
		// Same co-located 16x16 copy as the decoder's skip path (zero MV,
		// zero residual, clamp(ref) == ref).
		fw := recon.Width
		top := my * 16 * fw
		left := mx * 16
		for row := 0; row < 16; row++ {
			off := top + row*fw + left
			copy(recon.Y[off:off+16], ref.Y[off:off+16])
		}
		if e.cfg.Chroma {
			copyChromaMB(recon, ref, mx, my)
		}
		return nil
	}
	w.WriteBit(0)
	w.WriteSE(int32(mv.X))
	w.WriteSE(int32(mv.Y))
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			x, y := mx*16+bx, my*16+by
			pred := PredictInter4(ref, x, y, mv)
			res := blockResidual(orig, x, y, pred)
			var scan [16]int32
			nz, err := transformQuantizeScan(&res, qp, &scan)
			if err != nil {
				return err
			}
			if nz > 0 {
				info.coded = true
			}
			encodeResidualScan(w, &scan)
			var rec Block4
			if err := iqitScanInto(&scan, qp, &rec); err != nil {
				return err
			}
			reconstructBlock(recon, x, y, pred, rec)
		}
	}
	if e.cfg.Chroma {
		if err := e.encodeChromaMB(w, orig, recon, mx, my, qp, false, mv); err != nil {
			return err
		}
	}
	return nil
}

package h264

import (
	"bytes"
	"testing"
)

// TestEncoderDeterministic: identical inputs must produce bit-identical
// streams — required for the resumable experiment harness and for the
// power calibration to be stable.
func TestEncoderDeterministic(t *testing.T) {
	src, err := GenerateVideo(CalibrationVideoConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	encode := func() []byte {
		enc, err := NewEncoder(CalibrationEncoderConfig())
		if err != nil {
			t.Fatal(err)
		}
		stream, _, err := enc.EncodeSequence(src)
		if err != nil {
			t.Fatal(err)
		}
		return stream
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("encoder not deterministic")
	}
	// Decode determinism: same stream, same frames, same activity.
	d1, d2 := NewDecoder(), NewDecoder()
	f1, err := d1.DecodeStream(a)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d2.DecodeStream(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) {
		t.Fatal("decode frame counts differ")
	}
	for i := range f1 {
		if !bytes.Equal(f1[i].Y, f2[i].Y) {
			t.Fatalf("frame %d luma differs", i)
		}
	}
	if d1.Activity() != d2.Activity() {
		t.Fatal("decode activity differs")
	}
}

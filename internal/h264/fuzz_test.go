package h264

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzExpGolomb checks the Exp-Golomb write→read round trip: every value
// sequence encoded with WriteUE/WriteSE decodes back exactly, and the
// reader lands on the written bit count. Inputs are interpreted as a
// sequence of 5-byte records (4 value bytes + 1 kind byte).
func FuzzExpGolomb(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 255, 255, 255, 255, 0})
	f.Add([]byte{0x34, 0x12, 0, 0, 1, 0x80, 0, 0, 0, 1, 7, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		type rec struct {
			signed bool
			u      uint32
			s      int32
		}
		var recs []rec
		w := NewBitWriter()
		for i := 0; i+5 <= len(data) && len(recs) < 256; i += 5 {
			v := binary.LittleEndian.Uint32(data[i:])
			if data[i+4]&1 == 0 {
				recs = append(recs, rec{u: v})
				w.WriteUE(v)
			} else {
				s := int32(v)
				if s == math.MinInt32 {
					// Outside WriteSE's documented domain: -2^31 has no
					// ue(v) code. Fuzz the boundary instead.
					s = math.MinInt32 + 1
				}
				recs = append(recs, rec{signed: true, s: s})
				w.WriteSE(s)
			}
		}
		nbits := w.Len()
		r := NewBitReader(w.Bytes(true))
		for i, rc := range recs {
			if rc.signed {
				got, err := r.ReadSE()
				if err != nil {
					t.Fatalf("record %d: ReadSE: %v", i, err)
				}
				if got != rc.s {
					t.Fatalf("record %d: se round trip %d -> %d", i, rc.s, got)
				}
			} else {
				got, err := r.ReadUE()
				if err != nil {
					t.Fatalf("record %d: ReadUE: %v", i, err)
				}
				if got != rc.u {
					t.Fatalf("record %d: ue round trip %d -> %d", i, rc.u, got)
				}
			}
		}
		if r.BitsRead() != nbits {
			t.Fatalf("decoded %d bits, wrote %d", r.BitsRead(), nbits)
		}
	})
}

// FuzzReadUE checks the reverse property on arbitrary bytes: ue(v) codes
// are canonical and prefix-free, so any successfully decoded value
// sequence re-encodes to exactly the consumed bits. Decoding must never
// panic, only return ErrBitstream-style errors.
func FuzzReadUE(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})                   // ue = 0
	f.Add([]byte{0x40})                   // ue = 1, then read past end
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}) // prefix too long
	f.Add([]byte{0xa6, 0x42, 0x98, 0xe2, 0x04, 0x8a})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBitReader(data)
		w := NewBitWriter()
		for {
			v, err := r.ReadUE()
			if err != nil {
				break
			}
			w.WriteUE(v)
		}
		consumed := 0
		if w.Len() > 0 {
			// The last (failed) ReadUE consumed bits too; only the
			// successful prefix must re-encode identically.
			consumed = w.Len()
		}
		re := NewBitReader(w.Bytes(false))
		orig := NewBitReader(data)
		for i := 0; i < consumed; i++ {
			a, err := re.ReadBit()
			if err != nil {
				t.Fatalf("re-encoded stream short at bit %d", i)
			}
			b, err := orig.ReadBit()
			if err != nil {
				t.Fatalf("original stream short at bit %d", i)
			}
			if a != b {
				t.Fatalf("re-encoded bit %d = %d, original %d", i, a, b)
			}
		}
	})
}

// FuzzBitReader drives an arbitrary operation sequence over arbitrary
// bytes: no panics, and position accounting stays consistent after every
// operation (BitsRead + Remaining == total, BitsRead never decreases).
func FuzzBitReader(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{2, 2, 2, 2, 2}, []byte{0x00, 0x00})
	f.Add([]byte{0x47, 3, 1, 0xff}, []byte{0x12, 0x34, 0x56, 0x78, 0x9a})
	f.Fuzz(func(t *testing.T, ops, data []byte) {
		r := NewBitReader(data)
		total := 8 * len(data)
		prev := 0
		for i, op := range ops {
			var err error
			switch op & 3 {
			case 0:
				_, err = r.ReadBit()
			case 1:
				_, err = r.ReadBits(int(op>>2) & 63)
			case 2:
				_, err = r.ReadUE()
			case 3:
				_, err = r.ReadSE()
			}
			if got := r.BitsRead() + r.Remaining(); got != total {
				t.Fatalf("op %d: BitsRead+Remaining = %d, want %d", i, got, total)
			}
			if r.BitsRead() < prev {
				t.Fatalf("op %d: BitsRead went backwards %d -> %d", i, prev, r.BitsRead())
			}
			prev = r.BitsRead()
			if err != nil {
				return
			}
		}
	})
}

// FuzzSplitStream feeds arbitrary bytes to the annex-B splitter: it must
// never panic, and any stream it accepts must survive a marshal→split
// round trip with identical units (escape/unescape is lossless).
func FuzzSplitStream(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0x67, 0x42})
	f.Add([]byte{0, 0, 0, 1, 0x65, 0x00, 0x00, 0x03, 0x01, 0, 0, 1, 0x41, 0x9a})
	f.Add([]byte{0xff, 0xee, 0, 0, 1, 0x28, 0x00, 0x00, 0x00})
	seed, err := encodeTinyStream()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		units, err := SplitStream(data)
		if err != nil {
			return
		}
		out, err := MarshalStream(units)
		if err != nil {
			t.Fatalf("marshal of parsed units: %v", err)
		}
		units2, err := SplitStream(out)
		if err != nil {
			t.Fatalf("re-split of marshalled units: %v", err)
		}
		if len(units2) != len(units) {
			t.Fatalf("round trip %d units -> %d", len(units), len(units2))
		}
		for i := range units {
			if units[i].Type != units2[i].Type || units[i].RefIDC != units2[i].RefIDC ||
				!bytes.Equal(units[i].Payload, units2[i].Payload) {
				t.Fatalf("unit %d changed in round trip:\n  %+v\n  %+v", i, units[i], units2[i])
			}
		}
	})
}

// FuzzDecodeSlice decodes an arbitrary slice payload behind a fixed,
// known-small SPS/PPS (16x16 luma): the decoder must reject garbage with
// an error, never a panic. Slice header fields (type, frame number) come
// from the fuzzed payload itself.
func FuzzDecodeSlice(f *testing.F) {
	f.Add(byte(5), []byte{})
	f.Add(byte(5), []byte{0xa0})
	f.Add(byte(1), []byte{0x42, 0x00, 0xff, 0x13})
	seed, err := encodeTinyStream()
	if err != nil {
		f.Fatal(err)
	}
	if units, err := SplitStream(seed); err == nil {
		for _, u := range units {
			if u.Type == NALSliceIDR || u.Type == NALSliceNonIDR {
				f.Add(byte(u.Type), append([]byte(nil), u.Payload...))
			}
		}
	}
	f.Fuzz(func(t *testing.T, header byte, payload []byte) {
		sps := NewBitWriter()
		sps.WriteUE(0) // mb width - 1
		sps.WriteUE(0) // mb height - 1
		sps.WriteBit(uint(header>>7) & 1)
		pps := NewBitWriter()
		pps.WriteUE(30)
		nalType := NALSliceIDR
		if header&1 == 0 {
			nalType = NALSliceNonIDR
		}
		units := []NAL{
			{Type: NALSPS, RefIDC: 3, Payload: sps.Bytes(true)},
			{Type: NALPPS, RefIDC: 3, Payload: pps.Bytes(true)},
			{Type: nalType, RefIDC: int(header>>5) & 3, Payload: payload},
		}
		dec := NewDecoder()
		dec.DeblockEnabled = header&2 != 0
		frames, err := dec.DecodeUnits(units)
		if err != nil {
			return
		}
		for i, fr := range frames {
			if fr.Width != 16 || fr.Height != 16 {
				t.Fatalf("frame %d: %dx%d, want 16x16", i, fr.Width, fr.Height)
			}
		}
	})
}

// encodeTinyStream produces a genuine 3-frame 16x16 encoded stream for
// fuzz corpora.
func encodeTinyStream() ([]byte, error) {
	vc := VideoConfig{Width: 16, Height: 16, Frames: 3, Seed: 7}
	src, err := GenerateVideo(vc)
	if err != nil {
		return nil, err
	}
	enc, err := NewEncoder(EncoderConfig{Width: 16, Height: 16, QP: 30, IntraPeriod: 3})
	if err != nil {
		return nil, err
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		return nil, err
	}
	return stream, nil
}

package h264

import (
	"strings"
	"testing"
)

func TestAnalyzeStream(t *testing.T) {
	src, err := GenerateVideo(CalibrationVideoConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(CalibrationEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeStream(stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	// GOP 12 with 2 B frames over 24 frames: 2 I, 6 P, 16 B + SPS/PPS.
	if st.IFrames != 2 {
		t.Errorf("%d I frames, want 2", st.IFrames)
	}
	if st.PFrames != 6 {
		t.Errorf("%d P frames, want 6", st.PFrames)
	}
	if st.BFrames != 16 {
		t.Errorf("%d B frames, want 16", st.BFrames)
	}
	if st.ParamSets != 2 {
		t.Errorf("%d param sets, want 2", st.ParamSets)
	}
	if st.Units != 26 {
		t.Errorf("%d units, want 26", st.Units)
	}
	// Percentiles ordered, deletable counts monotone in threshold.
	if !(st.SizePercentile(10) <= st.SizePercentile(50) &&
		st.SizePercentile(50) <= st.SizePercentile(90)) {
		t.Error("size percentiles not monotone")
	}
	if st.DeletableAt[70] > st.DeletableAt[PaperSth] ||
		st.DeletableAt[PaperSth] > st.DeletableAt[280] {
		t.Errorf("deletable counts not monotone: %v", st.DeletableAt)
	}
	out := st.String()
	for _, want := range []string{"units 26", "S_th=140", "p10/p50/p90"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeStreamErrors(t *testing.T) {
	if _, err := AnalyzeStream([]byte{1, 2, 3}, nil); err == nil {
		t.Error("garbage stream accepted")
	}
	if st, err := AnalyzeStream(nil, nil); err != nil || st.Units != 0 {
		t.Error("empty stream should give empty stats")
	}
}

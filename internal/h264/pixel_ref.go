package h264

// Reference implementations of the pixel kernels, kept verbatim from
// before the simd rewrite (the bits_ref.go pattern): straightforward
// scalar code whose only job is to be obviously correct. The
// differential and fuzz tests drive sadBlock and the deblocking filter
// against these oracles with the vector backend both enabled and
// disabled. They are not used in production code paths.

// sadBlockRef is the historical clamped SAD loop; for interior blocks
// the clamping accessors are the identity, so it covers both of
// sadBlock's branches.
func sadBlockRef(orig, ref *Frame, bx, by int, mv MV) int {
	var sad int
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			d := int(orig.YAt(bx+c, by+r)) - int(ref.YAt(bx+c+mv.X, by+r+mv.Y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// filterEdgeLumaRef is the historical per-segment edge filter with the
// threshold comparisons inline.
func filterEdgeLumaRef(f *Frame, x, y int, vertical bool, bS, qp int, st *filterStats) {
	if bS <= 0 {
		return
	}
	alpha := alphaTable[clampQP(qp)]
	beta := betaTable[clampQP(qp)]
	Y := f.Y
	w := f.Width
	for i := 0; i < 4; i++ {
		var p0idx, step int
		if vertical {
			p0idx = (y+i)*w + x - 1
			step = 1
		} else {
			p0idx = (y-1)*w + x + i
			step = w
		}
		q0idx := p0idx + step
		var p, q [4]int32
		for d := 0; d < 4; d++ {
			p[d] = int32(Y[p0idx-d*step])
			q[d] = int32(Y[q0idx+d*step])
		}
		st.edgesExamined++
		if absI32(p[0]-q[0]) >= alpha || absI32(p[1]-p[0]) >= beta || absI32(q[1]-q[0]) >= beta {
			continue
		}
		st.edgesFiltered++
		if bS < 4 {
			tc0 := tc0Table[bS-1][clampQP(qp)]
			tc := tc0
			apFlag := absI32(p[2]-p[0]) < beta
			aqFlag := absI32(q[2]-q[0]) < beta
			if apFlag {
				tc++
			}
			if aqFlag {
				tc++
			}
			delta := clip3(-tc, tc, ((q[0]-p[0])<<2+(p[1]-q[1])+4)>>3)
			Y[p0idx] = clampU8(p[0] + delta)
			Y[q0idx] = clampU8(q[0] - delta)
			st.samplesTouch += 2
			if apFlag {
				dp := clip3(-tc0, tc0, (p[2]+((p[0]+q[0]+1)>>1)-(p[1]<<1))>>1)
				Y[p0idx-step] = clampU8(p[1] + dp)
				st.samplesTouch++
			}
			if aqFlag {
				dq := clip3(-tc0, tc0, (q[2]+((p[0]+q[0]+1)>>1)-(q[1]<<1))>>1)
				Y[q0idx+step] = clampU8(q[1] + dq)
				st.samplesTouch++
			}
		} else {
			// Strong filter (bS == 4).
			if absI32(p[0]-q[0]) < (alpha>>2)+2 {
				if absI32(p[2]-p[0]) < beta {
					Y[p0idx] = clampU8((p[2] + 2*p[1] + 2*p[0] + 2*q[0] + q[1] + 4) >> 3)
					Y[p0idx-step] = clampU8((p[2] + p[1] + p[0] + q[0] + 2) >> 2)
					Y[p0idx-2*step] = clampU8((2*p[3] + 3*p[2] + p[1] + p[0] + q[0] + 4) >> 3)
					st.samplesTouch += 3
				} else {
					Y[p0idx] = clampU8((2*p[1] + p[0] + q[1] + 2) >> 2)
					st.samplesTouch++
				}
				if absI32(q[2]-q[0]) < beta {
					Y[q0idx] = clampU8((q[2] + 2*q[1] + 2*q[0] + 2*p[0] + p[1] + 4) >> 3)
					Y[q0idx+step] = clampU8((q[2] + q[1] + q[0] + p[0] + 2) >> 2)
					Y[q0idx+2*step] = clampU8((2*q[3] + 3*q[2] + q[1] + q[0] + p[0] + 4) >> 3)
					st.samplesTouch += 3
				} else {
					Y[q0idx] = clampU8((2*q[1] + q[0] + p[1] + 2) >> 2)
					st.samplesTouch++
				}
			} else {
				Y[p0idx] = clampU8((2*p[1] + p[0] + q[1] + 2) >> 2)
				Y[q0idx] = clampU8((2*q[1] + q[0] + p[1] + 2) >> 2)
				st.samplesTouch += 2
			}
		}
	}
}

// deblockFrameRef is DeblockFrame driving the reference edge filter.
func deblockFrameRef(f *Frame, mbs []mbInfo, qp int) filterStats {
	var st filterStats
	mbw, mbh := f.MBWidth(), f.MBHeight()
	if len(mbs) != mbw*mbh {
		return st
	}
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			cur := mbs[my*mbw+mx]
			for ex := 0; ex < 16; ex += 4 {
				x := mx*16 + ex
				if x == 0 {
					continue
				}
				nb := cur
				mbEdge := ex == 0
				if mbEdge {
					nb = mbs[my*mbw+mx-1]
				}
				bS := BoundaryStrength(nb, cur, mbEdge)
				for ey := 0; ey < 16; ey += 4 {
					st.edgesConsidered++
					filterEdgeLumaRef(f, x, my*16+ey, true, bS, qp, &st)
				}
			}
			for ey := 0; ey < 16; ey += 4 {
				y := my*16 + ey
				if y == 0 {
					continue
				}
				nb := cur
				mbEdge := ey == 0
				if mbEdge {
					nb = mbs[(my-1)*mbw+mx]
				}
				bS := BoundaryStrength(nb, cur, mbEdge)
				for ex := 0; ex < 16; ex += 4 {
					st.edgesConsidered++
					filterEdgeLumaRef(f, mx*16+ex, y, false, bS, qp, &st)
				}
			}
		}
	}
	return st
}

package h264

import "testing"

// TestFig6PowerCalibration checks the decoder power model against the
// paper's Fig 6 numbers: DF deactivation -31.4%, deletion (S_th=140, f=1)
// -10.6%, combined -36.9%, within +-2.5 percentage points.
func TestFig6PowerCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration decode skipped in -short mode")
	}
	src, err := GenerateVideo(CalibrationVideoConfig(48))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := CompareModes(src, CalibrationEncoderConfig(), DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	want := map[DecoderMode]float64{
		ModeStandard: 0,
		ModeDFOff:    31.4,
		ModeDeletion: 10.6,
		ModeCombined: 36.9,
	}
	const tol = 2.5
	for _, r := range reports {
		t.Logf("%-9s norm=%.3f saving=%5.1f%% psnr=%5.1f dB deleted=%d (%.0f%%)",
			r.Mode, r.NormPower, r.SavingPct, r.PSNR, r.Deleted, r.DeletedPct)
		target := want[r.Mode]
		if diff := r.SavingPct - target; diff > tol || diff < -tol {
			t.Errorf("%s saving %.1f%%, want %.1f%% +- %.1f", r.Mode, r.SavingPct, target, tol)
		}
	}
}

package h264

import "fmt"

// Block4 is a 4x4 block of residual samples or coefficients, row-major.
type Block4 [16]int32

// ForwardTransform4 applies the H.264 4x4 forward integer transform
// W = C * X * C^T with the core matrix
//
//	C = | 1  1  1  1 |
//	    | 2  1 -1 -2 |
//	    | 1 -1 -1  1 |
//	    | 1 -2  2 -1 |
func ForwardTransform4(x Block4) Block4 {
	var tmp, out Block4
	// rows: tmp = C * X  (apply butterfly to each column of X)
	for c := 0; c < 4; c++ {
		s0, s1, s2, s3 := x[c], x[4+c], x[8+c], x[12+c]
		a := s0 + s3
		b := s1 + s2
		d := s1 - s2
		e := s0 - s3
		tmp[c] = a + b
		tmp[4+c] = 2*e + d
		tmp[8+c] = a - b
		tmp[12+c] = e - 2*d
	}
	// cols: out = tmp * C^T (apply butterfly to each row of tmp)
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := tmp[4*r], tmp[4*r+1], tmp[4*r+2], tmp[4*r+3]
		a := s0 + s3
		b := s1 + s2
		d := s1 - s2
		e := s0 - s3
		out[4*r] = a + b
		out[4*r+1] = 2*e + d
		out[4*r+2] = a - b
		out[4*r+3] = e - 2*d
	}
	return out
}

// InverseTransform4 applies the H.264 4x4 inverse integer transform with
// the spec's final >>6 rounding, mapping scaled coefficients back to
// residual samples.
func InverseTransform4(w Block4) Block4 {
	var tmp, out Block4
	// rows of w
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := w[4*r], w[4*r+1], w[4*r+2], w[4*r+3]
		e0 := s0 + s2
		e1 := s0 - s2
		e2 := (s1 >> 1) - s3
		e3 := s1 + (s3 >> 1)
		tmp[4*r] = e0 + e3
		tmp[4*r+1] = e1 + e2
		tmp[4*r+2] = e1 - e2
		tmp[4*r+3] = e0 - e3
	}
	// columns
	for c := 0; c < 4; c++ {
		s0, s1, s2, s3 := tmp[c], tmp[4+c], tmp[8+c], tmp[12+c]
		e0 := s0 + s2
		e1 := s0 - s2
		e2 := (s1 >> 1) - s3
		e3 := s1 + (s3 >> 1)
		out[c] = (e0 + e3 + 32) >> 6
		out[4+c] = (e1 + e2 + 32) >> 6
		out[8+c] = (e1 - e2 + 32) >> 6
		out[12+c] = (e0 - e3 + 32) >> 6
	}
	return out
}

// Quantization tables from the spec (per QP%6). Positions fall into three
// classes by (i,j): class 0 at (0,0),(0,2),(2,0),(2,2); class 1 at
// (1,1),(1,3),(3,1),(3,3); class 2 elsewhere.
var quantMF = [6][3]int32{
	{13107, 5243, 8066},
	{11916, 4660, 7490},
	{10082, 4194, 6554},
	{9362, 3647, 5825},
	{8192, 3355, 5243},
	{7282, 2893, 4559},
}

var dequantV = [6][3]int32{
	{10, 16, 13},
	{11, 18, 14},
	{13, 20, 16},
	{14, 23, 18},
	{16, 25, 20},
	{18, 29, 23},
}

// posClass returns the MF/V class of coefficient position i (row-major).
func posClass(i int) int {
	r, c := i/4, i%4
	evenR, evenC := r%2 == 0, c%2 == 0
	switch {
	case evenR && evenC:
		return 0
	case !evenR && !evenC:
		return 1
	default:
		return 2
	}
}

// Per-QP expansions of the MF/V tables. The hot loops index one flat table
// per QP instead of recomputing qp%6, posClass, and the 2^(QP/6) shift per
// coefficient. Baking the shift into the dequant entries is exact: int32
// multiplication wraps mod 2^32, so (z*V)<<s == z*(V<<s) for every z.
// The Scan variants hold the same entries permuted into zig-zag order,
// feeding the fused scan-order kernels without a block-order bounce.
var (
	quantTab struct {
		mf     [52][16]int32 // MF by position, block order
		mfScan [52][16]int32 // MF by position, zig-zag order
		f      [52]int32     // rounding offset 2^(qbits-3)
		qbits  [52]uint      // 15 + QP/6
	}
	dequantTab  [52][16]int32 // V << (QP/6), block order
	dequantScan [52][16]int32 // V << (QP/6), zig-zag order
)

func init() {
	for qp := 0; qp <= 51; qp++ {
		qbits := uint(15 + qp/6)
		quantTab.qbits[qp] = qbits
		quantTab.f[qp] = 1 << (qbits - 3)
		shift := uint(qp / 6)
		for i := 0; i < 16; i++ {
			cls := posClass(i)
			quantTab.mf[qp][i] = quantMF[qp%6][cls]
			dequantTab[qp][i] = dequantV[qp%6][cls] << shift
		}
		for s, pos := range zigzag4 {
			quantTab.mfScan[qp][s] = quantTab.mf[qp][pos]
			dequantScan[qp][s] = dequantTab[qp][pos]
		}
	}
}

// ValidQP reports whether qp is a legal quantization parameter.
func ValidQP(qp int) bool { return qp >= 0 && qp <= 51 }

// Quantize maps transform coefficients to quantized levels at the given QP
// using the spec's multiply-shift formulation:
//
//	Z = sign(W) * ((|W|*MF + f) >> qbits), qbits = 15 + QP/6
func Quantize(w Block4, qp int) (Block4, error) {
	if !ValidQP(qp) {
		return Block4{}, fmt.Errorf("h264: QP %d out of range", qp)
	}
	qbits := quantTab.qbits[qp]
	f := quantTab.f[qp] // rounding offset 2^qbits/8 (intra convention ~/3, inter ~/6; /8 sits between)
	mf := &quantTab.mf[qp]
	var z Block4
	for i, v := range w {
		neg := v < 0
		if neg {
			v = -v
		}
		q := (v*mf[i] + f) >> qbits
		if neg {
			q = -q
		}
		z[i] = q
	}
	return z, nil
}

// Dequantize rescales quantized levels back to transform coefficients:
//
//	W' = Z * V * 2^(QP/6)
func Dequantize(z Block4, qp int) (Block4, error) {
	if !ValidQP(qp) {
		return Block4{}, fmt.Errorf("h264: QP %d out of range", qp)
	}
	dv := &dequantTab[qp]
	var w Block4
	for i, v := range z {
		w[i] = v * dv[i]
	}
	return w, nil
}

// IQIT is the decoder's inverse-quantization + inverse-transform stage:
// quantized levels to reconstructed residual.
func IQIT(z Block4, qp int) (Block4, error) {
	w, err := Dequantize(z, qp)
	if err != nil {
		return Block4{}, err
	}
	return InverseTransform4(w), nil
}

// TransformQuantize is the encoder's forward path: residual to quantized
// levels.
func TransformQuantize(x Block4, qp int) (Block4, error) {
	return Quantize(ForwardTransform4(x), qp)
}

// iqitScanInto is the decoder's fused hot path: zig-zag-ordered levels to
// reconstructed residual in one pass, no intermediate Block4 copies. The
// dequantScan table maps each scan position straight to its baked V<<shift
// factor, and FromZigZag's permutation is folded into the same loop.
// Bit-identical to FromZigZag -> Dequantize -> InverseTransform4.
func iqitScanInto(scan *[16]int32, qp int, out *Block4) error {
	if !ValidQP(qp) {
		return fmt.Errorf("h264: QP %d out of range", qp)
	}
	dv := &dequantScan[qp]
	var w Block4
	for i, pos := range zigzag4 {
		w[pos] = scan[i] * dv[i]
	}
	// Inverse transform, rows then columns, writing the result into out.
	var tmp Block4
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := w[4*r], w[4*r+1], w[4*r+2], w[4*r+3]
		e0 := s0 + s2
		e1 := s0 - s2
		e2 := (s1 >> 1) - s3
		e3 := s1 + (s3 >> 1)
		tmp[4*r] = e0 + e3
		tmp[4*r+1] = e1 + e2
		tmp[4*r+2] = e1 - e2
		tmp[4*r+3] = e0 - e3
	}
	for c := 0; c < 4; c++ {
		s0, s1, s2, s3 := tmp[c], tmp[4+c], tmp[8+c], tmp[12+c]
		e0 := s0 + s2
		e1 := s0 - s2
		e2 := (s1 >> 1) - s3
		e3 := s1 + (s3 >> 1)
		out[c] = (e0 + e3 + 32) >> 6
		out[4+c] = (e1 + e2 + 32) >> 6
		out[8+c] = (e1 - e2 + 32) >> 6
		out[12+c] = (e0 - e3 + 32) >> 6
	}
	return nil
}

// transformQuantizeScan is the encoder's fused hot path: residual to
// zig-zag-ordered quantized levels in one pass, returning the nonzero
// count. Bit-identical to TransformQuantize followed by ZigZag plus
// NonZeroCount.
func transformQuantizeScan(x *Block4, qp int, scan *[16]int32) (int, error) {
	if !ValidQP(qp) {
		return 0, fmt.Errorf("h264: QP %d out of range", qp)
	}
	var tmp, w Block4
	for c := 0; c < 4; c++ {
		s0, s1, s2, s3 := x[c], x[4+c], x[8+c], x[12+c]
		a := s0 + s3
		b := s1 + s2
		d := s1 - s2
		e := s0 - s3
		tmp[c] = a + b
		tmp[4+c] = 2*e + d
		tmp[8+c] = a - b
		tmp[12+c] = e - 2*d
	}
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := tmp[4*r], tmp[4*r+1], tmp[4*r+2], tmp[4*r+3]
		a := s0 + s3
		b := s1 + s2
		d := s1 - s2
		e := s0 - s3
		w[4*r] = a + b
		w[4*r+1] = 2*e + d
		w[4*r+2] = a - b
		w[4*r+3] = e - 2*d
	}
	qbits := quantTab.qbits[qp]
	f := quantTab.f[qp]
	mf := &quantTab.mfScan[qp]
	nz := 0
	for i, pos := range zigzag4 {
		v := w[pos]
		neg := v < 0
		if neg {
			v = -v
		}
		q := (v*mf[i] + f) >> qbits
		if neg {
			q = -q
		}
		scan[i] = q
		if q != 0 {
			nz++
		}
	}
	return nz, nil
}

// NonZeroCount returns the number of nonzero coefficients in z.
func (b Block4) NonZeroCount() int {
	var n int
	for _, v := range b {
		if v != 0 {
			n++
		}
	}
	return n
}

// zigzag4 is the 4x4 zig-zag scan order.
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// ZigZag returns the block's coefficients in zig-zag scan order.
func (b Block4) ZigZag() [16]int32 {
	var out [16]int32
	for i, pos := range zigzag4 {
		out[i] = b[pos]
	}
	return out
}

// FromZigZag reconstructs a block from zig-zag-ordered coefficients.
func FromZigZag(scan [16]int32) Block4 {
	var b Block4
	for i, pos := range zigzag4 {
		b[pos] = scan[i]
	}
	return b
}

package h264

import (
	"fmt"
	"math"
	"math/rand"
)

// VideoConfig parameterizes the synthetic test-sequence generator used in
// place of the paper's (unavailable) visual-search-task video.
type VideoConfig struct {
	Width, Height int
	Frames        int
	// MotionSpeed scales foreground object velocity in pixels per frame.
	MotionSpeed float64
	// PanSpeed is the background pan speed in pixels per frame (0 keeps
	// the background static, as in screen-captured content).
	PanSpeed float64
	// Detail in [0,1] scales texture contrast (drives residual size).
	Detail float64
	// SceneChangeEvery inserts a content change every N frames (0 = never),
	// creating bursts of large residuals like real content cuts.
	SceneChangeEvery int
	// Noise is per-pixel uniform noise amplitude in gray levels.
	Noise float64
	// MoveFrames/PauseFrames modulate foreground activity: objects move
	// for MoveFrames frames, then hold still for PauseFrames frames,
	// cycling. Zero values disable pausing. Screen-like content (the
	// paper's visual-search video) alternates bursts of change with
	// near-static spans, which is what makes some inter frames small
	// enough for the Input Selector to drop.
	MoveFrames, PauseFrames int
	// Objects is the number of moving foreground objects (default 3 when
	// zero).
	Objects int
	Seed    int64
}

// DefaultVideoConfig returns a QCIF-like 176x144 moving-texture sequence.
func DefaultVideoConfig(frames int) VideoConfig {
	return VideoConfig{
		Width: 176, Height: 144, Frames: frames,
		MotionSpeed: 1.5, PanSpeed: 1.5, Detail: 0.6, SceneChangeEvery: 0, Noise: 1.0, Seed: 1,
	}
}

// GenerateVideo synthesizes a deterministic test sequence: a panning
// smooth-texture background (sinusoidal plateaus, friendly to motion
// estimation) with a few moving high-contrast objects and light noise.
func GenerateVideo(cfg VideoConfig) ([]*Frame, error) {
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("h264: video needs at least one frame")
	}
	if _, err := NewFrame(cfg.Width, cfg.Height); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Moving objects: position, velocity, size, brightness.
	type obj struct {
		x, y, vx, vy float64
		size         int
		lum          uint8
	}
	nObjs := cfg.Objects
	if nObjs <= 0 {
		nObjs = 3
	}
	objs := make([]obj, nObjs)
	for i := range objs {
		objs[i] = obj{
			x:    rng.Float64() * float64(cfg.Width),
			y:    rng.Float64() * float64(cfg.Height),
			vx:   (rng.Float64()*2 - 1) * cfg.MotionSpeed * 2,
			vy:   (rng.Float64()*2 - 1) * cfg.MotionSpeed * 2,
			size: 8 + rng.Intn(16),
			lum:  uint8(64 + rng.Intn(128)),
		}
	}
	phase := 0.0
	out := make([]*Frame, 0, cfg.Frames)
	for n := 0; n < cfg.Frames; n++ {
		if cfg.SceneChangeEvery > 0 && n > 0 && n%cfg.SceneChangeEvery == 0 {
			phase += math.Pi / 3 // abrupt background shift
		}
		f, err := NewFrame(cfg.Width, cfg.Height)
		if err != nil {
			return nil, err
		}
		panX := cfg.PanSpeed * float64(n)
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				fx := (float64(x) + panX) / 32
				fy := float64(y) / 32
				v := 128 + cfg.Detail*(60*math.Sin(fx+phase)+40*math.Sin(fy*1.3+phase/2))
				v += cfg.Noise * (rng.Float64()*2 - 1)
				f.Y[y*cfg.Width+x] = clampU8(int32(math.Round(v)))
			}
		}
		// Chroma: a slow hue gradient following the pan (half resolution).
		cw, ch := f.CWidth(), f.CHeight()
		for y := 0; y < ch; y++ {
			for x := 0; x < cw; x++ {
				fx := (float64(2*x) + panX) / 48
				f.Cb[y*cw+x] = clampU8(int32(128 + 30*math.Sin(fx+phase)))
				f.Cr[y*cw+x] = clampU8(int32(128 + 30*math.Cos(float64(2*y)/48-phase)))
			}
		}
		moving := true
		if cycle := cfg.MoveFrames + cfg.PauseFrames; cfg.PauseFrames > 0 && cycle > 0 {
			moving = n%cycle < cfg.MoveFrames
		}
		for i := range objs {
			o := &objs[i]
			for dy := 0; dy < o.size; dy++ {
				for dx := 0; dx < o.size; dx++ {
					f.SetY(int(o.x)+dx, int(o.y)+dy, o.lum)
					// Objects carry a saturated color.
					f.SetC(0, (int(o.x)+dx)/2, (int(o.y)+dy)/2, 90)
					f.SetC(1, (int(o.x)+dx)/2, (int(o.y)+dy)/2, 170)
				}
			}
			if !moving {
				continue
			}
			o.x += o.vx
			o.y += o.vy
			if o.x < 0 || o.x > float64(cfg.Width-o.size) {
				o.vx = -o.vx
			}
			if o.y < 0 || o.y > float64(cfg.Height-o.size) {
				o.vy = -o.vy
			}
		}
		out = append(out, f)
	}
	return out, nil
}

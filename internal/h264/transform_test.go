package h264

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformInverseProperty(t *testing.T) {
	// Forward then (scaled) inverse must reproduce the input exactly:
	// the spec pair satisfies IT(FT(x) scaled by the V/MF identity) == x.
	// Here we check the pure transform pair with the built-in >>6: the
	// inverse expects coefficients premultiplied per the dequant path, so
	// we verify via the full quant route at QP where scaling is benign.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var x Block4
		for i := range x {
			x[i] = int32(rng.Intn(41) - 20) // small residuals
		}
		// QP 0: finest quantization; reconstruction error per sample is
		// bounded by the quant step (1 level at QP 0 corresponds to ~1).
		z, err := TransformQuantize(x, 0)
		if err != nil {
			return false
		}
		rec, err := IQIT(z, 0)
		if err != nil {
			return false
		}
		for i := range x {
			d := x[i] - rec[i]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizationMonotoneLoss(t *testing.T) {
	// Higher QP must not increase reconstruction fidelity.
	rng := rand.New(rand.NewSource(3))
	var x Block4
	for i := range x {
		x[i] = int32(rng.Intn(201) - 100)
	}
	sse := func(qp int) int64 {
		z, err := TransformQuantize(x, qp)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := IQIT(z, qp)
		if err != nil {
			t.Fatal(err)
		}
		var s int64
		for i := range x {
			d := int64(x[i] - rec[i])
			s += d * d
		}
		return s
	}
	low, high := sse(8), sse(40)
	if low > high {
		t.Errorf("QP 8 SSE %d > QP 40 SSE %d", low, high)
	}
	if high == 0 {
		t.Error("QP 40 should not be lossless on large residuals")
	}
}

func TestQuantizeZeroBlock(t *testing.T) {
	z, err := TransformQuantize(Block4{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if z.NonZeroCount() != 0 {
		t.Error("zero residual quantized to nonzero")
	}
	rec, err := IQIT(z, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rec {
		if v != 0 {
			t.Error("zero block reconstructed nonzero")
		}
	}
}

func TestQPValidation(t *testing.T) {
	if _, err := Quantize(Block4{}, 52); err == nil {
		t.Error("QP 52 accepted")
	}
	if _, err := Dequantize(Block4{}, -1); err == nil {
		t.Error("QP -1 accepted")
	}
	if !ValidQP(0) || !ValidQP(51) || ValidQP(52) || ValidQP(-1) {
		t.Error("ValidQP boundaries wrong")
	}
}

func TestDCOnlyBlock(t *testing.T) {
	// A flat residual maps to a DC-only coefficient block.
	var x Block4
	for i := range x {
		x[i] = 10
	}
	w := ForwardTransform4(x)
	if w[0] != 160 { // DC gain is 16 for the 4x4 core transform
		t.Errorf("DC = %d, want 160", w[0])
	}
	for i := 1; i < 16; i++ {
		if w[i] != 0 {
			t.Errorf("AC[%d] = %d, want 0", i, w[i])
		}
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	var b Block4
	for i := range b {
		b[i] = int32(i)
	}
	if FromZigZag(b.ZigZag()) != b {
		t.Error("zig-zag round trip failed")
	}
	// The scan must be a permutation of 0..15.
	seen := map[int]bool{}
	for _, p := range zigzag4 {
		if p < 0 || p > 15 || seen[p] {
			t.Fatalf("zigzag not a permutation: %v", zigzag4)
		}
		seen[p] = true
	}
	// First entries follow the spec order (0,0),(0,1),(1,0),(2,0)...
	want := [6]int{0, 1, 4, 8, 5, 2}
	for i, w := range want {
		if zigzag4[i] != w {
			t.Errorf("zigzag[%d] = %d, want %d", i, zigzag4[i], w)
		}
	}
}

func TestPosClass(t *testing.T) {
	// Corner positions are class 0, odd-odd class 1, mixed class 2.
	if posClass(0) != 0 || posClass(2) != 0 || posClass(8) != 0 || posClass(10) != 0 {
		t.Error("even-even positions should be class 0")
	}
	if posClass(5) != 1 || posClass(7) != 1 || posClass(13) != 1 || posClass(15) != 1 {
		t.Error("odd-odd positions should be class 1")
	}
	if posClass(1) != 2 || posClass(4) != 2 {
		t.Error("mixed positions should be class 2")
	}
}

// Property: CAVLC residual coding round-trips arbitrary quantized blocks.
func TestCAVLCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b Block4
		// Sparse blocks with a realistic level distribution plus
		// occasional large outliers to exercise the escape codes.
		nnz := rng.Intn(17)
		for k := 0; k < nnz; k++ {
			pos := rng.Intn(16)
			switch rng.Intn(5) {
			case 0:
				b[pos] = int32(rng.Intn(4000) - 2000)
			default:
				b[pos] = int32(rng.Intn(13) - 6)
			}
		}
		w := NewBitWriter()
		EncodeResidual(w, b)
		r := NewBitReader(w.Bytes(true))
		got, _, err := DecodeResidual(r)
		if err != nil {
			return false
		}
		return got == b
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCAVLCEmptyBlockIsOneBit(t *testing.T) {
	w := NewBitWriter()
	bits := EncodeResidual(w, Block4{})
	if bits != 1 {
		t.Errorf("empty block costs %d bits, want 1 (coeff_token TC=0)", bits)
	}
}

func TestCAVLCSequentialBlocks(t *testing.T) {
	// Several blocks back to back must decode in order from one stream.
	rng := rand.New(rand.NewSource(9))
	blocks := make([]Block4, 20)
	w := NewBitWriter()
	for i := range blocks {
		for k := 0; k < rng.Intn(8); k++ {
			blocks[i][rng.Intn(16)] = int32(rng.Intn(9) - 4)
		}
		EncodeResidual(w, blocks[i])
	}
	r := NewBitReader(w.Bytes(true))
	for i := range blocks {
		got, _, err := DecodeResidual(r)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got != blocks[i] {
			t.Fatalf("block %d mismatch:\n got %v\nwant %v", i, got, blocks[i])
		}
	}
}

func TestCAVLCBitCountsScaleWithContent(t *testing.T) {
	// Dense high-level blocks must cost more bits than sparse ones; that
	// size structure is what S_th thresholds rely on.
	var sparse, dense Block4
	sparse[0] = 1
	for i := range dense {
		dense[i] = int32(5 + i)
	}
	ws := NewBitWriter()
	sparseBits := EncodeResidual(ws, sparse)
	wd := NewBitWriter()
	denseBits := EncodeResidual(wd, dense)
	if sparseBits >= denseBits {
		t.Errorf("sparse %d bits >= dense %d bits", sparseBits, denseBits)
	}
}

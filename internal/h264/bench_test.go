package h264

import (
	"fmt"
	"testing"

	"affectedge/internal/parallel"
)

// Benchmarks of the video hot path. The bitstream micro-benchmarks pair
// each word-level primitive with its retained scalar reference
// implementation (refBitReader/refBitWriter), so one bench run shows the
// fast-path ratio directly; the codec-level benchmarks (DecodeStream,
// EncodeFrame, DeblockFrame, IQIT) track ns/frame and steady-state
// allocations of the pooled decode path.

// benchStream encodes the 12-frame calibration clip once per benchmark
// process.
func benchStream(b *testing.B) ([]byte, []*Frame) {
	b.Helper()
	src, err := GenerateVideo(CalibrationVideoConfig(12))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewEncoder(CalibrationEncoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		b.Fatal(err)
	}
	return stream, src
}

// ueCorpus is a mixed-magnitude Exp-Golomb value set shaped like slice
// syntax: mostly tiny codes with an occasional long one.
func ueCorpus() []uint32 {
	vals := make([]uint32, 0, 4096)
	x := uint32(2463534242)
	for i := 0; i < 4096; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		switch {
		case i%7 == 0:
			vals = append(vals, x%1024)
		case i%29 == 0:
			vals = append(vals, x) // long codes
		default:
			vals = append(vals, x%8)
		}
	}
	return vals
}

func BenchmarkReadUE(b *testing.B) {
	vals := ueCorpus()
	w := NewBitWriter()
	for _, v := range vals {
		w.WriteUE(v)
	}
	data := w.Bytes(true)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewBitReader(data)
		for range vals {
			if _, err := r.ReadUE(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 131)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewBitReader(data)
		// 11-bit reads: always straddling byte boundaries.
		for r.Remaining() >= 11 {
			if _, err := r.ReadBits(11); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWriteUE measures steady-state Exp-Golomb encoding: the writer
// is primed once and recycled via Reset(Take()), so the loop measures
// the bit-packing itself (0 allocs/op), not buffer growth.
func BenchmarkWriteUE(b *testing.B) {
	vals := ueCorpus()
	w := NewBitWriter()
	var buf []byte
	prime := func() {
		w.Reset(buf)
		for _, v := range vals {
			w.WriteUE(v)
		}
		if w.Len() == 0 {
			b.Fatal("empty writer")
		}
		buf = w.Take()
	}
	prime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prime()
	}
}

// BenchmarkWriteBits measures steady-state fixed-width packing with the
// same primed Reset(Take()) recycling (0 allocs/op).
func BenchmarkWriteBits(b *testing.B) {
	w := NewBitWriter()
	var buf []byte
	prime := func() {
		w.Reset(buf)
		for j := 0; j < 4096; j++ {
			w.WriteBits(uint64(j), 11)
		}
		if w.Len() != 4096*11 {
			b.Fatal("bit count")
		}
		buf = w.Take()
	}
	prime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prime()
	}
}

func BenchmarkDecodeStream(b *testing.B) {
	stream, src := benchStream(b)
	frames := len(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder()
		out, err := dec.DecodeStream(stream)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != frames {
			b.Fatalf("%d frames, want %d", len(out), frames)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*frames), "ns/frame")
}

// BenchmarkDecodeStreamPooled is the steady-state decode loop a fleet
// shard runs: one decoder, one FramePool, the output slice recycled, every
// frame returned to the pool. Allocations must be zero per op.
func BenchmarkDecodeStreamPooled(b *testing.B) {
	stream, src := benchStream(b)
	frames := len(src)
	dec := NewDecoder()
	pool := NewFramePool()
	dec.SetPool(pool)
	out, err := dec.DecodeStream(stream)
	if err != nil {
		b.Fatal(err)
	}
	pool.PutAll(out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset()
		out, err = dec.DecodeStreamInto(stream, out[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != frames {
			b.Fatalf("%d frames, want %d", len(out), frames)
		}
		pool.PutAll(out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*frames), "ns/frame")
}

func BenchmarkEncodeFrame(b *testing.B) {
	src, err := GenerateVideo(CalibrationVideoConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewEncoder(CalibrationEncoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	// Establish a reference so the measured frame is the common inter case.
	if _, err := enc.EncodeFrame(src[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeFrame(src[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeblockFrame(b *testing.B) {
	stream, _ := benchStream(b)
	dec := NewDecoder()
	frames, err := dec.DecodeStream(stream)
	if err != nil {
		b.Fatal(err)
	}
	f := frames[len(frames)-1]
	mbw, mbh := f.MBWidth(), f.MBHeight()
	mbs := make([]mbInfo, mbw*mbh)
	for i := range mbs {
		mbs[i] = mbInfo{coded: i%3 == 0, intra: i%7 == 0, mv: MV{X: i % 3, Y: (i / 3) % 2}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeblockFrame(f, mbs, 34)
	}
}

func BenchmarkIQIT(b *testing.B) {
	var blocks [64]Block4
	x := int32(1)
	for i := range blocks {
		for j := range blocks[i] {
			x = x*1103515245 + 12345
			if j == 0 || x%5 == 0 {
				blocks[i][j] = (x >> 16) % 12
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &blocks[i&63]
		if _, err := IQIT(*blk, 34); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResidualBlock(b *testing.B) {
	// A representative coded block round-tripped through the real encoder
	// path.
	var res Block4
	for i := range res {
		res[i] = int32((i*7)%23) - 11
	}
	z, err := TransformQuantize(res, 28)
	if err != nil {
		b.Fatal(err)
	}
	w := NewBitWriter()
	EncodeResidual(w, z)
	data := w.Bytes(true)
	nbits := w.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewBitReader(data)
		_, bits, err := DecodeResidual(r)
		if err != nil {
			b.Fatal(err)
		}
		if bits != nbits {
			b.Fatalf("consumed %d bits, wrote %d", bits, nbits)
		}
	}
}

func BenchmarkDecodeStreams(b *testing.B) {
	stream, src := benchStream(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(workers))
			streams := make([][]byte, 8)
			for i := range streams {
				streams[i] = stream
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs, err := DecodeStreams(streams, true)
				if err != nil {
					b.Fatal(err)
				}
				if len(outs) != len(streams) || len(outs[0]) != len(src) {
					b.Fatal("bad shape")
				}
			}
		})
	}
}

// BenchmarkSADBlock sweeps a motion-search-shaped set of SAD calls over
// two decoded frames: every 4x4 block of each macroblock against nine
// candidate vectors. The Ref variant runs the retained scalar loop on
// the same schedule, so the pair is a direct before/after for the
// PSADBW kernel.
func benchmarkSAD(b *testing.B, sad func(orig, ref *Frame, bx, by int, mv MV) int) {
	stream, _ := benchStream(b)
	dec := NewDecoder()
	frames, err := dec.DecodeStream(stream)
	if err != nil {
		b.Fatal(err)
	}
	orig, ref := frames[len(frames)-1], frames[len(frames)-2]
	mvs := []MV{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {2, 2}, {-2, -2}, {3, -1}, {-1, 3}}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for by := 0; by+4 <= orig.Height; by += 4 {
			for bx := 0; bx+4 <= orig.Width; bx += 4 {
				for _, mv := range mvs {
					sink += sad(orig, ref, bx, by, mv)
				}
			}
		}
	}
	if sink == -1 {
		b.Fatal("impossible")
	}
}

func BenchmarkSADBlock(b *testing.B)       { benchmarkSAD(b, sadBlock) }
func BenchmarkSADBlockScalar(b *testing.B) { benchmarkSAD(b, sadBlockRef) }

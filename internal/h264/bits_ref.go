package h264

import (
	"fmt"
	"math"
)

// Reference bitstream implementations: the original scalar bit-at-a-time
// reader and writer, kept as the oracle for the word-level fast paths in
// bits.go. The differential tests (bits_diff_test.go, FuzzBitsDiff) drive
// both over the same inputs and require identical bytes, values, and
// positions. They are intentionally unexported and carry no fast paths:
// when the two disagree, the reference defines correct behavior.

// refBitWriter is the scalar BitWriter: one appended bit per call.
type refBitWriter struct {
	buf  []byte
	bit  uint // bits used in the last byte (0..7, 0 means byte boundary)
	nbit int  // total bits written
}

func (w *refBitWriter) WriteBit(b uint) {
	if w.bit == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.bit)
	}
	w.bit = (w.bit + 1) % 8
	w.nbit++
}

func (w *refBitWriter) WriteBits(v uint64, n int) error {
	if n < 0 || n > 64 {
		return fmt.Errorf("%w: WriteBits count %d outside [0, 64]", ErrBitstream, n)
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint((v >> uint(i)) & 1))
	}
	return nil
}

func (w *refBitWriter) Len() int { return w.nbit }

func (w *refBitWriter) Bytes(trailing bool) []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	if trailing {
		tw := &refBitWriter{buf: out, bit: w.bit, nbit: w.nbit}
		tw.WriteBit(1)
		for tw.bit != 0 {
			tw.WriteBit(0)
		}
		return tw.buf
	}
	return out
}

func (w *refBitWriter) WriteUE(v uint32) {
	code := uint64(v) + 1
	n := 0
	for tmp := code; tmp > 1; tmp >>= 1 {
		n++
	}
	w.WriteBits(0, n)
	w.WriteBits(code, n+1)
}

func (w *refBitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*int64(v) - 1)
	} else {
		u = uint32(-2 * int64(v))
	}
	w.WriteUE(u)
}

// refBitReader is the scalar BitReader: one bit per call, a bare position
// counter.
type refBitReader struct {
	buf []byte
	pos int // bit position
}

func (r *refBitReader) ReadBit() (uint, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.pos)
	}
	b := (r.buf[byteIdx] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint(b), nil
}

func (r *refBitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("%w: ReadBits count %d outside [0, 64]", ErrBitstream, n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

func (r *refBitReader) BitsRead() int { return r.pos }

func (r *refBitReader) Remaining() int { return len(r.buf)*8 - r.pos }

func (r *refBitReader) ReadUE() (uint32, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("%w: ue(v) prefix too long", ErrBitstream)
		}
	}
	if n == 0 {
		return 0, nil
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	v := (uint64(1)<<uint(n) | rest) - 1
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: ue(v) %d overflows 32 bits", ErrBitstream, v)
	}
	return uint32(v), nil
}

func (r *refBitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		if u == math.MaxUint32 {
			return 0, fmt.Errorf("%w: se(v) 2^31 overflows", ErrBitstream)
		}
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}

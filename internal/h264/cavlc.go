package h264

import "fmt"

// CAVLC-style residual coding.
//
// coeff_token (TotalCoeff, TrailingOnes) uses the genuine spec VLC table
// for 0 <= nC < 2 (the dominant context in low-motion QCIF-class content);
// this model always codes with that table rather than switching tables on
// the predicted nC. Trailing-one signs are single bits; remaining levels
// use the genuine level_prefix/level_suffix scheme with adaptive
// suffixLength; total_zeros and run_before are coded with Exp-Golomb
// instead of the spec's per-count VLC tables. The stream stays fully
// self-consistent (encode/decode round-trips bit-exactly) and preserves
// the size structure — small residuals cost few bits — which is what the
// Input Selector's S_th statistics and the power model consume.

// coeffTokenCode is (length, bits) for the nC<2 coeff_token table,
// indexed [totalCoeff][trailingOnes]. From ITU-T H.264 table 9-5.
type vlcCode struct {
	length int
	bits   uint32
}

var coeffTokenNC0 = [17][4]vlcCode{
	{{1, 1}, {0, 0}, {0, 0}, {0, 0}},       // TC=0
	{{6, 0x05}, {2, 0x01}, {0, 0}, {0, 0}}, // TC=1: T1s=0,1
	{{8, 0x07}, {6, 0x04}, {3, 0x01}, {0, 0}},
	{{9, 0x07}, {8, 0x06}, {7, 0x05}, {5, 0x03}},
	{{10, 0x07}, {9, 0x06}, {8, 0x05}, {6, 0x03}},
	{{11, 0x07}, {10, 0x06}, {9, 0x05}, {7, 0x04}},
	{{13, 0x0F}, {11, 0x06}, {10, 0x05}, {8, 0x04}},
	{{13, 0x0B}, {13, 0x0E}, {11, 0x05}, {9, 0x04}},
	{{13, 0x08}, {13, 0x0A}, {13, 0x0D}, {10, 0x04}},
	{{14, 0x0F}, {14, 0x0E}, {13, 0x09}, {11, 0x04}},
	{{14, 0x0B}, {14, 0x0A}, {14, 0x0D}, {13, 0x0C}},
	{{15, 0x0F}, {15, 0x0E}, {14, 0x09}, {14, 0x0C}},
	{{15, 0x0B}, {15, 0x0A}, {15, 0x0D}, {14, 0x08}},
	{{16, 0x0F}, {15, 0x01}, {15, 0x09}, {15, 0x0C}},
	{{16, 0x0B}, {16, 0x0E}, {16, 0x0D}, {15, 0x08}},
	{{16, 0x07}, {16, 0x0A}, {16, 0x09}, {16, 0x0C}},
	{{16, 0x04}, {16, 0x06}, {16, 0x05}, {16, 0x08}},
}

// coeffTokenLUT decodes coeff_token with a single 16-bit peek: the table's
// longest code is 16 bits, so the leading 16 bits of the stream determine
// (TotalCoeff, TrailingOnes, length) uniquely. Entries pack
// tc<<7 | t1<<5 | length; 0 means no code has that prefix. Built by init
// from coeffTokenNC0, so the walking decoder and the LUT cannot drift.
var coeffTokenLUT [1 << 16]uint16

func init() {
	for tc := 0; tc <= 16; tc++ {
		for t1 := 0; t1 <= 3 && t1 <= tc; t1++ {
			c := coeffTokenNC0[tc][t1]
			if c.length == 0 && tc+t1 > 0 {
				continue
			}
			base := c.bits << uint(16-c.length)
			packed := uint16(tc)<<7 | uint16(t1)<<5 | uint16(c.length)
			for s := uint32(0); s < 1<<uint(16-c.length); s++ {
				coeffTokenLUT[base|s] = packed
			}
		}
	}
}

// EncodeResidual writes one 4x4 residual block to w and returns the number
// of coded bits.
func EncodeResidual(w *BitWriter, blk Block4) int {
	scan := blk.ZigZag()
	return encodeResidualScan(w, &scan)
}

// encodeResidualScan codes zig-zag-ordered coefficients without
// allocating; it is the form the encoder's fused transform path feeds
// directly. Bit output is identical to the original slice-based coder.
func encodeResidualScan(w *BitWriter, scan *[16]int32) int {
	startBits := w.Len()
	// Nonzero coefficients in reverse scan order (high frequency first).
	var levels [16]int32
	var positions [16]int
	totalCoeff := 0
	for i := 15; i >= 0; i-- {
		if scan[i] != 0 {
			levels[totalCoeff] = scan[i]
			positions[totalCoeff] = i
			totalCoeff++
		}
	}
	// run_before of level k = zeros between it and the next lower
	// coefficient in scan order (the spec's definition).
	var runs [16]int
	for k := 0; k < totalCoeff-1; k++ {
		runs[k] = positions[k] - positions[k+1] - 1
	}
	if totalCoeff > 0 {
		runs[totalCoeff-1] = positions[totalCoeff-1] // zeros below the lowest
	}
	lastNZ := -1
	if totalCoeff > 0 {
		lastNZ = positions[0]
	}
	// Trailing ones: up to 3 leading (in reverse order) coefficients with
	// |level| == 1.
	trailingOnes := 0
	for trailingOnes < 3 && trailingOnes < totalCoeff &&
		(levels[trailingOnes] == 1 || levels[trailingOnes] == -1) {
		trailingOnes++
	}
	code := coeffTokenNC0[totalCoeff][trailingOnes]
	w.WriteBits(uint64(code.bits), code.length)
	if totalCoeff == 0 {
		return w.Len() - startBits
	}
	// Trailing one signs, reverse scan order: 0 = positive.
	for i := 0; i < trailingOnes; i++ {
		if levels[i] < 0 {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
	}
	// Remaining levels with adaptive suffix length.
	suffixLength := 0
	if totalCoeff > 10 && trailingOnes < 3 {
		suffixLength = 1
	}
	for i := trailingOnes; i < totalCoeff; i++ {
		level := levels[i]
		levelCode := levelToCode(level, i == trailingOnes && trailingOnes < 3)
		writeLevel(w, levelCode, suffixLength)
		if suffixLength == 0 {
			suffixLength = 1
		}
		abs := level
		if abs < 0 {
			abs = -abs
		}
		if abs > (3<<(suffixLength-1)) && suffixLength < 6 {
			suffixLength++
		}
	}
	// total_zeros: zeros among scan[0..lastNZ] (Exp-Golomb here).
	totalZeros := lastNZ + 1 - totalCoeff
	w.WriteUE(uint32(totalZeros))
	// run_before per coefficient (reverse order, skip the last), while
	// zeros remain.
	zerosLeft := totalZeros
	for i := 0; i < totalCoeff-1 && zerosLeft > 0; i++ {
		rb := runs[i]
		w.WriteUE(uint32(rb))
		zerosLeft -= rb
	}
	return w.Len() - startBits
}

// levelToCode maps a signed level to the spec's level code. When firstNon1
// is set (first non-trailing-one level with T1s < 3), the magnitude is
// reduced by 1 before mapping.
func levelToCode(level int32, firstNon1 bool) int32 {
	abs := level
	if abs < 0 {
		abs = -abs
	}
	if firstNon1 {
		abs--
	}
	if level > 0 {
		return 2 * (abs - 1)
	}
	return 2*(abs-1) + 1
}

// codeToLevel inverts levelToCode.
func codeToLevel(code int32, firstNon1 bool) int32 {
	var abs int32
	var neg bool
	if code%2 == 0 {
		abs = code/2 + 1
	} else {
		abs = (code-1)/2 + 1
		neg = true
	}
	if firstNon1 {
		abs++
	}
	if neg {
		return -abs
	}
	return abs
}

// writeLevel emits level_prefix / level_suffix for a level code.
func writeLevel(w *BitWriter, levelCode int32, suffixLength int) {
	if suffixLength == 0 {
		// Unary below 14, escape at 14 (4-bit suffix), full escape at 15.
		if levelCode < 14 {
			w.WriteBits(0, int(levelCode))
			w.WriteBit(1)
			return
		}
		if levelCode < 30 {
			w.WriteBits(0, 14)
			w.WriteBit(1)
			w.WriteBits(uint64(levelCode-14), 4)
			return
		}
		w.WriteBits(0, 15)
		w.WriteBit(1)
		w.WriteBits(uint64(levelCode-30), 12)
		return
	}
	prefix := levelCode >> uint(suffixLength)
	if prefix < 15 {
		w.WriteBits(0, int(prefix))
		w.WriteBit(1)
		w.WriteBits(uint64(levelCode)&((1<<uint(suffixLength))-1), suffixLength)
		return
	}
	// Escape: prefix 15, 12-bit suffix.
	w.WriteBits(0, 15)
	w.WriteBit(1)
	w.WriteBits(uint64(levelCode-(15<<uint(suffixLength))), 12)
}

// readLevel decodes level_prefix / level_suffix into a level code.
func readLevel(r *BitReader, suffixLength int) (int32, error) {
	prefix := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		prefix++
		if prefix > 15 {
			return 0, fmt.Errorf("%w: level prefix too long", ErrBitstream)
		}
	}
	if suffixLength == 0 {
		switch {
		case prefix < 14:
			return int32(prefix), nil
		case prefix == 14:
			s, err := r.ReadBits(4)
			if err != nil {
				return 0, err
			}
			return 14 + int32(s), nil
		default:
			s, err := r.ReadBits(12)
			if err != nil {
				return 0, err
			}
			return 30 + int32(s), nil
		}
	}
	if prefix < 15 {
		s, err := r.ReadBits(suffixLength)
		if err != nil {
			return 0, err
		}
		return int32(prefix)<<uint(suffixLength) | int32(s), nil
	}
	s, err := r.ReadBits(12)
	if err != nil {
		return 0, err
	}
	return int32(15)<<uint(suffixLength) + int32(s), nil
}

// DecodeResidual reads one 4x4 residual block from r and returns it with
// the number of bits consumed.
func DecodeResidual(r *BitReader) (Block4, int, error) {
	var scan [16]int32
	n, _, err := decodeResidualScan(r, &scan)
	if err != nil {
		return Block4{}, 0, err
	}
	return FromZigZag(scan), n, nil
}

// decodeResidualScan reads one residual block into zig-zag order without
// allocating; the decoder's fused IQIT path consumes the scan directly.
// scan is fully overwritten. Bit consumption and errors are identical to
// the original slice-based decoder.
func decodeResidualScan(r *BitReader, scan *[16]int32) (bits, nz int, err error) {
	startBits := r.BitsRead()
	*scan = [16]int32{}
	totalCoeff, trailingOnes, err := readCoeffToken(r)
	if err != nil {
		return 0, 0, err
	}
	if totalCoeff == 0 {
		return r.BitsRead() - startBits, 0, nil
	}
	var levels [16]int32 // reverse scan order
	for i := 0; i < trailingOnes; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, 0, err
		}
		if b == 1 {
			levels[i] = -1
		} else {
			levels[i] = 1
		}
	}
	suffixLength := 0
	if totalCoeff > 10 && trailingOnes < 3 {
		suffixLength = 1
	}
	for i := trailingOnes; i < totalCoeff; i++ {
		code, err := readLevel(r, suffixLength)
		if err != nil {
			return 0, 0, err
		}
		level := codeToLevel(code, i == trailingOnes && trailingOnes < 3)
		levels[i] = level
		if suffixLength == 0 {
			suffixLength = 1
		}
		abs := level
		if abs < 0 {
			abs = -abs
		}
		if abs > (3<<(suffixLength-1)) && suffixLength < 6 {
			suffixLength++
		}
	}
	tz, err := r.ReadUE()
	if err != nil {
		return 0, 0, err
	}
	totalZeros := int(tz)
	if totalCoeff+totalZeros > 16 {
		return 0, 0, fmt.Errorf("%w: coeff+zeros %d exceeds block", ErrBitstream, totalCoeff+totalZeros)
	}
	var runs [16]int
	zerosLeft := totalZeros
	for i := 0; i < totalCoeff-1 && zerosLeft > 0; i++ {
		rb, err := r.ReadUE()
		if err != nil {
			return 0, 0, err
		}
		if int(rb) > zerosLeft {
			return 0, 0, fmt.Errorf("%w: run_before %d exceeds zeros left %d", ErrBitstream, rb, zerosLeft)
		}
		runs[i] = int(rb)
		zerosLeft -= int(rb)
	}
	runs[totalCoeff-1] = zerosLeft
	// Rebuild the scan: place levels from the highest position downward.
	pos := totalCoeff + totalZeros - 1
	for i := 0; i < totalCoeff; i++ {
		if pos < 0 || pos > 15 {
			return 0, 0, fmt.Errorf("%w: scan position %d", ErrBitstream, pos)
		}
		scan[pos] = levels[i]
		pos -= 1 + runs[i]
	}
	return r.BitsRead() - startBits, totalCoeff, nil
}

// readCoeffToken decodes the nC<2 coeff_token. The fast path peeks 16 bits
// and resolves the token from coeffTokenLUT in one lookup; when fewer than
// 16 bits remain (end of stream) it falls back to the bit-at-a-time table
// walk, which consumes exactly the bits the original decoder did before
// reporting truncation.
func readCoeffToken(r *BitReader) (totalCoeff, trailingOnes int, err error) {
	if peek, n := r.peek16(); n == 16 {
		e := coeffTokenLUT[peek]
		if e == 0 {
			// No 16-bit prefix matches any code: the walking decoder would
			// consume all 17 probe bits before failing, so mirror it.
			return readCoeffTokenSlow(r)
		}
		r.skip(int(e & 31))
		return int(e >> 7), int(e >> 5 & 3), nil
	}
	return readCoeffTokenSlow(r)
}

// readCoeffTokenSlow walks the code table one bit at a time (the original
// decoder); kept for truncated streams and as the LUT's reference.
func readCoeffTokenSlow(r *BitReader) (totalCoeff, trailingOnes int, err error) {
	var bits uint32
	var length int
	for length < 17 {
		b, err := r.ReadBit()
		if err != nil {
			return 0, 0, err
		}
		bits = bits<<1 | uint32(b)
		length++
		for tc := 0; tc <= 16; tc++ {
			for t1 := 0; t1 <= 3 && t1 <= tc; t1++ {
				c := coeffTokenNC0[tc][t1]
				if c.length == length && c.bits == bits {
					return tc, t1, nil
				}
			}
		}
	}
	return 0, 0, fmt.Errorf("%w: unknown coeff_token", ErrBitstream)
}

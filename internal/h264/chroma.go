package h264

import (
	"fmt"
	"math"
)

// 4:2:0 chroma coding, enabled by EncoderConfig.Chroma and signalled in
// the SPS. Each macroblock carries an 8x8 block per chroma plane (four
// 4x4 residual blocks each), intra-predicted with the DC predictor and
// motion-compensated at half the luma vector, per the 4:2:0 geometry.
// The Fig 6 power calibration profile is luma-only (the paper's module
// power breakdown is luma-dominated); chroma is the completeness option
// for users of the codec itself.

// CWidth returns the chroma plane width.
func (f *Frame) CWidth() int { return f.Width / 2 }

// CHeight returns the chroma plane height.
func (f *Frame) CHeight() int { return f.Height / 2 }

// CAt returns a chroma sample with edge clamping. plane selects Cb (0)
// or Cr (1).
func (f *Frame) CAt(plane, x, y int) uint8 {
	w, h := f.CWidth(), f.CHeight()
	if x < 0 {
		x = 0
	}
	if x >= w {
		x = w - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= h {
		y = h - 1
	}
	if plane == 0 {
		return f.Cb[y*w+x]
	}
	return f.Cr[y*w+x]
}

// SetC stores a chroma sample, ignoring out-of-plane coordinates.
func (f *Frame) SetC(plane, x, y int, v uint8) {
	w, h := f.CWidth(), f.CHeight()
	if x < 0 || x >= w || y < 0 || y >= h {
		return
	}
	if plane == 0 {
		f.Cb[y*w+x] = v
	} else {
		f.Cr[y*w+x] = v
	}
}

// FillChroma sets both chroma planes to a constant (128 = neutral gray).
func (f *Frame) FillChroma(cb, cr uint8) {
	for i := range f.Cb {
		f.Cb[i] = cb
	}
	for i := range f.Cr {
		f.Cr[i] = cr
	}
}

// predictChromaDC fills a 4x4 DC prediction for plane at (bx, by) in the
// chroma plane from reconstructed neighbors.
func predictChromaDC(f *Frame, plane, bx, by int) Block4 {
	var pred Block4
	hasTop := by > 0
	hasLeft := bx > 0
	var sum, n int32
	if hasTop {
		for c := 0; c < 4; c++ {
			sum += int32(f.CAt(plane, bx+c, by-1))
		}
		n += 4
	}
	if hasLeft {
		for r := 0; r < 4; r++ {
			sum += int32(f.CAt(plane, bx-1, by+r))
		}
		n += 4
	}
	dc := int32(128)
	if n > 0 {
		dc = (sum + n/2) / n
	}
	for i := range pred {
		pred[i] = dc
	}
	return pred
}

// predictChromaInter fills a motion-compensated 4x4 chroma prediction at
// half the luma motion vector (rounded toward zero).
func predictChromaInter(ref *Frame, plane, bx, by int, mv MV) Block4 {
	var pred Block4
	cx, cy := mv.X/2, mv.Y/2
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pred[r*4+c] = int32(ref.CAt(plane, bx+c+cx, by+r+cy))
		}
	}
	return pred
}

// chromaResidual returns original minus prediction for a chroma block.
func chromaResidual(orig *Frame, plane, bx, by int, pred Block4) Block4 {
	var res Block4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			res[r*4+c] = int32(orig.CAt(plane, bx+c, by+r)) - pred[r*4+c]
		}
	}
	return res
}

// reconstructChroma writes clamp(pred + residual) into the chroma plane.
func reconstructChroma(f *Frame, plane, bx, by int, pred, residual Block4) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			f.SetC(plane, bx+c, by+r, clampU8(pred[r*4+c]+residual[r*4+c]))
		}
	}
}

// chromaBlocksPerMB iterates the 4x4 chroma blocks of macroblock (mx, my):
// per plane, a 2x2 grid of 4x4 blocks covering the MB's 8x8 chroma area.
func chromaBlocksPerMB(mx, my int, fn func(plane, bx, by int) error) error {
	for plane := 0; plane < 2; plane++ {
		for by := 0; by < 8; by += 4 {
			for bx := 0; bx < 8; bx += 4 {
				if err := fn(plane, mx*8+bx, my*8+by); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// encodeChromaMB codes the chroma blocks of one macroblock.
func (e *Encoder) encodeChromaMB(w *BitWriter, orig, recon *Frame, mx, my, qp int, intra bool, mv MV) error {
	cqp := chromaQP(qp)
	return chromaBlocksPerMB(mx, my, func(plane, bx, by int) error {
		var pred Block4
		if intra {
			pred = predictChromaDC(recon, plane, bx, by)
		} else {
			pred = predictChromaInter(e.lastRef, plane, bx, by, mv)
		}
		res := chromaResidual(orig, plane, bx, by, pred)
		var scan [16]int32
		if _, err := transformQuantizeScan(&res, cqp, &scan); err != nil {
			return err
		}
		encodeResidualScan(w, &scan)
		var rec Block4
		if err := iqitScanInto(&scan, cqp, &rec); err != nil {
			return err
		}
		reconstructChroma(recon, plane, bx, by, pred, rec)
		return nil
	})
}

// decodeChromaMB mirrors encodeChromaMB.
func (d *Decoder) decodeChromaMB(r *BitReader, recon *Frame, mx, my int, intra bool, mv MV) error {
	cqp := chromaQP(d.qp)
	return chromaBlocksPerMB(mx, my, func(plane, bx, by int) error {
		var pred Block4
		if intra {
			pred = predictChromaDC(recon, plane, bx, by)
		} else {
			pred = predictChromaInter(d.lastRef, plane, bx, by, mv)
		}
		var scan [16]int32
		bits, _, err := decodeResidualScan(r, &scan)
		if err != nil {
			return err
		}
		d.activity.ResidualBits += bits
		var res Block4
		if err := iqitScanInto(&scan, cqp, &res); err != nil {
			return err
		}
		d.activity.BlocksIQIT++
		reconstructChroma(recon, plane, bx, by, pred, res)
		return nil
	})
}

// copyChromaMB copies the co-located chroma of a skip macroblock.
func copyChromaMB(dst, ref *Frame, mx, my int) {
	for plane := 0; plane < 2; plane++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				dst.SetC(plane, mx*8+x, my*8+y, ref.CAt(plane, mx*8+x, my*8+y))
			}
		}
	}
}

// chromaQP maps luma QP to chroma QP (simplified: clamp the spec's
// roughly-equal mapping below QP 30, slightly lower above).
func chromaQP(qp int) int {
	if qp <= 30 {
		return qp
	}
	c := 30 + (qp-30)*3/4
	if c > 51 {
		c = 51
	}
	return c
}

// ChromaPSNR returns the mean chroma PSNR (both planes) between frames.
func ChromaPSNR(a, b *Frame) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("h264: chroma PSNR dimension mismatch %dx%d vs %dx%d",
			a.Width, a.Height, b.Width, b.Height)
	}
	var sse float64
	for i := range a.Cb {
		d := float64(a.Cb[i]) - float64(b.Cb[i])
		sse += d * d
		d = float64(a.Cr[i]) - float64(b.Cr[i])
		sse += d * d
	}
	n := float64(2 * len(a.Cb))
	if sse == 0 {
		return math.Inf(1), nil
	}
	mse := sse / n
	return 10 * math.Log10(255*255/mse), nil
}

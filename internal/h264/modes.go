package h264

import (
	"fmt"
)

// SelectorConfig is the Input Selector's deletion policy: a NAL unit
// carrying a P or B slice whose on-wire size is at most Sth bytes is a
// deletion candidate; every f-th candidate is deleted (f=1 deletes all).
// Sth <= 0 or f <= 0 disables deletion. IDR slices and parameter sets are
// never deleted.
type SelectorConfig struct {
	Sth int
	F   int
	// ProtectReferences, when set, restricts deletion to non-reference
	// units (nal_ref_idc == 0), i.e. B slices in this model. The paper
	// deletes "P-frames and B-frames"; protecting references is the
	// conservative variant used for the quality ablation.
	ProtectReferences bool
}

// Enabled reports whether the selector deletes anything.
func (c SelectorConfig) Enabled() bool { return c.Sth > 0 && c.F > 0 }

// DecoderMode is one of the paper's four operating points (Fig 6 middle).
type DecoderMode int

// Decoder operating modes.
const (
	// ModeStandard processes every NAL unit with the deblocking filter on.
	ModeStandard DecoderMode = iota
	// ModeDeletion drops small P/B NAL units (S_th = 140, f = 1), DF on.
	ModeDeletion
	// ModeDFOff processes every NAL unit with the deblocking filter off.
	ModeDFOff
	// ModeCombined applies both deletion and DF deactivation.
	ModeCombined
	numModes
)

// NumModes is the number of decoder operating modes.
const NumModes = int(numModes)

// String returns the mode name as used in Fig 6.
func (m DecoderMode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeDeletion:
		return "deletion"
	case ModeDFOff:
		return "df-off"
	case ModeCombined:
		return "combined"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// PaperSth and PaperF are the deletion parameters used throughout the
// paper's evaluation ("S_th=140 and f=1").
const (
	PaperSth = 140
	PaperF   = 1
)

// Selector returns the Input Selector configuration of the mode.
func (m DecoderMode) Selector() SelectorConfig {
	if m == ModeDeletion || m == ModeCombined {
		return SelectorConfig{Sth: PaperSth, F: PaperF}
	}
	return SelectorConfig{}
}

// DeblockEnabled reports whether the mode runs the deblocking filter.
func (m DecoderMode) DeblockEnabled() bool {
	return m == ModeStandard || m == ModeDeletion
}

// Modes lists all four operating modes in Fig 6 order.
func Modes() []DecoderMode {
	return []DecoderMode{ModeStandard, ModeDFOff, ModeDeletion, ModeCombined}
}

// SelectorStats reports what the Input Selector did to a stream.
type SelectorStats struct {
	UnitsIn      int
	UnitsDeleted int
	BytesIn      int
	BytesDeleted int
	Candidates   int
}

// selectorRun is one pass of the Input Selector over a unit stream; it
// owns the deletion cadence and statistics, so ApplySelector and
// DecodePipeline share one decision (and instrumentation) point.
type selectorRun struct {
	cfg       SelectorConfig
	candidate int
	st        SelectorStats
}

// deletes records u and reports whether the selector deletes it.
func (s *selectorRun) deletes(u NAL) bool {
	size := u.SizeBytes()
	s.st.UnitsIn++
	s.st.BytesIn += size
	mtr.nalSeen.Inc()
	mtr.bytesSeen.Add(int64(size))
	mtr.nalSize.Observe(int64(size))
	eligible := s.cfg.Enabled() &&
		u.Type == NALSliceNonIDR &&
		size <= s.cfg.Sth &&
		(!s.cfg.ProtectReferences || u.RefIDC == 0)
	if !eligible {
		return false
	}
	s.candidate++
	s.st.Candidates++
	if s.candidate%s.cfg.F != 0 {
		return false
	}
	s.st.UnitsDeleted++
	s.st.BytesDeleted += size
	mtr.nalDeleted.Inc()
	mtr.bytesSkipped.Add(int64(size))
	return true
}

// ApplySelector runs the Input Selector over a unit sequence, returning
// the surviving units and deletion statistics.
func ApplySelector(units []NAL, cfg SelectorConfig) ([]NAL, SelectorStats) {
	sel := selectorRun{cfg: cfg}
	out := make([]NAL, 0, len(units))
	for _, u := range units {
		if !sel.deletes(u) {
			out = append(out, u)
		}
	}
	return out, sel.st
}

// PipelineResult is the outcome of decoding a stream through the full
// affect-adaptive front end in a given mode.
type PipelineResult struct {
	Mode     DecoderMode
	Frames   []*Frame
	Activity Activity
	Selector SelectorStats
	// Buffer traffic of the front end.
	PreStoreIn, PreStoreOut int
	CircularIn, CircularOut int
	PreStoreRewinds, Stalls int
}

// DecodePipeline feeds an annex-B stream through Input Selector ->
// Pre-store Buffer -> Circular Buffer -> decoder in the given mode.
//
// The byte-exact data path is modeled explicitly: every surviving byte is
// written to the pre-store buffer (deleted NAL units are written and then
// rewound, matching the hardware's write-address rollback), drained in
// 128-bit words into the circular buffer under the handshake, and read out
// by the parser. The reassembled stream is then decoded.
func DecodePipeline(stream []byte, mode DecoderMode) (*PipelineResult, error) {
	units, err := SplitStream(stream)
	if err != nil {
		return nil, err
	}
	sel := mode.Selector()

	ps := NewPreStoreBuffer()
	cb := NewCircularBuffer(64 * WordBytes)
	var parsed []byte
	drainAll := func(flush bool) {
		for {
			ps.Drain(cb, flush)
			if cb.Len() == 0 {
				return
			}
			parsed = append(parsed, cb.Read(cb.Len())...)
			if ps.Len() == 0 {
				return
			}
		}
	}

	run := selectorRun{cfg: sel}
	for _, u := range units {
		raw, err := MarshalNAL(u)
		if err != nil {
			return nil, err
		}
		if run.deletes(u) {
			// The selector writes the unit and then steps the write
			// address back over it, so its bytes never reach the
			// circular buffer. Chunked by free space; any draining here
			// only moves *previous* units' bytes (deleted bytes are
			// rewound immediately after each chunk).
			for off := 0; off < len(raw); {
				n := ps.Free()
				if n == 0 {
					drainAll(false)
					continue
				}
				if n > len(raw)-off {
					n = len(raw) - off
				}
				if !ps.Write(raw[off : off+n]) {
					return nil, fmt.Errorf("h264: prestore write of %d bytes failed with %d free", n, ps.Free())
				}
				if err := ps.Rewind(n); err != nil {
					return nil, err
				}
				off += n
			}
			continue
		}
		// Write the surviving unit through the pre-store buffer in
		// word-sized chunks, draining into the circular buffer (and on to
		// the parser) as space demands.
		written := 0
		for written < len(raw) {
			n := WordBytes
			if written+n > len(raw) {
				n = len(raw) - written
			}
			for !ps.Write(raw[written : written+n]) {
				drainAll(false)
			}
			written += n
		}

	}
	drainAll(true)

	st := run.st
	mtr.pipelineRuns.Inc()
	mtr.deletedBy[mode].Add(int64(st.UnitsDeleted))
	mtr.prestoreHighWater.SetMax(int64(ps.HighWater))
	mtr.prestoreRewinds.Add(int64(ps.Rewinds))
	mtr.circularStalls.Add(int64(cb.Stalls))

	dec := NewDecoder()
	dec.SetDeblock(mode.DeblockEnabled())
	frames, err := dec.DecodeStream(parsed)
	if err != nil {
		return nil, err
	}
	// Conceal trailing deleted units: the display timeline covers every
	// frame number present in the *original* stream.
	if total := totalFrameCount(units); total > 0 {
		frames = append(frames, dec.ConcealTo(total)...)
	}
	act := dec.Activity()
	act.BufferBytes = ps.BytesIn + ps.BytesOut + cb.BytesIn + cb.BytesOut
	return &PipelineResult{
		Mode:            mode,
		Frames:          frames,
		Activity:        act,
		Selector:        st,
		PreStoreIn:      ps.BytesIn,
		PreStoreOut:     ps.BytesOut,
		CircularIn:      cb.BytesIn,
		CircularOut:     cb.BytesOut,
		PreStoreRewinds: ps.Rewinds,
		Stalls:          cb.Stalls,
	}, nil
}

// totalFrameCount returns max(frame_num)+1 over slice units, or 0 when the
// stream has no parseable slices.
func totalFrameCount(units []NAL) int {
	total := 0
	for _, u := range units {
		if u.Type != NALSliceIDR && u.Type != NALSliceNonIDR {
			continue
		}
		r := NewBitReader(u.Payload)
		if _, err := r.ReadUE(); err != nil { // slice type
			continue
		}
		num, err := r.ReadUE()
		if err != nil {
			continue
		}
		if int(num)+1 > total {
			total = int(num) + 1
		}
	}
	return total
}

// Area accounting (Fig 6): the conventional decoder normalized to 1.0 and
// the pre-store buffer's contribution.
const (
	// BaseDecoderAreaMM2 is the paper's 65-nm decoder area.
	BaseDecoderAreaMM2 = 1.9
	// PreStoreAreaOverhead is the fractional area added by the pre-store
	// buffer and selector logic (4.23% in the paper's layout).
	PreStoreAreaOverhead = 0.0423
)

package h264

import (
	"bytes"
	"fmt"
)

// NALType identifies the payload of a NAL unit. The values follow the
// H.264 nal_unit_type numbering where applicable.
type NALType int

// NAL unit types used by this model.
const (
	NALSliceNonIDR NALType = 1 // P or B slice
	NALSliceIDR    NALType = 5 // I (IDR) slice
	NALSPS         NALType = 7 // sequence parameter set
	NALPPS         NALType = 8 // picture parameter set
)

// String returns the NAL type name.
func (t NALType) String() string {
	switch t {
	case NALSliceNonIDR:
		return "non-IDR slice"
	case NALSliceIDR:
		return "IDR slice"
	case NALSPS:
		return "SPS"
	case NALPPS:
		return "PPS"
	}
	return fmt.Sprintf("nal(%d)", int(t))
}

// NAL is one network-abstraction-layer unit.
type NAL struct {
	Type NALType
	// RefIDC is nal_ref_idc: nonzero means the picture is used as a
	// reference. Non-reference B slices carry 0 and are the droppable
	// units the Input Selector targets.
	RefIDC int
	// Payload is the RBSP (already de-escaped on parse).
	Payload []byte
}

// SizeBytes returns the on-wire size the Input Selector compares against
// S_th: header byte plus escaped payload (start code excluded, matching
// the paper's per-NAL-unit size accounting).
func (n NAL) SizeBytes() int { return 1 + escapedLen(n.Payload) }

// escapedLen returns len(escapeRBSP(p)) without building the escaped
// stream — the Input Selector sizes every NAL unit per selector pass, so
// this is a pure counting loop.
func escapedLen(p []byte) int {
	n := len(p)
	zeros := 0
	for _, b := range p {
		if zeros >= 2 && b <= 3 {
			n++
			zeros = 0
		}
		if b == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return n
}

var startCode = []byte{0, 0, 0, 1}

// escapeRBSP inserts emulation_prevention_three_byte (0x03) after any
// 0x0000 pair followed by a byte <= 0x03, per the spec.
func escapeRBSP(p []byte) []byte {
	out := make([]byte, 0, len(p)+4)
	zeros := 0
	for _, b := range p {
		if zeros >= 2 && b <= 3 {
			out = append(out, 3)
			zeros = 0
		}
		out = append(out, b)
		if b == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return out
}

// unescapeRBSP removes emulation prevention bytes. When the payload
// contains no escapes — the overwhelmingly common case — it returns p
// itself: callers (SplitStream consumers) treat payloads as read-only, so
// the zero-copy subslice is safe and skips one allocation per NAL unit.
func unescapeRBSP(p []byte) []byte {
	// First pass: find the first escape byte, if any.
	esc := -1
	zeros := 0
	for i := 0; i < len(p); i++ {
		b := p[i]
		if zeros >= 2 && b == 3 && i+1 < len(p) && p[i+1] <= 3 {
			esc = i
			break
		}
		if b == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	if esc < 0 {
		return p
	}
	out := make([]byte, 0, len(p))
	out = append(out, p[:esc]...)
	zeros = 0 // the escape follows two zeros; they are already appended
	for i := esc; i < len(p); i++ {
		b := p[i]
		if i == esc {
			continue // drop the first escape byte found above
		}
		if zeros >= 2 && b == 3 && i+1 < len(p) && p[i+1] <= 3 {
			zeros = 0
			continue // drop the escape byte
		}
		out = append(out, b)
		if b == 0 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return out
}

// MarshalNAL frames one NAL unit with a 4-byte start code, the header byte
// (forbidden_zero_bit, nal_ref_idc, nal_unit_type), and the escaped payload.
func MarshalNAL(n NAL) ([]byte, error) {
	if n.Type < 0 || int(n.Type) > 31 {
		return nil, fmt.Errorf("h264: invalid NAL type %d", int(n.Type))
	}
	if n.RefIDC < 0 || n.RefIDC > 3 {
		return nil, fmt.Errorf("h264: invalid nal_ref_idc %d", n.RefIDC)
	}
	header := byte(n.RefIDC<<5) | byte(n.Type)
	out := make([]byte, 0, len(n.Payload)+5)
	out = append(out, startCode...)
	out = append(out, header)
	out = append(out, escapeRBSP(n.Payload)...)
	return out, nil
}

// MarshalStream frames a sequence of NAL units.
func MarshalStream(units []NAL) ([]byte, error) {
	var buf bytes.Buffer
	for _, n := range units {
		b, err := MarshalNAL(n)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// SplitStream scans an annex-B byte stream into NAL units, accepting both
// 3-byte and 4-byte start codes.
func SplitStream(stream []byte) ([]NAL, error) {
	return SplitStreamInto(stream, nil)
}

// SplitStreamInto is SplitStream appending into units (reusing its backing
// array), for callers that split streams repeatedly — pass units[:0] to
// recycle the previous call's slice.
func SplitStreamInto(stream []byte, units []NAL) ([]NAL, error) {
	i := 0
	// find first start code
	start, _ := nextStartCode(stream, 0)
	if start < 0 {
		if len(stream) == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: no start code", ErrBitstream)
	}
	i = start
	for i < len(stream) {
		_, hdr := nextStartCode(stream, i)
		if hdr < 0 {
			break
		}
		next, _ := nextStartCode(stream, hdr)
		end := len(stream)
		if next >= 0 {
			end = next
		}
		if hdr >= end {
			return nil, fmt.Errorf("%w: empty NAL unit at %d", ErrBitstream, i)
		}
		header := stream[hdr]
		if header&0x80 != 0 {
			return nil, fmt.Errorf("%w: forbidden_zero_bit set at %d", ErrBitstream, hdr)
		}
		units = append(units, NAL{
			Type:    NALType(header & 0x1f),
			RefIDC:  int(header >> 5),
			Payload: unescapeRBSP(stream[hdr+1 : end]),
		})
		i = end
	}
	return units, nil
}

// nextStartCode returns the index of the next start code at or after i and
// the index just past it (the header byte), or (-1, -1).
func nextStartCode(b []byte, i int) (codeStart, payloadStart int) {
	for ; i+3 <= len(b); i++ {
		if b[i] == 0 && b[i+1] == 0 {
			if b[i+2] == 1 {
				return i, i + 3
			}
			if i+4 <= len(b) && b[i+2] == 0 && b[i+3] == 1 {
				return i, i + 4
			}
		}
	}
	return -1, -1
}

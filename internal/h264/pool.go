package h264

import "sync"

// FramePool recycles Frame plane slabs. Decoding a stream allocates one
// Frame per slice plus concealment clones; at QCIF that is ~38 KB of plane
// data per frame that the garbage collector otherwise churns through. The
// pool hands frames back keyed by exact dimensions, so a decoder that is
// reset between streams (or a fleet shard decoding the same probe clip
// every tick) reaches a steady state of zero plane allocations.
//
// Frames are zeroed on Put, not Get: returned frames never leak pixel data
// from a previous stream, and the zeroing cost sits on the release path
// where it overlaps naturally with the consumer being done with the frame.
// A nil *FramePool is valid and degrades to plain NewFrame allocation, so
// pooling stays strictly opt-in.
type FramePool struct {
	mu   sync.Mutex
	w, h int
	free []*Frame
}

// NewFramePool returns an empty pool. The pool adopts the dimensions of
// the first frame it sees; frames of any other size bypass it.
func NewFramePool() *FramePool { return &FramePool{} }

// Get returns a zeroed w×h frame, reusing a pooled one when the
// dimensions match. Dimension validation is NewFrame's, so a pooled Get
// fails in exactly the cases an unpooled allocation would.
func (p *FramePool) Get(w, h int) (*Frame, error) {
	if p == nil {
		return NewFrame(w, h)
	}
	p.mu.Lock()
	if p.w == w && p.h == h && len(p.free) > 0 {
		f := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.mu.Unlock()
		return f, nil
	}
	p.mu.Unlock()
	return NewFrame(w, h)
}

// Put zeroes f and returns it to the pool. Frames whose dimensions differ
// from the pool's current size are dropped (the pool re-keys itself when
// empty, so a dimension change costs one generation of frames, not a
// permanent mismatch). Nil pools and nil frames are no-ops.
func (p *FramePool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	for i := range f.Y {
		f.Y[i] = 0
	}
	for i := range f.Cb {
		f.Cb[i] = 0
	}
	for i := range f.Cr {
		f.Cr[i] = 0
	}
	p.mu.Lock()
	if len(p.free) == 0 {
		p.w, p.h = f.Width, f.Height
	}
	if p.w == f.Width && p.h == f.Height {
		p.free = append(p.free, f)
	}
	p.mu.Unlock()
}

// PutAll returns every frame in fs to the pool.
func (p *FramePool) PutAll(fs []*Frame) {
	for _, f := range fs {
		p.Put(f)
	}
}

// Size reports how many frames are currently pooled.
func (p *FramePool) Size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

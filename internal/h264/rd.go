package h264

import "fmt"

// RDPoint is one operating point of the rate-distortion sweep.
type RDPoint struct {
	QP         int
	BitsPerSec float64 // at the given fps
	PSNR       float64
	Energy     float64 // standard-mode decode energy
	SmallUnits int     // slice NAL units <= PaperSth (deletion candidates)
}

// RateDistortionSweep encodes src at each QP and decodes in standard mode,
// returning rate, quality, decode energy, and how many units would be
// deletion candidates at the paper's threshold. This characterizes how the
// affect-adaptive knobs interact with the encoder operating point.
func RateDistortionSweep(src []*Frame, base EncoderConfig, qps []int, model EnergyModel, fps float64) ([]RDPoint, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("h264: empty source for RD sweep")
	}
	if len(qps) == 0 {
		return nil, fmt.Errorf("h264: no QPs to sweep")
	}
	if fps <= 0 {
		return nil, fmt.Errorf("h264: fps %g must be positive", fps)
	}
	seconds := float64(len(src)) / fps
	out := make([]RDPoint, 0, len(qps))
	for _, qp := range qps {
		cfg := base
		cfg.QP = qp
		enc, err := NewEncoder(cfg)
		if err != nil {
			return nil, err
		}
		stream, units, err := enc.EncodeSequence(src)
		if err != nil {
			return nil, err
		}
		var small int
		for _, u := range units {
			if u.Type == NALSliceNonIDR && u.SizeBytes() <= PaperSth {
				small++
			}
		}
		dec := NewDecoder()
		frames, err := dec.DecodeStream(stream)
		if err != nil {
			return nil, err
		}
		psnr, err := MeanPSNR(src, frames)
		if err != nil {
			return nil, err
		}
		energy := model.Charge(dec.Activity(), cfg.Width*cfg.Height).Total()
		out = append(out, RDPoint{
			QP:         qp,
			BitsPerSec: float64(len(stream)) * 8 / seconds,
			PSNR:       psnr,
			Energy:     energy,
			SmallUnits: small,
		})
	}
	return out, nil
}

package h264

import (
	"fmt"
	"math"
)

// Frame is a YUV 4:2:0 picture. Luma is Width x Height; each chroma plane
// is half resolution in both dimensions.
type Frame struct {
	Width, Height int
	Y, Cb, Cr     []uint8
}

// NewFrame allocates a zeroed frame. Dimensions must be positive multiples
// of 16 (whole macroblocks).
func NewFrame(width, height int) (*Frame, error) {
	if width <= 0 || height <= 0 || width%16 != 0 || height%16 != 0 {
		return nil, fmt.Errorf("h264: frame %dx%d must be positive multiples of 16", width, height)
	}
	return &Frame{
		Width: width, Height: height,
		Y:  make([]uint8, width*height),
		Cb: make([]uint8, width*height/4),
		Cr: make([]uint8, width*height/4),
	}, nil
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	c := &Frame{Width: f.Width, Height: f.Height,
		Y:  make([]uint8, len(f.Y)),
		Cb: make([]uint8, len(f.Cb)),
		Cr: make([]uint8, len(f.Cr)),
	}
	copy(c.Y, f.Y)
	copy(c.Cb, f.Cb)
	copy(c.Cr, f.Cr)
	return c
}

// MBWidth returns the frame width in macroblocks.
func (f *Frame) MBWidth() int { return f.Width / 16 }

// MBHeight returns the frame height in macroblocks.
func (f *Frame) MBHeight() int { return f.Height / 16 }

// YAt returns the luma sample at (x, y), clamping coordinates to the frame
// (edge extension, as motion compensation requires).
func (f *Frame) YAt(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.Width {
		x = f.Width - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.Height {
		y = f.Height - 1
	}
	return f.Y[y*f.Width+x]
}

// SetY stores a luma sample, ignoring out-of-frame coordinates.
func (f *Frame) SetY(x, y int, v uint8) {
	if x < 0 || x >= f.Width || y < 0 || y >= f.Height {
		return
	}
	f.Y[y*f.Width+x] = v
}

// clampU8 saturates an int32 to [0, 255].
func clampU8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// PSNR returns the luma peak signal-to-noise ratio between two frames in
// dB, +Inf for identical frames. Frames must share dimensions.
func PSNR(a, b *Frame) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("h264: PSNR dimension mismatch %dx%d vs %dx%d", a.Width, a.Height, b.Width, b.Height)
	}
	var sse float64
	for i := range a.Y {
		d := float64(a.Y[i]) - float64(b.Y[i])
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1), nil
	}
	mse := sse / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse), nil
}

// MeanPSNR averages PSNR over paired frame sequences, skipping infinite
// (identical) pairs unless all are identical, in which case +Inf.
func MeanPSNR(ref, out []*Frame) (float64, error) {
	if len(ref) != len(out) {
		return 0, fmt.Errorf("h264: sequence length mismatch %d vs %d", len(ref), len(out))
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("h264: empty sequences")
	}
	var sum float64
	var n int
	for i := range ref {
		p, err := PSNR(ref[i], out[i])
		if err != nil {
			return 0, err
		}
		if math.IsInf(p, 1) {
			continue
		}
		sum += p
		n++
	}
	if n == 0 {
		return math.Inf(1), nil
	}
	return sum / float64(n), nil
}

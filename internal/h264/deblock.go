package h264

import (
	"math/bits"

	"affectedge/internal/simd"
)

// Deblocking filter (in-loop filter of §8.7, modeled at 4x4-edge
// granularity on luma). Boundary strength follows the spec's decision
// ladder; the edge filter is the normal-filter (bS < 4) form plus the
// strong filter for bS == 4, with the spec's alpha/beta threshold tables.

// alphaTable and betaTable index by clamped indexA/indexB (= QP here,
// offsets zero), per ITU-T H.264 table 8-16.
var alphaTable = [52]int32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20, 22, 25, 28,
	32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144,
	162, 182, 203, 226, 255, 255,
}

var betaTable = [52]int32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
	9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15,
	16, 16, 17, 17, 18, 18,
}

// tc0Table indexes [bS-1][indexA], per table 8-17 (luma).
var tc0Table = [3][52]int32{
	{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 6, 6, 7, 8,
		9, 10, 11, 13},
	{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		1, 2, 2, 2, 2, 3, 3, 3, 4, 4, 5, 6, 6, 7, 8, 9,
		10, 11, 13, 14},
	{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2,
		2, 3, 3, 3, 4, 4, 4, 5, 6, 6, 7, 8, 9, 10, 11, 13,
		14, 16, 18, 20},
}

// mbInfo is per-macroblock decode state the filter consults.
type mbInfo struct {
	intra bool
	coded bool // any nonzero residual
	mv    MV
}

// BoundaryStrength returns the spec's bS for an edge between blocks in
// macroblocks p and q (p left/above). mbEdge marks a macroblock boundary.
func BoundaryStrength(p, q mbInfo, mbEdge bool) int {
	switch {
	case (p.intra || q.intra) && mbEdge:
		return 4
	case p.intra || q.intra:
		return 3
	case p.coded || q.coded:
		return 2
	case abs(p.mv.X-q.mv.X) >= 1 || abs(p.mv.Y-q.mv.Y) >= 1:
		return 1
	default:
		return 0
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// filterStats counts deblocking activity for the power model.
type filterStats struct {
	edgesConsidered int // every 4-sample edge segment: bS computation
	edgesExamined   int // segments with bS > 0: threshold evaluation
	edgesFiltered   int // segments that passed thresholds and were filtered
	samplesTouch    int // samples written
}

// filterEdgeLuma filters one 4-sample luma edge. For vertical edges the
// samples run horizontally across the boundary at (x, y+i); for horizontal
// edges vertically. bS > 0 and thresholds decide whether filtering occurs.
//
// Every sample this touches is in-frame by construction: DeblockFrame only
// emits vertical edges with 4 <= x <= width-4 and horizontal edges with
// 4 <= y <= height-4, so the four samples on each side sit at offsets
// p0-3*step .. q0+3*step inside the plane. That lets the filter index the
// plane directly instead of going through clamping accessors — same
// arithmetic, same write order.
//
// The whole edge — threshold decisions and tap arithmetic for all four
// segments — is evaluated by one simd.DeblockEdge4 call, which is
// bit-identical to the spec's sequential per-segment filter: integer
// taps are exact, and a segment's writes stay on its own row (vertical)
// or column (horizontal), never feeding a later segment's reads. The
// returned write masks reproduce the per-segment filter statistics.
func filterEdgeLuma(f *Frame, x, y int, vertical bool, bS, qp int, st *filterStats) {
	if bS <= 0 {
		return
	}
	alpha := alphaTable[clampQP(qp)]
	beta := betaTable[clampQP(qp)]
	st.edgesExamined += 4
	if alpha == 0 || beta == 0 {
		// |d| >= 0 always fails a zero threshold: nothing can filter.
		return
	}
	strong := bS >= 4
	var tc0 int32
	if !strong {
		tc0 = tc0Table[bS-1][clampQP(qp)]
	}
	w := f.Width
	var base int
	if vertical {
		base = y*w + x - 4
	} else {
		base = (y-4)*w + x
	}
	m0, mP, mQ := simd.DeblockEdge4(f.Y, base, w, vertical, alpha, beta, tc0, strong)
	n := bits.OnesCount8(m0)
	if n == 0 {
		return
	}
	st.edgesFiltered += n
	// Each filtered segment writes p0 and q0; mP/mQ flag the extra
	// one-sample (normal) or two-sample (strong) side writes.
	extra := 1
	if strong {
		extra = 2
	}
	st.samplesTouch += 2*n + extra*(bits.OnesCount8(mP)+bits.OnesCount8(mQ))
}

func absI32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clip3(lo, hi, v int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampQP(qp int) int {
	if qp < 0 {
		return 0
	}
	if qp > 51 {
		return 51
	}
	return qp
}

// DeblockFrame runs the in-loop filter over a reconstructed frame using
// per-macroblock decode info (row-major, MBWidth x MBHeight). It returns
// filter activity statistics for the power model.
func DeblockFrame(f *Frame, mbs []mbInfo, qp int) filterStats {
	var st filterStats
	mbw, mbh := f.MBWidth(), f.MBHeight()
	if len(mbs) != mbw*mbh {
		return st
	}
	// Vertical edges then horizontal edges, per spec order; edges every 4
	// samples, macroblock-boundary edges get mbEdge treatment.
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			cur := mbs[my*mbw+mx]
			for ex := 0; ex < 16; ex += 4 {
				x := mx*16 + ex
				if x == 0 {
					continue
				}
				nb := cur
				mbEdge := ex == 0
				if mbEdge {
					nb = mbs[my*mbw+mx-1]
				}
				bS := BoundaryStrength(nb, cur, mbEdge)
				for ey := 0; ey < 16; ey += 4 {
					st.edgesConsidered++
					filterEdgeLuma(f, x, my*16+ey, true, bS, qp, &st)
				}
			}
			for ey := 0; ey < 16; ey += 4 {
				y := my*16 + ey
				if y == 0 {
					continue
				}
				nb := cur
				mbEdge := ey == 0
				if mbEdge {
					nb = mbs[(my-1)*mbw+mx]
				}
				bS := BoundaryStrength(nb, cur, mbEdge)
				for ex := 0; ex < 16; ex += 4 {
					st.edgesConsidered++
					filterEdgeLuma(f, mx*16+ex, y, false, bS, qp, &st)
				}
			}
		}
	}
	return st
}

// Package h264 implements a self-consistent model of an H.264/AVC
// baseline-profile decoder and matching encoder, extended with the paper's
// affect-driven hardware: an Input Selector that drops small P/B NAL units
// (parameters S_th and f), a 128x16-bit Pre-store Buffer with a read/write
// handshake to the Circular Buffer, and a deactivatable Deblocking Filter
// (§4, Fig 5).
//
// The entropy layer uses real Exp-Golomb codes and a CAVLC-style residual
// coder (genuine coeff_token table for nC < 2, genuine level prefix/suffix
// codes; total_zeros and run_before use Exp-Golomb instead of the full
// per-count VLC tables — a documented simplification that preserves the
// bit-length *structure* the power model consumes). The transform layer is
// the real 4x4 integer transform with the spec's MF/V quantization tables.
package h264

import (
	"errors"
	"fmt"
	"math"
)

// ErrBitstream reports malformed or truncated bitstream input.
var ErrBitstream = errors.New("h264: malformed bitstream")

// BitWriter assembles a bit-packed byte stream, MSB first.
type BitWriter struct {
	buf  []byte
	bit  uint // bits used in the last byte (0..7, 0 means byte boundary)
	nbit int  // total bits written
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) {
	if w.bit == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.bit)
	}
	w.bit = (w.bit + 1) % 8
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint((v >> uint(i)) & 1))
	}
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the stream padded to a byte boundary with RBSP-style
// trailing bits: a stop bit followed by zeros (only when unaligned or
// force is set).
func (w *BitWriter) Bytes(trailing bool) []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	if trailing {
		tw := &BitWriter{buf: out, bit: w.bit, nbit: w.nbit}
		tw.WriteBit(1)
		for tw.bit != 0 {
			tw.WriteBit(0)
		}
		return tw.buf
	}
	return out
}

// BitReader consumes a bit-packed byte stream, MSB first.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader returns a reader over data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.pos)
	}
	b := (r.buf[byteIdx] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits as an unsigned value. n must be <= 64.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// BitsRead returns the number of bits consumed so far.
func (r *BitReader) BitsRead() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }

// WriteUE appends an unsigned Exp-Golomb code ue(v).
func (w *BitWriter) WriteUE(v uint32) {
	code := uint64(v) + 1
	// Count leading length.
	n := 0
	for tmp := code; tmp > 1; tmp >>= 1 {
		n++
	}
	w.WriteBits(0, n)
	w.WriteBits(code, n+1)
}

// ReadUE decodes an unsigned Exp-Golomb code ue(v).
func (r *BitReader) ReadUE() (uint32, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("%w: ue(v) prefix too long", ErrBitstream)
		}
	}
	if n == 0 {
		return 0, nil
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	v := (uint64(1)<<uint(n) | rest) - 1
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: ue(v) %d overflows 32 bits", ErrBitstream, v)
	}
	return uint32(v), nil
}

// WriteSE appends a signed Exp-Golomb code se(v) using the spec mapping
// (positive values first: 1 -> 1, -1 -> 2, 2 -> 3, ...). The mapping
// covers [math.MinInt32+1, math.MaxInt32]; -2^31 itself has no ue(v)
// code (its mapped value 2^32 exceeds the 32-bit ue space).
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*int64(v) - 1)
	} else {
		u = uint32(-2 * int64(v))
	}
	w.WriteUE(u)
}

// ReadSE decodes a signed Exp-Golomb code se(v). The maximum ue code
// 2^32-1 maps to +2^31, which overflows int32 and is rejected.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		if u == math.MaxUint32 {
			return 0, fmt.Errorf("%w: se(v) 2^31 overflows", ErrBitstream)
		}
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}

// Package h264 implements a self-consistent model of an H.264/AVC
// baseline-profile decoder and matching encoder, extended with the paper's
// affect-driven hardware: an Input Selector that drops small P/B NAL units
// (parameters S_th and f), a 128x16-bit Pre-store Buffer with a read/write
// handshake to the Circular Buffer, and a deactivatable Deblocking Filter
// (§4, Fig 5).
//
// The entropy layer uses real Exp-Golomb codes and a CAVLC-style residual
// coder (genuine coeff_token table for nC < 2, genuine level prefix/suffix
// codes; total_zeros and run_before use Exp-Golomb instead of the full
// per-count VLC tables — a documented simplification that preserves the
// bit-length *structure* the power model consumes). The transform layer is
// the real 4x4 integer transform with the spec's MF/V quantization tables.
package h264

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrBitstream reports malformed or truncated bitstream input.
var ErrBitstream = errors.New("h264: malformed bitstream")

// BitWriter assembles a bit-packed byte stream, MSB first. Bits accumulate
// in a word and spill to the byte buffer whole bytes at a time, so a
// WriteBits call costs one shift/merge instead of a per-bit loop. The
// scalar bit-at-a-time implementation is retained as refBitWriter and the
// two are checked against each other by the differential tests; output is
// byte-identical.
type BitWriter struct {
	buf  []byte
	acc  uint64 // pending sub-byte bits, right-aligned (oldest bit highest)
	pend int    // bits pending in acc (always < 8 between calls)
	nbit int    // total bits written
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// Reset empties the writer and adopts buf (which may be nil) as the
// output backing, overwriting from its start. A caller encoding a stream
// of NAL units can hand the previous unit's backing straight back —
// w.Reset(w.Take()) — and reach a steady state where the writer
// allocates only when a unit outgrows every buffer it has ever used.
func (w *BitWriter) Reset(buf []byte) {
	w.buf = buf[:0]
	w.acc = 0
	w.pend = 0
	w.nbit = 0
}

// Grow ensures capacity for at least nbits more bits without another
// allocation — the grow-once policy for callers that know a unit's size
// bound up front.
func (w *BitWriter) Grow(nbits int) {
	need := len(w.buf) + (w.pend+nbits+7)/8
	if need <= cap(w.buf) {
		return
	}
	nb := make([]byte, len(w.buf), need)
	copy(nb, w.buf)
	w.buf = nb
}

// Take returns the writer's backing buffer truncated to the whole bytes
// written so far (no trailing padding — use Bytes for RBSP output) and
// detaches it from the writer. Intended for Reset recycling.
func (w *BitWriter) Take() []byte {
	b := w.buf
	w.buf = nil
	return b
}

// WriteBit appends one bit (any nonzero value writes 1).
func (w *BitWriter) WriteBit(b uint) {
	var v uint64
	if b != 0 {
		v = 1
	}
	w.writeSmall(v, 1)
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first. n outside
// [0, 64] is rejected with ErrBitstream and writes nothing.
func (w *BitWriter) WriteBits(v uint64, n int) error {
	if n < 0 || n > 64 {
		return fmt.Errorf("%w: WriteBits count %d outside [0, 64]", ErrBitstream, n)
	}
	if n == 0 {
		return nil
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	// writeSmall needs pend+n <= 63; with pend < 8 any n <= 55 is safe.
	// Longer writes split into two halves.
	if n > 55 {
		h := n - 32
		w.writeSmall(v>>32, h)
		w.writeSmall(v&0xffffffff, 32)
	} else {
		w.writeSmall(v, n)
	}
	w.nbit += n
	return nil
}

// writeSmall merges n (<= 55) already-masked bits into the accumulator and
// spills every completed byte. Maintains the invariant pend < 8.
func (w *BitWriter) writeSmall(v uint64, n int) {
	big := w.acc<<uint(n) | v
	total := w.pend + n
	for total >= 8 {
		total -= 8
		w.buf = append(w.buf, byte(big>>uint(total)))
	}
	w.acc = big & (1<<uint(total) - 1)
	w.pend = total
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the stream padded to a byte boundary with RBSP-style
// trailing bits: a stop bit followed by zeros (only when unaligned or
// force is set).
func (w *BitWriter) Bytes(trailing bool) []byte {
	n := len(w.buf)
	if w.pend > 0 || trailing {
		n++
	}
	out := make([]byte, len(w.buf), n)
	copy(out, w.buf)
	last := byte(w.acc << uint(8-w.pend))
	if trailing {
		out = append(out, last|1<<uint(7-w.pend))
	} else if w.pend > 0 {
		out = append(out, last)
	}
	return out
}

// BitReader consumes a bit-packed byte stream, MSB first. Up to 64
// upcoming bits are cached MSB-aligned in a word refilled in bulk, so
// ReadBits is a shift/mask pair and ReadUE counts its Exp-Golomb prefix
// with one CLZ instead of a bit loop. The scalar implementation is
// retained as refBitReader; differential tests pin the two to identical
// values and positions.
type BitReader struct {
	buf   []byte
	cache uint64 // upcoming bits, MSB-aligned; bits below nbits are zero
	nbits int    // valid bits in cache
	next  int    // bytes of buf consumed into the cache
}

// NewBitReader returns a reader over data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// refill tops the cache up to more than 56 valid bits (or to end of data).
// Away from the stream tail it merges one unaligned 8-byte load, masked
// down to the whole bytes that fit, preserving the invariant that bits
// below nbits are zero (ReadUE's CLZ fast path depends on it).
func (r *BitReader) refill() {
	if r.nbits <= 56 && r.next+8 <= len(r.buf) {
		k := (64 - r.nbits) >> 3 // whole bytes that fit the cache
		w := binary.BigEndian.Uint64(r.buf[r.next:]) &^ (1<<uint(64-8*k) - 1)
		r.cache |= w >> uint(r.nbits)
		r.nbits += 8 * k
		r.next += k
		return
	}
	for r.nbits <= 56 && r.next < len(r.buf) {
		r.cache |= uint64(r.buf[r.next]) << uint(56-r.nbits)
		r.nbits += 8
		r.next++
	}
}

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.nbits == 0 {
		r.refill()
		if r.nbits == 0 {
			return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.BitsRead())
		}
	}
	b := uint(r.cache >> 63)
	r.cache <<= 1
	r.nbits--
	return b, nil
}

// ReadBits returns the next n bits as an unsigned value. n outside [0, 64]
// is rejected with ErrBitstream without consuming anything; reading past
// the end consumes the remaining bits and returns ErrBitstream.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("%w: ReadBits count %d outside [0, 64]", ErrBitstream, n)
	}
	if n == 0 {
		return 0, nil
	}
	if r.nbits < n {
		r.refill()
	}
	if r.nbits >= n {
		v := r.cache >> uint(64-n)
		r.cache <<= uint(n) // n == 64 shifts everything out, per Go shift rules
		r.nbits -= n
		return v, nil
	}
	// Cache short even after refill: either fewer than n bits remain in the
	// stream, or n > 56 straddles a refill boundary.
	var v uint64
	for n > 0 {
		if r.nbits == 0 {
			r.refill()
			if r.nbits == 0 {
				return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.BitsRead())
			}
		}
		t := n
		if t > r.nbits {
			t = r.nbits
		}
		v = v<<uint(t) | r.cache>>uint(64-t)
		r.cache <<= uint(t)
		r.nbits -= t
		n -= t
	}
	return v, nil
}

// BitsRead returns the number of bits consumed so far.
func (r *BitReader) BitsRead() int { return r.next*8 - r.nbits }

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.BitsRead() }

// peek16 returns the next 16 bits zero-padded (without consuming) and how
// many of them are valid.
func (r *BitReader) peek16() (uint32, int) {
	if r.nbits < 16 {
		r.refill()
	}
	n := r.nbits
	if n > 16 {
		n = 16
	}
	return uint32(r.cache >> 48), n
}

// skip discards n cached bits; callers must have established n <= r.nbits.
func (r *BitReader) skip(n int) {
	r.cache <<= uint(n)
	r.nbits -= n
}

// WriteUE appends an unsigned Exp-Golomb code ue(v).
func (w *BitWriter) WriteUE(v uint32) {
	code := uint64(v) + 1
	n := bits.Len64(code) - 1
	if 2*n+1 <= 55 { // writeSmall's safe width given pend < 8
		w.writeSmall(code, 2*n+1) // n leading zeros + code's n+1 bits, code already minimal
		w.nbit += 2*n + 1
		return
	}
	w.WriteBits(0, n)
	w.WriteBits(code, n+1)
}

// ReadUE decodes an unsigned Exp-Golomb code ue(v).
func (r *BitReader) ReadUE() (uint32, error) {
	// Fast path: the whole code sits in the cache. The prefix length is the
	// CLZ of the cache; the zero low bits of a short cache cannot fake a
	// shorter prefix, and faking a longer one is caught by the n <= nbits
	// bound (which also implies lz <= 31, since n <= 64) — so refill only
	// when that bound fails.
	lz := bits.LeadingZeros64(r.cache)
	if n := 2*lz + 1; n <= r.nbits {
		v := r.cache>>uint(64-n) - 1
		r.cache <<= uint(n)
		r.nbits -= n
		return uint32(v), nil
	}
	r.refill()
	lz = bits.LeadingZeros64(r.cache)
	if lz <= 31 && 2*lz+1 <= r.nbits {
		v := r.cache>>uint(63-2*lz) - 1
		r.skip(2*lz + 1)
		return uint32(v), nil
	}
	return r.readUESlow()
}

// readUESlow is the scalar tail of ReadUE: prefixes longer than 31 zeros
// (overflow and error cases) and codes truncated by end-of-stream. It
// consumes exactly the bits the scalar reference implementation does.
func (r *BitReader) readUESlow() (uint32, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("%w: ue(v) prefix too long", ErrBitstream)
		}
	}
	if n == 0 {
		return 0, nil
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	v := (uint64(1)<<uint(n) | rest) - 1
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("%w: ue(v) %d overflows 32 bits", ErrBitstream, v)
	}
	return uint32(v), nil
}

// WriteSE appends a signed Exp-Golomb code se(v) using the spec mapping
// (positive values first: 1 -> 1, -1 -> 2, 2 -> 3, ...). The mapping
// covers [math.MinInt32+1, math.MaxInt32]; -2^31 itself has no ue(v)
// code (its mapped value 2^32 exceeds the 32-bit ue space).
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*int64(v) - 1)
	} else {
		u = uint32(-2 * int64(v))
	}
	w.WriteUE(u)
}

// ReadSE decodes a signed Exp-Golomb code se(v). The maximum ue code
// 2^32-1 maps to +2^31, which overflows int32 and is rejected.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		if u == math.MaxUint32 {
			return 0, fmt.Errorf("%w: se(v) 2^31 overflows", ErrBitstream)
		}
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}

package h264

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// Differential tests: the word-level BitReader/BitWriter against the
// retained scalar reference implementations. The fast path is only
// acceptable if it is bit-identical — same bytes out of the writer, same
// values and same positions out of the reader, including after errors.

// TestWriterDifferential drives both writers through identical random
// operation sequences and requires identical output bytes (aligned and
// trailing forms) at every step boundary.
func TestWriterDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := NewBitWriter()
		ref := &refBitWriter{}
		nops := 1 + rng.Intn(200)
		for i := 0; i < nops; i++ {
			switch rng.Intn(5) {
			case 0:
				b := uint(rng.Intn(2))
				w.WriteBit(b)
				ref.WriteBit(b)
			case 1:
				n := rng.Intn(65)
				v := rng.Uint64()
				if err := w.WriteBits(v, n); err != nil {
					t.Fatalf("seed %d op %d: WriteBits(%d): %v", seed, i, n, err)
				}
				ref.WriteBits(v, n)
			case 2:
				v := rng.Uint32()
				if rng.Intn(2) == 0 {
					v %= 64 // mostly short codes
				}
				w.WriteUE(v)
				ref.WriteUE(v)
			case 3:
				v := int32(rng.Uint32())
				if v == -1<<31 {
					v++ // outside WriteSE's documented domain
				}
				if rng.Intn(2) == 0 {
					v %= 64
				}
				w.WriteSE(v)
				ref.WriteSE(v)
			case 4:
				// Bytes must be safe mid-stream and must not perturb state.
				if !bytes.Equal(w.Bytes(false), ref.Bytes(false)) {
					t.Fatalf("seed %d op %d: mid-stream Bytes(false) diverged", seed, i)
				}
			}
			if w.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: Len %d vs ref %d", seed, i, w.Len(), ref.Len())
			}
		}
		if !bytes.Equal(w.Bytes(false), ref.Bytes(false)) {
			t.Fatalf("seed %d: Bytes(false) diverged\n  got  %x\n  want %x", seed, w.Bytes(false), ref.Bytes(false))
		}
		if !bytes.Equal(w.Bytes(true), ref.Bytes(true)) {
			t.Fatalf("seed %d: Bytes(true) diverged\n  got  %x\n  want %x", seed, w.Bytes(true), ref.Bytes(true))
		}
	}
}

// diffStep runs one decoded operation on both readers and compares value,
// error presence, and (on success) position.
func diffStep(t *testing.T, tag string, r *BitReader, ref *refBitReader, op byte) bool {
	t.Helper()
	var gv, wv uint64
	var gerr, werr error
	switch op & 3 {
	case 0:
		g, e := r.ReadBit()
		x, e2 := ref.ReadBit()
		gv, wv, gerr, werr = uint64(g), uint64(x), e, e2
	case 1:
		n := int(op>>2) & 63
		g, e := r.ReadBits(n)
		x, e2 := ref.ReadBits(n)
		gv, wv, gerr, werr = g, x, e, e2
	case 2:
		g, e := r.ReadUE()
		x, e2 := ref.ReadUE()
		gv, wv, gerr, werr = uint64(g), uint64(x), e, e2
	case 3:
		g, e := r.ReadSE()
		x, e2 := ref.ReadSE()
		gv, wv, gerr, werr = uint64(uint32(g)), uint64(uint32(x)), e, e2
	}
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: error mismatch: fast %v, ref %v", tag, gerr, werr)
	}
	if gerr == nil && gv != wv {
		t.Fatalf("%s: value %d, ref %d", tag, gv, wv)
	}
	if r.BitsRead() != ref.BitsRead() {
		t.Fatalf("%s: position %d, ref %d (err=%v)", tag, r.BitsRead(), ref.BitsRead(), gerr)
	}
	if r.Remaining() != ref.Remaining() {
		t.Fatalf("%s: remaining %d, ref %d", tag, r.Remaining(), ref.Remaining())
	}
	return gerr == nil
}

// TestReaderDifferential drives both readers over random data with random
// operation sequences, comparing every value and position — including the
// bit positions after failed reads (EOF consumption must match).
func TestReaderDifferential(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		if seed%3 == 0 {
			// Zero-heavy data exercises long Exp-Golomb prefixes.
			for i := range data {
				if rng.Intn(4) != 0 {
					data[i] = 0
				}
			}
		}
		r := NewBitReader(data)
		ref := &refBitReader{buf: data}
		for i := 0; i < 200; i++ {
			if !diffStep(t, "reader", r, ref, byte(rng.Intn(256))) {
				break
			}
		}
	}
}

// TestReaderDifferentialRealStream replays a genuine encoded stream's
// payloads through both readers using the slice-syntax operation mix.
func TestReaderDifferentialRealStream(t *testing.T) {
	stream, err := encodeTinyStream()
	if err != nil {
		t.Fatal(err)
	}
	units, err := SplitStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	for ui, u := range units {
		r := NewBitReader(u.Payload)
		ref := &refBitReader{buf: u.Payload}
		rng := rand.New(rand.NewSource(int64(ui)))
		for i := 0; i < 500; i++ {
			if !diffStep(t, "real", r, ref, byte(rng.Intn(256))) {
				break
			}
		}
	}
}

// FuzzBitsDiff fuzzes the fast reader against the reference over arbitrary
// operation and data bytes — the differential analogue of FuzzBitReader.
func FuzzBitsDiff(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{2, 2, 2, 2}, []byte{0x00, 0x00, 0x00, 0x00, 0x80})
	f.Add([]byte{3, 0xff, 1, 0x47}, []byte{0x12, 0x34, 0x56, 0x78, 0x9a})
	f.Fuzz(func(t *testing.T, ops, data []byte) {
		r := NewBitReader(data)
		ref := &refBitReader{buf: data}
		for _, op := range ops {
			if !diffStep(t, "fuzz", r, ref, op) {
				return
			}
		}
	})
}

// TestBitsNValidation is the table-driven boundary check of the satellite
// fix: ReadBits/WriteBits must reject n outside [0, 64] with ErrBitstream
// up front (consuming/writing nothing), and legal boundary widths must
// round-trip.
func TestBitsNValidation(t *testing.T) {
	cases := []struct {
		n  int
		ok bool
	}{
		{n: -1, ok: false},
		{n: 0, ok: true},
		{n: 1, ok: true},
		{n: 63, ok: true},
		{n: 64, ok: true},
		{n: 65, ok: false},
		{n: 1 << 20, ok: false},
	}
	for _, tc := range cases {
		w := NewBitWriter()
		err := w.WriteBits(^uint64(0), tc.n)
		if tc.ok {
			if err != nil {
				t.Errorf("WriteBits(n=%d): unexpected error %v", tc.n, err)
			}
			if w.Len() != tc.n {
				t.Errorf("WriteBits(n=%d): wrote %d bits", tc.n, w.Len())
			}
		} else {
			if !errors.Is(err, ErrBitstream) {
				t.Errorf("WriteBits(n=%d): error %v, want ErrBitstream", tc.n, err)
			}
			if w.Len() != 0 {
				t.Errorf("WriteBits(n=%d): invalid write consumed %d bits", tc.n, w.Len())
			}
		}

		data := make([]byte, 16)
		r := NewBitReader(data)
		_, rerr := r.ReadBits(tc.n)
		if tc.ok {
			if rerr != nil {
				t.Errorf("ReadBits(n=%d): unexpected error %v", tc.n, rerr)
			}
			if r.BitsRead() != tc.n {
				t.Errorf("ReadBits(n=%d): consumed %d bits", tc.n, r.BitsRead())
			}
		} else {
			if !errors.Is(rerr, ErrBitstream) {
				t.Errorf("ReadBits(n=%d): error %v, want ErrBitstream", tc.n, rerr)
			}
			if r.BitsRead() != 0 {
				t.Errorf("ReadBits(n=%d): invalid read consumed %d bits", tc.n, r.BitsRead())
			}
		}
	}

	// Round-trip at the 64-bit boundary across a byte-unaligned position.
	w := NewBitWriter()
	w.WriteBit(1)
	if err := w.WriteBits(0xdeadbeefcafef00d, 64); err != nil {
		t.Fatal(err)
	}
	r := NewBitReader(w.Bytes(true))
	if b, err := r.ReadBit(); err != nil || b != 1 {
		t.Fatalf("bit = %d, %v", b, err)
	}
	v, err := r.ReadBits(64)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("64-bit round trip = %x, %v", v, err)
	}
}

// TestReadBitsExactEOF pins the boundary behavior at end of stream: a read
// of exactly the remaining bits succeeds; one more bit fails with
// ErrBitstream after consuming everything (matching the reference reader).
func TestReadBitsExactEOF(t *testing.T) {
	data := []byte{0xAB, 0xCD, 0xEF}
	for take := 0; take <= 24; take++ {
		r := NewBitReader(data)
		ref := &refBitReader{buf: data}
		v, err := r.ReadBits(take)
		rv, rerr := ref.ReadBits(take)
		if err != nil || rerr != nil || v != rv {
			t.Fatalf("take %d: %x/%v vs ref %x/%v", take, v, err, rv, rerr)
		}
		if r.Remaining() != 24-take {
			t.Fatalf("take %d: remaining %d", take, r.Remaining())
		}
		// Reading one past the end must error and land at the end.
		if _, err := r.ReadBits(24 - take + 1); !errors.Is(err, ErrBitstream) {
			t.Fatalf("take %d: overread error %v", take, err)
		}
		if r.Remaining() != 0 || r.BitsRead() != 24 {
			t.Fatalf("take %d: after overread pos %d rem %d", take, r.BitsRead(), r.Remaining())
		}
	}
}

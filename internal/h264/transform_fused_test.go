package h264

import (
	"math/rand"
	"testing"
)

// The fused scan-order kernels must be bit-identical to the composed
// public paths at every QP. These tests sweep all 52 QPs with random
// residuals/levels, including magnitudes that exercise int32 wrapping in
// the baked V<<shift dequant tables.

func TestTransformQuantizeScanMatchesComposed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for qp := 0; qp <= 51; qp++ {
		for trial := 0; trial < 20; trial++ {
			var res Block4
			for i := range res {
				switch trial % 3 {
				case 0:
					res[i] = int32(rng.Intn(511) - 255) // pixel-range residual
				case 1:
					res[i] = int32(rng.Intn(7) - 3) // near-zero
				default:
					res[i] = int32(rng.Uint32()>>8) - 1<<23 // stress magnitudes
				}
			}
			want, err := TransformQuantize(res, qp)
			if err != nil {
				t.Fatal(err)
			}
			wantScan := want.ZigZag()
			var scan [16]int32
			nz, err := transformQuantizeScan(&res, qp, &scan)
			if err != nil {
				t.Fatal(err)
			}
			if scan != wantScan {
				t.Fatalf("qp %d: fused scan %v != composed %v", qp, scan, wantScan)
			}
			if nz != want.NonZeroCount() {
				t.Fatalf("qp %d: nz %d != %d", qp, nz, want.NonZeroCount())
			}
		}
	}
	if _, err := transformQuantizeScan(&Block4{}, 52, &[16]int32{}); err == nil {
		t.Fatal("expected QP range error")
	}
}

func TestIQITScanMatchesComposed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for qp := 0; qp <= 51; qp++ {
		for trial := 0; trial < 20; trial++ {
			var scan [16]int32
			for i := range scan {
				if rng.Intn(3) == 0 {
					scan[i] = int32(rng.Intn(41) - 20)
				}
			}
			if trial == 0 {
				// Large levels: wrapping multiplies must match exactly.
				scan[0] = 1 << 28
				scan[5] = -(1 << 27)
			}
			want, err := IQIT(FromZigZag(scan), qp)
			if err != nil {
				t.Fatal(err)
			}
			var got Block4
			if err := iqitScanInto(&scan, qp, &got); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("qp %d: fused IQIT %v != composed %v", qp, got, want)
			}
		}
	}
	if err := iqitScanInto(&[16]int32{}, -1, &Block4{}); err == nil {
		t.Fatal("expected QP range error")
	}
}

// TestCoeffTokenLUTMatchesWalk decodes every coeff_token code through both
// the 16-bit LUT path and the bit-at-a-time walk, over varied trailing
// padding, and requires identical results and positions.
func TestCoeffTokenLUTMatchesWalk(t *testing.T) {
	for tc := 0; tc <= 16; tc++ {
		for t1 := 0; t1 <= 3 && t1 <= tc; t1++ {
			c := coeffTokenNC0[tc][t1]
			if c.length == 0 && tc+t1 > 0 {
				continue
			}
			for pad := uint64(0); pad < 4; pad++ {
				w := NewBitWriter()
				w.WriteBits(uint64(c.bits), c.length)
				w.WriteBits(pad, 16) // enough tail for the 16-bit peek
				data := w.Bytes(true)

				fast := NewBitReader(data)
				gtc, gt1, err := readCoeffToken(fast)
				if err != nil {
					t.Fatalf("tc %d t1 %d: %v", tc, t1, err)
				}
				slow := NewBitReader(data)
				wtc, wt1, err := readCoeffTokenSlow(slow)
				if err != nil {
					t.Fatalf("tc %d t1 %d slow: %v", tc, t1, err)
				}
				if gtc != wtc || gt1 != wt1 || gtc != tc || gt1 != t1 {
					t.Fatalf("tc %d t1 %d: LUT (%d,%d), walk (%d,%d)", tc, t1, gtc, gt1, wtc, wt1)
				}
				if fast.BitsRead() != slow.BitsRead() {
					t.Fatalf("tc %d t1 %d: LUT consumed %d, walk %d", tc, t1, fast.BitsRead(), slow.BitsRead())
				}
			}
		}
	}
}

// TestCoeffTokenTruncated pins the end-of-stream behavior: with fewer than
// 16 bits available the decoder falls back to the walk, and both paths
// agree on success or failure.
func TestCoeffTokenTruncated(t *testing.T) {
	// TC=0 is the single bit '1': decodable from a 1-byte stream.
	r := NewBitReader([]byte{0x80})
	tc, t1, err := readCoeffToken(r)
	if err != nil || tc != 0 || t1 != 0 {
		t.Fatalf("short TC=0 decode: (%d,%d), %v", tc, t1, err)
	}
	// All-zero short stream: prefix runs off the end; must error like the walk.
	r = NewBitReader([]byte{0x00})
	if _, _, err := readCoeffToken(r); err == nil {
		t.Fatal("expected error on truncated all-zero token")
	}
	s := NewBitReader([]byte{0x00})
	if _, _, err := readCoeffTokenSlow(s); err == nil {
		t.Fatal("walk should also error")
	}
	if r.BitsRead() != s.BitsRead() {
		t.Fatalf("truncated consumption: fast %d, walk %d", r.BitsRead(), s.BitsRead())
	}
}

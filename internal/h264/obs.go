package h264

import "affectedge/internal/obs"

// mtr holds this package's metric handles. All handles are nil until
// WireMetrics routes them into a registry, and every obs method is
// nil-safe, so un-wired decoding pays only an inlined nil check per event.
var mtr struct {
	// Input Selector.
	nalSeen      *obs.Counter   // NAL units entering the selector
	nalDeleted   *obs.Counter   // units the selector dropped
	bytesSeen    *obs.Counter   // on-wire bytes entering the selector
	bytesSkipped *obs.Counter   // bytes never fetched past the pre-store buffer
	nalSize      *obs.Histogram // on-wire unit sizes (S_th sits in this range)
	deletedBy    [NumModes]*obs.Counter

	// Decoder core.
	framesOut       *obs.Counter // frames emitted (including concealment)
	framesConcealed *obs.Counter // frames repeated over deleted/missing units
	deblockOn       *obs.Counter // frames filtered by the DF
	deblockOff      *obs.Counter // frames decoded with the DF deactivated
	deblockSwitches *obs.Counter // DF knob on<->off transitions

	// Front-end buffers.
	prestoreHighWater *obs.Gauge // peak pre-store occupancy in bytes
	prestoreRewinds   *obs.Counter
	circularStalls    *obs.Counter
	pipelineRuns      *obs.Counter
}

// WireMetrics routes the package's counters into scope s (conventionally
// reg.Scope("h264")); nil restores the no-op state. Call it before any
// decoding starts — wiring is not synchronized with in-flight pipelines.
func WireMetrics(s *obs.Scope) {
	mtr.nalSeen = s.Counter("selector.units_in")
	mtr.nalDeleted = s.Counter("selector.units_deleted")
	mtr.bytesSeen = s.Counter("selector.bytes_in")
	mtr.bytesSkipped = s.Counter("selector.bytes_skipped")
	mtr.nalSize = s.Histogram("selector.unit_bytes", obs.SizeBuckets())
	for m := 0; m < NumModes; m++ {
		mtr.deletedBy[m] = s.Counter("selector.units_deleted." + DecoderMode(m).String())
	}
	mtr.framesOut = s.Counter("decoder.frames_out")
	mtr.framesConcealed = s.Counter("decoder.frames_concealed")
	mtr.deblockOn = s.Counter("deblock.frames_on")
	mtr.deblockOff = s.Counter("deblock.frames_off")
	mtr.deblockSwitches = s.Counter("deblock.switches")
	mtr.prestoreHighWater = s.Gauge("prestore.high_water_bytes")
	mtr.prestoreRewinds = s.Counter("prestore.rewinds")
	mtr.circularStalls = s.Counter("circular.stalls")
	mtr.pipelineRuns = s.Counter("pipeline.runs")
}

package h264

import (
	"testing"
)

func gradientFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := NewFrame(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			f.Y[y*32+x] = uint8(x*4 + y)
		}
	}
	return f
}

func TestIntraVertical(t *testing.T) {
	f := gradientFrame(t)
	pred, err := PredictIntra4(f, 8, 8, IntraVertical)
	if err != nil {
		t.Fatal(err)
	}
	// Each column replicates the sample above the block: f(8+c, 7).
	for c := 0; c < 4; c++ {
		want := int32(f.YAt(8+c, 7))
		for r := 0; r < 4; r++ {
			if pred[r*4+c] != want {
				t.Fatalf("vertical pred[%d][%d] = %d, want %d", r, c, pred[r*4+c], want)
			}
		}
	}
}

func TestIntraHorizontal(t *testing.T) {
	f := gradientFrame(t)
	pred, err := PredictIntra4(f, 8, 8, IntraHorizontal)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		want := int32(f.YAt(7, 8+r))
		for c := 0; c < 4; c++ {
			if pred[r*4+c] != want {
				t.Fatalf("horizontal pred[%d][%d] = %d, want %d", r, c, pred[r*4+c], want)
			}
		}
	}
}

func TestIntraDC(t *testing.T) {
	f := gradientFrame(t)
	pred, err := PredictIntra4(f, 8, 8, IntraDC)
	if err != nil {
		t.Fatal(err)
	}
	var sum int32
	for c := 0; c < 4; c++ {
		sum += int32(f.YAt(8+c, 7))
	}
	for r := 0; r < 4; r++ {
		sum += int32(f.YAt(7, 8+r))
	}
	want := (sum + 4) / 8
	for i := range pred {
		if pred[i] != want {
			t.Fatalf("DC pred[%d] = %d, want %d", i, pred[i], want)
		}
	}
}

func TestIntraEdgeFallbacks(t *testing.T) {
	f := gradientFrame(t)
	// Top-left corner: no neighbors at all -> 128 everywhere.
	for _, mode := range []IntraMode{IntraVertical, IntraHorizontal, IntraDC} {
		pred, err := PredictIntra4(f, 0, 0, mode)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range pred {
			if v != 128 {
				t.Fatalf("%v corner pred[%d] = %d, want 128", mode, i, v)
			}
		}
	}
	// Top row: DC uses the left edge only.
	pred, err := PredictIntra4(f, 8, 0, IntraDC)
	if err != nil {
		t.Fatal(err)
	}
	var sum int32
	for r := 0; r < 4; r++ {
		sum += int32(f.YAt(7, r))
	}
	want := (sum + 2) / 4
	if pred[0] != want {
		t.Errorf("top-row DC = %d, want %d", pred[0], want)
	}
	if _, err := PredictIntra4(f, 8, 8, IntraMode(7)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestMotionSearchRecoversTranslation(t *testing.T) {
	// A frame translated by a known vector must be found by the search.
	cfg := DefaultVideoConfig(1)
	cfg.Width, cfg.Height = 64, 64
	frames, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := frames[0]
	for _, want := range []MV{{2, 1}, {-3, 2}, {0, -2}} {
		cur, err := NewFrame(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				cur.Y[y*64+x] = ref.YAt(x+want.X, y+want.Y)
			}
		}
		// Search on an interior macroblock (away from edge extension).
		got := searchMV(cur, ref, 1, 1, 4)
		if got != want {
			t.Errorf("searchMV found %+v, want %+v", got, want)
		}
	}
}

func TestPredictInterEdgeExtension(t *testing.T) {
	f := gradientFrame(t)
	// MV pointing far outside the frame must clamp, not crash.
	pred := PredictInter4(f, 0, 0, MV{-100, -100})
	for _, v := range pred {
		if v != int32(f.YAt(0, 0)) {
			t.Fatalf("edge extension wrong: %d", v)
		}
	}
}

func TestReconstructBlockClamps(t *testing.T) {
	f, err := NewFrame(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	var pred, res Block4
	for i := range pred {
		pred[i] = 250
		res[i] = 100 // sum 350 -> clamps to 255
	}
	reconstructBlock(f, 0, 0, pred, res)
	if f.YAt(0, 0) != 255 {
		t.Errorf("overflow not clamped: %d", f.YAt(0, 0))
	}
	for i := range res {
		res[i] = -300 // sum -50 -> clamps to 0
	}
	reconstructBlock(f, 4, 4, pred, res)
	if f.YAt(4, 4) != 0 {
		t.Errorf("underflow not clamped: %d", f.YAt(4, 4))
	}
}

package h264

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"affectedge/internal/simd"
	"affectedge/internal/stream"
)

// testStream encodes the calibration sequence once per test binary.
var testStreamOnce struct {
	sync.Once
	data []byte
}

func calibrationStream(t testing.TB) []byte {
	testStreamOnce.Do(func() {
		src, err := GenerateVideo(CalibrationVideoConfig(16))
		if err != nil {
			panic(err)
		}
		enc, err := NewEncoder(CalibrationEncoderConfig())
		if err != nil {
			panic(err)
		}
		data, _, err := enc.EncodeSequence(src)
		if err != nil {
			panic(err)
		}
		testStreamOnce.data = data
	})
	return testStreamOnce.data
}

func streamFramesEqual(t *testing.T, want, got []*Frame, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d streamed frames, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Width != g.Width || w.Height != g.Height ||
			!bytes.Equal(w.Y, g.Y) || !bytes.Equal(w.Cb, g.Cb) || !bytes.Equal(w.Cr, g.Cr) {
			t.Fatalf("%s: frame %d differs from batch decode", label, i)
		}
	}
}

// streamDecode pushes data through a StreamDecoder in the given chunk
// sizes, draining the FIFO between feeds (the single-threaded drain-retry
// shape the fleet probe uses), and returns the decoded frames.
func streamDecode(t testing.TB, sd *StreamDecoder, data []byte, chunk int) []*Frame {
	t.Helper()
	var frames []*Frame
	drain := func() {
		for {
			f, ok, err := sd.Frames().TryPop()
			if err != nil || !ok {
				return
			}
			frames = append(frames, f)
		}
	}
	for at := 0; at < len(data); {
		end := at + chunk
		if end > len(data) {
			end = len(data)
		}
		n, err := sd.Feed(data[at:end])
		if errors.Is(err, stream.ErrBackpressure) {
			drain()
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		at += n
	}
	for {
		err := sd.Finish()
		if errors.Is(err, stream.ErrBackpressure) {
			drain()
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	drain()
	return frames
}

// TestStreamDecoderMatchesBatch requires the progressive decode of the
// calibration bitstream to be bit-identical to DecodeStream at every chunk
// size, with SIMD on and off, and the carry buffer bounded by the largest
// NAL unit plus one chunk.
func TestStreamDecoderMatchesBatch(t *testing.T) {
	data := calibrationStream(t)
	units, err := SplitStream(data)
	if err != nil {
		t.Fatal(err)
	}
	maxNAL := 0
	for _, u := range units {
		if s := u.SizeBytes() + len(startCode); s > maxNAL {
			maxNAL = s
		}
	}
	defer simd.SetEnabled(simd.Available())
	for _, on := range []bool{true, false} {
		simd.SetEnabled(on && simd.Available())
		batch := NewDecoder()
		want, err := batch.DecodeStream(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 3, 17, 1000, len(data)} {
			sd, err := NewStreamDecoder(NewDecoder(), 4)
			if err != nil {
				t.Fatal(err)
			}
			got := streamDecode(t, sd, data, chunk)
			streamFramesEqual(t, want, got, "stream decode")
			// The carry legitimately holds one complete unit plus the next
			// unit's start code before the copy-down trims it.
			if limit := maxNAL + len(startCode) + chunk; sd.PeakCarry() > limit {
				t.Fatalf("chunk %d: peak carry %d exceeds maxNAL+code+chunk = %d", chunk, sd.PeakCarry(), limit)
			}
		}
	}
}

// TestStreamDecoderReuse runs the same stream twice through one
// StreamDecoder via Reset, expecting identical output both passes.
func TestStreamDecoderReuse(t *testing.T) {
	data := calibrationStream(t)
	want, err := NewDecoder().DecodeStream(data)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(NewDecoder(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got := streamDecode(t, sd, data, 512)
		streamFramesEqual(t, want, got, "reuse pass")
		sd.Reset()
	}
}

// TestStreamDecoderSPSC runs the intended pipeline shape — one feeding
// goroutine, one consumer blocking on the FIFO — and checks the frames
// arrive intact and in order.
func TestStreamDecoderSPSC(t *testing.T) {
	data := calibrationStream(t)
	want, err := NewDecoder().DecodeStream(data)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(NewDecoder(), 2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for at := 0; at < len(data); {
			end := at + 64
			if end > len(data) {
				end = len(data)
			}
			n, err := sd.Feed(data[at:end])
			if err != nil && !errors.Is(err, stream.ErrBackpressure) {
				t.Error(err)
				sd.Close()
				return
			}
			at += n
		}
		for errors.Is(sd.Finish(), stream.ErrBackpressure) {
		}
	}()
	var got []*Frame
	for {
		f, err := sd.Frames().Pop()
		if err != nil {
			if !errors.Is(err, stream.ErrClosed) {
				t.Fatal(err)
			}
			break
		}
		got = append(got, f)
	}
	streamFramesEqual(t, want, got, "spsc")
}

// TestStreamDecoderErrors covers the failure and lifecycle paths.
func TestStreamDecoderErrors(t *testing.T) {
	if _, err := NewStreamDecoder(nil, 4); err == nil {
		t.Fatal("nil decoder accepted")
	}
	if _, err := NewStreamDecoder(NewDecoder(), 0); err == nil {
		t.Fatal("zero FIFO capacity accepted")
	}

	// All-garbage stream: same ErrBitstream as SplitStream, at Finish.
	sd, _ := NewStreamDecoder(NewDecoder(), 4)
	if _, err := sd.Feed([]byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := sd.Finish(); !errors.Is(err, ErrBitstream) {
		t.Fatalf("garbage Finish = %v, want ErrBitstream", err)
	}
	if _, err := sd.Feed([]byte{1}); !errors.Is(err, ErrBitstream) {
		t.Fatalf("Feed after fatal error = %v, want the sticky error", err)
	}

	// Empty stream: no frames, no error — as DecodeStream(nil).
	sd, _ = NewStreamDecoder(NewDecoder(), 4)
	if err := sd.Finish(); err != nil {
		t.Fatalf("empty Finish = %v", err)
	}
	if _, err := sd.Feed([]byte{0}); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("Feed after Finish = %v, want ErrClosed", err)
	}

	// forbidden_zero_bit mid-stream is fatal and closes the FIFO.
	sd, _ = NewStreamDecoder(NewDecoder(), 4)
	bad := []byte{0, 0, 1, 0x80, 7, 0, 0, 1, 0x80, 7}
	if _, err := sd.Feed(bad); !errors.Is(err, ErrBitstream) {
		t.Fatalf("forbidden bit = %v, want ErrBitstream", err)
	}
	if !sd.Frames().Closed() {
		t.Fatal("FIFO not closed after fatal error")
	}

	// Close drops pending work and is idempotent.
	sd, _ = NewStreamDecoder(NewDecoder(), 4)
	sd.Close()
	sd.Close()
	if _, err := sd.Feed([]byte{0}); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("Feed after Close = %v, want ErrClosed", err)
	}
}

// TestStreamDecoderBackpressure forces every frame through a capacity-1
// FIFO and checks nothing is lost, reordered, or consumed while refused.
func TestStreamDecoderBackpressure(t *testing.T) {
	data := calibrationStream(t)
	want, err := NewDecoder().DecodeStream(data)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewStreamDecoder(NewDecoder(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Frame
	at := 0
	for at < len(data) {
		end := at + 4096
		if end > len(data) {
			end = len(data)
		}
		n, err := sd.Feed(data[at:end])
		if errors.Is(err, stream.ErrBackpressure) {
			if n != 0 {
				t.Fatalf("refused Feed consumed %d bytes", n)
			}
			f, ok, perr := sd.Frames().TryPop()
			if perr != nil || !ok {
				t.Fatalf("backpressure with undrainable FIFO (%v, %v)", ok, perr)
			}
			got = append(got, f)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		at += n
	}
	finishes := 0
	for {
		err := sd.Finish()
		if err == nil {
			break
		}
		if !errors.Is(err, stream.ErrBackpressure) {
			t.Fatal(err)
		}
		finishes++
		if f, ok, _ := sd.Frames().TryPop(); ok {
			got = append(got, f)
		}
	}
	for {
		f, ok, _ := sd.Frames().TryPop()
		if !ok {
			break
		}
		got = append(got, f)
	}
	streamFramesEqual(t, want, got, "backpressure")
	if finishes == 0 {
		t.Log("note: Finish never reported backpressure at capacity 1")
	}
}

// FuzzChunkSplitDiff mutates one byte of the calibration bitstream,
// truncates it, then decodes it progressively at fuzzer-chosen chunk
// splits: whenever the batch decoder accepts the stream the progressive
// result must be frame-for-frame identical, and batch failure must imply
// progressive failure (and vice versa), at both SIMD settings.
func FuzzChunkSplitDiff(f *testing.F) {
	f.Add(0, byte(0), 1 << 20, []byte{64})
	f.Add(100, byte(0x80), 512, []byte{1, 3, 250})
	f.Add(3, byte(1), 40, []byte{1})
	f.Add(9999, byte(255), 4096, []byte{7, 255, 0, 2})
	f.Fuzz(func(t *testing.T, pos int, val byte, cut int, splits []byte) {
		base := calibrationStream(t)
		if cut < 0 {
			cut = 0
		}
		if cut > len(base) {
			cut = len(base)
		}
		data := append([]byte(nil), base[:cut]...)
		if len(data) > 0 && pos >= 0 {
			data[pos%len(data)] = val
		}
		defer simd.SetEnabled(simd.Available())
		for _, on := range []bool{true, false} {
			simd.SetEnabled(on && simd.Available())
			want, batchErr := NewDecoder().DecodeStream(data)
			sd, err := NewStreamDecoder(NewDecoder(), 3)
			if err != nil {
				t.Fatal(err)
			}
			var got []*Frame
			var streamErr error
			drain := func() {
				for {
					fr, ok, err := sd.Frames().TryPop()
					if err != nil || !ok {
						return
					}
					got = append(got, fr)
				}
			}
			at, si := 0, 0
			for at < len(data) && streamErr == nil {
				chunk := 1
				if len(splits) > 0 {
					if chunk = int(splits[si%len(splits)]); chunk == 0 {
						chunk = 1
					}
					si++
				}
				if at+chunk > len(data) {
					chunk = len(data) - at
				}
				n, err := sd.Feed(data[at : at+chunk])
				if errors.Is(err, stream.ErrBackpressure) {
					drain()
					continue
				}
				if err != nil {
					streamErr = err
					break
				}
				at += n
			}
			for streamErr == nil {
				err := sd.Finish()
				if errors.Is(err, stream.ErrBackpressure) {
					drain()
					continue
				}
				streamErr = err
				break
			}
			drain()
			if (batchErr == nil) != (streamErr == nil) {
				t.Fatalf("batch err = %v, progressive err = %v", batchErr, streamErr)
			}
			if batchErr == nil {
				streamFramesEqual(t, want, got, "fuzz")
			}
		}
	})
}

// BenchmarkStreamDecode measures progressive decode fed in 4 KiB chunks
// with pooled frames returned after each drain: steady state must be
// allocation-free with the carry bounded by one NAL unit plus one chunk.
func BenchmarkStreamDecode(b *testing.B) {
	data := calibrationStream(b)
	pool := NewFramePool()
	dec := NewDecoder()
	dec.SetPool(pool)
	sd, err := NewStreamDecoder(dec, 4)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 4096
	run := func() {
		for at := 0; at < len(data); {
			end := at + chunk
			if end > len(data) {
				end = len(data)
			}
			n, err := sd.Feed(data[at:end])
			if errors.Is(err, stream.ErrBackpressure) {
				for {
					f, ok, _ := sd.Frames().TryPop()
					if !ok {
						break
					}
					pool.Put(f)
				}
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			at += n
		}
		for {
			err := sd.Finish()
			if err == nil {
				break
			}
			if !errors.Is(err, stream.ErrBackpressure) {
				b.Fatal(err)
			}
			if f, ok, _ := sd.Frames().TryPop(); ok {
				pool.Put(f)
			}
		}
		for {
			f, ok, _ := sd.Frames().TryPop()
			if !ok {
				break
			}
			pool.Put(f)
		}
		sd.Reset()
	}
	run() // warm pools and carry capacity outside the timed region
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	if sd.PeakCarry() > 1<<20 {
		b.Fatalf("peak carry %d unexpectedly large", sd.PeakCarry())
	}
}

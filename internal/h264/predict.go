package h264

import (
	"fmt"

	"affectedge/internal/simd"
)

// IntraMode is a luma 4x4 intra prediction mode. The model implements the
// three most common spec modes.
type IntraMode int

// Intra 4x4 prediction modes (spec numbering).
const (
	IntraVertical   IntraMode = 0
	IntraHorizontal IntraMode = 1
	IntraDC         IntraMode = 2
)

// String returns the mode name.
func (m IntraMode) String() string {
	switch m {
	case IntraVertical:
		return "vertical"
	case IntraHorizontal:
		return "horizontal"
	case IntraDC:
		return "dc"
	}
	return fmt.Sprintf("intra(%d)", int(m))
}

// PredictIntra4 fills a 4x4 luma prediction for the block whose top-left
// corner is (bx, by) in frame f, from already-reconstructed neighbors.
// Unavailable neighbors (frame edge) fall back per spec: DC averages the
// available sides or uses 128; directional modes replicate 128.
func PredictIntra4(f *Frame, bx, by int, mode IntraMode) (Block4, error) {
	var pred Block4
	hasTop := by > 0
	hasLeft := bx > 0
	switch mode {
	case IntraVertical:
		for c := 0; c < 4; c++ {
			var v uint8 = 128
			if hasTop {
				v = f.YAt(bx+c, by-1)
			}
			for r := 0; r < 4; r++ {
				pred[r*4+c] = int32(v)
			}
		}
	case IntraHorizontal:
		for r := 0; r < 4; r++ {
			var v uint8 = 128
			if hasLeft {
				v = f.YAt(bx-1, by+r)
			}
			for c := 0; c < 4; c++ {
				pred[r*4+c] = int32(v)
			}
		}
	case IntraDC:
		var sum, n int32
		if hasTop {
			for c := 0; c < 4; c++ {
				sum += int32(f.YAt(bx+c, by-1))
			}
			n += 4
		}
		if hasLeft {
			for r := 0; r < 4; r++ {
				sum += int32(f.YAt(bx-1, by+r))
			}
			n += 4
		}
		dc := int32(128)
		if n > 0 {
			dc = (sum + n/2) / n
		}
		for i := range pred {
			pred[i] = dc
		}
	default:
		return pred, fmt.Errorf("h264: unknown intra mode %d", int(mode))
	}
	return pred, nil
}

// MV is a full-pel motion vector.
type MV struct{ X, Y int }

// PredictInter4 fills a 4x4 luma prediction for block (bx, by) by motion
// compensation from the reference frame at displacement mv (full-pel, with
// edge extension).
func PredictInter4(ref *Frame, bx, by int, mv MV) Block4 {
	var pred Block4
	x0, y0 := bx+mv.X, by+mv.Y
	if x0 >= 0 && y0 >= 0 && x0+4 <= ref.Width && y0+4 <= ref.Height {
		// Interior block: every sample is in-frame, so YAt's edge clamping
		// is the identity and the rows index the plane directly.
		w := ref.Width
		for r := 0; r < 4; r++ {
			row := ref.Y[(y0+r)*w+x0:]
			pred[r*4] = int32(row[0])
			pred[r*4+1] = int32(row[1])
			pred[r*4+2] = int32(row[2])
			pred[r*4+3] = int32(row[3])
		}
		return pred
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pred[r*4+c] = int32(ref.YAt(bx+c+mv.X, by+r+mv.Y))
		}
	}
	return pred
}

// blockResidual returns original minus prediction for block (bx, by).
func blockResidual(orig *Frame, bx, by int, pred Block4) Block4 {
	var res Block4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			res[r*4+c] = int32(orig.YAt(bx+c, by+r)) - pred[r*4+c]
		}
	}
	return res
}

// reconstructBlock writes clamp(pred + residual) into frame f at (bx, by).
func reconstructBlock(f *Frame, bx, by int, pred, residual Block4) {
	if bx >= 0 && by >= 0 && bx+4 <= f.Width && by+4 <= f.Height {
		w := f.Width
		for r := 0; r < 4; r++ {
			row := f.Y[(by+r)*w+bx:]
			row[0] = clampU8(pred[r*4] + residual[r*4])
			row[1] = clampU8(pred[r*4+1] + residual[r*4+1])
			row[2] = clampU8(pred[r*4+2] + residual[r*4+2])
			row[3] = clampU8(pred[r*4+3] + residual[r*4+3])
		}
		return
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			f.SetY(bx+c, by+r, clampU8(pred[r*4+c]+residual[r*4+c]))
		}
	}
}

// sadBlock returns the sum of absolute differences between the original
// 4x4 block at (bx, by) and the reference block displaced by mv.
func sadBlock(orig, ref *Frame, bx, by int, mv MV) int {
	x0, y0 := bx+mv.X, by+mv.Y
	if bx >= 0 && by >= 0 && bx+4 <= orig.Width && by+4 <= orig.Height &&
		x0 >= 0 && y0 >= 0 && x0+4 <= ref.Width && y0+4 <= ref.Height {
		// Interior case (the bulk of motion search): every sample is
		// in-frame, so the packed absolute-difference kernel reads the
		// plane rows directly. Integer sums are exact in any order.
		return int(simd.SAD4x4(orig.Y[by*orig.Width+bx:], orig.Width,
			ref.Y[y0*ref.Width+x0:], ref.Width))
	}
	var sad int
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			d := int(orig.YAt(bx+c, by+r)) - int(ref.YAt(bx+c+mv.X, by+r+mv.Y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// searchMV finds the best full-pel motion vector for the 16x16 macroblock
// at (mbx, mby) within +-window, by 16x16 SAD over the luma plane.
func searchMV(orig, ref *Frame, mbx, mby, window int) MV {
	best := MV{}
	bestSAD := 1 << 30
	for dy := -window; dy <= window; dy++ {
		for dx := -window; dx <= window; dx++ {
			var sad int
			for r := 0; r < 16; r += 4 {
				for c := 0; c < 16; c += 4 {
					sad += sadBlock(orig, ref, mbx*16+c, mby*16+r, MV{dx, dy})
				}
				if sad >= bestSAD {
					break
				}
			}
			if sad < bestSAD {
				bestSAD = sad
				best = MV{dx, dy}
			}
		}
	}
	return best
}

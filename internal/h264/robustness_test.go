package h264

import (
	"math/rand"
	"testing"
)

// The decoder must reject corrupted input with an error — never panic,
// never hang — because the Input Selector operates on untrusted streams.

func robustStream(t *testing.T) []byte {
	t.Helper()
	cfg := DefaultVideoConfig(6)
	cfg.Width, cfg.Height = 48, 48
	src, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(EncoderConfig{
		Width: 48, Height: 48, QP: 30, IntraPeriod: 3, BFrames: 1, SearchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// decodeSafely runs the decoder, converting panics into test failures.
func decodeSafely(t *testing.T, stream []byte) (ok bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("decoder panicked: %v", r)
			ok = false
		}
	}()
	_, err := NewDecoder().DecodeStream(stream)
	return err == nil
}

func TestDecodeTruncatedStreams(t *testing.T) {
	stream := robustStream(t)
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		cut := stream[:int(float64(len(stream))*frac)]
		decodeSafely(t, cut) // error is fine, panic is not
	}
}

func TestDecodeBitFlippedStreams(t *testing.T) {
	stream := robustStream(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		corrupt := make([]byte, len(stream))
		copy(corrupt, stream)
		// Flip 1-4 random bits.
		for k := 0; k <= rng.Intn(4); k++ {
			pos := rng.Intn(len(corrupt))
			corrupt[pos] ^= 1 << uint(rng.Intn(8))
		}
		decodeSafely(t, corrupt)
	}
}

func TestDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		garbage := make([]byte, 64+rng.Intn(512))
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		decodeSafely(t, garbage)
	}
	// Valid framing, garbage payloads.
	for trial := 0; trial < 20; trial++ {
		payload := make([]byte, 16+rng.Intn(64))
		for i := range payload {
			payload[i] = byte(rng.Intn(256))
		}
		payload[len(payload)-1] |= 0x80
		stream, err := MarshalStream([]NAL{
			{Type: NALSPS, RefIDC: 3, Payload: payload},
			{Type: NALSliceIDR, RefIDC: 3, Payload: payload},
		})
		if err != nil {
			t.Fatal(err)
		}
		decodeSafely(t, stream)
	}
}

func TestPipelineOnTruncatedStream(t *testing.T) {
	stream := robustStream(t)
	cut := stream[:len(stream)/2]
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("pipeline panicked: %v", r)
		}
	}()
	// Either outcome (partial frames or an error) is acceptable.
	if res, err := DecodePipeline(cut, ModeCombined); err == nil && res == nil {
		t.Error("nil result without error")
	}
}

func TestRateDistortionSweep(t *testing.T) {
	cfg := DefaultVideoConfig(8)
	cfg.Width, cfg.Height = 64, 48
	src, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := EncoderConfig{Width: 64, Height: 48, QP: 30, IntraPeriod: 4, BFrames: 1, SearchWindow: 2}
	points, err := RateDistortionSweep(src, base, []int{20, 30, 40}, DefaultEnergyModel(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Monotone: higher QP -> lower rate and lower (or equal) PSNR.
	for i := 1; i < len(points); i++ {
		if points[i].BitsPerSec >= points[i-1].BitsPerSec {
			t.Errorf("rate not decreasing: QP%d %.0f >= QP%d %.0f",
				points[i].QP, points[i].BitsPerSec, points[i-1].QP, points[i-1].BitsPerSec)
		}
		if points[i].PSNR > points[i-1].PSNR+0.5 {
			t.Errorf("PSNR increasing with QP: %f > %f", points[i].PSNR, points[i-1].PSNR)
		}
	}
	// More small (deletable) units at higher QP.
	if points[2].SmallUnits < points[0].SmallUnits {
		t.Errorf("QP40 has fewer small units (%d) than QP20 (%d)",
			points[2].SmallUnits, points[0].SmallUnits)
	}
	if _, err := RateDistortionSweep(nil, base, []int{30}, DefaultEnergyModel(), 24); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := RateDistortionSweep(src, base, nil, DefaultEnergyModel(), 24); err == nil {
		t.Error("empty QP list accepted")
	}
}

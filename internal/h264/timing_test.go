package h264

import (
	"testing"
)

func decodeForTiming(t *testing.T, mode DecoderMode) Activity {
	t.Helper()
	src, err := GenerateVideo(CalibrationVideoConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(CalibrationEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodePipeline(stream, mode)
	if err != nil {
		t.Fatal(err)
	}
	return res.Activity
}

func TestTimingRealTimeAtPaperClock(t *testing.T) {
	// QCIF at 24 fps must be comfortably real-time at 28 MHz — that is
	// the design point of the paper's silicon.
	act := decodeForTiming(t, ModeStandard)
	model := DefaultCycleModel()
	rep, err := model.Timing(act, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RealTime {
		t.Errorf("standard mode not real-time: needs %.1f MHz", rep.MinClockHz/1e6)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization %.2f out of range", rep.Utilization)
	}
	if rep.CyclesPerFrame <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestTimingModesNeedFewerCycles(t *testing.T) {
	model := DefaultCycleModel()
	std := decodeForTiming(t, ModeStandard)
	cmb := decodeForTiming(t, ModeCombined)
	cStd := model.Cycles(std)
	cCmb := model.Cycles(cmb)
	if cCmb >= cStd {
		t.Errorf("combined mode cycles %.0f not below standard %.0f", cCmb, cStd)
	}
}

func TestDVFSExtension(t *testing.T) {
	model := DefaultCycleModel()
	std := decodeForTiming(t, ModeStandard)
	cmb := decodeForTiming(t, ModeCombined)
	relStd, vStd, err := model.DVFSEnergy(std, 24)
	if err != nil {
		t.Fatal(err)
	}
	relCmb, vCmb, err := model.DVFSEnergy(cmb, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer cycles per frame -> lower clock -> lower voltage -> lower
	// per-cycle energy: the affect modes gain extra headroom under DVFS.
	if vCmb > vStd {
		t.Errorf("combined-mode voltage %.2f above standard %.2f", vCmb, vStd)
	}
	if relCmb > relStd {
		t.Errorf("combined-mode relative energy %.3f above standard %.3f", relCmb, relStd)
	}
	if relStd > 1 || relCmb <= 0 {
		t.Errorf("relative energies out of range: %.3f, %.3f", relStd, relCmb)
	}
	// Voltage floor respected.
	if vCmb < PaperSupplyVolts/2-1e-9 {
		t.Errorf("voltage %.2f below floor", vCmb)
	}
}

func TestTimingValidation(t *testing.T) {
	model := DefaultCycleModel()
	if _, err := model.Timing(Activity{}, 24); err == nil {
		t.Error("no-frames activity accepted")
	}
	if _, err := model.Timing(Activity{FramesOut: 1}, 0); err == nil {
		t.Error("zero fps accepted")
	}
}

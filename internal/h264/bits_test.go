package h264

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEAD, 16)
	r := NewBitReader(w.Bytes(true))
	b, err := r.ReadBit()
	if err != nil || b != 1 {
		t.Fatalf("bit = %d, %v", b, err)
	}
	v, err := r.ReadBits(4)
	if err != nil || v != 0b1011 {
		t.Fatalf("bits = %b, %v", v, err)
	}
	v, err = r.ReadBits(16)
	if err != nil || v != 0xDEAD {
		t.Fatalf("bits = %x, %v", v, err)
	}
}

// TestBitWriterResetRecycle pins the Reset(Take()) recycling contract: a
// recycled writer reproduces a fresh writer's bytes exactly, Grow makes
// the subsequent writes allocation-free, and Reset(nil) works.
func TestBitWriterResetRecycle(t *testing.T) {
	write := func(w *BitWriter) []byte {
		w.WriteUE(7)
		w.WriteBits(0x2b3, 11)
		w.WriteSE(-4)
		w.WriteBit(1)
		return w.Bytes(true)
	}
	want := write(NewBitWriter())

	w := NewBitWriter()
	if got := write(w); string(got) != string(want) {
		t.Fatalf("first pass mismatch: % x vs % x", got, want)
	}
	for i := 0; i < 3; i++ {
		w.Reset(w.Take())
		if got := write(w); string(got) != string(want) {
			t.Fatalf("recycled pass %d mismatch: % x vs % x", i, got, want)
		}
	}
	w.Reset(nil)
	if w.Len() != 0 {
		t.Fatalf("Len %d after Reset(nil), want 0", w.Len())
	}
	w.Grow(4096 * 11)
	allocs := testing.AllocsPerRun(10, func() {
		w.Reset(w.Take())
		for j := 0; j < 4096; j++ {
			w.WriteBits(uint64(j), 11)
		}
	})
	if allocs != 0 {
		t.Errorf("grown writer allocated %.1f/run, want 0", allocs)
	}
	w.Reset(w.Take())
	if got := write(w); string(got) != string(want) {
		t.Fatalf("post-grow reset mismatch: % x vs % x", got, want)
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Spec examples: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
	cases := map[uint32]string{0: "1", 1: "010", 2: "011", 3: "00100", 4: "00101", 7: "0001000"}
	for v, bits := range cases {
		w := NewBitWriter()
		w.WriteUE(v)
		got := bitString(w)
		if got != bits {
			t.Errorf("ue(%d) = %s, want %s", v, got, bits)
		}
	}
}

func TestSEKnownCodes(t *testing.T) {
	// Spec mapping: 0->0, 1->1, -1->2, 2->3, -2->4.
	cases := map[int32]uint32{0: 0, 1: 1, -1: 2, 2: 3, -2: 4, 3: 5, -3: 6}
	for v, ue := range cases {
		w1 := NewBitWriter()
		w1.WriteSE(v)
		w2 := NewBitWriter()
		w2.WriteUE(ue)
		if bitString(w1) != bitString(w2) {
			t.Errorf("se(%d) != ue(%d)", v, ue)
		}
	}
}

func bitString(w *BitWriter) string {
	data := w.Bytes(false)
	out := make([]byte, 0, w.Len())
	for i := 0; i < w.Len(); i++ {
		if data[i/8]&(1<<(7-uint(i%8))) != 0 {
			out = append(out, '1')
		} else {
			out = append(out, '0')
		}
	}
	return string(out)
}

// Property: ue/se round trip for arbitrary values.
func TestExpGolombRoundTrip(t *testing.T) {
	fu := func(vs []uint32) bool {
		w := NewBitWriter()
		for _, v := range vs {
			v %= 1 << 24
			w.WriteUE(v)
		}
		r := NewBitReader(w.Bytes(true))
		for _, v := range vs {
			v %= 1 << 24
			got, err := r.ReadUE()
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fu, nil); err != nil {
		t.Error(err)
	}
	fs := func(vs []int32) bool {
		w := NewBitWriter()
		for _, v := range vs {
			v %= 1 << 20
			w.WriteSE(v)
		}
		r := NewBitReader(w.Bytes(true))
		for _, v := range vs {
			v %= 1 << 20
			got, err := r.ReadSE()
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fs, nil); err != nil {
		t.Error(err)
	}
}

func TestNALEscaping(t *testing.T) {
	// A payload containing start-code-like patterns must survive framing.
	payload := []byte{0, 0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 7, 0, 0}
	esc := escapeRBSP(payload)
	back := unescapeRBSP(esc)
	if string(back) != string(payload) {
		t.Fatalf("escape round trip failed: % x -> % x -> % x", payload, esc, back)
	}
	// The escaped form must not contain a start code.
	for i := 0; i+3 <= len(esc); i++ {
		if esc[i] == 0 && esc[i+1] == 0 && (esc[i+2] == 1 || esc[i+2] == 0 && i+4 <= len(esc) && esc[i+3] == 1) {
			t.Fatalf("escaped payload contains start code at %d: % x", i, esc)
		}
	}
}

// Property: NAL stream marshal/split round trip preserves type, refidc and
// payload.
func TestNALStreamRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		units := make([]NAL, n)
		types := []NALType{NALSliceNonIDR, NALSliceIDR, NALSPS, NALPPS}
		for i := range units {
			payload := make([]byte, 1+rng.Intn(64))
			for j := range payload {
				// Bias toward zeros to exercise escaping.
				if rng.Intn(3) == 0 {
					payload[j] = byte(rng.Intn(4))
				} else {
					payload[j] = byte(rng.Intn(256))
				}
			}
			// Avoid payloads ending in 0x00: trailing zeros are ambiguous
			// with the next start code prefix, and real RBSPs always end
			// with the rbsp_stop_one_bit so this never arises in practice.
			payload[len(payload)-1] |= 0x80
			units[i] = NAL{Type: types[rng.Intn(len(types))], RefIDC: rng.Intn(4), Payload: payload}
		}
		stream, err := MarshalStream(units)
		if err != nil {
			return false
		}
		got, err := SplitStream(stream)
		if err != nil || len(got) != len(units) {
			return false
		}
		for i := range units {
			if got[i].Type != units[i].Type || got[i].RefIDC != units[i].RefIDC {
				return false
			}
			if string(got[i].Payload) != string(units[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitStreamErrors(t *testing.T) {
	if _, err := SplitStream([]byte{1, 2, 3}); err == nil {
		t.Error("garbage stream accepted")
	}
	// forbidden_zero_bit set.
	if _, err := SplitStream([]byte{0, 0, 1, 0x85, 1, 2}); err == nil {
		t.Error("forbidden bit accepted")
	}
	units, err := SplitStream(nil)
	if err != nil || units != nil {
		t.Error("empty stream should be empty, no error")
	}
}

func TestNALSizeBytes(t *testing.T) {
	n := NAL{Type: NALSliceNonIDR, RefIDC: 0, Payload: make([]byte, 100)}
	// 100 zero bytes escape to 149 bytes: an escape lands before the 3rd,
	// 5th, ..., 99th zero (49 escapes), plus the header byte.
	if got := n.SizeBytes(); got != 150 {
		t.Errorf("SizeBytes = %d, want 150", got)
	}
	n.Payload = []byte{1, 2, 3}
	if got := n.SizeBytes(); got != 4 {
		t.Errorf("SizeBytes = %d, want 4", got)
	}
}

func TestMarshalNALValidation(t *testing.T) {
	if _, err := MarshalNAL(NAL{Type: -1}); err == nil {
		t.Error("negative type accepted")
	}
	if _, err := MarshalNAL(NAL{Type: NALSPS, RefIDC: 9}); err == nil {
		t.Error("refidc 9 accepted")
	}
}

package h264

import (
	"fmt"
)

// Activity is the decoder's per-run activity accounting; the power model
// converts it to energy.
type Activity struct {
	HeaderBits   int // slice/MB syntax bits parsed
	ResidualBits int // CAVLC residual bits parsed
	BlocksIQIT   int // 4x4 blocks through inverse quant + transform
	IntraBlocks  int // 4x4 intra predictions
	InterBlocks  int // 4x4 motion-compensated predictions
	SkipMBs      int
	CodedMBs     int
	DF           filterStats
	BufferBytes  int // bytes moved through pre-store + circular buffers
	FramesOut    int
	Concealed    int // frames repeated due to deleted/missing NAL units
}

// Add accumulates another activity record.
func (a *Activity) Add(b Activity) {
	a.HeaderBits += b.HeaderBits
	a.ResidualBits += b.ResidualBits
	a.BlocksIQIT += b.BlocksIQIT
	a.IntraBlocks += b.IntraBlocks
	a.InterBlocks += b.InterBlocks
	a.SkipMBs += b.SkipMBs
	a.CodedMBs += b.CodedMBs
	a.DF.edgesConsidered += b.DF.edgesConsidered
	a.DF.edgesExamined += b.DF.edgesExamined
	a.DF.edgesFiltered += b.DF.edgesFiltered
	a.DF.samplesTouch += b.DF.samplesTouch
	a.BufferBytes += b.BufferBytes
	a.FramesOut += b.FramesOut
	a.Concealed += b.Concealed
}

// Decoder decodes the model's annex-B streams. DeblockEnabled is the
// affect-driven Deblocking Filter knob: when false the in-loop filter is
// skipped, saving its energy at the cost of blocking artifacts (and slight
// reference drift, since conforming encoders filter their references).
type Decoder struct {
	DeblockEnabled bool

	width, height int
	qp            int
	chroma        bool
	haveSPS       bool
	havePPS       bool

	lastRef  *Frame
	lastOut  *Frame
	nextNum  int
	activity Activity

	pool        *FramePool // optional frame recycling; nil means plain allocation
	mbScratch   []mbInfo   // per-slice macroblock info, reused across slices
	unitScratch []NAL      // split-stream scratch, reused across streams
}

// maxConcealGap bounds how many consecutive missing frame numbers the
// decoder will conceal; larger jumps indicate a corrupted header rather
// than deleted NAL units.
const maxConcealGap = 512

// NewDecoder returns a decoder with the deblocking filter enabled.
func NewDecoder() *Decoder { return &Decoder{DeblockEnabled: true} }

// SetDeblock switches the in-loop filter — the affect loop's DF knob.
// Prefer it over writing DeblockEnabled directly: knob transitions are
// counted for the observability layer.
func (d *Decoder) SetDeblock(on bool) {
	if d.DeblockEnabled != on {
		mtr.deblockSwitches.Inc()
	}
	d.DeblockEnabled = on
}

// Activity returns the accumulated decode activity.
func (d *Decoder) Activity() Activity { return d.activity }

// SetPool attaches a FramePool; subsequent output frames are drawn from it.
// The caller owns the returned frames and decides when to Put them back —
// the decoder never recycles a frame it has handed out (lastRef/lastOut
// still alias outputs, so premature reuse would corrupt prediction).
func (d *Decoder) SetPool(p *FramePool) { d.pool = p }

// Reset clears stream state (parameter sets, references, frame numbering)
// while keeping the deblock knob, attached pool, and accumulated activity,
// so one decoder can run many streams back to back.
func (d *Decoder) Reset() {
	d.width, d.height, d.qp = 0, 0, 0
	d.chroma, d.haveSPS, d.havePPS = false, false, false
	d.lastRef, d.lastOut = nil, nil
	d.nextNum = 0
}

// cloneFrame deep-copies src, through the pool when one is attached.
func (d *Decoder) cloneFrame(src *Frame) *Frame {
	if d.pool == nil {
		return src.Clone()
	}
	f, err := d.pool.Get(src.Width, src.Height)
	if err != nil {
		return src.Clone()
	}
	copy(f.Y, src.Y)
	copy(f.Cb, src.Cb)
	copy(f.Cr, src.Cr)
	return f
}

// DecodeStream splits an annex-B stream and decodes every NAL unit,
// returning output frames in display order. Gaps in frame numbering
// (deleted NAL units) are concealed by repeating the previous output.
func (d *Decoder) DecodeStream(stream []byte) ([]*Frame, error) {
	return d.DecodeStreamInto(stream, nil)
}

// DecodeStreamInto is DecodeStream appending into out (reusing its backing
// array) — pass the previous call's slice as out[:0] to recycle it. With a
// FramePool attached and the previous frames returned to it, repeated
// decodes of a stream run allocation-free in steady state.
func (d *Decoder) DecodeStreamInto(stream []byte, out []*Frame) ([]*Frame, error) {
	units, err := SplitStreamInto(stream, d.unitScratch[:0])
	if err != nil {
		return nil, err
	}
	d.unitScratch = units[:0]
	return d.decodeUnitsInto(units, out)
}

// DecodeUnits decodes a sequence of NAL units.
func (d *Decoder) DecodeUnits(units []NAL) ([]*Frame, error) {
	return d.decodeUnitsInto(units, nil)
}

func (d *Decoder) decodeUnitsInto(units []NAL, out []*Frame) ([]*Frame, error) {
	var err error
	for _, u := range units {
		out, err = d.decodeNALInto(u, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeNAL decodes one NAL unit. Slice units yield one or more frames
// (more than one when concealment fills a numbering gap).
func (d *Decoder) DecodeNAL(u NAL) ([]*Frame, error) {
	return d.decodeNALInto(u, nil)
}

func (d *Decoder) decodeNALInto(u NAL, out []*Frame) ([]*Frame, error) {
	switch u.Type {
	case NALSPS:
		r := NewBitReader(u.Payload)
		mbw, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		mbh, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		if mbw >= 1024 || mbh >= 1024 {
			return nil, fmt.Errorf("%w: SPS dimensions %dx%d MBs unreasonable", ErrBitstream, mbw+1, mbh+1)
		}
		chromaBit, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		d.chroma = chromaBit == 1
		d.width, d.height = (int(mbw)+1)*16, (int(mbh)+1)*16
		d.haveSPS = true
		d.activity.HeaderBits += r.BitsRead()
		return out, nil
	case NALPPS:
		r := NewBitReader(u.Payload)
		qp, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		if !ValidQP(int(qp)) {
			return nil, fmt.Errorf("%w: PPS QP %d", ErrBitstream, qp)
		}
		d.qp = int(qp)
		d.havePPS = true
		d.activity.HeaderBits += r.BitsRead()
		return out, nil
	case NALSliceIDR, NALSliceNonIDR:
		if !d.haveSPS || !d.havePPS {
			return nil, fmt.Errorf("%w: slice before SPS/PPS", ErrBitstream)
		}
		return d.decodeSlice(u, out)
	default:
		return nil, fmt.Errorf("h264: unsupported NAL type %v", u.Type)
	}
}

// decodeSlice decodes one coded picture, appending its output (including
// any gap-concealment frames) to out.
func (d *Decoder) decodeSlice(u NAL, out []*Frame) ([]*Frame, error) {
	r := NewBitReader(u.Payload)
	stVal, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	st := SliceType(stVal)
	if st != SliceI && st != SliceP && st != SliceB {
		return nil, fmt.Errorf("%w: slice type %d", ErrBitstream, stVal)
	}
	numVal, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	frameNum := int(numVal)
	if gap := frameNum - d.nextNum; gap > maxConcealGap {
		return nil, fmt.Errorf("%w: frame number jumps by %d", ErrBitstream, gap)
	}
	d.activity.HeaderBits += r.BitsRead()

	// Concealment: repeat the previous output for any skipped numbers.
	for d.nextNum < frameNum {
		if d.lastOut != nil {
			out = append(out, d.cloneFrame(d.lastOut))
			d.activity.Concealed++
			d.activity.FramesOut++
			mtr.framesConcealed.Inc()
			mtr.framesOut.Inc()
		}
		d.nextNum++
	}
	if st != SliceI && d.lastRef == nil {
		return nil, fmt.Errorf("%w: inter slice %d without reference", ErrBitstream, frameNum)
	}

	recon, err := d.pool.Get(d.width, d.height)
	if err != nil {
		return nil, err
	}
	mbw, mbh := recon.MBWidth(), recon.MBHeight()
	if cap(d.mbScratch) < mbw*mbh {
		d.mbScratch = make([]mbInfo, mbw*mbh)
	}
	mbs := d.mbScratch[:mbw*mbh]
	for i := range mbs {
		mbs[i] = mbInfo{}
	}
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			info := &mbs[my*mbw+mx]
			if st == SliceI {
				if err := d.decodeIntraMB(r, recon, mx, my, info); err != nil {
					return nil, fmt.Errorf("frame %d MB (%d,%d): %w", frameNum, mx, my, err)
				}
			} else {
				if err := d.decodeInterMB(r, recon, mx, my, info); err != nil {
					return nil, fmt.Errorf("frame %d MB (%d,%d): %w", frameNum, mx, my, err)
				}
			}
		}
	}
	if d.DeblockEnabled {
		fst := DeblockFrame(recon, mbs, d.qp)
		d.activity.DF.edgesConsidered += fst.edgesConsidered
		d.activity.DF.edgesExamined += fst.edgesExamined
		d.activity.DF.edgesFiltered += fst.edgesFiltered
		d.activity.DF.samplesTouch += fst.samplesTouch
		mtr.deblockOn.Inc()
	} else {
		mtr.deblockOff.Inc()
	}
	if st != SliceB {
		d.lastRef = recon
	}
	d.lastOut = recon
	d.nextNum = frameNum + 1
	d.activity.FramesOut++
	mtr.framesOut.Inc()
	out = append(out, recon)
	return out, nil
}

// ConcealTo emits repeated copies of the last output until frame numbers
// 0..n-1 are all covered, concealing trailing deleted NAL units. It
// returns the concealment frames (possibly none).
func (d *Decoder) ConcealTo(n int) []*Frame {
	var out []*Frame
	for d.nextNum < n && d.lastOut != nil {
		out = append(out, d.cloneFrame(d.lastOut))
		d.activity.Concealed++
		d.activity.FramesOut++
		mtr.framesConcealed.Inc()
		mtr.framesOut.Inc()
		d.nextNum++
	}
	return out
}

// decodeIntraMB mirrors Encoder.encodeIntraMB.
func (d *Decoder) decodeIntraMB(r *BitReader, recon *Frame, mx, my int, info *mbInfo) error {
	info.intra = true
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			x, y := mx*16+bx, my*16+by
			before := r.BitsRead()
			modeVal, err := r.ReadUE()
			if err != nil {
				return err
			}
			d.activity.HeaderBits += r.BitsRead() - before
			pred, err := PredictIntra4(recon, x, y, IntraMode(modeVal))
			if err != nil {
				return err
			}
			d.activity.IntraBlocks++
			var scan [16]int32
			bits, nz, err := decodeResidualScan(r, &scan)
			if err != nil {
				return err
			}
			d.activity.ResidualBits += bits
			if nz > 0 {
				info.coded = true
			}
			var res Block4
			if err := iqitScanInto(&scan, d.qp, &res); err != nil {
				return err
			}
			d.activity.BlocksIQIT++
			reconstructBlock(recon, x, y, pred, res)
		}
	}
	if d.chroma {
		if err := d.decodeChromaMB(r, recon, mx, my, true, MV{}); err != nil {
			return err
		}
	}
	d.activity.CodedMBs++
	return nil
}

// decodeInterMB mirrors Encoder.encodeInterMB.
func (d *Decoder) decodeInterMB(r *BitReader, recon *Frame, mx, my int, info *mbInfo) error {
	before := r.BitsRead()
	skip, err := r.ReadBit()
	if err != nil {
		return err
	}
	if skip == 1 {
		d.activity.HeaderBits += r.BitsRead() - before
		d.activity.SkipMBs++
		// Zero-MV prediction plus zero residual of uint8-sourced samples is
		// clamp(ref) == ref, so a skip MB is exactly a 16x16 co-located copy:
		// sixteen row copies replace 256 clamped per-sample round trips. The
		// sixteen 4x4 motion-compensated predictions it stands for still
		// count toward InterBlocks.
		w := recon.Width
		top := my * 16 * w
		left := mx * 16
		for row := 0; row < 16; row++ {
			off := top + row*w + left
			copy(recon.Y[off:off+16], d.lastRef.Y[off:off+16])
		}
		d.activity.InterBlocks += 16
		if d.chroma {
			copyChromaMB(recon, d.lastRef, mx, my)
		}
		return nil
	}
	mvx, err := r.ReadSE()
	if err != nil {
		return err
	}
	mvy, err := r.ReadSE()
	if err != nil {
		return err
	}
	d.activity.HeaderBits += r.BitsRead() - before
	mv := MV{int(mvx), int(mvy)}
	info.mv = mv
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			x, y := mx*16+bx, my*16+by
			pred := PredictInter4(d.lastRef, x, y, mv)
			d.activity.InterBlocks++
			var scan [16]int32
			bits, nz, err := decodeResidualScan(r, &scan)
			if err != nil {
				return err
			}
			d.activity.ResidualBits += bits
			if nz > 0 {
				info.coded = true
			}
			var res Block4
			if err := iqitScanInto(&scan, d.qp, &res); err != nil {
				return err
			}
			d.activity.BlocksIQIT++
			reconstructBlock(recon, x, y, pred, res)
		}
	}
	if d.chroma {
		if err := d.decodeChromaMB(r, recon, mx, my, false, mv); err != nil {
			return err
		}
	}
	d.activity.CodedMBs++
	return nil
}

package h264

import (
	"fmt"
)

// Activity is the decoder's per-run activity accounting; the power model
// converts it to energy.
type Activity struct {
	HeaderBits   int // slice/MB syntax bits parsed
	ResidualBits int // CAVLC residual bits parsed
	BlocksIQIT   int // 4x4 blocks through inverse quant + transform
	IntraBlocks  int // 4x4 intra predictions
	InterBlocks  int // 4x4 motion-compensated predictions
	SkipMBs      int
	CodedMBs     int
	DF           filterStats
	BufferBytes  int // bytes moved through pre-store + circular buffers
	FramesOut    int
	Concealed    int // frames repeated due to deleted/missing NAL units
}

// Add accumulates another activity record.
func (a *Activity) Add(b Activity) {
	a.HeaderBits += b.HeaderBits
	a.ResidualBits += b.ResidualBits
	a.BlocksIQIT += b.BlocksIQIT
	a.IntraBlocks += b.IntraBlocks
	a.InterBlocks += b.InterBlocks
	a.SkipMBs += b.SkipMBs
	a.CodedMBs += b.CodedMBs
	a.DF.edgesConsidered += b.DF.edgesConsidered
	a.DF.edgesExamined += b.DF.edgesExamined
	a.DF.edgesFiltered += b.DF.edgesFiltered
	a.DF.samplesTouch += b.DF.samplesTouch
	a.BufferBytes += b.BufferBytes
	a.FramesOut += b.FramesOut
	a.Concealed += b.Concealed
}

// Decoder decodes the model's annex-B streams. DeblockEnabled is the
// affect-driven Deblocking Filter knob: when false the in-loop filter is
// skipped, saving its energy at the cost of blocking artifacts (and slight
// reference drift, since conforming encoders filter their references).
type Decoder struct {
	DeblockEnabled bool

	width, height int
	qp            int
	chroma        bool
	haveSPS       bool
	havePPS       bool

	lastRef  *Frame
	lastOut  *Frame
	nextNum  int
	activity Activity
}

// maxConcealGap bounds how many consecutive missing frame numbers the
// decoder will conceal; larger jumps indicate a corrupted header rather
// than deleted NAL units.
const maxConcealGap = 512

// NewDecoder returns a decoder with the deblocking filter enabled.
func NewDecoder() *Decoder { return &Decoder{DeblockEnabled: true} }

// SetDeblock switches the in-loop filter — the affect loop's DF knob.
// Prefer it over writing DeblockEnabled directly: knob transitions are
// counted for the observability layer.
func (d *Decoder) SetDeblock(on bool) {
	if d.DeblockEnabled != on {
		mtr.deblockSwitches.Inc()
	}
	d.DeblockEnabled = on
}

// Activity returns the accumulated decode activity.
func (d *Decoder) Activity() Activity { return d.activity }

// DecodeStream splits an annex-B stream and decodes every NAL unit,
// returning output frames in display order. Gaps in frame numbering
// (deleted NAL units) are concealed by repeating the previous output.
func (d *Decoder) DecodeStream(stream []byte) ([]*Frame, error) {
	units, err := SplitStream(stream)
	if err != nil {
		return nil, err
	}
	return d.DecodeUnits(units)
}

// DecodeUnits decodes a sequence of NAL units.
func (d *Decoder) DecodeUnits(units []NAL) ([]*Frame, error) {
	var out []*Frame
	for _, u := range units {
		frames, err := d.DecodeNAL(u)
		if err != nil {
			return nil, err
		}
		out = append(out, frames...)
	}
	return out, nil
}

// DecodeNAL decodes one NAL unit. Slice units yield one or more frames
// (more than one when concealment fills a numbering gap).
func (d *Decoder) DecodeNAL(u NAL) ([]*Frame, error) {
	switch u.Type {
	case NALSPS:
		r := NewBitReader(u.Payload)
		mbw, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		mbh, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		if mbw >= 1024 || mbh >= 1024 {
			return nil, fmt.Errorf("%w: SPS dimensions %dx%d MBs unreasonable", ErrBitstream, mbw+1, mbh+1)
		}
		chromaBit, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		d.chroma = chromaBit == 1
		d.width, d.height = (int(mbw)+1)*16, (int(mbh)+1)*16
		d.haveSPS = true
		d.activity.HeaderBits += r.BitsRead()
		return nil, nil
	case NALPPS:
		r := NewBitReader(u.Payload)
		qp, err := r.ReadUE()
		if err != nil {
			return nil, err
		}
		if !ValidQP(int(qp)) {
			return nil, fmt.Errorf("%w: PPS QP %d", ErrBitstream, qp)
		}
		d.qp = int(qp)
		d.havePPS = true
		d.activity.HeaderBits += r.BitsRead()
		return nil, nil
	case NALSliceIDR, NALSliceNonIDR:
		if !d.haveSPS || !d.havePPS {
			return nil, fmt.Errorf("%w: slice before SPS/PPS", ErrBitstream)
		}
		return d.decodeSlice(u)
	default:
		return nil, fmt.Errorf("h264: unsupported NAL type %v", u.Type)
	}
}

// decodeSlice decodes one coded picture.
func (d *Decoder) decodeSlice(u NAL) ([]*Frame, error) {
	r := NewBitReader(u.Payload)
	stVal, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	st := SliceType(stVal)
	if st != SliceI && st != SliceP && st != SliceB {
		return nil, fmt.Errorf("%w: slice type %d", ErrBitstream, stVal)
	}
	numVal, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	frameNum := int(numVal)
	if gap := frameNum - d.nextNum; gap > maxConcealGap {
		return nil, fmt.Errorf("%w: frame number jumps by %d", ErrBitstream, gap)
	}
	d.activity.HeaderBits += r.BitsRead()

	// Concealment: repeat the previous output for any skipped numbers.
	var out []*Frame
	for d.nextNum < frameNum {
		if d.lastOut != nil {
			out = append(out, d.lastOut.Clone())
			d.activity.Concealed++
			d.activity.FramesOut++
			mtr.framesConcealed.Inc()
			mtr.framesOut.Inc()
		}
		d.nextNum++
	}
	if st != SliceI && d.lastRef == nil {
		return nil, fmt.Errorf("%w: inter slice %d without reference", ErrBitstream, frameNum)
	}

	recon, err := NewFrame(d.width, d.height)
	if err != nil {
		return nil, err
	}
	mbw, mbh := recon.MBWidth(), recon.MBHeight()
	mbs := make([]mbInfo, mbw*mbh)
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			info := &mbs[my*mbw+mx]
			if st == SliceI {
				if err := d.decodeIntraMB(r, recon, mx, my, info); err != nil {
					return nil, fmt.Errorf("frame %d MB (%d,%d): %w", frameNum, mx, my, err)
				}
			} else {
				if err := d.decodeInterMB(r, recon, mx, my, info); err != nil {
					return nil, fmt.Errorf("frame %d MB (%d,%d): %w", frameNum, mx, my, err)
				}
			}
		}
	}
	if d.DeblockEnabled {
		fst := DeblockFrame(recon, mbs, d.qp)
		d.activity.DF.edgesConsidered += fst.edgesConsidered
		d.activity.DF.edgesExamined += fst.edgesExamined
		d.activity.DF.edgesFiltered += fst.edgesFiltered
		d.activity.DF.samplesTouch += fst.samplesTouch
		mtr.deblockOn.Inc()
	} else {
		mtr.deblockOff.Inc()
	}
	if st != SliceB {
		d.lastRef = recon
	}
	d.lastOut = recon
	d.nextNum = frameNum + 1
	d.activity.FramesOut++
	mtr.framesOut.Inc()
	out = append(out, recon)
	return out, nil
}

// ConcealTo emits repeated copies of the last output until frame numbers
// 0..n-1 are all covered, concealing trailing deleted NAL units. It
// returns the concealment frames (possibly none).
func (d *Decoder) ConcealTo(n int) []*Frame {
	var out []*Frame
	for d.nextNum < n && d.lastOut != nil {
		out = append(out, d.lastOut.Clone())
		d.activity.Concealed++
		d.activity.FramesOut++
		mtr.framesConcealed.Inc()
		mtr.framesOut.Inc()
		d.nextNum++
	}
	return out
}

// decodeIntraMB mirrors Encoder.encodeIntraMB.
func (d *Decoder) decodeIntraMB(r *BitReader, recon *Frame, mx, my int, info *mbInfo) error {
	info.intra = true
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			x, y := mx*16+bx, my*16+by
			before := r.BitsRead()
			modeVal, err := r.ReadUE()
			if err != nil {
				return err
			}
			d.activity.HeaderBits += r.BitsRead() - before
			pred, err := PredictIntra4(recon, x, y, IntraMode(modeVal))
			if err != nil {
				return err
			}
			d.activity.IntraBlocks++
			z, bits, err := DecodeResidual(r)
			if err != nil {
				return err
			}
			d.activity.ResidualBits += bits
			if z.NonZeroCount() > 0 {
				info.coded = true
			}
			res, err := IQIT(z, d.qp)
			if err != nil {
				return err
			}
			d.activity.BlocksIQIT++
			reconstructBlock(recon, x, y, pred, res)
		}
	}
	if d.chroma {
		if err := d.decodeChromaMB(r, recon, mx, my, true, MV{}); err != nil {
			return err
		}
	}
	d.activity.CodedMBs++
	return nil
}

// decodeInterMB mirrors Encoder.encodeInterMB.
func (d *Decoder) decodeInterMB(r *BitReader, recon *Frame, mx, my int, info *mbInfo) error {
	before := r.BitsRead()
	skip, err := r.ReadBit()
	if err != nil {
		return err
	}
	if skip == 1 {
		d.activity.HeaderBits += r.BitsRead() - before
		d.activity.SkipMBs++
		for by := 0; by < 16; by += 4 {
			for bx := 0; bx < 16; bx += 4 {
				x, y := mx*16+bx, my*16+by
				pred := PredictInter4(d.lastRef, x, y, MV{})
				d.activity.InterBlocks++
				reconstructBlock(recon, x, y, pred, Block4{})
			}
		}
		if d.chroma {
			copyChromaMB(recon, d.lastRef, mx, my)
		}
		return nil
	}
	mvx, err := r.ReadSE()
	if err != nil {
		return err
	}
	mvy, err := r.ReadSE()
	if err != nil {
		return err
	}
	d.activity.HeaderBits += r.BitsRead() - before
	mv := MV{int(mvx), int(mvy)}
	info.mv = mv
	for by := 0; by < 16; by += 4 {
		for bx := 0; bx < 16; bx += 4 {
			x, y := mx*16+bx, my*16+by
			pred := PredictInter4(d.lastRef, x, y, mv)
			d.activity.InterBlocks++
			z, bits, err := DecodeResidual(r)
			if err != nil {
				return err
			}
			d.activity.ResidualBits += bits
			if z.NonZeroCount() > 0 {
				info.coded = true
			}
			res, err := IQIT(z, d.qp)
			if err != nil {
				return err
			}
			d.activity.BlocksIQIT++
			reconstructBlock(recon, x, y, pred, res)
		}
	}
	if d.chroma {
		if err := d.decodeChromaMB(r, recon, mx, my, false, mv); err != nil {
			return err
		}
	}
	d.activity.CodedMBs++
	return nil
}

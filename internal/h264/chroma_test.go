package h264

import (
	"math"
	"testing"
)

func TestChromaRoundTrip(t *testing.T) {
	cfg := DefaultVideoConfig(8)
	cfg.Width, cfg.Height = 64, 48
	src, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 26, IntraPeriod: 4, BFrames: 1,
		SearchWindow: 2, Chroma: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder().DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(src) {
		t.Fatalf("%d frames", len(out))
	}
	// Luma quality unaffected by chroma coding; chroma reconstructed well.
	luma, err := MeanPSNR(src, out)
	if err != nil {
		t.Fatal(err)
	}
	if luma < 30 {
		t.Errorf("luma PSNR %.1f", luma)
	}
	var chromaSum float64
	var n int
	for i := range src {
		p, err := ChromaPSNR(src[i], out[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(p, 1) {
			continue
		}
		chromaSum += p
		n++
	}
	if n > 0 && chromaSum/float64(n) < 30 {
		t.Errorf("chroma PSNR %.1f", chromaSum/float64(n))
	}
	// Decoded chroma must not be flat gray (i.e. it was really coded).
	var varSum float64
	mean := 0.0
	for _, v := range out[0].Cb {
		mean += float64(v)
	}
	mean /= float64(len(out[0].Cb))
	for _, v := range out[0].Cb {
		varSum += (float64(v) - mean) * (float64(v) - mean)
	}
	if varSum/float64(len(out[0].Cb)) < 10 {
		t.Error("decoded chroma is nearly flat; chroma path not exercised")
	}
}

func TestChromaLumaOnlyStreamsUnaffected(t *testing.T) {
	// Luma-only streams must decode exactly as before, leaving chroma at
	// zero values.
	cfg := DefaultVideoConfig(4)
	cfg.Width, cfg.Height = 48, 48
	src, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(EncoderConfig{
		Width: 48, Height: 48, QP: 28, IntraPeriod: 4, BFrames: 0, SearchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder().DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out[0].Cb {
		if v != 0 {
			t.Fatal("luma-only stream produced chroma samples")
		}
	}
}

func TestChromaQPMapping(t *testing.T) {
	if chromaQP(20) != 20 || chromaQP(30) != 30 {
		t.Error("low QPs should map identically")
	}
	if chromaQP(40) >= 40 {
		t.Error("high QPs should map lower for chroma")
	}
	if chromaQP(51) > 51 {
		t.Error("chroma QP out of range")
	}
}

func TestFrameChromaAccessors(t *testing.T) {
	f, err := NewFrame(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if f.CWidth() != 16 || f.CHeight() != 8 {
		t.Fatalf("chroma dims %dx%d", f.CWidth(), f.CHeight())
	}
	f.SetC(0, 3, 2, 99)
	f.SetC(1, 3, 2, 201)
	if f.CAt(0, 3, 2) != 99 || f.CAt(1, 3, 2) != 201 {
		t.Error("chroma get/set broken")
	}
	// Clamping.
	if f.CAt(0, -5, -5) != f.CAt(0, 0, 0) {
		t.Error("negative coordinates should clamp")
	}
	f.SetC(0, 100, 100, 1) // ignored
	f.FillChroma(128, 64)
	if f.CAt(0, 0, 0) != 128 || f.CAt(1, 5, 5) != 64 {
		t.Error("FillChroma wrong")
	}
}

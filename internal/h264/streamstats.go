package h264

import (
	"fmt"
	"sort"
	"strings"
)

// StreamStats summarizes an annex-B stream's NAL-layer structure: the
// population the Input Selector's S_th threshold operates over.
type StreamStats struct {
	Units      int
	Bytes      int
	IFrames    int
	PFrames    int
	BFrames    int
	ParamSets  int
	SliceSizes []int // bytes per slice unit, stream order
	// DeletableAt maps a threshold to how many units f=1 would delete.
	DeletableAt map[int]int
}

// AnalyzeStream parses a stream and computes its NAL statistics, probing
// deletability at the given thresholds (defaults to 70/140/280 when nil).
func AnalyzeStream(stream []byte, thresholds []int) (*StreamStats, error) {
	units, err := SplitStream(stream)
	if err != nil {
		return nil, err
	}
	if thresholds == nil {
		thresholds = []int{70, PaperSth, 280}
	}
	st := &StreamStats{DeletableAt: map[int]int{}}
	for _, u := range units {
		size := u.SizeBytes()
		st.Units++
		st.Bytes += size
		switch u.Type {
		case NALSPS, NALPPS:
			st.ParamSets++
			continue
		case NALSliceIDR:
			st.IFrames++
		case NALSliceNonIDR:
			// Distinguish P from B via the slice header.
			r := NewBitReader(u.Payload)
			tv, err := r.ReadUE()
			if err != nil {
				return nil, fmt.Errorf("h264: slice header: %w", err)
			}
			switch SliceType(tv) {
			case SliceP:
				st.PFrames++
			case SliceB:
				st.BFrames++
			default:
				return nil, fmt.Errorf("%w: slice type %d in non-IDR unit", ErrBitstream, tv)
			}
		}
		st.SliceSizes = append(st.SliceSizes, size)
		for _, th := range thresholds {
			if u.Type == NALSliceNonIDR && size <= th {
				st.DeletableAt[th]++
			}
		}
	}
	return st, nil
}

// SizePercentile returns the p-th percentile of slice sizes.
func (s *StreamStats) SizePercentile(p float64) int {
	if len(s.SliceSizes) == 0 {
		return 0
	}
	sorted := make([]int, len(s.SliceSizes))
	copy(sorted, s.SliceSizes)
	sort.Ints(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the statistics report.
func (s *StreamStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "units %d (%d I, %d P, %d B, %d param sets), %d bytes\n",
		s.Units, s.IFrames, s.PFrames, s.BFrames, s.ParamSets, s.Bytes)
	fmt.Fprintf(&b, "slice size p10/p50/p90: %d/%d/%d bytes\n",
		s.SizePercentile(10), s.SizePercentile(50), s.SizePercentile(90))
	ths := make([]int, 0, len(s.DeletableAt))
	for th := range s.DeletableAt {
		ths = append(ths, th)
	}
	sort.Ints(ths)
	for _, th := range ths {
		fmt.Fprintf(&b, "deletable at S_th=%d: %d units\n", th, s.DeletableAt[th])
	}
	return b.String()
}

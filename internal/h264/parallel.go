package h264

import (
	"affectedge/internal/parallel"
)

// Multi-stream fan-out: decoding independent streams (one per simulated
// device, or one per operating mode) is embarrassingly parallel, so both
// entry points fan out over the shared bounded worker pool. Results are
// written back by index, which keeps aggregation deterministic: output
// order never depends on scheduling, so a run is bit-identical at any
// parallel.SetWorkers count.

// DecodeStreams decodes each annex-B stream with its own Decoder (deblock
// knob applied to all of them) and returns the per-stream frame sequences
// in input order. Every output frame is retained by the caller, so no
// FramePool is attached here; callers that recycle frames (the fleet's
// per-shard probe decode) attach their own pool via Decoder.SetPool.
func DecodeStreams(streams [][]byte, deblock bool) ([][]*Frame, error) {
	return parallel.Map(len(streams), func(i int) ([]*Frame, error) {
		dec := NewDecoder()
		dec.SetDeblock(deblock)
		return dec.DecodeStream(streams[i])
	})
}

// MeasureModes runs DecodePipeline over the given modes in parallel,
// returning results in mode order. It is the fan-out core of CompareModes
// and of videosim's -workers flag: the four operating points decode
// independent pipelines, so wall-clock scales down with the pool size while
// every statistic stays bit-identical to a serial run.
func MeasureModes(stream []byte, modes []DecoderMode) ([]*PipelineResult, error) {
	return parallel.Map(len(modes), func(i int) (*PipelineResult, error) {
		return DecodePipeline(stream, modes[i])
	})
}

package h264

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testVideo(t *testing.T, frames int) []*Frame {
	t.Helper()
	cfg := DefaultVideoConfig(frames)
	cfg.Width, cfg.Height = 64, 48
	src, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := testVideo(t, 13)
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 24, IntraPeriod: 6, BFrames: 2, SearchWindow: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, units, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	// SPS + PPS + one slice per frame.
	if len(units) != 2+len(src) {
		t.Fatalf("%d units, want %d", len(units), 2+len(src))
	}
	dec := NewDecoder()
	out, err := dec.DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(src) {
		t.Fatalf("decoded %d frames, want %d", len(out), len(src))
	}
	psnr, err := MeanPSNR(src, out)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Errorf("QP24 PSNR %.1f dB too low", psnr)
	}
	act := dec.Activity()
	if act.FramesOut != len(src) || act.Concealed != 0 {
		t.Errorf("activity: out=%d concealed=%d", act.FramesOut, act.Concealed)
	}
	if act.BlocksIQIT == 0 || act.ResidualBits == 0 {
		t.Error("no residual activity recorded")
	}
}

func TestDecoderMatchesEncoderReconstruction(t *testing.T) {
	// With DF on, the decoder's reference chain must be bit-exact with the
	// encoder's: decode twice must be deterministic and P frames must not
	// drift (high PSNR maintained at the end of the sequence).
	src := testVideo(t, 12)
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 20, IntraPeriod: 12, BFrames: 0, SearchWindow: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder().DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	first, err := PSNR(src[0], out[0])
	if err != nil {
		t.Fatal(err)
	}
	last, err := PSNR(src[len(src)-1], out[len(out)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last < first-6 {
		t.Errorf("PSNR drift along P chain: first %.1f dB, last %.1f dB", first, last)
	}
}

func TestGOPStructure(t *testing.T) {
	src := testVideo(t, 12)
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 28, IntraPeriod: 6, BFrames: 2, SearchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, units, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	// Display pattern with period 6, 2 B frames: I B B P B B | I B B P B B
	wantTypes := []SliceType{SliceI, SliceB, SliceB, SliceP, SliceB, SliceB}
	for i, u := range units[2:] {
		want := wantTypes[i%6]
		r := NewBitReader(u.Payload)
		stVal, err := r.ReadUE()
		if err != nil {
			t.Fatal(err)
		}
		if SliceType(stVal) != want {
			t.Errorf("frame %d slice type %v, want %v", i, SliceType(stVal), want)
		}
		if want == SliceB && u.RefIDC != 0 {
			t.Errorf("B frame %d has ref_idc %d, want 0", i, u.RefIDC)
		}
		if want == SliceI && u.Type != NALSliceIDR {
			t.Errorf("I frame %d has NAL type %v", i, u.Type)
		}
	}
}

func TestSelectorDeletesOnlySmallNonIDR(t *testing.T) {
	units := []NAL{
		{Type: NALSPS, RefIDC: 3, Payload: make([]byte, 10)},
		{Type: NALSliceIDR, RefIDC: 3, Payload: make([]byte, 50)},
		{Type: NALSliceNonIDR, RefIDC: 0, Payload: make([]byte, 50)},  // small B: delete
		{Type: NALSliceNonIDR, RefIDC: 2, Payload: make([]byte, 400)}, // big P: keep
		{Type: NALSliceNonIDR, RefIDC: 0, Payload: make([]byte, 60)},  // small B: delete
	}
	kept, st := ApplySelector(units, SelectorConfig{Sth: 140, F: 1})
	if st.UnitsDeleted != 2 || len(kept) != 3 {
		t.Fatalf("deleted %d kept %d, want 2/3", st.UnitsDeleted, len(kept))
	}
	for _, u := range kept {
		if u.Type == NALSliceNonIDR && u.SizeBytes() <= 140 {
			t.Error("small non-IDR survived f=1 deletion")
		}
	}
	// f=2 deletes every second candidate.
	kept, st = ApplySelector(units, SelectorConfig{Sth: 140, F: 2})
	if st.UnitsDeleted != 1 {
		t.Errorf("f=2 deleted %d, want 1", st.UnitsDeleted)
	}
	if len(kept) != 4 {
		t.Errorf("f=2 kept %d, want 4", len(kept))
	}
	// Disabled selector keeps everything.
	kept, st = ApplySelector(units, SelectorConfig{})
	if st.UnitsDeleted != 0 || len(kept) != len(units) {
		t.Error("disabled selector deleted units")
	}
	// ProtectReferences spares the small P-sized references.
	units[3].Payload = make([]byte, 60) // now small P (ref_idc 2)
	_, st = ApplySelector(units, SelectorConfig{Sth: 140, F: 1, ProtectReferences: true})
	if st.UnitsDeleted != 2 {
		t.Errorf("protected deleted %d, want 2 (B only)", st.UnitsDeleted)
	}
}

func TestDecodeWithDeletionConceals(t *testing.T) {
	src := testVideo(t, 12)
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 32, IntraPeriod: 6, BFrames: 2, SearchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, units, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	// Count droppable units at the paper threshold.
	var droppable int
	for _, u := range units {
		if u.Type == NALSliceNonIDR && u.RefIDC == 0 && u.SizeBytes() <= PaperSth {
			droppable++
		}
	}
	if droppable == 0 {
		t.Skip("no droppable units at this QP; calibration covered elsewhere")
	}
	res, err := DecodePipeline(stream, ModeCombined)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != len(src) {
		t.Fatalf("pipeline output %d frames, want %d (concealment must fill gaps)",
			len(res.Frames), len(src))
	}
	if res.Activity.Concealed != res.Selector.UnitsDeleted {
		t.Errorf("concealed %d != deleted %d", res.Activity.Concealed, res.Selector.UnitsDeleted)
	}
	// Quality drops but stays finite and sane.
	stdRes, err := DecodePipeline(stream, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	pStd, err := MeanPSNR(src, stdRes.Frames)
	if err != nil {
		t.Fatal(err)
	}
	pDel, err := MeanPSNR(src, res.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if pDel >= pStd {
		t.Errorf("deletion mode PSNR %.1f >= standard %.1f", pDel, pStd)
	}
	if pDel < 10 || math.IsNaN(pDel) {
		t.Errorf("deletion mode PSNR %.1f implausible", pDel)
	}
}

func TestPipelineStandardMatchesPlainDecoder(t *testing.T) {
	// The buffered front end must be a transparent byte path in standard
	// mode: bit-exact frames versus decoding the raw stream.
	src := testVideo(t, 7)
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 26, IntraPeriod: 4, BFrames: 1, SearchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewDecoder().DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodePipeline(stream, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(res.Frames) {
		t.Fatalf("frame count %d vs %d", len(plain), len(res.Frames))
	}
	for i := range plain {
		for j := range plain[i].Y {
			if plain[i].Y[j] != res.Frames[i].Y[j] {
				t.Fatalf("frame %d differs at %d", i, j)
			}
		}
	}
	if res.Selector.UnitsDeleted != 0 {
		t.Error("standard mode deleted units")
	}
	if res.PreStoreIn == 0 || res.CircularOut == 0 {
		t.Error("buffer traffic not recorded")
	}
}

func TestDFOffReducesQualitySlightly(t *testing.T) {
	src := testVideo(t, 10)
	enc, err := NewEncoder(EncoderConfig{
		Width: 64, Height: 48, QP: 34, IntraPeriod: 5, BFrames: 1, SearchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	std, err := DecodePipeline(stream, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	dfoff, err := DecodePipeline(stream, ModeDFOff)
	if err != nil {
		t.Fatal(err)
	}
	if dfoff.Activity.DF.edgesExamined != 0 {
		t.Error("DF-off mode ran the deblocking filter")
	}
	if std.Activity.DF.edgesExamined == 0 {
		t.Error("standard mode did not run the deblocking filter")
	}
	pStd, err := MeanPSNR(src, std.Frames)
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := MeanPSNR(src, dfoff.Frames)
	if err != nil {
		t.Fatal(err)
	}
	// At high QP the filter helps; without it quality is equal or worse,
	// but the "minor degradation" claim bounds the loss.
	if pOff > pStd+0.5 {
		t.Errorf("DF-off PSNR %.2f unexpectedly above standard %.2f", pOff, pStd)
	}
	if pStd-pOff > 6 {
		t.Errorf("DF-off loss %.2f dB too large for 'minor degradation'", pStd-pOff)
	}
}

func TestBoundaryStrengthLadder(t *testing.T) {
	intra := mbInfo{intra: true}
	coded := mbInfo{coded: true}
	moved := mbInfo{mv: MV{2, 0}}
	still := mbInfo{}
	if BoundaryStrength(intra, still, true) != 4 {
		t.Error("intra MB edge should be bS 4")
	}
	if BoundaryStrength(intra, still, false) != 3 {
		t.Error("intra inner edge should be bS 3")
	}
	if BoundaryStrength(coded, still, false) != 2 {
		t.Error("coded edge should be bS 2")
	}
	if BoundaryStrength(moved, still, false) != 1 {
		t.Error("MV-difference edge should be bS 1")
	}
	if BoundaryStrength(still, still, false) != 0 {
		t.Error("identical uncoded blocks should be bS 0")
	}
}

func TestDeblockSmoothsBlockEdge(t *testing.T) {
	// A hard vertical step across a block boundary must shrink after
	// filtering with a strong-filter bS.
	f, err := NewFrame(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				f.Y[y*32+x] = 90
			} else {
				f.Y[y*32+x] = 110
			}
		}
	}
	mbs := []mbInfo{{intra: true}, {intra: true}, {intra: true}, {intra: true}}
	before := int(f.YAt(16, 8)) - int(f.YAt(15, 8))
	st := DeblockFrame(f, mbs, 32)
	after := int(f.YAt(16, 8)) - int(f.YAt(15, 8))
	if st.edgesFiltered == 0 {
		t.Fatal("no edges filtered")
	}
	if abs(after) >= abs(before) {
		t.Errorf("edge step %d not reduced (was %d)", after, before)
	}
}

func TestCircularBufferFIFO(t *testing.T) {
	cb := NewCircularBuffer(32)
	if !cb.Write([]byte{1, 2, 3}) {
		t.Fatal("write failed")
	}
	if !cb.Write([]byte{4, 5}) {
		t.Fatal("write failed")
	}
	got := cb.Read(4)
	if string(got) != string([]byte{1, 2, 3, 4}) {
		t.Errorf("read %v", got)
	}
	if cb.Len() != 1 {
		t.Errorf("len %d", cb.Len())
	}
	// Overfill stalls.
	if cb.Write(make([]byte, 100)) {
		t.Error("overfull write succeeded")
	}
	if cb.Stalls != 1 {
		t.Errorf("stalls %d", cb.Stalls)
	}
	if cb.BytesIn != 5 || cb.BytesOut != 4 {
		t.Errorf("traffic in=%d out=%d", cb.BytesIn, cb.BytesOut)
	}
}

func TestPreStoreBufferRewind(t *testing.T) {
	ps := NewPreStoreBuffer()
	if ps.Free() != PreStoreCapacity {
		t.Fatalf("capacity %d", ps.Free())
	}
	if !ps.Write(make([]byte, 100)) {
		t.Fatal("write failed")
	}
	if err := ps.Rewind(40); err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 60 {
		t.Errorf("len %d after rewind", ps.Len())
	}
	if err := ps.Rewind(100); err == nil {
		t.Error("over-rewind accepted")
	}
	cb := NewCircularBuffer(64)
	ps.Drain(cb, false)
	// 60 bytes buffered: 3 whole words move, 12 bytes remain.
	if cb.Len() != 48 || ps.Len() != 12 {
		t.Errorf("drain moved %d, left %d", cb.Len(), ps.Len())
	}
	ps.Drain(cb, true)
	if ps.Len() != 0 || cb.Len() != 60 {
		t.Errorf("flush moved %d, left %d", cb.Len(), ps.Len())
	}
}

func TestVideoGenerator(t *testing.T) {
	cfg := DefaultVideoConfig(5)
	frames, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("%d frames", len(frames))
	}
	// Deterministic.
	again, err := GenerateVideo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		for j := range frames[i].Y {
			if frames[i].Y[j] != again[i].Y[j] {
				t.Fatal("video not deterministic")
			}
		}
	}
	// Frames differ over time (there is motion to encode).
	same := true
	for j := range frames[0].Y {
		if frames[0].Y[j] != frames[4].Y[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("no motion in generated video")
	}
	if _, err := GenerateVideo(VideoConfig{Width: 10, Height: 10, Frames: 1}); err == nil {
		t.Error("non-multiple-of-16 size accepted")
	}
	if _, err := GenerateVideo(VideoConfig{Width: 16, Height: 16}); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestPSNRBasics(t *testing.T) {
	a, err := NewFrame(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("identical frames PSNR %v, want +Inf", p)
	}
	b.Y[0] = 255
	p, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 20 || p > 60 {
		t.Errorf("single-pixel PSNR %.1f out of plausible range", p)
	}
	c, err := NewFrame(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PSNR(a, c); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// Property: the selector partitions the input — kept plus deleted equals
// the input count, every deleted unit was an eligible candidate, and
// disabled selectors are the identity.
func TestSelectorProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		units := make([]NAL, n)
		for i := range units {
			types := []NALType{NALSliceNonIDR, NALSliceIDR, NALSPS, NALPPS}
			payload := make([]byte, 1+rng.Intn(300))
			for j := range payload {
				payload[j] = byte(rng.Intn(256))
			}
			units[i] = NAL{Type: types[rng.Intn(len(types))], RefIDC: rng.Intn(4), Payload: payload}
		}
		sth := 1 + rng.Intn(300)
		fq := 1 + rng.Intn(4)
		kept, st := ApplySelector(units, SelectorConfig{Sth: sth, F: fq})
		if len(kept)+st.UnitsDeleted != len(units) {
			return false
		}
		if st.UnitsIn != len(units) {
			return false
		}
		// Deleted count never exceeds candidates, and candidates are the
		// eligible units.
		if st.UnitsDeleted > st.Candidates {
			return false
		}
		var eligible int
		for _, u := range units {
			if u.Type == NALSliceNonIDR && u.SizeBytes() <= sth {
				eligible++
			}
		}
		if st.Candidates != eligible {
			return false
		}
		if st.UnitsDeleted != eligible/fq {
			return false
		}
		// Disabled selector is identity.
		same, st0 := ApplySelector(units, SelectorConfig{})
		return len(same) == len(units) && st0.UnitsDeleted == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

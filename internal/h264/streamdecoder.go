package h264

import (
	"fmt"

	"affectedge/internal/stream"
)

// StreamDecoder decodes an annex-B byte stream progressively: callers feed
// arbitrary byte slices, the decoder scans for NAL start codes across
// chunk boundaries with a carry buffer, decodes each unit the moment its
// terminating start code (or end of stream) arrives, and emits output
// frames through a bounded FIFO with backpressure.
//
// Memory stays constant in stream length: the carry holds at most one
// incomplete NAL unit plus one accepted chunk (Feed refuses input while
// frames are waiting for FIFO space), and decoded frames are bounded by
// the FIFO capacity. Over the same total byte stream the decoded frames
// are bit-identical to Decoder.DecodeStream — the split logic mirrors
// SplitStream exactly and the per-NAL decode path is shared — with one
// progressive-decode caveat: a bitstream error late in the stream
// surfaces after earlier frames were already emitted, where the batch
// path validates the whole split before decoding anything.
//
// Not safe for concurrent feeding; one feeder plus one FIFO consumer is
// the intended (SPSC) shape.
type StreamDecoder struct {
	dec *Decoder
	out *stream.FIFO[*Frame]

	carry   []byte
	started bool // first start code located; carry begins with it
	seen    bool // any bytes fed at all
	hdr     int  // carry offset of the current unit's header byte
	scan    int  // carry offset where the next start-code scan resumes

	pending  []*Frame // decoded, not yet accepted by the FIFO
	scratch  []*Frame
	finished bool // trailing NAL decoded (Finish reached the end)
	closed   bool
	err      error // sticky fatal decode error

	peakCarry int
}

// NewStreamDecoder wraps dec in a progressive front end whose output FIFO
// buffers up to frameCap decoded frames. The caller owns dec (knobs, pool,
// activity accounting) and the frames read from Frames(), exactly as with
// DecodeStream.
func NewStreamDecoder(dec *Decoder, frameCap int) (*StreamDecoder, error) {
	if dec == nil {
		return nil, fmt.Errorf("h264: StreamDecoder needs a decoder")
	}
	out, err := stream.New[*Frame](frameCap)
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{dec: dec, out: out}, nil
}

// Frames returns the output FIFO. Frames arrive in display order; the
// FIFO is closed by Finish, by Close, or on a fatal decode error (after
// which buffered frames remain drainable — drain-on-close).
func (s *StreamDecoder) Frames() *stream.FIFO[*Frame] { return s.out }

// PeakCarry reports the high-water byte count of the carry buffer: bounded
// by the largest NAL unit plus the largest fed chunk, independent of
// stream length.
func (s *StreamDecoder) PeakCarry() int { return s.peakCarry }

// drain moves pending frames into the FIFO, reporting stream.ErrBackpressure
// if any remain.
func (s *StreamDecoder) drain() error {
	for len(s.pending) > 0 {
		if err := s.out.TryPush(s.pending[0]); err != nil {
			return err
		}
		n := copy(s.pending, s.pending[1:])
		s.pending[n] = nil
		s.pending = s.pending[:n]
	}
	return nil
}

// Feed accepts one chunk, decoding every NAL unit it completes. It returns
// len(chunk) on success. When the output FIFO is full it refuses the whole
// chunk — (0, stream.ErrBackpressure) — without consuming anything; the
// caller drains Frames() and feeds the same chunk again. Decode errors are
// sticky and close the FIFO (buffered frames stay drainable).
func (s *StreamDecoder) Feed(chunk []byte) (int, error) {
	switch {
	case s.err != nil:
		return 0, s.err
	case s.closed:
		return 0, stream.ErrClosed
	case s.finished:
		return 0, fmt.Errorf("h264: StreamDecoder feed after Finish")
	}
	if err := s.drain(); err != nil {
		return 0, err
	}
	if len(chunk) == 0 {
		return 0, nil
	}
	s.seen = true
	s.carry = append(s.carry, chunk...)
	if n := len(s.carry); n > s.peakCarry {
		s.peakCarry = n
	}
	if !s.started {
		start, hdr := nextStartCode(s.carry, 0)
		if start < 0 {
			// No start code yet: keep only the last 3 bytes, the longest
			// possible prefix of a code split across the boundary (any
			// complete code would have been found above).
			if len(s.carry) > 3 {
				s.carry = s.carry[:copy(s.carry, s.carry[len(s.carry)-3:])]
			}
			return len(chunk), nil
		}
		s.carry = s.carry[:copy(s.carry, s.carry[start:])]
		s.started = true
		s.hdr = hdr - start
		s.scan = s.hdr
	}
	if err := s.decodeComplete(); err != nil {
		return 0, s.fatal(err)
	}
	// drain() cleared pending on entry and decodeComplete stops consuming
	// at the first refused frame, so a leftover here only means the FIFO
	// filled mid-chunk; the input itself was fully accepted.
	return len(chunk), nil
}

// decodeComplete decodes units off the carry while their terminating start
// codes are present, stopping early (without error) once the FIFO refuses
// a frame.
func (s *StreamDecoder) decodeComplete() error {
	for {
		next, nhdr := nextStartCode(s.carry, s.scan)
		if next < 0 {
			if s.scan = len(s.carry) - 3; s.scan < s.hdr {
				s.scan = s.hdr
			}
			return nil
		}
		if err := s.decodeUnit(s.carry[:next]); err != nil {
			return err
		}
		s.carry = s.carry[:copy(s.carry, s.carry[next:])]
		s.hdr = nhdr - next
		s.scan = s.hdr
		if len(s.pending) > 0 {
			return nil // FIFO full; resume after the consumer drains
		}
	}
}

// decodeUnit decodes one complete unit (start code at carry[0], header at
// s.hdr, payload ending at len(unit)) and queues its frames.
func (s *StreamDecoder) decodeUnit(unit []byte) error {
	if s.hdr >= len(unit) {
		return fmt.Errorf("%w: empty NAL unit at 0", ErrBitstream)
	}
	header := unit[s.hdr]
	if header&0x80 != 0 {
		return fmt.Errorf("%w: forbidden_zero_bit set at %d", ErrBitstream, s.hdr)
	}
	u := NAL{
		Type:    NALType(header & 0x1f),
		RefIDC:  int(header >> 5),
		Payload: unescapeRBSP(unit[s.hdr+1:]),
	}
	frames, err := s.dec.decodeNALInto(u, s.scratch[:0])
	s.scratch = frames[:0]
	if err != nil {
		return err
	}
	for i, f := range frames {
		if perr := s.out.TryPush(f); perr != nil {
			s.pending = append(s.pending, frames[i:]...)
			break
		}
	}
	return nil
}

// fatal records err, closes the FIFO (waking any blocked consumer; queued
// frames remain drainable) and returns it.
func (s *StreamDecoder) fatal(err error) error {
	s.err = err
	s.out.Close()
	return err
}

// Finish decodes the trailing NAL unit (whose end only the end of stream
// delimits), flushes pending frames and closes the FIFO. Like Feed it
// reports stream.ErrBackpressure when the FIFO cannot take the remaining
// frames — drain Frames() and call Finish again; the trailing unit is not
// re-decoded. An all-garbage stream fails with the same ErrBitstream
// "no start code" as SplitStream.
func (s *StreamDecoder) Finish() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return stream.ErrClosed
	}
	if !s.finished {
		if !s.started {
			if s.seen {
				return s.fatal(fmt.Errorf("%w: no start code", ErrBitstream))
			}
			s.finished = true
		} else {
			// decodeComplete may have stopped on backpressure with whole
			// units still in the carry; finish those first.
			if err := s.drain(); err != nil {
				return err
			}
			if err := s.decodeComplete(); err != nil {
				return s.fatal(err)
			}
			if len(s.pending) > 0 {
				return stream.ErrBackpressure
			}
			if err := s.decodeUnit(s.carry); err != nil {
				return s.fatal(err)
			}
			s.carry = s.carry[:0]
			s.finished = true
		}
	}
	if err := s.drain(); err != nil {
		return err
	}
	s.closed = true
	s.out.Close()
	return nil
}

// Close abandons the stream: pending frames are dropped and the FIFO is
// closed (buffered frames stay drainable). Safe to call at any point and
// idempotent.
func (s *StreamDecoder) Close() {
	s.closed = true
	for i := range s.pending {
		s.pending[i] = nil
	}
	s.pending = s.pending[:0]
	s.out.Close()
}

// Reset prepares the StreamDecoder for a fresh stream, resetting the
// wrapped Decoder's stream state (parameter sets, references, numbering)
// and reopening the FIFO. Buffers are retained, so steady-state reuse is
// allocation-free.
func (s *StreamDecoder) Reset() {
	s.dec.Reset()
	s.carry = s.carry[:0]
	s.started, s.seen, s.finished, s.closed = false, false, false, false
	s.hdr, s.scan = 0, 0
	s.err = nil
	for i := range s.pending {
		s.pending[i] = nil
	}
	s.pending = s.pending[:0]
	s.out.Reset()
}

package h264

import (
	"sync"
	"testing"
)

func TestFramePoolReuseAndZeroing(t *testing.T) {
	p := NewFramePool()
	f, err := p.Get(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty every plane, release, and require the recycled frame to be
	// fully zeroed — pooled frames must not leak pixels across streams.
	for i := range f.Y {
		f.Y[i] = 0xAA
	}
	for i := range f.Cb {
		f.Cb[i] = 0xBB
	}
	for i := range f.Cr {
		f.Cr[i] = 0xCC
	}
	p.Put(f)
	if p.Size() != 1 {
		t.Fatalf("pool size %d after Put", p.Size())
	}
	g, err := p.Get(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatal("pool did not reuse the released frame")
	}
	for i, v := range g.Y {
		if v != 0 {
			t.Fatalf("Y[%d] = %#x, want 0", i, v)
		}
	}
	for i, v := range g.Cb {
		if v != 0 {
			t.Fatalf("Cb[%d] = %#x, want 0", i, v)
		}
	}
	for i, v := range g.Cr {
		if v != 0 {
			t.Fatalf("Cr[%d] = %#x, want 0", i, v)
		}
	}
}

func TestFramePoolDimensionMismatch(t *testing.T) {
	p := NewFramePool()
	f, err := p.Get(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(f)
	// A different size must fall back to a fresh allocation, leaving the
	// pooled 32x32 frame untouched.
	g, err := p.Get(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if g == f {
		t.Fatal("pool returned a frame of the wrong size")
	}
	if g.Width != 64 || g.Height != 48 {
		t.Fatalf("got %dx%d, want 64x48", g.Width, g.Height)
	}
	if p.Size() != 1 {
		t.Fatalf("pool size %d, want 1", p.Size())
	}
	// Releasing the mismatched frame while 32x32 frames are pooled drops it.
	p.Put(g)
	if p.Size() != 1 {
		t.Fatalf("pool size %d after mismatched Put, want 1", p.Size())
	}
	// Once drained, the pool re-keys to the next released size.
	h, err := p.Get(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if h != f {
		t.Fatal("expected the pooled 32x32 frame back")
	}
	big, err := NewFrame(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(big)
	got, err := p.Get(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if got != big {
		t.Fatal("pool did not re-key to the new dimensions")
	}
	// Invalid dimensions surface NewFrame's validation, pooled or not.
	if _, err := p.Get(33, 32); err == nil {
		t.Fatal("expected error for non-multiple-of-16 width")
	}
}

func TestFramePoolNilSafe(t *testing.T) {
	var p *FramePool
	f, err := p.Get(32, 32)
	if err != nil || f == nil {
		t.Fatalf("nil pool Get = %v, %v", f, err)
	}
	p.Put(f)   // must not panic
	p.Put(nil) // must not panic
	p.PutAll(nil)
	if p.Size() != 0 {
		t.Fatal("nil pool has a size")
	}
}

// TestFramePoolRaceStress hammers one pool from many goroutines under the
// race detector: concurrent Get/Put with mixed dimensions must stay safe
// and every recycled frame must come back zeroed.
func TestFramePoolRaceStress(t *testing.T) {
	p := NewFramePool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, h := 32, 32
			if g%3 == 0 {
				w, h = 64, 48
			}
			for i := 0; i < 200; i++ {
				f, err := p.Get(w, h)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < len(f.Y); j += 17 {
					if f.Y[j] != 0 {
						t.Errorf("goroutine %d: recycled frame not zeroed", g)
						return
					}
					f.Y[j] = byte(g + 1)
				}
				p.Put(f)
			}
		}(g)
	}
	wg.Wait()
}

// TestDecodeStreamPooledMatchesUnpooled pins the pool's bit-exactness at
// the codec level: a pooled decoder must produce frames identical to an
// unpooled one.
func TestDecodeStreamPooledMatchesUnpooled(t *testing.T) {
	stream, err := encodeTinyStream()
	if err != nil {
		t.Fatal(err)
	}
	plain := NewDecoder()
	want, err := plain.DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewFramePool()
	for round := 0; round < 3; round++ {
		dec := NewDecoder()
		dec.SetPool(pool)
		got, err := dec.DecodeStream(stream)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d frames, want %d", round, len(got), len(want))
		}
		for i := range got {
			if !framesEqual(got[i], want[i]) {
				t.Fatalf("round %d: frame %d differs from unpooled decode", round, i)
			}
		}
		pool.PutAll(got)
	}
}

func framesEqual(a, b *Frame) bool {
	if a.Width != b.Width || a.Height != b.Height {
		return false
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	for i := range a.Cb {
		if a.Cb[i] != b.Cb[i] {
			return false
		}
	}
	for i := range a.Cr {
		if a.Cr[i] != b.Cr[i] {
			return false
		}
	}
	return true
}

package h264

import (
	"affectedge/internal/power"
)

// Power-model components of the decoder (Fig 5 blocks).
const (
	CompParser  power.Component = "parser"  // bitstream parser + headers
	CompCAVLC   power.Component = "cavlc"   // entropy decoding
	CompIQIT    power.Component = "iqit"    // inverse quant + transform
	CompIntra   power.Component = "intra"   // intra prediction
	CompInter   power.Component = "inter"   // motion compensation
	CompDeblock power.Component = "deblock" // in-loop deblocking filter
	CompBuffer  power.Component = "buffer"  // circular + pre-store traffic
	CompMemory  power.Component = "memory"  // decoded MB memory / references
)

// EnergyModel maps decoder activity to per-component energy. Units are
// arbitrary; only ratios matter. The default constants are calibrated so
// the standard-mode breakdown matches the paper's silicon: the deblocking
// filter accounts for ~31.4% of decoder power, and NAL deletion at
// S_th=140/f=1 removes ~10.6% (Fig 6 middle).
type EnergyModel struct {
	PerHeaderBit    float64
	PerResidualBit  float64
	PerIQITBlock    float64
	PerIntraBlock   float64
	PerInterBlock   float64
	PerDFConsidered float64 // per edge segment: boundary-strength logic
	PerDFEdge       float64 // per bS>0 segment: threshold evaluation
	PerDFSample     float64 // per sample filtered
	PerBufferByte   float64
	PerOutputByte   float64 // decoded MB memory write per luma byte
}

// DefaultEnergyModel returns the calibrated constants.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		PerHeaderBit:    2,
		PerResidualBit:  4,
		PerIQITBlock:    8,
		PerIntraBlock:   10,
		PerInterBlock:   5,
		PerDFConsidered: 5.85,
		PerDFEdge:       0.73,
		PerDFSample:     0.37,
		PerBufferByte:   1,
		PerOutputByte:   1.2,
	}
}

// Charge converts an activity record into a component energy ledger.
func (m EnergyModel) Charge(a Activity, frameLumaBytes int) *power.Ledger {
	l := power.NewLedger()
	l.MustAdd(CompParser, m.PerHeaderBit*float64(a.HeaderBits))
	l.MustAdd(CompCAVLC, m.PerResidualBit*float64(a.ResidualBits))
	l.MustAdd(CompIQIT, m.PerIQITBlock*float64(a.BlocksIQIT))
	l.MustAdd(CompIntra, m.PerIntraBlock*float64(a.IntraBlocks))
	l.MustAdd(CompInter, m.PerInterBlock*float64(a.InterBlocks))
	l.MustAdd(CompDeblock, m.PerDFConsidered*float64(a.DF.edgesConsidered)+
		m.PerDFEdge*float64(a.DF.edgesExamined)+m.PerDFSample*float64(a.DF.samplesTouch))
	l.MustAdd(CompBuffer, m.PerBufferByte*float64(a.BufferBytes))
	l.MustAdd(CompMemory, m.PerOutputByte*float64((a.FramesOut-a.Concealed)*frameLumaBytes))
	return l
}

// ModeReport is one row of the Fig 6 power comparison.
type ModeReport struct {
	Mode       DecoderMode
	Energy     float64
	NormPower  float64 // energy normalized to the standard mode
	SavingPct  float64 // 100 * (1 - NormPower)
	PSNR       float64 // mean luma PSNR vs the source sequence
	Deleted    int     // NAL units deleted
	DeletedPct float64 // percent of slice units deleted
}

// CompareModes encodes src once and decodes it in every mode, returning
// per-mode energy, savings, and quality. It reproduces Fig 6 (middle).
func CompareModes(src []*Frame, enc EncoderConfig, model EnergyModel) ([]ModeReport, error) {
	encoder, err := NewEncoder(enc)
	if err != nil {
		return nil, err
	}
	stream, units, err := encoder.EncodeSequence(src)
	if err != nil {
		return nil, err
	}
	var sliceUnits int
	for _, u := range units {
		if u.Type == NALSliceIDR || u.Type == NALSliceNonIDR {
			sliceUnits++
		}
	}
	lumaBytes := enc.Width * enc.Height
	// The four modes decode independent pipelines; MeasureModes fans them
	// out over the shared bounded worker pool (order-preserving, so the
	// report order is the Modes() order at any worker count). Scoring is
	// cheap relative to decoding and stays serial.
	modes := Modes()
	results, err := MeasureModes(stream, modes)
	if err != nil {
		return nil, err
	}
	reports := make([]ModeReport, len(modes))
	for i, res := range results {
		ledger := model.Charge(res.Activity, lumaBytes)
		psnr, err := MeanPSNR(src, res.Frames)
		if err != nil {
			return nil, err
		}
		reports[i] = ModeReport{
			Mode:    modes[i],
			Energy:  ledger.Total(),
			PSNR:    psnr,
			Deleted: res.Selector.UnitsDeleted,
		}
		if sliceUnits > 0 {
			reports[i].DeletedPct = 100 * float64(res.Selector.UnitsDeleted) / float64(sliceUnits)
		}
	}
	var baseline float64
	for _, r := range reports {
		if r.Mode == ModeStandard {
			baseline = r.Energy
		}
	}
	for i := range reports {
		if baseline > 0 {
			reports[i].NormPower = reports[i].Energy / baseline
			reports[i].SavingPct = 100 * (1 - reports[i].NormPower)
		}
	}
	return reports, nil
}

// CalibrationVideoConfig defines the reference workload for the Fig 6
// power study: a QCIF screen-content-like sequence (static background,
// several moving objects with periodic pauses) whose B-frame size
// distribution straddles S_th=140 the way the paper's visual-search video
// does.
func CalibrationVideoConfig(frames int) VideoConfig {
	cfg := DefaultVideoConfig(frames)
	cfg.Width, cfg.Height = 176, 144
	cfg.PanSpeed = 0 // screen content: static background
	cfg.MotionSpeed = 2.0
	cfg.Detail = 0.55
	cfg.Noise = 0.8
	cfg.MoveFrames, cfg.PauseFrames = 9, 3
	cfg.Objects = 5
	return cfg
}

// CalibrationEncoderConfig matches the paper's low-power operating point.
func CalibrationEncoderConfig() EncoderConfig {
	return EncoderConfig{
		Width: 176, Height: 144,
		QP:           34,
		IntraPeriod:  12,
		BFrames:      2,
		SearchWindow: 3,
	}
}

package h264

import "fmt"

// CircularBuffer models the decoder's 128-bit-wide input FIFO. Capacity is
// in bytes; transfers happen in 16-byte words and are counted for the
// memory-traffic component of the power model.
type CircularBuffer struct {
	capacity int
	data     []byte
	// BytesIn / BytesOut count total traffic through the buffer.
	BytesIn, BytesOut int
	// Stalls counts write attempts rejected because the buffer was full.
	Stalls int
}

// WordBytes is the transfer granularity: 128 bits.
const WordBytes = 16

// NewCircularBuffer returns a buffer of the given byte capacity (rounded
// up to a whole word, minimum one word).
func NewCircularBuffer(capacity int) *CircularBuffer {
	if capacity < WordBytes {
		capacity = WordBytes
	}
	if rem := capacity % WordBytes; rem != 0 {
		capacity += WordBytes - rem
	}
	return &CircularBuffer{capacity: capacity}
}

// Free returns the remaining capacity in bytes.
func (b *CircularBuffer) Free() int { return b.capacity - len(b.data) }

// Len returns the buffered byte count.
func (b *CircularBuffer) Len() int { return len(b.data) }

// Write appends p if it fits, otherwise records a stall and reports false.
func (b *CircularBuffer) Write(p []byte) bool {
	if len(p) > b.Free() {
		b.Stalls++
		return false
	}
	b.data = append(b.data, p...)
	b.BytesIn += len(p)
	return true
}

// Read removes and returns up to n buffered bytes.
func (b *CircularBuffer) Read(n int) []byte {
	if n > len(b.data) {
		n = len(b.data)
	}
	out := make([]byte, n)
	copy(out, b.data[:n])
	b.data = b.data[n:]
	b.BytesOut += n
	return out
}

// PreStoreBuffer models the 128 x 16-bit buffer inserted ahead of the
// circular buffer for emotion adaptation (Fig 5). The Input Selector
// writes (possibly rewinding over a deleted NAL unit); the circular buffer
// fetches under a ready/valid handshake.
type PreStoreBuffer struct {
	capacity int
	data     []byte
	// Traffic counters for the power model and the 4.23% area-overhead
	// accounting.
	BytesIn, BytesOut int
	Rewinds           int
	// HighWater is the peak occupancy in bytes — how much of the 128x16-bit
	// buffer the workload actually needed (a sizing signal for the
	// hardware's area/power trade).
	HighWater int
}

// PreStoreCapacity is 128 entries x 16 bits = 256 bytes.
const PreStoreCapacity = 128 * 2

// NewPreStoreBuffer returns the fixed-size pre-store buffer.
func NewPreStoreBuffer() *PreStoreBuffer { return &PreStoreBuffer{capacity: PreStoreCapacity} }

// Free returns remaining capacity in bytes.
func (b *PreStoreBuffer) Free() int { return b.capacity - len(b.data) }

// Len returns the buffered byte count.
func (b *PreStoreBuffer) Len() int { return len(b.data) }

// Write appends p, reporting false (no side effects) when it does not fit.
func (b *PreStoreBuffer) Write(p []byte) bool {
	if len(p) > b.Free() {
		return false
	}
	b.data = append(b.data, p...)
	b.BytesIn += len(p)
	if len(b.data) > b.HighWater {
		b.HighWater = len(b.data)
	}
	return true
}

// Rewind discards the most recent n written-but-unread bytes; the Input
// Selector uses it to overwrite a NAL unit it has decided to delete by
// stepping the write address back.
func (b *PreStoreBuffer) Rewind(n int) error {
	if n < 0 || n > len(b.data) {
		return fmt.Errorf("h264: prestore rewind %d with %d buffered", n, len(b.data))
	}
	b.data = b.data[:len(b.data)-n]
	b.BytesIn -= n
	b.Rewinds++
	return nil
}

// Drain moves as many whole words as possible (plus a final partial word
// when flush is set) into the circular buffer, honoring the handshake:
// words move only when the circular buffer has space.
func (b *PreStoreBuffer) Drain(cb *CircularBuffer, flush bool) {
	for len(b.data) >= WordBytes && cb.Free() >= WordBytes {
		if !cb.Write(b.data[:WordBytes]) {
			return
		}
		b.data = b.data[WordBytes:]
		b.BytesOut += WordBytes
	}
	if flush && len(b.data) > 0 && cb.Free() >= len(b.data) {
		n := len(b.data)
		if cb.Write(b.data) {
			b.data = nil
			b.BytesOut += n
		}
	}
}

package h264

import "fmt"

// Timing model: the paper's decoder is 65-nm silicon at 28 MHz / 1.2 V.
// This file maps decode activity to cycle counts, checks real-time
// feasibility at a given frame rate, and models the voltage/frequency
// scaling headroom the affect-driven modes unlock (an extension beyond
// the paper's clock-gating-style savings: when a mode needs fewer cycles
// per frame, the clock — and with it the supply voltage — can drop).
type CycleModel struct {
	PerHeaderBit    float64
	PerResidualBit  float64
	PerIQITBlock    float64
	PerPredBlock    float64
	PerDFConsidered float64
	PerDFSample     float64
	PerBufferWord   float64
}

// DefaultCycleModel returns per-activity cycle costs representative of a
// low-power ASIC pipeline (entropy decoding serial, transforms and
// prediction pipelined 4x4 blocks).
func DefaultCycleModel() CycleModel {
	return CycleModel{
		PerHeaderBit:    1,
		PerResidualBit:  1, // CAVLC decodes about one bit per cycle
		PerIQITBlock:    20,
		PerPredBlock:    18,
		PerDFConsidered: 6,
		PerDFSample:     2,
		PerBufferWord:   1,
	}
}

// PaperClockHz and PaperSupplyVolts are the paper's operating point.
const (
	PaperClockHz     = 28e6
	PaperSupplyVolts = 1.2
)

// Cycles converts an activity record to total decode cycles.
func (m CycleModel) Cycles(a Activity) float64 {
	return m.PerHeaderBit*float64(a.HeaderBits) +
		m.PerResidualBit*float64(a.ResidualBits) +
		m.PerIQITBlock*float64(a.BlocksIQIT) +
		m.PerPredBlock*float64(a.IntraBlocks+a.InterBlocks) +
		m.PerDFConsidered*float64(a.DF.edgesConsidered) +
		m.PerDFSample*float64(a.DF.samplesTouch) +
		m.PerBufferWord*float64(a.BufferBytes)/WordBytes
}

// TimingReport summarizes real-time feasibility of one decode run.
type TimingReport struct {
	Cycles         float64
	CyclesPerFrame float64
	// MinClockHz is the slowest clock that still meets the frame rate.
	MinClockHz float64
	// Utilization at the paper's 28 MHz clock (<= 1 means real-time).
	Utilization float64
	RealTime    bool
}

// Timing evaluates a decode run against a target frame rate at the
// paper's clock.
func (m CycleModel) Timing(a Activity, fps float64) (TimingReport, error) {
	if fps <= 0 {
		return TimingReport{}, fmt.Errorf("h264: fps %g must be positive", fps)
	}
	if a.FramesOut == 0 {
		return TimingReport{}, fmt.Errorf("h264: no frames decoded")
	}
	cycles := m.Cycles(a)
	perFrame := cycles / float64(a.FramesOut)
	minClock := perFrame * fps
	return TimingReport{
		Cycles:         cycles,
		CyclesPerFrame: perFrame,
		MinClockHz:     minClock,
		Utilization:    minClock / PaperClockHz,
		RealTime:       minClock <= PaperClockHz,
	}, nil
}

// DVFSEnergy models the additional saving from dynamic voltage/frequency
// scaling: run each mode at its minimum real-time clock with supply
// voltage scaled linearly from the paper's point (V = V0 * f/f0, floored
// at half supply), dynamic energy per cycle proportional to V^2.
// It returns the energy of the run relative to executing the same cycles
// at the full 28 MHz / 1.2 V point.
func (m CycleModel) DVFSEnergy(a Activity, fps float64) (relative float64, volts float64, err error) {
	rep, err := m.Timing(a, fps)
	if err != nil {
		return 0, 0, err
	}
	f := rep.MinClockHz
	if f > PaperClockHz {
		f = PaperClockHz // cannot overclock; misses real time instead
	}
	v := PaperSupplyVolts * f / PaperClockHz
	if vMin := PaperSupplyVolts / 2; v < vMin {
		v = vMin
	}
	// Energy = cycles * C * V^2; relative to V0^2 at the same cycle count.
	return (v * v) / (PaperSupplyVolts * PaperSupplyVolts), v, nil
}

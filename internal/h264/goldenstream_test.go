package h264

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// Golden bitstream hashes: byte-exactness locks on the *encoded* stream and
// on the selector-filtered stream of every operating mode. The decoded-frame
// fingerprints in the repo root pin the decoder's arithmetic; these pin the
// encoder/writer side, so a bitstream-layer change (e.g. the word-level
// BitWriter) cannot silently move bits even when it decodes to the same
// pixels. Values were recorded from the scalar bit-at-a-time writer and must
// never change. Regenerate (only for an intentional format change) with:
//
//	go test -run TestGoldenBitstreams -v ./internal/h264/
const goldenCalibrationStream = "ac99ce19bc24199d7b20394f4edb5331df23cdd66ac93a5e038ebfde357faecb"

var goldenModeStreams = [NumModes]string{
	ModeStandard: "ac99ce19bc24199d7b20394f4edb5331df23cdd66ac93a5e038ebfde357faecb",
	ModeDeletion: "9906fd75a3a311118600cddc33d8560ae624e08238bdb14b90f27faf23ad3519",
	ModeDFOff:    "ac99ce19bc24199d7b20394f4edb5331df23cdd66ac93a5e038ebfde357faecb",
	ModeCombined: "9906fd75a3a311118600cddc33d8560ae624e08238bdb14b90f27faf23ad3519",
}

func TestGoldenBitstreams(t *testing.T) {
	src, err := GenerateVideo(CalibrationVideoConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(CalibrationEncoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, units, err := enc.EncodeSequence(src)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%x", sha256.Sum256(stream))
	t.Logf("encoded stream sha256 %s", got)
	if got != goldenCalibrationStream {
		t.Errorf("encoded bitstream changed:\n  got  %s\n  want %s", got, goldenCalibrationStream)
	}
	for m := 0; m < NumModes; m++ {
		mode := DecoderMode(m)
		kept, _ := ApplySelector(units, mode.Selector())
		ks, err := MarshalStream(kept)
		if err != nil {
			t.Fatal(err)
		}
		gotM := fmt.Sprintf("%x", sha256.Sum256(ks))
		t.Logf("mode %s stream sha256 %s", mode, gotM)
		if gotM != goldenModeStreams[m] {
			t.Errorf("mode %s selector stream changed:\n  got  %s\n  want %s", mode, gotM, goldenModeStreams[m])
		}
	}
}

package h264

import (
	"bytes"
	"math/rand"
	"testing"

	"affectedge/internal/simd"
)

// Differential tests pinning the vectorized pixel kernels (sadBlock's
// PSADBW interior path, the deblocking filter's precomputed edge masks)
// against the verbatim historical implementations in pixel_ref.go, with
// the vector backend both enabled and force-disabled.

func withBothDispatch(t *testing.T, fn func(t *testing.T, enabled bool)) {
	t.Helper()
	prev := simd.Enabled()
	defer simd.SetEnabled(prev)
	if simd.Available() {
		simd.SetEnabled(true)
		fn(t, true)
	}
	simd.SetEnabled(false)
	fn(t, false)
}

func randFrame(rng *rand.Rand, w, h int) *Frame {
	f, err := NewFrame(w, h)
	if err != nil {
		panic(err)
	}
	for i := range f.Y {
		f.Y[i] = uint8(rng.Intn(256))
	}
	for i := range f.Cb {
		f.Cb[i] = uint8(rng.Intn(256))
	}
	for i := range f.Cr {
		f.Cr[i] = uint8(rng.Intn(256))
	}
	return f
}

// flattenFrame copies src and quantizes luma towards a plateau so that
// neighboring samples differ by little — the regime where the deblock
// thresholds actually pass and the filter taps run.
func flattenFrame(src *Frame, base, spread uint8) *Frame {
	f := src.Clone()
	for i, v := range f.Y {
		f.Y[i] = base + v%spread
	}
	return f
}

func TestSADBlockMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	orig := randFrame(rng, 48, 32)
	ref := randFrame(rng, 48, 32)
	mvs := []MV{
		{0, 0}, {1, 0}, {0, 1}, {-1, -1}, {3, -2},
		{-5, 7}, {16, 16}, {-48, 0}, {0, -32}, {100, 100}, {-100, -100},
	}
	withBothDispatch(t, func(t *testing.T, on bool) {
		for by := 0; by < orig.Height; by += 4 {
			for bx := 0; bx < orig.Width; bx += 4 {
				for _, mv := range mvs {
					got := sadBlock(orig, ref, bx, by, mv)
					want := sadBlockRef(orig, ref, bx, by, mv)
					if got != want {
						t.Fatalf("enabled=%v block (%d,%d) mv %+v: sad %d want %d",
							on, bx, by, mv, got, want)
					}
				}
			}
		}
	})
}

func randMBs(rng *rand.Rand, n int) []mbInfo {
	mbs := make([]mbInfo, n)
	for i := range mbs {
		mbs[i] = mbInfo{
			intra: rng.Intn(3) == 0,
			coded: rng.Intn(2) == 0,
			mv:    MV{X: rng.Intn(9) - 4, Y: rng.Intn(9) - 4},
		}
	}
	return mbs
}

func checkDeblockMatchesRef(t *testing.T, ctx string, f *Frame, mbs []mbInfo, qp int) {
	t.Helper()
	got := f.Clone()
	want := f.Clone()
	gotStats := DeblockFrame(got, mbs, qp)
	wantStats := deblockFrameRef(want, mbs, qp)
	if gotStats != wantStats {
		t.Fatalf("%s qp=%d: stats %+v want %+v", ctx, qp, gotStats, wantStats)
	}
	if !bytes.Equal(got.Y, want.Y) {
		for i := range got.Y {
			if got.Y[i] != want.Y[i] {
				t.Fatalf("%s qp=%d: Y[%d]=%d want %d (x=%d y=%d)",
					ctx, qp, i, got.Y[i], want.Y[i], i%f.Width, i/f.Width)
			}
		}
	}
}

func TestDeblockFrameMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	qps := []int{0, 10, 15, 16, 20, 28, 36, 44, 51}
	withBothDispatch(t, func(t *testing.T, on bool) {
		for trial := 0; trial < 6; trial++ {
			w := 16 * (1 + rng.Intn(3))
			h := 16 * (1 + rng.Intn(3))
			noisy := randFrame(rng, w, h)
			flat := flattenFrame(noisy, 100, uint8(2+rng.Intn(30)))
			mbs := randMBs(rng, (w/16)*(h/16))
			for _, qp := range qps {
				checkDeblockMatchesRef(t, "noisy", noisy, mbs, qp)
				checkDeblockMatchesRef(t, "flat", flat, mbs, qp)
			}
		}
	})
}

// FuzzSADDiff drives both pixel kernels against the references over
// fuzz-chosen frame contents, block positions, motion vectors, and QPs,
// at both dispatch settings — including misaligned rows, saturated
// differences, and edge/exterior motion that exercises sadBlock's
// clamped fallback alongside the packed interior path.
func FuzzSADDiff(f *testing.F) {
	f.Add([]byte{0, 255, 128, 7}, uint8(0), uint8(0), int8(0), int8(0), uint8(28))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(4), uint8(8), int8(-3), int8(5), uint8(51))
	f.Add([]byte{0x42}, uint8(12), uint8(12), int8(127), int8(-128), uint8(10))
	f.Add(bytes.Repeat([]byte{100, 101, 103, 99}, 16), uint8(7), uint8(3), int8(1), int8(0), uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, bxr, byr uint8, mvx, mvy int8, qpr uint8) {
		if len(data) == 0 {
			return
		}
		const w, h = 32, 32
		orig, _ := NewFrame(w, h)
		ref, _ := NewFrame(w, h)
		for i := range orig.Y {
			orig.Y[i] = data[i%len(data)]
			ref.Y[i] = data[(i*7+3)%len(data)]
		}
		bx := int(bxr) % (w - 3)
		by := int(byr) % (h - 3)
		mv := MV{X: int(mvx), Y: int(mvy)}
		qp := int(qpr) % 52
		mbs := make([]mbInfo, (w/16)*(h/16))
		for i := range mbs {
			b := data[i%len(data)]
			mbs[i] = mbInfo{
				intra: b&1 != 0,
				coded: b&2 != 0,
				mv:    MV{X: int(b>>2) - 16, Y: int(b>>4) - 8},
			}
		}

		prev := simd.Enabled()
		defer simd.SetEnabled(prev)
		settings := []bool{false}
		if simd.Available() {
			settings = []bool{true, false}
		}
		for _, on := range settings {
			simd.SetEnabled(on)
			got := sadBlock(orig, ref, bx, by, mv)
			want := sadBlockRef(orig, ref, bx, by, mv)
			if got != want {
				t.Fatalf("enabled=%v sad (%d,%d) mv %+v: %d want %d", on, bx, by, mv, got, want)
			}
			checkDeblockMatchesRef(t, "fuzz", orig, mbs, qp)
		}
	})
}

package dsp

import (
	"math"
	"testing"
)

// benchSignal synthesizes a deterministic 1-second harmonic test signal at
// 8 kHz, shaped like a voiced utterance so every feature path does real
// work (non-zero pitch, energy, crossings).
func benchSignal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / 8000
		x[i] = 0.6*math.Sin(2*math.Pi*180*t) +
			0.25*math.Sin(2*math.Pi*360*t) +
			0.1*math.Sin(2*math.Pi*540*t+0.5)
	}
	return x
}

// BenchmarkFFT measures the radix-2 FFT on a 256-point frame, the size the
// MFCC pipeline transforms for every analysis frame.
func BenchmarkFFT(b *testing.B) {
	src := make([]complex128, 256)
	for i := range src {
		src[i] = complex(math.Sin(float64(i)*0.1), 0)
	}
	buf := make([]complex128, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerSpectrum measures the per-frame periodogram used by MFCC
// and the spectrogram path (FFT + magnitude + scaling, including scratch
// management).
func BenchmarkPowerSpectrum(b *testing.B) {
	x := benchSignal(200) // 25 ms at 8 kHz -> 256-point FFT
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := PowerSpectrum(x); len(ps) == 0 {
			b.Fatal("empty power spectrum")
		}
	}
}

// BenchmarkPowerSpectrumInto measures the buffer-reusing periodogram
// batch callers amortize: steady state must be allocation-free.
func BenchmarkPowerSpectrumInto(b *testing.B) {
	x := benchSignal(200)
	dst := make([]float64, NextPow2(len(x))/2+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := PowerSpectrumInto(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFCC measures the full cepstral pipeline over a one-second
// clip: pre-emphasis, framing, windowing, FFT, mel filterbank, DCT.
func BenchmarkMFCC(b *testing.B) {
	x := benchSignal(8000)
	cfg := DefaultMFCCConfig(8000)
	cfg.IncludeDelta = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := MFCC(x, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no MFCC frames")
		}
	}
}

// BenchmarkMelFilterBank measures filterbank construction, the setup cost
// the MFCC hot path must not pay per clip.
func BenchmarkMelFilterBank(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MelFilterBank(26, 256, 8000, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

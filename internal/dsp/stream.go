package dsp

import (
	"fmt"

	"affectedge/internal/simd"
)

// MFCCStream is the incremental twin of MFCC: it accepts a waveform as
// arbitrary-size sample chunks, maintains a hop-sized sliding window over
// a fixed ring, and emits each frame's cepstral row as soon as the frame
// completes. Peak retained samples are FrameLen+Hop+2 regardless of
// stream length — the constant-memory property the streaming ingest paths
// are built on — and the per-frame math is the same pooled, SIMD-
// dispatched kernel chain MFCC runs, so for any chunking of a signal the
// emitted rows are bit-identical (math.Float64bits) to MFCC of the whole
// buffer:
//
//   - Pre-emphasis (y[i] = x[i] - c*x[i-1]) is strictly elementwise with
//     mul-then-sub rounding in both the AVX and scalar bodies, so
//     recomputing a frame's slice of it from the ring (with one carried
//     predecessor sample) reproduces the whole-signal filter exactly.
//   - Framing copies the ring window into the same zero-padded frame
//     buffer shape EachFrame uses, and the window/power-spectrum/mel/DCT
//     chain is mfccFrameInto — shared verbatim with MFCC.
//   - Delta rows lag emission by one frame: frame i's deltas need frame
//     i+1, so row i is emitted when frame i+1 completes, and Flush emits
//     the final row with the same zero-delta boundary fillDeltas applies.
//
// A frame is "complete" the moment a sample *past* its end arrives; Flush
// then emits exactly the one trailing (zero-padded) frame the whole-buffer
// path produces. Not safe for concurrent use.
type MFCCStream struct {
	cfg    MFCCConfig
	bank   *melBank
	window []float64
	nfft   int

	onFrame func(i int, row []float64)
	tap     func(i int, frame []float64)

	// Ring of raw samples, addressed by absolute sample position. lo is
	// the oldest retained position, hi the count received so far.
	ring   []float64
	lo, hi int
	peak   int // high-water hi-lo

	next   int // start position of the next frame to compute
	frames int // frames computed so far

	// Per-frame scratch. rawx holds x[s-1 .. s+FrameLen] (one predecessor
	// sample for pre-emphasis, then the zero-padded frame); frameBuf holds
	// the pre-emphasized frame and is windowed in place; coef is a
	// three-deep rotation of coefficient rows for the delta lag; emit is
	// the row handed to onFrame (reused every frame).
	rawx     []float64
	frameBuf []float64
	ps       []float64
	energies []float64
	coef     [3][]float64
	emit     []float64

	flushed bool
}

// NewMFCCStream builds a streaming extractor for cfg. onFrame receives
// each frame index and its feature row (NumCoeffs values, or 2*NumCoeffs
// with IncludeDelta); the row slice is reused across frames, so callers
// keep a copy, not the slice. Configuration errors match MFCC's.
func NewMFCCStream(cfg MFCCConfig, onFrame func(i int, row []float64)) (*MFCCStream, error) {
	if cfg.FrameLen <= 0 || cfg.Hop <= 0 {
		return nil, fmt.Errorf("dsp: MFCC frame params invalid (len=%d hop=%d)", cfg.FrameLen, cfg.Hop)
	}
	if cfg.NumCoeffs <= 0 || cfg.NumCoeffs > cfg.NumFilters {
		return nil, fmt.Errorf("dsp: MFCC wants %d coeffs from %d filters", cfg.NumCoeffs, cfg.NumFilters)
	}
	if onFrame == nil {
		return nil, fmt.Errorf("dsp: MFCCStream needs an onFrame sink")
	}
	nfft := NextPow2(cfg.FrameLen)
	bank, err := melFilterBankCached(cfg.NumFilters, nfft, cfg.SampleRate, cfg.LowHz, cfg.HighHz)
	if err != nil {
		return nil, err
	}
	rowWidth := cfg.NumCoeffs
	if cfg.IncludeDelta {
		rowWidth = 2 * cfg.NumCoeffs
	}
	s := &MFCCStream{
		cfg:      cfg,
		bank:     bank,
		window:   hammingWindowCached(cfg.FrameLen),
		nfft:     nfft,
		onFrame:  onFrame,
		ring:     make([]float64, cfg.FrameLen+cfg.Hop+2),
		rawx:     make([]float64, cfg.FrameLen+1),
		frameBuf: make([]float64, cfg.FrameLen),
		ps:       make([]float64, nfft/2+1),
		energies: make([]float64, cfg.NumFilters),
		emit:     make([]float64, rowWidth),
	}
	for i := range s.coef {
		s.coef[i] = make([]float64, cfg.NumCoeffs)
	}
	return s, nil
}

// SetFrameTap registers an optional hook that receives every zero-padded
// raw analysis frame (pre-window, pre-emphasis-free) in frame order, at
// frame-completion time — the co-framed signal the per-frame scalar
// features (ZCR, RMS, pitch, centroid, histogram) are computed over. The
// slice is scratch, valid only during the call. Must be set before the
// first Push.
func (s *MFCCStream) SetFrameTap(fn func(i int, frame []float64)) { s.tap = fn }

// Frames returns the number of frames computed so far.
func (s *MFCCStream) Frames() int { return s.frames }

// PeakWindow returns the high-water count of retained samples — bounded
// by FrameLen+Hop+2 whatever the stream length or chunking.
func (s *MFCCStream) PeakWindow() int { return s.peak }

// Reset clears stream state so the extractor can run another clip with
// the same configuration and zero further allocation.
func (s *MFCCStream) Reset() {
	s.lo, s.hi, s.peak, s.next, s.frames = 0, 0, 0, 0, 0
	s.flushed = false
}

// Push feeds a chunk of samples, emitting every frame it completes.
func (s *MFCCStream) Push(chunk []float64) error {
	if s.flushed {
		return fmt.Errorf("dsp: MFCCStream push after Flush")
	}
	for len(chunk) > 0 {
		space := len(s.ring) - (s.hi - s.lo)
		n := len(chunk)
		if n > space {
			n = space
		}
		// Append n samples at ring positions [hi, hi+n).
		at := s.hi % len(s.ring)
		first := copy(s.ring[at:], chunk[:n])
		if first < n {
			copy(s.ring, chunk[first:n])
		}
		s.hi += n
		chunk = chunk[n:]
		if w := s.hi - s.lo; w > s.peak {
			s.peak = w
		}
		// A frame is complete once a sample past its end exists; emitting
		// trims the ring, guaranteeing progress for the next iteration.
		for s.next+s.cfg.FrameLen < s.hi {
			s.frame(s.next, s.cfg.FrameLen)
			s.next += s.cfg.Hop
			s.trim()
		}
		s.trim()
	}
	return nil
}

// Flush ends the stream: it emits the trailing zero-padded frame (the one
// whole-buffer framing stops at) and, with IncludeDelta, the delta-lagged
// final row. Errors on an empty stream, mirroring MFCC.
func (s *MFCCStream) Flush() error {
	if s.flushed {
		return fmt.Errorf("dsp: MFCCStream double Flush")
	}
	s.flushed = true
	if s.hi == 0 {
		return fmt.Errorf("dsp: MFCC of empty signal")
	}
	if s.next < s.hi {
		valid := s.hi - s.next
		if valid > s.cfg.FrameLen {
			valid = s.cfg.FrameLen
		}
		s.frame(s.next, valid)
	}
	if s.cfg.IncludeDelta && s.frames > 0 {
		s.emitRow(s.frames-1, nil)
	}
	return nil
}

// trim drops ring samples no longer reachable: everything before the next
// frame's predecessor sample (kept for pre-emphasis).
func (s *MFCCStream) trim() {
	keep := s.next - 1
	if keep > s.hi {
		keep = s.hi
	}
	if keep > s.lo {
		s.lo = keep
	}
}

// frame computes frame index s.frames starting at absolute sample
// position at, with valid samples present (the rest zero-padded), and
// emits whatever row the delta lag allows.
func (s *MFCCStream) frame(at, valid int) {
	fl := s.cfg.FrameLen
	// Materialize x[at-1 .. at+valid) into rawx[0 .. 1+valid), zero-pad
	// the rest. rawx[0] (the pre-emphasis predecessor) is garbage for
	// at == 0 and never read in that case.
	from := at - 1
	if from < 0 {
		from = 0
		s.rawx[0] = 0
	}
	// Copy positions [from, at+valid) out of the ring, two segments. All of
	// them are retained: trim keeps next-1 onward, and valid never reaches
	// past hi.
	off := 1 - (at - from) // rawx index of position `from`
	n := at + valid - from
	idx := from % len(s.ring)
	first := copy(s.rawx[off:off+n], s.ring[idx:])
	if first < n {
		copy(s.rawx[off+first:off+n], s.ring[:n-first])
	}
	for i := 1 + valid; i < len(s.rawx); i++ {
		s.rawx[i] = 0
	}
	raw := s.rawx[1 : 1+fl]
	if s.tap != nil {
		s.tap(s.frames, raw)
	}
	// Pre-emphasized frame into frameBuf (zero padding stays zero: the
	// whole-buffer path pads *after* filtering).
	c := s.cfg.PreEmphasis
	switch {
	case c <= 0:
		copy(s.frameBuf, raw)
	case at == 0:
		s.frameBuf[0] = s.rawx[1]
		if valid > 1 {
			simd.SubScaled(s.frameBuf[1:valid], s.rawx[2:1+valid], s.rawx[1:valid], c)
		}
		for i := valid; i < fl; i++ {
			s.frameBuf[i] = 0
		}
	default:
		simd.SubScaled(s.frameBuf[:valid], s.rawx[1:1+valid], s.rawx[0:valid], c)
		for i := valid; i < fl; i++ {
			s.frameBuf[i] = 0
		}
	}
	cur := s.coef[s.frames%3]
	mfccFrameInto(cur, s.frameBuf, s.window, s.bank, s.ps, s.energies, s.nfft)
	if !s.cfg.IncludeDelta {
		copy(s.emit, cur)
		s.onFrame(s.frames, s.emit)
	} else if s.frames >= 1 {
		s.emitRow(s.frames-1, cur)
	}
	s.frames++
}

// emitRow delivers delta row i: coefficients from the rotation, deltas
// (next-prev)/2 against neighbors, zero at the boundaries — exactly
// fillDeltas. next is frame i+1's coefficients, nil at the final row.
func (s *MFCCStream) emitRow(i int, next []float64) {
	d := s.cfg.NumCoeffs
	copy(s.emit[:d], s.coef[i%3])
	if i == 0 || next == nil {
		for j := 0; j < d; j++ {
			s.emit[d+j] = 0
		}
	} else {
		prev := s.coef[(i-1)%3]
		for j := 0; j < d; j++ {
			s.emit[d+j] = (next[j] - prev[j]) / 2
		}
	}
	s.onFrame(i, s.emit)
}

package dsp

import (
	"math"
	"math/rand"
	"testing"

	"affectedge/internal/simd"
)

// streamConfigs spans the shapes that exercise every MFCCStream branch:
// delta on/off, pre-emphasis on/off, hop<frameLen, hop==frameLen and
// hop>frameLen (trailing-gap flush), non-pow2 frame lengths.
func streamConfigs() map[string]MFCCConfig {
	base := DefaultMFCCConfig(16000)
	withDelta := base
	withDelta.IncludeDelta = true
	noPre := base
	noPre.PreEmphasis = 0
	smallHop := MFCCConfig{SampleRate: 8000, FrameLen: 64, Hop: 16, NumFilters: 20, NumCoeffs: 10, PreEmphasis: 0.95, IncludeDelta: true}
	eqHop := MFCCConfig{SampleRate: 8000, FrameLen: 50, Hop: 50, NumFilters: 18, NumCoeffs: 9, PreEmphasis: 0.97}
	bigHop := MFCCConfig{SampleRate: 8000, FrameLen: 32, Hop: 48, NumFilters: 16, NumCoeffs: 8, PreEmphasis: 0.9, IncludeDelta: true}
	return map[string]MFCCConfig{
		"default": base, "delta": withDelta, "nopre": noPre,
		"smallhop": smallHop, "eqhop": eqHop, "bighop": bigHop,
	}
}

// collectStream runs x through an MFCCStream in the given chunk sizes and
// returns the emitted rows (copied) plus the stream for inspection.
func collectStream(t testing.TB, cfg MFCCConfig, x []float64, chunks []int) ([][]float64, *MFCCStream) {
	t.Helper()
	var rows [][]float64
	ms, err := NewMFCCStream(cfg, func(i int, row []float64) {
		if i != len(rows) {
			t.Fatalf("frame %d emitted out of order (have %d rows)", i, len(rows))
		}
		rows = append(rows, append([]float64(nil), row...))
	})
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	for _, n := range chunks {
		if n > len(x)-at {
			n = len(x) - at
		}
		if n <= 0 {
			break
		}
		if err := ms.Push(x[at : at+n]); err != nil {
			t.Fatal(err)
		}
		at += n
	}
	if at < len(x) {
		if err := ms.Push(x[at:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.Flush(); err != nil {
		t.Fatal(err)
	}
	return rows, ms
}

func rowsBitEqual(t *testing.T, want, got [][]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d streamed rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: row %d width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if math.Float64bits(want[i][j]) != math.Float64bits(got[i][j]) {
				t.Fatalf("%s: row %d col %d: streamed %v (%#x) != batch %v (%#x)",
					label, i, j, got[i][j], math.Float64bits(got[i][j]),
					want[i][j], math.Float64bits(want[i][j]))
			}
		}
	}
}

// TestMFCCStreamMatchesBatch checks bit-identity of streamed rows against
// whole-buffer MFCC across configs, signal lengths (including shorter than
// one frame and exact frame multiples) and chunkings, with SIMD both on
// and off.
func TestMFCCStreamMatchesBatch(t *testing.T) {
	defer simd.SetEnabled(simd.Available())
	for _, on := range []bool{true, false} {
		simd.SetEnabled(on && simd.Available())
		for name, cfg := range streamConfigs() {
			rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
			for _, n := range []int{1, 3, cfg.FrameLen - 1, cfg.FrameLen, cfg.FrameLen + 1,
				cfg.FrameLen + cfg.Hop, 3*cfg.Hop + cfg.FrameLen, 4000} {
				if n <= 0 {
					continue
				}
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				want, err := MFCC(x, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, chunks := range [][]int{{len(x)}, {1}, {7}, {cfg.Hop}, {3, 1, 250, 2, 100}} {
					// Repeat the pattern to cover the whole signal.
					var plan []int
					for covered := 0; covered < len(x); {
						for _, c := range chunks {
							plan = append(plan, c)
							covered += c
						}
					}
					got, ms := collectStream(t, cfg, x, plan)
					rowsBitEqual(t, want, got, name)
					if limit := cfg.FrameLen + cfg.Hop + 2; ms.PeakWindow() > limit {
						t.Fatalf("%s n=%d: peak window %d exceeds bound %d", name, n, ms.PeakWindow(), limit)
					}
				}
			}
		}
	}
}

// TestMFCCStreamReset reuses one stream for two clips and checks the
// second pass is still bit-identical and allocation-free state-wise.
func TestMFCCStreamReset(t *testing.T) {
	cfg := streamConfigs()["delta"]
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 2000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := MFCC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]float64
	ms, err := NewMFCCStream(cfg, func(_ int, row []float64) {
		rows = append(rows, append([]float64(nil), row...))
	})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		rows = rows[:0]
		for at := 0; at < len(x); at += 160 {
			end := at + 160
			if end > len(x) {
				end = len(x)
			}
			if err := ms.Push(x[at:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := ms.Flush(); err != nil {
			t.Fatal(err)
		}
		rowsBitEqual(t, want, rows, "reset pass")
		ms.Reset()
	}
}

// TestMFCCStreamErrors covers the lifecycle and config error paths.
func TestMFCCStreamErrors(t *testing.T) {
	cfg := DefaultMFCCConfig(16000)
	if _, err := NewMFCCStream(cfg, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
	bad := cfg
	bad.Hop = 0
	if _, err := NewMFCCStream(bad, func(int, []float64) {}); err == nil {
		t.Fatal("zero hop accepted")
	}
	bad = cfg
	bad.NumCoeffs = cfg.NumFilters + 1
	if _, err := NewMFCCStream(bad, func(int, []float64) {}); err == nil {
		t.Fatal("too many coeffs accepted")
	}
	ms, err := NewMFCCStream(cfg, func(int, []float64) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Flush(); err == nil {
		t.Fatal("empty-stream Flush succeeded; MFCC rejects empty signals")
	}
	if err := ms.Push([]float64{1}); err == nil {
		t.Fatal("Push after Flush accepted")
	}
	if err := ms.Flush(); err == nil {
		t.Fatal("double Flush accepted")
	}
	ms.Reset()
	if err := ms.Push([]float64{1, 2, 3}); err != nil {
		t.Fatalf("Push after Reset: %v", err)
	}
	if err := ms.Flush(); err != nil {
		t.Fatalf("Flush after Reset: %v", err)
	}
	if ms.Frames() != 1 {
		t.Fatalf("Frames() = %d, want 1", ms.Frames())
	}
}

// TestMFCCStreamFrameTap checks the raw-frame hook sees exactly the
// zero-padded frames EachFrame visits on the raw signal.
func TestMFCCStreamFrameTap(t *testing.T) {
	cfg := streamConfigs()["smallhop"]
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 777)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var want [][]float64
	EachFrame(x, cfg.FrameLen, cfg.Hop, func(_ int, f []float64) {
		want = append(want, append([]float64(nil), f...))
	})
	var got [][]float64
	ms, err := NewMFCCStream(cfg, func(int, []float64) {})
	if err != nil {
		t.Fatal(err)
	}
	ms.SetFrameTap(func(i int, f []float64) {
		if i != len(got) {
			t.Fatalf("tap frame %d out of order", i)
		}
		got = append(got, append([]float64(nil), f...))
	})
	for at := 0; at < len(x); at += 13 {
		end := at + 13
		if end > len(x) {
			end = len(x)
		}
		if err := ms.Push(x[at:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.Flush(); err != nil {
		t.Fatal(err)
	}
	rowsBitEqual(t, want, got, "frame tap")
}

// FuzzChunkSplitDiff feeds a fuzzer-chosen signal through MFCCStream with
// fuzzer-chosen chunk boundaries and requires bit-identity with the
// whole-buffer path at both SIMD settings. seed selects the config; splits
// bytes are decoded as successive chunk lengths.
func FuzzChunkSplitDiff(f *testing.F) {
	f.Add(uint8(0), 400, int64(1), []byte{7, 1, 255, 3})
	f.Add(uint8(1), 1000, int64(2), []byte{160})
	f.Add(uint8(2), 63, int64(3), []byte{1, 1, 1, 1, 1, 1})
	f.Add(uint8(3), 200, int64(4), []byte{0, 5, 0, 200})
	f.Add(uint8(4), 50, int64(5), []byte{49, 1})
	f.Add(uint8(5), 129, int64(6), []byte{64, 64, 64})
	f.Fuzz(func(t *testing.T, which uint8, n int, seed int64, splits []byte) {
		if n <= 0 || n > 1<<14 {
			t.Skip()
		}
		cfgs := []MFCCConfig{
			DefaultMFCCConfig(16000),
			{SampleRate: 16000, FrameLen: 400, Hop: 160, NumFilters: 26, NumCoeffs: 13, PreEmphasis: 0.97, IncludeDelta: true},
			{SampleRate: 8000, FrameLen: 64, Hop: 16, NumFilters: 20, NumCoeffs: 10, PreEmphasis: 0.95, IncludeDelta: true},
			{SampleRate: 8000, FrameLen: 50, Hop: 50, NumFilters: 18, NumCoeffs: 9, PreEmphasis: 0.97},
			{SampleRate: 8000, FrameLen: 32, Hop: 48, NumFilters: 16, NumCoeffs: 8, PreEmphasis: 0.9, IncludeDelta: true},
			{SampleRate: 16000, FrameLen: 256, Hop: 128, NumFilters: 24, NumCoeffs: 12},
		}
		cfg := cfgs[int(which)%len(cfgs)]
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var plan []int
		covered := 0
		for i := 0; covered < len(x); i++ {
			c := 1
			if len(splits) > 0 {
				c = int(splits[i%len(splits)])
				if c == 0 {
					c = 1
				}
			}
			plan = append(plan, c)
			covered += c
		}
		defer simd.SetEnabled(simd.Available())
		for _, on := range []bool{true, false} {
			simd.SetEnabled(on && simd.Available())
			want, err := MFCC(x, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, ms := collectStream(t, cfg, x, plan)
			rowsBitEqual(t, want, got, "fuzz")
			if limit := cfg.FrameLen + cfg.Hop + 2; ms.PeakWindow() > limit {
				t.Fatalf("peak window %d exceeds bound %d", ms.PeakWindow(), limit)
			}
		}
	})
}

// BenchmarkStreamFeatures measures steady-state streaming cost per chunk:
// after warm-up it must run allocation-free, holding the constant-memory
// claim (peak retained samples bounded by FrameLen+Hop+2).
func BenchmarkStreamFeatures(b *testing.B) {
	cfg := DefaultMFCCConfig(16000)
	cfg.IncludeDelta = true
	ms, err := NewMFCCStream(cfg, func(int, []float64) {})
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]float64, 160) // 10 ms at 16 kHz
	rng := rand.New(rand.NewSource(1))
	for i := range chunk {
		chunk[i] = rng.NormFloat64()
	}
	// Warm up caches (window, filterbank) outside the timed region.
	if err := ms.Push(chunk); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(chunk) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ms.Push(chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if limit := cfg.FrameLen + cfg.Hop + 2; ms.PeakWindow() > limit {
		b.Fatalf("peak window %d exceeds bound %d", ms.PeakWindow(), limit)
	}
}

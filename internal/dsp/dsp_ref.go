package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// Reference implementations of the DSP hot-path transforms, kept verbatim
// from before the simd-kernel rewrite (the bits_ref.go pattern from
// internal/h264): straightforward scalar code whose only job is to be
// obviously correct. The differential and fuzz tests drive the production
// paths against these oracles — with the vector backend both enabled and
// disabled — to pin the rewrite's bit-exactness claims. They are not used
// in production code paths.

// fftInPlaceRef is the historical in-line radix-2 DIT FFT.
func fftInPlaceRef(x []complex128, inverse bool) {
	n := len(x)
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// realFFTMagnitudeIntoRef is the historical magnitude-spectrum path.
func realFFTMagnitudeIntoRef(dst, x []float64, nfft int) {
	buf := make([]complex128, nfft)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlaceRef(buf, false)
	for k := range dst {
		dst[k] = cmplx.Abs(buf[k])
	}
}

// powerSpectrumIntoRef is the historical periodogram path.
func powerSpectrumIntoRef(dst, x []float64, nfft int) {
	realFFTMagnitudeIntoRef(dst, x, nfft)
	inv := 1 / float64(nfft)
	for i, m := range dst {
		dst[i] = m * m * inv
	}
}

// autocorrelationIntoRef is the historical per-lag accumulation.
func autocorrelationIntoRef(dst, x []float64) {
	n := len(x)
	inv := 1 / float64(n)
	for k := range dst {
		var s float64
		for i := 0; i+k < n; i++ {
			s += x[i] * x[i+k]
		}
		dst[k] = s * inv
	}
}

// dctIIIntoRef is the historical per-coefficient accumulation over the
// cached basis table.
func dctIIIntoRef(dst, x []float64) {
	t := dctIITableCached(len(x))
	for k := range dst {
		var sum float64
		row := t.cos[k]
		for i, v := range x {
			sum += v * row[i]
		}
		if k == 0 {
			dst[k] = t.s0 * sum
		} else {
			dst[k] = t.sk * sum
		}
	}
}

// dctIIRef is the historical exported DCTII: the orthonormal DCT-II with
// every cosine recomputed, the oracle for the cached-table equivalence.
func dctIIRef(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	s0 := math.Sqrt(1 / float64(n))
	sk := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(math.Pi*float64(k)*(2*float64(i)+1)/(2*float64(n)))
		}
		if k == 0 {
			out[k] = s0 * sum
		} else {
			out[k] = sk * sum
		}
	}
	return out
}

// preEmphasisIntoRef is the historical pre-emphasis loop.
func preEmphasisIntoRef(dst, x []float64, coeff float64) {
	dst[0] = x[0]
	for i := 1; i < len(x); i++ {
		dst[i] = x[i] - coeff*x[i-1]
	}
}

// applyWindowRef is the historical windowing loop.
func applyWindowRef(x, w []float64) {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		x[i] *= w[i]
	}
}

// melEnergiesRef accumulates the log filterbank energies the way the
// MFCC loop did before grouping: each filter over its own support only.
func melEnergiesRef(energies []float64, bank *melBank, ps []float64) {
	for m := range bank.rows {
		var e float64
		row := bank.rows[m]
		for k := bank.lo[m]; k < bank.hi[m]; k++ {
			e += row[k] * ps[k]
		}
		energies[m] = math.Log(math.Max(e, 1e-12))
	}
}

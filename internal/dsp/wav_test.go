package dsp

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWAVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*440*float64(i)/8000) * 0.8
		x[i] += 0.05 * rng.NormFloat64()
		if x[i] > 1 {
			x[i] = 1
		}
		if x[i] < -1 {
			x[i] = -1
		}
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, x, 8000); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44+2*len(x) {
		t.Errorf("WAV size %d, want %d", buf.Len(), 44+2*len(x))
	}
	back, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 {
		t.Errorf("rate %d", rate)
	}
	if len(back) != len(x) {
		t.Fatalf("length %d, want %d", len(back), len(x))
	}
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1.0/32767+1e-9 {
			t.Fatalf("sample %d: %g vs %g", i, back[i], x[i])
		}
	}
}

func TestWAVClipping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{5, -5, 0}, 8000); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 1 || back[1] < -1.001 || back[2] != 0 {
		t.Errorf("clipping wrong: %v", back)
	}
}

func TestWAVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{0}, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := ReadWAV(bytes.NewReader([]byte("not a wav file at all..."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := ReadWAV(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSpectrogramShape(t *testing.T) {
	x := make([]float64, 2000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 500 * float64(i) / 8000)
	}
	sg, err := Spectrogram(x, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg) == 0 {
		t.Fatal("no frames")
	}
	wantBins := NextPow2(200)/2 + 1
	for _, row := range sg {
		if len(row) != wantBins {
			t.Fatalf("row width %d, want %d", len(row), wantBins)
		}
	}
	// The 500 Hz bin should carry more energy than a far-away bin.
	bin500 := 500 * NextPow2(200) / 8000
	if sg[2][bin500] <= sg[2][wantBins-3] {
		t.Error("tone bin not dominant in spectrogram")
	}
	if _, err := Spectrogram(nil, 200, 100); err == nil {
		t.Error("empty signal accepted")
	}
	if _, err := Spectrogram(x, 0, 100); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestCMVN(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	CMVN(rows)
	// Column 0: zero mean, unit variance.
	var mean, varSum float64
	for _, r := range rows {
		mean += r[0]
	}
	mean /= 3
	for _, r := range rows {
		varSum += (r[0] - mean) * (r[0] - mean)
	}
	if math.Abs(mean) > 1e-12 || math.Abs(varSum/3-1) > 1e-12 {
		t.Errorf("CMVN column 0: mean %g var %g", mean, varSum/3)
	}
	// Constant column: zero mean, untouched scale.
	for _, r := range rows {
		if r[1] != 0 {
			t.Errorf("constant column not centered: %g", r[1])
		}
	}
	if out := CMVN(nil); out != nil {
		t.Error("CMVN(nil) should pass through")
	}
}

func TestDeltaDelta(t *testing.T) {
	// Rows of width 4 = 2 coeffs + 2 deltas -> widened to 6.
	rows := [][]float64{
		{0, 0, 1, 2},
		{0, 0, 3, 4},
		{0, 0, 5, 6},
	}
	DeltaDelta(rows)
	for _, r := range rows {
		if len(r) != 6 {
			t.Fatalf("row width %d, want 6", len(r))
		}
	}
	// Middle row's dd = (rows[2].delta - rows[0].delta)/2 = (5-1)/2, (6-2)/2.
	if rows[1][4] != 2 || rows[1][5] != 2 {
		t.Errorf("delta-delta wrong: %v", rows[1])
	}
	if rows[0][4] != 0 || rows[2][5] != 0 {
		t.Error("boundary delta-delta should be zero")
	}
}

func TestResample(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	up, err := Resample(x, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 8 {
		t.Fatalf("upsampled length %d, want 8", len(up))
	}
	if up[0] != 0 || math.Abs(up[len(up)-1]-3) > 1e-12 {
		t.Errorf("endpoints %g %g", up[0], up[len(up)-1])
	}
	down, err := Resample(up, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 4 {
		t.Fatalf("downsampled length %d", len(down))
	}
	same, err := Resample(x, 8000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if same[i] != x[i] {
			t.Fatal("identity resample changed data")
		}
	}
	if _, err := Resample(x, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	empty, err := Resample(nil, 1, 2)
	if err != nil || empty != nil {
		t.Error("empty resample should be nil, nil")
	}
}

// Property: resampling preserves the value range.
func TestResampleBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = rng.NormFloat64()
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		out, err := Resample(x, 1, 0.5+2*rng.Float64())
		if err != nil {
			return false
		}
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyContour(t *testing.T) {
	x := make([]float64, 400)
	for i := 200; i < 400; i++ {
		x[i] = 1
	}
	e := EnergyContour(x, 100, 100)
	if len(e) < 4 {
		t.Fatalf("%d frames", len(e))
	}
	if e[0] != 0 || e[2] != 1 {
		t.Errorf("contour %v", e[:4])
	}
}

func TestTrimSilence(t *testing.T) {
	x := make([]float64, 300)
	for i := 100; i < 200; i++ {
		x[i] = 0.5
	}
	trimmed := TrimSilence(x, 50, 0.1)
	if len(trimmed) < 100 || len(trimmed) > 200 {
		t.Errorf("trimmed to %d samples", len(trimmed))
	}
	if RMS(trimmed) < 0.2 {
		t.Error("trimmed signal lost its content")
	}
	// All-silence input trims to nothing.
	if got := TrimSilence(make([]float64, 100), 50, 0.1); len(got) != 0 {
		t.Errorf("silence trimmed to %d samples", len(got))
	}
	// Degenerate parameters pass through.
	if got := TrimSilence(x, 0, 0.1); len(got) != len(x) {
		t.Error("zero window should pass through")
	}
}

// Package dsp implements the signal-processing substrate used for affect
// feature extraction: an FFT, windowing, the MFCC pipeline (pre-emphasis,
// framing, mel filterbank, DCT), zero-crossing rate, RMS energy,
// autocorrelation pitch estimation, and magnitude-spectrum statistics.
//
// Everything is implemented from scratch on float64 slices so the package
// has no dependencies beyond the standard library.
package dsp

import (
	"fmt"

	"affectedge/internal/simd"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two (and > 0); otherwise FFT
// returns an error and leaves x unmodified.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	fftInPlace(x, false)
	return nil
}

// IFFT computes the in-place inverse FFT of x, including the 1/n scaling.
// len(x) must be a power of two.
func IFFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: IFFT length %d is not a power of two", n)
	}
	fftInPlace(x, true)
	inv := 1 / float64(n)
	for i := range x {
		x[i] *= complex(inv, 0)
	}
	return nil
}

// fftInPlace runs the radix-2 DIT FFT through the simd stage kernels:
// a precomputed bit-reversal swap list, then one FFTStage per butterfly
// size with cached twiddle tables. The twiddles are built with the same
// repeated-multiplication recurrence the previous in-line loop used and
// the stage kernels keep scalar per-butterfly operation order, so
// results are bit-identical to the historical implementation (pinned by
// fftInPlaceRef and the golden tests).
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n == 1 {
		return
	}
	for _, p := range bitrevPairsCached(n) {
		i, j := int(p>>32), int(uint32(p))
		x[i], x[j] = x[j], x[i]
	}
	// The size-2 stage's only twiddle is exactly 1+0i in both
	// directions; the multiply is still performed to match the
	// historical arithmetic.
	simd.FFTStage2(x, complex(1, 0))
	for size := 4; size <= n; size <<= 1 {
		simd.FFTStage(x, size, fftTwiddlesCached(size, inverse))
	}
}

// RealFFTMagnitude returns the magnitude spectrum |X[k]| for k in
// [0, n/2], of the real signal x zero-padded to the next power of two.
// The returned slice has nfft/2+1 entries where nfft is the padded length.
func RealFFTMagnitude(x []float64) []float64 {
	nfft := NextPow2(len(x))
	if nfft == 0 {
		return nil
	}
	out := make([]float64, nfft/2+1)
	realFFTMagnitudeInto(out, x, nfft)
	return out
}

// realFFTMagnitudeInto computes |X[k]| into dst (length nfft/2+1) using a
// pooled complex work buffer. nfft must be NextPow2(len(x)).
func realFFTMagnitudeInto(dst, x []float64, nfft int) {
	bufp := getC128(nfft)
	buf := *bufp
	simd.Widen(buf[:len(x)], x)
	for i := len(x); i < nfft; i++ {
		buf[i] = 0
	}
	// Length is a power of two by construction; FFT cannot fail.
	if err := FFT(buf); err != nil {
		panic("dsp: internal: " + err.Error())
	}
	simd.CAbs(dst, buf[:len(dst)])
	putC128(bufp)
}

// PowerSpectrum returns |X[k]|^2 / nfft for k in [0, nfft/2], the periodogram
// estimate used by the MFCC pipeline.
func PowerSpectrum(x []float64) []float64 {
	nfft := NextPow2(len(x))
	if nfft == 0 {
		return nil
	}
	out := make([]float64, nfft/2+1)
	powerSpectrumInto(out, x, nfft)
	return out
}

// PowerSpectrumInto computes PowerSpectrum into dst, which must have
// length NextPow2(len(x))/2+1. Beyond pooled FFT scratch it allocates
// nothing — the variant batch callers reuse one output buffer across.
func PowerSpectrumInto(dst, x []float64) error {
	nfft := NextPow2(len(x))
	if nfft == 0 {
		return fmt.Errorf("dsp: power spectrum of empty signal")
	}
	if len(dst) != nfft/2+1 {
		return fmt.Errorf("dsp: power spectrum dst length %d, want %d", len(dst), nfft/2+1)
	}
	powerSpectrumInto(dst, x, nfft)
	return nil
}

// powerSpectrumInto computes the periodogram into dst (length nfft/2+1).
// nfft must be NextPow2(len(x)).
func powerSpectrumInto(dst, x []float64, nfft int) {
	realFFTMagnitudeInto(dst, x, nfft)
	simd.SqScale(dst, 1/float64(nfft))
}

// NextPow2 returns the smallest power of two >= n, or 0 for n <= 0.
func NextPow2(n int) int {
	if n <= 0 {
		return 0
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Autocorrelation returns the biased autocorrelation r[k] =
// sum_i x[i]*x[i+k] / n for k in [0, maxLag]. maxLag is clamped to
// len(x)-1.
func Autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	autocorrelationInto(out, x)
	return out
}

// autocorrelationInto fills dst[k] with the biased autocorrelation at lag
// k for k in [0, len(dst)); len(dst) must be <= len(x). Eight lags are
// computed per kernel call, each lane accumulating its own lag's sum in
// scalar order.
func autocorrelationInto(dst, x []float64) {
	n := len(x)
	inv := 1 / float64(n)
	var s [8]float64
	for k := 0; k < len(dst); k += 8 {
		simd.LagDot8(&s, x, k)
		for l := 0; l < 8 && k+l < len(dst); l++ {
			dst[k+l] = s[l] * inv
		}
	}
}

// DCTII computes the type-II discrete cosine transform of x with the
// orthonormal scaling used by MFCC implementations:
//
//	y[k] = s(k) * sum_n x[n] * cos(pi*k*(2n+1)/(2N))
//
// where s(0)=sqrt(1/N) and s(k)=sqrt(2/N) for k>0.
func DCTII(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	// The cached basis table holds the identical cos(...) values this
	// function used to recompute O(N^2) per call, and dctIIInto keeps
	// the same per-coefficient accumulation order, so results are
	// unchanged bit for bit (pinned by TestDCTIIMatchesTable).
	dctIIInto(out, x)
	return out
}

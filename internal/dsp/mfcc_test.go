package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestHzMelRoundTrip(t *testing.T) {
	for hz := 50.0; hz <= 8000; hz += 123.7 {
		back := MelToHz(HzToMel(hz))
		if math.Abs(back-hz) > 1e-6*hz {
			t.Errorf("mel round trip %g -> %g", hz, back)
		}
	}
	if HzToMel(0) != 0 {
		t.Error("HzToMel(0) != 0")
	}
	// Mel scale must be monotone increasing.
	prev := -1.0
	for hz := 0.0; hz < 10000; hz += 100 {
		m := HzToMel(hz)
		if m <= prev {
			t.Fatalf("mel scale not monotone at %g Hz", hz)
		}
		prev = m
	}
}

func TestMelFilterBankShape(t *testing.T) {
	bank, err := MelFilterBank(26, 512, 16000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bank) != 26 {
		t.Fatalf("got %d filters, want 26", len(bank))
	}
	for m, row := range bank {
		if len(row) != 257 {
			t.Fatalf("filter %d has %d bins, want 257", m, len(row))
		}
		var sum, peak float64
		for _, w := range row {
			if w < 0 || w > 1+1e-9 {
				t.Fatalf("filter %d weight %g out of [0,1]", m, w)
			}
			sum += w
			if w > peak {
				peak = w
			}
		}
		if sum == 0 {
			t.Errorf("filter %d is empty", m)
		}
		if peak < 0.5 {
			t.Errorf("filter %d peak %g too small", m, peak)
		}
	}
}

func TestMelFilterBankErrors(t *testing.T) {
	if _, err := MelFilterBank(0, 512, 16000, 0, 0); err == nil {
		t.Error("accepted 0 filters")
	}
	if _, err := MelFilterBank(26, 0, 16000, 0, 0); err == nil {
		t.Error("accepted 0 nfft")
	}
	if _, err := MelFilterBank(26, 512, 16000, 9000, 8000); err == nil {
		t.Error("accepted low >= high")
	}
}

func TestPreEmphasis(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := PreEmphasis(x, 0.97)
	if y[0] != 1 {
		t.Errorf("y[0] = %g, want 1", y[0])
	}
	for i := 1; i < len(y); i++ {
		if math.Abs(y[i]-0.03) > 1e-12 {
			t.Errorf("y[%d] = %g, want 0.03", i, y[i])
		}
	}
	if PreEmphasis(nil, 0.97) != nil {
		t.Error("pre-emphasis of empty input should be nil")
	}
}

func TestFrameCoverage(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
	}
	frames := Frame(x, 30, 20)
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	for _, f := range frames {
		if len(f) != 30 {
			t.Fatalf("frame length %d, want 30", len(f))
		}
	}
	// First frame must be the signal prefix.
	for i := 0; i < 30; i++ {
		if frames[0][i] != float64(i) {
			t.Fatalf("frame[0][%d] = %g", i, frames[0][i])
		}
	}
	// Degenerate parameters.
	if Frame(x, 0, 10) != nil || Frame(x, 10, 0) != nil || Frame(nil, 10, 10) != nil {
		t.Error("degenerate Frame inputs should return nil")
	}
}

func TestHammingWindowProperties(t *testing.T) {
	w := HammingWindow(51)
	if len(w) != 51 {
		t.Fatalf("len = %d", len(w))
	}
	// Symmetric, ends at 0.08, peak 1 at center.
	for i := range w {
		if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
			t.Fatalf("window asymmetric at %d", i)
		}
	}
	if math.Abs(w[0]-0.08) > 1e-12 {
		t.Errorf("w[0] = %g, want 0.08", w[0])
	}
	if math.Abs(w[25]-1.0) > 1e-12 {
		t.Errorf("w[center] = %g, want 1", w[25])
	}
	if HammingWindow(0) != nil {
		t.Error("HammingWindow(0) should be nil")
	}
	if one := HammingWindow(1); len(one) != 1 || one[0] != 1 {
		t.Error("HammingWindow(1) should be [1]")
	}
}

func TestHannWindowProperties(t *testing.T) {
	w := HannWindow(33)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[32]) > 1e-12 {
		t.Error("Hann window should be 0 at both ends")
	}
	if math.Abs(w[16]-1) > 1e-12 {
		t.Error("Hann window should peak at 1")
	}
}

func TestMFCCShapeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 16000) // one second at 16 kHz
	for i := range x {
		x[i] = math.Sin(2*math.Pi*220*float64(i)/16000) + 0.1*rng.NormFloat64()
	}
	cfg := DefaultMFCCConfig(16000)
	a, err := MFCC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no MFCC frames")
	}
	for _, row := range a {
		if len(row) != cfg.NumCoeffs {
			t.Fatalf("row width %d, want %d", len(row), cfg.NumCoeffs)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("MFCC produced NaN/Inf")
			}
		}
	}
	b, err := MFCC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("MFCC not deterministic")
			}
		}
	}
}

func TestMFCCDeltas(t *testing.T) {
	x := make([]float64, 8000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 330 * float64(i) / 16000)
	}
	cfg := DefaultMFCCConfig(16000)
	cfg.IncludeDelta = true
	rows, err := MFCC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if len(row) != 2*cfg.NumCoeffs {
			t.Fatalf("delta row width %d, want %d", len(row), 2*cfg.NumCoeffs)
		}
	}
}

func TestMFCCDistinguishesSpectra(t *testing.T) {
	// Signals with very different spectral envelopes must yield clearly
	// different mean MFCC vectors.
	n := 16000
	low := make([]float64, n)
	high := make([]float64, n)
	for i := range low {
		ti := float64(i) / 16000
		low[i] = math.Sin(2 * math.Pi * 150 * ti)
		high[i] = math.Sin(2*math.Pi*2500*ti) + 0.5*math.Sin(2*math.Pi*3600*ti)
	}
	cfg := DefaultMFCCConfig(16000)
	a, err := MFCC(low, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MFCC(high, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := MeanVector(a), MeanVector(b)
	var dist float64
	for j := range ma {
		d := ma[j] - mb[j]
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Errorf("mean MFCC distance %g too small to separate spectra", math.Sqrt(dist))
	}
}

func TestMFCCErrors(t *testing.T) {
	cfg := DefaultMFCCConfig(16000)
	if _, err := MFCC(nil, cfg); err == nil {
		t.Error("accepted empty signal")
	}
	bad := cfg
	bad.NumCoeffs = cfg.NumFilters + 1
	if _, err := MFCC(make([]float64, 1000), bad); err == nil {
		t.Error("accepted more coeffs than filters")
	}
	bad = cfg
	bad.FrameLen = 0
	if _, err := MFCC(make([]float64, 1000), bad); err == nil {
		t.Error("accepted zero frame length")
	}
}

func TestMeanVector(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m := MeanVector(rows)
	if m[0] != 3 || m[1] != 4 {
		t.Errorf("MeanVector = %v, want [3 4]", m)
	}
	if MeanVector(nil) != nil {
		t.Error("MeanVector(nil) should be nil")
	}
}

package dsp

import (
	"fmt"
	"math"
)

// Spectrogram returns the log-magnitude short-time spectrum of x:
// one row per frame, nfft/2+1 log-power bins, Hamming-windowed.
func Spectrogram(x []float64, frameLen, hop int) ([][]float64, error) {
	if frameLen <= 0 || hop <= 0 {
		return nil, fmt.Errorf("dsp: spectrogram frame params invalid (len=%d hop=%d)", frameLen, hop)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("dsp: spectrogram of empty signal")
	}
	window := HammingWindow(frameLen)
	frames := Frame(x, frameLen, hop)
	out := make([][]float64, len(frames))
	for i, f := range frames {
		ApplyWindow(f, window)
		ps := PowerSpectrum(f)
		row := make([]float64, len(ps))
		for k, p := range ps {
			row[k] = math.Log(math.Max(p, 1e-12))
		}
		out[i] = row
	}
	return out, nil
}

// CMVN applies cepstral mean and variance normalization in place: each
// column (coefficient) of the frame matrix is shifted to zero mean and
// scaled to unit variance over the clip. Constant columns are left at
// zero mean. Returns rows for chaining.
func CMVN(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return rows
	}
	w := len(rows[0])
	n := float64(len(rows))
	for j := 0; j < w; j++ {
		var mean float64
		for _, r := range rows {
			mean += r[j]
		}
		mean /= n
		var varSum float64
		for _, r := range rows {
			d := r[j] - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum / n)
		for _, r := range rows {
			r[j] -= mean
			if std > 1e-12 {
				r[j] /= std
			}
		}
	}
	return rows
}

// DeltaDelta appends second-order deltas to rows that already carry
// first-order deltas in their second half: rows of width 2d become 3d
// with acceleration coefficients.
func DeltaDelta(rows [][]float64) [][]float64 {
	n := len(rows)
	if n == 0 {
		return rows
	}
	w := len(rows[0])
	d := w / 2
	for i := 0; i < n; i++ {
		dd := make([]float64, d)
		if i > 0 && i < n-1 {
			for j := 0; j < d; j++ {
				// Delta of the delta block (second half).
				dd[j] = (rows[i+1][d+j] - rows[i-1][d+j]) / 2
			}
		}
		rows[i] = append(rows[i], dd...)
	}
	return rows
}

// Resample converts x from rateIn to rateOut by linear interpolation —
// adequate for feature extraction (not transparent audio resampling).
func Resample(x []float64, rateIn, rateOut float64) ([]float64, error) {
	if rateIn <= 0 || rateOut <= 0 {
		return nil, fmt.Errorf("dsp: resample rates must be positive (%g -> %g)", rateIn, rateOut)
	}
	if len(x) == 0 {
		return nil, nil
	}
	if rateIn == rateOut {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	outLen := int(math.Round(float64(len(x)) * rateOut / rateIn))
	if outLen < 1 {
		outLen = 1
	}
	out := make([]float64, outLen)
	scale := float64(len(x)-1) / math.Max(1, float64(outLen-1))
	for i := range out {
		pos := float64(i) * scale
		lo := int(pos)
		frac := pos - float64(lo)
		hi := lo + 1
		if hi >= len(x) {
			hi = len(x) - 1
		}
		out[i] = x[lo]*(1-frac) + x[hi]*frac
	}
	return out, nil
}

// EnergyContour returns the per-frame RMS energy of x.
func EnergyContour(x []float64, frameLen, hop int) []float64 {
	frames := Frame(x, frameLen, hop)
	out := make([]float64, len(frames))
	for i, f := range frames {
		out[i] = RMS(f)
	}
	return out
}

// TrimSilence removes leading and trailing samples whose local RMS (over
// win samples) is below threshold. It returns the trimmed view of x.
func TrimSilence(x []float64, win int, threshold float64) []float64 {
	if len(x) == 0 || win <= 0 {
		return x
	}
	energy := func(lo int) float64 {
		hi := lo + win
		if hi > len(x) {
			hi = len(x)
		}
		return RMS(x[lo:hi])
	}
	start := 0
	for start < len(x) && energy(start) < threshold {
		start += win
	}
	end := len(x)
	for end > start && energy(max(0, end-win)) < threshold {
		end -= win
	}
	if start >= end {
		return x[:0]
	}
	return x[start:end]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package dsp

import (
	"math"
	"sort"
)

// ZeroCrossingRate returns the fraction of adjacent sample pairs whose
// signs differ, a coarse noisiness/pitch correlate used as one of the
// paper's input features.
func ZeroCrossingRate(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	var crossings int
	for i := 1; i < len(x); i++ {
		if (x[i-1] >= 0) != (x[i] >= 0) {
			crossings++
		}
	}
	return float64(crossings) / float64(len(x)-1)
}

// RMS returns the root-mean-square amplitude of x (the paper's "rmse"
// feature), 0 for an empty signal.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Mean returns the arithmetic mean of x, 0 for an empty signal.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Histogram counts x into nBins equal-width bins over [min(x), max(x)] and
// returns normalized bin frequencies. All-equal input lands in bin 0.
func Histogram(x []float64, nBins int) []float64 {
	if nBins <= 0 || len(x) == 0 {
		return nil
	}
	return AppendHistogram(nil, x, nBins)
}

// AppendHistogram appends the nBins normalized bin frequencies of x to dst
// and returns the extended slice — the allocation-free variant of
// Histogram for callers assembling feature rows. Nothing is appended for
// degenerate arguments.
func AppendHistogram(dst, x []float64, nBins int) []float64 {
	if nBins <= 0 || len(x) == 0 {
		return dst
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	base := len(dst)
	for i := 0; i < nBins; i++ {
		dst = append(dst, 0)
	}
	out := dst[base:]
	width := (hi - lo) / float64(nBins)
	for _, v := range x {
		var b int
		if width > 0 {
			b = int((v - lo) / width)
			if b >= nBins {
				b = nBins - 1
			}
		}
		out[b]++
	}
	inv := 1 / float64(len(x))
	for i := range out {
		out[i] *= inv
	}
	return dst
}

// EstimatePitch estimates the fundamental frequency of x (Hz) by picking
// the autocorrelation peak inside [minHz, maxHz]. It returns 0 when no
// periodicity is found (e.g. silence or noise with a flat correlation).
func EstimatePitch(x []float64, sampleRate, minHz, maxHz float64) float64 {
	if len(x) == 0 || sampleRate <= 0 || minHz <= 0 || maxHz <= minHz {
		return 0
	}
	minLag := int(sampleRate / maxHz)
	maxLag := int(sampleRate / minHz)
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag <= minLag {
		return 0
	}
	rp := getF64(maxLag + 1)
	r := *rp
	autocorrelationInto(r, x)
	r0 := r[0]
	bestLag, bestVal := 0, 0.0
	for lag := minLag; lag <= maxLag; lag++ {
		if r[lag] > bestVal {
			bestVal, bestLag = r[lag], lag
		}
	}
	putF64(rp)
	if r0 <= 0 {
		return 0
	}
	// Require meaningful periodicity relative to signal energy.
	if bestLag == 0 || bestVal < 0.3*r0 {
		return 0
	}
	return sampleRate / float64(bestLag)
}

// SpectralCentroid returns the magnitude-weighted mean frequency (Hz) of
// the spectrum of x, a brightness correlate.
func SpectralCentroid(x []float64, sampleRate float64) float64 {
	nfft := NextPow2(len(x))
	if nfft == 0 {
		return 0
	}
	magp := getF64(nfft/2 + 1)
	mag := *magp
	realFFTMagnitudeInto(mag, x, nfft)
	var num, den float64
	for k, m := range mag {
		f := float64(k) * sampleRate / float64(nfft)
		num += f * m
		den += m
	}
	putF64(magp)
	if den == 0 {
		return 0
	}
	return num / den
}

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Smooth applies a centered moving average of the given odd window size
// and returns the smoothed copy. Even sizes are rounded up; size <= 1
// returns a plain copy.
func Smooth(x []float64, size int) []float64 {
	out := make([]float64, len(x))
	if size <= 1 {
		copy(out, x)
		return out
	}
	if size%2 == 0 {
		size++
	}
	half := size / 2
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

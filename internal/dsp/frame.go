package dsp

import (
	"math"

	"affectedge/internal/simd"
)

// PreEmphasis applies the first-order high-pass filter
// y[i] = x[i] - coeff*x[i-1] and returns the filtered copy. A coeff of
// 0.97 is the conventional speech-processing value.
func PreEmphasis(x []float64, coeff float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	out := make([]float64, len(x))
	preEmphasisInto(out, x, coeff)
	return out
}

// preEmphasisInto applies the pre-emphasis filter into dst, which must
// have the same length as x and not alias it at an offset.
func preEmphasisInto(dst, x []float64, coeff float64) {
	dst[0] = x[0]
	simd.SubScaled(dst[1:], x[1:], x[:len(x)-1], coeff)
}

// Frame slices x into overlapping frames of frameLen samples advancing by
// hop samples. The final partial frame is zero-padded. Frame returns nil
// when frameLen or hop is not positive or x is empty.
func Frame(x []float64, frameLen, hop int) [][]float64 {
	if frameLen <= 0 || hop <= 0 || len(x) == 0 {
		return nil
	}
	var frames [][]float64
	for start := 0; start < len(x); start += hop {
		f := make([]float64, frameLen)
		n := copy(f, x[start:])
		frames = append(frames, f)
		if n < frameLen {
			break
		}
		if start+frameLen >= len(x) {
			break
		}
	}
	return frames
}

// numFrames returns the frame count Frame/EachFrame would produce for a
// signal of n samples — the same loop with the copying elided, so batch
// callers can size a flat output backing before framing.
func numFrames(n, frameLen, hop int) int {
	if frameLen <= 0 || hop <= 0 || n == 0 {
		return 0
	}
	count := 0
	for start := 0; start < n; start += hop {
		count++
		if n-start < frameLen || start+frameLen >= n {
			break
		}
	}
	return count
}

// EachFrame visits the same frames Frame would produce, but reuses one
// internal buffer for every frame instead of allocating per frame: fn is
// called with the frame index and a zero-padded frame slice that is only
// valid for the duration of the call (callers must copy anything they
// keep, and must not retain the slice). It returns the number of frames
// visited.
func EachFrame(x []float64, frameLen, hop int, fn func(i int, frame []float64)) int {
	if frameLen <= 0 || hop <= 0 || len(x) == 0 {
		return 0
	}
	bufp := getF64(frameLen)
	buf := *bufp
	count := 0
	for start := 0; start < len(x); start += hop {
		n := copy(buf, x[start:])
		for i := n; i < frameLen; i++ {
			buf[i] = 0
		}
		fn(count, buf)
		count++
		if n < frameLen {
			break
		}
		if start+frameLen >= len(x) {
			break
		}
	}
	putF64(bufp)
	return count
}

// HammingWindow returns the n-point Hamming window
// w[i] = 0.54 - 0.46*cos(2*pi*i/(n-1)).
func HammingWindow(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ApplyWindow multiplies x element-wise by w in place and returns x.
// If lengths differ only the common prefix is windowed.
func ApplyWindow(x, w []float64) []float64 {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	simd.Mul(x[:n], w[:n])
	return x
}

package dsp

import (
	"math"
	"testing"
)

// TestPowerSpectrumIntoMatches pins the buffer-reusing periodogram to the
// allocating one bit for bit, and its strict dst-length contract.
func TestPowerSpectrumIntoMatches(t *testing.T) {
	x := make([]float64, 200)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.21)
	}
	want := PowerSpectrum(x)
	dst := make([]float64, len(want))
	if err := PowerSpectrumInto(dst, x); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if dst[k] != want[k] {
			t.Fatalf("bin %d: %g != %g", k, dst[k], want[k])
		}
	}
	if err := PowerSpectrumInto(dst[:len(dst)-1], x); err == nil {
		t.Error("short dst accepted")
	}
	if err := PowerSpectrumInto(nil, nil); err == nil {
		t.Error("empty signal accepted")
	}
}

// TestNumFramesMatchesEachFrame pins the up-front frame count (which
// sizes MFCC's flat row backing) to what EachFrame actually visits,
// across hop/length boundary shapes.
func TestNumFramesMatchesEachFrame(t *testing.T) {
	cases := []struct{ n, frameLen, hop int }{
		{0, 10, 5}, {1, 10, 5}, {9, 10, 5}, {10, 10, 5}, {11, 10, 5},
		{15, 10, 5}, {16, 10, 5}, {100, 10, 5}, {101, 10, 5},
		{100, 10, 10}, {100, 10, 3}, {7, 10, 10}, {8000, 200, 80},
	}
	for _, c := range cases {
		x := make([]float64, c.n)
		visited := EachFrame(x, c.frameLen, c.hop, func(int, []float64) {})
		if got := numFrames(c.n, c.frameLen, c.hop); got != visited {
			t.Errorf("numFrames(%d,%d,%d) = %d, EachFrame visited %d",
				c.n, c.frameLen, c.hop, got, visited)
		}
	}
}

// TestMFCCRowsIndependent guards the flat-backing layout: rows are
// capacity-clipped, so appending to one row must reallocate instead of
// clobbering its neighbor.
func TestMFCCRowsIndependent(t *testing.T) {
	x := make([]float64, 8000)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.17)
	}
	cfg := DefaultMFCCConfig(8000)
	rows, err := MFCC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("want >= 2 frames, got %d", len(rows))
	}
	next0 := rows[1][0]
	_ = append(rows[0], 12345)
	if rows[1][0] != next0 {
		t.Fatal("append to row 0 clobbered row 1 (missing capacity clip)")
	}
}

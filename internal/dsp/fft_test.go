package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 9, 100} {
		if err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT(len=%d) accepted non-power-of-two", n)
		}
		if err := IFFT(make([]complex128, n)); err == nil {
			t.Errorf("IFFT(len=%d) accepted non-power-of-two", n)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if !approx(real(v), 1, 1e-12) || !approx(imag(v), 0, 1e-12) {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure complex exponential at bin 3 concentrates all energy there.
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		want := 0.0
		if k == 3 {
			want = n
		}
		if !approx(cmplx.Abs(v), want, 1e-9) {
			t.Errorf("|X[%d]| = %g, want %g", k, cmplx.Abs(v), want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 16, 128, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d round trip differs at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

// Property: Parseval's theorem — sum |x|^2 == sum |X|^2 / n.
func TestFFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return approx(timeEnergy, freqEnergy/float64(n), 1e-6*(1+timeEnergy))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: linearity — FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = a*x[i] + y[i]
		}
		if FFT(x) != nil || FFT(y) != nil || FFT(mix) != nil {
			return false
		}
		for i := range mix {
			if cmplx.Abs(mix[i]-(a*x[i]+y[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealFFTMagnitudeTone(t *testing.T) {
	// A real cosine at an exact bin should show a single spectral peak.
	const n, bin = 256, 16
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * bin * float64(i) / n)
	}
	mag := RealFFTMagnitude(x)
	if len(mag) != n/2+1 {
		t.Fatalf("len(mag) = %d, want %d", len(mag), n/2+1)
	}
	peak := 0
	for k := range mag {
		if mag[k] > mag[peak] {
			peak = k
		}
	}
	if peak != bin {
		t.Errorf("spectral peak at bin %d, want %d", peak, bin)
	}
	if !approx(mag[bin], n/2, 1e-6) {
		t.Errorf("|X[%d]| = %g, want %g", bin, mag[bin], float64(n/2))
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-1: 0, 0: 0, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	// Autocorrelation of a period-8 signal peaks again at lag 8.
	const n, period = 256, 8
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	r := Autocorrelation(x, 20)
	if len(r) != 21 {
		t.Fatalf("len(r) = %d, want 21", len(r))
	}
	if r[0] <= 0 {
		t.Fatal("r[0] should be positive")
	}
	// lag 8 should dominate every non-trivial lag except multiples of 8.
	for lag := 1; lag <= 20; lag++ {
		if lag%period == 0 {
			continue
		}
		if r[lag] >= r[period] {
			t.Errorf("r[%d]=%g >= r[%d]=%g", lag, r[lag], period, r[period])
		}
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if Autocorrelation(nil, 5) != nil {
		t.Error("autocorrelation of empty signal should be nil")
	}
	r := Autocorrelation([]float64{1, 2}, 10)
	if len(r) != 2 {
		t.Errorf("maxLag should clamp to n-1, got len %d", len(r))
	}
	r = Autocorrelation([]float64{1, 2, 3}, -1)
	if len(r) != 1 {
		t.Errorf("negative maxLag should clamp to 0, got len %d", len(r))
	}
}

func TestDCTIIConstant(t *testing.T) {
	// DCT-II of a constant signal has all energy in coefficient 0.
	x := []float64{2, 2, 2, 2}
	y := DCTII(x)
	if !approx(y[0], 4, 1e-12) { // sqrt(1/4)*8 = 4
		t.Errorf("y[0] = %g, want 4", y[0])
	}
	for k := 1; k < len(y); k++ {
		if !approx(y[k], 0, 1e-12) {
			t.Errorf("y[%d] = %g, want 0", k, y[k])
		}
	}
}

// Property: orthonormal DCT-II preserves energy.
func TestDCTIIEnergy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		x := make([]float64, n)
		var ex float64
		for i := range x {
			x[i] = rng.NormFloat64()
			ex += x[i] * x[i]
		}
		y := DCTII(x)
		var ey float64
		for _, v := range y {
			ey += v * v
		}
		return approx(ex, ey, 1e-8*(1+ex))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]complex128, len(x))
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

package dsp

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WAV I/O for mono 16-bit PCM, so synthetic corpora can be exported and
// external recordings imported without dependencies.

// WriteWAV writes x as a mono 16-bit PCM WAV file at the given sample
// rate, clipping samples outside [-1, 1].
func WriteWAV(w io.Writer, x []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("dsp: WAV sample rate %d must be positive", sampleRate)
	}
	dataLen := len(x) * 2
	var header [44]byte
	copy(header[0:4], "RIFF")
	binary.LittleEndian.PutUint32(header[4:8], uint32(36+dataLen))
	copy(header[8:12], "WAVE")
	copy(header[12:16], "fmt ")
	binary.LittleEndian.PutUint32(header[16:20], 16)
	binary.LittleEndian.PutUint16(header[20:22], 1) // PCM
	binary.LittleEndian.PutUint16(header[22:24], 1) // mono
	binary.LittleEndian.PutUint32(header[24:28], uint32(sampleRate))
	binary.LittleEndian.PutUint32(header[28:32], uint32(sampleRate*2))
	binary.LittleEndian.PutUint16(header[32:34], 2)  // block align
	binary.LittleEndian.PutUint16(header[34:36], 16) // bits per sample
	copy(header[36:40], "data")
	binary.LittleEndian.PutUint32(header[40:44], uint32(dataLen))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	buf := make([]byte, 2*len(x))
	for i, v := range x {
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		s := int16(math.Round(v * 32767))
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	}
	_, err := w.Write(buf)
	return err
}

// ReadWAV parses a mono 16-bit PCM WAV file, returning samples normalized
// to [-1, 1] and the sample rate.
func ReadWAV(r io.Reader) ([]float64, int, error) {
	var header [12]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, 0, fmt.Errorf("dsp: WAV header: %w", err)
	}
	if string(header[0:4]) != "RIFF" || string(header[8:12]) != "WAVE" {
		return nil, 0, fmt.Errorf("dsp: not a RIFF/WAVE file")
	}
	var sampleRate int
	var bitsPerSample, channels int
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			return nil, 0, fmt.Errorf("dsp: WAV chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := int(binary.LittleEndian.Uint32(chunk[4:8]))
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, err
			}
			if format := binary.LittleEndian.Uint16(body[0:2]); format != 1 {
				return nil, 0, fmt.Errorf("dsp: WAV format %d unsupported (want PCM)", format)
			}
			channels = int(binary.LittleEndian.Uint16(body[2:4]))
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bitsPerSample = int(binary.LittleEndian.Uint16(body[14:16]))
			if channels != 1 || bitsPerSample != 16 {
				return nil, 0, fmt.Errorf("dsp: WAV must be mono 16-bit (got %d ch, %d bit)", channels, bitsPerSample)
			}
		case "data":
			if sampleRate == 0 {
				return nil, 0, fmt.Errorf("dsp: WAV data before fmt chunk")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, err
			}
			out := make([]float64, size/2)
			for i := range out {
				s := int16(binary.LittleEndian.Uint16(body[2*i:]))
				out[i] = float64(s) / 32767
			}
			return out, sampleRate, nil
		default:
			// Skip unknown chunks (LIST, fact, ...).
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, 0, err
			}
		}
	}
}

package dsp

import (
	"fmt"
	"math"

	"affectedge/internal/simd"
)

// HzToMel converts a frequency in Hz to the mel scale (HTK convention).
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts a mel-scale value back to Hz.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterBank builds nFilters triangular filters spanning [lowHz, highHz]
// over an nfft-point FFT at the given sample rate. Each row has
// nfft/2+1 weights. It returns an error for degenerate parameters.
func MelFilterBank(nFilters, nfft int, sampleRate, lowHz, highHz float64) ([][]float64, error) {
	if nFilters <= 0 || nfft <= 0 || sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: invalid filterbank params (nFilters=%d nfft=%d rate=%g)", nFilters, nfft, sampleRate)
	}
	if highHz <= 0 || highHz > sampleRate/2 {
		highHz = sampleRate / 2
	}
	if lowHz < 0 || lowHz >= highHz {
		return nil, fmt.Errorf("dsp: invalid filterbank band [%g, %g]", lowHz, highHz)
	}
	nBins := nfft/2 + 1
	lowMel, highMel := HzToMel(lowHz), HzToMel(highHz)
	// nFilters+2 equally spaced points on the mel scale.
	points := make([]float64, nFilters+2)
	for i := range points {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(nFilters+1)
		points[i] = MelToHz(mel)
	}
	// Convert the Hz points to (fractional) FFT bin positions. Rows are
	// capacity-clipped views of one flat backing: the bank costs three
	// allocations however many filters it has.
	binOf := func(hz float64) float64 { return hz * float64(nfft) / sampleRate }
	bank := make([][]float64, nFilters)
	flat := make([]float64, nFilters*nBins)
	for m := 0; m < nFilters; m++ {
		row := flat[m*nBins : (m+1)*nBins : (m+1)*nBins]
		left, center, right := binOf(points[m]), binOf(points[m+1]), binOf(points[m+2])
		for k := 0; k < nBins; k++ {
			fk := float64(k)
			switch {
			case fk < left || fk > right:
				// outside the triangle
			case fk <= center:
				if center > left {
					row[k] = (fk - left) / (center - left)
				}
			default:
				if right > center {
					row[k] = (right - fk) / (right - center)
				}
			}
		}
		bank[m] = row
	}
	return bank, nil
}

// MFCCConfig parameterizes the MFCC extraction pipeline.
type MFCCConfig struct {
	SampleRate   float64 // samples per second
	FrameLen     int     // analysis frame length in samples
	Hop          int     // frame advance in samples
	NumFilters   int     // mel filterbank size
	NumCoeffs    int     // cepstral coefficients to keep
	PreEmphasis  float64 // pre-emphasis coefficient (0 disables)
	LowHz        float64 // filterbank low edge
	HighHz       float64 // filterbank high edge (0 = Nyquist)
	IncludeDelta bool    // append first-order deltas per frame
}

// DefaultMFCCConfig returns the configuration used by the affect feature
// pipeline: 25 ms frames with 10 ms hop, 26 mel filters, 13 coefficients.
func DefaultMFCCConfig(sampleRate float64) MFCCConfig {
	return MFCCConfig{
		SampleRate:  sampleRate,
		FrameLen:    int(sampleRate * 0.025),
		Hop:         int(sampleRate * 0.010),
		NumFilters:  26,
		NumCoeffs:   13,
		PreEmphasis: 0.97,
		LowHz:       0,
		HighHz:      0,
	}
}

// MFCC computes the mel-frequency cepstral coefficients of x, one row of
// cfg.NumCoeffs values per analysis frame (plus deltas when configured).
func MFCC(x []float64, cfg MFCCConfig) ([][]float64, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("dsp: MFCC of empty signal")
	}
	if cfg.FrameLen <= 0 || cfg.Hop <= 0 {
		return nil, fmt.Errorf("dsp: MFCC frame params invalid (len=%d hop=%d)", cfg.FrameLen, cfg.Hop)
	}
	if cfg.NumCoeffs <= 0 || cfg.NumCoeffs > cfg.NumFilters {
		return nil, fmt.Errorf("dsp: MFCC wants %d coeffs from %d filters", cfg.NumCoeffs, cfg.NumFilters)
	}
	sig := x
	var sigp *[]float64
	if cfg.PreEmphasis > 0 {
		sigp = getF64(len(x))
		sig = *sigp
		preEmphasisInto(sig, x, cfg.PreEmphasis)
	}
	nfft := NextPow2(cfg.FrameLen)
	bank, err := melFilterBankCached(cfg.NumFilters, nfft, cfg.SampleRate, cfg.LowHz, cfg.HighHz)
	if err != nil {
		if sigp != nil {
			putF64(sigp)
		}
		return nil, err
	}
	window := hammingWindowCached(cfg.FrameLen)
	// Rows are allocated at their final width so delta computation widens
	// nothing, and they are capacity-clipped views of one flat backing
	// counted up front — the whole frame matrix costs two allocations
	// regardless of clip length. All per-frame scratch (power spectrum,
	// filterbank energies) is pooled and the DCT basis is a shared table.
	rowWidth := cfg.NumCoeffs
	if cfg.IncludeDelta {
		rowWidth = 2 * cfg.NumCoeffs
	}
	nf := numFrames(len(sig), cfg.FrameLen, cfg.Hop)
	out := make([][]float64, 0, nf)
	flat := make([]float64, nf*rowWidth)
	psp := getF64(nfft/2 + 1)
	enp := getF64(cfg.NumFilters)
	ps, energies := *psp, *enp
	EachFrame(sig, cfg.FrameLen, cfg.Hop, func(i int, f []float64) {
		row := flat[i*rowWidth : (i+1)*rowWidth : (i+1)*rowWidth]
		mfccFrameInto(row[:cfg.NumCoeffs], f, window, bank, ps, energies, nfft)
		out = append(out, row)
	})
	putF64(psp)
	putF64(enp)
	if sigp != nil {
		putF64(sigp)
	}
	if cfg.IncludeDelta {
		fillDeltas(out, cfg.NumCoeffs)
	}
	return out, nil
}

// mfccFrameInto runs the per-frame cepstral chain on one analysis frame:
// window in place, power spectrum, filterbank energies -> log -> DCT into
// dst (len(dst) coefficients). Eight filters go per kernel call over the
// union of their supports (zero weights outside a filter's own triangle
// contribute exact +0 terms), leftover filters by their individual
// support. Shared verbatim by the whole-buffer MFCC path and MFCCStream,
// which is what makes streamed coefficients bit-identical to batch ones.
// f is mutated (windowing); ps and energies are caller scratch of nfft/2+1
// and filterbank size.
func mfccFrameInto(dst, f, window []float64, bank *melBank, ps, energies []float64, nfft int) {
	ApplyWindow(f, window)
	powerSpectrumInto(ps, f, nfft)
	m := 0
	for gi := range bank.groups {
		g := &bank.groups[gi]
		var e [8]float64
		simd.DotI8(&e, g.w, ps[g.lo:g.hi])
		for l := 0; l < 8; l, m = l+1, m+1 {
			// Floor to avoid log(0) on silent frames.
			energies[m] = math.Log(math.Max(e[l], 1e-12))
		}
	}
	for ; m < len(bank.rows); m++ {
		var e float64
		row := bank.rows[m]
		for k := bank.lo[m]; k < bank.hi[m]; k++ {
			e += row[k] * ps[k]
		}
		energies[m] = math.Log(math.Max(e, 1e-12))
	}
	dctIIInto(dst, energies)
}

// fillDeltas writes first-order frame-to-frame differences of the first d
// columns into columns [d, 2d) of each row (zero at boundaries). Rows must
// already have width 2d.
func fillDeltas(rows [][]float64, d int) {
	n := len(rows)
	for i := 0; i < n; i++ {
		if i > 0 && i < n-1 {
			for j := 0; j < d; j++ {
				rows[i][d+j] = (rows[i+1][j] - rows[i-1][j]) / 2
			}
		}
	}
}

// MeanVector averages the rows of a frame matrix into a single vector,
// the clip-level summary used by the affect feature pipeline.
func MeanVector(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	w := len(rows[0])
	out := make([]float64, w)
	for _, r := range rows {
		for j := 0; j < w && j < len(r); j++ {
			out[j] += r[j]
		}
	}
	inv := 1 / float64(len(rows))
	for j := range out {
		out[j] *= inv
	}
	return out
}

package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroCrossingRate(t *testing.T) {
	if got := ZeroCrossingRate([]float64{1, -1, 1, -1, 1}); got != 1 {
		t.Errorf("alternating signal ZCR = %g, want 1", got)
	}
	if got := ZeroCrossingRate([]float64{1, 2, 3, 4}); got != 0 {
		t.Errorf("monotone positive ZCR = %g, want 0", got)
	}
	if got := ZeroCrossingRate([]float64{5}); got != 0 {
		t.Errorf("single sample ZCR = %g, want 0", got)
	}
	// A 100 Hz sine at 16 kHz crosses ~200 times per second.
	x := make([]float64, 16000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 100 * float64(i) / 16000)
	}
	got := ZeroCrossingRate(x) * 16000
	if math.Abs(got-200) > 4 {
		t.Errorf("sine crossing rate %g/s, want ~200/s", got)
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
	if got := RMS([]float64{3, -3, 3, -3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("RMS = %g, want 3", got)
	}
	// RMS of unit-amplitude sine is 1/sqrt(2).
	x := make([]float64, 16000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 50 * float64(i) / 16000)
	}
	if got := RMS(x); math.Abs(got-1/math.Sqrt2) > 1e-3 {
		t.Errorf("sine RMS = %g, want %g", got, 1/math.Sqrt2)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(x); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.1, 0.9, 1.0}, 2)
	if len(h) != 2 {
		t.Fatalf("len = %d", len(h))
	}
	if h[0] != 0.5 || h[1] != 0.5 {
		t.Errorf("histogram = %v, want [0.5 0.5]", h)
	}
	// Constant input: all mass in bin 0.
	h = Histogram([]float64{3, 3, 3}, 4)
	if h[0] != 1 {
		t.Errorf("constant histogram = %v", h)
	}
	if Histogram(nil, 4) != nil || Histogram([]float64{1}, 0) != nil {
		t.Error("degenerate histogram inputs should be nil")
	}
}

// Property: histogram frequencies sum to 1.
func TestHistogramSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		h := Histogram(x, 1+rng.Intn(16))
		var sum float64
		for _, v := range h {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimatePitch(t *testing.T) {
	const rate = 16000.0
	for _, f0 := range []float64{100, 160, 250, 400} {
		x := make([]float64, 4000)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / rate)
		}
		got := EstimatePitch(x, rate, 60, 500)
		if math.Abs(got-f0) > 0.05*f0 {
			t.Errorf("pitch of %g Hz tone = %g", f0, got)
		}
	}
}

func TestEstimatePitchSilenceAndNoise(t *testing.T) {
	if got := EstimatePitch(make([]float64, 2000), 16000, 60, 500); got != 0 {
		t.Errorf("pitch of silence = %g, want 0", got)
	}
	if got := EstimatePitch(nil, 16000, 60, 500); got != 0 {
		t.Errorf("pitch of nil = %g, want 0", got)
	}
	if got := EstimatePitch([]float64{1, 2}, 16000, 500, 60); got != 0 {
		t.Errorf("inverted band should yield 0, got %g", got)
	}
}

func TestSpectralCentroidOrdering(t *testing.T) {
	// Bin-aligned tones (bin k is k*16000/4096 Hz) avoid leakage skew.
	n := 4096
	low := make([]float64, n)
	high := make([]float64, n)
	for i := range low {
		ti := float64(i) / 16000
		low[i] = math.Sin(2 * math.Pi * 250 * ti)   // bin 64
		high[i] = math.Sin(2 * math.Pi * 3125 * ti) // bin 800
	}
	cl := SpectralCentroid(low, 16000)
	ch := SpectralCentroid(high, 16000)
	if cl >= ch {
		t.Errorf("centroid ordering wrong: low=%g high=%g", cl, ch)
	}
	if math.Abs(cl-250) > 50 {
		t.Errorf("low centroid = %g, want ~250", cl)
	}
	if SpectralCentroid(nil, 16000) != 0 {
		t.Error("centroid of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(x, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty should be 0")
	}
	// Input must not be mutated (Percentile sorts a copy).
	y := []float64{3, 1, 2}
	Percentile(y, 50)
	if y[0] != 3 || y[1] != 1 || y[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSmooth(t *testing.T) {
	x := []float64{0, 0, 9, 0, 0}
	y := Smooth(x, 3)
	if y[2] != 3 {
		t.Errorf("smoothed center = %g, want 3", y[2])
	}
	if y[0] != 0 || y[4] != 0 {
		t.Errorf("smoothed edges wrong: %v", y)
	}
	// size<=1 copies.
	z := Smooth(x, 1)
	for i := range x {
		if z[i] != x[i] {
			t.Fatal("Smooth(1) should copy")
		}
	}
	// Even sizes round up and still average correctly.
	w := Smooth(x, 2)
	if w[2] != 3 {
		t.Errorf("even-size smooth center = %g, want 3", w[2])
	}
}

// Property: smoothing preserves the mean of interior-heavy signals and
// never exceeds the input range.
func TestSmoothBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(64)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = rng.NormFloat64()
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		y := Smooth(x, 1+2*rng.Intn(5))
		for _, v := range y {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package dsp

import (
	"math"
	"sync"
)

// Scratch-buffer pools and derived-table caches for the DSP hot path.
//
// Feature extraction runs the same transforms thousands of times per
// corpus (one FFT per 10 ms analysis frame), and since the parallel
// pipeline fans clips out across cores, per-call allocations would turn
// straight into GC pressure that serializes the workers. Two mechanisms
// keep the hot path allocation-free:
//
//   - sync.Pool scratch for transient buffers (FFT work arrays, frame
//     windows, filterbank energies, autocorrelation lags). Buffers are
//     fully overwritten before use, so pooling cannot change results.
//   - immutable caches for derived tables that depend only on
//     configuration (Hamming windows, mel filterbanks, DCT-II cosine
//     tables). These are computed once per shape and shared read-only
//     across goroutines.
//
// Everything here is internal; the public API is unchanged.

var (
	c128Pool = sync.Pool{New: func() any { s := make([]complex128, 0, 512); return &s }}
	f64Pool  = sync.Pool{New: func() any { s := make([]float64, 0, 512); return &s }}
)

// getC128 returns a pooled complex scratch slice of length n.
func getC128(n int) *[]complex128 {
	p := c128Pool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n)
	}
	*p = (*p)[:n]
	return p
}

func putC128(p *[]complex128) { c128Pool.Put(p) }

// getF64 returns a pooled float64 scratch slice of length n. Contents are
// unspecified; callers must overwrite every element they read.
func getF64(n int) *[]float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putF64(p *[]float64) { f64Pool.Put(p) }

// hammingCache maps window length -> read-only Hamming window.
var hammingCache sync.Map

// hammingWindowCached returns a shared Hamming window of length n.
// Callers must not modify the returned slice.
func hammingWindowCached(n int) []float64 {
	if w, ok := hammingCache.Load(n); ok {
		return w.([]float64)
	}
	w := HammingWindow(n)
	actual, _ := hammingCache.LoadOrStore(n, w)
	return actual.([]float64)
}

// bankKey identifies a mel filterbank shape.
type bankKey struct {
	nFilters, nfft  int
	rate, low, high float64
}

// melBank is a cached filterbank with precomputed nonzero column ranges,
// so the per-frame energy accumulation only walks each triangle's
// support instead of all nfft/2+1 bins.
type melBank struct {
	rows   [][]float64
	lo, hi []int // [lo, hi) nonzero bin range per filter
}

var bankCache sync.Map

// melFilterBankCached returns a shared, read-only filterbank for the
// given shape, building and caching it on first use.
func melFilterBankCached(nFilters, nfft int, rate, low, high float64) (*melBank, error) {
	key := bankKey{nFilters, nfft, rate, low, high}
	if b, ok := bankCache.Load(key); ok {
		return b.(*melBank), nil
	}
	rows, err := MelFilterBank(nFilters, nfft, rate, low, high)
	if err != nil {
		return nil, err
	}
	b := &melBank{rows: rows, lo: make([]int, len(rows)), hi: make([]int, len(rows))}
	for m, row := range rows {
		lo, hi := 0, len(row)
		for lo < hi && row[lo] == 0 {
			lo++
		}
		for hi > lo && row[hi-1] == 0 {
			hi--
		}
		b.lo[m], b.hi[m] = lo, hi
	}
	actual, _ := bankCache.LoadOrStore(key, b)
	return actual.(*melBank), nil
}

// dctTable holds the DCT-II basis cos(pi*k*(2i+1)/(2N)) for one length,
// with the orthonormal scale factors kept separate so results match
// DCTII bit for bit.
type dctTable struct {
	cos    [][]float64
	s0, sk float64
}

var dctCache sync.Map

// dctIITableCached returns the shared basis table for length n.
func dctIITableCached(n int) *dctTable {
	if t, ok := dctCache.Load(n); ok {
		return t.(*dctTable)
	}
	t := &dctTable{
		cos: make([][]float64, n),
		s0:  math.Sqrt(1 / float64(n)),
		sk:  math.Sqrt(2 / float64(n)),
	}
	for k := 0; k < n; k++ {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = math.Cos(math.Pi * float64(k) * (2*float64(i) + 1) / (2 * float64(n)))
		}
		t.cos[k] = row
	}
	actual, _ := dctCache.LoadOrStore(n, t)
	return actual.(*dctTable)
}

// dctIIInto writes the first len(dst) DCT-II coefficients of x into dst
// using the cached basis. len(dst) must be <= len(x).
func dctIIInto(dst, x []float64) {
	t := dctIITableCached(len(x))
	for k := range dst {
		var sum float64
		row := t.cos[k]
		for i, v := range x {
			sum += v * row[i]
		}
		if k == 0 {
			dst[k] = t.s0 * sum
		} else {
			dst[k] = t.sk * sum
		}
	}
}

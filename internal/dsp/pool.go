package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"affectedge/internal/simd"
)

// Scratch-buffer pools and derived-table caches for the DSP hot path.
//
// Feature extraction runs the same transforms thousands of times per
// corpus (one FFT per 10 ms analysis frame), and since the parallel
// pipeline fans clips out across cores, per-call allocations would turn
// straight into GC pressure that serializes the workers. Two mechanisms
// keep the hot path allocation-free:
//
//   - sync.Pool scratch for transient buffers (FFT work arrays, frame
//     windows, filterbank energies, autocorrelation lags). Buffers are
//     fully overwritten before use, so pooling cannot change results.
//   - immutable caches for derived tables that depend only on
//     configuration (Hamming windows, mel filterbanks, DCT-II cosine
//     tables). These are computed once per shape and shared read-only
//     across goroutines.
//
// Everything here is internal; the public API is unchanged.

var (
	c128Pool = sync.Pool{New: func() any { s := make([]complex128, 0, 512); return &s }}
	f64Pool  = sync.Pool{New: func() any { s := make([]float64, 0, 512); return &s }}
)

// getC128 returns a pooled complex scratch slice of length n.
func getC128(n int) *[]complex128 {
	p := c128Pool.Get().(*[]complex128)
	if cap(*p) < n {
		*p = make([]complex128, n)
	}
	*p = (*p)[:n]
	return p
}

func putC128(p *[]complex128) { c128Pool.Put(p) }

// getF64 returns a pooled float64 scratch slice of length n. Contents are
// unspecified; callers must overwrite every element they read.
func getF64(n int) *[]float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putF64(p *[]float64) { f64Pool.Put(p) }

// hammingCache maps window length -> read-only Hamming window.
var hammingCache sync.Map

// hammingWindowCached returns a shared Hamming window of length n.
// Callers must not modify the returned slice.
func hammingWindowCached(n int) []float64 {
	if w, ok := hammingCache.Load(n); ok {
		return w.([]float64)
	}
	w := HammingWindow(n)
	actual, _ := hammingCache.LoadOrStore(n, w)
	return actual.([]float64)
}

// bankKey identifies a mel filterbank shape.
type bankKey struct {
	nFilters, nfft  int
	rate, low, high float64
}

// melBank is a cached filterbank with precomputed nonzero column ranges,
// so the per-frame energy accumulation only walks each triangle's
// support instead of all nfft/2+1 bins. Complete runs of eight adjacent
// filters are additionally stored interleaved (groups) for the
// lane-per-output kernel; leftover filters keep the per-row path.
type melBank struct {
	rows   [][]float64
	lo, hi []int // [lo, hi) nonzero bin range per filter
	groups []melGroup8
}

// melGroup8 packs eight adjacent filter rows over the union [lo, hi) of
// their supports, interleaved so w[8*(k-lo)+l] is filter l's weight at
// bin k. Bins outside a filter's own support hold exact zeros; since
// power-spectrum inputs are non-negative, the extra w*ps terms are +0
// and leave every lane's partial sums bit-identical to walking just
// that filter's support.
type melGroup8 struct {
	lo, hi int
	w      []float64
}

var bankCache sync.Map

// melFilterBankCached returns a shared, read-only filterbank for the
// given shape, building and caching it on first use.
func melFilterBankCached(nFilters, nfft int, rate, low, high float64) (*melBank, error) {
	key := bankKey{nFilters, nfft, rate, low, high}
	if b, ok := bankCache.Load(key); ok {
		return b.(*melBank), nil
	}
	rows, err := MelFilterBank(nFilters, nfft, rate, low, high)
	if err != nil {
		return nil, err
	}
	b := &melBank{rows: rows, lo: make([]int, len(rows)), hi: make([]int, len(rows))}
	for m, row := range rows {
		lo, hi := 0, len(row)
		for lo < hi && row[lo] == 0 {
			lo++
		}
		for hi > lo && row[hi-1] == 0 {
			hi--
		}
		b.lo[m], b.hi[m] = lo, hi
	}
	for first := 0; first+8 <= len(rows); first += 8 {
		glo, ghi := b.lo[first], b.hi[first]
		for l := 1; l < 8; l++ {
			if b.lo[first+l] < glo {
				glo = b.lo[first+l]
			}
			if b.hi[first+l] > ghi {
				ghi = b.hi[first+l]
			}
		}
		if ghi < glo {
			glo, ghi = 0, 0
		}
		g := melGroup8{lo: glo, hi: ghi, w: make([]float64, 8*(ghi-glo))}
		for l := 0; l < 8; l++ {
			row := rows[first+l]
			for k := glo; k < ghi; k++ {
				g.w[8*(k-glo)+l] = row[k]
			}
		}
		b.groups = append(b.groups, g)
	}
	actual, _ := bankCache.LoadOrStore(key, b)
	return actual.(*melBank), nil
}

// dctTable holds the DCT-II basis cos(pi*k*(2i+1)/(2N)) for one length,
// with the orthonormal scale factors kept separate so results match
// DCTII bit for bit. Complete groups of eight basis rows are also kept
// interleaved (il[g][8i+l] = cos[8g+l][i]) for the lane-per-output
// kernel.
type dctTable struct {
	cos    [][]float64
	il     [][]float64
	s0, sk float64
}

var dctCache sync.Map

// dctIITableCached returns the shared basis table for length n.
func dctIITableCached(n int) *dctTable {
	if t, ok := dctCache.Load(n); ok {
		return t.(*dctTable)
	}
	t := &dctTable{
		cos: make([][]float64, n),
		s0:  math.Sqrt(1 / float64(n)),
		sk:  math.Sqrt(2 / float64(n)),
	}
	for k := 0; k < n; k++ {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = math.Cos(math.Pi * float64(k) * (2*float64(i) + 1) / (2 * float64(n)))
		}
		t.cos[k] = row
	}
	for first := 0; first+8 <= n; first += 8 {
		il := make([]float64, 8*n)
		for l := 0; l < 8; l++ {
			for i, v := range t.cos[first+l] {
				il[8*i+l] = v
			}
		}
		t.il = append(t.il, il)
	}
	actual, _ := dctCache.LoadOrStore(n, t)
	return actual.(*dctTable)
}

// dctIIInto writes the first len(dst) DCT-II coefficients of x into dst
// using the cached basis, eight coefficients per kernel call. len(dst)
// must be <= len(x).
func dctIIInto(dst, x []float64) {
	t := dctIITableCached(len(x))
	k := 0
	for g := 0; g < len(t.il) && k < len(dst); g++ {
		var s [8]float64
		simd.DotI8(&s, t.il[g], x)
		for l := 0; l < 8 && k < len(dst); l, k = l+1, k+1 {
			if k == 0 {
				dst[k] = t.s0 * s[l]
			} else {
				dst[k] = t.sk * s[l]
			}
		}
	}
	// Coefficients past the last complete group of basis rows.
	for ; k < len(dst); k++ {
		var sum float64
		row := t.cos[k]
		for i, v := range x {
			sum += v * row[i]
		}
		if k == 0 {
			dst[k] = t.s0 * sum
		} else {
			dst[k] = t.sk * sum
		}
	}
}

// fftTwiddleKey identifies one cached twiddle table: the stage size with
// the direction in the low bit.
func fftTwiddleKey(size int, inverse bool) int {
	k := size << 1
	if inverse {
		k |= 1
	}
	return k
}

var twiddleCache sync.Map

// fftTwiddlesCached returns the shared twiddle table w^0..w^(size/2-1)
// for one butterfly stage, built with the exact repeated-multiplication
// recurrence the in-line FFT loop used (w *= wStep from w = 1), so every
// butterfly sees bit-identical twiddles to the uncached code.
func fftTwiddlesCached(size int, inverse bool) []complex128 {
	key := fftTwiddleKey(size, inverse)
	if t, ok := twiddleCache.Load(key); ok {
		return t.([]complex128)
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	step := sign * 2 * math.Pi / float64(size)
	wStep := cmplx.Exp(complex(0, step))
	tw := make([]complex128, size/2)
	w := complex(1, 0)
	for k := range tw {
		tw[k] = w
		w *= wStep
	}
	actual, _ := twiddleCache.LoadOrStore(key, tw)
	return actual.([]complex128)
}

var bitrevCache sync.Map

// bitrevPairsCached returns the (i, j) swap pairs (i in the high 32
// bits) of the bit-reversal permutation for length n, precomputed so
// the per-FFT pass is a straight run over the pair list.
func bitrevPairsCached(n int) []uint64 {
	if p, ok := bitrevCache.Load(n); ok {
		return p.([]uint64)
	}
	var pairs []uint64
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			pairs = append(pairs, uint64(i)<<32|uint64(j))
		}
	}
	actual, _ := bitrevCache.LoadOrStore(n, pairs)
	return actual.([]uint64)
}

package dsp

import (
	"math"
	"math/rand"
	"testing"

	"affectedge/internal/simd"
)

// Differential tests pinning the simd-kernel DSP paths against the
// verbatim historical implementations in dsp_ref.go, with the vector
// backend both enabled and force-disabled. Bit equality at both
// settings is the acceptance criterion for the rewrite: dispatch is an
// execution detail, never a results change.

func withBothDispatch(t *testing.T, fn func(t *testing.T, enabled bool)) {
	t.Helper()
	prev := simd.Enabled()
	defer simd.SetEnabled(prev)
	if simd.Available() {
		simd.SetEnabled(true)
		fn(t, true)
	}
	simd.SetEnabled(false)
	fn(t, false)
}

func f64BitsEqual(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %x (%v) want %x (%v)", ctx, i,
				math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func c128BitsEqual(t *testing.T, ctx string, got, want []complex128) {
	t.Helper()
	for i := range got {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("%s: [%d] = %v want %v", ctx, i, got[i], want[i])
		}
	}
}

func randSignal(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestFFTMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for n := 1; n <= 1024; n <<= 1 {
			for _, inverse := range []bool{false, true} {
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				want := append([]complex128(nil), x...)
				fftInPlace(x, inverse)
				fftInPlaceRef(want, inverse)
				c128BitsEqual(t, "fft", x, want)
			}
		}
	})
}

func TestRealFFTMagnitudeMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, n := range []int{1, 3, 7, 63, 200, 256, 500} {
			x := randSignal(rng, n)
			nfft := NextPow2(n)
			got := make([]float64, nfft/2+1)
			want := make([]float64, nfft/2+1)
			realFFTMagnitudeInto(got, x, nfft)
			realFFTMagnitudeIntoRef(want, x, nfft)
			f64BitsEqual(t, "magnitude", got, want)
		}
	})
}

func TestPowerSpectrumMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, n := range []int{1, 5, 200, 256} {
			x := randSignal(rng, n)
			nfft := NextPow2(n)
			got := make([]float64, nfft/2+1)
			want := make([]float64, nfft/2+1)
			powerSpectrumInto(got, x, nfft)
			powerSpectrumIntoRef(want, x, nfft)
			f64BitsEqual(t, "power", got, want)
		}
	})
}

func TestAutocorrelationMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, n := range []int{1, 2, 7, 8, 9, 40, 160, 400} {
			x := randSignal(rng, n)
			for _, lags := range []int{1, 3, 8, 11, n} {
				if lags > n {
					continue
				}
				got := make([]float64, lags)
				want := make([]float64, lags)
				autocorrelationInto(got, x)
				autocorrelationIntoRef(want, x)
				f64BitsEqual(t, "autocorr", got, want)
			}
		}
	})
}

// TestDCTIIMatchesTable pins the satellite change: the exported DCTII now
// routes through the cached cosine basis, and must reproduce the
// recompute-every-cosine original bit for bit.
func TestDCTIIMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, n := range []int{1, 2, 7, 8, 13, 26, 40} {
			x := randSignal(rng, n)
			f64BitsEqual(t, "dctII", DCTII(x), dctIIRef(x))

			got := make([]float64, (n+1)/2)
			want := make([]float64, (n+1)/2)
			dctIIInto(got, x)
			dctIIIntoRef(want, x)
			f64BitsEqual(t, "dctIIInto", got, want)
		}
	})
}

func TestPreEmphasisMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, n := range []int{1, 2, 4, 5, 33, 200} {
			x := randSignal(rng, n)
			got := make([]float64, n)
			want := make([]float64, n)
			preEmphasisInto(got, x, 0.97)
			preEmphasisIntoRef(want, x, 0.97)
			f64BitsEqual(t, "preemph", got, want)
		}
	})
}

func TestApplyWindowMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, n := range []int{0, 1, 3, 4, 7, 64, 200} {
			w := HammingWindow(n)
			x := randSignal(rng, n)
			want := append([]float64(nil), x...)
			ApplyWindow(x, w)
			applyWindowRef(want, w)
			f64BitsEqual(t, "window", x, want)
		}
	})
}

func TestMelEnergiesMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	withBothDispatch(t, func(t *testing.T, on bool) {
		for _, nFilters := range []int{3, 8, 11, 26} {
			bank, err := melFilterBankCached(nFilters, 256, 8000, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			ps := make([]float64, 129)
			for i := range ps {
				ps[i] = math.Abs(rng.NormFloat64())
			}
			got := make([]float64, nFilters)
			want := make([]float64, nFilters)
			m := 0
			for gi := range bank.groups {
				g := &bank.groups[gi]
				var e [8]float64
				simd.DotI8(&e, g.w, ps[g.lo:g.hi])
				for l := 0; l < 8; l, m = l+1, m+1 {
					got[m] = math.Log(math.Max(e[l], 1e-12))
				}
			}
			for ; m < len(bank.rows); m++ {
				var e float64
				row := bank.rows[m]
				for k := bank.lo[m]; k < bank.hi[m]; k++ {
					e += row[k] * ps[k]
				}
				got[m] = math.Log(math.Max(e, 1e-12))
			}
			melEnergiesRef(want, bank, ps)
			f64BitsEqual(t, "mel", got, want)
		}
	})
}

// TestMFCCDispatchInvariant runs the whole pipeline at both dispatch
// settings and requires bit-identical frames — the property that keeps
// every downstream golden fingerprint stable across hosts with and
// without the vector backend.
func TestMFCCDispatchInvariant(t *testing.T) {
	if !simd.Available() {
		t.Skip("no vector backend on this host")
	}
	rng := rand.New(rand.NewSource(28))
	sig := make([]float64, 4000)
	for i := range sig {
		sig[i] = math.Sin(float64(i)*0.03) + 0.1*rng.NormFloat64()
	}
	cfg := DefaultMFCCConfig(8000)
	cfg.IncludeDelta = true

	prev := simd.Enabled()
	defer simd.SetEnabled(prev)
	simd.SetEnabled(true)
	on, err := MFCC(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	simd.SetEnabled(false)
	off, err := MFCC(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(on) != len(off) {
		t.Fatalf("frame count %d vs %d", len(on), len(off))
	}
	for i := range on {
		f64BitsEqual(t, "mfcc frame", on[i], off[i])
	}
}

// FuzzDSPSimdDiff drives every vectorized DSP transform against its
// scalar reference over fuzz-chosen lengths, lags, and contents
// (finite values — the domain of the bit-exactness contract), at both
// dispatch settings, covering the n<4 and n%8 remainder paths.
func FuzzDSPSimdDiff(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3), uint8(5))
	f.Add([]byte{0xFF, 0x80, 0x01, 0x00, 0x42, 0x9A, 0x77, 0xC3}, uint8(60), uint8(1))
	f.Add([]byte{10, 20, 30}, uint8(0), uint8(0))
	f.Add([]byte{0x55, 0xAA, 0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0,
		0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}, uint8(13), uint8(26))
	f.Fuzz(func(t *testing.T, data []byte, lags, coeffs uint8) {
		if len(data) == 0 || len(data) > 2048 {
			return
		}
		x := make([]float64, len(data))
		for i, b := range data {
			x[i] = (float64(b) - 127.5) / 32
		}
		n := len(x)
		prev := simd.Enabled()
		defer simd.SetEnabled(prev)
		settings := []bool{false}
		if simd.Available() {
			settings = []bool{true, false}
		}
		for _, on := range settings {
			simd.SetEnabled(on)

			nfft := NextPow2(n)
			got := make([]float64, nfft/2+1)
			want := make([]float64, nfft/2+1)
			powerSpectrumInto(got, x, nfft)
			powerSpectrumIntoRef(want, x, nfft)
			f64BitsEqual(t, "power", got, want)

			realFFTMagnitudeInto(got, x, nfft)
			realFFTMagnitudeIntoRef(want, x, nfft)
			f64BitsEqual(t, "magnitude", got, want)

			nl := int(lags)%n + 1
			ac, acRef := make([]float64, nl), make([]float64, nl)
			autocorrelationInto(ac, x)
			autocorrelationIntoRef(acRef, x)
			f64BitsEqual(t, "autocorr", ac, acRef)

			nc := int(coeffs)%n + 1
			dc, dcRef := make([]float64, nc), make([]float64, nc)
			dctIIInto(dc, x)
			dctIIIntoRef(dcRef, x)
			f64BitsEqual(t, "dct", dc, dcRef)

			pe, peRef := make([]float64, n), make([]float64, n)
			preEmphasisInto(pe, x, 0.97)
			preEmphasisIntoRef(peRef, x, 0.97)
			f64BitsEqual(t, "preemph", pe, peRef)

			wX := append([]float64(nil), x...)
			wRef := append([]float64(nil), x...)
			win := hammingWindowCached(n)
			ApplyWindow(wX, win)
			applyWindowRef(wRef, win)
			f64BitsEqual(t, "window", wX, wRef)
		}
	})
}

package affect

import (
	"math"
	"math/rand"
	"testing"

	"affectedge/internal/emotion"
	"affectedge/internal/nn"
)

func TestStreamModelDeterministicUnitNorm(t *testing.T) {
	a, err := NewStreamModel(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStreamModel(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Protos) != emotion.NumLabels {
		t.Fatalf("%d prototypes, want %d", len(a.Protos), emotion.NumLabels)
	}
	for l := range a.Protos {
		var norm float64
		for i, v := range a.Protos[l] {
			if math.Float64bits(v) != math.Float64bits(b.Protos[l][i]) {
				t.Fatalf("label %d coord %d differs across same-seed builds", l, i)
			}
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Errorf("label %d prototype norm² %v, want 1", l, norm)
		}
	}
	c, err := NewStreamModel(24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(c.Protos[0][0]) == math.Float64bits(a.Protos[0][0]) {
		t.Error("different seeds produced identical prototypes")
	}
}

func TestStreamModelClassifierConsistency(t *testing.T) {
	const dim, noise = 24, 0.1
	m, err := NewStreamModel(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.QuantizedClassifier(noise)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Layers[0].In; got != dim {
		t.Fatalf("classifier input dim %d, want %d", got, dim)
	}
	rng := rand.New(rand.NewSource(9))
	var s nn.QScratch
	x := make([]float64, dim)
	out := make([]float64, emotion.NumLabels)
	for _, label := range emotion.Labels() {
		hits, trials := 0, 200
		for i := 0; i < trials; i++ {
			if err := m.Sample(x, label, noise, rng); err != nil {
				t.Fatal(err)
			}
			if err := q.InferBatch(&s, x, 1, out); err != nil {
				t.Fatal(err)
			}
			if emotion.Label(nn.Argmax(out)) == label {
				hits++
			}
		}
		if frac := float64(hits) / float64(trials); frac < 0.95 {
			t.Errorf("label %v: only %.0f%% of low-noise samples classify back", label, 100*frac)
		}
	}
}

func TestStreamModelValidation(t *testing.T) {
	if _, err := NewStreamModel(1, 1); err == nil {
		t.Error("dim 1 accepted")
	}
	m, err := NewStreamModel(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := m.Sample(make([]float64, 8), emotion.Label(99), 0.1, rng); err == nil {
		t.Error("invalid label accepted")
	}
	if err := m.Sample(make([]float64, 7), emotion.Happy, 0.1, rng); err == nil {
		t.Error("short destination accepted")
	}
}

package affect

import (
	"fmt"
	"math/rand"

	"affectedge/internal/nn"
)

// ClassMetrics are per-class precision/recall/F1 derived from a confusion
// matrix (rows = targets, columns = predictions).
type ClassMetrics struct {
	Precision, Recall, F1 float64
	Support               int
}

// MetricsFromConfusion computes per-class metrics plus the macro F1.
func MetricsFromConfusion(conf [][]int) ([]ClassMetrics, float64, error) {
	n := len(conf)
	if n == 0 {
		return nil, 0, fmt.Errorf("affect: empty confusion matrix")
	}
	out := make([]ClassMetrics, n)
	var macroF1 float64
	for c := 0; c < n; c++ {
		if len(conf[c]) != n {
			return nil, 0, fmt.Errorf("affect: ragged confusion matrix row %d", c)
		}
		var tp, fn, fp int
		for j := 0; j < n; j++ {
			if j == c {
				tp = conf[c][j]
			} else {
				fn += conf[c][j]
			}
			if j != c {
				fp += conf[j][c]
			}
		}
		m := ClassMetrics{Support: tp + fn}
		if tp+fp > 0 {
			m.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall = float64(tp) / float64(tp+fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out[c] = m
		macroF1 += m.F1
	}
	return out, macroF1 / float64(n), nil
}

// CrossValidate runs k-fold cross-validation of a model builder over a
// labelled example set, returning per-fold accuracies. Folds are
// stratified by class.
func CrossValidate(examples []nn.Example, k int, build func() *nn.Sequential, tc nn.TrainConfig) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("affect: k-fold needs k >= 2, got %d", k)
	}
	if len(examples) < k {
		return nil, fmt.Errorf("affect: %d examples cannot fill %d folds", len(examples), k)
	}
	// Stratified fold assignment: round-robin within each class.
	fold := make([]int, len(examples))
	perClass := map[int]int{}
	for i, ex := range examples {
		fold[i] = perClass[ex.Y] % k
		perClass[ex.Y]++
	}
	accs := make([]float64, 0, k)
	for f := 0; f < k; f++ {
		var train, test []nn.Example
		for i, ex := range examples {
			if fold[i] == f {
				test = append(test, ex)
			} else {
				train = append(train, ex)
			}
		}
		if len(test) == 0 || len(train) == 0 {
			return nil, fmt.Errorf("affect: fold %d is degenerate (%d train, %d test)", f, len(train), len(test))
		}
		net := build()
		foldTC := tc
		foldTC.Seed = tc.Seed + int64(f)
		if _, err := net.Fit(train, foldTC); err != nil {
			return nil, err
		}
		acc, err := net.Evaluate(test)
		if err != nil {
			return nil, err
		}
		accs = append(accs, acc)
	}
	return accs, nil
}

// BuildGRU constructs the GRU variant of the recurrent classifier — the
// extension-study alternative to the LSTM (same stacked topology, lighter
// gates).
func BuildGRU(frames, dim, classes int, scale ModelScale, seed int64) (*nn.Sequential, error) {
	if frames <= 0 || dim <= 0 || classes <= 0 {
		return nil, fmt.Errorf("affect: invalid model shape frames=%d dim=%d classes=%d", frames, dim, classes)
	}
	rng := rand.New(rand.NewSource(seed))
	h1, h2 := 288, 32
	if scale == FastScale {
		h1, h2 = 24, 16
	}
	return nn.NewSequential(
		nn.NewGRU(dim, h1, true, rng),
		nn.NewGRU(h1, h2, false, rng),
		nn.NewDense(h2, classes, rng),
	), nil
}

// BuildSpectrogramCNN constructs the 2-D convolutional variant operating
// on the feature matrix as an image (time x feature plane) — the
// spectrogram-style classifier mentioned as an alternative front end.
func BuildSpectrogramCNN(frames, dim, classes int, scale ModelScale, seed int64) (*nn.Sequential, error) {
	if frames <= 0 || dim <= 0 || classes <= 0 {
		return nil, fmt.Errorf("affect: invalid model shape frames=%d dim=%d classes=%d", frames, dim, classes)
	}
	rng := rand.New(rand.NewSource(seed))
	maps, dense := 8, 64
	if scale == FastScale {
		maps, dense = 4, 24
	}
	conv, err := nn.NewConv2D(maps, 3, 3, rng)
	if err != nil {
		return nil, err
	}
	pool, err := nn.NewMaxPool1D(4) // pool the time dimension
	if err != nil {
		return nil, err
	}
	pooled := (frames + 3) / 4
	return nn.NewSequential(
		conv,
		nn.NewReLU(),
		pool,
		nn.NewFlatten(),
		nn.NewDense(pooled*dim*maps, dense, rng),
		nn.NewReLU(),
		nn.NewDense(dense, classes, rng),
	), nil
}

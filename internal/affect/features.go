// Package affect implements the paper's §2 classifier study: feature
// extraction from emotional speech (MFCC, zero-crossing rate, RMS energy,
// pitch, spectral magnitude), the three classifier architectures at the
// paper's parameter budgets (MLP ≈508 k, CNN ≈649 k, LSTM ≈429 k trainable
// parameters), training/evaluation, confusion matrices, and the 8-bit
// quantization comparison (Fig 3a-d).
package affect

import (
	"fmt"

	"affectedge/internal/affectdata"
	"affectedge/internal/dsp"
	"affectedge/internal/nn"
	"affectedge/internal/parallel"
)

// FeatureConfig controls per-clip feature extraction.
type FeatureConfig struct {
	SampleRate float64
	NumFrames  int // clip features are resampled to this fixed frame count
	NumMFCC    int // cepstral coefficients per frame (deltas are appended)
	HistBins   int // per-frame amplitude histogram bins
	// CMVN applies cepstral mean/variance normalization per clip — the
	// speaker/channel-normalization option for cross-corpus robustness.
	CMVN bool
	// TrimLeadingSilence removes low-energy lead-in before framing.
	TrimLeadingSilence bool
}

// DefaultFeatureConfig returns the pipeline used throughout the study:
// 70 frames x 40 features (13 MFCC + 13 deltas + ZCR + RMS + pitch +
// spectral centroid + 10 histogram bins).
func DefaultFeatureConfig(sampleRate float64) FeatureConfig {
	return FeatureConfig{SampleRate: sampleRate, NumFrames: 70, NumMFCC: 13, HistBins: 10}
}

// Dim returns the per-frame feature dimensionality.
func (c FeatureConfig) Dim() int { return 2*c.NumMFCC + 4 + c.HistBins }

// Features converts a waveform into a fixed-size [NumFrames][Dim] tensor.
func Features(wave []float64, cfg FeatureConfig) (*nn.Tensor, error) {
	if len(wave) == 0 {
		return nil, fmt.Errorf("affect: empty waveform")
	}
	if cfg.NumFrames <= 0 || cfg.NumMFCC <= 0 {
		return nil, fmt.Errorf("affect: invalid feature config %+v", cfg)
	}
	if cfg.TrimLeadingSilence {
		// Adaptive threshold: half the clip RMS separates lead-in noise
		// from voiced content regardless of recording noise floor.
		trimmed := dsp.TrimSilence(wave, int(cfg.SampleRate*0.02), 0.5*dsp.RMS(wave))
		if len(trimmed) > 0 {
			wave = trimmed
		}
	}
	mcfg := dsp.DefaultMFCCConfig(cfg.SampleRate)
	mcfg.NumCoeffs = cfg.NumMFCC
	mcfg.IncludeDelta = true
	mfcc, err := dsp.MFCC(wave, mcfg)
	if err != nil {
		return nil, err
	}
	// Per-frame scalar features over the same framing. EachFrame reuses a
	// single frame buffer; each kept row is allocated exactly once at its
	// final width.
	dim := cfg.Dim()
	raw := make([][]float64, 0, len(mfcc))
	dsp.EachFrame(wave, mcfg.FrameLen, mcfg.Hop, func(i int, f []float64) {
		if i >= len(mfcc) {
			return
		}
		row := make([]float64, 0, dim)
		row = append(row, mfcc[i]...) // 2*NumMFCC values (coeffs + deltas)
		row = append(row,
			dsp.ZeroCrossingRate(f),
			dsp.RMS(f),
			dsp.EstimatePitch(f, cfg.SampleRate, 60, 500)/500, // normalized
			dsp.SpectralCentroid(f, cfg.SampleRate)/(cfg.SampleRate/2),
		)
		row = dsp.AppendHistogram(row, f, cfg.HistBins)
		raw = append(raw, row)
	})
	fixed := resampleRows(raw, cfg.NumFrames)
	if cfg.CMVN {
		dsp.CMVN(fixed)
	}
	return nn.FromMatrix(fixed)
}

// resampleRows linearly interpolates a [T][D] matrix to [n][D] rows.
func resampleRows(rows [][]float64, n int) [][]float64 {
	out := make([][]float64, n)
	if len(rows) == 0 {
		w := 0
		for i := range out {
			out[i] = make([]float64, w)
		}
		return out
	}
	d := len(rows[0])
	for i := 0; i < n; i++ {
		out[i] = make([]float64, d)
		if len(rows) == 1 {
			copy(out[i], rows[0])
			continue
		}
		pos := float64(i) * float64(len(rows)-1) / float64(n-1)
		if n == 1 {
			pos = 0
		}
		lo := int(pos)
		frac := pos - float64(lo)
		hi := lo + 1
		if hi >= len(rows) {
			hi = len(rows) - 1
		}
		for j := 0; j < d; j++ {
			out[i][j] = rows[lo][j]*(1-frac) + rows[hi][j]*frac
		}
	}
	return out
}

// Dataset converts clips into labelled examples under cfg, mapping corpus
// labels onto contiguous class indices (returned in classOf). Class
// indices follow first occurrence in clip order; featurization itself
// fans out over the shared worker pool, with results written back in clip
// order, so output is identical at any parallel.SetWorkers setting.
func Dataset(clips []affectdata.Clip, cfg FeatureConfig) (examples []nn.Example, classOf map[int]int, err error) {
	classOf = map[int]int{}
	for _, c := range clips {
		if _, ok := classOf[int(c.Label)]; !ok {
			classOf[int(c.Label)] = len(classOf)
		}
	}
	examples, err = parallel.Map(len(clips), func(i int) (nn.Example, error) {
		x, err := Features(clips[i].Wave, cfg)
		if err != nil {
			return nn.Example{}, err
		}
		return nn.Example{X: x, Y: classOf[int(clips[i].Label)]}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return examples, classOf, nil
}

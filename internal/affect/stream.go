package affect

import (
	"fmt"
	"math"
	"math/rand"

	"affectedge/internal/emotion"
	"affectedge/internal/nn"
)

// StreamModel synthesizes classifier *inputs* for serving-load simulation
// (the fleet layer): each discrete emotion label owns a fixed unit-norm
// prototype in a d-dimensional feature space, and an observation stream is
// prototype + Gaussian jitter. QuantizedClassifier builds the matched
// int8 decoder — a two-layer MLP whose logits reproduce the prototype
// inner products — so generator and classifier are consistent by
// construction: a low-noise stream for label L classifies as L.
//
// This stands in for the full speech front end (DSP featurization + the
// §2 classifier) when simulating thousands of concurrent devices, where
// the quantity under test is the serving plane — batching, sharding,
// hysteresis control — not acoustic accuracy.
type StreamModel struct {
	// Dim is the feature dimensionality.
	Dim int
	// Protos[l] is the unit-norm prototype of emotion.Label(l).
	Protos [][]float64
}

// NewStreamModel builds per-label prototypes with a seeded RNG. dim must
// be at least 2.
func NewStreamModel(dim int, seed int64) (*StreamModel, error) {
	if dim < 2 {
		return nil, fmt.Errorf("affect: stream model dim %d, want >= 2", dim)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &StreamModel{Dim: dim, Protos: make([][]float64, emotion.NumLabels)}
	for l := range m.Protos {
		p := make([]float64, dim)
		var norm float64
		for norm == 0 { // degenerate all-zero draws re-roll
			for i := range p {
				p[i] = rng.NormFloat64()
			}
			norm = 0
			for _, v := range p {
				norm += v * v
			}
		}
		norm = math.Sqrt(norm)
		for i := range p {
			p[i] /= norm
		}
		m.Protos[l] = p
	}
	return m, nil
}

// Sample writes one observation feature vector for label into dst (length
// Dim): the label prototype plus N(0, noise²) jitter per coordinate, drawn
// from rng. The caller owns rng, so per-session sub-seeded streams stay
// deterministic under any scheduling.
func (m *StreamModel) Sample(dst []float64, label emotion.Label, noise float64, rng *rand.Rand) error {
	if !label.Valid() {
		return fmt.Errorf("affect: stream sample for invalid label %d", int(label))
	}
	if len(dst) != m.Dim {
		return fmt.Errorf("affect: stream sample dst length %d, want %d", len(dst), m.Dim)
	}
	p := m.Protos[label]
	for i := range dst {
		dst[i] = p[i] + noise*rng.NormFloat64()
	}
	return nil
}

// SampleChunks is Sample delivered as a chunked stream, the shape a
// hop-granular streaming front end produces: the observation is generated
// into scratch (length Dim) and emit receives successive fragments of at
// most chunk values, in order. The per-coordinate draw order matches
// Sample exactly, so concatenating the fragments is bit-identical to a
// Sample call against the same rng state — which is what lets the fleet's
// chunked ingest path keep the golden run fingerprints unchanged.
func (m *StreamModel) SampleChunks(label emotion.Label, noise float64, rng *rand.Rand, scratch []float64, chunk int, emit func([]float64) error) error {
	if chunk <= 0 {
		return fmt.Errorf("affect: stream chunk %d, want > 0", chunk)
	}
	if err := m.Sample(scratch, label, noise, rng); err != nil {
		return err
	}
	for at := 0; at < len(scratch); at += chunk {
		end := at + chunk
		if end > len(scratch) {
			end = len(scratch)
		}
		if err := emit(scratch[at:end]); err != nil {
			return err
		}
	}
	return nil
}

// QuantizedClassifier builds the int8 inference pipeline matched to the
// prototypes: logits_c = <x, proto_c>, computed as a Dense(d, 2C) layer
// holding [protos; -protos] rows, a ReLU, and a Dense(2C, C) head with
// weights [I | -I] — relu(a) - relu(-a) = a, so the stack is exactly the
// prototype inner products while still exercising a multi-layer batched
// int8 pipeline. Calibration spans the jittered input range for the given
// noise level.
func (m *StreamModel) QuantizedClassifier(noise float64) (*nn.QMLP, error) {
	c := len(m.Protos)
	rng := rand.New(rand.NewSource(1)) // init is overwritten below
	l1 := nn.NewDense(m.Dim, 2*c, rng)
	l2 := nn.NewDense(2*c, c, rng)
	for l, p := range m.Protos {
		for i, v := range p {
			l1.W.W[l*m.Dim+i] = v
			l1.W.W[(c+l)*m.Dim+i] = -v
		}
	}
	for i := range l1.B.W {
		l1.B.W[i] = 0
	}
	for i := range l2.W.W {
		l2.W.W[i] = 0
	}
	for o := 0; o < c; o++ {
		l2.W.W[o*2*c+o] = 1
		l2.W.W[o*2*c+c+o] = -1
	}
	for i := range l2.B.W {
		l2.B.W[i] = 0
	}
	net := nn.NewSequential(l1, nn.NewReLU(), l2)

	// Calibration examples: each prototype at the extremes of the jittered
	// range, so activation scales cover what Sample emits.
	span := 1 + 4*noise
	var examples []nn.Example
	for l, p := range m.Protos {
		for _, s := range []float64{span, -span} {
			x := nn.NewVector(m.Dim)
			for i, v := range p {
				x.Data[i] = s * v
			}
			examples = append(examples, nn.Example{X: x, Y: l})
		}
	}
	st, err := nn.CalibrateMLP(net, examples)
	if err != nil {
		return nil, err
	}
	return nn.BuildQMLP(net, st)
}

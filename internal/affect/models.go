package affect

import (
	"fmt"
	"math/rand"

	"affectedge/internal/nn"
)

// ModelKind selects one of the paper's three classifier families.
type ModelKind int

// Classifier families compared in §2.2.
const (
	MLP ModelKind = iota
	CNN
	LSTMNet
)

// String returns the paper's name for the model family.
func (k ModelKind) String() string {
	switch k {
	case MLP:
		return "NN" // the paper labels the MLP "NN" in Fig 3
	case CNN:
		return "CNN"
	case LSTMNet:
		return "LSTM"
	}
	return fmt.Sprintf("model(%d)", int(k))
}

// ModelKinds returns the three families in the paper's plotting order.
func ModelKinds() []ModelKind { return []ModelKind{MLP, CNN, LSTMNet} }

// ModelScale selects the network capacity.
type ModelScale int

const (
	// PaperScale builds the models at the paper's parameter budgets:
	// MLP ~508 k, CNN ~649 k, LSTM ~429 k trainable parameters.
	PaperScale ModelScale = iota
	// FastScale builds reduced models (same topology) for quick tests.
	FastScale
)

// Build constructs a classifier of the given kind for inputs of
// [frames][dim] and the given class count.
func Build(kind ModelKind, frames, dim, classes int, scale ModelScale, seed int64) (*nn.Sequential, error) {
	if frames <= 0 || dim <= 0 || classes <= 0 {
		return nil, fmt.Errorf("affect: invalid model shape frames=%d dim=%d classes=%d", frames, dim, classes)
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case MLP:
		// Three hidden layers, 260 neurons total at paper scale.
		h1, h2, h3 := 180, 60, 20
		if scale == FastScale {
			h1, h2, h3 = 48, 24, 12
		}
		return nn.NewSequential(
			nn.NewFlatten(),
			nn.NewDense(frames*dim, h1, rng),
			nn.NewReLU(),
			nn.NewDense(h1, h2, rng),
			nn.NewReLU(),
			nn.NewDense(h2, h3, rng),
			nn.NewReLU(),
			nn.NewDense(h3, classes, rng),
		), nil
	case CNN:
		// Three conv layers of 32/64/128 filters as in §2.2, each
		// followed by 2x max pooling, then a dense head.
		f1, f2, f3, dh := 32, 64, 128, 512
		if scale == FastScale {
			f1, f2, f3, dh = 8, 16, 24, 32
		}
		c1, err := nn.NewConv1D(dim, f1, 5, rng)
		if err != nil {
			return nil, err
		}
		c2, err := nn.NewConv1D(f1, f2, 5, rng)
		if err != nil {
			return nil, err
		}
		c3, err := nn.NewConv1D(f2, f3, 5, rng)
		if err != nil {
			return nil, err
		}
		p1, err := nn.NewMaxPool1D(2)
		if err != nil {
			return nil, err
		}
		p2, err := nn.NewMaxPool1D(2)
		if err != nil {
			return nil, err
		}
		p3, err := nn.NewMaxPool1D(2)
		if err != nil {
			return nil, err
		}
		pooled := frames
		for i := 0; i < 3; i++ {
			pooled = (pooled + 1) / 2
		}
		return nn.NewSequential(
			c1, nn.NewReLU(), p1,
			c2, nn.NewReLU(), p2,
			c3, nn.NewReLU(), p3,
			nn.NewFlatten(),
			nn.NewDense(pooled*f3, dh, rng),
			nn.NewReLU(),
			nn.NewDense(dh, classes, rng),
		), nil
	case LSTMNet:
		// Two stacked LSTM layers, 320 units total at paper scale.
		h1, h2 := 288, 32
		if scale == FastScale {
			h1, h2 = 24, 16
		}
		return nn.NewSequential(
			nn.NewLSTM(dim, h1, true, rng),
			nn.NewLSTM(h1, h2, false, rng),
			nn.NewDense(h2, classes, rng),
		), nil
	}
	return nil, fmt.Errorf("affect: unknown model kind %d", int(kind))
}

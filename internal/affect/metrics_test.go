package affect

import (
	"math"
	"math/rand"
	"testing"

	"affectedge/internal/nn"
)

func TestMetricsFromConfusion(t *testing.T) {
	// Perfect classifier.
	conf := [][]int{{5, 0}, {0, 5}}
	ms, macro, err := MetricsFromConfusion(conf)
	if err != nil {
		t.Fatal(err)
	}
	if macro != 1 {
		t.Errorf("macro F1 = %g, want 1", macro)
	}
	for i, m := range ms {
		if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 || m.Support != 5 {
			t.Errorf("class %d metrics %+v", i, m)
		}
	}
	// Skewed classifier: class 0 perfectly recalled, class 1 never
	// predicted.
	conf = [][]int{{4, 0}, {4, 0}}
	ms, macro, err = MetricsFromConfusion(conf)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Recall != 1 || math.Abs(ms[0].Precision-0.5) > 1e-12 {
		t.Errorf("class 0 metrics %+v", ms[0])
	}
	if ms[1].Recall != 0 || ms[1].F1 != 0 {
		t.Errorf("class 1 metrics %+v", ms[1])
	}
	if macro >= 1 {
		t.Errorf("macro F1 %g should reflect the failed class", macro)
	}
	if _, _, err := MetricsFromConfusion(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := MetricsFromConfusion([][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	// Linearly separable two-class vectors.
	rng := rand.New(rand.NewSource(1))
	var exs []nn.Example
	for i := 0; i < 40; i++ {
		x := nn.NewVector(2)
		y := i % 2
		x.Data[0] = float64(2*y-1) + 0.3*rng.NormFloat64()
		x.Data[1] = rng.NormFloat64()
		exs = append(exs, nn.Example{X: x, Y: y})
	}
	build := func() *nn.Sequential {
		r := rand.New(rand.NewSource(9))
		return nn.NewSequential(nn.NewDense(2, 8, r), nn.NewTanh(), nn.NewDense(8, 2, r))
	}
	accs, err := CrossValidate(exs, 4, build, nn.TrainConfig{Epochs: 60, BatchSize: 8, Optimizer: nn.NewAdam(0.02), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 4 {
		t.Fatalf("%d folds", len(accs))
	}
	for f, a := range accs {
		if a < 0.8 {
			t.Errorf("fold %d accuracy %g", f, a)
		}
	}
	if _, err := CrossValidate(exs, 1, build, nn.TrainConfig{}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(exs[:2], 4, build, nn.TrainConfig{}); err == nil {
		t.Error("too few examples accepted")
	}
}

func TestBuildGRUAndSpectrogramCNN(t *testing.T) {
	cfg := DefaultFeatureConfig(8000)
	gru, err := BuildGRU(cfg.NumFrames, cfg.Dim(), 7, FastScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	cnn2, err := BuildSpectrogramCNN(cfg.NumFrames, cfg.Dim(), 7, FastScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.NewMatrix(cfg.NumFrames, cfg.Dim())
	for _, net := range []*nn.Sequential{gru, cnn2} {
		y, err := net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if y.IsMatrix() || y.Cols != 7 {
			t.Fatalf("output shape %s", y.ShapeString())
		}
	}
	// GRU should be lighter than the LSTM at the same scale.
	lstm, err := Build(LSTMNet, cfg.NumFrames, cfg.Dim(), 7, FastScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gru.NumParams() >= lstm.NumParams() {
		t.Errorf("GRU params %d not below LSTM %d", gru.NumParams(), lstm.NumParams())
	}
	if _, err := BuildGRU(0, 40, 7, FastScale, 1); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := BuildSpectrogramCNN(70, 0, 7, FastScale, 1); err == nil {
		t.Error("invalid shape accepted")
	}
}

package affect

import (
	"fmt"
	"math"
	"testing"

	"affectedge/internal/affectdata"
	"affectedge/internal/nn"
	"affectedge/internal/parallel"
)

// The repo-wide determinism contract: for a fixed seed, every parallel
// pipeline stage — corpus synthesis, featurization, and the full
// corpus×model study — must produce results bit-identical to its serial
// execution. These tests run each stage with the pool pinned to 1 worker
// and to 8 workers and require exact equality.

// withWorkers runs fn at the given pool size, restoring the previous
// setting afterwards.
func withWorkers(workers int, fn func()) {
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	fn()
}

func datasetAt(t *testing.T, workers int) ([]nn.Example, map[int]int) {
	t.Helper()
	var ex []nn.Example
	var classOf map[int]int
	withWorkers(workers, func() {
		clips, err := affectdata.EMOVO().Generate(7, 28)
		if err != nil {
			t.Fatal(err)
		}
		ex, classOf, err = Dataset(clips, DefaultFeatureConfig(8000))
		if err != nil {
			t.Fatal(err)
		}
	})
	return ex, classOf
}

// TestDatasetParallelMatchesSerial covers Generate + Features + class
// assignment end to end.
func TestDatasetParallelMatchesSerial(t *testing.T) {
	serialEx, serialClasses := datasetAt(t, 1)
	wideEx, wideClasses := datasetAt(t, 8)
	if len(serialEx) != len(wideEx) {
		t.Fatalf("example counts differ: %d vs %d", len(serialEx), len(wideEx))
	}
	if len(serialClasses) != len(wideClasses) {
		t.Fatalf("class maps differ: %v vs %v", serialClasses, wideClasses)
	}
	for lbl, cls := range serialClasses {
		if wideClasses[lbl] != cls {
			t.Fatalf("label %d maps to class %d serial, %d parallel", lbl, cls, wideClasses[lbl])
		}
	}
	for i := range serialEx {
		if serialEx[i].Y != wideEx[i].Y {
			t.Fatalf("example %d label differs: %d vs %d", i, serialEx[i].Y, wideEx[i].Y)
		}
		a, b := serialEx[i].X, wideEx[i].X
		if a.Rows != b.Rows || a.Cols != b.Cols {
			t.Fatalf("example %d shape differs: %dx%d vs %dx%d", i, a.Rows, a.Cols, b.Rows, b.Cols)
		}
		for j := range a.Data {
			if math.Float64bits(a.Data[j]) != math.Float64bits(b.Data[j]) {
				t.Fatalf("example %d feature %d differs: %g vs %g", i, j, a.Data[j], b.Data[j])
			}
		}
	}
}

// studyAt runs a miniature full study (all corpora, all model families) at
// the given pool size and kernel batch width. Workers=1 pins the replica
// count too, so the training arithmetic is identical across pool sizes,
// and KernelBatch is an execution knob with no arithmetic effect.
func studyAt(t *testing.T, workers, kernelBatch int) *StudyReport {
	t.Helper()
	var rep *StudyReport
	withWorkers(workers, func() {
		cfg := StudyConfig{
			ClipsPerCorpus: 64,
			TestFraction:   0.25,
			Epochs:         2,
			BatchSize:      8,
			LearningRate:   2e-3,
			Workers:        1,
			KernelBatch:    kernelBatch,
			Scale:          FastScale,
			Seed:           3,
			Feature:        FeatureConfig{SampleRate: 8000, NumFrames: 16, NumMFCC: 8, HistBins: 6},
		}
		var err error
		rep, err = RunStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	return rep
}

// requireEqualReports compares two study reports field by field, demanding
// bit-identical floats and identical confusion tables.
func requireEqualReports(t *testing.T, serial, other *StudyReport, label string) {
	t.Helper()
	if len(serial.Results) != len(other.Results) {
		t.Fatalf("%s: result counts differ: %d vs %d", label, len(serial.Results), len(other.Results))
	}
	for i := range serial.Results {
		a, b := serial.Results[i], other.Results[i]
		if a.Corpus != b.Corpus || a.Kind != b.Kind {
			t.Fatalf("%s: result %d identity differs: %s/%s vs %s/%s", label, i, a.Corpus, a.Kind, b.Corpus, b.Kind)
		}
		if a.Params != b.Params || a.FloatBytes != b.FloatBytes || a.QuantBytes != b.QuantBytes {
			t.Errorf("%s: %s/%s size fields differ", label, a.Corpus, a.Kind)
		}
		if math.Float64bits(a.Accuracy) != math.Float64bits(b.Accuracy) {
			t.Errorf("%s: %s/%s accuracy differs: %v vs %v", label, a.Corpus, a.Kind, a.Accuracy, b.Accuracy)
		}
		if math.Float64bits(a.QuantAccuracy) != math.Float64bits(b.QuantAccuracy) {
			t.Errorf("%s: %s/%s quantized accuracy differs: %v vs %v", label, a.Corpus, a.Kind, a.QuantAccuracy, b.QuantAccuracy)
		}
		if math.Float64bits(a.MacroF1) != math.Float64bits(b.MacroF1) {
			t.Errorf("%s: %s/%s macro F1 differs: %v vs %v", label, a.Corpus, a.Kind, a.MacroF1, b.MacroF1)
		}
		for r := range a.Confusion {
			for c := range a.Confusion[r] {
				if a.Confusion[r][c] != b.Confusion[r][c] {
					t.Errorf("%s: %s/%s confusion[%d][%d] differs: %d vs %d",
						label, a.Corpus, a.Kind, r, c, a.Confusion[r][c], b.Confusion[r][c])
				}
			}
		}
	}
}

// TestRunStudyParallelMatchesSerial locks down the whole grid: datasets,
// training, evaluation, confusion matrices, and quantization must agree
// exactly between a serial and a wide pool.
func TestRunStudyParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature study training skipped in -short mode")
	}
	serial := studyAt(t, 1, 0)
	wide := studyAt(t, 8, 0)
	requireEqualReports(t, serial, wide, "workers 1 vs 8")
}

// TestRunStudyKernelBatchInvariant locks down the batched-kernel contract at
// the study level: the accuracy tables from a miniature RunStudy must be
// identical across every combination of kernel batch width (1 = one example
// per kernel call, 32 = whole-batch fused kernels) and worker-pool size
// (1 vs 8). KernelBatch only changes how many examples each fused kernel
// call covers, never the floating-point operation order of any output.
func TestRunStudyKernelBatchInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature study training skipped in -short mode")
	}
	baseline := studyAt(t, 1, 1)
	for _, workers := range []int{1, 8} {
		for _, kb := range []int{1, 32} {
			if workers == 1 && kb == 1 {
				continue
			}
			rep := studyAt(t, workers, kb)
			label := fmt.Sprintf("workers=%d kernelBatch=%d vs workers=1 kernelBatch=1", workers, kb)
			requireEqualReports(t, baseline, rep, label)
		}
	}
}

package affect

import (
	"math"
	"testing"

	"affectedge/internal/affectdata"
	"affectedge/internal/emotion"
	"affectedge/internal/nn"
)

func TestFeatureShape(t *testing.T) {
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFeatureConfig(spec.SampleRate)
	for _, c := range clips {
		x, err := Features(c.Wave, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if x.Rows != cfg.NumFrames || x.Cols != cfg.Dim() {
			t.Fatalf("feature shape %s, want [%dx%d]", x.ShapeString(), cfg.NumFrames, cfg.Dim())
		}
		for _, v := range x.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("features contain NaN/Inf")
			}
		}
	}
}

func TestFeatureDim(t *testing.T) {
	cfg := DefaultFeatureConfig(8000)
	// 13 MFCC + 13 deltas + zcr + rms + pitch + centroid + 10 hist = 40.
	if cfg.Dim() != 40 {
		t.Errorf("Dim = %d, want 40", cfg.Dim())
	}
}

func TestFeaturesErrors(t *testing.T) {
	cfg := DefaultFeatureConfig(8000)
	if _, err := Features(nil, cfg); err == nil {
		t.Error("empty waveform accepted")
	}
	bad := cfg
	bad.NumFrames = 0
	if _, err := Features(make([]float64, 8000), bad); err == nil {
		t.Error("zero NumFrames accepted")
	}
}

func TestResampleRows(t *testing.T) {
	rows := [][]float64{{0}, {1}, {2}, {3}}
	out := resampleRows(rows, 7)
	if len(out) != 7 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0][0] != 0 || out[6][0] != 3 {
		t.Errorf("endpoints wrong: %v %v", out[0], out[6])
	}
	if math.Abs(out[3][0]-1.5) > 1e-12 {
		t.Errorf("midpoint = %g, want 1.5", out[3][0])
	}
	// Single-row input replicates.
	one := resampleRows([][]float64{{5, 6}}, 3)
	for _, r := range one {
		if r[0] != 5 || r[1] != 6 {
			t.Errorf("single-row resample wrong: %v", r)
		}
	}
}

func TestBuildShapesAndForward(t *testing.T) {
	cfg := DefaultFeatureConfig(8000)
	for _, kind := range ModelKinds() {
		net, err := Build(kind, cfg.NumFrames, cfg.Dim(), 7, FastScale, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		x := nn.NewMatrix(cfg.NumFrames, cfg.Dim())
		y, err := net.Forward(x, false)
		if err != nil {
			t.Fatalf("%v forward: %v", kind, err)
		}
		if y.IsMatrix() || y.Cols != 7 {
			t.Fatalf("%v output shape %s, want [7]", kind, y.ShapeString())
		}
	}
	if _, err := Build(MLP, 0, 40, 7, FastScale, 1); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := Build(ModelKind(9), 70, 40, 7, FastScale, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPaperScaleParameterBudgets(t *testing.T) {
	// The paper quotes ~508 k (MLP), ~649 k (CNN), ~429 k (LSTM) trainable
	// parameters. Our builders must land within 10% of each.
	cfg := DefaultFeatureConfig(8000)
	budgets, err := ParamBudgets(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ModelKind]int{MLP: 508_000, CNN: 649_000, LSTMNet: 429_000}
	for kind, target := range want {
		got := budgets[kind]
		ratio := float64(got) / float64(target)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("%v has %d params, want within 10%% of %d (ratio %.3f)",
				kind, got, target, ratio)
		}
	}
}

func TestModelKindString(t *testing.T) {
	if MLP.String() != "NN" || CNN.String() != "CNN" || LSTMNet.String() != "LSTM" {
		t.Error("model names do not match the paper's labels")
	}
}

func TestDatasetClassMapping(t *testing.T) {
	spec := affectdata.CREMAD()
	clips, err := spec.Generate(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFeatureConfig(spec.SampleRate)
	exs, classOf, err := Dataset(clips, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 12 {
		t.Fatalf("got %d examples", len(exs))
	}
	if len(classOf) != len(spec.Labels) {
		t.Errorf("classOf has %d classes, want %d", len(classOf), len(spec.Labels))
	}
	// Class ids are contiguous.
	seen := map[int]bool{}
	for _, cls := range classOf {
		seen[cls] = true
	}
	for i := 0; i < len(classOf); i++ {
		if !seen[i] {
			t.Errorf("class id %d missing", i)
		}
	}
}

func TestFormatConfusion(t *testing.T) {
	conf := [][]int{{3, 1}, {0, 4}}
	classes := []emotion.Label{emotion.Happy, emotion.Sad}
	s := FormatConfusion(conf, classes)
	if len(s) == 0 {
		t.Fatal("empty confusion output")
	}
	for _, want := range []string{"happy", "sad", "75.0%", "100.0%"} {
		if !contains(s, want) {
			t.Errorf("confusion output missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestTinyStudyEndToEnd trains all three families on a miniature corpus and
// checks every model learns far beyond chance and quantization costs little.
func TestTinyStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training study skipped in -short mode")
	}
	cfg := StudyConfig{
		ClipsPerCorpus: 84,
		TestFraction:   0.25,
		Epochs:         10,
		BatchSize:      8,
		LearningRate:   3e-3,
		Scale:          FastScale,
		Seed:           5,
		Feature:        FeatureConfig{SampleRate: 8000, NumFrames: 30, NumMFCC: 13, HistBins: 10},
	}
	// One corpus only to keep the test fast: EMOVO (7 classes).
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(cfg.Seed, cfg.ClipsPerCorpus)
	if err != nil {
		t.Fatal(err)
	}
	train, test := affectdata.Split(clips, cfg.TestFraction)
	trainEx, classOf, err := Dataset(train, cfg.Feature)
	if err != nil {
		t.Fatal(err)
	}
	testEx, _, err := datasetWithClasses(test, cfg.Feature, classOf)
	if err != nil {
		t.Fatal(err)
	}
	classes := classList(classOf)
	chance := 1.0 / float64(len(classes))
	for _, kind := range ModelKinds() {
		res, err := trainOne(cfg, spec.Name, kind, trainEx, testEx, classes)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Accuracy < 2*chance {
			t.Errorf("%v accuracy %.3f below 2x chance (%.3f)", kind, res.Accuracy, chance)
		}
		if loss := res.QuantLossPct(); loss > 10 {
			t.Errorf("%v quantization loss %.1f pp too large", kind, loss)
		}
		// Confusion matrix totals must match the test set.
		var total int
		for _, row := range res.Confusion {
			for _, v := range row {
				total += v
			}
		}
		if total != len(testEx) {
			t.Errorf("%v confusion total %d, want %d", kind, total, len(testEx))
		}
	}
}

func TestFeatureOptions(t *testing.T) {
	spec := affectdata.EMOVO()
	clips, err := spec.Generate(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultFeatureConfig(spec.SampleRate)
	withCMVN := base
	withCMVN.CMVN = true
	withTrim := base
	withTrim.TrimLeadingSilence = true
	for _, c := range clips {
		a, err := Features(c.Wave, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Features(c.Wave, withCMVN)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Features(c.Wave, withTrim)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows != b.Rows || a.Cols != b.Cols || tr.Rows != a.Rows {
			t.Fatal("option shapes differ")
		}
		// CMVN changes values; columns end up near zero mean.
		var colMean float64
		for r := 0; r < b.Rows; r++ {
			colMean += b.At(r, 0)
		}
		colMean /= float64(b.Rows)
		if math.Abs(colMean) > 1e-6 {
			t.Errorf("CMVN column mean %g, want ~0", colMean)
		}
		same := true
		for i := range a.Data {
			if a.Data[i] != tr.Data[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("silence trimming changed nothing on a clip with lead-in")
		}
	}
}

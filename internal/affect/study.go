package affect

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"affectedge/internal/affectdata"
	"affectedge/internal/emotion"
	"affectedge/internal/nn"
	"affectedge/internal/parallel"
)

// StudyConfig parameterizes the Fig 3 classifier comparison.
type StudyConfig struct {
	ClipsPerCorpus int // clips synthesized per corpus (0 = full corpus size)
	TestFraction   float64
	Epochs         int
	BatchSize      int
	LearningRate   float64
	Workers        int // data-parallel training workers (0 = GOMAXPROCS)
	KernelBatch    int // examples per fused kernel call (0 = BatchSize); results are identical at any value
	Scale          ModelScale
	Seed           int64
	Feature        FeatureConfig
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// DefaultStudyConfig returns a medium-cost configuration: large enough for
// the paper's qualitative results to emerge, small enough to run in
// minutes.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		ClipsPerCorpus: 420,
		TestFraction:   0.25,
		Epochs:         14,
		BatchSize:      16,
		LearningRate:   2e-3,
		Scale:          FastScale,
		Seed:           1,
		Feature:        DefaultFeatureConfig(8000),
	}
}

// ModelResult is the outcome of training one model family on one corpus.
type ModelResult struct {
	Corpus        string
	Kind          ModelKind
	Params        int
	Accuracy      float64 // float-weight test accuracy
	QuantAccuracy float64 // int8 post-training-quantized test accuracy
	FloatBytes    int     // float32 deployment size
	QuantBytes    int     // int8 deployment size
	Confusion     [][]int // test confusion matrix [target][predicted]
	Classes       []emotion.Label
	MacroF1       float64 // macro-averaged F1 over classes
	PerClass      []ClassMetrics
}

// QuantLossPct returns the accuracy loss from quantization in percentage
// points.
func (r ModelResult) QuantLossPct() float64 { return (r.Accuracy - r.QuantAccuracy) * 100 }

// StudyReport aggregates all corpus x model results.
type StudyReport struct {
	Results []ModelResult
}

// Get returns the result for a corpus/model pair.
func (s *StudyReport) Get(corpus string, kind ModelKind) (ModelResult, bool) {
	for _, r := range s.Results {
		if r.Corpus == corpus && r.Kind == kind {
			return r, true
		}
	}
	return ModelResult{}, false
}

// MeanAccuracy returns a model family's accuracy averaged over corpora
// (the paper's Fig 3b aggregation).
func (s *StudyReport) MeanAccuracy(kind ModelKind) float64 {
	var sum float64
	var n int
	for _, r := range s.Results {
		if r.Kind == kind {
			sum += r.Accuracy
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunStudy trains and evaluates every model family on every corpus and
// returns the aggregated report. It reproduces the data behind Fig 3a-3d.
//
// The corpus datasets are prepared first (each internally parallel over
// clips), then the full corpus×model grid fans out over the shared worker
// pool. Every cell trains an independent model on shared read-only
// example slices, and results land in corpus-major, model-order slots, so
// the report is identical at any parallel.SetWorkers setting. Verbose
// progress lines are serialized but may interleave across corpora.
func RunStudy(cfg StudyConfig) (*StudyReport, error) {
	if cfg.Feature.SampleRate == 0 {
		cfg.Feature = DefaultFeatureConfig(8000)
	}
	specs := affectdata.Corpora()
	type corpusData struct {
		name            string
		trainEx, testEx []nn.Example
		classes         []emotion.Label
	}
	data := make([]corpusData, len(specs))
	for ci, spec := range specs {
		clips, err := spec.Generate(cfg.Seed, cfg.ClipsPerCorpus)
		if err != nil {
			return nil, err
		}
		train, test := affectdata.Split(clips, cfg.TestFraction)
		trainEx, classOf, err := Dataset(train, cfg.Feature)
		if err != nil {
			return nil, err
		}
		testEx, _, err := datasetWithClasses(test, cfg.Feature, classOf)
		if err != nil {
			return nil, err
		}
		data[ci] = corpusData{spec.Name, trainEx, testEx, classList(classOf)}
	}
	kinds := ModelKinds()
	var vmu sync.Mutex
	results, err := parallel.Map(len(specs)*len(kinds), func(cell int) (ModelResult, error) {
		d, kind := data[cell/len(kinds)], kinds[cell%len(kinds)]
		res, err := trainOne(cfg, d.name, kind, d.trainEx, d.testEx, d.classes)
		if err != nil {
			return ModelResult{}, fmt.Errorf("affect: %s on %s: %w", kind, d.name, err)
		}
		if cfg.Verbose != nil {
			vmu.Lock()
			fmt.Fprintf(cfg.Verbose, "%-8s %-5s acc=%.3f quant=%.3f params=%d\n",
				d.name, kind, res.Accuracy, res.QuantAccuracy, res.Params)
			vmu.Unlock()
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &StudyReport{Results: results}, nil
}

// trainOne trains a single corpus/model combination.
func trainOne(cfg StudyConfig, corpus string, kind ModelKind, trainEx, testEx []nn.Example, classes []emotion.Label) (ModelResult, error) {
	frames := cfg.Feature.NumFrames
	dim := cfg.Feature.Dim()
	build := func() *nn.Sequential {
		net, err := Build(kind, frames, dim, len(classes), cfg.Scale, cfg.Seed+int64(kind))
		if err != nil {
			panic("affect: builder failed after validation: " + err.Error())
		}
		return net
	}
	// Validate the shape once so the builder cannot panic later.
	if _, err := Build(kind, frames, dim, len(classes), cfg.Scale, cfg.Seed); err != nil {
		return ModelResult{}, err
	}
	rep, err := nn.NewReplicated(build, cfg.Workers)
	if err != nil {
		return ModelResult{}, err
	}
	tc := nn.TrainConfig{
		Epochs:      cfg.Epochs,
		BatchSize:   cfg.BatchSize,
		KernelBatch: cfg.KernelBatch,
		Optimizer:   nn.NewAdam(cfg.LearningRate),
		Seed:        cfg.Seed,
	}
	var fitStart time.Time
	if mtr.trainTime.Enabled() {
		fitStart = time.Now()
	}
	if _, err := rep.Fit(trainEx, tc); err != nil {
		return ModelResult{}, err
	}
	if mtr.trainTime.Enabled() {
		mtr.trainTime.ObserveDuration(time.Since(fitStart))
	}
	mtr.modelsTrained.Inc()
	acc, err := rep.Evaluate(testEx)
	if err != nil {
		return ModelResult{}, err
	}
	countEval(mtr.evalTotal, mtr.evalCorrect, acc, len(testEx))
	conf, err := rep.ConfusionMatrix(testEx, len(classes))
	if err != nil {
		return ModelResult{}, err
	}
	// int8 post-training quantization round trip.
	qm := nn.Quantize(rep.Master)
	qnet := build()
	if err := qm.ApplyTo(qnet); err != nil {
		return ModelResult{}, err
	}
	qacc, err := qnet.Evaluate(testEx)
	if err != nil {
		return ModelResult{}, err
	}
	countEval(mtr.qevalTotal, mtr.qevalCorrect, qacc, len(testEx))
	perClass, macroF1, err := MetricsFromConfusion(conf)
	if err != nil {
		return ModelResult{}, err
	}
	return ModelResult{
		Corpus:        corpus,
		Kind:          kind,
		Params:        rep.Master.NumParams(),
		Accuracy:      acc,
		QuantAccuracy: qacc,
		FloatBytes:    nn.Float32SizeBytes(rep.Master),
		QuantBytes:    qm.SizeBytes(),
		Confusion:     conf,
		Classes:       classes,
		MacroF1:       macroF1,
		PerClass:      perClass,
	}, nil
}

// datasetWithClasses converts clips to examples using a pre-established
// label->class mapping (so test classes match training). Featurization
// fans out over the shared worker pool in clip order.
func datasetWithClasses(clips []affectdata.Clip, cfg FeatureConfig, classOf map[int]int) ([]nn.Example, map[int]int, error) {
	for _, c := range clips {
		if _, ok := classOf[int(c.Label)]; !ok {
			return nil, nil, fmt.Errorf("affect: test label %v unseen in training", c.Label)
		}
	}
	out, err := parallel.Map(len(clips), func(i int) (nn.Example, error) {
		x, err := Features(clips[i].Wave, cfg)
		if err != nil {
			return nn.Example{}, err
		}
		return nn.Example{X: x, Y: classOf[int(clips[i].Label)]}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, classOf, nil
}

// classList inverts a label->class map into class-ordered labels.
func classList(classOf map[int]int) []emotion.Label {
	out := make([]emotion.Label, len(classOf))
	for lbl, cls := range classOf {
		out[cls] = emotion.Label(lbl)
	}
	return out
}

// FormatConfusion renders a confusion matrix with class names, row-
// normalized percentages on the diagonal highlighted by the caller if
// desired. Rows are targets, columns predictions.
func FormatConfusion(conf [][]int, classes []emotion.Label) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range classes {
		fmt.Fprintf(&b, "%9s", c)
	}
	b.WriteByte('\n')
	for i, row := range conf {
		fmt.Fprintf(&b, "%-10s", classes[i])
		var total int
		for _, v := range row {
			total += v
		}
		for _, v := range row {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(v) / float64(total)
			}
			fmt.Fprintf(&b, "%8.1f%%", pct)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParamBudgets returns the paper-scale trainable parameter counts per model
// family for the standard feature shape, sorted by family order. Used by
// the Fig 3c size comparison.
func ParamBudgets(feature FeatureConfig, classes int) (map[ModelKind]int, error) {
	out := map[ModelKind]int{}
	for _, kind := range ModelKinds() {
		net, err := Build(kind, feature.NumFrames, feature.Dim(), classes, PaperScale, 1)
		if err != nil {
			return nil, err
		}
		out[kind] = net.NumParams()
	}
	return out, nil
}

// SortResults orders results corpus-major then model order, for stable
// report output.
func SortResults(rs []ModelResult) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Corpus != rs[j].Corpus {
			return rs[i].Corpus < rs[j].Corpus
		}
		return rs[i].Kind < rs[j].Kind
	})
}

package affect

import (
	"testing"

	"affectedge/internal/affectdata"
	"affectedge/internal/nn"
	"affectedge/internal/parallel"
)

// benchClips synthesizes a small EMOVO batch once for featurization
// benchmarks.
func benchClips(b *testing.B, n int) []affectdata.Clip {
	b.Helper()
	clips, err := affectdata.EMOVO().Generate(1, n)
	if err != nil {
		b.Fatal(err)
	}
	return clips
}

// BenchmarkFeatures measures single-clip feature extraction — the per-clip
// unit of work the parallel dataset pipeline fans out.
func BenchmarkFeatures(b *testing.B) {
	clips := benchClips(b, 1)
	cfg := DefaultFeatureConfig(8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Features(clips[0].Wave, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetParallel compares clip featurization with the worker
// pool pinned to one worker against the GOMAXPROCS default — the headline
// serial-vs-parallel speedup of the training pipeline. On an N-core
// machine the parallel case should approach N× (featurization is
// embarrassingly parallel and, with pooled DSP scratch, nearly
// allocation-free).
func BenchmarkDatasetParallel(b *testing.B) {
	clips := benchClips(b, 32)
	cfg := DefaultFeatureConfig(8000)
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(workers))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Dataset(clips, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0)) // 0 = GOMAXPROCS workers
}

// BenchmarkTrainMLP measures one training epoch of the study's MLP on real
// featurized EMOVO examples, comparing the legacy per-example path against
// the batched kernels (which produce bit-identical results — see
// TestRunStudyKernelBatchInvariant).
func BenchmarkTrainMLP(b *testing.B) {
	clips := benchClips(b, 48)
	cfg := DefaultFeatureConfig(8000)
	examples, _, err := Dataset(clips, cfg)
	if err != nil {
		b.Fatal(err)
	}
	classes := map[int]bool{}
	for _, ex := range examples {
		classes[ex.Y] = true
	}
	run := func(forceScalar bool) func(*testing.B) {
		return func(b *testing.B) {
			net, err := Build(MLP, cfg.NumFrames, cfg.Dim(), len(classes), FastScale, 1)
			if err != nil {
				b.Fatal(err)
			}
			tc := nn.TrainConfig{
				Epochs:      1,
				BatchSize:   16,
				Optimizer:   nn.NewAdam(2e-3),
				Seed:        1,
				ForceScalar: forceScalar,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.Fit(examples, tc); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("scalar", run(true))
	b.Run("batched", run(false))
}

package affect

import "affectedge/internal/obs"

// mtr holds this package's metric handles; nil (the default) is the no-op
// state. The affect scope reports study-level outcomes — models trained,
// wall time per model fit, float and int8 evaluation tallies — while the
// per-kernel and per-epoch detail lives under the nn scope.
var mtr struct {
	modelsTrained *obs.Counter
	trainTime     *obs.Histogram // full Fit wall time per model, µs
	evalTotal     *obs.Counter   // float-weight test examples evaluated
	evalCorrect   *obs.Counter   // ... of which predicted correctly
	qevalTotal    *obs.Counter   // int8-quantized test examples evaluated
	qevalCorrect  *obs.Counter
}

// WireMetrics routes the package's counters into scope s (conventionally
// reg.Scope("affect")); nil restores the no-op state. Wire before a study
// starts — handle swaps are not synchronized with running training.
func WireMetrics(s *obs.Scope) {
	mtr.modelsTrained = s.Counter("models_trained")
	mtr.trainTime = s.Histogram("train_us", obs.DurationBuckets())
	mtr.evalTotal = s.Counter("eval.examples")
	mtr.evalCorrect = s.Counter("eval.correct")
	mtr.qevalTotal = s.Counter("eval.quant_examples")
	mtr.qevalCorrect = s.Counter("eval.quant_correct")
}

// countEval converts an accuracy fraction over n examples back to a hit
// count (Evaluate reports correct/n, so the rounding is exact).
func countEval(total, correct *obs.Counter, acc float64, n int) {
	total.Add(int64(n))
	correct.Add(int64(acc*float64(n) + 0.5))
}

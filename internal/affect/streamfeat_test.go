package affect

import (
	"math"
	"math/rand"
	"testing"

	"affectedge/internal/simd"
)

// TestStreamFeaturizerMatchesBatch streams clips of assorted lengths in
// assorted chunkings and requires the resulting tensor to be bit-identical
// to Features of the whole buffer, at both SIMD settings.
func TestStreamFeaturizerMatchesBatch(t *testing.T) {
	defer simd.SetEnabled(simd.Available())
	cfg := DefaultFeatureConfig(16000)
	cmvn := cfg
	cmvn.CMVN = true
	for _, on := range []bool{true, false} {
		simd.SetEnabled(on && simd.Available())
		for name, c := range map[string]FeatureConfig{"plain": cfg, "cmvn": cmvn} {
			rng := rand.New(rand.NewSource(42))
			for _, n := range []int{50, 400, 401, 8000, 16321} {
				wave := make([]float64, n)
				for i := range wave {
					wave[i] = rng.NormFloat64()
				}
				want, err := Features(wave, c)
				if err != nil {
					t.Fatal(err)
				}
				for _, chunk := range []int{1, 160, 999, n} {
					sf, err := NewStreamFeaturizer(c)
					if err != nil {
						t.Fatal(err)
					}
					for at := 0; at < n; at += chunk {
						end := at + chunk
						if end > n {
							end = n
						}
						if err := sf.Push(wave[at:end]); err != nil {
							t.Fatal(err)
						}
					}
					got, err := sf.Finish()
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Data) != len(want.Data) {
						t.Fatalf("%s n=%d chunk=%d: tensor size %d, want %d", name, n, chunk, len(got.Data), len(want.Data))
					}
					for i := range want.Data {
						if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
							t.Fatalf("%s n=%d chunk=%d: element %d streamed %v != batch %v",
								name, n, chunk, i, got.Data[i], want.Data[i])
						}
					}
					if sf.PeakWindow() > 400+160+2 {
						t.Fatalf("peak ingest window %d exceeds FrameLen+Hop+2", sf.PeakWindow())
					}
				}
			}
		}
	}
}

// TestStreamFeaturizerReset checks one featurizer serves multiple clips.
func TestStreamFeaturizerReset(t *testing.T) {
	cfg := DefaultFeatureConfig(16000)
	sf, err := NewStreamFeaturizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for pass := 0; pass < 2; pass++ {
		wave := make([]float64, 3000+pass*500)
		for i := range wave {
			wave[i] = rng.NormFloat64()
		}
		want, err := Features(wave, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sf.Push(wave); err != nil {
			t.Fatal(err)
		}
		got, err := sf.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("pass %d: element %d mismatch", pass, i)
			}
		}
		sf.Reset()
	}
}

// TestStreamFeaturizerErrors covers lifecycle and config rejections.
func TestStreamFeaturizerErrors(t *testing.T) {
	bad := DefaultFeatureConfig(16000)
	bad.TrimLeadingSilence = true
	if _, err := NewStreamFeaturizer(bad); err == nil {
		t.Fatal("TrimLeadingSilence accepted for streaming")
	}
	bad = DefaultFeatureConfig(16000)
	bad.NumFrames = 0
	if _, err := NewStreamFeaturizer(bad); err == nil {
		t.Fatal("zero NumFrames accepted")
	}
	sf, err := NewStreamFeaturizer(DefaultFeatureConfig(16000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Finish(); err == nil {
		t.Fatal("empty-stream Finish succeeded; Features rejects empty waveforms")
	}
	if err := sf.Push([]float64{1}); err == nil {
		t.Fatal("Push after Finish accepted")
	}
	if _, err := sf.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
	sf.Reset()
	if err := sf.Push(make([]float64, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Finish(); err != nil {
		t.Fatal(err)
	}
}

package affect

import (
	"fmt"

	"affectedge/internal/dsp"
	"affectedge/internal/nn"
)

// StreamFeaturizer is the chunked twin of Features: it accepts a waveform
// as arbitrary-size sample chunks and produces the same fixed-size
// [NumFrames][Dim] tensor, bit-identical (Float64bits) to the whole-buffer
// path. Raw audio is never buffered — the underlying dsp.MFCCStream holds
// at most FrameLen+Hop+2 samples — so ingest memory is constant in clip
// length; only the per-frame feature rows (the same rows Features builds)
// accumulate, since the fixed-frame resampling needs the full time axis.
//
// The cepstral chain and the per-frame scalar features run over the same
// frame tap the streamer emits, which is exactly the framing Features
// applies to the raw wave, so equivalence holds by construction.
//
// TrimLeadingSilence is rejected: its threshold is half the whole-clip
// RMS, which no streaming pass can know before the clip ends. Not safe
// for concurrent use.
type StreamFeaturizer struct {
	cfg FeatureConfig
	ms  *dsp.MFCCStream
	nm  int // mfcc+delta prefix width (2*NumMFCC)

	rows [][]float64
	done bool
}

// NewStreamFeaturizer validates cfg (the same rules as Features, plus the
// no-trim restriction) and builds the streaming pipeline.
func NewStreamFeaturizer(cfg FeatureConfig) (*StreamFeaturizer, error) {
	if cfg.NumFrames <= 0 || cfg.NumMFCC <= 0 {
		return nil, fmt.Errorf("affect: invalid feature config %+v", cfg)
	}
	if cfg.TrimLeadingSilence {
		return nil, fmt.Errorf("affect: TrimLeadingSilence needs the whole clip; disable it for streaming")
	}
	mcfg := dsp.DefaultMFCCConfig(cfg.SampleRate)
	mcfg.NumCoeffs = cfg.NumMFCC
	mcfg.IncludeDelta = true
	s := &StreamFeaturizer{cfg: cfg, nm: 2 * cfg.NumMFCC}
	ms, err := dsp.NewMFCCStream(mcfg, func(i int, row []float64) {
		copy(s.rows[i][:s.nm], row)
	})
	if err != nil {
		return nil, err
	}
	// The frame tap sees each zero-padded raw frame as it completes — the
	// same frames Features hands to the scalar extractors — and fires one
	// frame ahead of the (delta-lagged) coefficient callback, so the row is
	// allocated here and its cepstral prefix filled in above.
	ms.SetFrameTap(func(i int, f []float64) {
		row := make([]float64, s.nm, s.cfg.Dim())
		row = append(row,
			dsp.ZeroCrossingRate(f),
			dsp.RMS(f),
			dsp.EstimatePitch(f, s.cfg.SampleRate, 60, 500)/500,
			dsp.SpectralCentroid(f, s.cfg.SampleRate)/(s.cfg.SampleRate/2),
		)
		row = dsp.AppendHistogram(row, f, s.cfg.HistBins)
		s.rows = append(s.rows, row)
	})
	s.ms = ms
	return s, nil
}

// Push feeds a chunk of waveform samples.
func (s *StreamFeaturizer) Push(chunk []float64) error {
	if s.done {
		return fmt.Errorf("affect: StreamFeaturizer push after Finish")
	}
	return s.ms.Push(chunk)
}

// Frames returns the number of analysis frames completed so far.
func (s *StreamFeaturizer) Frames() int { return s.ms.Frames() }

// PeakWindow reports the high-water raw-sample count retained by the
// ingest ring — the constant-memory bound, independent of clip length.
func (s *StreamFeaturizer) PeakWindow() int { return s.ms.PeakWindow() }

// Finish ends the stream and assembles the [NumFrames][Dim] tensor.
// Mirroring Features, an empty stream is an error.
func (s *StreamFeaturizer) Finish() (*nn.Tensor, error) {
	if s.done {
		return nil, fmt.Errorf("affect: StreamFeaturizer double Finish")
	}
	s.done = true
	if err := s.ms.Flush(); err != nil {
		if s.ms.Frames() == 0 {
			return nil, fmt.Errorf("affect: empty waveform")
		}
		return nil, err
	}
	fixed := resampleRows(s.rows, s.cfg.NumFrames)
	if s.cfg.CMVN {
		dsp.CMVN(fixed)
	}
	return nn.FromMatrix(fixed)
}

// Reset clears state for another clip with the same configuration.
func (s *StreamFeaturizer) Reset() {
	s.ms.Reset()
	s.rows = s.rows[:0]
	s.done = false
}

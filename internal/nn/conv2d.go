package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D is a single-channel-group 2-D convolution over a rank-2 input
// interpreted as an image [H][W] -> [H][W] with Cout output maps flattened
// row-major into the column dimension: output is [H][W*Cout]. It supports
// the spectrogram-image classifier variant (time x frequency input).
//
// Weights: W[out][kh][kw] row-major, "same" zero padding, stride 1.
type Conv2D struct {
	Out, KH, KW int
	W, B        *Param
	x           *Tensor
}

// NewConv2D returns a Conv2D layer with odd kernel dimensions.
func NewConv2D(out, kh, kw int, rng *rand.Rand) (*Conv2D, error) {
	if kh <= 0 || kh%2 == 0 || kw <= 0 || kw%2 == 0 {
		return nil, fmt.Errorf("nn: conv2d kernel %dx%d must be odd and positive", kh, kw)
	}
	if out <= 0 {
		return nil, fmt.Errorf("nn: conv2d needs positive output maps")
	}
	c := &Conv2D{
		Out: out, KH: kh, KW: kw,
		W: newParam("conv2d.w", out, kh*kw),
		B: newParam("conv2d.b", 1, out),
	}
	c.W.initXavier(rng)
	return c, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv2d(%d maps,k%dx%d)", c.Out, c.KH, c.KW) }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() {
		return nil, fmt.Errorf("nn: %s got input %s", c.Name(), x.ShapeString())
	}
	c.x = x
	H, W := x.Rows, x.Cols
	hh, hw := c.KH/2, c.KW/2
	y := NewMatrix(H, W*c.Out)
	for o := 0; o < c.Out; o++ {
		wBase := o * c.KH * c.KW
		for r := 0; r < H; r++ {
			for col := 0; col < W; col++ {
				s := c.B.W[o]
				for kr := 0; kr < c.KH; kr++ {
					sr := r + kr - hh
					if sr < 0 || sr >= H {
						continue
					}
					for kc := 0; kc < c.KW; kc++ {
						sc := col + kc - hw
						if sc < 0 || sc >= W {
							continue
						}
						s += c.W.W[wBase+kr*c.KW+kc] * x.At(sr, sc)
					}
				}
				y.Set(r, col*c.Out+o, s)
			}
		}
	}
	return y, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) (*Tensor, error) {
	H, W := c.x.Rows, c.x.Cols
	if !grad.IsMatrix() || grad.Rows != H || grad.Cols != W*c.Out {
		return nil, fmt.Errorf("nn: %s got grad %s", c.Name(), grad.ShapeString())
	}
	hh, hw := c.KH/2, c.KW/2
	dx := NewMatrix(H, W)
	for o := 0; o < c.Out; o++ {
		wBase := o * c.KH * c.KW
		for r := 0; r < H; r++ {
			for col := 0; col < W; col++ {
				g := grad.At(r, col*c.Out+o)
				if g == 0 {
					continue
				}
				c.B.Grad[o] += g
				for kr := 0; kr < c.KH; kr++ {
					sr := r + kr - hh
					if sr < 0 || sr >= H {
						continue
					}
					for kc := 0; kc < c.KW; kc++ {
						sc := col + kc - hw
						if sc < 0 || sc >= W {
							continue
						}
						c.W.Grad[wBase+kr*c.KW+kc] += g * c.x.At(sr, sc)
						dx.Set(sr, sc, dx.At(sr, sc)+g*c.W.W[wBase+kr*c.KW+kc])
					}
				}
			}
		}
	}
	return dx, nil
}

// LayerNorm normalizes each row (or the whole vector for rank-1 input) to
// zero mean and unit variance, then applies a learned affine transform.
type LayerNorm struct {
	Dim         int
	Gamma, Beta *Param
	// caches
	x          *Tensor
	mean, istd []float64 // per row
}

// NewLayerNorm returns a LayerNorm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	l := &LayerNorm{
		Dim:   dim,
		Gamma: newParam("ln.gamma", 1, dim),
		Beta:  newParam("ln.beta", 1, dim),
	}
	for i := range l.Gamma.W {
		l.Gamma.W[i] = 1
	}
	return l
}

// Name implements Layer.
func (l *LayerNorm) Name() string { return fmt.Sprintf("layernorm(%d)", l.Dim) }

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

const lnEps = 1e-5

// Forward implements Layer.
func (l *LayerNorm) Forward(x *Tensor, train bool) (*Tensor, error) {
	if x.Cols != l.Dim {
		return nil, fmt.Errorf("nn: %s got input %s", l.Name(), x.ShapeString())
	}
	rows := 1
	if x.IsMatrix() {
		rows = x.Rows
	}
	l.x = x
	l.mean = make([]float64, rows)
	l.istd = make([]float64, rows)
	y := x.Clone()
	for r := 0; r < rows; r++ {
		row := y.Data[r*l.Dim : (r+1)*l.Dim]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.Dim)
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		istd := 1 / math.Sqrt(varSum/float64(l.Dim)+lnEps)
		l.mean[r], l.istd[r] = mean, istd
		for i := range row {
			row[i] = (row[i]-mean)*istd*l.Gamma.W[i] + l.Beta.W[i]
		}
	}
	return y, nil
}

// Backward implements Layer.
func (l *LayerNorm) Backward(grad *Tensor) (*Tensor, error) {
	if grad.Cols != l.Dim || grad.IsMatrix() != l.x.IsMatrix() {
		return nil, fmt.Errorf("nn: %s got grad %s", l.Name(), grad.ShapeString())
	}
	rows := 1
	if grad.IsMatrix() {
		rows = grad.Rows
	}
	dx := grad.Clone()
	n := float64(l.Dim)
	for r := 0; r < rows; r++ {
		gRow := grad.Data[r*l.Dim : (r+1)*l.Dim]
		xRow := l.x.Data[r*l.Dim : (r+1)*l.Dim]
		out := dx.Data[r*l.Dim : (r+1)*l.Dim]
		mean, istd := l.mean[r], l.istd[r]
		// dgamma/dbeta and the two reduction terms of the LN gradient.
		var sumDy, sumDyXhat float64
		for i := range gRow {
			xhat := (xRow[i] - mean) * istd
			dy := gRow[i] * l.Gamma.W[i]
			l.Gamma.Grad[i] += gRow[i] * xhat
			l.Beta.Grad[i] += gRow[i]
			sumDy += dy
			sumDyXhat += dy * xhat
		}
		for i := range out {
			xhat := (xRow[i] - mean) * istd
			dy := gRow[i] * l.Gamma.W[i]
			out[i] = istd * (dy - sumDy/n - xhat*sumDyXhat/n)
		}
	}
	return dx, nil
}

package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTM is a single long short-term memory layer over a rank-2 input
// [T][In]. With ReturnSequence it outputs the full hidden sequence [T][H]
// (for stacking); otherwise it outputs the final hidden state [H].
//
// Gate weights are packed input/forget/candidate/output: Wx is [4H][In],
// Wh is [4H][H], B is [4H]. The forget-gate bias is initialized to 1, the
// usual trick for stable early training.
type LSTM struct {
	In, Hidden     int
	ReturnSequence bool
	Wx, Wh, B      *Param

	// forward caches for BPTT
	x                *Tensor
	hs, cs           [][]float64 // per step t: h[t], c[t] (1-indexed; index 0 is zeros)
	gi, gf, gg, gout []float64   // per step gate activations, flattened T x H
}

// NewLSTM returns an LSTM layer with Xavier-initialized weights.
func NewLSTM(in, hidden int, returnSequence bool, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden, ReturnSequence: returnSequence,
		Wx: newParam("lstm.wx", 4*hidden, in),
		Wh: newParam("lstm.wh", 4*hidden, hidden),
		B:  newParam("lstm.b", 1, 4*hidden),
	}
	l.Wx.initXavier(rng)
	l.Wh.initXavier(rng)
	for h := 0; h < hidden; h++ {
		l.B.W[hidden+h] = 1 // forget gate bias
	}
	return l
}

// Name implements Layer.
func (l *LSTM) Name() string { return fmt.Sprintf("lstm(%d->%d)", l.In, l.Hidden) }

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer.
func (l *LSTM) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() || x.Cols != l.In {
		return nil, fmt.Errorf("nn: %s got input %s", l.Name(), x.ShapeString())
	}
	T, H := x.Rows, l.Hidden
	l.x = x
	l.hs = make([][]float64, T+1)
	l.cs = make([][]float64, T+1)
	l.hs[0] = make([]float64, H)
	l.cs[0] = make([]float64, H)
	l.gi = make([]float64, T*H)
	l.gf = make([]float64, T*H)
	l.gg = make([]float64, T*H)
	l.gout = make([]float64, T*H)

	pre := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		xt := x.Row(t)
		hPrev := l.hs[t]
		for g := 0; g < 4*H; g++ {
			s := l.B.W[g]
			wx := l.Wx.W[g*l.In : (g+1)*l.In]
			for i, v := range xt {
				s += wx[i] * v
			}
			wh := l.Wh.W[g*H : (g+1)*H]
			for i, v := range hPrev {
				s += wh[i] * v
			}
			pre[g] = s
		}
		h := make([]float64, H)
		c := make([]float64, H)
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			g := math.Tanh(pre[2*H+j])
			o := sigmoid(pre[3*H+j])
			c[j] = f*l.cs[t][j] + i*g
			h[j] = o * math.Tanh(c[j])
			l.gi[t*H+j], l.gf[t*H+j], l.gg[t*H+j], l.gout[t*H+j] = i, f, g, o
		}
		l.hs[t+1], l.cs[t+1] = h, c
	}
	if l.ReturnSequence {
		y := NewMatrix(T, H)
		for t := 0; t < T; t++ {
			copy(y.Row(t), l.hs[t+1])
		}
		return y, nil
	}
	y := NewVector(H)
	copy(y.Data, l.hs[T])
	return y, nil
}

// Backward implements Layer (truncated nowhere: full BPTT over the clip).
func (l *LSTM) Backward(grad *Tensor) (*Tensor, error) {
	T, H := l.x.Rows, l.Hidden
	// dh[t] is seeded from the output gradient.
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	seed := func(t int) []float64 {
		if l.ReturnSequence {
			return grad.Row(t)
		}
		if t == T-1 {
			return grad.Data
		}
		return nil
	}
	if l.ReturnSequence {
		if !grad.IsMatrix() || grad.Rows != T || grad.Cols != H {
			return nil, fmt.Errorf("nn: %s got grad %s", l.Name(), grad.ShapeString())
		}
	} else if grad.IsMatrix() || grad.Cols != H {
		return nil, fmt.Errorf("nn: %s got grad %s", l.Name(), grad.ShapeString())
	}

	dx := NewMatrix(T, l.In)
	dPre := make([]float64, 4*H)
	for t := T - 1; t >= 0; t-- {
		dh := make([]float64, H)
		copy(dh, dhNext)
		if s := seed(t); s != nil {
			for j := range dh {
				dh[j] += s[j]
			}
		}
		for j := 0; j < H; j++ {
			i, f, g, o := l.gi[t*H+j], l.gf[t*H+j], l.gg[t*H+j], l.gout[t*H+j]
			tc := math.Tanh(l.cs[t+1][j])
			dc := dcNext[j] + dh[j]*o*(1-tc*tc)
			di := dc * g * i * (1 - i)
			df := dc * l.cs[t][j] * f * (1 - f)
			dg := dc * i * (1 - g*g)
			do := dh[j] * tc * o * (1 - o)
			dPre[j] = di
			dPre[H+j] = df
			dPre[2*H+j] = dg
			dPre[3*H+j] = do
			dcNext[j] = dc * f
		}
		// Accumulate parameter gradients and propagate to x and h_{t-1}.
		xt := l.x.Row(t)
		hPrev := l.hs[t]
		dxRow := dx.Row(t)
		for j := range dhNext {
			dhNext[j] = 0
		}
		for g := 0; g < 4*H; g++ {
			dg := dPre[g]
			if dg == 0 {
				continue
			}
			l.B.Grad[g] += dg
			wxRow := l.Wx.W[g*l.In : (g+1)*l.In]
			gxRow := l.Wx.Grad[g*l.In : (g+1)*l.In]
			for i := 0; i < l.In; i++ {
				gxRow[i] += dg * xt[i]
				dxRow[i] += dg * wxRow[i]
			}
			whRow := l.Wh.W[g*H : (g+1)*H]
			ghRow := l.Wh.Grad[g*H : (g+1)*H]
			for i := 0; i < H; i++ {
				ghRow[i] += dg * hPrev[i]
				dhNext[i] += dg * whRow[i]
			}
		}
	}
	return dx, nil
}

package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTM is a single long short-term memory layer over a rank-2 input
// [T][In]. With ReturnSequence it outputs the full hidden sequence [T][H]
// (for stacking); otherwise it outputs the final hidden state [H].
//
// Gate weights are packed input/forget/candidate/output: Wx is [4H][In],
// Wh is [4H][H], B is [4H]. The forget-gate bias is initialized to 1, the
// usual trick for stable early training.
//
// The input-side step matmul is hoisted out of the recurrence: one
// [T][In]×[In][4H] GEMM (gemmBiasNT) computes B + x·Wxᵀ for every step
// before the time loop, so only the hidden-side product remains
// sequential. Per-slot accumulation order is unchanged (bias, then input
// contributions in index order, then hidden contributions), so results
// are bit-identical to the fully sequential form. All per-call scratch is
// grow-only and reused across steps.
type LSTM struct {
	In, Hidden     int
	ReturnSequence bool
	Wx, Wh, B      *Param

	// forward caches for BPTT (reused scratch)
	x                *Tensor
	hs, cs           [][]float64 // per step t: h[t], c[t] (1-indexed; index 0 is zeros)
	hsBuf, csBuf     []float64   // backing storage for hs/cs
	gi, gf, gg, gout []float64   // per step gate activations, flattened T x H
	preX             []float64   // [T][4H] pre-activations, input side then +hidden side in place

	// backward scratch
	dh, dhNext, dcNext, dPre []float64
}

// NewLSTM returns an LSTM layer with Xavier-initialized weights.
func NewLSTM(in, hidden int, returnSequence bool, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden, ReturnSequence: returnSequence,
		Wx: newParam("lstm.wx", 4*hidden, in),
		Wh: newParam("lstm.wh", 4*hidden, hidden),
		B:  newParam("lstm.b", 1, 4*hidden),
	}
	l.Wx.initXavier(rng)
	l.Wh.initXavier(rng)
	for h := 0; h < hidden; h++ {
		l.B.W[hidden+h] = 1 // forget gate bias
	}
	return l
}

// Name implements Layer.
func (l *LSTM) Name() string { return fmt.Sprintf("lstm(%d->%d)", l.In, l.Hidden) }

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// growStateRows resizes the hs/cs step caches to T+1 rows of width H,
// reusing the backing arrays.
func (l *LSTM) growStateRows(T, H int) {
	l.hsBuf = growF64(l.hsBuf, (T+1)*H)
	l.csBuf = growF64(l.csBuf, (T+1)*H)
	if cap(l.hs) < T+1 {
		l.hs = make([][]float64, T+1)
		l.cs = make([][]float64, T+1)
	}
	l.hs, l.cs = l.hs[:T+1], l.cs[:T+1]
	for t := 0; t <= T; t++ {
		l.hs[t] = l.hsBuf[t*H : (t+1)*H]
		l.cs[t] = l.csBuf[t*H : (t+1)*H]
	}
	zeroF64(l.hs[0])
	zeroF64(l.cs[0])
}

// Forward implements Layer.
func (l *LSTM) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() || x.Cols != l.In {
		return nil, fmt.Errorf("nn: %s got input %s, want [Tx%d]", l.Name(), x.ShapeString(), l.In)
	}
	T, H := x.Rows, l.Hidden
	l.x = x
	l.growStateRows(T, H)
	l.gi = growF64(l.gi, T*H)
	l.gf = growF64(l.gf, T*H)
	l.gg = growF64(l.gg, T*H)
	l.gout = growF64(l.gout, T*H)
	l.preX = growF64(l.preX, T*4*H)

	// Input-side step matmul for all T steps at once.
	gemmBiasNT(l.preX, x.Data, l.Wx.W, l.B.W, T, l.In, 4*H)
	for t := 0; t < T; t++ {
		hPrev := l.hs[t]
		pre := l.preX[t*4*H : (t+1)*4*H]
		// Hidden-side product accumulated on top, in place (bias aliasing
		// is safe: each output slot is read before it is written).
		gemmBiasNT(pre, hPrev, l.Wh.W, pre, 1, H, 4*H)
		h := l.hs[t+1]
		c := l.cs[t+1]
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			g := math.Tanh(pre[2*H+j])
			o := sigmoid(pre[3*H+j])
			c[j] = f*l.cs[t][j] + i*g
			h[j] = o * math.Tanh(c[j])
			l.gi[t*H+j], l.gf[t*H+j], l.gg[t*H+j], l.gout[t*H+j] = i, f, g, o
		}
	}
	if l.ReturnSequence {
		y := NewMatrix(T, H)
		for t := 0; t < T; t++ {
			copy(y.Row(t), l.hs[t+1])
		}
		return y, nil
	}
	y := NewVector(H)
	copy(y.Data, l.hs[T])
	return y, nil
}

// Backward implements Layer (truncated nowhere: full BPTT over the clip).
func (l *LSTM) Backward(grad *Tensor) (*Tensor, error) {
	T, H := l.x.Rows, l.Hidden
	// dh[t] is seeded from the output gradient.
	l.dhNext = growF64(l.dhNext, H)
	l.dcNext = growF64(l.dcNext, H)
	dhNext, dcNext := l.dhNext, l.dcNext
	zeroF64(dhNext)
	zeroF64(dcNext)
	seed := func(t int) []float64 {
		if l.ReturnSequence {
			return grad.Row(t)
		}
		if t == T-1 {
			return grad.Data
		}
		return nil
	}
	if l.ReturnSequence {
		if !grad.IsMatrix() || grad.Rows != T || grad.Cols != H {
			return nil, fmt.Errorf("nn: %s got grad %s, want [%dx%d]", l.Name(), grad.ShapeString(), T, H)
		}
	} else if grad.IsMatrix() || grad.Cols != H {
		return nil, fmt.Errorf("nn: %s got grad %s, want [%d]", l.Name(), grad.ShapeString(), H)
	}

	dx := NewMatrix(T, l.In)
	l.dPre = growF64(l.dPre, 4*H)
	l.dh = growF64(l.dh, H)
	dPre, dh := l.dPre, l.dh
	for t := T - 1; t >= 0; t-- {
		copy(dh, dhNext)
		if s := seed(t); s != nil {
			for j := range dh {
				dh[j] += s[j]
			}
		}
		for j := 0; j < H; j++ {
			i, f, g, o := l.gi[t*H+j], l.gf[t*H+j], l.gg[t*H+j], l.gout[t*H+j]
			tc := math.Tanh(l.cs[t+1][j])
			dc := dcNext[j] + dh[j]*o*(1-tc*tc)
			di := dc * g * i * (1 - i)
			df := dc * l.cs[t][j] * f * (1 - f)
			dg := dc * i * (1 - g*g)
			do := dh[j] * tc * o * (1 - o)
			dPre[j] = di
			dPre[H+j] = df
			dPre[2*H+j] = dg
			dPre[3*H+j] = do
			dcNext[j] = dc * f
		}
		// Accumulate parameter gradients and propagate to x and h_{t-1}.
		xt := l.x.Row(t)
		hPrev := l.hs[t]
		dxRow := dx.Row(t)
		for j := range dhNext {
			dhNext[j] = 0
		}
		for g := 0; g < 4*H; g++ {
			dg := dPre[g]
			if dg == 0 {
				continue
			}
			l.B.Grad[g] += dg
			wxRow := l.Wx.W[g*l.In : (g+1)*l.In]
			gxRow := l.Wx.Grad[g*l.In : (g+1)*l.In]
			for i := 0; i < l.In; i++ {
				gxRow[i] += dg * xt[i]
				dxRow[i] += dg * wxRow[i]
			}
			whRow := l.Wh.W[g*H : (g+1)*H]
			ghRow := l.Wh.Grad[g*H : (g+1)*H]
			for i := 0; i < H; i++ {
				ghRow[i] += dg * hPrev[i]
				dhNext[i] += dg * whRow[i]
			}
		}
	}
	return dx, nil
}

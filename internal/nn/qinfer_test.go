package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainedMLP returns a float MLP trained on a small separable task plus
// its train/test examples.
func trainedMLP(t *testing.T) (*Sequential, []Example, []Example) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	var exs []Example
	for i := 0; i < 120; i++ {
		x := NewVector(6)
		y := i % 3
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64() * 0.4
		}
		x.Data[y] += 2.2 // class-indicative bump
		exs = append(exs, Example{X: x, Y: y})
	}
	r := rand.New(rand.NewSource(5))
	net := NewSequential(
		NewFlatten(),
		NewDense(6, 16, r),
		NewReLU(),
		NewDense(16, 3, r),
	)
	if _, err := net.Fit(exs[:90], TrainConfig{Epochs: 40, BatchSize: 8, Optimizer: NewAdam(0.01), Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return net, exs[:90], exs[90:]
}

func TestQMLPMatchesFloatAccuracy(t *testing.T) {
	net, train, test := trainedMLP(t)
	floatAcc, err := net.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	intAcc, err := q.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("float acc %.3f, int8 acc %.3f", floatAcc, intAcc)
	if floatAcc-intAcc > 0.05 {
		t.Errorf("int8 accuracy %.3f more than 5 pp below float %.3f", intAcc, floatAcc)
	}
	if floatAcc < 0.9 {
		t.Errorf("float model underfit: %.3f", floatAcc)
	}
}

func TestQMLPLogitsCloseToFloat(t *testing.T) {
	net, train, test := trainedMLP(t)
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range test[:5] {
		want, err := net.Forward(ex.X, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Infer(ex.X)
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + maxAbs(want.Data)
		for i := range got {
			if math.Abs(got[i]-want.Data[i])/scale > 0.12 {
				t.Errorf("logit %d: int8 %.3f vs float %.3f", i, got[i], want.Data[i])
			}
		}
	}
}

func TestQMLPSizeAdvantage(t *testing.T) {
	net, train, _ := trainedMLP(t)
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	// On this tiny net the int32 biases and per-layer scales eat into the
	// 4x asymptotic ratio; 2x is the floor.
	floatBytes := Float32SizeBytes(net)
	if ratio := float64(floatBytes) / float64(q.SizeBytes()); ratio < 2.0 {
		t.Errorf("int8 pipeline only %.1fx smaller", ratio)
	}
	// At a realistic width the ratio approaches 4x.
	rng := rand.New(rand.NewSource(2))
	big := NewSequential(NewDense(512, 256, rng), NewReLU(), NewDense(256, 8, rng))
	x := NewVector(512)
	stBig, err := CalibrateMLP(big, []Example{{X: x, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	qBig, err := BuildQMLP(big, stBig)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(Float32SizeBytes(big)) / float64(qBig.SizeBytes()); ratio < 3.8 {
		t.Errorf("large-net int8 ratio %.2f, want ~4", ratio)
	}
}

func TestQMLPRejectsUnsupportedLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lstmNet := NewSequential(NewLSTM(4, 4, false, rng), NewDense(4, 2, rng))
	x := NewMatrix(3, 4)
	if _, err := CalibrateMLP(lstmNet, []Example{{X: x, Y: 0}}); err == nil {
		t.Error("LSTM network accepted for int8 MLP inference")
	}
	dense := NewSequential(NewDense(4, 2, rng))
	if _, err := CalibrateMLP(dense, nil); err == nil {
		t.Error("no calibration examples accepted")
	}
	if _, err := BuildQMLP(dense, nil); err == nil {
		t.Error("missing stats accepted")
	}
}

func TestQMLPInputValidation(t *testing.T) {
	net, train, _ := trainedMLP(t)
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Infer(NewVector(5)); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := q.Evaluate(nil); err == nil {
		t.Error("empty evaluation accepted")
	}
}

func TestQMLPInferBatchMatchesInfer(t *testing.T) {
	net, train, test := trainedMLP(t)
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Layers[0].In
	classes := q.Layers[len(q.Layers)-1].Out
	for _, m := range []int{1, 3, len(test)} {
		x := make([]float64, m*in)
		for k := 0; k < m; k++ {
			copy(x[k*in:(k+1)*in], test[k].X.Data)
		}
		out := make([]float64, m*classes)
		var s QScratch
		if err := q.InferBatch(&s, x, m, out); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < m; k++ {
			want, err := q.Infer(test[k].X)
			if err != nil {
				t.Fatal(err)
			}
			for c := range want {
				if math.Float64bits(out[k*classes+c]) != math.Float64bits(want[c]) {
					t.Fatalf("m=%d row %d logit %d: batch %v != infer %v", m, k, c, out[k*classes+c], want[c])
				}
			}
		}
	}
}

func TestQMLPInferBatchScratchReuse(t *testing.T) {
	net, train, test := trainedMLP(t)
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Layers[0].In
	classes := q.Layers[len(q.Layers)-1].Out
	m := 8
	x := make([]float64, m*in)
	for k := 0; k < m; k++ {
		copy(x[k*in:(k+1)*in], test[k%len(test)].X.Data)
	}
	out := make([]float64, m*classes)
	var s QScratch
	if err := q.InferBatch(&s, x, m, out); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := q.InferBatch(&s, x, m, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state InferBatch allocates %.1f objects/run, want 0", allocs)
	}
	// nil scratch allocates internally but must still be correct.
	out2 := make([]float64, m*classes)
	if err := q.InferBatch(nil, x, m, out2); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if math.Float64bits(out[i]) != math.Float64bits(out2[i]) {
			t.Fatalf("nil-scratch logit %d differs: %v vs %v", i, out2[i], out[i])
		}
	}
}

func TestQMLPInferBatchValidation(t *testing.T) {
	net, train, _ := trainedMLP(t)
	st, err := CalibrateMLP(net, train)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Layers[0].In
	classes := q.Layers[len(q.Layers)-1].Out
	var s QScratch
	if err := q.InferBatch(&s, make([]float64, in), 0, make([]float64, classes)); err == nil {
		t.Error("m=0 accepted")
	}
	if err := q.InferBatch(&s, make([]float64, in+1), 1, make([]float64, classes)); err == nil {
		t.Error("wrong input length accepted")
	}
	if err := q.InferBatch(&s, make([]float64, in), 1, make([]float64, classes-1)); err == nil {
		t.Error("short output accepted")
	}
	empty := &QMLP{}
	if err := empty.InferBatch(&s, nil, 1, nil); err == nil {
		t.Error("empty network accepted")
	}
}

func BenchmarkQMLPInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := NewSequential(
		NewDense(128, 64, rng),
		NewReLU(),
		NewDense(64, 8, rng),
	)
	x := NewVector(128)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	st, err := CalibrateMLP(net, []Example{{X: x, Y: 0}})
	if err != nil {
		b.Fatal(err)
	}
	q, err := BuildQMLP(net, st)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Infer(x); err != nil {
			b.Fatal(err)
		}
	}
}

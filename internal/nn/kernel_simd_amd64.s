//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// AVX requires the CPUID AVX + OSXSAVE bits and YMM state enabled in
// XCR0 (XGETBV).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVQ  $1, AX
	CPUID
	MOVL  CX, BX
	ANDL  $(1<<27 | 1<<28), BX // OSXSAVE | AVX
	CMPL  BX, $(1<<27 | 1<<28)
	JNE   no
	MOVL  $0, CX
	XGETBV
	ANDL  $6, AX               // XMM | YMM state
	CMPL  AX, $6
	JNE   no
	MOVB  $1, ret+0(FP)
	RET
no:
	MOVB  $0, ret+0(FP)
	RET

// func axpy4AVX(dst, s0, s1, s2, s3 *float64, n int, a0, a1, a2, a3 float64)
//
// dst[i] += a0*s0[i]; += a1*s1[i]; += a2*s2[i]; += a3*s3[i] for i < n
// (n must be a multiple of 4). Each VMULPD/VADDPD pair rounds separately,
// reproducing the scalar chain bit for bit in every lane.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-80
	MOVQ         dst+0(FP), DI
	MOVQ         s0+8(FP), SI
	MOVQ         s1+16(FP), R8
	MOVQ         s2+24(FP), R9
	MOVQ         s3+32(FP), R10
	MOVQ         n+40(FP), DX
	VBROADCASTSD a0+48(FP), Y4
	VBROADCASTSD a1+56(FP), Y5
	VBROADCASTSD a2+64(FP), Y6
	VBROADCASTSD a3+72(FP), Y7
	XORQ         BX, BX
	SHRQ         $2, DX
	JZ           done
loop:
	VMOVUPD (DI)(BX*1), Y0
	VMOVUPD (SI)(BX*1), Y1
	VMULPD  Y4, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R8)(BX*1), Y2
	VMULPD  Y5, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD (R9)(BX*1), Y3
	VMULPD  Y6, Y3, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD (R10)(BX*1), Y1
	VMULPD  Y7, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     loop
done:
	VZEROUPPER
	RET

// func adamAVX(w, grad, m, v *float64, n int, inv, b1, ib1, b2, ib2, c1, c2, lr, eps float64)
//
// Four-wide Adam update (n must be a multiple of 4), per element:
//
//	gs := g[i]*inv
//	m[i] = b1*m[i] + ib1*gs
//	v[i] = b2*v[i] + (ib2*gs)*gs
//	w[i] -= lr*(m[i]/c1) / (sqrt(v[i]/c2) + eps)
//
// VDIVPD/VSQRTPD are IEEE correctly rounded like their scalar forms, so
// every lane matches the scalar update bit for bit.
TEXT ·adamAVX(SB), NOSPLIT, $0-112
	MOVQ         w+0(FP), DI
	MOVQ         grad+8(FP), SI
	MOVQ         m+16(FP), R8
	MOVQ         v+24(FP), R9
	MOVQ         n+32(FP), DX
	VBROADCASTSD inv+40(FP), Y7
	VBROADCASTSD b1+48(FP), Y8
	VBROADCASTSD ib1+56(FP), Y9
	VBROADCASTSD b2+64(FP), Y10
	VBROADCASTSD ib2+72(FP), Y11
	VBROADCASTSD c1+80(FP), Y12
	VBROADCASTSD c2+88(FP), Y13
	VBROADCASTSD lr+96(FP), Y14
	VBROADCASTSD eps+104(FP), Y15
	XORQ         BX, BX
	SHRQ         $2, DX
	JZ           adone
aloop:
	VMOVUPD (SI)(BX*1), Y0     // grad
	VMULPD  Y7, Y0, Y0         // gs = grad*inv
	VMOVUPD (R8)(BX*1), Y1     // m
	VMULPD  Y8, Y1, Y1         // b1*m
	VMULPD  Y9, Y0, Y2         // ib1*gs
	VADDPD  Y2, Y1, Y1         // m' = b1*m + ib1*gs
	VMOVUPD Y1, (R8)(BX*1)
	VMOVUPD (R9)(BX*1), Y3     // v
	VMULPD  Y10, Y3, Y3        // b2*v
	VMULPD  Y11, Y0, Y4        // ib2*gs
	VMULPD  Y0, Y4, Y4         // (ib2*gs)*gs
	VADDPD  Y4, Y3, Y3         // v' = b2*v + (ib2*gs)*gs
	VMOVUPD Y3, (R9)(BX*1)
	VDIVPD  Y12, Y1, Y1        // mHat = m'/c1
	VDIVPD  Y13, Y3, Y3        // vHat = v'/c2
	VSQRTPD Y3, Y3
	VADDPD  Y15, Y3, Y3        // sqrt(vHat) + eps
	VMULPD  Y14, Y1, Y1        // lr*mHat
	VDIVPD  Y3, Y1, Y1         // delta
	VMOVUPD (DI)(BX*1), Y5
	VSUBPD  Y1, Y5, Y5         // w - delta
	VMOVUPD Y5, (DI)(BX*1)
	ADDQ    $32, BX
	DECQ    DX
	JNZ     aloop
adone:
	VZEROUPPER
	RET

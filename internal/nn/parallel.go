package nn

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Replicated wraps N architecture-identical replicas of a network for
// data-parallel training: each batch is split across replicas, per-replica
// gradients are merged into the master, the optimizer steps the master, and
// the updated weights are broadcast back.
//
// Layer forward caches make a single Sequential unsafe for concurrent use;
// replication is the supported way to parallelize.
type Replicated struct {
	Master   *Sequential
	replicas []*Sequential
}

// NewReplicated builds a master plus workers-1 replicas using build, which
// must construct identical architectures (it may use its own RNG; weights
// are synchronized from the master before any training). workers <= 0
// selects GOMAXPROCS.
func NewReplicated(build func() *Sequential, workers int) (*Replicated, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Replicated{Master: build()}
	nMaster := r.Master.NumParams()
	for i := 1; i < workers; i++ {
		rep := build()
		if rep.NumParams() != nMaster {
			return nil, fmt.Errorf("nn: replica %d has %d params, master has %d", i, rep.NumParams(), nMaster)
		}
		r.replicas = append(r.replicas, rep)
	}
	r.broadcast()
	return r, nil
}

// all returns master plus replicas.
func (r *Replicated) all() []*Sequential {
	return append([]*Sequential{r.Master}, r.replicas...)
}

// broadcast copies master weights into every replica.
func (r *Replicated) broadcast() {
	mp := r.Master.Params()
	for _, rep := range r.replicas {
		for i, p := range rep.Params() {
			copy(p.W, mp[i].W)
		}
	}
}

// mergeGrads adds replica gradients into the master and zeroes them.
func (r *Replicated) mergeGrads() {
	mp := r.Master.Params()
	for _, rep := range r.replicas {
		for i, p := range rep.Params() {
			for j, g := range p.Grad {
				mp[i].Grad[j] += g
			}
			p.ZeroGrad()
		}
	}
}

// Fit trains the master network with data-parallel mini-batches and returns
// the final epoch's mean loss.
//
// Each replica processes the same strided slice of the batch it always
// did (worker w takes batch elements w, w+R, ...), whether it runs the
// per-example path or the batched GEMM path: the batched kernels keep
// gradient accumulation in that stride order and replica gradients merge
// in replica order, so results are bit-identical to the per-example path
// at any worker count.
func (r *Replicated) Fit(examples []Example, cfg TrainConfig) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no training examples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	nets := r.all()
	_, uniform := uniformWidth(examples)
	useBatch := !cfg.ForceScalar && uniform && r.Master.BatchCapable()
	kb := cfg.KernelBatch
	if kb <= 0 {
		kb = cfg.BatchSize
	}
	workers := make([]batchWorker, len(nets))
	subsets := make([][]int, len(nets))
	for w := range nets {
		workers[w].net = nets[w]
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	masterParams := r.Master.Params()
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var correct int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			losses := make([]float64, len(nets))
			hits := make([]int, len(nets))
			errs := make([]error, len(nets))
			var wg sync.WaitGroup
			for w := range nets {
				if w >= len(batch) {
					break
				}
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					net := nets[w]
					if useBatch {
						idx := subsets[w][:0]
						for bi := w; bi < len(batch); bi += len(nets) {
							idx = append(idx, batch[bi])
						}
						subsets[w] = idx
						for ks := 0; ks < len(idx); ks += kb {
							ke := ks + kb
							if ke > len(idx) {
								ke = len(idx)
							}
							if err := workers[w].step(examples, idx[ks:ke], &losses[w], &hits[w]); err != nil {
								errs[w] = err
								return
							}
						}
						return
					}
					for bi := w; bi < len(batch); bi += len(nets) {
						ex := examples[batch[bi]]
						y, err := net.Forward(ex.X, true)
						if err != nil {
							errs[w] = err
							return
						}
						loss, grad, err := CrossEntropy(y.Data, ex.Y)
						if err != nil {
							errs[w] = err
							return
						}
						losses[w] += loss
						if Argmax(y.Data) == ex.Y {
							hits[w]++
						}
						if err := net.backward(FromVector(grad)); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			for w := range nets {
				epochLoss += losses[w]
				correct += hits[w]
			}
			r.mergeGrads()
			if r.Master.ClipNorm > 0 {
				ClipGradients(masterParams, r.Master.ClipNorm*float64(len(batch)))
			}
			cfg.Optimizer.Step(masterParams, len(batch))
			r.broadcast()
		}
		lastLoss = epochLoss / float64(len(order))
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss, float64(correct)/float64(len(order)))
		}
	}
	return lastLoss, nil
}

// predictAll fills preds[i] with each example's predicted class, striping
// examples across the replicas and using each replica's batched forward
// path when available. Predictions are per-example independent, so the
// striping cannot affect results.
func (r *Replicated) predictAll(examples []Example) ([]int, error) {
	nets := r.all()
	preds := make([]int, len(examples))
	errs := make([]error, len(nets))
	var wg sync.WaitGroup
	for w := range nets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var idx []int
			for i := w; i < len(examples); i += len(nets) {
				idx = append(idx, i)
			}
			if len(idx) == 0 {
				return
			}
			sub := make([]int, len(idx))
			if err := nets[w].predictClasses(examples, idx, sub); err != nil {
				errs[w] = err
				return
			}
			for k, i := range idx {
				preds[i] = sub[k]
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return preds, nil
}

// Evaluate computes accuracy using all replicas in parallel.
func (r *Replicated) Evaluate(examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no evaluation examples")
	}
	preds, err := r.predictAll(examples)
	if err != nil {
		return 0, err
	}
	var correct int
	for i, ex := range examples {
		if preds[i] == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples)), nil
}

// ConfusionMatrix returns counts[target][predicted] over examples using the
// replicas in parallel. numClasses rows/cols.
func (r *Replicated) ConfusionMatrix(examples []Example, numClasses int) ([][]int, error) {
	preds, err := r.predictAll(examples)
	if err != nil {
		return nil, err
	}
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i, ex := range examples {
		if ex.Y >= 0 && ex.Y < numClasses && preds[i] >= 0 && preds[i] < numClasses {
			m[ex.Y][preds[i]]++
		}
	}
	return m, nil
}

package nn

import (
	"math/rand"
	"testing"
)

func TestGRUOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := NewGRU(3, 4, true, rng)
	last := NewGRU(3, 4, false, rng)
	x := NewMatrix(6, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ys, err := seq.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if ys.Rows != 6 || ys.Cols != 4 {
		t.Fatalf("seq output %s", ys.ShapeString())
	}
	yl, err := last.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if yl.IsMatrix() || yl.Cols != 4 {
		t.Fatalf("last output %s", yl.ShapeString())
	}
	if _, err := last.Forward(NewVector(3), false); err == nil {
		t.Error("vector input accepted")
	}
}

func TestGRUGradientsLastState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewSequential(
		NewGRU(4, 5, false, rng),
		NewDense(5, 3, rng),
	)
	x := NewMatrix(7, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 1)
}

func TestGRUGradientsStacked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := NewSequential(
		NewGRU(3, 4, true, rng),
		NewGRU(4, 4, false, rng),
		NewDense(4, 2, rng),
	)
	x := NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 0)
}

func TestGRULearnsSequencePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var exs []Example
	for k := 0; k < 60; k++ {
		x := NewMatrix(8, 1)
		up := k%2 == 0
		for i := 0; i < 8; i++ {
			v := float64(i) / 8
			if !up {
				v = 1 - v
			}
			x.Set(i, 0, v+0.05*rng.NormFloat64())
		}
		y := 0
		if !up {
			y = 1
		}
		exs = append(exs, Example{X: x, Y: y})
	}
	n := NewSequential(
		NewGRU(1, 8, false, rng),
		NewDense(8, 2, rng),
	)
	if _, err := n.Fit(exs[:40], TrainConfig{Epochs: 40, BatchSize: 8, Optimizer: NewAdam(0.01), Seed: 2}); err != nil {
		t.Fatal(err)
	}
	acc, err := n.Evaluate(exs[40:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("GRU sequence accuracy %g, want >= 0.9", acc)
	}
}

func TestConv2DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewConv2D(3, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(8, 6)
	y, err := c.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 8 || y.Cols != 18 {
		t.Fatalf("conv2d output %s, want [8x18]", y.ShapeString())
	}
	if _, err := NewConv2D(3, 2, 3, rng); err == nil {
		t.Error("even kernel accepted")
	}
	if _, err := NewConv2D(0, 3, 3, rng); err == nil {
		t.Error("zero maps accepted")
	}
	if _, err := c.Forward(NewVector(6), false); err == nil {
		t.Error("vector input accepted")
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := NewConv2D(2, 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool1D(2)
	if err != nil {
		t.Fatal(err)
	}
	n := NewSequential(
		c,
		NewReLU(),
		pool, // pools the row (time) dimension
		NewFlatten(),
		NewDense(3*5*2, 3, rng), // ceil(6/2)=3 rows x 5 cols x 2 maps
	)
	x := NewMatrix(6, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 2)
}

func TestLayerNormForward(t *testing.T) {
	ln := NewLayerNorm(4)
	x := FromVector([]float64{1, 2, 3, 4})
	y, err := ln.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range y.Data {
		mean += v
	}
	mean /= 4
	if mean > 1e-9 || mean < -1e-9 {
		t.Errorf("normalized mean %g", mean)
	}
	var varSum float64
	for _, v := range y.Data {
		varSum += (v - mean) * (v - mean)
	}
	if v := varSum / 4; v < 0.98 || v > 1.02 {
		t.Errorf("normalized variance %g", v)
	}
	if _, err := ln.Forward(NewVector(5), false); err == nil {
		t.Error("wrong width accepted")
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewSequential(
		NewDense(6, 5, rng),
		NewLayerNorm(5),
		NewTanh(),
		NewDense(5, 3, rng),
	)
	x := NewVector(6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 1)
}

func TestLayerNormMatrixGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv, err := NewConv1D(3, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := NewSequential(
		conv,
		NewLayerNorm(4),
		NewGlobalAvgPool1D(),
		NewDense(4, 2, rng),
	)
	x := NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 0)
}

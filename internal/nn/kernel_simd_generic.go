//go:build !amd64

package nn

// simdActive reports whether axpy4/adamSlice dispatch to a vector
// backend; this architecture only has the portable loop.
func simdActive() bool { return false }

// axpy4 computes dst[i] += a0·s0[i] + a1·s1[i] + a2·s2[i] + a3·s3[i]
// (chained in that order per slot) over len(dst) elements.
func axpy4(dst, s0, s1, s2, s3 []float64, a0, a1, a2, a3 float64) {
	axpy4Go(dst, s0, s1, s2, s3, a0, a1, a2, a3)
}

// adamSlice applies one Adam update to a parameter slice.
func adamSlice(w, grad, m, v []float64, inv, b1, b2, c1, c2, lr, eps float64) {
	adamSliceGo(w, grad, m, v, inv, b1, b2, c1, c2, lr, eps)
}

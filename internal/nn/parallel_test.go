package nn

import (
	"math/rand"
	"testing"
)

func TestReplicatedFitXOR(t *testing.T) {
	build := func() *Sequential {
		r := rand.New(rand.NewSource(42))
		return NewSequential(NewDense(2, 8, r), NewTanh(), NewDense(8, 2, r))
	}
	rep, err := NewReplicated(build, 4)
	if err != nil {
		t.Fatal(err)
	}
	exs := xorExamples()
	if _, err := rep.Fit(exs, TrainConfig{Epochs: 400, BatchSize: 4, Optimizer: NewAdam(0.03), Seed: 1}); err != nil {
		t.Fatal(err)
	}
	acc, err := rep.Evaluate(exs)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1 {
		t.Errorf("replicated XOR accuracy %g, want 1.0", acc)
	}
	// Replicas stay in sync with the master after training.
	mp := rep.Master.Params()
	for ri, r := range rep.replicas {
		for pi, p := range r.Params() {
			for i := range p.W {
				if p.W[i] != mp[pi].W[i] {
					t.Fatalf("replica %d param %d diverged from master", ri, pi)
				}
			}
		}
	}
}

func TestReplicatedMismatchedBuilder(t *testing.T) {
	n := 0
	build := func() *Sequential {
		n++
		r := rand.New(rand.NewSource(1))
		if n > 1 {
			return NewSequential(NewDense(2, 3, r))
		}
		return NewSequential(NewDense(2, 4, r))
	}
	if _, err := NewReplicated(build, 2); err == nil {
		t.Error("mismatched replica architecture accepted")
	}
}

func TestReplicatedConfusionMatrix(t *testing.T) {
	build := func() *Sequential {
		r := rand.New(rand.NewSource(42))
		return NewSequential(NewDense(2, 8, r), NewTanh(), NewDense(8, 2, r))
	}
	rep, err := NewReplicated(build, 3)
	if err != nil {
		t.Fatal(err)
	}
	exs := xorExamples()
	if _, err := rep.Fit(exs, TrainConfig{Epochs: 400, BatchSize: 4, Optimizer: NewAdam(0.03), Seed: 1}); err != nil {
		t.Fatal(err)
	}
	cm, err := rep.ConfusionMatrix(exs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total, diag int
	for i := range cm {
		for j := range cm[i] {
			total += cm[i][j]
			if i == j {
				diag += cm[i][j]
			}
		}
	}
	if total != len(exs) {
		t.Errorf("confusion matrix total %d, want %d", total, len(exs))
	}
	if diag != total {
		t.Errorf("XOR should be perfectly classified, diag %d/%d", diag, total)
	}
}

func TestReplicatedMatchesSingleThreadDirection(t *testing.T) {
	// Replicated training with 1 worker is exactly Fit.
	build := func() *Sequential {
		r := rand.New(rand.NewSource(9))
		return NewSequential(NewDense(2, 6, r), NewTanh(), NewDense(6, 2, r))
	}
	rep, err := NewReplicated(build, 1)
	if err != nil {
		t.Fatal(err)
	}
	single := build()
	cfg := TrainConfig{Epochs: 50, BatchSize: 4, Optimizer: NewAdam(0.02), Seed: 7}
	if _, err := rep.Fit(xorExamples(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg2 := TrainConfig{Epochs: 50, BatchSize: 4, Optimizer: NewAdam(0.02), Seed: 7}
	if _, err := single.Fit(xorExamples(), cfg2); err != nil {
		t.Fatal(err)
	}
	mp, sp := rep.Master.Params(), single.Params()
	for pi := range mp {
		for i := range mp[pi].W {
			if diff := mp[pi].W[i] - sp[pi].W[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("1-worker replicated diverges from Fit at param %d[%d]", pi, i)
			}
		}
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad computes dLoss/dW[i] for one parameter element by central
// differences, where loss is softmax CE of the network output on (x, y).
func numericalGrad(t *testing.T, n *Sequential, x *Tensor, y int, p *Param, i int) float64 {
	t.Helper()
	const h = 1e-5
	eval := func() float64 {
		out, err := n.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		loss, _, err := CrossEntropy(out.Data, y)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	orig := p.W[i]
	p.W[i] = orig + h
	lp := eval()
	p.W[i] = orig - h
	lm := eval()
	p.W[i] = orig
	return (lp - lm) / (2 * h)
}

// checkGradients compares analytic and numeric gradients for a sample of
// parameter elements of every parameter tensor.
func checkGradients(t *testing.T, n *Sequential, x *Tensor, y int) {
	t.Helper()
	// Analytic pass.
	out, err := n.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := CrossEntropy(out.Data, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.backward(FromVector(grad)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, p := range n.Params() {
		nSamples := 6
		if len(p.W) < nSamples {
			nSamples = len(p.W)
		}
		for s := 0; s < nSamples; s++ {
			i := rng.Intn(len(p.W))
			analytic := p.Grad[i]
			numeric := numericalGrad(t, n, x, y, p, i)
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1e-4, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if diff/scale > 2e-3 {
				t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, analytic, numeric)
			}
		}
		p.ZeroGrad()
	}
}

// checkGradientsBatched compares the batched backward path's analytic
// gradients against central differences of the summed batch loss
// (computed through the scalar forward path, so the two paths also
// cross-check each other).
func checkGradientsBatched(t *testing.T, n *Sequential, examples []Example) {
	t.Helper()
	w := len(examples[0].X.Data)
	var xb, gb Tensor
	x := xb.reshape(len(examples), w)
	for k, ex := range examples {
		copy(x.Data[k*w:(k+1)*w], ex.X.Data)
	}
	y, err := n.ForwardBatch(x, false)
	if err != nil {
		t.Fatal(err)
	}
	g := gb.reshape(len(examples), y.Cols)
	for r, ex := range examples {
		if _, err := crossEntropyInto(g.Row(r), y.Row(r), ex.Y); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.backwardBatch(g); err != nil {
		t.Fatal(err)
	}
	batchLoss := func() float64 {
		var total float64
		for _, ex := range examples {
			out, err := n.Forward(ex.X, false)
			if err != nil {
				t.Fatal(err)
			}
			loss, _, err := CrossEntropy(out.Data, ex.Y)
			if err != nil {
				t.Fatal(err)
			}
			total += loss
		}
		return total
	}
	const h = 1e-5
	rng := rand.New(rand.NewSource(98))
	for _, p := range n.Params() {
		nSamples := 6
		if len(p.W) < nSamples {
			nSamples = len(p.W)
		}
		for s := 0; s < nSamples; s++ {
			i := rng.Intn(len(p.W))
			analytic := p.Grad[i]
			orig := p.W[i]
			p.W[i] = orig + h
			lp := batchLoss()
			p.W[i] = orig - h
			lm := batchLoss()
			p.W[i] = orig
			numeric := (lp - lm) / (2 * h)
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1e-4, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if diff/scale > 2e-3 {
				t.Errorf("%s[%d]: batched analytic %.8f vs numeric %.8f", p.Name, i, analytic, numeric)
			}
		}
		p.ZeroGrad()
	}
}

func TestDenseGradientsBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewSequential(
		NewDense(7, 5, rng),
		NewReLU(),
		NewDense(5, 4, rng),
		NewTanh(),
		NewDense(4, 3, rng),
	)
	checkGradientsBatched(t, n, testExamples(6, 7, 3, 8))
}

func TestFlattenGradientsBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewSequential(
		NewFlatten(),
		NewDense(12, 6, rng),
		NewReLU(),
		NewDense(6, 3, rng),
	)
	checkGradientsBatched(t, n, testExamples(5, 12, 3, 10))
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewSequential(
		NewDense(7, 5, rng),
		NewReLU(),
		NewDense(5, 3, rng),
	)
	x := NewVector(7)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 1)
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewSequential(
		NewDense(6, 4, rng),
		NewTanh(),
		NewDense(4, 3, rng),
	)
	x := NewVector(6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 2)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv, err := NewConv1D(3, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool1D(2)
	if err != nil {
		t.Fatal(err)
	}
	n := NewSequential(
		conv,
		NewReLU(),
		pool,
		NewFlatten(),
		NewDense(4*4, 3, rng), // 8 timesteps pooled to 4, 4 channels
	)
	x := NewMatrix(8, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 0)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv, err := NewConv1D(2, 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := NewSequential(
		conv,
		NewTanh(),
		NewGlobalAvgPool1D(),
		NewDense(3, 2, rng),
	)
	x := NewMatrix(6, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 1)
}

func TestLSTMGradientsLastState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewSequential(
		NewLSTM(4, 5, false, rng),
		NewDense(5, 3, rng),
	)
	x := NewMatrix(7, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 2)
}

func TestLSTMGradientsStacked(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := NewSequential(
		NewLSTM(3, 4, true, rng),
		NewLSTM(4, 4, false, rng),
		NewDense(4, 2, rng),
	)
	x := NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	checkGradients(t, n, x, 0)
}

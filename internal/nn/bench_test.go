package nn

import (
	"math/rand"
	"testing"

	"affectedge/internal/obs"
)

// Micro-benchmarks for the batched GEMM kernels against the per-example
// baselines they replace. All report allocations: the batched training
// step must be allocation-free in steady state.

// The benchmark shape is the study's paper-scale MLP: 70 frames of 40-dim
// features flattened to 2800 inputs, hidden layers 180/60/20, 7 emotion
// classes (models.go).
const (
	benchBatch = 64
	benchIn    = 2800
	benchHid   = 180
	benchOut   = 7
)

func benchExamples(n, w, classes int) []Example {
	rng := rand.New(rand.NewSource(100))
	ex := make([]Example, n)
	for i := range ex {
		x := NewVector(w)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		ex[i] = Example{X: x, Y: rng.Intn(classes)}
	}
	return ex
}

func benchMLP() *Sequential {
	rng := rand.New(rand.NewSource(101))
	return NewSequential(
		NewDense(benchIn, benchHid, rng),
		NewReLU(),
		NewDense(benchHid, 60, rng),
		NewReLU(),
		NewDense(60, 20, rng),
		NewReLU(),
		NewDense(20, benchOut, rng),
	)
}

// BenchmarkDenseForwardScalar is the per-example baseline: one Forward
// call per example, allocating the output each time.
func BenchmarkDenseForwardScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(102))
	d := NewDense(benchIn, benchHid, rng)
	examples := benchExamples(benchBatch, benchIn, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range examples {
			if _, err := d.Forward(ex.X, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDenseForwardBatched runs the same work as one GEMM into
// reused scratch.
func BenchmarkDenseForwardBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(102))
	d := NewDense(benchIn, benchHid, rng)
	examples := benchExamples(benchBatch, benchIn, benchOut)
	x := NewMatrix(benchBatch, benchIn)
	for k, ex := range examples {
		copy(x.Row(k), ex.X.Data)
	}
	if _, err := d.ForwardBatch(x, false); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ForwardBatch(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStepScalar is one full forward/loss/backward pass over a
// mini-batch through the per-example path.
func BenchmarkTrainStepScalar(b *testing.B) {
	n := benchMLP()
	examples := benchExamples(benchBatch, benchIn, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range examples {
			y, err := n.Forward(ex.X, true)
			if err != nil {
				b.Fatal(err)
			}
			_, grad, err := CrossEntropy(y.Data, ex.Y)
			if err != nil {
				b.Fatal(err)
			}
			if err := n.backward(FromVector(grad)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTrainStepBatched is the same mini-batch through the batched
// kernels; steady state must report 0 allocs/op.
func BenchmarkTrainStepBatched(b *testing.B) {
	n := benchMLP()
	examples := benchExamples(benchBatch, benchIn, benchOut)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	bw := batchWorker{net: n}
	var loss float64
	var hit int
	if err := bw.step(examples, idx, &loss, &hit); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.step(examples, idx, &loss, &hit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStepBatchedMetrics is BenchmarkTrainStepBatched with the
// observability layer wired to a live registry; the delta between the two
// is the enabled cost of instrumentation on the training hot path (the
// unwired variant measures the Nop path). Must stay within 3% of the
// unwired number and report 0 allocs/op.
func BenchmarkTrainStepBatchedMetrics(b *testing.B) {
	reg := obs.NewRegistry()
	WireMetrics(reg.Scope("nn"))
	defer WireMetrics(obs.Nop)
	n := benchMLP()
	examples := benchExamples(benchBatch, benchIn, benchOut)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	bw := batchWorker{net: n}
	var loss float64
	var hit int
	if err := bw.step(examples, idx, &loss, &hit); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.step(examples, idx, &loss, &hit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLPFitScalar / BenchmarkMLPFitBatched time one epoch of Fit
// end to end (shuffle, loss, clip, Adam) on the two paths.
func benchmarkFit(b *testing.B, force bool) {
	examples := benchExamples(2*benchBatch, benchIn, benchOut)
	n := benchMLP()
	opt := NewAdam(1e-3)
	cfg := TrainConfig{Epochs: 1, BatchSize: benchBatch, Optimizer: opt, Seed: 1, ForceScalar: force}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Fit(examples, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPFitScalar(b *testing.B)  { benchmarkFit(b, true) }
func BenchmarkMLPFitBatched(b *testing.B) { benchmarkFit(b, false) }

// BenchmarkLSTMForwardStudyShape covers the hoisted whole-sequence input
// GEMM (70 frames of 40-dim features, the study's feature shape).
func BenchmarkLSTMForwardStudyShape(b *testing.B) {
	rng := rand.New(rand.NewSource(103))
	l := NewLSTM(40, 48, false, rng)
	x := NewMatrix(70, 40)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	if _, err := l.Forward(x, false); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQMLP(b *testing.B) (*QMLP, []Example) {
	b.Helper()
	rng := rand.New(rand.NewSource(104))
	n := NewSequential(
		NewDense(benchIn, benchHid, rng),
		NewReLU(),
		NewDense(benchHid, benchOut, rng),
	)
	examples := benchExamples(benchBatch, benchIn, benchOut)
	st, err := CalibrateMLP(n, examples[:8])
	if err != nil {
		b.Fatal(err)
	}
	q, err := BuildQMLP(n, st)
	if err != nil {
		b.Fatal(err)
	}
	return q, examples
}

// BenchmarkQMLPInferScalar is per-example int8 inference.
func BenchmarkQMLPInferScalar(b *testing.B) {
	q, examples := benchQMLP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range examples {
			if _, err := q.Infer(flattenExample(ex.X)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQMLPEvaluateBatched runs the same examples through the
// one-GEMM-per-layer evaluation path.
func BenchmarkQMLPEvaluateBatched(b *testing.B) {
	q, examples := benchQMLP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Evaluate(examples); err != nil {
			b.Fatal(err)
		}
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The batched kernels promise Float64bits-exact equality with the
// per-example path — not "close", identical. These tests lock that
// contract down at every level: single layers, whole-network forward,
// full training runs (serial and replicated), evaluation, and the
// quantized integer pipeline.

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// testMLP builds a small deterministic Flatten/Dense/ReLU/Tanh stack; odd
// widths exercise the 4-wide kernel remainder loops.
func testMLP(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewFlatten(),
		NewDense(12, 9, rng),
		NewReLU(),
		NewDense(9, 7, rng),
		NewTanh(),
		NewDense(7, 4, rng),
	)
}

func testExamples(n, w, classes int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	ex := make([]Example, n)
	for i := range ex {
		x := NewVector(w)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		ex[i] = Example{X: x, Y: rng.Intn(classes)}
	}
	return ex
}

func packBatch(examples []Example) *Tensor {
	w := len(examples[0].X.Data)
	x := NewMatrix(len(examples), w)
	for k, ex := range examples {
		copy(x.Row(k), ex.X.Data)
	}
	return x
}

func TestForwardBatchMatchesScalar(t *testing.T) {
	n := testMLP(1)
	examples := testExamples(13, 12, 4, 2)
	y, err := n.ForwardBatch(packBatch(examples), false)
	if err != nil {
		t.Fatal(err)
	}
	got := y.Clone() // batched output aliases layer scratch
	for k, ex := range examples {
		ref, err := n.Forward(ex.X, false)
		if err != nil {
			t.Fatal(err)
		}
		for o, v := range ref.Data {
			if !bitsEq(got.At(k, o), v) {
				t.Fatalf("example %d logit %d: batched %v vs scalar %v", k, o, got.At(k, o), v)
			}
		}
	}
}

func TestDenseBackwardBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(11, 6, rng) // odd width: remainder loops
	examples := testExamples(7, 11, 6, 4)
	x := packBatch(examples)
	if _, err := d.ForwardBatch(x, true); err != nil {
		t.Fatal(err)
	}
	g := NewMatrix(7, 6)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	dxb, err := d.BackwardBatch(g)
	if err != nil {
		t.Fatal(err)
	}
	dxGot := dxb.Clone()
	wGot := append([]float64(nil), d.W.Grad...)
	bGot := append([]float64(nil), d.B.Grad...)
	d.W.ZeroGrad()
	d.B.ZeroGrad()

	for k, ex := range examples {
		if _, err := d.Forward(ex.X, true); err != nil {
			t.Fatal(err)
		}
		dx, err := d.Backward(FromVector(g.Row(k)))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range dx.Data {
			if !bitsEq(dxGot.At(k, i), v) {
				t.Fatalf("dx[%d][%d]: batched %v vs scalar %v", k, i, dxGot.At(k, i), v)
			}
		}
	}
	for i, v := range d.W.Grad {
		if !bitsEq(wGot[i], v) {
			t.Fatalf("W.Grad[%d]: batched %v vs scalar %v", i, wGot[i], v)
		}
	}
	for i, v := range d.B.Grad {
		if !bitsEq(bGot[i], v) {
			t.Fatalf("B.Grad[%d]: batched %v vs scalar %v", i, bGot[i], v)
		}
	}
}

// mustFit trains and returns the final loss.
func mustFit(t *testing.T, n *Sequential, examples []Example, cfg TrainConfig) float64 {
	t.Helper()
	loss, err := n.Fit(examples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

func requireSameParams(t *testing.T, a, b *Sequential, label string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if !bitsEq(pa[i].W[j], pb[i].W[j]) {
				t.Fatalf("%s: %s[%d] differs: %v vs %v", label, pa[i].Name, j, pa[i].W[j], pb[i].W[j])
			}
		}
	}
}

func TestFitBatchedMatchesScalar(t *testing.T) {
	examples := testExamples(37, 12, 4, 5) // not a multiple of batch or chunk size
	scalar := testMLP(6)
	batched := testMLP(6)
	lossA := mustFit(t, scalar, examples, TrainConfig{
		Epochs: 3, BatchSize: 8, Optimizer: NewAdam(1e-3), Seed: 9, ForceScalar: true,
	})
	lossB := mustFit(t, batched, examples, TrainConfig{
		Epochs: 3, BatchSize: 8, Optimizer: NewAdam(1e-3), Seed: 9, KernelBatch: 3,
	})
	if !bitsEq(lossA, lossB) {
		t.Fatalf("final loss differs: scalar %v vs batched %v", lossA, lossB)
	}
	requireSameParams(t, scalar, batched, "Fit scalar vs batched")
}

// TestFitKernelBatchInvariance: KernelBatch is an execution knob — any
// chunk size must give bit-identical training.
func TestFitKernelBatchInvariance(t *testing.T) {
	examples := testExamples(29, 12, 4, 7)
	var ref *Sequential
	var refLoss float64
	for _, kb := range []int{0, 1, 5, 32} {
		n := testMLP(8)
		loss := mustFit(t, n, examples, TrainConfig{
			Epochs: 2, BatchSize: 8, Optimizer: NewAdam(1e-3), Seed: 11, KernelBatch: kb,
		})
		if ref == nil {
			ref, refLoss = n, loss
			continue
		}
		if !bitsEq(loss, refLoss) {
			t.Fatalf("KernelBatch=%d loss %v differs from reference %v", kb, loss, refLoss)
		}
		requireSameParams(t, ref, n, "KernelBatch invariance")
	}
}

func TestReplicatedFitBatchedMatchesScalar(t *testing.T) {
	examples := testExamples(41, 12, 4, 13)
	train := func(force bool) *Replicated {
		r, err := NewReplicated(func() *Sequential { return testMLP(14) }, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Fit(examples, TrainConfig{
			Epochs: 2, BatchSize: 8, Optimizer: NewAdam(1e-3), Seed: 15,
			KernelBatch: 4, ForceScalar: force,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	requireSameParams(t, train(true).Master, train(false).Master, "Replicated scalar vs batched")
}

func TestEvaluateBatchedMatchesScalar(t *testing.T) {
	n := testMLP(16)
	examples := testExamples(150, 12, 4, 17) // > evalChunk: exercises chunk boundaries
	if !n.BatchCapable() {
		t.Fatal("test MLP should be batch capable")
	}
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	preds := make([]int, len(examples))
	if err := n.predictClasses(examples, idx, preds); err != nil {
		t.Fatal(err)
	}
	for i, ex := range examples {
		c, err := n.PredictClass(ex.X)
		if err != nil {
			t.Fatal(err)
		}
		if preds[i] != c {
			t.Fatalf("example %d: batched class %d vs scalar %d", i, preds[i], c)
		}
	}
}

// TestDropoutBatchMatchesScalar: dropout consumes its RNG in row order, so
// the batched pass must reproduce the per-example draw sequence exactly.
func TestDropoutBatchMatchesScalar(t *testing.T) {
	build := func() *Sequential {
		rng := rand.New(rand.NewSource(18))
		return NewSequential(
			NewDense(10, 8, rng),
			NewReLU(),
			NewDropout(0.4, rand.New(rand.NewSource(19))),
			NewDense(8, 3, rng),
		)
	}
	examples := testExamples(9, 10, 3, 20)
	batched := build()
	y, err := batched.ForwardBatch(packBatch(examples), true)
	if err != nil {
		t.Fatal(err)
	}
	got := y.Clone()
	scalar := build()
	for k, ex := range examples {
		ref, err := scalar.Forward(ex.X, true)
		if err != nil {
			t.Fatal(err)
		}
		for o, v := range ref.Data {
			if !bitsEq(got.At(k, o), v) {
				t.Fatalf("example %d logit %d: batched %v vs scalar %v", k, o, got.At(k, o), v)
			}
		}
	}
}

func TestQMLPEvaluateBatchedMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := NewSequential(
		NewFlatten(),
		NewDense(12, 9, rng),
		NewReLU(),
		NewDense(9, 4, rng),
	)
	examples := testExamples(150, 12, 4, 22)
	st, err := CalibrateMLP(n, examples)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQMLP(n, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Evaluate(examples)
	if err != nil {
		t.Fatal(err)
	}
	var hit int
	for _, ex := range examples {
		c, err := q.PredictClass(flattenExample(ex.X))
		if err != nil {
			t.Fatal(err)
		}
		if c == ex.Y {
			hit++
		}
	}
	want := float64(hit) / float64(len(examples))
	if !bitsEq(got, want) {
		t.Fatalf("batched quantized accuracy %v vs per-example %v", got, want)
	}
}

// TestLSTMForwardMatchesNaiveStep guards the hoisted whole-sequence GEMM:
// it must be bit-identical to the textbook per-step computation.
func TestLSTMForwardMatchesNaiveStep(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewLSTM(5, 6, true, rng)
	T, H := 9, l.Hidden
	x := NewMatrix(T, l.In)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y, err := l.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	h := make([]float64, H)
	c := make([]float64, H)
	for tt := 0; tt < T; tt++ {
		pre := make([]float64, 4*H)
		for g := 0; g < 4*H; g++ {
			s := l.B.W[g]
			for i, v := range x.Row(tt) {
				s += l.Wx.W[g*l.In+i] * v
			}
			for i, v := range h {
				s += l.Wh.W[g*H+i] * v
			}
			pre[g] = s
		}
		hNext := make([]float64, H)
		cNext := make([]float64, H)
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			g := math.Tanh(pre[2*H+j])
			o := sigmoid(pre[3*H+j])
			cNext[j] = f*c[j] + i*g
			hNext[j] = o * math.Tanh(cNext[j])
		}
		h, c = hNext, cNext
		for j := 0; j < H; j++ {
			if !bitsEq(y.At(tt, j), h[j]) {
				t.Fatalf("step %d hidden %d: hoisted %v vs naive %v", tt, j, y.At(tt, j), h[j])
			}
		}
	}
}

// TestGRUForwardMatchesNaiveStep is the GRU counterpart.
func TestGRUForwardMatchesNaiveStep(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := NewGRU(4, 5, true, rng)
	T, H := 7, g.Hidden
	x := NewMatrix(T, g.In)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y, err := g.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	h := make([]float64, H)
	for tt := 0; tt < T; tt++ {
		pre := make([]float64, 2*H)
		for k := 0; k < 2*H; k++ {
			s := g.B.W[k]
			for i, v := range x.Row(tt) {
				s += g.Wx.W[k*g.In+i] * v
			}
			for i, v := range h {
				s += g.Wh.W[k*H+i] * v
			}
			pre[k] = s
		}
		hNext := make([]float64, H)
		for j := 0; j < H; j++ {
			r := sigmoid(pre[j])
			z := sigmoid(pre[H+j])
			s := g.CB.W[j]
			for i, v := range x.Row(tt) {
				s += g.Cx.W[j*g.In+i] * v
			}
			for i, v := range h {
				s += g.Ch.W[j*H+i] * r * v
			}
			c := math.Tanh(s)
			hNext[j] = (1-z)*h[j] + z*c
		}
		h = hNext
		for j := 0; j < H; j++ {
			if !bitsEq(y.At(tt, j), h[j]) {
				t.Fatalf("step %d hidden %d: hoisted %v vs naive %v", tt, j, y.At(tt, j), h[j])
			}
		}
	}
}

// TestShapeErrorsReportExpected: layer shape errors must say what was
// expected, not just what arrived.
func TestShapeErrorsReportExpected(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	d := NewDense(4, 2, rng)
	if _, err := d.Forward(NewVector(3), false); err == nil || !containsWant(err.Error()) {
		t.Fatalf("dense forward error %v should mention the expected shape", err)
	}
	l := NewLSTM(3, 2, false, rng)
	if _, err := l.Forward(NewMatrix(4, 5), false); err == nil || !containsWant(err.Error()) {
		t.Fatalf("lstm forward error %v should mention the expected shape", err)
	}
	conv, err := NewConv1D(3, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.Forward(NewMatrix(4, 5), false); err == nil || !containsWant(err.Error()) {
		t.Fatalf("conv forward error %v should mention the expected shape", err)
	}
	if _, err := d.ForwardBatch(NewMatrix(2, 7), false); err == nil || !containsWant(err.Error()) {
		t.Fatalf("dense batched forward error %v should mention the expected shape", err)
	}
}

func containsWant(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i:i+4] == "want" {
			return true
		}
	}
	return false
}

package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeTensorRoundTrip(t *testing.T) {
	w := []float64{-1, -0.5, 0, 0.25, 1}
	q := QuantizeTensor(w)
	d := q.Dequantize()
	for i := range w {
		if math.Abs(w[i]-d[i]) > q.Scale/2+1e-12 {
			t.Errorf("w[%d]=%g dequantized to %g (scale %g)", i, w[i], d[i], q.Scale)
		}
	}
	// Extremes map to +-127.
	if q.Q[0] != -127 || q.Q[4] != 127 {
		t.Errorf("extremes quantized to %d, %d", q.Q[0], q.Q[4])
	}
}

func TestQuantizeAllZero(t *testing.T) {
	q := QuantizeTensor(make([]float64, 5))
	if q.Scale != 1 {
		t.Errorf("zero tensor scale = %g, want 1", q.Scale)
	}
	for _, v := range q.Q {
		if v != 0 {
			t.Error("zero tensor has nonzero quantized values")
		}
	}
}

// Property: quantization error never exceeds half a quantization step.
func TestQuantizeErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
		}
		q := QuantizeTensor(w)
		d := q.Dequantize()
		for i := range w {
			if math.Abs(w[i]-d[i]) > q.Scale/2+1e-9*math.Abs(w[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizedModelApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := func() *Sequential {
		r := rand.New(rand.NewSource(55))
		return NewSequential(NewDense(6, 10, r), NewReLU(), NewDense(10, 4, r))
	}
	n := build()
	for _, p := range n.Params() {
		for i := range p.W {
			p.W[i] = rng.NormFloat64()
		}
	}
	qm := Quantize(n)
	m := build()
	if err := qm.ApplyTo(m); err != nil {
		t.Fatal(err)
	}
	// Outputs must be close but storage 4x smaller.
	x := NewVector(6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	yf, err := n.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yq, err := m.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range yf.Data {
		if math.Abs(yf.Data[i]-yq.Data[i]) > 0.2 {
			t.Errorf("quantized output diverges: %g vs %g", yf.Data[i], yq.Data[i])
		}
	}
	fsize := Float32SizeBytes(n)
	qsize := qm.SizeBytes()
	// Per-tensor scale overhead (8 B each) matters on this tiny model, so
	// the ratio falls a bit short of the asymptotic 4x.
	ratio := float64(fsize) / float64(qsize)
	if ratio < 3.0 || ratio > 4.1 {
		t.Errorf("compression ratio %g, want ~4", ratio)
	}
	// Mismatched apply rejected.
	bad := NewSequential(NewDense(6, 9, rng))
	if err := qm.ApplyTo(bad); err == nil {
		t.Error("mismatched ApplyTo accepted")
	}
}

func TestQuantizationErrorMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewSequential(NewDense(8, 8, rng))
	maxAbs, rms := QuantizationError(n)
	if maxAbs < 0 || rms < 0 || rms > maxAbs+1e-12 {
		t.Errorf("error metrics inconsistent: max %g rms %g", maxAbs, rms)
	}
	if maxAbs == 0 {
		t.Error("expected nonzero quantization error on random weights")
	}
}

func BenchmarkDenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(512, 256, rng)
	x := NewVector(512)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSTMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(40, 64, false, rng)
	x := NewMatrix(50, 40)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	v := NewVector(3)
	if v.IsMatrix() || v.Len() != 3 {
		t.Fatal("vector shape wrong")
	}
	m := NewMatrix(2, 3)
	if !m.IsMatrix() || m.Len() != 6 {
		t.Fatal("matrix shape wrong")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Row(1)[2] != 7 {
		t.Fatal("At/Set/Row inconsistent")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases data")
	}
	if m.ShapeString() != "[2x3]" || v.ShapeString() != "[3]" {
		t.Fatal("ShapeString wrong")
	}
}

func TestFromMatrix(t *testing.T) {
	m, err := FromMatrix([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatal("FromMatrix content wrong")
	}
	if _, err := FromMatrix(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		p := Softmax(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Numerical stability with huge logits.
	p := Softmax([]float64{1000, 1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-9 {
		t.Errorf("softmax unstable: %v", p)
	}
}

func TestCrossEntropy(t *testing.T) {
	loss, grad, err := CrossEntropy([]float64{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(3)) > 1e-9 {
		t.Errorf("uniform loss = %g, want ln 3", loss)
	}
	// Gradient sums to zero (p - onehot).
	var s float64
	for _, g := range grad {
		s += g
	}
	if math.Abs(s) > 1e-12 {
		t.Errorf("CE grad sums to %g", s)
	}
	if _, _, err := CrossEntropy([]float64{1, 2}, 5); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax([]float64{5, 5}) != 0 {
		t.Error("argmax tie should pick first")
	}
	if Argmax(nil) != -1 {
		t.Error("argmax of empty should be -1")
	}
}

func TestDenseShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	if _, err := d.Forward(NewVector(4), false); err == nil {
		t.Error("wrong input width accepted")
	}
	if _, err := d.Forward(NewMatrix(2, 3), false); err == nil {
		t.Error("matrix input accepted by dense")
	}
}

func TestConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewConv1D(3, 5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.Forward(NewMatrix(10, 3), false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 10 || y.Cols != 5 {
		t.Fatalf("conv output %s, want [10x5]", y.ShapeString())
	}
	if _, err := NewConv1D(3, 5, 4, rng); err == nil {
		t.Error("even kernel accepted")
	}
	if _, err := c.Forward(NewVector(3), false); err == nil {
		t.Error("vector input accepted by conv")
	}
}

func TestMaxPoolShapes(t *testing.T) {
	p, err := NewMaxPool1D(2)
	if err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(5, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 3 || y.Cols != 2 { // ceil(5/2)
		t.Fatalf("pool output %s, want [3x2]", y.ShapeString())
	}
	// Max of rows {0,1} in channel 0 is x[1][0] = 2.
	if y.At(0, 0) != x.At(1, 0) {
		t.Errorf("pool value wrong: %g", y.At(0, 0))
	}
	if _, err := NewMaxPool1D(0); err == nil {
		t.Error("zero pool size accepted")
	}
}

func TestDropoutInference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(0.5, rng)
	x := NewVector(100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data {
		if v != 1 {
			t.Fatal("dropout not identity at inference")
		}
	}
	// Training drops roughly half and rescales the rest by 2.
	y, err = d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	var zeros, twos int
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %g", v)
		}
	}
	if zeros < 20 || zeros > 80 {
		t.Errorf("dropout zeroed %d/100, expected ~50", zeros)
	}
	if zeros+twos != 100 {
		t.Error("dropout output mix wrong")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := NewMatrix(3, 4)
	y, err := f.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.IsMatrix() || y.Len() != 12 {
		t.Fatalf("flatten output %s", y.ShapeString())
	}
	g, err := f.Backward(NewVector(12))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsMatrix() || g.Rows != 3 || g.Cols != 4 {
		t.Fatalf("flatten backward %s", g.ShapeString())
	}
}

func TestLSTMOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := NewLSTM(3, 4, true, rng)
	last := NewLSTM(3, 4, false, rng)
	x := NewMatrix(6, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ys, err := seq.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if ys.Rows != 6 || ys.Cols != 4 {
		t.Fatalf("seq output %s", ys.ShapeString())
	}
	yl, err := last.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if yl.IsMatrix() || yl.Cols != 4 {
		t.Fatalf("last output %s", yl.ShapeString())
	}
}

// xorExamples builds a tiny nonlinearly separable problem.
func xorExamples() []Example {
	var exs []Example
	pts := [][3]float64{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
	}
	for _, p := range pts {
		x := NewVector(2)
		x.Data[0], x.Data[1] = p[0], p[1]
		exs = append(exs, Example{X: x, Y: int(p[2])})
	}
	return exs
}

func TestFitLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := NewSequential(
		NewDense(2, 8, rng),
		NewTanh(),
		NewDense(8, 2, rng),
	)
	exs := xorExamples()
	_, err := n.Fit(exs, TrainConfig{Epochs: 400, BatchSize: 4, Optimizer: NewAdam(0.03), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := n.Evaluate(exs)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1 {
		t.Errorf("XOR accuracy %g, want 1.0", acc)
	}
}

func TestFitLearnsSequencePattern(t *testing.T) {
	// Class 0: rising sequence; class 1: falling. LSTM must separate them.
	rng := rand.New(rand.NewSource(7))
	var exs []Example
	for k := 0; k < 60; k++ {
		x := NewMatrix(8, 1)
		up := k%2 == 0
		for i := 0; i < 8; i++ {
			v := float64(i) / 8
			if !up {
				v = 1 - v
			}
			x.Set(i, 0, v+0.05*rng.NormFloat64())
		}
		y := 0
		if !up {
			y = 1
		}
		exs = append(exs, Example{X: x, Y: y})
	}
	n := NewSequential(
		NewLSTM(1, 8, false, rng),
		NewDense(8, 2, rng),
	)
	if _, err := n.Fit(exs[:40], TrainConfig{Epochs: 30, BatchSize: 8, Optimizer: NewAdam(0.01), Seed: 2}); err != nil {
		t.Fatal(err)
	}
	acc, err := n.Evaluate(exs[40:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("sequence accuracy %g, want >= 0.9", acc)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewSequential(
		NewDense(2, 8, rng),
		NewTanh(),
		NewDense(8, 2, rng),
	)
	_, err := n.Fit(xorExamples(), TrainConfig{Epochs: 1500, BatchSize: 4, Optimizer: NewSGD(0.1, 0.9), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := n.Evaluate(xorExamples())
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1 {
		t.Errorf("SGD XOR accuracy %g, want 1.0", acc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func() *Sequential {
		r := rand.New(rand.NewSource(123))
		return NewSequential(NewDense(4, 6, r), NewReLU(), NewDense(6, 3, r))
	}
	a := build()
	// Perturb a's weights so they differ from a freshly built net.
	for _, p := range a.Params() {
		for i := range p.W {
			p.W[i] += rng.NormFloat64()
		}
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := build()
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := NewVector(4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ya, err := a.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatal("loaded network differs from saved one")
		}
	}
	// Mismatched architecture rejected.
	var buf2 bytes.Buffer
	if err := a.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	c := NewSequential(NewDense(4, 5, rng))
	if err := c.Load(&buf2); err == nil {
		t.Error("mismatched load accepted")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewSequential(NewDense(10, 20, rng), NewDense(20, 3, rng))
	want := 10*20 + 20 + 20*3 + 3
	if got := n.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestClipGradients(t *testing.T) {
	p := newParam("t", 1, 3)
	p.Grad = []float64{3, 4, 0}
	norm := ClipGradients([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %g, want 5", norm)
	}
	var post float64
	for _, g := range p.Grad {
		post += g * g
	}
	if math.Abs(math.Sqrt(post)-1) > 1e-9 {
		t.Errorf("post-clip norm = %g, want 1", math.Sqrt(post))
	}
}

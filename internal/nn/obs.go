package nn

import "affectedge/internal/obs"

// mtr holds this package's metric handles; nil (the default) is the no-op
// state. Counting happens at GEMM-call granularity — once per kernel
// invocation, never inside the inner loops — so enabled instrumentation
// costs a handful of atomic adds per layer per chunk and the disabled
// state costs an inlined nil check.
var mtr struct {
	gemmCalls    *obs.Counter   // float GEMM kernel invocations
	gemmSIMD     *obs.Counter   // invocations dispatched to the AVX axpy4 backend
	gemmScalar   *obs.Counter   // invocations on the portable scalar path
	qgemmCalls   *obs.Counter   // int8 GEMM invocations
	scratchGrows *obs.Counter   // scratch reallocations (steady state: zero)
	trainSteps   *obs.Counter   // batched forward/backward steps
	kernelRows   *obs.Histogram // batch occupancy: example rows per GEMM chunk
	epochTime    *obs.Histogram // per-epoch wall time, µs
}

// WireMetrics routes the package's counters into scope s (conventionally
// reg.Scope("nn")); nil restores the no-op state. Wire before training
// starts — handle swaps are not synchronized with running kernels.
func WireMetrics(s *obs.Scope) {
	mtr.gemmCalls = s.Counter("kernel.gemm_calls")
	mtr.gemmSIMD = s.Counter("kernel.dispatch_simd")
	mtr.gemmScalar = s.Counter("kernel.dispatch_scalar")
	mtr.qgemmCalls = s.Counter("kernel.qgemm_calls")
	mtr.scratchGrows = s.Counter("kernel.scratch_grows")
	mtr.trainSteps = s.Counter("train.steps")
	mtr.kernelRows = s.Histogram("train.kernel_batch_rows", obs.LinearBuckets(1, 8, 16))
	mtr.epochTime = s.Histogram("train.epoch_us", obs.DurationBuckets())
}

// countGemm tallies one axpy4-backed GEMM invocation and which backend
// (SIMD or scalar) the axpy4 primitive dispatches to on this host.
func countGemm() {
	mtr.gemmCalls.Inc()
	if simdActive() {
		mtr.gemmSIMD.Inc()
	} else {
		mtr.gemmScalar.Inc()
	}
}

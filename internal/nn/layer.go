package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a Sequential network. Forward caches
// whatever Backward needs; Backward receives dLoss/dOutput and returns
// dLoss/dInput while accumulating parameter gradients.
type Layer interface {
	Forward(x *Tensor, train bool) (*Tensor, error)
	Backward(grad *Tensor) (*Tensor, error)
	Params() []*Param
	Name() string
}

// Dense is a fully connected layer: y = W*x + b for rank-1 input, or
// Y = X·Wᵀ + b for a rank-2 batch via the BatchLayer path.
type Dense struct {
	In, Out int
	W, B    *Param
	x       *Tensor   // rank-1 forward cache
	xb      *Tensor   // batched forward cache
	yb, dxb Tensor    // batched scratch (reused across steps)
	wtb     []float64 // transposed-weight scratch for the batched forward
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: newParam("dense.w", out, in),
		B: newParam("dense.b", 1, out),
	}
	d.W.initXavier(rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor, train bool) (*Tensor, error) {
	if x.IsMatrix() || x.Cols != d.In {
		return nil, fmt.Errorf("nn: %s got input %s, want [%d]", d.Name(), x.ShapeString(), d.In)
	}
	d.x = x
	y := NewVector(d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W.W[o*d.In : (o+1)*d.In]
		s := d.B.W[o]
		for i, v := range x.Data {
			s += row[i] * v
		}
		y.Data[o] = s
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) (*Tensor, error) {
	if grad.IsMatrix() || grad.Cols != d.Out {
		return nil, fmt.Errorf("nn: %s got grad %s, want [%d]", d.Name(), grad.ShapeString(), d.Out)
	}
	dx := NewVector(d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.B.Grad[o] += g
		wRow := d.W.W[o*d.In : (o+1)*d.In]
		gRow := d.W.Grad[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			gRow[i] += g * d.x.Data[i]
			dx.Data[i] += g * wRow[i]
		}
	}
	return dx, nil
}

// ReLU is an element-wise rectified linear activation for rank-1 or rank-2
// tensors.
type ReLU struct {
	mask    []bool
	maskb   []bool // batched-path mask
	yb, dxb Tensor // batched scratch
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor, train bool) (*Tensor, error) {
	y := x.Clone()
	r.mask = make([]bool, len(y.Data))
	for i, v := range y.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			y.Data[i] = 0
		}
	}
	return y, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) (*Tensor, error) {
	if len(grad.Data) != len(r.mask) {
		return nil, fmt.Errorf("nn: relu got grad size %d, want %d", len(grad.Data), len(r.mask))
	}
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// Tanh is an element-wise hyperbolic-tangent activation.
type Tanh struct {
	y       *Tensor
	yb, dxb Tensor // batched scratch
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *Tensor, train bool) (*Tensor, error) {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.y = y
	return y, nil
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *Tensor) (*Tensor, error) {
	dx := grad.Clone()
	for i := range dx.Data {
		dx.Data[i] *= 1 - t.y.Data[i]*t.y.Data[i]
	}
	return dx, nil
}

// Dropout zeroes a fraction of activations during training and scales the
// survivors (inverted dropout). It is the identity at inference time.
type Dropout struct {
	Rate    float64
	rng     *rand.Rand
	keep    []bool
	keepb   []bool // batched-path mask
	yb, dxb Tensor // batched scratch
}

// NewDropout returns a Dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	return &Dropout{Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.Rate) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !train || d.Rate <= 0 {
		d.keep = nil
		return x, nil
	}
	y := x.Clone()
	d.keep = make([]bool, len(y.Data))
	scale := 1 / (1 - d.Rate)
	for i := range y.Data {
		if d.rng.Float64() >= d.Rate {
			d.keep[i] = true
			y.Data[i] *= scale
		} else {
			y.Data[i] = 0
		}
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *Tensor) (*Tensor, error) {
	if d.keep == nil {
		return grad, nil
	}
	dx := grad.Clone()
	scale := 1 / (1 - d.Rate)
	for i := range dx.Data {
		if d.keep[i] {
			dx.Data[i] *= scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// Flatten reshapes a rank-2 tensor [T][D] into a rank-1 tensor [T*D].
type Flatten struct{ rows, cols int }

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() {
		f.rows, f.cols = 0, x.Cols
		return x, nil
	}
	f.rows, f.cols = x.Rows, x.Cols
	return &Tensor{Data: x.Data, Cols: len(x.Data)}, nil
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *Tensor) (*Tensor, error) {
	if f.rows == 0 {
		return grad, nil
	}
	if len(grad.Data) != f.rows*f.cols {
		return nil, fmt.Errorf("nn: flatten got grad size %d, want %d", len(grad.Data), f.rows*f.cols)
	}
	return &Tensor{Data: grad.Data, Rows: f.rows, Cols: f.cols}, nil
}

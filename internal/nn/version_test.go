package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"
)

// TestLoadWrongVersion pins the envelope versioning: a blob carrying any
// other version — including a pre-versioning blob, which gob decodes as
// version 0 — must fail with *VersionError and leave the weights alone.
func TestLoadWrongVersion(t *testing.T) {
	build := func() *Sequential {
		r := rand.New(rand.NewSource(321))
		return NewSequential(NewDense(3, 5, r), NewReLU(), NewDense(5, 2, r))
	}

	src := build()
	cases := map[string]int{
		"legacy_unversioned": 0, // pre-versioning blobs decode as 0
		"future":             snapshotVersion + 1,
		"negative":           -3,
	}
	for name, v := range cases {
		t.Run(name, func(t *testing.T) {
			s := snapshot{Version: v}
			for _, p := range src.Params() {
				s.Params = append(s.Params, append([]float64(nil), p.W...))
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
				t.Fatal(err)
			}
			dst := build()
			before := make([][]float64, 0, len(dst.Params()))
			for _, p := range dst.Params() {
				before = append(before, append([]float64(nil), p.W...))
			}
			err := dst.Load(&buf)
			if err == nil {
				t.Fatalf("Load accepted version %d", s.Version)
			}
			var ve *VersionError
			if !errors.As(err, &ve) {
				t.Fatalf("want *VersionError, got %T: %v", err, err)
			}
			if ve.Got != s.Version || ve.Want != snapshotVersion {
				t.Fatalf("VersionError = %+v, want Got=%d Want=%d", ve, s.Version, snapshotVersion)
			}
			for i, p := range dst.Params() {
				for j := range p.W {
					if p.W[j] != before[i][j] {
						t.Fatalf("wrong-version load mutated tensor %d", i)
					}
				}
			}
		})
	}
}

// TestLoadShapeMismatchAtomic pins the validate-before-copy rule: a
// snapshot whose later tensor is misshapen must not overwrite the earlier
// ones.
func TestLoadShapeMismatchAtomic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	src := NewSequential(NewDense(3, 5, r), NewReLU(), NewDense(5, 2, r))
	s := snapshot{Version: snapshotVersion}
	for _, p := range src.Params() {
		s.Params = append(s.Params, append([]float64(nil), p.W...))
	}
	last := len(s.Params) - 1
	s.Params[last] = s.Params[last][:len(s.Params[last])-1]

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	dst := NewSequential(NewDense(3, 5, r), NewReLU(), NewDense(5, 2, r))
	before := make([][]float64, 0, len(dst.Params()))
	for _, p := range dst.Params() {
		before = append(before, append([]float64(nil), p.W...))
	}
	if err := dst.Load(&buf); err == nil {
		t.Fatal("Load accepted misshapen snapshot")
	}
	for i, p := range dst.Params() {
		for j := range p.W {
			if p.W[j] != before[i][j] {
				t.Fatalf("misshapen load half-applied: tensor %d changed", i)
			}
		}
	}
}

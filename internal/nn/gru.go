package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// GRU is a gated recurrent unit layer over a rank-2 input [T][In] — the
// lighter recurrent alternative to the LSTM (one fewer gate, no cell
// state), included for the model-selection extension study.
//
// Gates are packed reset/update: Wx is [2H][In], Wh is [2H][H]; the
// candidate uses its own Cx [H][In], Ch [H][H].
//
// Like the LSTM, the input-side step matmuls (gates and candidate) are
// hoisted out of the recurrence into two whole-sequence GEMMs with
// unchanged per-slot accumulation order, and per-call scratch is reused.
type GRU struct {
	In, Hidden     int
	ReturnSequence bool
	Wx, Wh, B      *Param // reset + update gates
	Cx, Ch, CB     *Param // candidate

	x      *Tensor
	hs     [][]float64 // h[t], index 0 zeros
	hsBuf  []float64   // backing storage for hs
	gr, gz []float64   // reset/update activations per step
	gc     []float64   // candidate activations per step
	preX   []float64   // [T][2H] gate pre-activations
	candX  []float64   // [T][H] candidate input-side pre-activations

	dh, dhNext []float64 // backward scratch
}

// NewGRU returns a GRU layer with Xavier-initialized weights.
func NewGRU(in, hidden int, returnSequence bool, rng *rand.Rand) *GRU {
	g := &GRU{
		In: in, Hidden: hidden, ReturnSequence: returnSequence,
		Wx: newParam("gru.wx", 2*hidden, in),
		Wh: newParam("gru.wh", 2*hidden, hidden),
		B:  newParam("gru.b", 1, 2*hidden),
		Cx: newParam("gru.cx", hidden, in),
		Ch: newParam("gru.ch", hidden, hidden),
		CB: newParam("gru.cb", 1, hidden),
	}
	g.Wx.initXavier(rng)
	g.Wh.initXavier(rng)
	g.Cx.initXavier(rng)
	g.Ch.initXavier(rng)
	return g
}

// Name implements Layer.
func (g *GRU) Name() string { return fmt.Sprintf("gru(%d->%d)", g.In, g.Hidden) }

// Params implements Layer.
func (g *GRU) Params() []*Param { return []*Param{g.Wx, g.Wh, g.B, g.Cx, g.Ch, g.CB} }

// Forward implements Layer.
func (g *GRU) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() || x.Cols != g.In {
		return nil, fmt.Errorf("nn: %s got input %s, want [Tx%d]", g.Name(), x.ShapeString(), g.In)
	}
	T, H := x.Rows, g.Hidden
	g.x = x
	g.hsBuf = growF64(g.hsBuf, (T+1)*H)
	if cap(g.hs) < T+1 {
		g.hs = make([][]float64, T+1)
	}
	g.hs = g.hs[:T+1]
	for t := 0; t <= T; t++ {
		g.hs[t] = g.hsBuf[t*H : (t+1)*H]
	}
	zeroF64(g.hs[0])
	g.gr = growF64(g.gr, T*H)
	g.gz = growF64(g.gz, T*H)
	g.gc = growF64(g.gc, T*H)
	g.preX = growF64(g.preX, T*2*H)
	g.candX = growF64(g.candX, T*H)
	// Input-side step matmuls for the whole sequence: gate and candidate
	// pre-activations, biases included.
	gemmBiasNT(g.preX, x.Data, g.Wx.W, g.B.W, T, g.In, 2*H)
	gemmBiasNT(g.candX, x.Data, g.Cx.W, g.CB.W, T, g.In, H)
	for t := 0; t < T; t++ {
		hPrev := g.hs[t]
		pre := g.preX[t*2*H : (t+1)*2*H]
		// Hidden-side gate product accumulated in place.
		gemmBiasNT(pre, hPrev, g.Wh.W, pre, 1, H, 2*H)
		h := g.hs[t+1]
		for j := 0; j < H; j++ {
			r := sigmoid(pre[j])
			z := sigmoid(pre[H+j])
			// Candidate: tanh(Cx x + Ch (r .* hPrev) + cb).
			s := g.candX[t*H+j]
			ch := g.Ch.W[j*H : (j+1)*H]
			for i, v := range hPrev {
				s += ch[i] * r * v
			}
			c := math.Tanh(s)
			h[j] = (1-z)*hPrev[j] + z*c
			g.gr[t*H+j], g.gz[t*H+j], g.gc[t*H+j] = r, z, c
		}
	}
	if g.ReturnSequence {
		y := NewMatrix(T, H)
		for t := 0; t < T; t++ {
			copy(y.Row(t), g.hs[t+1])
		}
		return y, nil
	}
	y := NewVector(H)
	copy(y.Data, g.hs[T])
	return y, nil
}

// Backward implements Layer (full BPTT).
func (g *GRU) Backward(grad *Tensor) (*Tensor, error) {
	T, H := g.x.Rows, g.Hidden
	if g.ReturnSequence {
		if !grad.IsMatrix() || grad.Rows != T || grad.Cols != H {
			return nil, fmt.Errorf("nn: %s got grad %s, want [%dx%d]", g.Name(), grad.ShapeString(), T, H)
		}
	} else if grad.IsMatrix() || grad.Cols != H {
		return nil, fmt.Errorf("nn: %s got grad %s, want [%d]", g.Name(), grad.ShapeString(), H)
	}
	dx := NewMatrix(T, g.In)
	g.dhNext = growF64(g.dhNext, H)
	g.dh = growF64(g.dh, H)
	dhNext, dh := g.dhNext, g.dh
	zeroF64(dhNext)
	for t := T - 1; t >= 0; t-- {
		copy(dh, dhNext)
		if g.ReturnSequence {
			row := grad.Row(t)
			for j := range dh {
				dh[j] += row[j]
			}
		} else if t == T-1 {
			for j := range dh {
				dh[j] += grad.Data[j]
			}
		}
		xt := g.x.Row(t)
		hPrev := g.hs[t]
		dxRow := dx.Row(t)
		for j := range dhNext {
			dhNext[j] = 0
		}
		for j := 0; j < H; j++ {
			r, z, c := g.gr[t*H+j], g.gz[t*H+j], g.gc[t*H+j]
			// h = (1-z) hPrev + z c
			dz := dh[j] * (c - hPrev[j]) * z * (1 - z)
			dc := dh[j] * z * (1 - c*c) // through tanh
			dhNext[j] += dh[j] * (1 - z)

			// Candidate pre-activation gradient dc flows into Cx, Ch, CB,
			// xt, r.*hPrev.
			g.CB.Grad[j] += dc
			cx := g.Cx.W[j*g.In : (j+1)*g.In]
			gcx := g.Cx.Grad[j*g.In : (j+1)*g.In]
			for i := 0; i < g.In; i++ {
				gcx[i] += dc * xt[i]
				dxRow[i] += dc * cx[i]
			}
			ch := g.Ch.W[j*H : (j+1)*H]
			gch := g.Ch.Grad[j*H : (j+1)*H]
			var dr float64
			for i := 0; i < H; i++ {
				gch[i] += dc * r * hPrev[i]
				dhNext[i] += dc * ch[i] * r
				dr += dc * ch[i] * hPrev[i]
			}
			dr *= r * (1 - r)

			// Gate pre-activations: k=j for reset, k=H+j for update.
			for _, gate := range []struct {
				k  int
				dv float64
			}{{j, dr}, {H + j, dz}} {
				if gate.dv == 0 {
					continue
				}
				g.B.Grad[gate.k] += gate.dv
				wx := g.Wx.W[gate.k*g.In : (gate.k+1)*g.In]
				gwx := g.Wx.Grad[gate.k*g.In : (gate.k+1)*g.In]
				for i := 0; i < g.In; i++ {
					gwx[i] += gate.dv * xt[i]
					dxRow[i] += gate.dv * wx[i]
				}
				wh := g.Wh.W[gate.k*H : (gate.k+1)*H]
				gwh := g.Wh.Grad[gate.k*H : (gate.k+1)*H]
				for i := 0; i < H; i++ {
					gwh[i] += gate.dv * hPrev[i]
					dhNext[i] += gate.dv * wh[i]
				}
			}
		}
	}
	return dx, nil
}

package nn

import (
	"fmt"
	"math/rand"
)

// FitOptions extends training with validation-driven early stopping and
// step learning-rate decay — the utilities a real training run needs on
// top of the basic loop.
type FitOptions struct {
	Train TrainConfig
	// Validation, when non-empty, is evaluated after every epoch.
	Validation []Example
	// Patience stops training after this many epochs without a new best
	// validation accuracy (0 disables early stopping).
	Patience int
	// DecayEvery halves the learning rate every N epochs (0 disables);
	// only effective when Train.Optimizer is *Adam or *SGD.
	DecayEvery int
}

// FitResult reports the run.
type FitResult struct {
	Epochs        int
	FinalLoss     float64
	BestValAcc    float64
	BestEpoch     int
	StoppedEarly  bool
	ValAccHistory []float64
}

// FitWithOptions trains with early stopping and LR decay, restoring the
// best-validation weights before returning when validation is provided.
func (n *Sequential) FitWithOptions(examples []Example, opts FitOptions) (*FitResult, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("nn: no training examples")
	}
	cfg := opts.Train
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	res := &FitResult{BestEpoch: -1}
	var best [][]float64
	snapshotParams := func() [][]float64 {
		var out [][]float64
		for _, p := range n.Params() {
			cp := make([]float64, len(p.W))
			copy(cp, p.W)
			out = append(out, cp)
		}
		return out
	}
	restoreParams := func(snap [][]float64) {
		for i, p := range n.Params() {
			copy(p.W, snap[i])
		}
	}
	since := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		one := cfg
		one.Epochs = 1
		one.Seed = cfg.Seed + int64(epoch)
		loss, err := n.Fit(examples, one)
		if err != nil {
			return nil, err
		}
		res.FinalLoss = loss
		res.Epochs = epoch + 1
		if opts.DecayEvery > 0 && (epoch+1)%opts.DecayEvery == 0 {
			halveLR(cfg.Optimizer)
		}
		if len(opts.Validation) > 0 {
			acc, err := n.Evaluate(opts.Validation)
			if err != nil {
				return nil, err
			}
			res.ValAccHistory = append(res.ValAccHistory, acc)
			if acc > res.BestValAcc || res.BestEpoch < 0 {
				res.BestValAcc = acc
				res.BestEpoch = epoch
				best = snapshotParams()
				since = 0
			} else {
				since++
				if opts.Patience > 0 && since >= opts.Patience {
					res.StoppedEarly = true
					break
				}
			}
		}
	}
	if best != nil {
		restoreParams(best)
	}
	return res, nil
}

// halveLR halves the learning rate of the known optimizer types.
func halveLR(opt Optimizer) {
	switch o := opt.(type) {
	case *Adam:
		o.LR /= 2
	case *SGD:
		o.LR /= 2
	}
}

// HoldoutSplit partitions examples into train/validation with the given
// validation fraction, stratified by class and shuffled deterministically.
func HoldoutSplit(examples []Example, valFrac float64, seed int64) (train, val []Example, err error) {
	if len(examples) < 2 {
		return nil, nil, fmt.Errorf("nn: need at least 2 examples to split")
	}
	if valFrac <= 0 || valFrac >= 1 {
		return nil, nil, fmt.Errorf("nn: validation fraction %g outside (0,1)", valFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(examples))
	period := int(1 / valFrac)
	if period < 2 {
		period = 2
	}
	perClass := map[int]int{}
	for _, i := range idx {
		ex := examples[i]
		c := perClass[ex.Y]
		perClass[ex.Y] = c + 1
		if c%period == period-1 {
			val = append(val, ex)
		} else {
			train = append(train, ex)
		}
	}
	if len(val) == 0 || len(train) == 0 {
		return nil, nil, fmt.Errorf("nn: split degenerate (%d train, %d val)", len(train), len(val))
	}
	return train, val, nil
}

package nn

import (
	"fmt"
	"math"
)

// QuantizedTensor is a per-tensor symmetrically quantized int8 weight
// payload: w ≈ scale * q.
type QuantizedTensor struct {
	Q     []int8
	Scale float64
}

// QuantizeTensor quantizes w to int8 with a symmetric per-tensor scale.
// An all-zero tensor gets scale 1.
func QuantizeTensor(w []float64) QuantizedTensor {
	var maxAbs float64
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	q := make([]int8, len(w))
	for i, v := range w {
		r := math.Round(v / scale)
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q[i] = int8(r)
	}
	return QuantizedTensor{Q: q, Scale: scale}
}

// Dequantize expands the int8 payload back to float64.
func (q QuantizedTensor) Dequantize() []float64 {
	out := make([]float64, len(q.Q))
	for i, v := range q.Q {
		out[i] = float64(v) * q.Scale
	}
	return out
}

// QuantizedModel holds the int8 snapshot of a network's parameters.
type QuantizedModel struct {
	Tensors []QuantizedTensor
}

// Quantize performs post-training quantization of all parameters.
func Quantize(n *Sequential) *QuantizedModel {
	var m QuantizedModel
	for _, p := range n.Params() {
		m.Tensors = append(m.Tensors, QuantizeTensor(p.W))
	}
	return &m
}

// ApplyTo loads the (dequantized) int8 weights into an identically shaped
// network, giving the quantized-inference path: int8 storage, float
// compute, exactly the deployment model the paper evaluates in Fig 3d.
func (m *QuantizedModel) ApplyTo(n *Sequential) error {
	params := n.Params()
	if len(params) != len(m.Tensors) {
		return fmt.Errorf("nn: quantized model has %d tensors, network has %d", len(m.Tensors), len(params))
	}
	for i, p := range params {
		if len(m.Tensors[i].Q) != len(p.W) {
			return fmt.Errorf("nn: quantized tensor %d has %d values, want %d", i, len(m.Tensors[i].Q), len(p.W))
		}
		copy(p.W, m.Tensors[i].Dequantize())
	}
	return nil
}

// SizeBytes returns the int8 model size: one byte per weight plus an
// 8-byte scale per tensor.
func (m *QuantizedModel) SizeBytes() int {
	var n int
	for _, t := range m.Tensors {
		n += len(t.Q) + 8
	}
	return n
}

// Float32SizeBytes returns the deployment size of the float model
// (4 bytes per weight, the Fig 3c float baseline).
func Float32SizeBytes(n *Sequential) int { return 4 * n.NumParams() }

// QuantizationError returns the max absolute and RMS weight error
// introduced by quantizing n's parameters.
func QuantizationError(n *Sequential) (maxAbs, rms float64) {
	var sq float64
	var cnt int
	for _, p := range n.Params() {
		qt := QuantizeTensor(p.W)
		dq := qt.Dequantize()
		for i, w := range p.W {
			e := math.Abs(w - dq[i])
			if e > maxAbs {
				maxAbs = e
			}
			sq += e * e
			cnt++
		}
	}
	if cnt > 0 {
		rms = math.Sqrt(sq / float64(cnt))
	}
	return maxAbs, rms
}

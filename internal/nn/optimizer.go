package nn

import "math"

// Optimizer applies accumulated parameter gradients. Step consumes the
// gradients scaled by 1/batchSize and zeroes them.
type Optimizer interface {
	Step(params []*Param, batchSize int)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param, batchSize int) {
	if batchSize <= 0 {
		batchSize = 1
	}
	inv := 1 / float64(batchSize)
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.W))
			s.velocity[p] = v
		}
		for i := range p.W {
			g := p.Grad[i] * inv
			v[i] = s.Momentum*v[i] - s.LR*g
			p.W[i] += v[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults for the
// moment decay rates and epsilon.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param, batchSize int) {
	if batchSize <= 0 {
		batchSize = 1
	}
	a.t++
	inv := 1 / float64(batchSize)
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, v := a.m[p], a.v[p]
		if m == nil {
			m = make([]float64, len(p.W))
			v = make([]float64, len(p.W))
			a.m[p], a.v[p] = m, v
		}
		adamSlice(p.W, p.Grad, m, v, inv, a.Beta1, a.Beta2, c1, c2, a.LR, a.Eps)
		p.ZeroGrad()
	}
}

// ClipGradients scales all gradients down so their global L2 norm does not
// exceed maxNorm. It returns the pre-clip norm. Useful against exploding
// LSTM gradients.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}

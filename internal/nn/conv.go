package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv1D is a temporal convolution over a rank-2 input [T][Cin] producing
// [T][Cout] with "same" zero padding and stride 1. Weights are laid out as
// W[out][k][in] row-major.
type Conv1D struct {
	In, Out, Kernel int
	W, B            *Param
	x               *Tensor
}

// NewConv1D returns a Conv1D layer with Xavier-initialized weights. kernel
// must be odd so "same" padding is symmetric.
func NewConv1D(in, out, kernel int, rng *rand.Rand) (*Conv1D, error) {
	if kernel <= 0 || kernel%2 == 0 {
		return nil, fmt.Errorf("nn: conv1d kernel %d must be odd and positive", kernel)
	}
	c := &Conv1D{
		In: in, Out: out, Kernel: kernel,
		W: newParam("conv1d.w", out, kernel*in),
		B: newParam("conv1d.b", 1, out),
	}
	c.W.initXavier(rng)
	return c, nil
}

// Name implements Layer.
func (c *Conv1D) Name() string { return fmt.Sprintf("conv1d(%d->%d,k%d)", c.In, c.Out, c.Kernel) }

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// Forward implements Layer.
func (c *Conv1D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() || x.Cols != c.In {
		return nil, fmt.Errorf("nn: %s got input %s, want [Tx%d]", c.Name(), x.ShapeString(), c.In)
	}
	c.x = x
	T := x.Rows
	half := c.Kernel / 2
	y := NewMatrix(T, c.Out)
	for t := 0; t < T; t++ {
		for o := 0; o < c.Out; o++ {
			s := c.B.W[o]
			wBase := o * c.Kernel * c.In
			for k := 0; k < c.Kernel; k++ {
				src := t + k - half
				if src < 0 || src >= T {
					continue
				}
				row := x.Row(src)
				wRow := c.W.W[wBase+k*c.In : wBase+(k+1)*c.In]
				for i, v := range row {
					s += wRow[i] * v
				}
			}
			y.Set(t, o, s)
		}
	}
	return y, nil
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *Tensor) (*Tensor, error) {
	if !grad.IsMatrix() || grad.Cols != c.Out || grad.Rows != c.x.Rows {
		return nil, fmt.Errorf("nn: %s got grad %s, want [%dx%d]", c.Name(), grad.ShapeString(), c.x.Rows, c.Out)
	}
	T := c.x.Rows
	half := c.Kernel / 2
	dx := NewMatrix(T, c.In)
	for t := 0; t < T; t++ {
		for o := 0; o < c.Out; o++ {
			g := grad.At(t, o)
			if g == 0 {
				continue
			}
			c.B.Grad[o] += g
			wBase := o * c.Kernel * c.In
			for k := 0; k < c.Kernel; k++ {
				src := t + k - half
				if src < 0 || src >= T {
					continue
				}
				xRow := c.x.Row(src)
				dxRow := dx.Row(src)
				wRow := c.W.W[wBase+k*c.In : wBase+(k+1)*c.In]
				gRow := c.W.Grad[wBase+k*c.In : wBase+(k+1)*c.In]
				for i := 0; i < c.In; i++ {
					gRow[i] += g * xRow[i]
					dxRow[i] += g * wRow[i]
				}
			}
		}
	}
	return dx, nil
}

// MaxPool1D halves the temporal dimension of a rank-2 input by taking the
// per-channel maximum over non-overlapping windows of the given size
// (stride == size). A trailing partial window is pooled over its actual
// extent.
type MaxPool1D struct {
	Size   int
	argmax []int // flattened output index -> input row chosen
	inRows int
}

// NewMaxPool1D returns a max-pooling layer. size must be positive.
func NewMaxPool1D(size int) (*MaxPool1D, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nn: maxpool size %d must be positive", size)
	}
	return &MaxPool1D{Size: size}, nil
}

// Name implements Layer.
func (m *MaxPool1D) Name() string { return fmt.Sprintf("maxpool1d(%d)", m.Size) }

// Params implements Layer.
func (m *MaxPool1D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool1D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() {
		return nil, fmt.Errorf("nn: %s got input %s, want rank-2 [TxC]", m.Name(), x.ShapeString())
	}
	m.inRows = x.Rows
	outT := (x.Rows + m.Size - 1) / m.Size
	y := NewMatrix(outT, x.Cols)
	m.argmax = make([]int, outT*x.Cols)
	for ot := 0; ot < outT; ot++ {
		lo := ot * m.Size
		hi := lo + m.Size
		if hi > x.Rows {
			hi = x.Rows
		}
		for c := 0; c < x.Cols; c++ {
			best, bestRow := math.Inf(-1), lo
			for t := lo; t < hi; t++ {
				if v := x.At(t, c); v > best {
					best, bestRow = v, t
				}
			}
			y.Set(ot, c, best)
			m.argmax[ot*x.Cols+c] = bestRow
		}
	}
	return y, nil
}

// Backward implements Layer.
func (m *MaxPool1D) Backward(grad *Tensor) (*Tensor, error) {
	if !grad.IsMatrix() || len(grad.Data) != len(m.argmax) {
		return nil, fmt.Errorf("nn: %s got grad %s, want %d elements", m.Name(), grad.ShapeString(), len(m.argmax))
	}
	dx := NewMatrix(m.inRows, grad.Cols)
	for ot := 0; ot < grad.Rows; ot++ {
		for c := 0; c < grad.Cols; c++ {
			src := m.argmax[ot*grad.Cols+c]
			dx.Set(src, c, dx.At(src, c)+grad.At(ot, c))
		}
	}
	return dx, nil
}

// GlobalAvgPool1D averages a rank-2 input [T][C] over time into [C].
type GlobalAvgPool1D struct{ inRows int }

// NewGlobalAvgPool1D returns a global average pooling layer.
func NewGlobalAvgPool1D() *GlobalAvgPool1D { return &GlobalAvgPool1D{} }

// Name implements Layer.
func (g *GlobalAvgPool1D) Name() string { return "gap1d" }

// Params implements Layer.
func (g *GlobalAvgPool1D) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool1D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() {
		return nil, fmt.Errorf("nn: gap1d got input %s, want rank-2 [TxC]", x.ShapeString())
	}
	g.inRows = x.Rows
	y := NewVector(x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		for c, v := range row {
			y.Data[c] += v
		}
	}
	inv := 1 / float64(x.Rows)
	for c := range y.Data {
		y.Data[c] *= inv
	}
	return y, nil
}

// Backward implements Layer.
func (g *GlobalAvgPool1D) Backward(grad *Tensor) (*Tensor, error) {
	if grad.IsMatrix() {
		return nil, fmt.Errorf("nn: gap1d got grad %s, want rank-1 [%d]", grad.ShapeString(), grad.Cols)
	}
	dx := NewMatrix(g.inRows, grad.Cols)
	inv := 1 / float64(g.inRows)
	for t := 0; t < g.inRows; t++ {
		row := dx.Row(t)
		for c := range row {
			row[c] = grad.Data[c] * inv
		}
	}
	return dx, nil
}

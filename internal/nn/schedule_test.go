package nn

import (
	"math/rand"
	"testing"
)

func classTask(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	var exs []Example
	for i := 0; i < n; i++ {
		x := NewVector(4)
		y := i % 2
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64() * 0.5
		}
		x.Data[y*2] += 2
		exs = append(exs, Example{X: x, Y: y})
	}
	return exs
}

func TestFitWithOptionsEarlyStopping(t *testing.T) {
	exs := classTask(80, 1)
	train, val, err := HoldoutSplit(exs, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	net := NewSequential(NewDense(4, 8, r), NewTanh(), NewDense(8, 2, r))
	res, err := net.FitWithOptions(train, FitOptions{
		Train:      TrainConfig{Epochs: 200, BatchSize: 8, Optimizer: NewAdam(0.02), Seed: 1},
		Validation: val,
		Patience:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Error("separable task should trigger early stopping before 200 epochs")
	}
	if res.Epochs >= 200 {
		t.Errorf("ran all %d epochs", res.Epochs)
	}
	if res.BestValAcc < 0.9 {
		t.Errorf("best validation accuracy %.2f", res.BestValAcc)
	}
	// Restored weights achieve the recorded best accuracy.
	acc, err := net.Evaluate(val)
	if err != nil {
		t.Fatal(err)
	}
	if acc < res.BestValAcc-1e-9 {
		t.Errorf("restored accuracy %.3f below recorded best %.3f", acc, res.BestValAcc)
	}
	if len(res.ValAccHistory) != res.Epochs {
		t.Errorf("history length %d != epochs %d", len(res.ValAccHistory), res.Epochs)
	}
}

func TestFitWithOptionsLRDecay(t *testing.T) {
	exs := classTask(40, 3)
	r := rand.New(rand.NewSource(4))
	net := NewSequential(NewDense(4, 6, r), NewTanh(), NewDense(6, 2, r))
	opt := NewAdam(0.02)
	if _, err := net.FitWithOptions(exs, FitOptions{
		Train:      TrainConfig{Epochs: 10, BatchSize: 8, Optimizer: opt, Seed: 1},
		DecayEvery: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// 10 epochs with halving every 2: LR = 0.02 / 2^5.
	want := 0.02 / 32
	if diff := opt.LR - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("LR after decay %g, want %g", opt.LR, want)
	}
}

func TestHoldoutSplit(t *testing.T) {
	exs := classTask(40, 5)
	train, val, err := HoldoutSplit(exs, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(val) != 40 {
		t.Fatalf("split loses examples: %d + %d", len(train), len(val))
	}
	if len(val) < 6 || len(val) > 14 {
		t.Errorf("validation size %d, want ~10", len(val))
	}
	// Both classes present in validation (stratified).
	seen := map[int]bool{}
	for _, ex := range val {
		seen[ex.Y] = true
	}
	if len(seen) != 2 {
		t.Error("validation missing a class")
	}
	if _, _, err := HoldoutSplit(exs[:1], 0.25, 1); err == nil {
		t.Error("single example accepted")
	}
	if _, _, err := HoldoutSplit(exs, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
}

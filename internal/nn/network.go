package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Sequential is a stack of layers trained with softmax cross-entropy.
type Sequential struct {
	Layers []Layer
	// ClipNorm, when positive, clips the global gradient norm per batch.
	ClipNorm float64
}

// NewSequential returns a network over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, ClipNorm: 5}
}

// Params returns all learnable parameters in layer order.
func (n *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total learnable parameter count.
func (n *Sequential) NumParams() int {
	var c int
	for _, p := range n.Params() {
		c += len(p.W)
	}
	return c
}

// Forward runs the network on one input.
func (n *Sequential) Forward(x *Tensor, train bool) (*Tensor, error) {
	var err error
	for _, l := range n.Layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// Predict returns class probabilities for one input.
func (n *Sequential) Predict(x *Tensor) ([]float64, error) {
	y, err := n.Forward(x, false)
	if err != nil {
		return nil, err
	}
	return Softmax(y.Data), nil
}

// PredictClass returns the most probable class index for one input.
func (n *Sequential) PredictClass(x *Tensor) (int, error) {
	p, err := n.Predict(x)
	if err != nil {
		return -1, err
	}
	return Argmax(p), nil
}

// backward pushes a loss gradient through all layers.
func (n *Sequential) backward(grad *Tensor) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return err
		}
	}
	return nil
}

// Example is one labelled training sample.
type Example struct {
	X *Tensor
	Y int
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Seed      int64
	// KernelBatch caps how many examples the batched kernels process per
	// GEMM chunk. It is an execution knob, not a semantic one: gradient
	// accumulation stays in example order, so any value (including 1)
	// produces results bit-identical to the full-batch kernels and to the
	// per-example path. 0 means one chunk per mini-batch.
	KernelBatch int
	// ForceScalar forces the legacy per-example forward/backward path even
	// when every layer supports batching. The batched path is
	// Float64bits-identical (tested); this exists for equivalence tests
	// and per-example baseline benchmarks.
	ForceScalar bool
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(epoch int, loss float64, acc float64)
}

// Fit trains the network on examples with mini-batch gradient descent and
// returns the final epoch's mean loss. When every layer supports the
// batched path (BatchCapable) each mini-batch runs through the GEMM
// kernels in KernelBatch-sized chunks; results are bit-identical to the
// per-example path at any chunk size.
func (n *Sequential) Fit(examples []Example, cfg TrainConfig) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no training examples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	_, uniform := uniformWidth(examples)
	useBatch := !cfg.ForceScalar && uniform && n.BatchCapable()
	kb := cfg.KernelBatch
	if kb <= 0 {
		kb = cfg.BatchSize
	}
	var bw batchWorker
	if useBatch {
		bw.net = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	params := n.Params()
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochStart time.Time
		if mtr.epochTime.Enabled() {
			epochStart = time.Now()
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var correct int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			if useBatch {
				for ks := start; ks < end; ks += kb {
					ke := ks + kb
					if ke > end {
						ke = end
					}
					if err := bw.step(examples, order[ks:ke], &epochLoss, &correct); err != nil {
						return 0, err
					}
				}
			} else {
				for _, idx := range order[start:end] {
					ex := examples[idx]
					y, err := n.Forward(ex.X, true)
					if err != nil {
						return 0, err
					}
					loss, grad, err := CrossEntropy(y.Data, ex.Y)
					if err != nil {
						return 0, err
					}
					epochLoss += loss
					if Argmax(y.Data) == ex.Y {
						correct++
					}
					if err := n.backward(FromVector(grad)); err != nil {
						return 0, err
					}
				}
			}
			if n.ClipNorm > 0 {
				ClipGradients(params, n.ClipNorm*float64(end-start))
			}
			cfg.Optimizer.Step(params, end-start)
		}
		lastLoss = epochLoss / float64(len(order))
		if mtr.epochTime.Enabled() {
			mtr.epochTime.ObserveDuration(time.Since(epochStart))
		}
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss, float64(correct)/float64(len(order)))
		}
	}
	return lastLoss, nil
}

// batchWorker bundles a network with the reusable batch-assembly scratch
// for one training goroutine, so steady-state steps allocate nothing.
type batchWorker struct {
	net     *Sequential
	x, grad Tensor
}

// step runs one forward/loss/backward pass over examples[idx] (rows in
// idx order), accumulating gradients into the network parameters. Loss
// and correct-prediction tallies add into *lossAcc/*hitAcc one example at
// a time in idx order — the same summation tree as the per-example path,
// so running totals match it bit for bit at any chunk size.
func (bw *batchWorker) step(examples []Example, idx []int, lossAcc *float64, hitAcc *int) error {
	m := len(idx)
	mtr.trainSteps.Inc()
	mtr.kernelRows.Observe(int64(m))
	inW := len(examples[idx[0]].X.Data)
	x := bw.x.reshape(m, inW)
	for k, id := range idx {
		copy(x.Data[k*inW:(k+1)*inW], examples[id].X.Data)
	}
	y, err := bw.net.ForwardBatch(x, true)
	if err != nil {
		return err
	}
	g := bw.grad.reshape(m, y.Cols)
	for r := 0; r < m; r++ {
		target := examples[idx[r]].Y
		row := y.Row(r)
		l, err := crossEntropyInto(g.Row(r), row, target)
		if err != nil {
			return err
		}
		*lossAcc += l
		if Argmax(row) == target {
			*hitAcc++
		}
	}
	return bw.net.backwardBatch(g)
}

// uniformWidth reports whether every example flattens to the same element
// count (required to pack a batch matrix), and that width.
func uniformWidth(examples []Example) (int, bool) {
	if len(examples) == 0 {
		return 0, false
	}
	w := len(examples[0].X.Data)
	for _, ex := range examples[1:] {
		if len(ex.X.Data) != w {
			return 0, false
		}
	}
	return w, true
}

// Evaluate returns classification accuracy on examples, using the batched
// forward path when the architecture supports it (identical predictions:
// per-row arithmetic matches the rank-1 path bit for bit).
func (n *Sequential) Evaluate(examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no evaluation examples")
	}
	if _, uniform := uniformWidth(examples); uniform && n.BatchCapable() {
		idx := make([]int, len(examples))
		for i := range idx {
			idx[i] = i
		}
		preds := make([]int, len(examples))
		if err := n.predictClasses(examples, idx, preds); err != nil {
			return 0, err
		}
		var correct int
		for i, ex := range examples {
			if preds[i] == ex.Y {
				correct++
			}
		}
		return float64(correct) / float64(len(examples)), nil
	}
	var correct int
	for _, ex := range examples {
		c, err := n.PredictClass(ex.X)
		if err != nil {
			return 0, err
		}
		if c == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples)), nil
}

// evalChunk is the batch size used for batched evaluation; large enough
// to amortize the GEMM, small enough to keep scratch cache-resident.
const evalChunk = 64

// predictClasses fills preds[k] with the predicted class of
// examples[idx[k]], batching through the GEMM path when possible and
// falling back to per-example inference otherwise. Softmax is applied
// per row before the argmax so tie-breaking matches PredictClass exactly.
func (n *Sequential) predictClasses(examples []Example, idx []int, preds []int) error {
	_, uniform := uniformWidth(examples)
	if !uniform || !n.BatchCapable() {
		for k, id := range idx {
			c, err := n.PredictClass(examples[id].X)
			if err != nil {
				return err
			}
			preds[k] = c
		}
		return nil
	}
	var x Tensor
	var probs []float64
	for start := 0; start < len(idx); start += evalChunk {
		end := start + evalChunk
		if end > len(idx) {
			end = len(idx)
		}
		m := end - start
		inW := len(examples[idx[start]].X.Data)
		xb := x.reshape(m, inW)
		for k := 0; k < m; k++ {
			copy(xb.Data[k*inW:(k+1)*inW], examples[idx[start+k]].X.Data)
		}
		y, err := n.ForwardBatch(xb, false)
		if err != nil {
			return err
		}
		probs = growF64(probs, y.Cols)
		for r := 0; r < m; r++ {
			softmaxInto(probs, y.Row(r))
			preds[start+r] = Argmax(probs)
		}
	}
	return nil
}

// snapshotVersion is the wire version of the network envelope. Bump it
// whenever the serialized layout changes meaning; decoding any other
// version fails with *VersionError rather than loading garbage weights.
const snapshotVersion = 1

// VersionError reports a network snapshot whose wire version does not
// match what this build reads. Pre-versioning blobs decode as version 0.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("nn: network snapshot version %d, want %d", e.Got, e.Want)
}

// snapshot is the gob wire format: the envelope version and parameter
// payloads in layer order.
type snapshot struct {
	Version int
	Params  [][]float64
}

// Save writes all parameter values to w (gob encoded). The architecture
// itself is not serialized; Load must be called on an identically
// constructed network.
func (n *Sequential) Save(w io.Writer) error {
	s := snapshot{Version: snapshotVersion}
	for _, p := range n.Params() {
		cp := make([]float64, len(p.W))
		copy(cp, p.W)
		s.Params = append(s.Params, cp)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load restores parameter values previously written by Save into an
// identically shaped network. A wrong-version envelope (including
// pre-versioning blobs, which decode as version 0) fails with
// *VersionError before any weight is touched.
func (n *Sequential) Load(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	if s.Version != snapshotVersion {
		return &VersionError{Got: s.Version, Want: snapshotVersion}
	}
	params := n.Params()
	if len(s.Params) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, network has %d", len(s.Params), len(params))
	}
	// Validate every shape before copying anything so a mismatched
	// snapshot never half-applies.
	for i, p := range params {
		if len(s.Params[i]) != len(p.W) {
			return fmt.Errorf("nn: snapshot tensor %d has %d values, want %d", i, len(s.Params[i]), len(p.W))
		}
	}
	for i, p := range params {
		copy(p.W, s.Params[i])
	}
	return nil
}

package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// Sequential is a stack of layers trained with softmax cross-entropy.
type Sequential struct {
	Layers []Layer
	// ClipNorm, when positive, clips the global gradient norm per batch.
	ClipNorm float64
}

// NewSequential returns a network over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, ClipNorm: 5}
}

// Params returns all learnable parameters in layer order.
func (n *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total learnable parameter count.
func (n *Sequential) NumParams() int {
	var c int
	for _, p := range n.Params() {
		c += len(p.W)
	}
	return c
}

// Forward runs the network on one input.
func (n *Sequential) Forward(x *Tensor, train bool) (*Tensor, error) {
	var err error
	for _, l := range n.Layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// Predict returns class probabilities for one input.
func (n *Sequential) Predict(x *Tensor) ([]float64, error) {
	y, err := n.Forward(x, false)
	if err != nil {
		return nil, err
	}
	return Softmax(y.Data), nil
}

// PredictClass returns the most probable class index for one input.
func (n *Sequential) PredictClass(x *Tensor) (int, error) {
	p, err := n.Predict(x)
	if err != nil {
		return -1, err
	}
	return Argmax(p), nil
}

// backward pushes a loss gradient through all layers.
func (n *Sequential) backward(grad *Tensor) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return err
		}
	}
	return nil
}

// Example is one labelled training sample.
type Example struct {
	X *Tensor
	Y int
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Seed      int64
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(epoch int, loss float64, acc float64)
}

// Fit trains the network on examples with mini-batch gradient descent and
// returns the final epoch's mean loss.
func (n *Sequential) Fit(examples []Example, cfg TrainConfig) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no training examples")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	params := n.Params()
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var correct int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, idx := range order[start:end] {
				ex := examples[idx]
				y, err := n.Forward(ex.X, true)
				if err != nil {
					return 0, err
				}
				loss, grad, err := CrossEntropy(y.Data, ex.Y)
				if err != nil {
					return 0, err
				}
				epochLoss += loss
				if Argmax(y.Data) == ex.Y {
					correct++
				}
				if err := n.backward(FromVector(grad)); err != nil {
					return 0, err
				}
			}
			if n.ClipNorm > 0 {
				ClipGradients(params, n.ClipNorm*float64(end-start))
			}
			cfg.Optimizer.Step(params, end-start)
		}
		lastLoss = epochLoss / float64(len(order))
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss, float64(correct)/float64(len(order)))
		}
	}
	return lastLoss, nil
}

// Evaluate returns classification accuracy on examples.
func (n *Sequential) Evaluate(examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no evaluation examples")
	}
	var correct int
	for _, ex := range examples {
		c, err := n.PredictClass(ex.X)
		if err != nil {
			return 0, err
		}
		if c == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples)), nil
}

// snapshot is the gob wire format: parameter payloads in layer order.
type snapshot struct {
	Params [][]float64
}

// Save writes all parameter values to w (gob encoded). The architecture
// itself is not serialized; Load must be called on an identically
// constructed network.
func (n *Sequential) Save(w io.Writer) error {
	var s snapshot
	for _, p := range n.Params() {
		cp := make([]float64, len(p.W))
		copy(cp, p.W)
		s.Params = append(s.Params, cp)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load restores parameter values previously written by Save into an
// identically shaped network.
func (n *Sequential) Load(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	params := n.Params()
	if len(s.Params) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, network has %d", len(s.Params), len(params))
	}
	for i, p := range params {
		if len(s.Params[i]) != len(p.W) {
			return fmt.Errorf("nn: snapshot tensor %d has %d values, want %d", i, len(s.Params[i]), len(p.W))
		}
		copy(p.W, s.Params[i])
	}
	return nil
}

package nn

import (
	"fmt"
	"math"
)

// Batched forward/backward paths. A batch is a rank-2 [N][D] tensor with
// one (already flattened) example per row; layers that can process whole
// batches implement BatchLayer. Results are Float64bits-identical to
// running the rank-1 path example by example: each row is computed with
// the same operation order, and gradient accumulation into parameters
// stays in example order (see kernel.go). Every layer owns preallocated
// scratch tensors, so a steady-state training step performs zero
// allocations.

// BatchLayer is implemented by layers that can process a rank-2 batch of
// rank-1 examples. The returned tensors are layer-owned scratch, valid
// until the next ForwardBatch/BackwardBatch call on the same layer.
type BatchLayer interface {
	ForwardBatch(x *Tensor, train bool) (*Tensor, error)
	BackwardBatch(grad *Tensor) (*Tensor, error)
}

// BatchCapable reports whether every layer supports the batched path.
func (n *Sequential) BatchCapable() bool {
	for _, l := range n.Layers {
		if _, ok := l.(BatchLayer); !ok {
			return false
		}
	}
	return true
}

// ForwardBatch runs a rank-2 batch (one example per row) through the
// network. All layers must implement BatchLayer (see BatchCapable).
// The result aliases layer-owned scratch.
func (n *Sequential) ForwardBatch(x *Tensor, train bool) (*Tensor, error) {
	for _, l := range n.Layers {
		bl, ok := l.(BatchLayer)
		if !ok {
			return nil, fmt.Errorf("nn: layer %s has no batched path", l.Name())
		}
		var err error
		x, err = bl.ForwardBatch(x, train)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// backwardBatch pushes a batch of loss gradients through all layers.
func (n *Sequential) backwardBatch(grad *Tensor) error {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		bl, ok := n.Layers[i].(BatchLayer)
		if !ok {
			return fmt.Errorf("nn: layer %s has no batched path", n.Layers[i].Name())
		}
		var err error
		grad, err = bl.BackwardBatch(grad)
		if err != nil {
			return err
		}
	}
	return nil
}

// ForwardBatch implements BatchLayer: one GEMM for the whole batch.
func (d *Dense) ForwardBatch(x *Tensor, train bool) (*Tensor, error) {
	if !x.IsMatrix() || x.Cols != d.In {
		return nil, fmt.Errorf("nn: %s got batch %s, want [Nx%d]", d.Name(), x.ShapeString(), d.In)
	}
	d.xb = x
	y := d.yb.reshape(x.Rows, d.Out)
	// The transposed-weight form keeps the per-slot accumulation order and
	// lets the inner loop run down contiguous memory (SIMD-friendly); the
	// transpose is refreshed per call and amortized over the batch rows.
	d.wtb = growF64(d.wtb, d.In*d.Out)
	transposeInto(d.wtb, d.W.W, d.In, d.Out)
	gemmBiasT(y.Data, x.Data, d.wtb, d.B.W, x.Rows, d.In, d.Out)
	return y, nil
}

// BackwardBatch implements BatchLayer: parameter gradients accumulate in
// example order (bit-identical to the rank-1 path), input gradients in
// output order.
func (d *Dense) BackwardBatch(grad *Tensor) (*Tensor, error) {
	if d.xb == nil {
		return nil, fmt.Errorf("nn: %s batched backward before forward", d.Name())
	}
	if !grad.IsMatrix() || grad.Cols != d.Out || grad.Rows != d.xb.Rows {
		return nil, fmt.Errorf("nn: %s got batch grad %s, want [%dx%d]",
			d.Name(), grad.ShapeString(), d.xb.Rows, d.Out)
	}
	n := grad.Rows
	dx := d.dxb.reshape(n, d.In)
	zeroF64(dx.Data)
	gemmDXAcc(dx.Data, grad.Data, d.W.W, n, d.In, d.Out)
	gemmGradAcc(d.W.Grad, d.B.Grad, grad.Data, d.xb.Data, n, d.In, d.Out)
	return dx, nil
}

// ForwardBatch implements BatchLayer.
func (r *ReLU) ForwardBatch(x *Tensor, train bool) (*Tensor, error) {
	y := r.yb.reshape(x.Rows, x.Cols)
	r.maskb = growBool(r.maskb, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			r.maskb[i] = true
			y.Data[i] = v
		} else {
			r.maskb[i] = false
			y.Data[i] = 0
		}
	}
	return y, nil
}

// BackwardBatch implements BatchLayer.
func (r *ReLU) BackwardBatch(grad *Tensor) (*Tensor, error) {
	if len(grad.Data) != len(r.maskb) {
		return nil, fmt.Errorf("nn: relu got batch grad size %d, want %d", len(grad.Data), len(r.maskb))
	}
	dx := r.dxb.reshape(grad.Rows, grad.Cols)
	for i, v := range grad.Data {
		if r.maskb[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// ForwardBatch implements BatchLayer.
func (t *Tanh) ForwardBatch(x *Tensor, train bool) (*Tensor, error) {
	y := t.yb.reshape(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	return y, nil
}

// BackwardBatch implements BatchLayer.
func (t *Tanh) BackwardBatch(grad *Tensor) (*Tensor, error) {
	if len(grad.Data) != len(t.yb.Data) {
		return nil, fmt.Errorf("nn: tanh got batch grad size %d, want %d", len(grad.Data), len(t.yb.Data))
	}
	dx := t.dxb.reshape(grad.Rows, grad.Cols)
	for i, v := range grad.Data {
		yv := t.yb.Data[i]
		dx.Data[i] = v * (1 - yv*yv)
	}
	return dx, nil
}

// ForwardBatch implements BatchLayer. Rows consume the layer RNG in row
// order, matching the per-example draw sequence exactly.
func (d *Dropout) ForwardBatch(x *Tensor, train bool) (*Tensor, error) {
	if !train || d.Rate <= 0 {
		d.keepb = nil
		return x, nil
	}
	y := d.yb.reshape(x.Rows, x.Cols)
	d.keepb = growBool(d.keepb, len(x.Data))
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.Rate {
			d.keepb[i] = true
			y.Data[i] = v * scale
		} else {
			d.keepb[i] = false
			y.Data[i] = 0
		}
	}
	return y, nil
}

// BackwardBatch implements BatchLayer.
func (d *Dropout) BackwardBatch(grad *Tensor) (*Tensor, error) {
	if d.keepb == nil {
		return grad, nil
	}
	if len(grad.Data) != len(d.keepb) {
		return nil, fmt.Errorf("nn: %s got batch grad size %d, want %d", d.Name(), len(grad.Data), len(d.keepb))
	}
	dx := d.dxb.reshape(grad.Rows, grad.Cols)
	scale := 1 / (1 - d.Rate)
	for i, v := range grad.Data {
		if d.keepb[i] {
			dx.Data[i] = v * scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// ForwardBatch implements BatchLayer. Batch rows are already flattened
// examples, so batched Flatten is the identity.
func (f *Flatten) ForwardBatch(x *Tensor, train bool) (*Tensor, error) { return x, nil }

// BackwardBatch implements BatchLayer.
func (f *Flatten) BackwardBatch(grad *Tensor) (*Tensor, error) { return grad, nil }

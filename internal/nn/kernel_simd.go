package nn

import "affectedge/internal/simd"

// The axpy4 and Adam primitives delegate to the shared vector backend
// in internal/simd, which owns the AVX bodies this package originally
// carried (same lane-per-output arithmetic, same scalar references) and
// the CPUID/override dispatch. Results are bit-identical whichever way
// the backend dispatches.

// simdActive reports whether axpy4/adamSlice dispatch to the vector
// backend.
func simdActive() bool { return simd.Enabled() }

// axpy4 computes dst[i] += a0·s0[i] + a1·s1[i] + a2·s2[i] + a3·s3[i]
// (chained in that order per slot) over len(dst) elements.
func axpy4(dst, s0, s1, s2, s3 []float64, a0, a1, a2, a3 float64) {
	simd.Axpy4(dst, s0, s1, s2, s3, a0, a1, a2, a3)
}

// adamSlice applies one Adam update to a parameter slice; see
// simd.AdamRef for the per-element formula.
func adamSlice(w, grad, m, v []float64, inv, b1, b2, c1, c2, lr, eps float64) {
	simd.Adam(w, grad, m, v, inv, b1, b2, c1, c2, lr, eps)
}

package nn

import (
	"fmt"
	"math"
)

// Softmax returns the softmax of logits (numerically stabilized).
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	softmaxInto(out, logits)
	return out
}

// softmaxInto writes the softmax of logits into dst (len(dst) ==
// len(logits)). Identical arithmetic to Softmax; exists so the batched
// hot paths can reuse scratch instead of allocating.
func softmaxInto(dst, logits []float64) {
	if len(logits) == 0 {
		return
	}
	max := logits[0]
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		dst[i] = math.Exp(v - max)
		sum += dst[i]
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// CrossEntropy returns the softmax cross-entropy loss of logits against the
// target class and the gradient dLoss/dLogits.
func CrossEntropy(logits []float64, target int) (loss float64, grad []float64, err error) {
	grad = make([]float64, len(logits))
	loss, err = crossEntropyInto(grad, logits, target)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// crossEntropyInto computes softmax cross-entropy, writing dLoss/dLogits
// into grad (len(grad) == len(logits)). Bit-identical to CrossEntropy.
func crossEntropyInto(grad, logits []float64, target int) (float64, error) {
	if target < 0 || target >= len(logits) {
		return 0, fmt.Errorf("nn: target class %d out of range [0,%d)", target, len(logits))
	}
	softmaxInto(grad, logits)
	loss := -math.Log(math.Max(grad[target], 1e-15))
	grad[target] -= 1 // softmax CE gradient is p - onehot
	return loss, nil
}

// Argmax returns the index of the largest element (first on ties), or -1
// for empty input.
func Argmax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

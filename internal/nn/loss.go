package nn

import (
	"fmt"
	"math"
)

// Softmax returns the softmax of logits (numerically stabilized).
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	if len(logits) == 0 {
		return out
	}
	max := logits[0]
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
	return out
}

// CrossEntropy returns the softmax cross-entropy loss of logits against the
// target class and the gradient dLoss/dLogits.
func CrossEntropy(logits []float64, target int) (loss float64, grad []float64, err error) {
	if target < 0 || target >= len(logits) {
		return 0, nil, fmt.Errorf("nn: target class %d out of range [0,%d)", target, len(logits))
	}
	p := Softmax(logits)
	loss = -math.Log(math.Max(p[target], 1e-15))
	grad = p // softmax CE gradient is p - onehot
	grad[target] -= 1
	return loss, grad, nil
}

// Argmax returns the index of the largest element (first on ties), or -1
// for empty input.
func Argmax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

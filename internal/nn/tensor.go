// Package nn is a small from-scratch neural-network library sufficient to
// reproduce the paper's three affect classifiers: a multi-layer perceptron,
// a 1-D convolutional network, and a two-layer LSTM. It provides dense,
// convolutional, pooling, recurrent, and activation layers with
// backpropagation, SGD and Adam optimizers, softmax cross-entropy loss,
// gob model serialization, and int8 post-training quantization with a
// quantized inference path (§2.2, Fig 3).
//
// Tensors are dense row-major float64 arrays of rank 1 ([D]) or rank 2
// ([T][D]); that is all the classifier topologies need.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major array of rank 1 or 2.
type Tensor struct {
	Data []float64
	// Rows is 0 for rank-1 tensors; otherwise the tensor is Rows x Cols.
	Rows, Cols int
}

// NewVector returns a rank-1 tensor of length n.
func NewVector(n int) *Tensor { return &Tensor{Data: make([]float64, n), Cols: n} }

// NewMatrix returns a rank-2 tensor of shape rows x cols.
func NewMatrix(rows, cols int) *Tensor {
	return &Tensor{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// FromVector wraps a slice as a rank-1 tensor (no copy).
func FromVector(v []float64) *Tensor { return &Tensor{Data: v, Cols: len(v)} }

// FromMatrix copies a [][]float64 into a rank-2 tensor. All rows must have
// equal length.
func FromMatrix(rows [][]float64) (*Tensor, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("nn: empty matrix")
	}
	w := len(rows[0])
	t := NewMatrix(len(rows), w)
	for i, r := range rows {
		if len(r) != w {
			return nil, fmt.Errorf("nn: ragged matrix row %d (%d != %d)", i, len(r), w)
		}
		copy(t.Data[i*w:(i+1)*w], r)
	}
	return t, nil
}

// IsMatrix reports whether t has rank 2.
func (t *Tensor) IsMatrix() bool { return t.Rows > 0 }

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Row returns the i-th row of a rank-2 tensor as a slice view.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// At returns element (i, j) of a rank-2 tensor.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j) of a rank-2 tensor.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Data: make([]float64, len(t.Data)), Rows: t.Rows, Cols: t.Cols}
	copy(c.Data, t.Data)
	return c
}

// ShapeString renders the tensor shape for error messages.
func (t *Tensor) ShapeString() string {
	if t.IsMatrix() {
		return fmt.Sprintf("[%dx%d]", t.Rows, t.Cols)
	}
	return fmt.Sprintf("[%d]", t.Cols)
}

// Param is a learnable parameter tensor with its accumulated gradient.
type Param struct {
	W    []float64
	Grad []float64
	// Shape metadata for serialization and quantization reporting.
	Rows, Cols int
	Name       string
}

func newParam(name string, rows, cols int) *Param {
	return &Param{
		W:    make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
		Rows: rows, Cols: cols,
		Name: name,
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// initXavier fills p.W with Glorot-uniform values using the fan-in/fan-out
// of the parameter shape.
func (p *Param) initXavier(rng *rand.Rand) {
	fanIn, fanOut := p.Cols, p.Rows
	if fanIn == 0 {
		fanIn = 1
	}
	if fanOut == 0 {
		fanOut = 1
	}
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

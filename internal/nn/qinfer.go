package nn

import (
	"fmt"
	"math"
)

// True int8 inference: weights AND activations quantized to int8 with
// int32 accumulators — the arithmetic an NPU or DSP actually executes,
// as opposed to QuantizedModel.ApplyTo which stores int8 but computes in
// float. Supported for MLP-style stacks (Dense + ReLU + Flatten), which is
// what a watch-class deployment of the paper's "NN" model uses.

// QDense is one integer-arithmetic dense layer: y_int32 = W_q * x_q,
// rescaled to the next layer's activation scale.
type QDense struct {
	In, Out int
	WQ      []int8  // [out][in] row-major
	BQ      []int32 // bias in accumulator scale (inScale*wScale)
	WScale  float64
	// InScale/OutScale quantize activations entering/leaving this layer.
	InScale, OutScale float64
	// ReLU folds the activation into the requantization.
	ReLU bool
}

// QMLP is a quantized MLP pipeline.
type QMLP struct {
	Layers []*QDense
	// InputScale quantizes the float input vector.
	InputScale float64
}

// CalibrationStats collects per-tensor activation ranges on representative
// inputs, needed to pick activation scales.
type CalibrationStats struct {
	// MaxAbs[i] is the largest |activation| entering layer i (i=0 is the
	// network input); MaxAbs[len(layers)] is the output logits range.
	MaxAbs []float64
}

// CalibrateMLP runs representative examples through a float Dense/ReLU/
// Flatten network and records activation ranges.
func CalibrateMLP(n *Sequential, examples []Example) (*CalibrationStats, error) {
	denseCount := 0
	for _, l := range n.Layers {
		switch l.(type) {
		case *Dense, *ReLU, *Flatten:
			if _, ok := l.(*Dense); ok {
				denseCount++
			}
		default:
			return nil, fmt.Errorf("nn: int8 inference supports Dense/ReLU/Flatten only, got %s", l.Name())
		}
	}
	if denseCount == 0 {
		return nil, fmt.Errorf("nn: no dense layers to quantize")
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("nn: calibration needs examples")
	}
	st := &CalibrationStats{MaxAbs: make([]float64, denseCount+1)}
	for _, ex := range examples {
		x := ex.X
		idx := 0
		// Track the max-abs entering each dense layer.
		cur := x
		for _, l := range n.Layers {
			switch ll := l.(type) {
			case *Flatten:
				out, err := ll.Forward(cur, false)
				if err != nil {
					return nil, err
				}
				cur = out
			case *Dense:
				st.MaxAbs[idx] = math.Max(st.MaxAbs[idx], maxAbs(cur.Data))
				out, err := ll.Forward(cur, false)
				if err != nil {
					return nil, err
				}
				cur = out
				idx++
			case *ReLU:
				out, err := ll.Forward(cur, false)
				if err != nil {
					return nil, err
				}
				cur = out
			}
		}
		st.MaxAbs[denseCount] = math.Max(st.MaxAbs[denseCount], maxAbs(cur.Data))
	}
	return st, nil
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// BuildQMLP converts a calibrated float MLP into the integer pipeline.
func BuildQMLP(n *Sequential, st *CalibrationStats) (*QMLP, error) {
	if st == nil || len(st.MaxAbs) == 0 {
		return nil, fmt.Errorf("nn: missing calibration")
	}
	scaleOf := func(maxAbs float64) float64 {
		if maxAbs == 0 {
			return 1
		}
		return maxAbs / 127
	}
	q := &QMLP{InputScale: scaleOf(st.MaxAbs[0])}
	idx := 0
	var pendingReLU *QDense
	for _, l := range n.Layers {
		switch ll := l.(type) {
		case *Dense:
			wq := QuantizeTensor(ll.W.W)
			inScale := scaleOf(st.MaxAbs[idx])
			outScale := scaleOf(st.MaxAbs[idx+1])
			bq := make([]int32, ll.Out)
			for o := 0; o < ll.Out; o++ {
				bq[o] = int32(math.Round(ll.B.W[o] / (inScale * wq.Scale)))
			}
			qd := &QDense{
				In: ll.In, Out: ll.Out,
				WQ: wq.Q, BQ: bq,
				WScale: wq.Scale, InScale: inScale, OutScale: outScale,
			}
			q.Layers = append(q.Layers, qd)
			pendingReLU = qd
			idx++
		case *ReLU:
			if pendingReLU == nil {
				return nil, fmt.Errorf("nn: ReLU before any dense layer")
			}
			pendingReLU.ReLU = true
			pendingReLU = nil
		case *Flatten:
			// shape-only; nothing to quantize
		default:
			return nil, fmt.Errorf("nn: int8 inference supports Dense/ReLU/Flatten only, got %s", l.Name())
		}
	}
	if len(q.Layers) == 0 {
		return nil, fmt.Errorf("nn: nothing quantized")
	}
	return q, nil
}

// quantizeActivations maps a float vector to int8 at the given scale.
func quantizeActivations(x []float64, scale float64) []int8 {
	out := make([]int8, len(x))
	quantizeActivationsInto(out, x, scale)
	return out
}

// quantizeActivationsInto is quantizeActivations into caller scratch.
func quantizeActivationsInto(out []int8, x []float64, scale float64) {
	for i, v := range x {
		r := math.Round(v / scale)
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		out[i] = int8(r)
	}
}

// Infer runs the integer pipeline on a float input (rank-1 or flattened
// rank-2) and returns float logits (dequantized once at the output).
func (q *QMLP) Infer(x *Tensor) ([]float64, error) {
	if len(q.Layers) == 0 {
		return nil, fmt.Errorf("nn: empty quantized network")
	}
	data := x.Data
	if q.Layers[0].In != len(data) {
		return nil, fmt.Errorf("nn: quantized input size %d, want %d", len(data), q.Layers[0].In)
	}
	acts := quantizeActivations(data, q.InputScale)
	for li, l := range q.Layers {
		if len(acts) != l.In {
			return nil, fmt.Errorf("nn: layer %d input %d, want %d", li, len(acts), l.In)
		}
		next := make([]int8, l.Out)
		// Requantization multiplier: accumulator scale -> out scale.
		m := l.InScale * l.WScale / l.OutScale
		last := li == len(q.Layers)-1
		var logits []float64
		if last {
			logits = make([]float64, l.Out)
		}
		for o := 0; o < l.Out; o++ {
			var acc int32
			row := l.WQ[o*l.In : (o+1)*l.In]
			for i, a := range acts {
				acc += int32(row[i]) * int32(a)
			}
			acc += l.BQ[o]
			if last {
				// Dequantize the final logits exactly once.
				v := float64(acc) * l.InScale * l.WScale
				if l.ReLU && v < 0 {
					v = 0
				}
				logits[o] = v
				continue
			}
			r := math.Round(float64(acc) * m)
			if l.ReLU && r < 0 {
				r = 0
			}
			if r > 127 {
				r = 127
			}
			if r < -128 {
				r = -128
			}
			next[o] = int8(r)
		}
		if last {
			return logits, nil
		}
		acts = next
	}
	return nil, fmt.Errorf("nn: unreachable")
}

// PredictClass returns the argmax class of the integer pipeline.
func (q *QMLP) PredictClass(x *Tensor) (int, error) {
	logits, err := q.Infer(x)
	if err != nil {
		return -1, err
	}
	return Argmax(logits), nil
}

// dequantLogitsInto dequantizes m rows of final-layer accumulators into
// float logits — the single float conversion of the integer pipeline.
func (l *QDense) dequantLogitsInto(out []float64, acc []int32, m int) {
	for p, a := range acc[:m*l.Out] {
		// Dequantize the final logits exactly once.
		v := float64(a) * l.InScale * l.WScale
		if l.ReLU && v < 0 {
			v = 0
		}
		out[p] = v
	}
}

// requantInto requantizes m rows of int32 accumulators to the next layer's
// int8 activation scale, folding in the layer's ReLU.
func (l *QDense) requantInto(next []int8, acc []int32, m int) {
	// Requantization multiplier: accumulator scale -> out scale.
	mult := l.InScale * l.WScale / l.OutScale
	for p, a := range acc[:m*l.Out] {
		r := math.Round(float64(a) * mult)
		if l.ReLU && r < 0 {
			r = 0
		}
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		next[p] = int8(r)
	}
}

// QScratch holds the reusable buffers of batched integer inference. Buffers
// grow on demand and are retained across calls, so a steady-state serving
// loop performs zero allocations. A QScratch must not be shared between
// concurrent InferBatch calls; give each goroutine (or shard) its own.
type QScratch struct {
	cur, next []int8
	acc       []int32
}

// InferBatch runs the integer pipeline on m input rows packed row-major in
// x (each row Layers[0].In floats) and writes m×classes float logits into
// out. One qgemmNT call per layer amortizes the weight traversal across
// all rows; integer arithmetic is exact and the dequantization applies the
// same float expressions as Infer, so results are bit-identical to calling
// Infer once per row. s may be nil (a temporary scratch is allocated).
func (q *QMLP) InferBatch(s *QScratch, x []float64, m int, out []float64) error {
	if len(q.Layers) == 0 {
		return fmt.Errorf("nn: empty quantized network")
	}
	if m <= 0 {
		return fmt.Errorf("nn: batch size %d, want > 0", m)
	}
	in0 := q.Layers[0].In
	if len(x) != m*in0 {
		return fmt.Errorf("nn: batch input %d floats, want %d (m=%d × in=%d)", len(x), m*in0, m, in0)
	}
	classes := q.Layers[len(q.Layers)-1].Out
	if len(out) < m*classes {
		return fmt.Errorf("nn: batch output %d floats, want >= %d (m=%d × classes=%d)", len(out), m*classes, m, classes)
	}
	if s == nil {
		s = &QScratch{}
	}
	s.cur = growI8(s.cur, m*in0)
	for k := 0; k < m; k++ {
		quantizeActivationsInto(s.cur[k*in0:(k+1)*in0], x[k*in0:(k+1)*in0], q.InputScale)
	}
	width := in0
	for li, l := range q.Layers {
		if width != l.In {
			return fmt.Errorf("nn: layer %d input %d, want %d", li, width, l.In)
		}
		s.acc = growI32(s.acc, m*l.Out)
		qgemmNT(s.acc, s.cur, l.WQ, l.BQ, m, l.In, l.Out)
		if li == len(q.Layers)-1 {
			l.dequantLogitsInto(out, s.acc, m)
			return nil
		}
		s.next = growI8(s.next, m*l.Out)
		l.requantInto(s.next, s.acc, m)
		s.cur, s.next = s.next, s.cur
		width = l.Out
	}
	return fmt.Errorf("nn: unreachable")
}

// Evaluate returns integer-pipeline accuracy on examples. Examples are
// processed in chunks of evalChunk with one int32-accumulator GEMM per
// layer (qgemmNT) instead of per-example dot products; integer arithmetic
// is exact, so the result is identical to calling Infer per example.
func (q *QMLP) Evaluate(examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("nn: no evaluation examples")
	}
	if len(q.Layers) == 0 {
		return 0, fmt.Errorf("nn: empty quantized network")
	}
	in0 := q.Layers[0].In
	var cur, next []int8 // double-buffered activation matrices
	var acc []int32
	var logits []float64
	var hit int
	for start := 0; start < len(examples); start += evalChunk {
		end := start + evalChunk
		if end > len(examples) {
			end = len(examples)
		}
		m := end - start
		cur = growI8(cur, m*in0)
		for k := 0; k < m; k++ {
			data := flattenExample(examples[start+k].X).Data
			if len(data) != in0 {
				return 0, fmt.Errorf("nn: quantized input size %d, want %d", len(data), in0)
			}
			quantizeActivationsInto(cur[k*in0:(k+1)*in0], data, q.InputScale)
		}
		width := in0
		for li, l := range q.Layers {
			if width != l.In {
				return 0, fmt.Errorf("nn: layer %d input %d, want %d", li, width, l.In)
			}
			acc = growI32(acc, m*l.Out)
			qgemmNT(acc, cur, l.WQ, l.BQ, m, l.In, l.Out)
			if li == len(q.Layers)-1 {
				logits = growF64(logits, m*l.Out)
				l.dequantLogitsInto(logits, acc, m)
				break
			}
			next = growI8(next, m*l.Out)
			l.requantInto(next, acc, m)
			cur, next = next, cur
			width = l.Out
		}
		classes := q.Layers[len(q.Layers)-1].Out
		for k := 0; k < m; k++ {
			if Argmax(logits[k*classes:(k+1)*classes]) == examples[start+k].Y {
				hit++
			}
		}
	}
	return float64(hit) / float64(len(examples)), nil
}

// flattenExample views a rank-2 tensor as rank-1 (MLPs flatten anyway).
func flattenExample(x *Tensor) *Tensor {
	if !x.IsMatrix() {
		return x
	}
	return &Tensor{Data: x.Data, Cols: len(x.Data)}
}

// SizeBytes returns the integer pipeline's deployment size: int8 weights,
// int32 biases, and the handful of scales.
func (q *QMLP) SizeBytes() int {
	n := 8 // input scale
	for _, l := range q.Layers {
		n += len(l.WQ) + 4*len(l.BQ) + 3*8
	}
	return n
}

package nn

// Shared blocked matmul kernels for the batched training/inference paths.
//
// Every float kernel here is written under one hard constraint: for each
// output (or gradient) slot, the sequence of floating-point operations is
// exactly the sequence the per-example layer code performs. Accumulation
// over the reduction dimension always runs in ascending index order and
// every multiply-add is written as `acc += a*b` (the same expression shape
// as the scalar loops, so architectures that fuse multiply-adds fuse both
// paths identically). Blocking therefore only reorders *independent*
// slots — four output rows share one pass over the input row — which
// improves locality without changing a single bit of any result. The
// equivalence is locked down by Float64bits-exact tests in batch_test.go.
//
// Layout conventions match the layers: weight matrices are [out][in]
// row-major (so the forward product is X · Wᵀ), activations are [n][in]
// row-major with one example per row.

// gemmBiasNT computes y[r][o] = bias[o] + Σ_i x[r][i]·w[o][i] for an
// n×in activation block against an out×in weight matrix, writing the
// n×out result into y (fully overwritten). This is the Dense forward and
// the recurrent layers' input-side step matmul.
func gemmBiasNT(y, x, w, bias []float64, n, in, out int) {
	mtr.gemmCalls.Inc()
	mtr.gemmScalar.Inc() // manual register tiles, not the axpy4 backend
	r := 0
	// 2-row × 4-output register tiles: each weight load feeds two examples,
	// each input load feeds four outputs. Slots still accumulate
	// independently in ascending i order.
	for ; r+2 <= n; r += 2 {
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		y0 := y[(r+0)*out : (r+1)*out]
		y1 := y[(r+1)*out : (r+2)*out]
		o := 0
		for ; o+4 <= out; o += 4 {
			w0 := w[(o+0)*in : (o+1)*in]
			w1 := w[(o+1)*in : (o+2)*in]
			w2 := w[(o+2)*in : (o+3)*in]
			w3 := w[(o+3)*in : (o+4)*in]
			s00, s01, s02, s03 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			s10, s11, s12, s13 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			for i, v0 := range x0 {
				v1 := x1[i]
				wa, wb, wc, wd := w0[i], w1[i], w2[i], w3[i]
				s00 += wa * v0
				s01 += wb * v0
				s02 += wc * v0
				s03 += wd * v0
				s10 += wa * v1
				s11 += wb * v1
				s12 += wc * v1
				s13 += wd * v1
			}
			y0[o], y0[o+1], y0[o+2], y0[o+3] = s00, s01, s02, s03
			y1[o], y1[o+1], y1[o+2], y1[o+3] = s10, s11, s12, s13
		}
		for ; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			s0, s1 := bias[o], bias[o]
			for i, v0 := range x0 {
				s0 += wo[i] * v0
				s1 += wo[i] * x1[i]
			}
			y0[o], y1[o] = s0, s1
		}
	}
	for ; r < n; r++ {
		xr := x[r*in : (r+1)*in]
		yr := y[r*out : (r+1)*out]
		o := 0
		for ; o+8 <= out; o += 8 {
			w0 := w[(o+0)*in : (o+1)*in]
			w1 := w[(o+1)*in : (o+2)*in]
			w2 := w[(o+2)*in : (o+3)*in]
			w3 := w[(o+3)*in : (o+4)*in]
			w4 := w[(o+4)*in : (o+5)*in]
			w5 := w[(o+5)*in : (o+6)*in]
			w6 := w[(o+6)*in : (o+7)*in]
			w7 := w[(o+7)*in : (o+8)*in]
			s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			s4, s5, s6, s7 := bias[o+4], bias[o+5], bias[o+6], bias[o+7]
			for i, v := range xr {
				s0 += w0[i] * v
				s1 += w1[i] * v
				s2 += w2[i] * v
				s3 += w3[i] * v
				s4 += w4[i] * v
				s5 += w5[i] * v
				s6 += w6[i] * v
				s7 += w7[i] * v
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
			yr[o+4], yr[o+5], yr[o+6], yr[o+7] = s4, s5, s6, s7
		}
		for ; o+4 <= out; o += 4 {
			w0 := w[(o+0)*in : (o+1)*in]
			w1 := w[(o+1)*in : (o+2)*in]
			w2 := w[(o+2)*in : (o+3)*in]
			w3 := w[(o+3)*in : (o+4)*in]
			s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			for i, v := range xr {
				s0 += w0[i] * v
				s1 += w1[i] * v
				s2 += w2[i] * v
				s3 += w3[i] * v
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
		}
		for ; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			s := bias[o]
			for i, v := range xr {
				s += wo[i] * v
			}
			yr[o] = s
		}
	}
}

// gemmDXAcc accumulates dx[r][i] += Σ_o g[r][o]·w[o][i] over an n×out
// gradient block and an out×in weight matrix. The o-reduction runs in
// ascending order per slot, which is exactly the per-example Dense
// backward order; blocking four output rows keeps the chained `s += g·w`
// adds for each slot in that same order (axpy4). dx is accumulated into,
// not overwritten; callers zero it first when that is the contract.
func gemmDXAcc(dx, g, w []float64, n, in, out int) {
	countGemm()
	for r := 0; r < n; r++ {
		gr := g[r*out : (r+1)*out]
		dxr := dx[r*in : (r+1)*in]
		o := 0
		for ; o+4 <= out; o += 4 {
			axpy4(dxr,
				w[(o+0)*in:(o+1)*in],
				w[(o+1)*in:(o+2)*in],
				w[(o+2)*in:(o+3)*in],
				w[(o+3)*in:(o+4)*in],
				gr[o], gr[o+1], gr[o+2], gr[o+3])
		}
		for ; o < out; o++ {
			gv := gr[o]
			wo := w[o*in : (o+1)*in]
			for i, wv := range wo {
				dxr[i] += gv * wv
			}
		}
	}
}

// gemmGradAcc accumulates parameter gradients for a dense layer over an
// n-example block: wGrad[o][i] += Σ_r g[r][o]·x[r][i] and
// bGrad[o] += Σ_r g[r][o], with the example reduction in ascending order
// per slot — the same order the per-example backward applies them.
// Examples are blocked eight (then four) at a time; the chained `s += g·x`
// updates per slot are the identical operation sequence, just kept in a
// register.
func gemmGradAcc(wGrad, bGrad, g, x []float64, n, in, out int) {
	countGemm()
	r := 0
	for ; r+8 <= n; r += 8 {
		g0 := g[(r+0)*out : (r+1)*out]
		g1 := g[(r+1)*out : (r+2)*out]
		g2 := g[(r+2)*out : (r+3)*out]
		g3 := g[(r+3)*out : (r+4)*out]
		g4 := g[(r+4)*out : (r+5)*out]
		g5 := g[(r+5)*out : (r+6)*out]
		g6 := g[(r+6)*out : (r+7)*out]
		g7 := g[(r+7)*out : (r+8)*out]
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		x4 := x[(r+4)*in : (r+5)*in]
		x5 := x[(r+5)*in : (r+6)*in]
		x6 := x[(r+6)*in : (r+7)*in]
		x7 := x[(r+7)*in : (r+8)*in]
		for o := 0; o < out; o++ {
			ga, gb, gc, gd := g0[o], g1[o], g2[o], g3[o]
			ge, gf, gg, gh := g4[o], g5[o], g6[o], g7[o]
			b := bGrad[o]
			b += ga
			b += gb
			b += gc
			b += gd
			b += ge
			b += gf
			b += gg
			b += gh
			bGrad[o] = b
			// Two chained axpy4 passes keep the eight per-slot adds in
			// example order (the intermediate store is exact).
			row := wGrad[o*in : (o+1)*in]
			axpy4(row, x0, x1, x2, x3, ga, gb, gc, gd)
			axpy4(row, x4, x5, x6, x7, ge, gf, gg, gh)
		}
	}
	for ; r+4 <= n; r += 4 {
		g0 := g[(r+0)*out : (r+1)*out]
		g1 := g[(r+1)*out : (r+2)*out]
		g2 := g[(r+2)*out : (r+3)*out]
		g3 := g[(r+3)*out : (r+4)*out]
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		for o := 0; o < out; o++ {
			ga, gb, gc, gd := g0[o], g1[o], g2[o], g3[o]
			b := bGrad[o]
			b += ga
			b += gb
			b += gc
			b += gd
			bGrad[o] = b
			axpy4(wGrad[o*in:(o+1)*in], x0, x1, x2, x3, ga, gb, gc, gd)
		}
	}
	for ; r < n; r++ {
		gr := g[r*out : (r+1)*out]
		xr := x[r*in : (r+1)*in]
		for o, gv := range gr {
			bGrad[o] += gv
			row := wGrad[o*in : (o+1)*in]
			for i := range row {
				row[i] += gv * xr[i]
			}
		}
	}
}

// gemmBiasT computes the same product as gemmBiasNT from a transposed
// weight matrix wt ([in][out] row-major): y[r][:] starts as bias and
// accumulates x[r][i]·wt[i][:] for i ascending. Per output slot that is
// bias first, then input contributions in ascending i order — the exact
// per-example chain (intermediate stores are exact) — while the inner
// axis is contiguous, so the axpy4 SIMD backend applies. Callers keep wt
// fresh via transposeInto; the cost is one weight-matrix copy per GEMM,
// amortized over the n batch rows.
// gemmRowBlock is the example-block height for gemmBiasT: the y block
// (gemmRowBlock×out rows) stays L1/L2-resident across the whole input
// sweep, so the weight matrix streams from memory once per block instead
// of once per example.
const gemmRowBlock = 16

func gemmBiasT(y, x, wt, bias []float64, n, in, out int) {
	countGemm()
	for rs := 0; rs < n; rs += gemmRowBlock {
		re := rs + gemmRowBlock
		if re > n {
			re = n
		}
		for r := rs; r < re; r++ {
			copy(y[r*out:(r+1)*out], bias)
		}
		i := 0
		for ; i+4 <= in; i += 4 {
			w0 := wt[(i+0)*out : (i+1)*out]
			w1 := wt[(i+1)*out : (i+2)*out]
			w2 := wt[(i+2)*out : (i+3)*out]
			w3 := wt[(i+3)*out : (i+4)*out]
			for r := rs; r < re; r++ {
				xr := x[r*in : (r+1)*in]
				axpy4(y[r*out:(r+1)*out], w0, w1, w2, w3,
					xr[i], xr[i+1], xr[i+2], xr[i+3])
			}
		}
		for ; i < in; i++ {
			wti := wt[i*out : (i+1)*out]
			for r := rs; r < re; r++ {
				v := x[r*in+i]
				yr := y[r*out : (r+1)*out]
				for o, wv := range wti {
					yr[o] += v * wv
				}
			}
		}
	}
}

// transposeInto writes the [out][in] weight matrix w into wt as
// [in][out] row-major, in 32×32 tiles so both sides stay cache-friendly.
// wt must have in*out elements.
func transposeInto(wt, w []float64, in, out int) {
	const tile = 32
	for o0 := 0; o0 < out; o0 += tile {
		o1 := o0 + tile
		if o1 > out {
			o1 = out
		}
		for i0 := 0; i0 < in; i0 += tile {
			i1 := i0 + tile
			if i1 > in {
				i1 = in
			}
			for o := o0; o < o1; o++ {
				row := w[o*in+i0 : o*in+i1]
				for k, v := range row {
					wt[(i0+k)*out+o] = v
				}
			}
		}
	}
}

// qgemmNT computes the int8 batched dense product
// acc[r][o] = bq[o] + Σ_i int32(w[o][i])·int32(x[r][i]) with int32
// accumulators — the arithmetic an integer NPU executes. Integer addition
// is exact, so blocking is unconstrained; four output rows share one pass
// over each activation row.
func qgemmNT(acc []int32, x, w []int8, bq []int32, n, in, out int) {
	mtr.qgemmCalls.Inc()
	for r := 0; r < n; r++ {
		xr := x[r*in : (r+1)*in]
		ar := acc[r*out : (r+1)*out]
		o := 0
		for ; o+4 <= out; o += 4 {
			w0 := w[(o+0)*in : (o+1)*in]
			w1 := w[(o+1)*in : (o+2)*in]
			w2 := w[(o+2)*in : (o+3)*in]
			w3 := w[(o+3)*in : (o+4)*in]
			s0, s1, s2, s3 := bq[o], bq[o+1], bq[o+2], bq[o+3]
			for i, v := range xr {
				xv := int32(v)
				s0 += int32(w0[i]) * xv
				s1 += int32(w1[i]) * xv
				s2 += int32(w2[i]) * xv
				s3 += int32(w3[i]) * xv
			}
			ar[o], ar[o+1], ar[o+2], ar[o+3] = s0, s1, s2, s3
		}
		for ; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			s := bq[o]
			for i, v := range xr {
				s += int32(wo[i]) * int32(v)
			}
			ar[o] = s
		}
	}
}

// growF64 returns buf resized to length n, reallocating only when capacity
// is insufficient. Contents are unspecified. Reallocations are counted:
// a steady-state training loop must not grow scratch, so a climbing
// kernel.scratch_grows counter flags a shape or reuse regression.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		mtr.scratchGrows.Inc()
		return make([]float64, n)
	}
	return buf[:n]
}

// growI8 is growF64 for int8 scratch.
func growI8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		mtr.scratchGrows.Inc()
		return make([]int8, n)
	}
	return buf[:n]
}

// growI32 is growF64 for int32 scratch.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		mtr.scratchGrows.Inc()
		return make([]int32, n)
	}
	return buf[:n]
}

// growBool is growF64 for bool scratch.
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		mtr.scratchGrows.Inc()
		return make([]bool, n)
	}
	return buf[:n]
}

// zeroF64 clears a float64 slice (compiles to memclr).
func zeroF64(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// reshape points t at rows×cols (rows==0 meaning a rank-1 vector of cols),
// growing the backing array only when needed. Used for per-layer scratch
// tensors so steady-state training reuses one allocation per layer.
func (t *Tensor) reshape(rows, cols int) *Tensor {
	n := cols
	if rows > 0 {
		n = rows * cols
	}
	t.Data = growF64(t.Data, n)
	t.Rows, t.Cols = rows, cols
	return t
}

//go:build amd64

package nn

// AVX backend for the axpy4 primitive. The vector body performs, per
// output slot i, the exact scalar chain
//
//	d := dst[i]; d += a0*s0[i]; d += a1*s1[i]; d += a2*s2[i]; d += a3*s3[i]
//
// with each multiply and add IEEE-rounded separately (VMULPD then VADDPD —
// no FMA contraction), so results are bit-identical to the pure-Go loop:
// SIMD lanes are independent slots, and per-slot operation order is
// unchanged. Detected at startup; non-AVX hosts use the portable loop.

// cpuHasAVX reports AVX support including OS-enabled YMM state.
func cpuHasAVX() bool

//go:noescape
func axpy4AVX(dst, s0, s1, s2, s3 *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func adamAVX(w, grad, m, v *float64, n int, inv, b1, ib1, b2, ib2, c1, c2, lr, eps float64)

var useAVX = cpuHasAVX()

// simdActive reports whether axpy4/adamSlice dispatch to the AVX backend.
func simdActive() bool { return useAVX }

// axpy4 computes dst[i] += a0·s0[i] + a1·s1[i] + a2·s2[i] + a3·s3[i]
// (chained in that order per slot) over len(dst) elements.
func axpy4(dst, s0, s1, s2, s3 []float64, a0, a1, a2, a3 float64) {
	n := len(dst)
	if useAVX && n >= 4 {
		q := n &^ 3
		axpy4AVX(&dst[0], &s0[0], &s1[0], &s2[0], &s3[0], q, a0, a1, a2, a3)
		axpy4Go(dst[q:], s0[q:], s1[q:], s2[q:], s3[q:], a0, a1, a2, a3)
		return
	}
	axpy4Go(dst, s0, s1, s2, s3, a0, a1, a2, a3)
}

// adamSlice applies one Adam update to a parameter slice; see adamSliceGo
// for the per-element formula the vector body reproduces bit for bit.
func adamSlice(w, grad, m, v []float64, inv, b1, b2, c1, c2, lr, eps float64) {
	n := len(w)
	if useAVX && n >= 4 {
		q := n &^ 3
		adamAVX(&w[0], &grad[0], &m[0], &v[0], q, inv, b1, 1-b1, b2, 1-b2, c1, c2, lr, eps)
		adamSliceGo(w[q:], grad[q:], m[q:], v[q:], inv, b1, b2, c1, c2, lr, eps)
		return
	}
	adamSliceGo(w, grad, m, v, inv, b1, b2, c1, c2, lr, eps)
}

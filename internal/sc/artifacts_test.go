package sc

import (
	"math"
	"testing"

	"affectedge/internal/affectdata"
)

func cleanTrace(t *testing.T) []float64 {
	t.Helper()
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Samples
}

func TestDetectArtifacts(t *testing.T) {
	samples := cleanTrace(t)
	// Clean physiological trace: no artifacts at the standard limit.
	if got := DetectArtifacts(samples, 4, DefaultArtifactConfig()); len(got) != 0 {
		t.Errorf("clean trace flagged %d artifacts", len(got))
	}
	// Inject spikes.
	samples[100] += 20
	samples[500] -= 15
	got := DetectArtifacts(samples, 4, DefaultArtifactConfig())
	if len(got) < 2 {
		t.Fatalf("only %d artifacts detected", len(got))
	}
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	if !found[100] || !found[500] {
		t.Errorf("spike indices missed: %v", got[:min(6, len(got))])
	}
	if DetectArtifacts(nil, 4, DefaultArtifactConfig()) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestRemoveArtifacts(t *testing.T) {
	samples := cleanTrace(t)
	orig := make([]float64, len(samples))
	copy(orig, samples)
	samples[200] += 25
	cleaned, repaired, err := RemoveArtifacts(samples, 4, DefaultArtifactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("nothing repaired")
	}
	// Spike gone: the cleaned sample near index 200 is close to the
	// original physiological value.
	if math.Abs(cleaned[200]-orig[200]) > 2 {
		t.Errorf("cleaned[200]=%g vs original %g", cleaned[200], orig[200])
	}
	// Input untouched.
	if samples[200] == cleaned[200] {
		t.Error("RemoveArtifacts mutated its input")
	}
	// Clean input passes through unchanged.
	passthrough, repaired, err := RemoveArtifacts(orig, 4, DefaultArtifactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Errorf("clean trace repaired %d samples", repaired)
	}
	for i := range orig {
		if passthrough[i] != orig[i] {
			t.Fatal("clean passthrough changed data")
		}
	}
	if _, _, err := RemoveArtifacts(nil, 4, DefaultArtifactConfig()); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAnalyzeSCRs(t *testing.T) {
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeSCRs(tr.Samples, tr.SampleRate, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Count == 0 {
		t.Fatal("no SCRs in a 40-minute trace")
	}
	if st.RatePerMin <= 0 || st.RatePerMin > 20 {
		t.Errorf("rate %.2f/min implausible", st.RatePerMin)
	}
	if st.MeanAmplitude <= 0 || st.MaxAmplitude < st.MeanAmplitude {
		t.Errorf("amplitudes inconsistent: mean %g max %g", st.MeanAmplitude, st.MaxAmplitude)
	}
	// The tense segment (20-29 min) should have a higher SCR rate than
	// the distracted one (0-14 min).
	seg := func(loMin, hiMin float64) SCRStats {
		lo := int(loMin * 60 * tr.SampleRate)
		hi := int(hiMin * 60 * tr.SampleRate)
		s, err := AnalyzeSCRs(tr.Samples[lo:hi], tr.SampleRate, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if seg(20, 29).RatePerMin <= seg(1, 14).RatePerMin {
		t.Error("tense SCR rate not above distracted")
	}
	if _, err := AnalyzeSCRs(nil, 4, DefaultConfig()); err == nil {
		t.Error("empty input accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package sc

import (
	"math"
	"testing"

	"affectedge/internal/affectdata"
	"affectedge/internal/emotion"
)

func TestTonicPhasicDecomposition(t *testing.T) {
	// Tonic + phasic must reconstruct the signal exactly.
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tonic := Tonic(tr.Samples, tr.SampleRate, cfg)
	phasic := Phasic(tr.Samples, tr.SampleRate, cfg)
	for i := range tr.Samples {
		if math.Abs(tonic[i]+phasic[i]-tr.Samples[i]) > 1e-9 {
			t.Fatalf("decomposition broken at %d", i)
		}
	}
	// Tonic must be smoother than the raw signal (lower mean abs diff).
	var rawVar, tonVar float64
	for i := 1; i < len(tr.Samples); i++ {
		rawVar += math.Abs(tr.Samples[i] - tr.Samples[i-1])
		tonVar += math.Abs(tonic[i] - tonic[i-1])
	}
	if tonVar >= rawVar {
		t.Error("tonic component not smoother than raw signal")
	}
}

func TestCountSCRs(t *testing.T) {
	// Three clear peaks spaced > 1 s apart at 4 Hz.
	phasic := make([]float64, 100)
	for _, p := range []int{10, 40, 80} {
		phasic[p] = 1.0
		phasic[p-1] = 0.5
		phasic[p+1] = 0.5
	}
	cfg := DefaultConfig()
	if got := CountSCRs(phasic, 4, cfg); got != 3 {
		t.Errorf("counted %d SCRs, want 3", got)
	}
	// Peaks below threshold are ignored.
	low := make([]float64, 100)
	low[50] = 0.1
	if got := CountSCRs(low, 4, cfg); got != 0 {
		t.Errorf("counted %d sub-threshold SCRs, want 0", got)
	}
	// Refractory: two peaks within one second count once.
	closePeaks := make([]float64, 100)
	closePeaks[50], closePeaks[52] = 1, 1
	if got := CountSCRs(closePeaks, 4, cfg); got != 1 {
		t.Errorf("refractory violated: %d", got)
	}
}

func TestClassifyRecoversSchedule(t *testing.T) {
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := Classify(tr.Samples, tr.SampleRate, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 80 { // 40 min / 30 s
		t.Fatalf("got %d windows, want 80", len(windows))
	}
	acc := Accuracy(windows, tr.StateAt)
	if acc < 0.70 {
		t.Errorf("classification accuracy %.2f below 0.70", acc)
	}
	// Windows must tile the recording.
	if windows[0].StartMin != 0 || math.Abs(windows[len(windows)-1].EndMin-40) > 1e-9 {
		t.Error("windows do not tile the recording")
	}
	for i := 1; i < len(windows); i++ {
		if math.Abs(windows[i].StartMin-windows[i-1].EndMin) > 1e-9 {
			t.Fatalf("gap between windows %d and %d", i-1, i)
		}
	}
}

func TestClassifyStateLevelsOrdered(t *testing.T) {
	// Mean classified level must increase with state arousal.
	tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := Classify(tr.Samples, tr.SampleRate, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := map[emotion.Attention]float64{}
	cnt := map[emotion.Attention]int{}
	for _, w := range windows {
		sum[w.State] += w.Level
		cnt[w.State]++
	}
	mean := func(a emotion.Attention) float64 {
		if cnt[a] == 0 {
			return 0
		}
		return sum[a] / float64(cnt[a])
	}
	if !(mean(emotion.Distracted) < mean(emotion.Concentrated) &&
		mean(emotion.Concentrated) < mean(emotion.Tense)) {
		t.Errorf("state level ordering violated: %v %v %v",
			mean(emotion.Distracted), mean(emotion.Concentrated), mean(emotion.Tense))
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, err := Classify(nil, 4, DefaultConfig()); err == nil {
		t.Error("empty recording accepted")
	}
	if _, err := Classify([]float64{1}, 0, DefaultConfig()); err == nil {
		t.Error("zero rate accepted")
	}
	bad := DefaultConfig()
	bad.WindowSec = 0
	if _, err := Classify([]float64{1, 2}, 4, bad); err == nil {
		t.Error("zero window accepted")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(nil, func(float64) emotion.Attention { return emotion.Tense }) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

// TestClassifyAcrossSubjects checks the self-calibrating thresholds: the
// same classifier config works for wearers with very different SC
// baselines (the quantile calibration is per-recording).
func TestClassifyAcrossSubjects(t *testing.T) {
	for subject := int64(0); subject < 5; subject++ {
		tr, err := affectdata.GenerateSC(affectdata.UulmMACSchedule(), 4, 100+subject)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate individual baselines: scale and offset the recording.
		scale := 0.5 + 0.4*float64(subject)
		offset := float64(subject) * 1.5
		samples := make([]float64, len(tr.Samples))
		for i, v := range tr.Samples {
			samples[i] = v*scale + offset
		}
		windows, err := Classify(samples, tr.SampleRate, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		acc := Accuracy(windows, tr.StateAt)
		if acc < 0.60 {
			t.Errorf("subject %d (scale %.1f offset %.1f): accuracy %.2f below 0.60",
				subject, scale, offset, acc)
		}
	}
}

// Package sc processes skin-conductance recordings into the attention
// states that drive the affect-adaptive video decoder (§4, Fig 6 bottom).
//
// A recording decomposes into a slow tonic level (SCL) and fast phasic
// responses (SCRs). Arousal raises both, so the classifier scores each
// analysis window by smoothed level and SCR rate, with thresholds
// self-calibrated from the recording's own distribution (the "calibration
// round" approach used by wearable studies).
package sc

import (
	"fmt"
	"math"

	"affectedge/internal/dsp"
	"affectedge/internal/emotion"
)

// Sample is one classified analysis window.
type Sample struct {
	StartMin float64
	EndMin   float64
	Level    float64 // mean tonic SC level in the window (uS)
	SCRRate  float64 // detected phasic responses per minute
	State    emotion.Attention
}

// Config controls classification.
type Config struct {
	// WindowSec is the analysis window length (default 30 s).
	WindowSec float64
	// SmoothSec is the tonic smoothing span (default 8 s).
	SmoothSec float64
	// PeakThreshold is the minimum phasic amplitude (uS) counted as an
	// SCR (default 0.3).
	PeakThreshold float64
}

// DefaultConfig returns the standard analysis parameters.
func DefaultConfig() Config {
	return Config{WindowSec: 30, SmoothSec: 8, PeakThreshold: 0.3}
}

// Tonic returns the slow SCL component: a moving average over
// cfg.SmoothSec.
func Tonic(samples []float64, sampleRate float64, cfg Config) []float64 {
	win := int(cfg.SmoothSec * sampleRate)
	return dsp.Smooth(samples, win)
}

// Phasic returns signal minus tonic: the SCR component.
func Phasic(samples []float64, sampleRate float64, cfg Config) []float64 {
	tonic := Tonic(samples, sampleRate, cfg)
	out := make([]float64, len(samples))
	for i := range samples {
		out[i] = samples[i] - tonic[i]
	}
	return out
}

// CountSCRs counts phasic peaks above the threshold: local maxima of the
// phasic component exceeding cfg.PeakThreshold, with a refractory period
// of one second.
func CountSCRs(phasic []float64, sampleRate float64, cfg Config) int {
	refractory := int(sampleRate)
	if refractory < 1 {
		refractory = 1
	}
	var count, last int
	last = -refractory
	for i := 1; i+1 < len(phasic); i++ {
		if phasic[i] >= cfg.PeakThreshold &&
			phasic[i] >= phasic[i-1] && phasic[i] > phasic[i+1] &&
			i-last >= refractory {
			count++
			last = i
		}
	}
	return count
}

// Classify segments a recording into windows and assigns an attention
// state to each by combining normalized level and SCR rate. Thresholds
// are the 25th/50th/75th percentiles of the per-window arousal score, so
// the classifier adapts to each wearer's baseline.
func Classify(samples []float64, sampleRate float64, cfg Config) ([]Sample, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("sc: empty recording")
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("sc: sample rate %g must be positive", sampleRate)
	}
	if cfg.WindowSec <= 0 {
		return nil, fmt.Errorf("sc: window %g must be positive", cfg.WindowSec)
	}
	win := int(cfg.WindowSec * sampleRate)
	if win < 1 {
		win = 1
	}
	tonic := Tonic(samples, sampleRate, cfg)
	phasic := Phasic(samples, sampleRate, cfg)

	type winFeat struct {
		level, rate float64
		start, end  float64
	}
	var feats []winFeat
	for lo := 0; lo < len(samples); lo += win {
		hi := lo + win
		if hi > len(samples) {
			hi = len(samples)
		}
		level := dsp.Mean(tonic[lo:hi])
		nSCR := CountSCRs(phasic[lo:hi], sampleRate, cfg)
		durMin := float64(hi-lo) / sampleRate / 60
		rate := 0.0
		if durMin > 0 {
			rate = float64(nSCR) / durMin
		}
		feats = append(feats, winFeat{
			level: level, rate: rate,
			start: float64(lo) / sampleRate / 60,
			end:   float64(hi) / sampleRate / 60,
		})
	}
	// Arousal score: level normalized to the trace range plus a rate term.
	levels := make([]float64, len(feats))
	rates := make([]float64, len(feats))
	for i, f := range feats {
		levels[i] = f.level
		rates[i] = f.rate
	}
	lMin, lMax := levels[0], levels[0]
	for _, v := range levels {
		lMin = math.Min(lMin, v)
		lMax = math.Max(lMax, v)
	}
	rMax := 0.0
	for _, v := range rates {
		rMax = math.Max(rMax, v)
	}
	scores := make([]float64, len(feats))
	for i := range feats {
		ls := 0.0
		if lMax > lMin {
			ls = (levels[i] - lMin) / (lMax - lMin)
		}
		rs := 0.0
		if rMax > 0 {
			rs = rates[i] / rMax
		}
		scores[i] = 0.7*ls + 0.3*rs
	}
	q1 := dsp.Percentile(scores, 25)
	q2 := dsp.Percentile(scores, 50)
	q3 := dsp.Percentile(scores, 75)
	out := make([]Sample, len(feats))
	for i, f := range feats {
		state := emotion.Distracted
		switch {
		case scores[i] >= q3:
			state = emotion.Tense
		case scores[i] >= q2:
			state = emotion.Concentrated
		case scores[i] >= q1:
			state = emotion.Relaxed
		}
		out[i] = Sample{StartMin: f.start, EndMin: f.end, Level: f.level, SCRRate: f.rate, State: state}
	}
	return out, nil
}

// Accuracy compares classified windows against a ground-truth labeller
// (e.g. SCTrace.StateAt) and returns the fraction of windows whose state
// matches the label at the window midpoint.
func Accuracy(samples []Sample, truth func(minute float64) emotion.Attention) float64 {
	if len(samples) == 0 {
		return 0
	}
	var hit int
	for _, s := range samples {
		if s.State == truth((s.StartMin+s.EndMin)/2) {
			hit++
		}
	}
	return float64(hit) / float64(len(samples))
}

package sc

import (
	"fmt"
	"math"

	"affectedge/internal/dsp"
)

// Wearable SC sensors pick up motion artifacts: abrupt spikes far faster
// than physiological skin conductance can change. This file provides
// artifact detection/removal and SCR amplitude statistics, the
// preprocessing real deployments need before the classifier.

// ArtifactConfig controls spike detection.
type ArtifactConfig struct {
	// MaxSlopePerSec is the largest physiologically plausible SC change
	// (uS/s); faster transitions are artifacts. Literature uses ~10 uS/s.
	MaxSlopePerSec float64
}

// DefaultArtifactConfig returns the conventional slope limit.
func DefaultArtifactConfig() ArtifactConfig { return ArtifactConfig{MaxSlopePerSec: 10} }

// DetectArtifacts returns the indices of samples whose slope to the
// previous sample exceeds the plausibility limit.
func DetectArtifacts(samples []float64, sampleRate float64, cfg ArtifactConfig) []int {
	if len(samples) < 2 || sampleRate <= 0 || cfg.MaxSlopePerSec <= 0 {
		return nil
	}
	limit := cfg.MaxSlopePerSec / sampleRate
	var out []int
	for i := 1; i < len(samples); i++ {
		if math.Abs(samples[i]-samples[i-1]) > limit {
			out = append(out, i)
		}
	}
	return out
}

// RemoveArtifacts replaces artifact samples (and one neighbor each side)
// by linear interpolation between the surrounding clean samples. It
// returns a cleaned copy and the number of repaired samples.
func RemoveArtifacts(samples []float64, sampleRate float64, cfg ArtifactConfig) ([]float64, int, error) {
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("sc: empty recording")
	}
	out := make([]float64, len(samples))
	copy(out, samples)
	bad := map[int]bool{}
	for _, i := range DetectArtifacts(samples, sampleRate, cfg) {
		bad[i] = true
		if i > 0 {
			bad[i-1] = true
		}
		if i+1 < len(samples) {
			bad[i+1] = true
		}
	}
	if len(bad) == 0 {
		return out, 0, nil
	}
	// Interpolate over contiguous bad runs.
	i := 0
	for i < len(out) {
		if !bad[i] {
			i++
			continue
		}
		runStart := i
		for i < len(out) && bad[i] {
			i++
		}
		lo := runStart - 1
		hi := i
		var loV, hiV float64
		switch {
		case lo < 0 && hi >= len(out):
			// Whole signal is artifact: flatten to the mean.
			loV = dsp.Mean(samples)
			hiV = loV
		case lo < 0:
			loV, hiV = out[hi], out[hi]
		case hi >= len(out):
			loV, hiV = out[lo], out[lo]
		default:
			loV, hiV = out[lo], out[hi]
		}
		span := hi - runStart + 1
		for k := runStart; k < hi && k < len(out); k++ {
			frac := float64(k-runStart+1) / float64(span+1)
			out[k] = loV*(1-frac) + hiV*frac
		}
	}
	return out, len(bad), nil
}

// SCRStats summarizes detected phasic responses.
type SCRStats struct {
	Count         int
	RatePerMin    float64
	MeanAmplitude float64
	MaxAmplitude  float64
}

// AnalyzeSCRs detects SCR peaks in the phasic component and returns their
// statistics — the amplitude features used alongside rate in affect
// studies.
func AnalyzeSCRs(samples []float64, sampleRate float64, cfg Config) (SCRStats, error) {
	if len(samples) == 0 {
		return SCRStats{}, fmt.Errorf("sc: empty recording")
	}
	if sampleRate <= 0 {
		return SCRStats{}, fmt.Errorf("sc: sample rate %g must be positive", sampleRate)
	}
	phasic := Phasic(samples, sampleRate, cfg)
	refractory := int(sampleRate)
	if refractory < 1 {
		refractory = 1
	}
	var st SCRStats
	last := -refractory
	var sum float64
	for i := 1; i+1 < len(phasic); i++ {
		if phasic[i] >= cfg.PeakThreshold &&
			phasic[i] >= phasic[i-1] && phasic[i] > phasic[i+1] &&
			i-last >= refractory {
			st.Count++
			sum += phasic[i]
			if phasic[i] > st.MaxAmplitude {
				st.MaxAmplitude = phasic[i]
			}
			last = i
		}
	}
	if st.Count > 0 {
		st.MeanAmplitude = sum / float64(st.Count)
	}
	minutes := float64(len(samples)) / sampleRate / 60
	if minutes > 0 {
		st.RatePerMin = float64(st.Count) / minutes
	}
	return st, nil
}

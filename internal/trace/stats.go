package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// AppStats summarizes one process's lifecycle over a run.
type AppStats struct {
	App          string
	Starts       int
	Kills        int
	Foregrounds  int
	TotalAlive   time.Duration
	MeanLifetime time.Duration
}

// Stats computes per-app lifecycle statistics up to horizon, sorted by
// descending foreground count (most-used first).
func (l *Log) Stats(horizon time.Duration) []AppStats {
	byApp := map[string]*AppStats{}
	get := func(app string) *AppStats {
		s, ok := byApp[app]
		if !ok {
			s = &AppStats{App: app}
			byApp[app] = s
		}
		return s
	}
	for _, e := range l.events {
		s := get(e.App)
		switch e.Kind {
		case EventStart:
			s.Starts++
		case EventKill:
			s.Kills++
		case EventForeground:
			s.Foregrounds++
		}
	}
	for app, spans := range l.lifespans(horizon) {
		s := get(app)
		for _, sp := range spans {
			s.TotalAlive += sp.to - sp.from
		}
		if n := len(spans); n > 0 {
			s.MeanLifetime = s.TotalAlive / time.Duration(n)
		}
	}
	out := make([]AppStats, 0, len(byApp))
	for _, s := range byApp {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Foregrounds != out[j].Foregrounds {
			return out[i].Foregrounds > out[j].Foregrounds
		}
		return out[i].App < out[j].App
	})
	return out
}

// FormatStats renders the statistics table.
func FormatStats(stats []AppStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s%8s%8s%8s%12s%14s\n", "app", "fg", "starts", "kills", "alive", "mean life")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-20s%8d%8d%8d%12v%14v\n",
			s.App, s.Foregrounds, s.Starts, s.Kills,
			s.TotalAlive.Round(time.Second), s.MeanLifetime.Round(time.Second))
	}
	return b.String()
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLifespanReconstruction(t *testing.T) {
	l := New()
	l.Record(0, "chrome", EventStart, "")
	l.Record(2*time.Minute, "chrome", EventKill, "limit")
	l.Record(3*time.Minute, "chrome", EventStart, "")
	l.Record(1*time.Minute, "maps", EventStart, "")
	horizon := 5 * time.Minute
	if got := l.AliveAt(1*time.Minute, horizon); got != 2 {
		t.Errorf("alive at 1m = %d, want 2", got)
	}
	if got := l.AliveAt(2*time.Minute+time.Second, horizon); got != 1 {
		t.Errorf("alive at 2m1s = %d, want 1 (chrome killed)", got)
	}
	if got := l.AliveAt(4*time.Minute, horizon); got != 2 {
		t.Errorf("alive at 4m = %d, want 2 (chrome restarted)", got)
	}
	if l.KillCount("") != 1 || l.KillCount("chrome") != 1 || l.KillCount("maps") != 0 {
		t.Error("kill counts wrong")
	}
}

func TestRenderASCII(t *testing.T) {
	l := New()
	l.Record(0, "a", EventStart, "")
	l.Record(5*time.Minute, "a", EventKill, "")
	l.Record(0, "bb", EventStart, "")
	out := l.RenderASCII(10*time.Minute, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d rows, want 2:\n%s", len(lines), out)
	}
	// a: alive first half then dead; bb alive throughout.
	if !strings.Contains(lines[0], "=") || !strings.Contains(lines[0], ".") {
		t.Errorf("row a should mix = and .: %s", lines[0])
	}
	if strings.Contains(lines[1], ".") {
		t.Errorf("row bb should be fully alive: %s", lines[1])
	}
	// Rows align: same width.
	if len(lines[0]) != len(lines[1]) {
		t.Error("rows not aligned")
	}
}

func TestAppsFirstSeenOrder(t *testing.T) {
	l := New()
	l.Record(0, "z", EventStart, "")
	l.Record(1, "a", EventStart, "")
	l.Record(2, "z", EventKill, "")
	apps := l.Apps()
	if len(apps) != 2 || apps[0] != "z" || apps[1] != "a" {
		t.Errorf("apps = %v", apps)
	}
}

func TestWriteCSV(t *testing.T) {
	l := New()
	l.Record(1500*time.Millisecond, "mail", EventStart, "cold")
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "at_ms,app,event,note\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1500,mail,start,cold") {
		t.Errorf("missing row: %q", out)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	l := New()
	l.Record(0, "mail", EventStart, "")
	l.Record(time.Minute, "mail", EventKill, "")
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2 (B+E)", len(evs))
	}
	if evs[0]["ph"] != "B" || evs[1]["ph"] != "E" {
		t.Errorf("phases %v %v", evs[0]["ph"], evs[1]["ph"])
	}
	if evs[1]["ts"].(float64) != 60e6 {
		t.Errorf("end ts %v, want 6e7 us", evs[1]["ts"])
	}
}

func TestDoubleStartIgnored(t *testing.T) {
	l := New()
	l.Record(0, "x", EventStart, "")
	l.Record(time.Second, "x", EventStart, "") // duplicate while alive
	l.Record(2*time.Second, "x", EventKill, "")
	if got := l.AliveAt(1500*time.Millisecond, time.Minute); got != 1 {
		t.Errorf("alive = %d, want 1", got)
	}
	if got := l.AliveAt(3*time.Second, time.Minute); got != 0 {
		t.Errorf("alive after kill = %d, want 0", got)
	}
}

func TestEventKindString(t *testing.T) {
	if EventStart.String() != "start" || EventKill.String() != "kill" {
		t.Error("event names wrong")
	}
	if EventKind(42).String() != "event(42)" {
		t.Error("unknown event name wrong")
	}
}

// Package trace records process-lifecycle events during the app-management
// simulation and renders them: an ASCII lifespan diagram equivalent to the
// paper's Fig 9 (green span = process alive, grey = killed), a CSV export,
// and a Chrome/Perfetto-compatible JSON trace (the paper recovers its data
// through the Perfetto developer API).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// EventKind is a process lifecycle transition.
type EventKind int

// Process lifecycle events.
const (
	EventStart      EventKind = iota // process created (cold start)
	EventForeground                  // brought to foreground
	EventBackground                  // moved to background
	EventKill                        // killed by the background manager
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventForeground:
		return "foreground"
	case EventBackground:
		return "background"
	case EventKill:
		return "kill"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one recorded lifecycle transition.
type Event struct {
	At   time.Duration
	App  string
	Kind EventKind
	// Note carries policy context ("over process limit", "low memory").
	Note string
}

// Log is an append-only event recorder.
type Log struct {
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// FromEvents rebuilds a log from recorded events (the shape Events
// returns), copying the slice. Device snapshot/restore uses this to carry
// a process-lifecycle history across serialization.
func FromEvents(events []Event) *Log {
	return &Log{events: append([]Event(nil), events...)}
}

// Record appends an event.
func (l *Log) Record(at time.Duration, app string, kind EventKind, note string) {
	l.events = append(l.events, Event{At: at, App: app, Kind: kind, Note: note})
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event { return l.events }

// Apps returns the distinct app names in first-seen order.
func (l *Log) Apps() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range l.events {
		if !seen[e.App] {
			seen[e.App] = true
			out = append(out, e.App)
		}
	}
	return out
}

// span is one alive interval of a process.
type span struct{ from, to time.Duration }

// lifespans reconstructs alive intervals per app, clipped to
// [0, horizon]: spans starting at or after the horizon are dropped, spans
// extending past it are truncated, and still-open spans end at the
// horizon. A zero (or negative) horizon therefore yields no spans rather
// than negative durations.
func (l *Log) lifespans(horizon time.Duration) map[string][]span {
	alive := map[string]time.Duration{}
	out := map[string][]span{}
	started := map[string]bool{}
	for _, e := range l.events {
		switch e.Kind {
		case EventStart:
			if !started[e.App] {
				alive[e.App] = e.At
				started[e.App] = true
			}
		case EventKill:
			if started[e.App] {
				out[e.App] = append(out[e.App], span{alive[e.App], e.At})
				started[e.App] = false
			}
		}
	}
	for app, ok := range started {
		if ok {
			out[app] = append(out[app], span{alive[app], horizon})
		}
	}
	for app, spans := range out {
		kept := spans[:0]
		for _, s := range spans {
			if s.from >= horizon {
				continue
			}
			if s.to > horizon {
				s.to = horizon
			}
			kept = append(kept, s)
		}
		if len(kept) == 0 {
			delete(out, app)
		} else {
			out[app] = kept
		}
	}
	return out
}

// RenderASCII draws the Fig 9-style process diagram: one row per app,
// width columns over [0, horizon], '=' while the process lives, '.' while
// it is dead. Apps render in first-seen order.
func (l *Log) RenderASCII(horizon time.Duration, width int) string {
	if width <= 0 {
		width = 60
	}
	spans := l.lifespans(horizon)
	apps := l.Apps()
	var b strings.Builder
	nameW := 0
	for _, a := range apps {
		if len(a) > nameW {
			nameW = len(a)
		}
	}
	for _, app := range apps {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans[app] {
			lo := int(float64(s.from) / float64(horizon) * float64(width))
			hi := int(float64(s.to) / float64(horizon) * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				row[i] = '='
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, app, row)
	}
	return b.String()
}

// AliveAt returns how many processes are alive at time t.
func (l *Log) AliveAt(t, horizon time.Duration) int {
	var n int
	for _, spans := range l.lifespans(horizon) {
		for _, s := range spans {
			if t >= s.from && t < s.to {
				n++
				break
			}
		}
	}
	return n
}

// KillCount returns the number of kill events, optionally per app (empty
// app counts all).
func (l *Log) KillCount(app string) int {
	var n int
	for _, e := range l.events {
		if e.Kind == EventKill && (app == "" || e.App == app) {
			n++
		}
	}
	return n
}

// WriteCSV exports the event log as CSV: at_ms,app,event,note.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ms,app,event,note"); err != nil {
		return err
	}
	for _, e := range l.events {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s\n",
			e.At.Milliseconds(), e.App, e.Kind, e.Note); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace-event JSON wire format Perfetto accepts.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"` // microseconds
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
}

// WriteChromeTrace exports begin/end duration events per process lifespan
// in the Chrome trace-event format that Perfetto loads.
func (l *Log) WriteChromeTrace(w io.Writer, horizon time.Duration) error {
	apps := l.Apps()
	pidOf := map[string]int{}
	for i, a := range apps {
		pidOf[a] = i + 1
	}
	var evs []chromeEvent
	for app, spans := range l.lifespans(horizon) {
		for _, s := range spans {
			evs = append(evs, chromeEvent{Name: app, Phase: "B", TS: s.from.Microseconds(), PID: pidOf[app], TID: 1})
			evs = append(evs, chromeEvent{Name: app, Phase: "E", TS: s.to.Microseconds(), PID: pidOf[app], TID: 1})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return json.NewEncoder(w).Encode(evs)
}

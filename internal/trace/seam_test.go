package trace

import (
	"reflect"
	"testing"
	"time"
)

// Seam tests for the shapes device snapshot/restore feeds through the
// log: rebuilt-from-events logs and degenerate kill sequences.

// TestFromEventsCopies: the rebuilt log owns its events — mutating the
// source slice afterwards must not reach the log (restore hands it a
// decoded buffer it may reuse).
func TestFromEventsCopies(t *testing.T) {
	src := []Event{
		{At: time.Second, App: "a", Kind: EventStart},
		{At: 2 * time.Second, App: "a", Kind: EventKill, Note: "limit"},
	}
	l := FromEvents(src)
	src[0].App = "clobbered"
	src[1].Kind = EventStart
	got := l.Events()
	if got[0].App != "a" || got[1].Kind != EventKill {
		t.Fatalf("log aliases the source slice: %+v", got)
	}
	if !reflect.DeepEqual(FromEvents(l.Events()).Events(), got) {
		t.Fatal("FromEvents round trip changed the events")
	}
}

// TestBackToBackKills: kill events with no intervening start — the shape
// a corrupted or manually-assembled trace can carry — must not corrupt
// lifespan accounting or panic; only the started span is closed.
func TestBackToBackKills(t *testing.T) {
	l := New()
	l.Record(0, "app", EventStart, "")
	l.Record(2*time.Second, "app", EventKill, "limit")
	l.Record(3*time.Second, "app", EventKill, "limit") // dead already
	l.Record(4*time.Second, "orphan", EventKill, "")   // never started
	if got := l.KillCount("app"); got != 2 {
		t.Fatalf("KillCount(app) = %d, want 2 (raw events)", got)
	}
	// Lifespan reconstruction only honors the one real span.
	if got := l.AliveAt(time.Second, 10*time.Second); got != 1 {
		t.Fatalf("AliveAt(1s) = %d, want 1", got)
	}
	for _, at := range []time.Duration{2500 * time.Millisecond, 5 * time.Second} {
		if got := l.AliveAt(at, 10*time.Second); got != 0 {
			t.Fatalf("AliveAt(%v) = %d, want 0", at, got)
		}
	}
	// Raw event tallies still list the orphan, but it accrues no alive
	// time — the kill closed nothing.
	for _, st := range l.Stats(10 * time.Second) {
		if st.App == "orphan" && (st.TotalAlive != 0 || st.Starts != 0) {
			t.Fatalf("never-started app accrued a lifespan: %+v", st)
		}
		if st.App == "app" && st.TotalAlive != 2*time.Second {
			t.Fatalf("app alive %v, want 2s", st.TotalAlive)
		}
	}
}

// TestZeroHorizonLifespans: a zero horizon yields no alive processes and
// no negative-duration spans.
func TestZeroHorizonLifespans(t *testing.T) {
	l := New()
	l.Record(time.Second, "app", EventStart, "")
	if got := l.AliveAt(0, 0); got != 0 {
		t.Fatalf("AliveAt with zero horizon = %d, want 0", got)
	}
	for _, st := range l.Stats(0) {
		if st.TotalAlive != 0 || st.MeanLifetime != 0 {
			t.Fatalf("zero horizon accrued alive time: %+v", st)
		}
	}
}

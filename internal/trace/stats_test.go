package trace

import (
	"strings"
	"testing"
	"time"
)

func TestStats(t *testing.T) {
	l := New()
	l.Record(0, "chrome", EventStart, "")
	l.Record(0, "chrome", EventForeground, "")
	l.Record(2*time.Minute, "chrome", EventKill, "")
	l.Record(3*time.Minute, "chrome", EventStart, "")
	l.Record(3*time.Minute, "chrome", EventForeground, "")
	l.Record(0, "mail", EventStart, "")
	l.Record(time.Minute, "mail", EventForeground, "")

	stats := l.Stats(5 * time.Minute)
	if len(stats) != 2 {
		t.Fatalf("%d apps", len(stats))
	}
	// chrome has more foregrounds, so it sorts first.
	c := stats[0]
	if c.App != "chrome" {
		t.Fatalf("first app %q", c.App)
	}
	if c.Starts != 2 || c.Kills != 1 || c.Foregrounds != 2 {
		t.Errorf("chrome stats %+v", c)
	}
	// Alive: [0,2m] + [3m,5m] = 4 minutes over 2 spans.
	if c.TotalAlive != 4*time.Minute {
		t.Errorf("chrome alive %v", c.TotalAlive)
	}
	if c.MeanLifetime != 2*time.Minute {
		t.Errorf("chrome mean life %v", c.MeanLifetime)
	}
	m := stats[1]
	if m.App != "mail" || m.TotalAlive != 5*time.Minute || m.Kills != 0 {
		t.Errorf("mail stats %+v", m)
	}
}

func TestFormatStats(t *testing.T) {
	l := New()
	l.Record(0, "gallery", EventStart, "")
	l.Record(0, "gallery", EventForeground, "")
	out := FormatStats(l.Stats(time.Minute))
	if !strings.Contains(out, "gallery") || !strings.Contains(out, "mean life") {
		t.Errorf("stats output missing content:\n%s", out)
	}
}

func TestStatsEmpty(t *testing.T) {
	if got := New().Stats(time.Minute); len(got) != 0 {
		t.Errorf("empty log produced %d stats", len(got))
	}
}

package trace

import (
	"strings"
	"testing"
	"time"
)

func TestStats(t *testing.T) {
	l := New()
	l.Record(0, "chrome", EventStart, "")
	l.Record(0, "chrome", EventForeground, "")
	l.Record(2*time.Minute, "chrome", EventKill, "")
	l.Record(3*time.Minute, "chrome", EventStart, "")
	l.Record(3*time.Minute, "chrome", EventForeground, "")
	l.Record(0, "mail", EventStart, "")
	l.Record(time.Minute, "mail", EventForeground, "")

	stats := l.Stats(5 * time.Minute)
	if len(stats) != 2 {
		t.Fatalf("%d apps", len(stats))
	}
	// chrome has more foregrounds, so it sorts first.
	c := stats[0]
	if c.App != "chrome" {
		t.Fatalf("first app %q", c.App)
	}
	if c.Starts != 2 || c.Kills != 1 || c.Foregrounds != 2 {
		t.Errorf("chrome stats %+v", c)
	}
	// Alive: [0,2m] + [3m,5m] = 4 minutes over 2 spans.
	if c.TotalAlive != 4*time.Minute {
		t.Errorf("chrome alive %v", c.TotalAlive)
	}
	if c.MeanLifetime != 2*time.Minute {
		t.Errorf("chrome mean life %v", c.MeanLifetime)
	}
	m := stats[1]
	if m.App != "mail" || m.TotalAlive != 5*time.Minute || m.Kills != 0 {
		t.Errorf("mail stats %+v", m)
	}
}

func TestFormatStats(t *testing.T) {
	l := New()
	l.Record(0, "gallery", EventStart, "")
	l.Record(0, "gallery", EventForeground, "")
	out := FormatStats(l.Stats(time.Minute))
	if !strings.Contains(out, "gallery") || !strings.Contains(out, "mean life") {
		t.Errorf("stats output missing content:\n%s", out)
	}
}

func TestStatsEmpty(t *testing.T) {
	if got := New().Stats(time.Minute); len(got) != 0 {
		t.Errorf("empty log produced %d stats", len(got))
	}
}

// TestStatsEdgeCases pins the horizon-clipping semantics and the sorted
// output order (descending foregrounds, then app name) on the awkward
// inputs: a zero-duration horizon, an app killed before it ever reached
// the foreground, re-foregrounding after a kill, and events at or past
// the horizon.
func TestStatsEdgeCases(t *testing.T) {
	type ev struct {
		at   time.Duration
		app  string
		kind EventKind
	}
	cases := []struct {
		name    string
		events  []ev
		horizon time.Duration
		want    []AppStats
	}{
		{
			name: "zero horizon",
			events: []ev{
				{0, "chrome", EventStart},
				{0, "chrome", EventForeground},
				{time.Minute, "mail", EventStart},
			},
			horizon: 0,
			// Event tallies survive; alive time clips to nothing and must
			// never go negative.
			want: []AppStats{
				{App: "chrome", Starts: 1, Foregrounds: 1},
				{App: "mail", Starts: 1},
			},
		},
		{
			name: "killed before first foreground",
			events: []ev{
				{0, "prefetched", EventStart},
				{2 * time.Minute, "prefetched", EventKill},
				{0, "active", EventStart},
				{0, "active", EventForeground},
			},
			horizon: 4 * time.Minute,
			// Zero foregrounds sorts last even though it died first.
			want: []AppStats{
				{App: "active", Starts: 1, Foregrounds: 1,
					TotalAlive: 4 * time.Minute, MeanLifetime: 4 * time.Minute},
				{App: "prefetched", Starts: 1, Kills: 1,
					TotalAlive: 2 * time.Minute, MeanLifetime: 2 * time.Minute},
			},
		},
		{
			name: "re-foreground after kill",
			events: []ev{
				{0, "chrome", EventStart},
				{0, "chrome", EventForeground},
				{time.Minute, "chrome", EventKill},
				{3 * time.Minute, "chrome", EventStart},
				{3 * time.Minute, "chrome", EventForeground},
			},
			horizon: 5 * time.Minute,
			// Two spans: [0,1m] and the reopened [3m,5m].
			want: []AppStats{
				{App: "chrome", Starts: 2, Kills: 1, Foregrounds: 2,
					TotalAlive: 3 * time.Minute, MeanLifetime: 90 * time.Second},
			},
		},
		{
			name: "events at and past the horizon",
			events: []ev{
				{0, "early", EventStart},
				{0, "early", EventForeground},
				{6 * time.Minute, "early", EventKill}, // kill past horizon: clip
				{5 * time.Minute, "late", EventStart}, // starts at horizon: no span
				{7 * time.Minute, "later", EventStart},
				{7 * time.Minute, "later", EventForeground},
			},
			horizon: 5 * time.Minute,
			// Ties on foregrounds break by app name.
			want: []AppStats{
				{App: "early", Starts: 1, Kills: 1, Foregrounds: 1,
					TotalAlive: 5 * time.Minute, MeanLifetime: 5 * time.Minute},
				{App: "later", Starts: 1, Foregrounds: 1},
				{App: "late", Starts: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := New()
			for _, e := range tc.events {
				l.Record(e.at, e.app, e.kind, "")
			}
			got := l.Stats(tc.horizon)
			if len(got) != len(tc.want) {
				t.Fatalf("%d apps, want %d: %+v", len(got), len(tc.want), got)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("stats[%d]:\n  got  %+v\n  want %+v", i, got[i], tc.want[i])
				}
			}
			for _, s := range got {
				if s.TotalAlive < 0 || s.MeanLifetime < 0 {
					t.Errorf("%s: negative duration %+v", s.App, s)
				}
			}
		})
	}
}

package wire

import (
	"encoding/binary"
	"fmt"
)

// Splitter reassembles frames from a TCP byte stream: feed it whatever a
// socket read returned and pull complete frames out, carry-buffered across
// chunk boundaries the way the h264 progressive decoder carries partial
// NAL units. The split is a pure function of the byte sequence — feeding
// the same bytes in any fragmentation yields the same frames and the same
// terminal error (pinned by FuzzFrameSplit).
//
// Memory is bounded: the head frame's declared length is validated against
// MaxFrame before it is waited for, and errors are sticky, so a connection
// that alternates Feed and Next never buffers more than MaxFrame+4 bytes
// of undecoded input plus one fed chunk.
//
// Not safe for concurrent use; one Splitter belongs to one connection's
// read loop.
type Splitter struct {
	carry []byte
	off   int // consumed prefix of carry, reclaimed on Feed
	err   error

	peak int
}

// Feed appends one chunk of stream bytes. It returns the sticky error, if
// any: once the stream is unparseable (oversized or malformed head frame)
// all further bytes are refused — a framing error is not recoverable,
// because frame boundaries are gone.
func (s *Splitter) Feed(p []byte) error {
	if s.err != nil {
		return s.err
	}
	if s.off > 0 { // reclaim consumed prefix before growing
		n := copy(s.carry, s.carry[s.off:])
		s.carry = s.carry[:n]
		s.off = 0
	}
	s.carry = append(s.carry, p...)
	if len(s.carry) > s.peak {
		s.peak = len(s.carry)
	}
	return s.checkHead()
}

// Next decodes the next complete frame into f, reusing f's buffers. It
// returns (false, nil) when the carry holds no complete frame yet, and the
// sticky error once the stream is unparseable. Frames decoded before the
// stream went bad were already delivered — bad bytes poison only the
// remainder.
func (s *Splitter) Next(f *Frame) (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	if err := s.checkHead(); err != nil {
		return false, err
	}
	rest := s.carry[s.off:]
	if len(rest) < lenSize {
		return false, nil
	}
	body := int(binary.LittleEndian.Uint32(rest))
	if len(rest) < lenSize+body {
		return false, nil
	}
	if err := DecodeBody(f, rest[lenSize:lenSize+body]); err != nil {
		s.err = err
		return false, err
	}
	s.off += lenSize + body
	return true, nil
}

// checkHead validates the head frame's declared length as soon as the
// prefix is readable, so an oversized frame fails before any buffering —
// never after MaxFrame bytes of it accumulated.
func (s *Splitter) checkHead() error {
	rest := s.carry[s.off:]
	if len(rest) < lenSize {
		return nil
	}
	body := binary.LittleEndian.Uint32(rest)
	if body == 0 {
		s.err = fmt.Errorf("%w: zero-length frame", ErrTruncated)
	} else if body > MaxFrame {
		s.err = fmt.Errorf("%w: declared body %d", ErrFrameTooBig, body)
	}
	return s.err
}

// Pending returns the number of buffered, not yet consumed bytes — a
// non-empty value at connection end means the peer hung up mid-frame.
func (s *Splitter) Pending() int { return len(s.carry) - s.off }

// PeakCarry reports the high-water carry size: bounded by the largest
// frame plus the largest fed chunk, independent of stream length.
func (s *Splitter) PeakCarry() int { return s.peak }

// Reset clears the carry and the sticky error so a pooled Splitter can be
// reused for a fresh connection.
func (s *Splitter) Reset() {
	s.carry = s.carry[:0]
	s.off = 0
	s.err = nil
	s.peak = 0
}

package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// goldenFrames is one frame of every type with fixed payloads. The hex
// encodings and the battery sha256 below pin the wire layout: any change
// to field order, widths, endianness, the magic, or the length prefix
// fails this test loudly instead of silently breaking deployed peers. If
// the format changes deliberately, bump Version and re-pin.
var goldenFrames = []struct {
	name  string
	frame Frame
	hex   string
}{
	{
		"hello",
		Frame{Type: Hello, Version: Version, Session: 0x0123456789abcdef, Dim: 24},
		"1100000001414645310100efcdab89674523011800",
	},
	{
		"observe",
		Frame{Type: Observe, Seq: 2, At: 1000000000, Vals: []float64{1.5, -0.25}},
		"2300000002020000000000000000ca9a3b000000000200000000000000f83f000000000000d0bf",
	},
	{
		"observe_chunk",
		Frame{Type: ObserveChunk, Seq: 3, At: 2000000000, Last: true, Vals: []float64{0.5}},
		"1c0000000303000000000000000094357700000000010100000000000000e03f",
	},
	{
		"snapshot_req",
		Frame{Type: SnapshotReq, Seq: 4},
		"09000000040400000000000000",
	},
	{
		"ack",
		Frame{Type: Ack, Seq: 5, Data: []byte{0xab, 0xcd}},
		"0f00000005050000000000000002000000abcd",
	},
	{
		"err",
		Frame{Type: Err, Seq: 6, Code: CodeBackpressure, Msg: "full"},
		"110000000606000000000000000100040066756c6c",
	},
	{
		"observe_batch",
		Frame{Type: ObserveBatch, Batch: []BatchObs{
			{Seq: 7, At: 1000000000, Vals: []float64{1.5}},
			{Seq: 8, At: 2000000000, Vals: []float64{-0.25, 0.5}},
		}},
		"3f000000070200070000000000000000ca9a3b000000000100000000000000f83f080000000000000000943577000000000200000000000000d0bf000000000000e03f",
	},
	{
		"ack_batch",
		Frame{Type: AckBatch, Seq: 7, Count: 2, Bitmap: []byte{0b10}},
		"0c000000080700000000000000020002",
	},
}

// goldenBatterySHA256 is the sha256 of the concatenated encodings above.
// Re-pinned when PR 10 added the ObserveBatch/AckBatch frame types (pure
// addition: every pre-existing frame's hex above is unchanged).
const goldenBatterySHA256 = "3c6c2fd5f645c5ec4f23af71118befad21b3b1e2cde70fbcb3945008c9ba7528"

func TestGoldenWireFormat(t *testing.T) {
	h := sha256.New()
	for _, g := range goldenFrames {
		buf, err := Append(nil, &g.frame)
		if err != nil {
			t.Fatalf("%s: encode: %v", g.name, err)
		}
		if got := hex.EncodeToString(buf); got != g.hex {
			t.Errorf("%s: wire bytes changed:\n got %s\nwant %s", g.name, got, g.hex)
		}
		h.Write(buf)
		// The pinned bytes must also decode back to the same frame.
		var f Frame
		if err := DecodeBody(&f, buf[lenSize:]); err != nil {
			t.Fatalf("%s: decode: %v", g.name, err)
		}
		if !frameEq(&g.frame, &f) {
			t.Errorf("%s: golden round trip mismatch: %+v vs %+v", g.name, g.frame, f)
		}
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != goldenBatterySHA256 {
		t.Errorf("wire battery sha256 changed:\n got %s\nwant %s", got, goldenBatterySHA256)
	}
}

// TestGoldenHelloOnTheWire spells out the Hello layout byte by byte, the
// human-readable twin of the hex pin: a reviewer can diff this against the
// package comment's layout table.
func TestGoldenHelloOnTheWire(t *testing.T) {
	buf, err := Append(nil, &Frame{Type: Hello, Version: 1, Session: 2, Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		17, 0, 0, 0, // length = 1 type byte + 16 payload
		0x01,               // HELLO
		'A', 'F', 'E', '1', // magic
		1, 0, // version u16 LE
		2, 0, 0, 0, 0, 0, 0, 0, // session u64 LE
		3, 0, // dim u16 LE
	}
	if string(buf) != string(want) {
		t.Fatalf("hello layout changed:\n got % x\nwant % x", buf, want)
	}
}

// TestGoldenAckBatchOnTheWire spells out the AckBatch layout byte by byte:
// base seq, item count, then one LSB-first bitmap bit per item.
func TestGoldenAckBatchOnTheWire(t *testing.T) {
	buf, err := Append(nil, &Frame{Type: AckBatch, Seq: 9, Count: 10, Bitmap: []byte{0b1000_0001, 0b10}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		13, 0, 0, 0, // length = 1 type byte + 12 payload
		0x08,                   // ACK_BATCH
		9, 0, 0, 0, 0, 0, 0, 0, // base seq u64 LE
		10, 0, // count u16 LE
		0b1000_0001, 0b10, // items 0, 7, 9 NACKed
	}
	if string(buf) != string(want) {
		t.Fatalf("ack batch layout changed:\n got % x\nwant % x", buf, want)
	}
	for i, nacked := range []bool{true, false, false, false, false, false, false, true, false, true} {
		if Nacked(want[15:], i) != nacked {
			t.Fatalf("bitmap bit %d: got %v, want %v", i, Nacked(want[15:], i), nacked)
		}
	}
}

// Package wire defines the fleet ingest protocol: the length-prefixed
// binary frames a device client speaks to the TCP ingest server
// (internal/server). The format is deliberately dumb — fixed little-endian
// layouts, no varints, no compression — so that encode and decode are a
// handful of loads and stores, round-trip bit-exactly, and can be pinned
// by golden byte tests.
//
// One frame on the wire is
//
//	u32 length | u8 type | payload
//
// where length counts the type byte plus the payload and is bounded by
// MaxFrame, so a receiver never buffers more than MaxFrame+4 bytes (plus
// one read chunk) per connection no matter what arrives. The payload
// layout per type (all integers little-endian, floats as IEEE-754 bits):
//
//	Hello        magic u32 | version u16 | session u64 | dim u16
//	Observe      seq u64 | at i64 | count u16 | count × f64
//	ObserveChunk seq u64 | at i64 | flags u8 | count u16 | count × f64
//	SnapshotReq  seq u64
//	Ack          seq u64 | dlen u32 | dlen bytes
//	Err          seq u64 | code u16 | mlen u16 | mlen bytes
//	ObserveBatch count u16 | count × (seq u64 | at i64 | vcount u16 | vcount × f64)
//	AckBatch     base u64 | count u16 | ceil(count/8) bitmap bytes
//
// Hello opens a connection and authenticates exactly one session id; every
// later frame belongs to that session, so observations carry only a
// sequence number, a virtual timestamp, and the feature values.
// ObserveChunk streams one observation in fragments (the shape a streaming
// featurizer emits): fragments with the same seq concatenate in arrival
// order and FlagLast marks the final one. Ack confirms the frame with the
// matching seq (Data carries the reply payload for SnapshotReq); Err
// rejects it with a Code — CodeBackpressure is the protocol image of
// fleet.ErrBackpressure, the server-side NACK for a full shard queue.
//
// ObserveBatch amortizes the per-frame cost across many observations: one
// frame carries count complete observations, each with its own seq, and is
// answered by one AckBatch whose base seq names the batch's first item and
// whose bitmap carries one bit per item (LSB-first within each byte; bit i
// set means item i was NACKed with backpressure and should be retried).
// Per-item bits keep one full shard from failing a whole connection's
// frame; any non-retryable condition still answers with a plain Err.
//
// Framing for partial reads lives in Splitter: feed arbitrary byte chunks
// and complete frames come out, carry-buffered across chunk boundaries
// exactly like the h264 progressive decoder carries partial NAL units.
// Chunked decode is bit-identical to whole-buffer decode (fuzz-pinned by
// FuzzFrameSplit).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Protocol constants.
const (
	// Magic opens every Hello payload; on the wire it reads "AFE1".
	Magic uint32 = 0x31454641
	// Version is the protocol version spoken by this package. A Hello
	// carrying any other version fails CheckHello with *VersionError.
	Version uint16 = 1
	// MaxFrame bounds the frame body (type byte + payload). Frames
	// declaring more fail to encode and poison the Splitter on decode, so
	// per-connection buffering is bounded regardless of peer behavior.
	MaxFrame = 1 << 20
	// lenSize is the width of the length prefix.
	lenSize = 4
)

// Type identifies a frame.
type Type uint8

// Frame types.
const (
	Hello        Type = 0x01 // client → server: open + authenticate a session
	Observe      Type = 0x02 // client → server: one whole observation
	ObserveChunk Type = 0x03 // client → server: one observation fragment
	SnapshotReq  Type = 0x04 // client → server: request the session's snapshot
	Ack          Type = 0x05 // server → client: frame seq accepted (+ reply data)
	Err          Type = 0x06 // server → client: frame seq rejected with a code
	ObserveBatch Type = 0x07 // client → server: many whole observations in one frame
	AckBatch     Type = 0x08 // server → client: per-item verdicts for one ObserveBatch
)

// String names the type for errors and logs.
func (t Type) String() string {
	switch t {
	case Hello:
		return "HELLO"
	case Observe:
		return "OBSERVE"
	case ObserveChunk:
		return "OBSERVE_CHUNK"
	case SnapshotReq:
		return "SNAPSHOT_REQ"
	case Ack:
		return "ACK"
	case Err:
		return "ERR"
	case ObserveBatch:
		return "OBSERVE_BATCH"
	case AckBatch:
		return "ACK_BATCH"
	}
	return fmt.Sprintf("Type(0x%02x)", uint8(t))
}

// Code classifies an Err frame.
type Code uint16

// Err codes.
const (
	CodeBackpressure   Code = 1 // shard ingress queue full: retry later (fleet.ErrBackpressure)
	CodeUnknownSession Code = 2 // session not connected (never added, removed, or parked)
	CodeBadFrame       Code = 3 // malformed or out-of-protocol frame
	CodeVersion        Code = 4 // Hello version mismatch
	CodeDim            Code = 5 // observation dimensionality mismatch
	CodeClosed         Code = 6 // fleet shut down
	CodeInternal       Code = 7 // server-side failure
)

// FlagLast marks the final fragment of a chunked observation.
const FlagLast uint8 = 1 << 0

// Derived payload bounds, all implied by MaxFrame.
const (
	// MaxVals caps the float64 count of one Observe/ObserveChunk frame:
	// the count field is a u16, which already sits inside the MaxFrame
	// budget (19 + 8×65535 < MaxFrame).
	MaxVals = 1<<16 - 1
	// MaxData caps an Ack's reply payload.
	MaxData = MaxFrame - 1 - ackHeadLen
	// MaxMsg caps an Err's message. Much smaller than the frame bound:
	// messages are diagnostics, not transport.
	MaxMsg = 512

	// MaxBatch caps the item count of one ObserveBatch/AckBatch: the
	// count field is a u16. MaxFrame is the binding bound in practice
	// (each item costs at least batchItemHead bytes).
	MaxBatch = 1<<16 - 1

	helloLen      = 16 // magic u32 + version u16 + session u64 + dim u16
	observeHead   = 18 // seq u64 + at i64 + count u16
	chunkHeadLen  = 19 // seq u64 + at i64 + flags u8 + count u16
	snapshotLen   = 8  // seq u64
	ackHeadLen    = 12 // seq u64 + dlen u32
	errHeadLen    = 12 // seq u64 + code u16 + mlen u16
	batchHeadLen  = 2  // count u16
	batchItemHead = 18 // seq u64 + at i64 + vcount u16
	ackBatchHead  = 10 // base seq u64 + count u16
)

// Sentinel decode errors.
var (
	// ErrFrameTooBig reports a length prefix exceeding MaxFrame (or an
	// encode attempt that would).
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	// ErrBadMagic reports a Hello whose magic is not Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrTruncated reports a frame body shorter than its layout requires.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTrailing reports bytes after a frame's fixed layout — the frame
	// lied about its length. Strict rejection keeps one byte stream one
	// unambiguous frame sequence.
	ErrTrailing = errors.New("wire: trailing bytes in frame")
	// ErrBadType reports an unknown frame type byte.
	ErrBadType = errors.New("wire: unknown frame type")
	// ErrBadFlags reports reserved ObserveChunk flag bits set — rejected
	// so every accepted byte stream has exactly one decoding (found by
	// FuzzWireDecode: lossy flag decode broke decode∘encode identity).
	ErrBadFlags = errors.New("wire: unknown chunk flags")
	// ErrEmptyBatch reports an ObserveBatch or AckBatch with zero items.
	// A batch frame that carries nothing has no meaning, so it is
	// rejected structurally rather than special-cased by every handler.
	ErrEmptyBatch = errors.New("wire: empty batch")
	// ErrBadBitmap reports an AckBatch bitmap whose length does not match
	// ceil(count/8) or whose padding bits past count are set — rejected
	// for the same one-stream-one-decoding reason as ErrBadFlags.
	ErrBadBitmap = errors.New("wire: bad ack bitmap")
)

// VersionError reports a Hello whose protocol version does not match
// Version, mirroring the typed snapshot-version errors of internal/nn and
// internal/fleet: peers from the future fail loudly, before any state.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version %d, want %d", e.Got, e.Want)
}

// Frame is one decoded protocol frame. A single struct covers every type;
// the per-type layouts above say which fields are live. Decode reuses the
// Vals and Data backing arrays, so a Frame can be recycled across a whole
// connection without steady-state allocation.
type Frame struct {
	Type Type

	// Hello fields.
	Version uint16 // protocol version (CheckHello enforces == Version)
	Session uint64 // session id this connection authenticates as
	Dim     uint16 // feature dimensionality the client will send

	// Sequencing (every type except Hello).
	Seq uint64

	// Observe / ObserveChunk fields.
	At   int64     // virtual timestamp, nanoseconds
	Last bool      // ObserveChunk: final fragment (FlagLast)
	Vals []float64 // feature values

	// Ack field.
	Data []byte // reply payload (snapshot bytes); empty for plain acks

	// Err fields.
	Code Code
	Msg  string

	// ObserveBatch field. Decode sub-slices every item's Vals out of one
	// flat backing (f.Vals doubles as that backing), so a recycled Frame
	// decodes batches without per-item allocation.
	Batch []BatchObs

	// AckBatch fields: Seq is the base (first item's) seq, Count the
	// number of items covered, and Bitmap holds ceil(Count/8) bytes with
	// bit i (LSB-first) set when item i was NACKed and should be retried.
	Count  int
	Bitmap []byte
}

// BatchObs is one observation inside an ObserveBatch frame.
type BatchObs struct {
	Seq  uint64
	At   int64
	Vals []float64
}

// BitmapLen is the AckBatch bitmap size covering count items.
func BitmapLen(count int) int { return (count + 7) / 8 }

// SetNack marks item i NACKed in an AckBatch bitmap.
func SetNack(bitmap []byte, i int) { bitmap[i/8] |= 1 << (i % 8) }

// Nacked reports whether item i is NACKed in an AckBatch bitmap.
func Nacked(bitmap []byte, i int) bool { return bitmap[i/8]&(1<<(i%8)) != 0 }

// Append encodes f and appends the complete frame (length prefix included)
// to dst, returning the extended slice. It validates payload bounds; an
// oversized frame returns ErrFrameTooBig (wrapped) and leaves dst
// untouched.
func Append(dst []byte, f *Frame) ([]byte, error) {
	body, err := f.bodyLen()
	if err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case Hello:
		dst = binary.LittleEndian.AppendUint32(dst, Magic)
		dst = binary.LittleEndian.AppendUint16(dst, f.Version)
		dst = binary.LittleEndian.AppendUint64(dst, f.Session)
		dst = binary.LittleEndian.AppendUint16(dst, f.Dim)
	case Observe:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.At))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Vals)))
		dst = appendVals(dst, f.Vals)
	case ObserveChunk:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.At))
		var flags uint8
		if f.Last {
			flags |= FlagLast
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Vals)))
		dst = appendVals(dst, f.Vals)
	case SnapshotReq:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	case Ack:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Data)))
		dst = append(dst, f.Data...)
	case Err:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Code))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Msg)))
		dst = append(dst, f.Msg...)
	case ObserveBatch:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Batch)))
		for i := range f.Batch {
			it := &f.Batch[i]
			dst = binary.LittleEndian.AppendUint64(dst, it.Seq)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(it.At))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(it.Vals)))
			dst = appendVals(dst, it.Vals)
		}
	case AckBatch:
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(f.Count))
		dst = append(dst, f.Bitmap...)
	}
	return dst, nil
}

// bodyLen computes and validates the encoded body length of f.
func (f *Frame) bodyLen() (int, error) {
	switch f.Type {
	case Hello:
		return 1 + helloLen, nil
	case Observe:
		if len(f.Vals) > MaxVals {
			return 0, fmt.Errorf("%w: %d values", ErrFrameTooBig, len(f.Vals))
		}
		return 1 + observeHead + 8*len(f.Vals), nil
	case ObserveChunk:
		if len(f.Vals) > MaxVals {
			return 0, fmt.Errorf("%w: %d values", ErrFrameTooBig, len(f.Vals))
		}
		return 1 + chunkHeadLen + 8*len(f.Vals), nil
	case SnapshotReq:
		return 1 + snapshotLen, nil
	case Ack:
		if len(f.Data) > MaxData {
			return 0, fmt.Errorf("%w: %d data bytes", ErrFrameTooBig, len(f.Data))
		}
		return 1 + ackHeadLen + len(f.Data), nil
	case Err:
		if len(f.Msg) > MaxMsg {
			return 0, fmt.Errorf("%w: %d message bytes", ErrFrameTooBig, len(f.Msg))
		}
		return 1 + errHeadLen + len(f.Msg), nil
	case ObserveBatch:
		if len(f.Batch) == 0 {
			return 0, fmt.Errorf("%w: OBSERVE_BATCH", ErrEmptyBatch)
		}
		if len(f.Batch) > MaxBatch {
			return 0, fmt.Errorf("%w: %d batch items", ErrFrameTooBig, len(f.Batch))
		}
		n := 1 + batchHeadLen
		for i := range f.Batch {
			if len(f.Batch[i].Vals) > MaxVals {
				return 0, fmt.Errorf("%w: %d values in batch item %d", ErrFrameTooBig, len(f.Batch[i].Vals), i)
			}
			n += batchItemHead + 8*len(f.Batch[i].Vals)
		}
		if n > MaxFrame {
			return 0, fmt.Errorf("%w: %d body bytes", ErrFrameTooBig, n)
		}
		return n, nil
	case AckBatch:
		if f.Count == 0 {
			return 0, fmt.Errorf("%w: ACK_BATCH", ErrEmptyBatch)
		}
		if f.Count > MaxBatch {
			return 0, fmt.Errorf("%w: %d batch items", ErrFrameTooBig, f.Count)
		}
		if len(f.Bitmap) != BitmapLen(f.Count) {
			return 0, fmt.Errorf("%w: %d bitmap bytes for %d items, want %d",
				ErrBadBitmap, len(f.Bitmap), f.Count, BitmapLen(f.Count))
		}
		if pad := f.Count % 8; pad != 0 && f.Bitmap[len(f.Bitmap)-1]>>pad != 0 {
			return 0, fmt.Errorf("%w: padding bits set past item %d", ErrBadBitmap, f.Count)
		}
		return 1 + ackBatchHead + len(f.Bitmap), nil
	}
	return 0, fmt.Errorf("%w: 0x%02x", ErrBadType, uint8(f.Type))
}

func appendVals(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeBody parses one frame body (the bytes the length prefix counts:
// type byte plus payload) into f, reusing f's Vals and Data capacity.
// Layouts are strict: short bodies fail ErrTruncated, extra bytes fail
// ErrTrailing, a Hello with the wrong magic fails ErrBadMagic, and value
// counts are checked against the body before anything is allocated, so a
// hostile body can never cause an allocation past the MaxFrame bound.
func DecodeBody(f *Frame, body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("%w: empty body", ErrTruncated)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: %d body bytes", ErrFrameTooBig, len(body))
	}
	f.Type = Type(body[0])
	p := body[1:]
	switch f.Type {
	case Hello:
		if len(p) != helloLen {
			return lenErr(f.Type, len(p), helloLen)
		}
		if got := binary.LittleEndian.Uint32(p); got != Magic {
			return fmt.Errorf("%w: 0x%08x", ErrBadMagic, got)
		}
		f.Version = binary.LittleEndian.Uint16(p[4:])
		f.Session = binary.LittleEndian.Uint64(p[6:])
		f.Dim = binary.LittleEndian.Uint16(p[14:])
	case Observe:
		if len(p) < observeHead {
			return lenErr(f.Type, len(p), observeHead)
		}
		f.Seq = binary.LittleEndian.Uint64(p)
		f.At = int64(binary.LittleEndian.Uint64(p[8:]))
		count := int(binary.LittleEndian.Uint16(p[16:]))
		if err := decodeVals(f, p[observeHead:], count); err != nil {
			return err
		}
	case ObserveChunk:
		if len(p) < chunkHeadLen {
			return lenErr(f.Type, len(p), chunkHeadLen)
		}
		f.Seq = binary.LittleEndian.Uint64(p)
		f.At = int64(binary.LittleEndian.Uint64(p[8:]))
		if p[16]&^FlagLast != 0 {
			return fmt.Errorf("%w: 0x%02x", ErrBadFlags, p[16])
		}
		f.Last = p[16]&FlagLast != 0
		count := int(binary.LittleEndian.Uint16(p[17:]))
		if err := decodeVals(f, p[chunkHeadLen:], count); err != nil {
			return err
		}
	case SnapshotReq:
		if len(p) != snapshotLen {
			return lenErr(f.Type, len(p), snapshotLen)
		}
		f.Seq = binary.LittleEndian.Uint64(p)
	case Ack:
		if len(p) < ackHeadLen {
			return lenErr(f.Type, len(p), ackHeadLen)
		}
		f.Seq = binary.LittleEndian.Uint64(p)
		dlen := int(binary.LittleEndian.Uint32(p[8:]))
		if len(p)-ackHeadLen != dlen {
			return fmt.Errorf("%w: ACK declares %d data bytes, body carries %d",
				ErrTrailing, dlen, len(p)-ackHeadLen)
		}
		f.Data = append(f.Data[:0], p[ackHeadLen:]...)
	case Err:
		if len(p) < errHeadLen {
			return lenErr(f.Type, len(p), errHeadLen)
		}
		f.Seq = binary.LittleEndian.Uint64(p)
		f.Code = Code(binary.LittleEndian.Uint16(p[8:]))
		mlen := int(binary.LittleEndian.Uint16(p[10:]))
		if mlen > MaxMsg {
			return fmt.Errorf("%w: %d message bytes", ErrFrameTooBig, mlen)
		}
		if len(p)-errHeadLen != mlen {
			return fmt.Errorf("%w: ERR declares %d message bytes, body carries %d",
				ErrTrailing, mlen, len(p)-errHeadLen)
		}
		f.Msg = string(p[errHeadLen:])
	case ObserveBatch:
		return decodeBatch(f, p)
	case AckBatch:
		if len(p) < ackBatchHead {
			return lenErr(f.Type, len(p), ackBatchHead)
		}
		f.Seq = binary.LittleEndian.Uint64(p)
		n := int(binary.LittleEndian.Uint16(p[8:]))
		if n == 0 {
			return fmt.Errorf("%w: ACK_BATCH", ErrEmptyBatch)
		}
		bl := BitmapLen(n)
		if len(p)-ackBatchHead != bl {
			return fmt.Errorf("%w: ACK_BATCH declares %d items (%d bitmap bytes), body carries %d",
				ErrTrailing, n, bl, len(p)-ackBatchHead)
		}
		bm := p[ackBatchHead:]
		if pad := n % 8; pad != 0 && bm[bl-1]>>pad != 0 {
			return fmt.Errorf("%w: padding bits set past item %d", ErrBadBitmap, n)
		}
		f.Count = n
		f.Bitmap = append(f.Bitmap[:0], bm...)
	default:
		return fmt.Errorf("%w: 0x%02x", ErrBadType, uint8(f.Type))
	}
	return nil
}

// decodeBatch parses an ObserveBatch payload in two passes: the first
// validates every item's layout against the body and sums the value counts,
// the second fills f.Batch with Vals views sub-sliced from one flat backing
// (f.Vals). Growing the backing between items would invalidate earlier
// views, hence validate-then-fill.
func decodeBatch(f *Frame, p []byte) error {
	if len(p) < batchHeadLen {
		return lenErr(f.Type, len(p), batchHeadLen)
	}
	n := int(binary.LittleEndian.Uint16(p))
	if n == 0 {
		return fmt.Errorf("%w: OBSERVE_BATCH", ErrEmptyBatch)
	}
	items := p[batchHeadLen:]
	off, total := 0, 0
	for i := 0; i < n; i++ {
		if len(items)-off < batchItemHead {
			return fmt.Errorf("%w: OBSERVE_BATCH item %d of %d at byte %d", ErrTruncated, i, n, off)
		}
		vc := int(binary.LittleEndian.Uint16(items[off+16:]))
		if len(items)-off-batchItemHead < 8*vc {
			return fmt.Errorf("%w: OBSERVE_BATCH item %d declares %d values", ErrTruncated, i, vc)
		}
		off += batchItemHead + 8*vc
		total += vc
	}
	if off != len(items) {
		return fmt.Errorf("%w: OBSERVE_BATCH declares %d items in %d bytes, body carries %d",
			ErrTrailing, n, off, len(items))
	}
	if cap(f.Vals) < total {
		f.Vals = make([]float64, total)
	}
	f.Vals = f.Vals[:total]
	if cap(f.Batch) < n {
		f.Batch = make([]BatchObs, n)
	}
	f.Batch = f.Batch[:n]
	off, total = 0, 0
	for i := 0; i < n; i++ {
		it := &f.Batch[i]
		it.Seq = binary.LittleEndian.Uint64(items[off:])
		it.At = int64(binary.LittleEndian.Uint64(items[off+8:]))
		vc := int(binary.LittleEndian.Uint16(items[off+16:]))
		off += batchItemHead
		it.Vals = f.Vals[total : total+vc : total+vc]
		for k := range it.Vals {
			it.Vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(items[off+8*k:]))
		}
		off += 8 * vc
		total += vc
	}
	return nil
}

// decodeVals validates count against the remaining payload and fills
// f.Vals, reusing its capacity.
func decodeVals(f *Frame, p []byte, count int) error {
	if count > MaxVals {
		return fmt.Errorf("%w: %d values", ErrFrameTooBig, count)
	}
	if len(p) != 8*count {
		return fmt.Errorf("%w: %s declares %d values, body carries %d bytes",
			ErrTrailing, f.Type, count, len(p))
	}
	if cap(f.Vals) < count {
		f.Vals = make([]float64, count)
	}
	f.Vals = f.Vals[:count]
	for i := range f.Vals {
		f.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return nil
}

func lenErr(t Type, got, want int) error {
	if got < want {
		return fmt.Errorf("%w: %s payload %d bytes, want %d", ErrTruncated, t, got, want)
	}
	return fmt.Errorf("%w: %s payload %d bytes, want %d", ErrTrailing, t, got, want)
}

// CheckHello validates a decoded Hello frame's protocol version: any
// mismatch is a typed *VersionError so peers from a different protocol
// generation fail loudly and diagnosably. (The magic is already enforced
// structurally by DecodeBody.)
func CheckHello(f *Frame) error {
	if f.Type != Hello {
		return fmt.Errorf("wire: first frame %s, want HELLO", f.Type)
	}
	if f.Version != Version {
		return &VersionError{Got: f.Version, Want: Version}
	}
	return nil
}

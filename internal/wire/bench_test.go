package wire

import "testing"

// benchObserve is the hot frame: one 24-dim observation, the fleet's
// default feature width.
func benchObserve() Frame {
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = float64(i) * 0.125
	}
	return Frame{Type: Observe, Seq: 42, At: 1_000_000, Vals: vals}
}

func BenchmarkEncodeObserve(b *testing.B) {
	f := benchObserve()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Append(buf[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecodeObserve(b *testing.B) {
	f := benchObserve()
	buf, err := Append(nil, &f)
	if err != nil {
		b.Fatal(err)
	}
	var out Frame
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := DecodeBody(&out, buf[lenSize:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitObserve measures the full framing path: feed one encoded
// observation and pull it back out, steady state (no allocation).
func BenchmarkSplitObserve(b *testing.B) {
	f := benchObserve()
	buf, err := Append(nil, &f)
	if err != nil {
		b.Fatal(err)
	}
	var sp Splitter
	var out Frame
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := sp.Feed(buf); err != nil {
			b.Fatal(err)
		}
		if ok, err := sp.Next(&out); !ok || err != nil {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

package wire

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// sampleFrames returns one representative frame of every type, with
// payloads exercising sign, NaN bit patterns, and non-trivial data.
func sampleFrames() []Frame {
	return []Frame{
		{Type: Hello, Version: Version, Session: 0x0123456789abcdef, Dim: 24},
		{Type: Observe, Seq: 7, At: -1500000000, Vals: []float64{0, 1.5, -2.25, math.Inf(1), math.Float64frombits(0x7ff8000000000001)}},
		{Type: ObserveChunk, Seq: 8, At: 1 << 40, Last: true, Vals: []float64{3.14159, -0.0}},
		{Type: ObserveChunk, Seq: 8, At: 1 << 40, Last: false, Vals: nil},
		{Type: SnapshotReq, Seq: 9},
		{Type: Ack, Seq: 10, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Type: Ack, Seq: 11},
		{Type: Err, Seq: 12, Code: CodeBackpressure, Msg: "shard queue full"},
		{Type: ObserveBatch, Batch: []BatchObs{
			{Seq: 13, At: 1, Vals: []float64{1.25, -2.5}},
			{Seq: 14, At: 2, Vals: nil},
			{Seq: 15, At: -3, Vals: []float64{math.Float64frombits(0x7ff8000000000001)}},
		}},
		{Type: AckBatch, Seq: 13, Count: 3, Bitmap: []byte{0b101}},
		{Type: AckBatch, Seq: 20, Count: 9, Bitmap: []byte{0x00, 0x01}},
	}
}

// cloneFrame deep-copies the slice-backed fields of a decoded frame, so the
// copy survives the source Frame being reused for the next decode. Batch
// items need their own Vals storage: decode sub-slices them out of one flat
// backing that the next decode overwrites.
func cloneFrame(fr *Frame) Frame {
	cp := *fr
	cp.Vals = append([]float64(nil), fr.Vals...)
	cp.Data = append([]byte(nil), fr.Data...)
	cp.Bitmap = append([]byte(nil), fr.Bitmap...)
	if fr.Batch != nil {
		cp.Batch = make([]BatchObs, len(fr.Batch))
		for i := range fr.Batch {
			cp.Batch[i] = fr.Batch[i]
			cp.Batch[i].Vals = append([]float64(nil), fr.Batch[i].Vals...)
		}
	}
	return cp
}

// frameEq compares the live fields for f's type, with NaNs equal by bits.
func frameEq(a, b *Frame) bool {
	if a.Type != b.Type {
		return false
	}
	valsEq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	switch a.Type {
	case Hello:
		return a.Version == b.Version && a.Session == b.Session && a.Dim == b.Dim
	case Observe:
		return a.Seq == b.Seq && a.At == b.At && valsEq(a.Vals, b.Vals)
	case ObserveChunk:
		return a.Seq == b.Seq && a.At == b.At && a.Last == b.Last && valsEq(a.Vals, b.Vals)
	case SnapshotReq:
		return a.Seq == b.Seq
	case Ack:
		return a.Seq == b.Seq && string(a.Data) == string(b.Data)
	case Err:
		return a.Seq == b.Seq && a.Code == b.Code && a.Msg == b.Msg
	case ObserveBatch:
		if len(a.Batch) != len(b.Batch) {
			return false
		}
		for i := range a.Batch {
			x, y := &a.Batch[i], &b.Batch[i]
			if x.Seq != y.Seq || x.At != y.At || !valsEq(x.Vals, y.Vals) {
				return false
			}
		}
		return true
	case AckBatch:
		return a.Seq == b.Seq && a.Count == b.Count && string(a.Bitmap) == string(b.Bitmap)
	}
	return false
}

func TestRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := Append(nil, &f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Type, err)
		}
		var got Frame
		if err := DecodeBody(&got, buf[lenSize:]); err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		if !frameEq(&f, &got) {
			t.Fatalf("%s: round trip mismatch:\n in %+v\nout %+v", f.Type, f, got)
		}
	}
}

// TestDecodeReuse round-trips twice through the same Frame: the second
// decode must not see residue from the first (slices resized, fields
// overwritten).
func TestDecodeReuse(t *testing.T) {
	big := Frame{Type: Observe, Seq: 1, At: 2, Vals: []float64{1, 2, 3, 4, 5, 6}}
	small := Frame{Type: ObserveChunk, Seq: 3, At: 4, Last: true, Vals: []float64{9}}
	bufBig, _ := Append(nil, &big)
	bufSmall, _ := Append(nil, &small)
	var f Frame
	if err := DecodeBody(&f, bufBig[lenSize:]); err != nil {
		t.Fatal(err)
	}
	if err := DecodeBody(&f, bufSmall[lenSize:]); err != nil {
		t.Fatal(err)
	}
	if !frameEq(&small, &f) {
		t.Fatalf("reused decode mismatch: %+v vs %+v", small, f)
	}
}

func TestEncodeBounds(t *testing.T) {
	cases := []Frame{
		{Type: Observe, Vals: make([]float64, MaxVals+1)},
		{Type: ObserveChunk, Vals: make([]float64, MaxVals+1)},
		{Type: Ack, Data: make([]byte, MaxData+1)},
		{Type: Err, Msg: strings.Repeat("x", MaxMsg+1)},
		{Type: ObserveBatch, Batch: make([]BatchObs, MaxBatch+1)},
		{Type: ObserveBatch, Batch: []BatchObs{{Vals: make([]float64, MaxVals+1)}}},
		// Items individually legal but collectively past MaxFrame.
		{Type: ObserveBatch, Batch: []BatchObs{
			{Vals: make([]float64, MaxVals)}, {Vals: make([]float64, MaxVals)}, {Vals: make([]float64, MaxVals)},
		}},
		{Type: AckBatch, Count: MaxBatch + 1, Bitmap: make([]byte, BitmapLen(MaxBatch+1))},
	}
	for _, f := range cases {
		if _, err := Append(nil, &f); !errors.Is(err, ErrFrameTooBig) {
			t.Errorf("%s: oversized encode: got %v, want ErrFrameTooBig", f.Type, err)
		}
	}
	// Structural batch encode errors: empty batches and bitmap shape.
	for _, tc := range []struct {
		f    Frame
		want error
	}{
		{Frame{Type: ObserveBatch}, ErrEmptyBatch},
		{Frame{Type: AckBatch}, ErrEmptyBatch},
		{Frame{Type: AckBatch, Count: 3, Bitmap: []byte{0, 0}}, ErrBadBitmap},
		{Frame{Type: AckBatch, Count: 3, Bitmap: []byte{0b1000}}, ErrBadBitmap},
	} {
		if _, err := Append(nil, &tc.f); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.f.Type, err, tc.want)
		}
	}
	if _, err := Append(nil, &Frame{Type: Type(0x7f)}); !errors.Is(err, ErrBadType) {
		t.Errorf("unknown type encode: got %v, want ErrBadType", err)
	}
	// The largest legal frames must encode and round-trip.
	for _, f := range []Frame{
		{Type: Observe, Vals: make([]float64, MaxVals)},
		{Type: Ack, Data: make([]byte, MaxData)},
	} {
		buf, err := Append(nil, &f)
		if err != nil {
			t.Fatalf("%s at bound: %v", f.Type, err)
		}
		if len(buf) > MaxFrame+lenSize {
			t.Fatalf("%s at bound: %d bytes on the wire, cap %d", f.Type, len(buf), MaxFrame+lenSize)
		}
		var got Frame
		if err := DecodeBody(&got, buf[lenSize:]); err != nil {
			t.Fatalf("%s at bound: decode: %v", f.Type, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	enc := func(f Frame) []byte {
		buf, err := Append(nil, &f)
		if err != nil {
			t.Fatal(err)
		}
		return buf[lenSize:]
	}
	hello := enc(Frame{Type: Hello, Version: Version, Session: 1, Dim: 8})
	badMagic := append([]byte(nil), hello...)
	badMagic[1] ^= 0xff
	observe := enc(Frame{Type: Observe, Seq: 1, Vals: []float64{1, 2}})
	batch := enc(Frame{Type: ObserveBatch, Batch: []BatchObs{
		{Seq: 1, At: 2, Vals: []float64{1}},
		{Seq: 2, At: 3, Vals: []float64{2}},
	}})
	// A batch whose last item's vcount points past the body.
	batchLies := append([]byte(nil), batch...)
	batchLies[len(batchLies)-8-2] = 9
	ackBatch := enc(Frame{Type: AckBatch, Seq: 1, Count: 3, Bitmap: []byte{0b010}})
	ackBatchPad := append([]byte(nil), ackBatch...)
	ackBatchPad[len(ackBatchPad)-1] |= 0b1000 // bit 3 of a 3-item batch
	emptyBatch := []byte{byte(ObserveBatch), 0, 0}
	emptyAckBatch := []byte{byte(AckBatch), 1, 0, 0, 0, 0, 0, 0, 0, 0, 0}

	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"unknown type", []byte{0x7f, 0, 0}, ErrBadType},
		{"bad magic", badMagic, ErrBadMagic},
		{"short hello", hello[:10], ErrTruncated},
		{"long hello", append(append([]byte(nil), hello...), 0), ErrTrailing},
		{"short observe head", observe[:10], ErrTruncated},
		{"observe count lies", observe[:len(observe)-8], ErrTrailing},
		{"oversized body", make([]byte, MaxFrame+1), ErrFrameTooBig},
		{"short batch head", batch[:2], ErrTruncated},
		{"short batch item", batch[:12], ErrTruncated},
		{"batch vcount lies", batchLies, ErrTruncated},
		{"batch trailing", append(append([]byte(nil), batch...), 0), ErrTrailing},
		{"empty batch", emptyBatch, ErrEmptyBatch},
		{"short ack batch", ackBatch[:8], ErrTruncated},
		{"ack batch bitmap short", ackBatch[:len(ackBatch)-1], ErrTrailing},
		{"ack batch bitmap long", append(append([]byte(nil), ackBatch...), 0), ErrTrailing},
		{"ack batch padding bits", ackBatchPad, ErrBadBitmap},
		{"empty ack batch", emptyAckBatch, ErrEmptyBatch},
	}
	for _, tc := range cases {
		var f Frame
		if err := DecodeBody(&f, tc.body); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestCheckHello pins the typed wrong-version error: a Hello from another
// protocol generation decodes structurally but fails CheckHello with
// *VersionError carrying both versions — mirroring internal/nn's snapshot
// version contract.
func TestCheckHello(t *testing.T) {
	good := Frame{Type: Hello, Version: Version, Session: 3, Dim: 24}
	if err := CheckHello(&good); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	buf, err := Append(nil, &Frame{Type: Hello, Version: Version + 1, Session: 3, Dim: 24})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeBody(&f, buf[lenSize:]); err != nil {
		t.Fatalf("future-version hello must decode structurally: %v", err)
	}
	err = CheckHello(&f)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %T: %v", err, err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError = %+v, want Got=%d Want=%d", ve, Version+1, Version)
	}
	if err := CheckHello(&Frame{Type: Observe}); err == nil {
		t.Fatal("non-hello first frame accepted")
	}
}

func TestSplitterWholeStream(t *testing.T) {
	frames := sampleFrames()
	var stream []byte
	for i := range frames {
		var err error
		stream, err = Append(stream, &frames[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	// Feed byte by byte: the adversarial fragmentation.
	var sp Splitter
	var got []Frame
	var f Frame
	for _, b := range stream {
		if err := sp.Feed([]byte{b}); err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := sp.Next(&f)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, cloneFrame(&f))
		}
	}
	if len(got) != len(frames) {
		t.Fatalf("split %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !frameEq(&frames[i], &got[i]) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, frames[i], got[i])
		}
	}
	if sp.Pending() != 0 {
		t.Fatalf("%d bytes pending after clean stream", sp.Pending())
	}
	if sp.PeakCarry() > MaxFrame+lenSize+1 {
		t.Fatalf("peak carry %d exceeds bound", sp.PeakCarry())
	}
}

func TestSplitterStickyErrors(t *testing.T) {
	// Oversized declared length fails at the prefix, before buffering.
	var sp Splitter
	if err := sp.Feed([]byte{0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized prefix: got %v", err)
	}
	if err := sp.Feed([]byte{1}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("sticky error not returned on Feed: got %v", err)
	}
	var f Frame
	if _, err := sp.Next(&f); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("sticky error not returned on Next: got %v", err)
	}

	// Zero-length frame is equally fatal.
	sp.Reset()
	if err := sp.Feed([]byte{0, 0, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("zero-length frame: got %v", err)
	}

	// A bad body (good prefix) poisons at Next, after earlier frames
	// were delivered.
	sp.Reset()
	good, err := Append(nil, &Frame{Type: SnapshotReq, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := append(append([]byte(nil), good...), 3, 0, 0, 0, 0x7f, 1, 2)
	if err := sp.Feed(bad); err != nil {
		t.Fatal(err)
	}
	if ok, err := sp.Next(&f); !ok || err != nil {
		t.Fatalf("good frame before poison: ok=%v err=%v", ok, err)
	}
	if _, err := sp.Next(&f); !errors.Is(err, ErrBadType) {
		t.Fatalf("poisoned Next: got %v", err)
	}

	// Reset recovers the splitter for a new connection.
	sp.Reset()
	if err := sp.Feed(good); err != nil {
		t.Fatal(err)
	}
	if ok, err := sp.Next(&f); !ok || err != nil {
		t.Fatalf("post-Reset decode: ok=%v err=%v", ok, err)
	}
}

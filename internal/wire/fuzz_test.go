package wire

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at DecodeBody: it must never
// panic, never allocate past the MaxFrame bound, and — when it accepts a
// body — re-encoding the decoded frame must reproduce the input bytes
// exactly (decode is the inverse of encode on the accepted set).
func FuzzWireDecode(f *testing.F) {
	for _, g := range goldenFrames {
		buf, err := Append(nil, &g.frame)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[lenSize:])
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0xff, 0xff})
	f.Add(make([]byte, observeHead+1))
	f.Fuzz(func(t *testing.T, body []byte) {
		var fr Frame
		if err := DecodeBody(&fr, body); err != nil {
			return
		}
		if len(fr.Vals) > MaxVals || len(fr.Data) > MaxData || len(fr.Msg) > MaxMsg {
			t.Fatalf("decode exceeded payload bounds: vals=%d data=%d msg=%d",
				len(fr.Vals), len(fr.Data), len(fr.Msg))
		}
		if len(fr.Batch) > MaxBatch || fr.Count > MaxBatch {
			t.Fatalf("decode exceeded batch bounds: items=%d count=%d", len(fr.Batch), fr.Count)
		}
		out, err := Append(nil, &fr)
		if err != nil {
			t.Fatalf("accepted body failed to re-encode: %v", err)
		}
		if body2 := out[lenSize:]; string(body2) != string(body) {
			t.Fatalf("decode/encode not inverse:\n in  % x\n out % x", body, body2)
		}
		if got := int(binary.LittleEndian.Uint32(out)); got != len(body) {
			t.Fatalf("re-encoded length prefix %d, body %d", got, len(body))
		}
	})
}

// FuzzFrameSplit pins the framing invariant: decoding a byte stream
// through the Splitter at fuzzer-chosen TCP read splits yields exactly the
// frames (and the terminal error class) of a whole-buffer feed, and the
// carry never grows past one frame plus one chunk. The stream is seeded
// with valid frame sequences and then fuzz-mutated, so both the clean and
// the poisoned paths are exercised.
func FuzzFrameSplit(f *testing.F) {
	var stream []byte
	for _, g := range goldenFrames {
		var err error
		stream, err = Append(stream, &g.frame)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream, uint16(1))
	f.Add(stream, uint16(7))
	f.Add(append(stream[:len(stream)-3:len(stream)-3], 0xff, 0xff, 0xff), uint16(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}, uint16(2))
	f.Fuzz(func(t *testing.T, data []byte, splitSeed uint16) {
		if len(data) > 1<<16 {
			return
		}
		collect := func(sp *Splitter, feed func(*Splitter) error) (frames []Frame, terr error) {
			var fr Frame
			if err := feed(sp); err != nil {
				return frames, err
			}
			for {
				ok, err := sp.Next(&fr)
				if err != nil {
					return frames, err
				}
				if !ok {
					return frames, nil
				}
				frames = append(frames, cloneFrame(&fr))
			}
		}

		// Whole-buffer reference.
		var whole Splitter
		wantFrames, wantErr := collect(&whole, func(sp *Splitter) error { return sp.Feed(data) })

		// Chunked: split points derived from the seed, interleaving Feed
		// and drain exactly like a connection read loop.
		var chunked Splitter
		var gotFrames []Frame
		var gotErr error
		rng := uint32(splitSeed) | 1
		maxChunk := 1 + int(splitSeed%97)
		for off := 0; off < len(data) && gotErr == nil; {
			rng = rng*1664525 + 1013904223
			n := 1 + int(rng%uint32(maxChunk))
			if off+n > len(data) {
				n = len(data) - off
			}
			var frames []Frame
			frames, gotErr = collect(&chunked, func(sp *Splitter) error { return sp.Feed(data[off : off+n]) })
			gotFrames = append(gotFrames, frames...)
			off += n
		}

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence: whole=%v chunked=%v", wantErr, gotErr)
		}
		if wantErr != nil && gotErr != nil && wantErr.Error() != gotErr.Error() {
			t.Fatalf("error text divergence:\nwhole   %v\nchunked %v", wantErr, gotErr)
		}
		if len(gotFrames) != len(wantFrames) {
			t.Fatalf("chunked decoded %d frames, whole %d", len(gotFrames), len(wantFrames))
		}
		for i := range wantFrames {
			if !frameEq(&wantFrames[i], &gotFrames[i]) {
				t.Fatalf("frame %d diverges:\nwhole   %+v\nchunked %+v", i, wantFrames[i], gotFrames[i])
			}
		}
		if bound := MaxFrame + lenSize + maxChunk; chunked.PeakCarry() > bound {
			t.Fatalf("chunked carry peaked at %d, bound %d", chunked.PeakCarry(), bound)
		}
		_ = math.Float64bits // anchor math for future val-payload seeds
	})
}

package android

import (
	"fmt"
	"time"

	"affectedge/internal/emotion"
)

// WorkloadEvent is the minimal launch record the experiment consumes
// (matching monkey.LaunchEvent without importing it, to keep the
// dependency one-way).
type WorkloadEvent struct {
	At   time.Duration
	App  string
	Mood emotion.Mood
}

// RunResult is one policy's outcome over a workload.
type RunResult struct {
	Policy  string
	Metrics Metrics
	Device  *Device
}

// Run replays a workload against a fresh device using the given policy.
// Mood transitions are fed to the device as they appear in the events
// (the affect classifier's output stream).
func Run(cfg DeviceConfig, policy KillPolicy, events []WorkloadEvent) (*RunResult, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("android: empty workload")
	}
	dev, err := NewDevice(cfg, policy)
	if err != nil {
		return nil, err
	}
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			return nil, fmt.Errorf("android: workload not time-ordered at event %d", i)
		}
		if err := dev.SetMood(e.Mood); err != nil {
			return nil, err
		}
		if _, err := dev.Launch(e.At, e.App); err != nil {
			return nil, err
		}
	}
	return &RunResult{Policy: policy.Name(), Metrics: dev.Metrics(), Device: dev}, nil
}

// Comparison is the Fig 10 result: emotional manager versus the FIFO
// baseline on the identical workload.
type Comparison struct {
	Emotional, Baseline RunResult
	// MemorySavingPct is the reduction in total bytes loaded at app start.
	MemorySavingPct float64
	// TimeSavingPct is the reduction in total app loading time.
	TimeSavingPct float64
}

// Compare replays the same workload under both managers.
func Compare(cfg DeviceConfig, table *AffectTable, events []WorkloadEvent) (*Comparison, error) {
	emoPolicy, err := NewEmotionalPolicy(table)
	if err != nil {
		return nil, err
	}
	emo, err := Run(cfg, emoPolicy, events)
	if err != nil {
		return nil, err
	}
	base, err := Run(cfg, FIFOPolicy{}, events)
	if err != nil {
		return nil, err
	}
	c := &Comparison{Emotional: *emo, Baseline: *base}
	if base.Metrics.BytesLoaded > 0 {
		c.MemorySavingPct = 100 * (1 - float64(emo.Metrics.BytesLoaded)/float64(base.Metrics.BytesLoaded))
	}
	if base.Metrics.LoadingTime > 0 {
		c.TimeSavingPct = 100 * (1 - float64(emo.Metrics.LoadingTime)/float64(base.Metrics.LoadingTime))
	}
	return c, nil
}

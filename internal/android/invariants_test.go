package android

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"affectedge/internal/emotion"
)

// Property: under arbitrary launch sequences, the device never exceeds its
// RAM budget (after enforcement), never kills the foreground app, always
// keeps system/periodic apps alive once started, and its metrics stay
// internally consistent.
func TestDeviceInvariantsUnderRandomWorkloads(t *testing.T) {
	catalog := Catalog()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table, err := AffectTableFromSubjects()
		if err != nil {
			return false
		}
		var policy KillPolicy
		switch rng.Intn(3) {
		case 0:
			policy = FIFOPolicy{}
		case 1:
			policy, err = NewEmotionalPolicy(table)
			if err != nil {
				return false
			}
		default:
			policy = LRUPolicy{}
		}
		d, err := NewDevice(DefaultDeviceConfig(), policy)
		if err != nil {
			return false
		}
		startedSystem := map[string]bool{}
		var now time.Duration
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			now += time.Duration(1+rng.Intn(120)) * time.Second
			app := catalog[rng.Intn(len(catalog))]
			if rng.Intn(5) == 0 {
				mood := emotion.Mood(rng.Intn(emotion.NumMoods))
				if err := d.SetMood(mood); err != nil {
					return false
				}
			}
			if _, err := d.Launch(now, app.Name); err != nil {
				return false
			}
			if app.System || app.Periodic {
				startedSystem[app.Name] = true
			}
			// Invariant: RAM within budget after enforcement (unless only
			// unkillable processes remain, which this catalog cannot reach).
			if d.usedRAM() > DefaultDeviceConfig().RAMBytes {
				return false
			}
			// Invariant: the app just launched is alive and foreground.
			if !d.Alive(app.Name) {
				return false
			}
			// Invariant: exempt apps stay alive once started.
			for name := range startedSystem {
				if !d.Alive(name) {
					return false
				}
			}
		}
		m := d.Metrics()
		if m.Launches != n {
			return false
		}
		if m.ColdStarts+m.WarmStarts != n {
			return false
		}
		if m.KillsByLimit+m.KillsByMemory != m.Kills {
			return false
		}
		if m.BytesLoaded < 0 || m.LoadingTime < 0 {
			return false
		}
		// Cold starts are at least the distinct apps seen... at least 1.
		return m.ColdStarts >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

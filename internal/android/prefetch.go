package android

import (
	"fmt"
	"time"

	"affectedge/internal/trace"
)

// Prefetching is the natural extension of the Emotional Background
// Manager: instead of only *keeping* mood-likely apps cached, proactively
// load the mood's top apps during idle moments so their next launch is
// warm. The trade is real — prefetch spends flash reads that may be
// wasted — so the experiment reports both launch-time loads (what Fig 10
// measures, which prefetch improves) and total flash traffic including
// prefetch (which it can worsen).

// PrefetchConfig controls proactive loading.
type PrefetchConfig struct {
	// TopK apps of the current mood are prefetch candidates.
	TopK int
	// Budget caps how many prefetches one idle moment may issue.
	Budget int
}

// DefaultPrefetchConfig prefetches up to 2 of the mood's top 5 apps.
func DefaultPrefetchConfig() PrefetchConfig { return PrefetchConfig{TopK: 5, Budget: 2} }

// PrefetchMetrics extends Metrics with prefetch accounting.
type PrefetchMetrics struct {
	Metrics
	Prefetches     int
	PrefetchBytes  int64
	PrefetchUseful int // prefetched processes later launched while cached
}

// RunWithPrefetch replays a workload on the emotional manager, issuing
// prefetches after every launch (the idle moment) for the current mood's
// top-ranked dead apps. It returns extended metrics.
func RunWithPrefetch(cfg DeviceConfig, table *AffectTable, events []WorkloadEvent, pf PrefetchConfig) (*PrefetchMetrics, error) {
	if pf.TopK <= 0 || pf.Budget <= 0 {
		return nil, fmt.Errorf("android: invalid prefetch config %+v", pf)
	}
	policy, err := NewEmotionalPolicy(table)
	if err != nil {
		return nil, err
	}
	dev, err := NewDevice(cfg, policy)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("android: empty workload")
	}
	out := &PrefetchMetrics{}
	prefetched := map[string]bool{}
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			return nil, fmt.Errorf("android: workload not time-ordered at event %d", i)
		}
		if err := dev.SetMood(e.Mood); err != nil {
			return nil, err
		}
		if prefetched[e.App] && dev.Alive(e.App) {
			out.PrefetchUseful++
		}
		delete(prefetched, e.App)
		if _, err := dev.Launch(e.At, e.App); err != nil {
			return nil, err
		}
		// Idle moment after the launch: prefetch dead mood favorites.
		issued := 0
		for _, name := range table.Rank(e.Mood) {
			if issued >= pf.Budget {
				break
			}
			if pf.TopK > 0 && issued >= pf.TopK {
				break
			}
			if dev.Alive(name) {
				continue
			}
			app, ok := dev.apps[name]
			if !ok || !dev.canPrefetch(app) {
				continue
			}
			if err := dev.prefetch(e.At+time.Millisecond, app); err != nil {
				return nil, err
			}
			out.Prefetches++
			out.PrefetchBytes += app.FileBytes
			mtr.prefetches.Inc()
			mtr.prefetchBytes.Add(app.FileBytes)
			prefetched[name] = true
			issued++
		}
	}
	out.Metrics = dev.Metrics()
	return out, nil
}

// prefetchHeadroom is RAM that must stay free after a prefetch so the
// speculative load never evicts a cached process the user might need.
const prefetchHeadroom = 256 * mb

// canPrefetch reports whether app fits without creating eviction pressure.
func (d *Device) canPrefetch(app App) bool {
	if _, alive := d.procs[app.Name]; alive {
		return false
	}
	if d.backgroundCount()+1 > d.cfg.ProcessLimit {
		return false
	}
	return d.usedRAM()+app.MemBytes+prefetchHeadroom <= d.cfg.RAMBytes
}

// prefetch loads an app into the background without foregrounding it.
// Callers must check canPrefetch first; prefetching never evicts.
func (d *Device) prefetch(now time.Duration, app App) error {
	if !d.canPrefetch(app) {
		return nil
	}
	p := &Process{App: app, StartedAt: now, LastUsed: now, State: StateBackground}
	d.procs[app.Name] = p
	d.log.Record(now, app.Name, trace.EventStart, "prefetch")
	return nil
}

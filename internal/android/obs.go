package android

import "affectedge/internal/obs"

// mtr holds this package's metric handles; nil (the default) is the no-op
// state. The android scope tracks what the Emotional Background Manager
// does to processes and what that costs (or saves) in flash→RAM traffic.
var mtr struct {
	launches      *obs.Counter
	coldStarts    *obs.Counter // reloads: the process had been killed
	warmStarts    *obs.Counter // cached in RAM, no flash traffic
	kills         *obs.Counter
	killsByLimit  *obs.Counter
	killsByMemory *obs.Counter
	flashLoaded   *obs.Counter // bytes actually read from flash at launch
	flashAvoided  *obs.Counter // bytes a warm start did NOT re-read
	prefetches    *obs.Counter
	prefetchBytes *obs.Counter
	peakRAM       *obs.Gauge     // high-water resident app memory + reserve
	launchLatency *obs.Histogram // per-launch latency, µs
}

// WireMetrics routes the package's counters into scope s (conventionally
// reg.Scope("android")); nil restores the no-op state. Wire before a
// simulation starts — handle swaps are not synchronized with running
// devices.
func WireMetrics(s *obs.Scope) {
	mtr.launches = s.Counter("launches")
	mtr.coldStarts = s.Counter("cold_starts")
	mtr.warmStarts = s.Counter("warm_starts")
	mtr.kills = s.Counter("kills")
	mtr.killsByLimit = s.Counter("kills.process_limit")
	mtr.killsByMemory = s.Counter("kills.low_memory")
	mtr.flashLoaded = s.Counter("flash_bytes_loaded")
	mtr.flashAvoided = s.Counter("flash_bytes_avoided")
	mtr.prefetches = s.Counter("prefetches")
	mtr.prefetchBytes = s.Counter("prefetch_bytes")
	mtr.peakRAM = s.Gauge("peak_ram_bytes")
	mtr.launchLatency = s.Histogram("launch_latency_us", obs.DurationBuckets())
}

package android

import (
	"testing"
	"time"

	"affectedge/internal/emotion"
)

func mkProc(name string, started, lastUsed time.Duration) *Process {
	return &Process{
		App:       App{Name: name, FileBytes: mb, MemBytes: mb},
		State:     StateBackground,
		StartedAt: started,
		LastUsed:  lastUsed,
	}
}

func TestLRUPolicy(t *testing.T) {
	p := LRUPolicy{}
	a := mkProc("a", 0, 10*time.Minute)
	b := mkProc("b", 5*time.Minute, 2*time.Minute) // started later, used earlier
	v := p.Victim([]*Process{a, b}, 20*time.Minute, emotion.CalmMood)
	if v != b {
		t.Error("LRU should evict the least recently used, not the oldest")
	}
	if p.Victim(nil, 0, emotion.CalmMood) != nil {
		t.Error("empty candidates should yield nil")
	}
}

func TestRandomPolicyDeterministicSeed(t *testing.T) {
	procs := []*Process{mkProc("a", 0, 0), mkProc("b", 1, 1), mkProc("c", 2, 2)}
	p1 := NewRandomPolicy(42)
	p2 := NewRandomPolicy(42)
	for i := 0; i < 10; i++ {
		if p1.Victim(procs, 0, emotion.CalmMood) != p2.Victim(procs, 0, emotion.CalmMood) {
			t.Fatal("random policy not seed-deterministic")
		}
	}
	if NewRandomPolicy(1).Victim(nil, 0, emotion.CalmMood) != nil {
		t.Error("empty candidates should yield nil")
	}
}

func TestHybridPolicyBlends(t *testing.T) {
	table, err := NewAffectTable(map[emotion.Mood]map[string]float64{
		emotion.Excited: {"fav": 0.9, "meh": 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fav := mkProc("fav", 0, 0)              // mood favorite but stale
	meh := mkProc("meh", 0, 10*time.Minute) // recent but unlikely
	// Pure affect (alpha 1): evict meh (low probability).
	p1, err := NewHybridPolicy(table, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := p1.Victim([]*Process{fav, meh}, 0, emotion.Excited); v != meh {
		t.Error("alpha=1 should follow the affect table")
	}
	// Pure recency (alpha 0): evict fav (stale).
	p0, err := NewHybridPolicy(table, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := p0.Victim([]*Process{fav, meh}, 0, emotion.Excited); v != fav {
		t.Error("alpha=0 should follow recency")
	}
	if _, err := NewHybridPolicy(table, 2); err == nil {
		t.Error("alpha 2 accepted")
	}
	if _, err := NewHybridPolicy(nil, 0.5); err == nil {
		t.Error("nil table accepted")
	}
}

func TestPolicyAblationOrdering(t *testing.T) {
	// Build a deterministic workload with mood-favorite revisits.
	table, err := AffectTableFromSubjects()
	if err != nil {
		t.Fatal(err)
	}
	var events []WorkloadEvent
	pattern := []string{
		"voip-call", "chrome", "streambox", "live-tv", "megashop",
		"friendfeed", "snapshare", "clip-maker", "voip-call", "chrome",
		"ride-hail", "gmail", "music-box", "voip-call", "pro-camera",
		"clouddrive", "shortclips", "voip-call", "chrome", "ride-hail",
	}
	for i, app := range pattern {
		events = append(events, WorkloadEvent{
			At:   time.Duration(i) * 30 * time.Second,
			App:  app,
			Mood: emotion.Excited,
		})
	}
	results, err := PolicyAblation(DefaultDeviceConfig(), table, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d policies, want 5", len(results))
	}
	// Every policy saw the same launches.
	for name, m := range results {
		if m.Launches != len(events) {
			t.Errorf("%s saw %d launches", name, m.Launches)
		}
	}
}

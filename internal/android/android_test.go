package android

import (
	"testing"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/personality"
)

func TestCatalogValid(t *testing.T) {
	if err := ValidateCatalog(); err != nil {
		t.Fatal(err)
	}
	if len(CatalogByName()) != 44 {
		t.Error("name index size wrong")
	}
	if len(AppsInCategory(personality.Messaging)) < 2 {
		t.Error("messaging should have several apps")
	}
	// The messaging workhorse is periodic (never killed).
	if !CatalogByName()["messages"].Periodic {
		t.Error("messages app should be periodic")
	}
}

func newTestDevice(t *testing.T, policy KillPolicy) *Device {
	t.Helper()
	d, err := NewDevice(DefaultDeviceConfig(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestColdAndWarmStarts(t *testing.T) {
	d := newTestDevice(t, FIFOPolicy{})
	lat1, err := d.Launch(0, "chrome")
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.ColdStarts != 1 || m.WarmStarts != 0 {
		t.Fatalf("after first launch: %+v", m)
	}
	if m.BytesLoaded != CatalogByName()["chrome"].FileBytes {
		t.Errorf("bytes loaded %d", m.BytesLoaded)
	}
	// Second launch while cached: warm.
	lat2, err := d.Launch(time.Minute, "chrome")
	if err != nil {
		t.Fatal(err)
	}
	m = d.Metrics()
	if m.WarmStarts != 1 {
		t.Fatalf("after relaunch: %+v", m)
	}
	if lat2 >= lat1 {
		t.Errorf("warm latency %v not below cold %v", lat2, lat1)
	}
	if m.BytesLoaded != CatalogByName()["chrome"].FileBytes {
		t.Error("warm start loaded bytes")
	}
}

func TestLaunchUnknownApp(t *testing.T) {
	d := newTestDevice(t, FIFOPolicy{})
	if _, err := d.Launch(0, "no-such-app"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestMemoryPressureKills(t *testing.T) {
	d := newTestDevice(t, FIFOPolicy{})
	// Launch many large apps; RAM (4 GB with 1 GB reserve) forces kills.
	apps := []string{"chrome", "streambox", "live-tv", "megashop", "friendfeed",
		"snapshare", "clip-maker", "shortclips", "pro-camera", "voip-call",
		"ride-hail", "clouddrive", "gmail", "music-box"}
	for i, a := range apps {
		if _, err := d.Launch(time.Duration(i)*time.Minute, a); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	if m.Kills == 0 {
		t.Fatal("no kills under memory pressure")
	}
	// RAM budget respected after every launch.
	if d.usedRAM() > DefaultDeviceConfig().RAMBytes {
		t.Errorf("RAM over budget: %d", d.usedRAM())
	}
	// Oldest (FIFO) should have been killed: chrome is gone.
	if d.Alive("chrome") {
		t.Error("FIFO kept the oldest app")
	}
	// Foreground app never killed.
	if !d.Alive(apps[len(apps)-1]) {
		t.Error("foreground app killed")
	}
}

func TestSystemAndPeriodicExempt(t *testing.T) {
	d := newTestDevice(t, FIFOPolicy{})
	if _, err := d.Launch(0, "messages"); err != nil { // periodic
		t.Fatal(err)
	}
	if _, err := d.Launch(time.Second, "settings"); err != nil { // system
		t.Fatal(err)
	}
	apps := []string{"chrome", "streambox", "live-tv", "megashop", "friendfeed",
		"snapshare", "clip-maker", "shortclips", "pro-camera", "voip-call",
		"ride-hail", "clouddrive", "gmail", "music-box", "radio-stream"}
	for i, a := range apps {
		if _, err := d.Launch(time.Duration(i+1)*time.Minute, a); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Alive("messages") {
		t.Error("periodic messages app was killed")
	}
	if !d.Alive("settings") {
		t.Error("system app was killed")
	}
}

func TestEmotionalPolicyKillsUnlikelyApps(t *testing.T) {
	table, err := AffectTableFromSubjects()
	if err != nil {
		t.Fatal(err)
	}
	policy, err := NewEmotionalPolicy(table)
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDevice(t, policy)
	if err := d.SetMood(emotion.Excited); err != nil {
		t.Fatal(err)
	}
	// Cache one excited-favorite (calling) and one excited-unlikely (tv).
	if _, err := d.Launch(0, "voip-call"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(time.Second, "live-tv"); err != nil {
		t.Fatal(err)
	}
	// Fill memory to force exactly some kills.
	apps := []string{"chrome", "streambox", "megashop", "friendfeed",
		"snapshare", "clip-maker", "shortclips", "pro-camera",
		"clouddrive", "gmail", "music-box"}
	for i, a := range apps {
		if _, err := d.Launch(time.Duration(i+2)*time.Minute, a); err != nil {
			t.Fatal(err)
		}
	}
	if d.Metrics().Kills == 0 {
		t.Fatal("no pressure generated")
	}
	// The excited-mood table ranks calling far above TV: voip-call should
	// outlive live-tv.
	if d.Alive("live-tv") && !d.Alive("voip-call") {
		t.Error("emotional policy killed a mood favorite before an unlikely app")
	}
	if table.Prob(emotion.Excited, "voip-call") <= table.Prob(emotion.Excited, "live-tv") {
		t.Error("affect table ordering wrong for excited mood")
	}
}

func TestAffectTableRank(t *testing.T) {
	table, err := AffectTableFromSubjects()
	if err != nil {
		t.Fatal(err)
	}
	rank := table.Rank(emotion.Excited)
	if len(rank) == 0 {
		t.Fatal("empty rank")
	}
	// Descending probabilities.
	for i := 1; i < len(rank); i++ {
		if table.Prob(emotion.Excited, rank[i]) > table.Prob(emotion.Excited, rank[i-1]) {
			t.Fatal("rank not descending")
		}
	}
	// Messaging dominates every mood.
	if rank[0] != "messages" {
		t.Errorf("top excited app %q, want messages", rank[0])
	}
}

func TestAffectTableValidation(t *testing.T) {
	if _, err := NewAffectTable(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewAffectTable(map[emotion.Mood]map[string]float64{
		emotion.Excited: {"a": -1},
	}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewAffectTable(map[emotion.Mood]map[string]float64{
		emotion.Mood(9): {"a": 1},
	}); err == nil {
		t.Error("invalid mood accepted")
	}
	if _, err := NewEmotionalPolicy(nil); err == nil {
		t.Error("nil table accepted")
	}
}

func TestLearnedTable(t *testing.T) {
	table := LearnedAffectTable()
	if table.Prob(emotion.Excited, "chrome") != 0 {
		t.Error("fresh table should be empty")
	}
	table.Learn(emotion.Excited, "chrome")
	table.Learn(emotion.Excited, "chrome")
	table.Learn(emotion.Excited, "gmail")
	if table.Prob(emotion.Excited, "chrome") <= table.Prob(emotion.Excited, "gmail") {
		t.Error("learning did not raise the frequent app")
	}
	table.Learn(emotion.Mood(9), "x") // ignored
	if table.Prob(emotion.Mood(9), "x") != 0 {
		t.Error("invalid mood learned")
	}
}

func TestSpreadOverCatalogConservesMass(t *testing.T) {
	subj, err := personality.SubjectByMood(emotion.Excited)
	if err != nil {
		t.Fatal(err)
	}
	spread := SpreadOverCatalog(subj.Usage)
	var sum float64
	for _, v := range spread {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("spread mass %g, want 1", sum)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(DefaultDeviceConfig(), FIFOPolicy{}, nil); err == nil {
		t.Error("empty workload accepted")
	}
	bad := []WorkloadEvent{
		{At: time.Minute, App: "chrome", Mood: emotion.CalmMood},
		{At: time.Second, App: "gmail", Mood: emotion.CalmMood},
	}
	if _, err := Run(DefaultDeviceConfig(), FIFOPolicy{}, bad); err == nil {
		t.Error("unordered workload accepted")
	}
}

func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(DeviceConfig{}, FIFOPolicy{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewDevice(DefaultDeviceConfig(), nil); err == nil {
		t.Error("nil policy accepted")
	}
	d := newTestDevice(t, FIFOPolicy{})
	if err := d.SetMood(emotion.Mood(5)); err == nil {
		t.Error("invalid mood accepted")
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	d := newTestDevice(t, FIFOPolicy{})
	if _, err := d.Launch(0, "chrome"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(time.Minute, "gmail"); err != nil {
		t.Fatal(err)
	}
	log := d.Trace()
	if len(log.Events()) < 3 { // start, fg, bg, start, fg
		t.Errorf("only %d trace events", len(log.Events()))
	}
	if got := log.AliveAt(30*time.Second, 2*time.Minute); got != 1 {
		t.Errorf("alive at 30s = %d, want 1", got)
	}
}

func TestMemoryMetricsDetail(t *testing.T) {
	d := newTestDevice(t, FIFOPolicy{})
	apps := []string{"chrome", "streambox", "live-tv", "megashop", "friendfeed",
		"snapshare", "clip-maker", "shortclips", "pro-camera", "voip-call",
		"ride-hail", "clouddrive", "gmail", "music-box"}
	for i, a := range apps {
		if _, err := d.Launch(time.Duration(i)*time.Minute, a); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	if m.PeakRAM <= DefaultDeviceConfig().SystemReserveBytes {
		t.Error("peak RAM not tracked")
	}
	if m.PeakRAM > DefaultDeviceConfig().RAMBytes+600*mb {
		t.Errorf("peak RAM %d far beyond budget", m.PeakRAM)
	}
	if m.KillsByLimit+m.KillsByMemory != m.Kills {
		t.Errorf("kill split %d+%d != %d", m.KillsByLimit, m.KillsByMemory, m.Kills)
	}
	if m.Kills > 0 && m.KillsByMemory == 0 {
		t.Error("large-app workload should trigger memory kills")
	}
}

func TestCatalogNames(t *testing.T) {
	names := CatalogNames()
	apps := Catalog()
	if len(names) != len(apps) {
		t.Fatalf("%d names, %d apps", len(names), len(apps))
	}
	for i, a := range apps {
		if names[i] != a.Name {
			t.Fatalf("name %d = %q, catalog order says %q", i, names[i], a.Name)
		}
	}
}

package android

import (
	"fmt"
	"sort"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/trace"
)

// ProcState is a process lifecycle state.
type ProcState int

// Process states.
const (
	StateForeground ProcState = iota
	StateBackground
)

// Process is one running app instance.
type Process struct {
	App       App
	State     ProcState
	StartedAt time.Duration // creation time (FIFO key)
	LastUsed  time.Duration // last foregrounded
	Launches  int
}

// DeviceConfig mirrors the Fig 7 (right) emulator specification.
type DeviceConfig struct {
	RAMBytes int64
	// SystemReserveBytes is RAM unavailable to app processes.
	SystemReserveBytes int64
	// ProcessLimit is the background-process cap (Android default 20).
	ProcessLimit int
	// FlashReadBandwidth in bytes/second for cold-start loads.
	FlashReadBandwidth float64
	// WarmSwitchTime is the foreground-switch latency for cached apps.
	WarmSwitchTime time.Duration
}

// DefaultDeviceConfig returns the paper's emulator: 4 GB RAM, limit 20.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		RAMBytes:           4 * gb,
		SystemReserveBytes: 1 * gb,
		ProcessLimit:       20,
		FlashReadBandwidth: 400 << 20, // 400 MB/s UFS-class read
		WarmSwitchTime:     80 * time.Millisecond,
	}
}

// Metrics are the Fig 10 measurements plus memory-pressure detail.
type Metrics struct {
	Launches    int
	ColdStarts  int
	WarmStarts  int
	BytesLoaded int64         // total memory loaded at app start (Fig 10 left)
	LoadingTime time.Duration // total app loading time (Fig 10 right)
	Kills       int
	// KillsByLimit/KillsByMemory split kills by trigger.
	KillsByLimit, KillsByMemory int
	// PeakRAM is the high-water mark of resident app memory plus reserve.
	PeakRAM int64
}

// Device is the simulated phone.
type Device struct {
	cfg        DeviceConfig
	policy     KillPolicy
	apps       map[string]App
	procs      map[string]*Process
	foreground string
	mood       emotion.Mood
	metrics    Metrics
	log        *trace.Log
}

// NewDevice boots a device with the given policy over the standard
// catalog.
func NewDevice(cfg DeviceConfig, policy KillPolicy) (*Device, error) {
	if cfg.RAMBytes <= 0 || cfg.ProcessLimit <= 0 || cfg.FlashReadBandwidth <= 0 {
		return nil, fmt.Errorf("android: invalid device config %+v", cfg)
	}
	if policy == nil {
		return nil, fmt.Errorf("android: nil kill policy")
	}
	if err := ValidateCatalog(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:    cfg,
		policy: policy,
		apps:   CatalogByName(),
		procs:  map[string]*Process{},
		mood:   emotion.CalmMood,
		log:    trace.New(),
	}, nil
}

// Metrics returns the accumulated measurements.
func (d *Device) Metrics() Metrics { return d.metrics }

// Trace returns the process lifecycle log (Fig 9 data).
func (d *Device) Trace() *trace.Log { return d.log }

// Mood returns the current detected mood.
func (d *Device) Mood() emotion.Mood { return d.mood }

// SetMood feeds a new affect-classifier output to the device. The
// emotional background manager re-ranks on the next pressure event.
func (d *Device) SetMood(m emotion.Mood) error {
	if !m.Valid() {
		return fmt.Errorf("android: invalid mood %d", int(m))
	}
	d.mood = m
	return nil
}

// usedRAM returns resident app memory plus the system reserve.
func (d *Device) usedRAM() int64 {
	total := d.cfg.SystemReserveBytes
	for _, p := range d.procs {
		total += p.App.MemBytes
	}
	return total
}

// backgroundCount returns the number of background processes.
func (d *Device) backgroundCount() int {
	var n int
	for _, p := range d.procs {
		if p.State == StateBackground {
			n++
		}
	}
	return n
}

// Alive reports whether an app currently has a process.
func (d *Device) Alive(app string) bool {
	_, ok := d.procs[app]
	return ok
}

// Launch brings an app to the foreground at virtual time now, cold-starting
// it if its process was killed (or never started), then enforces the
// process and memory limits via the kill policy. It returns the launch
// latency.
func (d *Device) Launch(now time.Duration, appName string) (time.Duration, error) {
	app, ok := d.apps[appName]
	if !ok {
		return 0, fmt.Errorf("android: app %q not installed", appName)
	}
	d.metrics.Launches++

	// Demote the previous foreground app.
	if d.foreground != "" && d.foreground != appName {
		if p, ok := d.procs[d.foreground]; ok {
			p.State = StateBackground
			d.log.Record(now, d.foreground, trace.EventBackground, "")
		}
	}

	var latency time.Duration
	p, alive := d.procs[appName]
	if alive {
		// Warm start: process cached in RAM, no flash traffic.
		d.metrics.WarmStarts++
		latency = d.cfg.WarmSwitchTime
		mtr.warmStarts.Inc()
		mtr.flashAvoided.Add(app.FileBytes)
	} else {
		// Cold start: load from flash and initialize.
		d.metrics.ColdStarts++
		d.metrics.BytesLoaded += app.FileBytes
		readTime := time.Duration(float64(app.FileBytes) / d.cfg.FlashReadBandwidth * float64(time.Second))
		latency = readTime + app.InitTime
		p = &Process{App: app, StartedAt: now}
		d.procs[appName] = p
		d.log.Record(now, appName, trace.EventStart, "cold start")
		mtr.coldStarts.Inc()
		mtr.flashLoaded.Add(app.FileBytes)
	}
	d.metrics.LoadingTime += latency
	mtr.launches.Inc()
	mtr.launchLatency.ObserveDuration(latency)
	p.State = StateForeground
	p.LastUsed = now
	p.Launches++
	d.foreground = appName
	d.log.Record(now, appName, trace.EventForeground, "")

	if used := d.usedRAM(); used > d.metrics.PeakRAM {
		d.metrics.PeakRAM = used
		mtr.peakRAM.SetMax(used)
	}
	d.enforceLimits(now)
	return latency, nil
}

// enforceLimits kills background processes while the process limit or RAM
// budget is exceeded, using the configured policy to pick victims.
func (d *Device) enforceLimits(now time.Duration) {
	for d.backgroundCount() > d.cfg.ProcessLimit || d.usedRAM() > d.cfg.RAMBytes {
		victim := d.pickVictim(now)
		if victim == nil {
			return // only unkillable processes remain
		}
		reason := "process limit"
		if d.usedRAM() > d.cfg.RAMBytes {
			reason = "low memory"
			d.metrics.KillsByMemory++
			mtr.killsByMemory.Inc()
		} else {
			d.metrics.KillsByLimit++
			mtr.killsByLimit.Inc()
		}
		delete(d.procs, victim.App.Name)
		d.metrics.Kills++
		mtr.kills.Inc()
		d.log.Record(now, victim.App.Name, trace.EventKill, reason)
	}
}

// pickVictim collects killable background candidates and delegates to the
// policy. System and periodic apps are exempt, matching stock Android's
// behavior for system processes and periodically woken apps.
func (d *Device) pickVictim(now time.Duration) *Process {
	var candidates []*Process
	for _, p := range d.procs {
		if p.State != StateBackground || p.App.System || p.App.Periodic {
			continue
		}
		candidates = append(candidates, p)
	}
	if len(candidates) == 0 {
		return nil
	}
	// Stable order independent of map iteration.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].StartedAt != candidates[j].StartedAt {
			return candidates[i].StartedAt < candidates[j].StartedAt
		}
		return candidates[i].App.Name < candidates[j].App.Name
	})
	return d.policy.Victim(candidates, now, d.mood)
}

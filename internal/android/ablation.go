package android

import (
	"fmt"
	"math/rand"
	"time"

	"affectedge/internal/emotion"
)

// Additional kill policies for the ablation study: how much of the
// emotional manager's win comes from affect information versus plain
// recency?

// LRUPolicy evicts the background process that was least recently in the
// foreground — stock Android's actual cached-process heuristic is closer
// to LRU than FIFO, so this is the stronger recency baseline.
type LRUPolicy struct{}

// Name implements KillPolicy.
func (LRUPolicy) Name() string { return "lru" }

// Victim implements KillPolicy.
func (LRUPolicy) Victim(candidates []*Process, now time.Duration, mood emotion.Mood) *Process {
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.LastUsed < best.LastUsed {
			best = c
		}
	}
	return best
}

// RandomPolicy evicts a uniformly random candidate — the sanity floor.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a seeded random killer.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements KillPolicy.
func (*RandomPolicy) Name() string { return "random" }

// Victim implements KillPolicy.
func (p *RandomPolicy) Victim(candidates []*Process, now time.Duration, mood emotion.Mood) *Process {
	if len(candidates) == 0 {
		return nil
	}
	return candidates[p.rng.Intn(len(candidates))]
}

// HybridPolicy scores candidates by a blend of affect probability and
// recency: score = Alpha * P(app|mood) + (1-Alpha) * recency, evicting the
// lowest score. Alpha 1 is the pure emotional policy, Alpha 0 pure LRU.
type HybridPolicy struct {
	Table *AffectTable
	Alpha float64
}

// NewHybridPolicy validates and wraps the blend.
func NewHybridPolicy(table *AffectTable, alpha float64) (*HybridPolicy, error) {
	if table == nil {
		return nil, fmt.Errorf("android: nil affect table")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("android: hybrid alpha %g outside [0,1]", alpha)
	}
	return &HybridPolicy{Table: table, Alpha: alpha}, nil
}

// Name implements KillPolicy.
func (p *HybridPolicy) Name() string { return fmt.Sprintf("hybrid(%.2f)", p.Alpha) }

// Victim implements KillPolicy.
func (p *HybridPolicy) Victim(candidates []*Process, now time.Duration, mood emotion.Mood) *Process {
	if len(candidates) == 0 {
		return nil
	}
	// Normalize recency to [0, 1] over the candidate set.
	oldest, newest := candidates[0].LastUsed, candidates[0].LastUsed
	maxProb := 0.0
	for _, c := range candidates {
		if c.LastUsed < oldest {
			oldest = c.LastUsed
		}
		if c.LastUsed > newest {
			newest = c.LastUsed
		}
		if pr := p.Table.Prob(mood, c.App.Name); pr > maxProb {
			maxProb = pr
		}
	}
	span := float64(newest - oldest)
	best := candidates[0]
	bestScore := p.score(best, mood, oldest, span, maxProb)
	for _, c := range candidates[1:] {
		if s := p.score(c, mood, oldest, span, maxProb); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

func (p *HybridPolicy) score(c *Process, mood emotion.Mood, oldest time.Duration, span, maxProb float64) float64 {
	recency := 1.0
	if span > 0 {
		recency = float64(c.LastUsed-oldest) / span
	}
	prob := 0.0
	if maxProb > 0 {
		prob = p.Table.Prob(mood, c.App.Name) / maxProb
	}
	return p.Alpha*prob + (1-p.Alpha)*recency
}

// PolicyAblation replays one workload under every policy and returns
// metrics keyed by policy name — the data behind the policy-ablation
// bench.
func PolicyAblation(cfg DeviceConfig, table *AffectTable, events []WorkloadEvent, seed int64) (map[string]Metrics, error) {
	hybrid, err := NewHybridPolicy(table, 0.5)
	if err != nil {
		return nil, err
	}
	emotional, err := NewEmotionalPolicy(table)
	if err != nil {
		return nil, err
	}
	policies := []KillPolicy{
		FIFOPolicy{},
		LRUPolicy{},
		NewRandomPolicy(seed),
		hybrid,
		emotional,
	}
	out := map[string]Metrics{}
	for _, p := range policies {
		res, err := Run(cfg, p, events)
		if err != nil {
			return nil, err
		}
		out[p.Name()] = res.Metrics
	}
	return out, nil
}

// Package android simulates the smartphone process/memory substrate of §5:
// a process table with Android's default background-process limit, a RAM
// budget, a flash-storage model for cold starts, the stock
// first-in-first-out background killer, and the paper's Emotional
// Background Manager (App Affect Table + rank generator). The experimental
// setup mirrors Fig 7 right: Android-11-class device, 4 GB RAM, 44
// installed apps drawn from the usage study's categories.
package android

import (
	"fmt"
	"time"

	"affectedge/internal/personality"
)

// App describes one installed application.
type App struct {
	Name     string
	Category personality.Category
	// FileBytes is loaded from flash on a cold start (code + resources).
	FileBytes int64
	// MemBytes is the resident RAM footprint once running.
	MemBytes int64
	// InitTime is the fixed startup work beyond the flash read.
	InitTime time.Duration
	// System apps are never killed by the background manager.
	System bool
	// Periodic apps (e.g. the messaging app) receive background wakeups
	// frequently enough that the stock manager exempts them from FIFO
	// killing, per the paper's observation about Android Messages.
	Periodic bool
}

const (
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// Catalog returns the 44 installed apps of the experimental setup,
// covering every top-20 category with realistic footprints.
func Catalog() []App {
	mkApp := func(name string, cat personality.Category, fileMB, memMB int64, init time.Duration) App {
		return App{Name: name, Category: cat, FileBytes: fileMB * mb, MemBytes: memMB * mb, InitTime: init}
	}
	apps := []App{
		// Messaging: the periodic, never-killed workhorse plus friends.
		{Name: "messages", Category: personality.Messaging, FileBytes: 160 * mb, MemBytes: 280 * mb, InitTime: 350 * time.Millisecond, Periodic: true},
		mkApp("chat-plus", personality.Messaging, 210, 340, 450*time.Millisecond),
		mkApp("workchat", personality.Messaging, 180, 300, 400*time.Millisecond),

		mkApp("friendfeed", personality.SocialNetworks, 280, 420, 600*time.Millisecond),
		mkApp("snapshare", personality.SocialNetworks, 260, 380, 550*time.Millisecond),
		mkApp("microblog", personality.SocialNetworks, 190, 300, 450*time.Millisecond),

		mkApp("foto-editor", personality.Foto, 240, 380, 500*time.Millisecond),
		mkApp("collage", personality.Foto, 150, 260, 400*time.Millisecond),

		{Name: "settings", Category: personality.Settings, FileBytes: 60 * mb, MemBytes: 140 * mb, InitTime: 200 * time.Millisecond, System: true},

		mkApp("radio-stream", personality.MusicRadio, 170, 260, 450*time.Millisecond),
		mkApp("music-box", personality.MusicRadio, 220, 320, 500*time.Millisecond),
		mkApp("podcasts", personality.MusicRadio, 140, 220, 350*time.Millisecond),

		{Name: "clock", Category: personality.TimerClocks, FileBytes: 40 * mb, MemBytes: 90 * mb, InitTime: 150 * time.Millisecond, System: true},

		{Name: "dialer", Category: personality.Calling, FileBytes: 70 * mb, MemBytes: 160 * mb, InitTime: 200 * time.Millisecond, System: true},
		mkApp("voip-call", personality.Calling, 190, 300, 450*time.Millisecond),

		{Name: "calculator", Category: personality.Calculator, FileBytes: 25 * mb, MemBytes: 60 * mb, InitTime: 100 * time.Millisecond, System: true},

		mkApp("chrome", personality.Browser, 310, 480, 650*time.Millisecond),
		mkApp("lite-browser", personality.Browser, 120, 220, 350*time.Millisecond),
		mkApp("private-browser", personality.Browser, 180, 300, 450*time.Millisecond),

		mkApp("gmail", personality.EMail, 200, 320, 500*time.Millisecond),
		mkApp("mail-pro", personality.EMail, 160, 260, 400*time.Millisecond),

		mkApp("megashop", personality.Shopping, 270, 400, 600*time.Millisecond),
		mkApp("dealfinder", personality.Shopping, 210, 320, 500*time.Millisecond),

		mkApp("clouddrive", personality.SharingCloud, 230, 340, 500*time.Millisecond),
		mkApp("filedrop", personality.SharingCloud, 150, 240, 400*time.Millisecond),

		{Name: "camera", Category: personality.Camera, FileBytes: 130 * mb, MemBytes: 350 * mb, InitTime: 300 * time.Millisecond, System: true},
		mkApp("pro-camera", personality.Camera, 260, 420, 550*time.Millisecond),

		mkApp("video-player", personality.Video, 180, 320, 450*time.Millisecond),
		mkApp("clip-maker", personality.Video, 290, 440, 600*time.Millisecond),

		mkApp("live-tv", personality.TV, 320, 460, 650*time.Millisecond),
		mkApp("tv-guide", personality.TV, 110, 200, 300*time.Millisecond),

		mkApp("streambox", personality.VideoApps, 340, 500, 700*time.Millisecond),
		mkApp("shortclips", personality.VideoApps, 280, 420, 600*time.Millisecond),

		{Name: "gallery", Category: personality.Gallery, FileBytes: 110 * mb, MemBytes: 260 * mb, InitTime: 300 * time.Millisecond, System: true},
		mkApp("photo-vault", personality.Gallery, 170, 280, 400*time.Millisecond),

		{Name: "system-ui", Category: personality.SystemApp, FileBytes: 90 * mb, MemBytes: 200 * mb, InitTime: 150 * time.Millisecond, System: true},
		{Name: "package-installer", Category: personality.SystemApp, FileBytes: 50 * mb, MemBytes: 110 * mb, InitTime: 150 * time.Millisecond, System: true},

		mkApp("calendar", personality.CalendarApps, 90, 180, 300*time.Millisecond),
		mkApp("planner", personality.CalendarApps, 120, 220, 350*time.Millisecond),

		mkApp("ride-hail", personality.Transportation, 250, 380, 550*time.Millisecond),
		mkApp("transit-map", personality.Transportation, 200, 320, 500*time.Millisecond),
		mkApp("scooter-go", personality.Transportation, 160, 260, 400*time.Millisecond),

		mkApp("notes", personality.Foto, 80, 160, 250*time.Millisecond),
		mkApp("weather", personality.SystemApp, 70, 150, 250*time.Millisecond),
	}
	return apps
}

// CatalogNames returns the installed app names in catalog order — a
// stable, deterministic index for seeded workload generators (the fleet
// simulator picks launch targets by indexing into this slice).
func CatalogNames() []string {
	apps := Catalog()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// CatalogByName indexes the catalog.
func CatalogByName() map[string]App {
	out := map[string]App{}
	for _, a := range Catalog() {
		out[a.Name] = a
	}
	return out
}

// AppsInCategory returns catalog apps of a category, in catalog order.
func AppsInCategory(cat personality.Category) []App {
	var out []App
	for _, a := range Catalog() {
		if a.Category == cat {
			out = append(out, a)
		}
	}
	return out
}

// ValidateCatalog checks the experimental-setup invariants: 44 apps,
// unique names, every top-20 category covered.
func ValidateCatalog() error {
	apps := Catalog()
	if len(apps) != 44 {
		return fmt.Errorf("android: catalog has %d apps, want 44", len(apps))
	}
	seen := map[string]bool{}
	covered := map[personality.Category]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			return fmt.Errorf("android: duplicate app %q", a.Name)
		}
		seen[a.Name] = true
		covered[a.Category] = true
		if a.FileBytes <= 0 || a.MemBytes <= 0 {
			return fmt.Errorf("android: app %q has non-positive sizes", a.Name)
		}
	}
	for _, c := range personality.Categories() {
		if !covered[c] {
			return fmt.Errorf("android: category %s has no apps", c)
		}
	}
	return nil
}

package android

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"affectedge/internal/emotion"
)

// scriptDevice drives a deterministic launch/mood script over the first
// few catalog apps, starting at the given tick offset.
func scriptDevice(t *testing.T, d *Device, from, to int) {
	t.Helper()
	names := CatalogNames()
	moods := []emotion.Mood{emotion.CalmMood, emotion.Excited}
	for i := from; i < to; i++ {
		if err := d.SetMood(moods[i%len(moods)]); err != nil {
			t.Fatalf("SetMood: %v", err)
		}
		app := names[(i*7)%len(names)]
		if _, err := d.Launch(time.Duration(i)*time.Second, app); err != nil {
			t.Fatalf("Launch %s: %v", app, err)
		}
	}
}

func newStateDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultDeviceConfig(), LRUPolicy{})
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

// TestDeviceSnapshotRoundTrip pins the lifecycle contract: restoring a
// snapshot into a fresh device and replaying the same suffix yields a
// device indistinguishable from one that ran the whole script.
func TestDeviceSnapshotRoundTrip(t *testing.T) {
	const split, total = 40, 90

	oracle := newStateDevice(t)
	scriptDevice(t, oracle, 0, total)

	src := newStateDevice(t)
	scriptDevice(t, src, 0, split)
	st := src.ExportState()

	dst := newStateDevice(t)
	if err := dst.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	scriptDevice(t, dst, split, total)

	if !reflect.DeepEqual(dst.Metrics(), oracle.Metrics()) {
		t.Errorf("metrics diverge after restore:\n got %+v\nwant %+v", dst.Metrics(), oracle.Metrics())
	}
	if !reflect.DeepEqual(dst.ExportState(), oracle.ExportState()) {
		t.Errorf("full state diverges after restore")
	}
	if !reflect.DeepEqual(dst.Trace().Events(), oracle.Trace().Events()) {
		t.Errorf("trace logs diverge after restore: got %d events, want %d",
			len(dst.Trace().Events()), len(oracle.Trace().Events()))
	}
}

// TestDeviceExportIsolation checks the snapshot shares no mutable storage
// with the device in either direction.
func TestDeviceExportIsolation(t *testing.T) {
	d := newStateDevice(t)
	scriptDevice(t, d, 0, 30)
	st := d.ExportState()
	before := d.ExportState()

	// Mutating the snapshot must not reach the device.
	if len(st.Procs) == 0 || len(st.Trace) == 0 {
		t.Fatalf("expected a populated snapshot, got %d procs %d events", len(st.Procs), len(st.Trace))
	}
	st.Procs[0].Launches = -999
	st.Trace[0].App = "mutated"
	if !reflect.DeepEqual(d.ExportState(), before) {
		t.Fatalf("mutating an exported snapshot changed the device")
	}

	// Advancing the device must not reach an earlier snapshot.
	scriptDevice(t, d, 30, 60)
	if reflect.DeepEqual(d.ExportState(), before) {
		t.Fatalf("device did not advance")
	}
	d2 := newStateDevice(t)
	if err := d2.ImportState(before); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if !reflect.DeepEqual(d2.ExportState(), before) {
		t.Fatalf("import/export round trip not identical")
	}
}

// TestDeviceImportRejects runs the rejection table: every corrupt snapshot
// must error and leave the device bit-identical.
func TestDeviceImportRejects(t *testing.T) {
	base := func() DeviceState {
		d := newStateDevice(t)
		scriptDevice(t, d, 0, 25)
		return d.ExportState()
	}

	cases := map[string]func(st *DeviceState){
		"config mismatch": func(st *DeviceState) { st.Config.RAMBytes++ },
		"invalid mood":    func(st *DeviceState) { st.Mood = emotion.Mood(77) },
		"unknown app": func(st *DeviceState) {
			st.Procs[0].App = "com.nonexistent.app"
		},
		"duplicate process": func(st *DeviceState) {
			st.Procs = append(st.Procs, st.Procs[0])
		},
		"bad proc state": func(st *DeviceState) {
			st.Procs[0].State = ProcState(9)
		},
		"foreground proc without foreground app": func(st *DeviceState) {
			for i := range st.Procs {
				if st.Procs[i].State == StateForeground {
					st.Foreground = "other"
					return
				}
			}
		},
		"foreground app without proc entry": func(st *DeviceState) {
			kept := st.Procs[:0]
			for _, p := range st.Procs {
				if p.App != st.Foreground {
					kept = append(kept, p)
				}
			}
			st.Procs = kept
		},
		"negative launches": func(st *DeviceState) { st.Procs[0].Launches = -1 },
		"negative metrics":  func(st *DeviceState) { st.Metrics.Kills = -5 },
	}
	for name, corrupt := range cases {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			st := base()
			corrupt(&st)
			d := newStateDevice(t)
			scriptDevice(t, d, 0, 5)
			before := d.ExportState()
			if err := d.ImportState(st); err == nil {
				t.Fatalf("ImportState accepted corrupt snapshot (%s)", name)
			}
			if !reflect.DeepEqual(d.ExportState(), before) {
				t.Fatalf("rejected import mutated the device (%s)", name)
			}
		})
	}
}

// TestDeviceClasses checks the presets are valid devices and strictly
// ordered from weakest to strongest.
func TestDeviceClasses(t *testing.T) {
	classes := DeviceClasses()
	if len(classes) < 3 {
		t.Fatalf("want >=3 device classes, got %d", len(classes))
	}
	for i, cfg := range classes {
		if _, err := NewDevice(cfg, LRUPolicy{}); err != nil {
			t.Errorf("class %d rejected by NewDevice: %v", i, err)
		}
		if i == 0 {
			continue
		}
		prev := classes[i-1]
		if cfg.RAMBytes <= prev.RAMBytes || cfg.ProcessLimit < prev.ProcessLimit ||
			cfg.FlashReadBandwidth <= prev.FlashReadBandwidth {
			t.Errorf("class %d not strictly stronger than class %d", i, i-1)
		}
	}
	if !reflect.DeepEqual(classes[1], DefaultDeviceConfig()) {
		t.Errorf("middle class should be the paper's default emulator")
	}
}

package android

import (
	"testing"
	"time"

	"affectedge/internal/emotion"
)

func prefetchWorkload() []WorkloadEvent {
	// Excited-mood session revisiting the mood favorites after detours.
	pattern := []string{
		"chrome", "streambox", "voip-call", "megashop", "friendfeed",
		"snapshot", "voip-call", "chrome", "ride-hail", "clip-maker",
		"voip-call", "chrome", "ride-hail",
	}
	// Replace the typo'd app with a real one.
	pattern[5] = "snapshare"
	var events []WorkloadEvent
	for i, app := range pattern {
		events = append(events, WorkloadEvent{
			At:   time.Duration(i) * 45 * time.Second,
			App:  app,
			Mood: emotion.Excited,
		})
	}
	return events
}

func TestRunWithPrefetch(t *testing.T) {
	table, err := AffectTableFromSubjects()
	if err != nil {
		t.Fatal(err)
	}
	events := prefetchWorkload()
	pm, err := RunWithPrefetch(DefaultDeviceConfig(), table, events, DefaultPrefetchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pm.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if pm.PrefetchBytes <= 0 {
		t.Error("prefetch bytes not accounted")
	}
	if pm.Launches != len(events) {
		t.Errorf("launches %d", pm.Launches)
	}
	// Compare against the plain emotional manager: launch-time cold
	// starts must not increase (prefetch can only warm them up).
	plainPolicy, err := NewEmotionalPolicy(table)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(DefaultDeviceConfig(), plainPolicy, events)
	if err != nil {
		t.Fatal(err)
	}
	if pm.ColdStarts > plain.Metrics.ColdStarts {
		t.Errorf("prefetch increased launch-time cold starts: %d vs %d",
			pm.ColdStarts, plain.Metrics.ColdStarts)
	}
	// And launch-time bytes loaded must not increase.
	if pm.BytesLoaded > plain.Metrics.BytesLoaded {
		t.Errorf("prefetch increased launch-time loads: %d vs %d",
			pm.BytesLoaded, plain.Metrics.BytesLoaded)
	}
}

func TestRunWithPrefetchValidation(t *testing.T) {
	table, err := AffectTableFromSubjects()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithPrefetch(DefaultDeviceConfig(), table, prefetchWorkload(), PrefetchConfig{}); err == nil {
		t.Error("zero prefetch config accepted")
	}
	if _, err := RunWithPrefetch(DefaultDeviceConfig(), table, nil, DefaultPrefetchConfig()); err == nil {
		t.Error("empty workload accepted")
	}
	bad := prefetchWorkload()
	bad[0].At = time.Hour
	if _, err := RunWithPrefetch(DefaultDeviceConfig(), table, bad, DefaultPrefetchConfig()); err == nil {
		t.Error("unordered workload accepted")
	}
}

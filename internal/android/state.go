package android

import (
	"fmt"
	"sort"
	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/trace"
)

// Device snapshot/restore: the process table, foreground pointer, mood,
// accumulated metrics, and the lifecycle trace, exported as plain data so
// higher layers (the fleet session envelope) can gob-serialize a device
// and rebuild it bit-for-bit. Apps are stored by name and re-resolved
// against the catalog on import, so a snapshot never smuggles in made-up
// footprints; import validates everything before touching the device.

// ProcessState is one process-table entry in exportable form.
type ProcessState struct {
	App       string
	State     ProcState
	StartedAt time.Duration
	LastUsed  time.Duration
	Launches  int
}

// DeviceState is the full exportable device state.
type DeviceState struct {
	// Config identifies the hardware the state was captured on; import
	// refuses to load it onto a differently configured device.
	Config     DeviceConfig
	Foreground string
	Mood       emotion.Mood
	Metrics    Metrics
	// Procs are the resident processes, sorted by app name so the encoded
	// form is deterministic regardless of map iteration order.
	Procs []ProcessState
	// Trace is the recorded lifecycle history (Fig 9 data).
	Trace []trace.Event
}

// ExportState copies out the device state. The result shares nothing with
// the device, so later Launch calls cannot mutate a taken snapshot.
func (d *Device) ExportState() DeviceState {
	st := DeviceState{
		Config:     d.cfg,
		Foreground: d.foreground,
		Mood:       d.mood,
		Metrics:    d.metrics,
		Trace:      append([]trace.Event(nil), d.log.Events()...),
	}
	st.Procs = make([]ProcessState, 0, len(d.procs))
	for name, p := range d.procs {
		st.Procs = append(st.Procs, ProcessState{
			App:       name,
			State:     p.State,
			StartedAt: p.StartedAt,
			LastUsed:  p.LastUsed,
			Launches:  p.Launches,
		})
	}
	sort.Slice(st.Procs, func(i, j int) bool { return st.Procs[i].App < st.Procs[j].App })
	return st
}

// ImportState replaces the device's state with st. Every field is
// validated first — config match, catalog membership, state enums, the
// foreground invariant — and the device is only mutated once the whole
// snapshot has been accepted, so a bad snapshot can never half-apply.
func (d *Device) ImportState(st DeviceState) error {
	if st.Config != d.cfg {
		return fmt.Errorf("android: snapshot device config %+v does not match device %+v", st.Config, d.cfg)
	}
	if !st.Mood.Valid() {
		return fmt.Errorf("android: snapshot mood %d out of range", int(st.Mood))
	}
	procs := make(map[string]*Process, len(st.Procs))
	var foregroundSeen bool
	for _, p := range st.Procs {
		app, ok := d.apps[p.App]
		if !ok {
			return fmt.Errorf("android: snapshot process %q not in catalog", p.App)
		}
		if _, dup := procs[p.App]; dup {
			return fmt.Errorf("android: snapshot has duplicate process %q", p.App)
		}
		if p.State != StateForeground && p.State != StateBackground {
			return fmt.Errorf("android: snapshot process %q state %d out of range", p.App, int(p.State))
		}
		if p.State == StateForeground {
			if p.App != st.Foreground {
				return fmt.Errorf("android: snapshot process %q foreground but %q is the foreground app", p.App, st.Foreground)
			}
			foregroundSeen = true
		}
		if p.Launches < 0 || p.StartedAt < 0 {
			return fmt.Errorf("android: snapshot process %q has negative fields", p.App)
		}
		procs[p.App] = &Process{
			App:       app,
			State:     p.State,
			StartedAt: p.StartedAt,
			LastUsed:  p.LastUsed,
			Launches:  p.Launches,
		}
	}
	if st.Foreground != "" && !foregroundSeen {
		return fmt.Errorf("android: snapshot foreground %q has no process entry", st.Foreground)
	}
	if st.Metrics.Launches < 0 || st.Metrics.Kills < 0 || st.Metrics.ColdStarts < 0 ||
		st.Metrics.WarmStarts < 0 || st.Metrics.BytesLoaded < 0 || st.Metrics.PeakRAM < 0 {
		return fmt.Errorf("android: snapshot metrics have negative counters")
	}
	d.procs = procs
	d.foreground = st.Foreground
	d.mood = st.Mood
	d.metrics = st.Metrics
	d.log = trace.FromEvents(st.Trace)
	return nil
}

// DeviceClasses returns the heterogeneous hardware profiles the fleet's
// per-shard catalogs draw from: a flash-starved budget phone, the paper's
// 4 GB mid-range emulator, and a flagship with headroom. Ordered cheapest
// first so class i is strictly weaker than class i+1.
func DeviceClasses() []DeviceConfig {
	return []DeviceConfig{
		{
			RAMBytes:           2 * gb,
			SystemReserveBytes: 768 * mb,
			ProcessLimit:       10,
			FlashReadBandwidth: 180 << 20,
			WarmSwitchTime:     120 * time.Millisecond,
		},
		DefaultDeviceConfig(),
		{
			RAMBytes:           8 * gb,
			SystemReserveBytes: 1536 * mb,
			ProcessLimit:       32,
			FlashReadBandwidth: 900 << 20,
			WarmSwitchTime:     55 * time.Millisecond,
		},
	}
}

package android

import (
	"fmt"
	"sort"

	"time"

	"affectedge/internal/emotion"
	"affectedge/internal/personality"
)

// KillPolicy selects which background process to evict under pressure.
// Candidates arrive pre-filtered (background, killable) and pre-sorted by
// creation time then name.
type KillPolicy interface {
	Name() string
	Victim(candidates []*Process, now time.Duration, mood emotion.Mood) *Process
}

// FIFOPolicy is the stock Android baseline of §5.2: evict the
// longest-running background process first.
type FIFOPolicy struct{}

// Name implements KillPolicy.
func (FIFOPolicy) Name() string { return "fifo" }

// Victim implements KillPolicy: candidates are sorted oldest-first.
func (FIFOPolicy) Victim(candidates []*Process, now time.Duration, mood emotion.Mood) *Process {
	if len(candidates) == 0 {
		return nil
	}
	return candidates[0]
}

// AffectTable is the paper's Background App Affect Table: the probability
// that each app is used next, conditioned on the detected mood.
type AffectTable struct {
	prob map[emotion.Mood]map[string]float64
}

// NewAffectTable builds the table from per-mood app distributions.
func NewAffectTable(dist map[emotion.Mood]map[string]float64) (*AffectTable, error) {
	if len(dist) == 0 {
		return nil, fmt.Errorf("android: empty affect table")
	}
	t := &AffectTable{prob: map[emotion.Mood]map[string]float64{}}
	for mood, apps := range dist {
		if !mood.Valid() {
			return nil, fmt.Errorf("android: invalid mood %d in affect table", int(mood))
		}
		// Sum in sorted app order: float addition is not associative, and a
		// map-order sum perturbs the normalization divisor in the last ulp
		// between runs, which flips near-tie Victim comparisons.
		names := make([]string, 0, len(apps))
		for a := range apps {
			names = append(names, a)
		}
		sort.Strings(names)
		var sum float64
		for _, a := range names {
			if apps[a] < 0 {
				return nil, fmt.Errorf("android: negative probability in affect table")
			}
			sum += apps[a]
		}
		if sum == 0 {
			return nil, fmt.Errorf("android: mood %v has empty distribution", mood)
		}
		norm := map[string]float64{}
		for a, p := range apps {
			norm[a] = p / sum
		}
		t.prob[mood] = norm
	}
	return t, nil
}

// AffectTableFromSubjects derives the table from the personality study:
// each mood uses its proxy subject's category distribution, spread over
// the catalog apps of each category (first app in a category gets the
// larger share, mirroring one dominant app per category).
func AffectTableFromSubjects() (*AffectTable, error) {
	dist := map[emotion.Mood]map[string]float64{}
	for _, mood := range []emotion.Mood{emotion.Excited, emotion.CalmMood} {
		subj, err := personality.SubjectByMood(mood)
		if err != nil {
			return nil, err
		}
		dist[mood] = SpreadOverCatalog(subj.Usage)
	}
	return NewAffectTable(dist)
}

// SpreadOverCatalog converts a category distribution into a per-app
// distribution over the standard catalog: within a category, the first
// app takes 60% of the category mass, the rest split the remainder
// equally (one dominant app per category, as in real usage).
func SpreadOverCatalog(usage map[personality.Category]float64) map[string]float64 {
	// Accumulate in sorted category order: out's values are float sums, and
	// map-order addition perturbs them in the last ulp — enough to flip
	// near-tie kill-policy comparisons between otherwise identical runs.
	cats := make([]personality.Category, 0, len(usage))
	for cat := range usage {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	out := map[string]float64{}
	for _, cat := range cats {
		mass := usage[cat]
		apps := AppsInCategory(cat)
		if len(apps) == 0 {
			continue
		}
		if len(apps) == 1 {
			out[apps[0].Name] += mass
			continue
		}
		out[apps[0].Name] += 0.6 * mass
		rest := 0.4 * mass / float64(len(apps)-1)
		for _, a := range apps[1:] {
			out[a.Name] += rest
		}
	}
	return out
}

// Prob returns P(app | mood), 0 for unknown pairs.
func (t *AffectTable) Prob(mood emotion.Mood, app string) float64 {
	if m, ok := t.prob[mood]; ok {
		return m[app]
	}
	return 0
}

// Rank returns all known apps for a mood ordered most-likely first, the
// paper's App Rank Generator output.
func (t *AffectTable) Rank(mood emotion.Mood) []string {
	m := t.prob[mood]
	apps := make([]string, 0, len(m))
	for a := range m {
		apps = append(apps, a)
	}
	sort.Slice(apps, func(i, j int) bool {
		if m[apps[i]] != m[apps[j]] {
			return m[apps[i]] > m[apps[j]]
		}
		return apps[i] < apps[j]
	})
	return apps
}

// Learn updates the table with an observed launch (additive counts,
// renormalized lazily via Prob's relative ordering being scale-free).
func (t *AffectTable) Learn(mood emotion.Mood, app string) {
	if !mood.Valid() {
		return
	}
	m, ok := t.prob[mood]
	if !ok {
		m = map[string]float64{}
		t.prob[mood] = m
	}
	m[app]++
}

// LearnedAffectTable builds an empty table that is populated purely from
// observed launches via Learn — the online-learning variant.
func LearnedAffectTable() *AffectTable {
	return &AffectTable{prob: map[emotion.Mood]map[string]float64{}}
}

// EmotionalPolicy is the paper's Emotional Background Manager: under
// pressure it evicts the background app least likely to be used given the
// current mood (lowest affect-table probability), breaking ties FIFO.
type EmotionalPolicy struct {
	Table *AffectTable
}

// NewEmotionalPolicy wraps an affect table as a kill policy.
func NewEmotionalPolicy(table *AffectTable) (*EmotionalPolicy, error) {
	if table == nil {
		return nil, fmt.Errorf("android: nil affect table")
	}
	return &EmotionalPolicy{Table: table}, nil
}

// Name implements KillPolicy.
func (p *EmotionalPolicy) Name() string { return "emotional" }

// Victim implements KillPolicy.
func (p *EmotionalPolicy) Victim(candidates []*Process, now time.Duration, mood emotion.Mood) *Process {
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0]
	bestProb := p.Table.Prob(mood, best.App.Name)
	for _, c := range candidates[1:] {
		prob := p.Table.Prob(mood, c.App.Name)
		if prob < bestProb {
			best, bestProb = c, prob
		}
	}
	return best
}

package power

import (
	"fmt"
	"time"
)

// Battery converts the relative component savings this library measures
// into the quantity users feel: hours of battery life. The paper's
// motivation is "to extend the limited battery life of wearable devices";
// this model closes that loop.
type Battery struct {
	// CapacityWh is the battery capacity in watt-hours (a smartwatch is
	// ~1.1 Wh, a phone ~15 Wh).
	CapacityWh float64
	// BaseLoadW is the always-on draw (display, radios, sensors) that the
	// managed subsystems do not touch.
	BaseLoadW float64
	// ManagedLoadW is the subsystem draw under management (video decode,
	// app/memory) at the unmanaged baseline.
	ManagedLoadW float64
}

// SmartwatchBattery returns a watch-class model: 1.1 Wh, 25 mW base,
// 45 mW managed (media playback dominates).
func SmartwatchBattery() Battery {
	return Battery{CapacityWh: 1.1, BaseLoadW: 0.025, ManagedLoadW: 0.045}
}

// SmartphoneBattery returns a phone-class model: 15 Wh, 350 mW base,
// 400 mW managed.
func SmartphoneBattery() Battery {
	return Battery{CapacityWh: 15, BaseLoadW: 0.35, ManagedLoadW: 0.40}
}

func (b Battery) validate() error {
	if b.CapacityWh <= 0 || b.BaseLoadW < 0 || b.ManagedLoadW < 0 {
		return fmt.Errorf("power: invalid battery model %+v", b)
	}
	if b.BaseLoadW+b.ManagedLoadW == 0 {
		return fmt.Errorf("power: battery model has zero load")
	}
	return nil
}

// Lifetime returns runtime at the unmanaged baseline draw.
func (b Battery) Lifetime() (time.Duration, error) {
	if err := b.validate(); err != nil {
		return 0, err
	}
	hours := b.CapacityWh / (b.BaseLoadW + b.ManagedLoadW)
	return time.Duration(hours * float64(time.Hour)), nil
}

// LifetimeWithSaving returns runtime when the managed subsystem's draw is
// reduced by savingFrac (0..1), plus the gained duration over baseline.
func (b Battery) LifetimeWithSaving(savingFrac float64) (runtime, gained time.Duration, err error) {
	if err := b.validate(); err != nil {
		return 0, 0, err
	}
	if savingFrac < 0 || savingFrac > 1 {
		return 0, 0, fmt.Errorf("power: saving fraction %g outside [0,1]", savingFrac)
	}
	base, err := b.Lifetime()
	if err != nil {
		return 0, 0, err
	}
	managed := b.ManagedLoadW * (1 - savingFrac)
	hours := b.CapacityWh / (b.BaseLoadW + managed)
	runtime = time.Duration(hours * float64(time.Hour))
	return runtime, runtime - base, nil
}

package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestLedgerBasics(t *testing.T) {
	l := NewLedger()
	if l.Total() != 0 {
		t.Fatal("new ledger not empty")
	}
	l.MustAdd("a", 3)
	l.MustAdd("b", 1)
	l.MustAdd("a", 1)
	if l.Total() != 5 {
		t.Errorf("total = %g, want 5", l.Total())
	}
	if l.Of("a") != 4 || l.Of("b") != 1 {
		t.Error("per-component energy wrong")
	}
	if math.Abs(l.Fraction("a")-0.8) > 1e-12 {
		t.Errorf("fraction = %g, want 0.8", l.Fraction("a"))
	}
	if got := l.Components(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("components = %v", got)
	}
}

func TestLedgerRejectsNegative(t *testing.T) {
	l := NewLedger()
	if err := l.Add("x", -1); err == nil {
		t.Error("negative energy accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on negative energy")
		}
	}()
	l.MustAdd("x", -1)
}

func TestAddLedgerAndReset(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	a.MustAdd("x", 2)
	b.MustAdd("x", 3)
	b.MustAdd("y", 1)
	a.AddLedger(b)
	if a.Of("x") != 5 || a.Of("y") != 1 {
		t.Error("merge wrong")
	}
	a.Reset()
	if a.Total() != 0 {
		t.Error("reset did not clear")
	}
}

func TestSaving(t *testing.T) {
	base, opt := NewLedger(), NewLedger()
	base.MustAdd("x", 10)
	opt.MustAdd("x", 7)
	if got := opt.Saving(base); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("saving = %g, want 0.3", got)
	}
	if NewLedger().Saving(NewLedger()) != 0 {
		t.Error("zero baseline saving should be 0")
	}
}

func TestStringFormat(t *testing.T) {
	l := NewLedger()
	l.MustAdd("deblock", 31.4)
	l.MustAdd("cavlc", 68.6)
	s := l.String()
	if !strings.Contains(s, "deblock") || !strings.Contains(s, "31.4%") {
		t.Errorf("breakdown missing content:\n%s", s)
	}
}

// Property: fractions are in [0,1] and sum to 1 for non-empty ledgers.
func TestFractionProperties(t *testing.T) {
	f := func(es []float64) bool {
		l := NewLedger()
		var any bool
		for i, e := range es {
			if e < 0 {
				e = -e
			}
			// Keep magnitudes bounded so the total cannot overflow.
			e = math.Mod(e, 1e6)
			if math.IsNaN(e) {
				e = 0
			}
			if e > 0 {
				any = true
			}
			l.MustAdd(Component(rune('a'+i%26)), e)
		}
		if !any {
			return true
		}
		var sum float64
		for _, c := range l.Components() {
			fr := l.Fraction(c)
			if fr < 0 || fr > 1 {
				return false
			}
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBatteryLifetime(t *testing.T) {
	b := SmartwatchBattery()
	base, err := b.Lifetime()
	if err != nil {
		t.Fatal(err)
	}
	// 1.1 Wh / 70 mW ~ 15.7 h.
	if base < 14*time.Hour || base > 18*time.Hour {
		t.Errorf("watch baseline lifetime %v implausible", base)
	}
	run, gained, err := b.LifetimeWithSaving(0.231) // the paper's playback saving
	if err != nil {
		t.Fatal(err)
	}
	if gained <= 0 {
		t.Error("saving gained no lifetime")
	}
	if run <= base {
		t.Error("managed lifetime not above baseline")
	}
	// Zero saving changes nothing.
	same, g0, err := b.LifetimeWithSaving(0)
	if err != nil {
		t.Fatal(err)
	}
	if same != base || g0 != 0 {
		t.Error("zero saving should match baseline")
	}
	// Full saving removes the managed load entirely.
	full, _, err := b.LifetimeWithSaving(1)
	if err != nil {
		t.Fatal(err)
	}
	wantHours := b.CapacityWh / b.BaseLoadW
	if got := full.Hours(); got < wantHours*0.99 || got > wantHours*1.01 {
		t.Errorf("full-saving lifetime %.1f h, want %.1f", got, wantHours)
	}
}

func TestBatteryValidation(t *testing.T) {
	if _, err := (Battery{}).Lifetime(); err == nil {
		t.Error("zero battery accepted")
	}
	b := SmartphoneBattery()
	if _, _, err := b.LifetimeWithSaving(-0.1); err == nil {
		t.Error("negative saving accepted")
	}
	if _, _, err := b.LifetimeWithSaving(1.1); err == nil {
		t.Error("saving > 1 accepted")
	}
}

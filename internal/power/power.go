// Package power provides the component-level energy accounting used by the
// decoder and app-management simulators. The paper reports power *ratios*
// between operating modes of the same silicon, so the model tracks
// activity-weighted energy per named component; absolute units are
// arbitrary (normalized joules).
package power

import (
	"fmt"
	"sort"
	"strings"
)

// Component identifies one energy-consuming block (e.g. "cavlc", "deblock").
type Component string

// Ledger accumulates energy per component.
type Ledger struct {
	energy map[Component]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{energy: make(map[Component]float64)} }

// Add charges e energy units to component c. Negative charges are rejected
// so a miscalibrated model cannot silently create energy.
func (l *Ledger) Add(c Component, e float64) error {
	if e < 0 {
		return fmt.Errorf("power: negative energy %g for %s", e, c)
	}
	l.energy[c] += e
	return nil
}

// MustAdd is Add for callers with statically non-negative charges.
func (l *Ledger) MustAdd(c Component, e float64) {
	if err := l.Add(c, e); err != nil {
		panic(err)
	}
}

// Total returns the summed energy across components.
func (l *Ledger) Total() float64 {
	var t float64
	for _, e := range l.energy {
		t += e
	}
	return t
}

// Of returns the energy charged to one component.
func (l *Ledger) Of(c Component) float64 { return l.energy[c] }

// Fraction returns component c's share of the total (0 when empty).
func (l *Ledger) Fraction(c Component) float64 {
	t := l.Total()
	if t == 0 {
		return 0
	}
	return l.energy[c] / t
}

// Components returns the charged components in sorted order.
func (l *Ledger) Components() []Component {
	out := make([]Component, 0, len(l.energy))
	for c := range l.energy {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLedger merges another ledger's charges into l.
func (l *Ledger) AddLedger(other *Ledger) {
	for c, e := range other.energy {
		l.energy[c] += e
	}
}

// Reset clears all charges.
func (l *Ledger) Reset() { l.energy = make(map[Component]float64) }

// String renders a normalized breakdown table.
func (l *Ledger) String() string {
	var b strings.Builder
	total := l.Total()
	fmt.Fprintf(&b, "total %.4g\n", total)
	for _, c := range l.Components() {
		fmt.Fprintf(&b, "  %-12s %12.4g (%5.1f%%)\n", c, l.energy[c], 100*l.Fraction(c))
	}
	return b.String()
}

// Saving returns the fractional energy saving of this ledger versus a
// baseline: 1 - total/baseline. A zero baseline yields 0.
func (l *Ledger) Saving(baseline *Ledger) float64 {
	bt := baseline.Total()
	if bt == 0 {
		return 0
	}
	return 1 - l.Total()/bt
}

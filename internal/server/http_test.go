package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"affectedge/internal/fleet"
	"affectedge/internal/obs"
)

// newControlClient builds a fleet (not started — the control plane is
// independent of the ingest data plane) behind an httptest server.
func newControlClient(t *testing.T) (*fleet.Fleet, *httptest.Server) {
	t.Helper()
	f, err := fleet.New(testFleetConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := New(f, Config{})
	ts := httptest.NewServer(srv.ControlMux(reg))
	t.Cleanup(ts.Close)
	return f, ts
}

func do(t *testing.T, method, url string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestControlPlane(t *testing.T) {
	f, ts := newControlClient(t)

	if resp := do(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Stats carries the run fingerprint.
	resp := do(t, "GET", ts.URL+"/stats", nil)
	var stats struct {
		Sessions    int    `json:"sessions"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if stats.Sessions != 4 || len(stats.Fingerprint) != 64 {
		t.Fatalf("stats = %+v", stats)
	}

	// Session lifecycle over REST.
	if resp := do(t, "POST", ts.URL+"/sessions/100", nil); resp.StatusCode != 204 {
		t.Fatalf("add: %d", resp.StatusCode)
	}
	if !f.Connected(100) {
		t.Fatal("session 100 not connected after POST")
	}
	if resp := do(t, "POST", ts.URL+"/sessions/100", nil); resp.StatusCode != 409 {
		t.Fatalf("duplicate add: %d, want 409", resp.StatusCode)
	}
	if resp := do(t, "POST", ts.URL+"/sessions/100/disconnect", nil); resp.StatusCode != 204 {
		t.Fatalf("disconnect: %d", resp.StatusCode)
	}
	if !f.Disconnected(100) {
		t.Fatal("session 100 not parked")
	}
	if resp := do(t, "POST", ts.URL+"/sessions/100/reconnect", nil); resp.StatusCode != 204 {
		t.Fatalf("reconnect: %d", resp.StatusCode)
	}
	if resp := do(t, "DELETE", ts.URL+"/sessions/100", nil); resp.StatusCode != 204 {
		t.Fatalf("remove: %d", resp.StatusCode)
	}
	if resp := do(t, "POST", ts.URL+"/sessions/100/disconnect", nil); resp.StatusCode != 404 {
		t.Fatalf("disconnect of removed session: %d, want 404", resp.StatusCode)
	}
	if resp := do(t, "POST", ts.URL+"/sessions/nope", nil); resp.StatusCode != 400 {
		t.Fatalf("bad id: %d, want 400", resp.StatusCode)
	}

	// Snapshot → remove → restore round trip over REST.
	resp = do(t, "GET", ts.URL+"/sessions/2/snapshot", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	snap, err := io.ReadAll(resp.Body)
	if err != nil || len(snap) == 0 {
		t.Fatalf("snapshot body: %d bytes, err %v", len(snap), err)
	}
	if resp := do(t, "DELETE", ts.URL+"/sessions/2", nil); resp.StatusCode != 204 {
		t.Fatalf("remove before restore: %d", resp.StatusCode)
	}
	if resp := do(t, "POST", ts.URL+"/sessions/restore", bytes.NewReader(snap)); resp.StatusCode != 204 {
		t.Fatalf("restore: %d", resp.StatusCode)
	}
	if !f.Connected(2) {
		t.Fatal("session 2 not connected after restore")
	}
	// Restoring an already-present session conflicts.
	if resp := do(t, "POST", ts.URL+"/sessions/restore", bytes.NewReader(snap)); resp.StatusCode != 409 {
		t.Fatalf("double restore: %d, want 409", resp.StatusCode)
	}

	// Counters and metrics are live JSON.
	resp = do(t, "GET", ts.URL+"/counters", nil)
	var c Counters
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatalf("counters decode: %v", err)
	}
	if resp := do(t, "GET", ts.URL+"/metrics", nil); resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
}

package server

import (
	"fmt"
	"testing"

	"affectedge/internal/fleet"
	"affectedge/internal/parallel"
)

// TestTCPFingerprintMatchesInProcess is the PR's keystone: the same
// seeded traffic driven through TCP (HELLO handshakes, frame encode/
// decode, per-connection goroutines, reply queues) and driven straight
// into fleet.Observe must leave the two fleets with identical
// Stats.Fingerprint — the network path adds no semantics.
//
// Determinism liturgy: MaxBatch 1 (VerifyConfig) makes the live path's
// batching accounting timing-independent; QueueDepth is sized to a
// shard's whole traffic share (sessions/shard × obs), so a queue can
// never overflow and Drops — a fingerprint field — is structurally zero
// on both sides regardless of how fast producers outrun the shard
// worker; everything else in the fingerprint is per-session state, and
// sessions are closed systems fed identical observation sequences.
func TestTCPFingerprintMatchesInProcess(t *testing.T) {
	const (
		sessions = 48
		shards   = 8
		obs      = 40
		seed     = 777
		trafSeed = 99
		// Every shard serves sessions/shards sessions of obs observations:
		// a queue this deep cannot drop.
		queueDepth = (sessions / shards) * obs
	)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			old := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(old)

			load := LoadConfig{
				Sessions: sessions, Obs: obs, ChunkEvery: 5, Seed: trafSeed,
			}

			// TCP side.
			fA, err := fleet.New(VerifyConfig(sessions, shards, queueDepth, seed))
			if err != nil {
				t.Fatal(err)
			}
			load.Dim = fA.FeatureDim()
			if err := fA.Start(); err != nil {
				t.Fatal(err)
			}
			srv := New(fA, Config{})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			load.Addr = addr.String()
			resA, err := RunLoad(load)
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			srv.Close()
			fA.Close()
			stA := fA.Stats()

			// In-process side: identical fleet config, identical traffic.
			fB, err := fleet.New(VerifyConfig(sessions, shards, queueDepth, seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := fB.Start(); err != nil {
				t.Fatal(err)
			}
			resB, err := DirectLoad(fB, load)
			if err != nil {
				t.Fatalf("DirectLoad: %v", err)
			}
			fB.Close()
			stB := fB.Stats()

			if resA.Acked != sessions*obs || resB.Acked != sessions*obs {
				t.Fatalf("acked TCP %d direct %d, want %d both", resA.Acked, resB.Acked, sessions*obs)
			}
			if stA.Drops != 0 || stB.Drops != 0 {
				t.Fatalf("drops TCP %d direct %d, want 0 both (fingerprint counts drops)",
					stA.Drops, stB.Drops)
			}
			fpA, fpB := stA.Fingerprint(), stB.Fingerprint()
			if fpA != fpB {
				t.Errorf("fingerprint mismatch:\n  tcp    %s\n  direct %s\n  tcp stats    %+v\n  direct stats %+v",
					fpA, fpB, *stA, *stB)
			}
		})
	}
}

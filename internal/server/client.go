package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"affectedge/internal/wire"
)

// Client is a synchronous, window-1 protocol client: every request waits
// for its ACK/ERR before the next is sent, so replies pair with requests
// by order and per-session observation order on the server is exactly
// send order. One Client drives one session over one connection; it is
// not safe for concurrent use (the loadgen runs one per goroutine).
type Client struct {
	nc      net.Conn
	sp      wire.Splitter
	in      wire.Frame // reply decode target, reused
	buf     []byte     // encode buffer, reused
	rbuf    []byte     // read buffer, reused
	seq     uint64
	timeout time.Duration
}

// RemoteError is a server ERR reply surfaced as a client-side error. The
// Code preserves the protocol-level classification (backpressure vs
// unknown session vs ...) so callers can retry or give up typedly.
type RemoteError struct {
	Code wire.Code
	Seq  uint64
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: remote error code %d on seq %d: %s", e.Code, e.Seq, e.Msg)
}

// IsBackpressure reports whether err is a server NACK for a full shard
// queue — the one retryable RemoteError.
func IsBackpressure(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeBackpressure
}

// Dial connects to addr, performs the HELLO handshake for session id with
// feature dimensionality dim, and returns a ready client. timeout bounds
// every round trip (0 means 30s).
func Dial(addr string, session int, dim int, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, rbuf: make([]byte, 8<<10), timeout: timeout}
	hello := wire.Frame{
		Type:    wire.Hello,
		Version: wire.Version,
		Session: uint64(session),
		Dim:     uint16(dim),
	}
	if _, err := c.roundTrip(&hello, 0); err != nil {
		nc.Close()
		return nil, fmt.Errorf("server: handshake: %w", err)
	}
	return c, nil
}

// Observe sends one whole observation and waits for the verdict: nil
// means ACKed (in a shard queue), a *RemoteError carries the server's
// refusal — IsBackpressure identifies the retryable case.
func (c *Client) Observe(at time.Duration, vals []float64) error {
	c.seq++
	f := wire.Frame{Type: wire.Observe, Seq: c.seq, At: int64(at), Vals: vals}
	_, err := c.roundTrip(&f, c.seq)
	return err
}

// ObserveChunks sends one observation as a fragment sequence (one
// OBSERVE_CHUNK frame per fragment, FlagLast on the final one) and waits
// for the single verdict of the assembled observation.
func (c *Client) ObserveChunks(at time.Duration, chunks ...[]float64) error {
	if len(chunks) == 0 {
		return errors.New("server: ObserveChunks needs at least one chunk")
	}
	c.seq++
	for i, ch := range chunks {
		f := wire.Frame{
			Type: wire.ObserveChunk,
			Seq:  c.seq,
			At:   int64(at),
			Last: i == len(chunks)-1,
			Vals: ch,
		}
		if err := c.send(&f); err != nil {
			return err
		}
	}
	_, err := c.recv(c.seq)
	return err
}

// Snapshot requests the session's versioned snapshot and returns the gob
// bytes (feed to fleet.RestoreSession). The returned slice is the
// client's reusable reply buffer — copy it to keep it past the next call.
func (c *Client) Snapshot() ([]byte, error) {
	c.seq++
	f := wire.Frame{Type: wire.SnapshotReq, Seq: c.seq}
	return c.roundTrip(&f, c.seq)
}

// Seq returns the last sequence number used.
func (c *Client) Seq() uint64 { return c.seq }

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) roundTrip(f *wire.Frame, wantSeq uint64) ([]byte, error) {
	if err := c.send(f); err != nil {
		return nil, err
	}
	return c.recv(wantSeq)
}

func (c *Client) send(f *wire.Frame) error {
	var err error
	c.buf, err = wire.Append(c.buf[:0], f)
	if err != nil {
		return err
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	_, err = c.nc.Write(c.buf)
	return err
}

// recv reads frames until one complete reply arrives and maps it: ACK →
// (data, nil), ERR → *RemoteError. Window-1 discipline means the first
// reply is the one for the request just sent; a seq mismatch is a
// protocol bug and surfaces as an error.
func (c *Client) recv(wantSeq uint64) ([]byte, error) {
	var readErr error // deferred: a Read can return data and an error together
	for {
		ok, err := c.sp.Next(&c.in)
		if err != nil {
			return nil, err
		}
		if ok {
			switch c.in.Type {
			case wire.Ack:
				if c.in.Seq != wantSeq {
					return nil, fmt.Errorf("server: ACK for seq %d, want %d", c.in.Seq, wantSeq)
				}
				return c.in.Data, nil
			case wire.Err:
				return nil, &RemoteError{Code: c.in.Code, Seq: c.in.Seq, Msg: c.in.Msg}
			default:
				return nil, fmt.Errorf("server: unexpected %s reply", c.in.Type)
			}
		}
		if readErr != nil {
			return nil, readErr
		}
		c.nc.SetReadDeadline(time.Now().Add(c.timeout))
		n, err := c.nc.Read(c.rbuf)
		if n > 0 {
			if ferr := c.sp.Feed(c.rbuf[:n]); ferr != nil {
				return nil, ferr
			}
		}
		readErr = err
		if n == 0 && err != nil {
			return nil, err
		}
	}
}

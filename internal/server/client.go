package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"affectedge/internal/obs"
	"affectedge/internal/wire"
)

// Client is a synchronous, window-1 protocol client: every request waits
// for its ACK/ERR before the next is sent, so replies pair with requests
// by order and per-session observation order on the server is exactly
// send order. One Client drives one session over one connection; it is
// not safe for concurrent use (the loadgen runs one per goroutine).
//
// StartBatching switches on a second, pipelined mode (ObserveQueued /
// Flush): observations accumulate into OBSERVE_BATCH frames and up to
// Window frames ride the wire unacknowledged, amortizing one round trip
// over BatchSize observations. The two modes must not interleave while
// batches are in flight — Flush first.
type Client struct {
	nc      net.Conn
	sp      wire.Splitter
	in      wire.Frame // reply decode target, reused
	buf     []byte     // encode buffer, reused
	rbuf    []byte     // read buffer, reused
	seq     uint64
	timeout time.Duration

	// pipelined batching state (inert until StartBatching)
	bcfg      BatchConfig
	pend      []wire.BatchObs // accumulating batch; Vals are owned copies
	pendSince time.Time       // when pend went non-empty (linger clock)
	inflight  []*sentBatch    // FIFO of unacknowledged batches
	batchFree []*sentBatch    // recycled sentBatch shells
	valsFree  [][]float64     // recycled observation payload buffers
	bAcked    int64
	bNacked   int64
	bFrames   int64
}

// BatchConfig tunes the pipelined batching mode. Zero fields default:
// BatchSize 16, Window 4, Linger 0 (flushes are size-triggered only; a
// positive Linger also flushes a partial batch once its oldest
// observation has waited that long, trading latency for frame fill).
type BatchConfig struct {
	BatchSize int
	Window    int
	Linger    time.Duration
	// Latency, when non-nil, records the amortized per-observation cost
	// in microseconds: each item of an acknowledged batch observes
	// rtt/len(batch).
	Latency *obs.Histogram
}

// sentBatch retains a flushed frame's observations until its ACK_BATCH
// arrives, so bitmap-NACKed items can be requeued with their payloads.
type sentBatch struct {
	items []wire.BatchObs
	sent  time.Time
}

// RemoteError is a server ERR reply surfaced as a client-side error. The
// Code preserves the protocol-level classification (backpressure vs
// unknown session vs ...) so callers can retry or give up typedly.
type RemoteError struct {
	Code wire.Code
	Seq  uint64
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: remote error code %d on seq %d: %s", e.Code, e.Seq, e.Msg)
}

// IsBackpressure reports whether err is a server NACK for a full shard
// queue — the one retryable RemoteError.
func IsBackpressure(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeBackpressure
}

// Dial connects to addr, performs the HELLO handshake for session id with
// feature dimensionality dim, and returns a ready client. timeout bounds
// every round trip (0 means 30s).
func Dial(addr string, session int, dim int, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, rbuf: make([]byte, 8<<10), timeout: timeout}
	hello := wire.Frame{
		Type:    wire.Hello,
		Version: wire.Version,
		Session: uint64(session),
		Dim:     uint16(dim),
	}
	if _, err := c.roundTrip(&hello, 0); err != nil {
		nc.Close()
		return nil, fmt.Errorf("server: handshake: %w", err)
	}
	return c, nil
}

// Observe sends one whole observation and waits for the verdict: nil
// means ACKed (in a shard queue), a *RemoteError carries the server's
// refusal — IsBackpressure identifies the retryable case.
func (c *Client) Observe(at time.Duration, vals []float64) error {
	c.seq++
	f := wire.Frame{Type: wire.Observe, Seq: c.seq, At: int64(at), Vals: vals}
	_, err := c.roundTrip(&f, c.seq)
	return err
}

// ObserveChunks sends one observation as a fragment sequence (one
// OBSERVE_CHUNK frame per fragment, FlagLast on the final one) and waits
// for the single verdict of the assembled observation.
func (c *Client) ObserveChunks(at time.Duration, chunks ...[]float64) error {
	if len(chunks) == 0 {
		return errors.New("server: ObserveChunks needs at least one chunk")
	}
	c.seq++
	for i, ch := range chunks {
		f := wire.Frame{
			Type: wire.ObserveChunk,
			Seq:  c.seq,
			At:   int64(at),
			Last: i == len(chunks)-1,
			Vals: ch,
		}
		if err := c.send(&f); err != nil {
			return err
		}
	}
	_, err := c.recv(c.seq)
	return err
}

// StartBatching switches the client into pipelined batching mode with
// the given tuning. Call once, before the first ObserveQueued.
func (c *Client) StartBatching(cfg BatchConfig) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.BatchSize > wire.MaxBatch {
		cfg.BatchSize = wire.MaxBatch
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	c.bcfg = cfg
}

// ObserveQueued appends one observation to the accumulating batch
// (copying vals) and flushes when the batch fills or the linger deadline
// passes. It blocks only when the in-flight window is full, and then
// exactly until the oldest batch resolves. A returned error is hard
// (protocol or I/O) — backpressure never surfaces here; NACKed items are
// requeued and retried transparently.
func (c *Client) ObserveQueued(at time.Duration, vals []float64) error {
	if c.bcfg.BatchSize == 0 {
		return errors.New("server: ObserveQueued before StartBatching")
	}
	if c.bcfg.Linger > 0 && len(c.pend) > 0 && time.Since(c.pendSince) >= c.bcfg.Linger {
		if err := c.flushBatch(); err != nil {
			return err
		}
	}
	if len(c.pend) == 0 {
		c.pendSince = time.Now()
	}
	var v []float64
	if n := len(c.valsFree); n > 0 && cap(c.valsFree[n-1]) >= len(vals) {
		v = c.valsFree[n-1][:len(vals)]
		c.valsFree = c.valsFree[:n-1]
	} else {
		v = make([]float64, len(vals))
	}
	copy(v, vals)
	c.pend = append(c.pend, wire.BatchObs{At: int64(at), Vals: v})
	if len(c.pend) >= c.bcfg.BatchSize {
		return c.flushBatch()
	}
	return nil
}

// Flush drains the batching pipeline: sends any partial batch and waits
// for every in-flight frame, retrying NACKed items until all are ACKed.
// After a nil return the server has accepted every queued observation.
func (c *Client) Flush() error {
	for len(c.pend) > 0 || len(c.inflight) > 0 {
		if len(c.pend) > 0 {
			if err := c.flushBatch(); err != nil {
				return err
			}
			continue
		}
		nacked, err := c.awaitBatch()
		if err != nil {
			return err
		}
		if nacked > 0 && len(c.inflight) == 0 {
			// The whole pipeline just drained into NACKs: the shard
			// queue is full, so back off like the window-1 retry loop
			// before re-sending.
			time.Sleep(50 * time.Microsecond)
		}
	}
	return nil
}

// BatchStats reports the batching mode's accounting: observations ACKed,
// bitmap NACKs received (each retried), and OBSERVE_BATCH frames sent.
func (c *Client) BatchStats() (acked, nacked, frames int64) {
	return c.bAcked, c.bNacked, c.bFrames
}

// flushBatch turns pend into one OBSERVE_BATCH frame and sends it,
// first waiting out a full in-flight window. Requeued NACK retries can
// push pend past BatchSize; a frame still carries at most wire.MaxBatch
// items and the remainder stays pending.
func (c *Client) flushBatch() error {
	for len(c.inflight) >= c.bcfg.Window {
		if _, err := c.awaitBatch(); err != nil {
			return err
		}
	}
	n := len(c.pend)
	if n > wire.MaxBatch {
		n = wire.MaxBatch
	}
	var sb *sentBatch
	if k := len(c.batchFree); k > 0 {
		sb = c.batchFree[k-1]
		c.batchFree = c.batchFree[:k-1]
	} else {
		sb = &sentBatch{}
	}
	sb.items = append(sb.items[:0], c.pend[:n]...)
	c.pend = c.pend[:copy(c.pend, c.pend[n:])]
	for i := range sb.items {
		c.seq++
		sb.items[i].Seq = c.seq
	}
	f := wire.Frame{Type: wire.ObserveBatch, Batch: sb.items}
	sb.sent = time.Now()
	if err := c.send(&f); err != nil {
		return err
	}
	c.bFrames++
	c.inflight = append(c.inflight, sb)
	return nil
}

// awaitBatch resolves the oldest in-flight batch against the next reply
// frame. ACK_BATCH: clean items count as acked, bitmap-NACKed items are
// requeued (payload buffers move back to pend, no copy) and the count is
// returned. ERR is a hard failure — batched backpressure is always
// per-item, so a frame-level error means the whole batch was refused.
func (c *Client) awaitBatch() (nacked int, err error) {
	if len(c.inflight) == 0 {
		return 0, errors.New("server: awaitBatch with nothing in flight")
	}
	if err := c.readFrame(); err != nil {
		return 0, err
	}
	sb := c.inflight[0]
	c.inflight = c.inflight[:copy(c.inflight, c.inflight[1:])]
	switch c.in.Type {
	case wire.AckBatch:
		if c.in.Seq != sb.items[0].Seq || c.in.Count != len(sb.items) {
			return 0, fmt.Errorf("server: ACK_BATCH seq %d count %d, want %d count %d",
				c.in.Seq, c.in.Count, sb.items[0].Seq, len(sb.items))
		}
		per := time.Since(sb.sent) / time.Duration(len(sb.items))
		for i := range sb.items {
			c.bcfg.Latency.Observe(per.Microseconds())
			if wire.Nacked(c.in.Bitmap, i) {
				nacked++
				if len(c.pend) == 0 {
					c.pendSince = time.Now()
				}
				c.pend = append(c.pend, wire.BatchObs{At: sb.items[i].At, Vals: sb.items[i].Vals})
			} else {
				c.valsFree = append(c.valsFree, sb.items[i].Vals)
			}
		}
		c.bAcked += int64(len(sb.items) - nacked)
		c.bNacked += int64(nacked)
		c.batchFree = append(c.batchFree, sb)
		return nacked, nil
	case wire.Err:
		return 0, &RemoteError{Code: c.in.Code, Seq: c.in.Seq, Msg: c.in.Msg}
	default:
		return 0, fmt.Errorf("server: unexpected %s reply to OBSERVE_BATCH", c.in.Type)
	}
}

// Snapshot requests the session's versioned snapshot and returns the gob
// bytes (feed to fleet.RestoreSession). The returned slice is the
// client's reusable reply buffer — copy it to keep it past the next call.
func (c *Client) Snapshot() ([]byte, error) {
	c.seq++
	f := wire.Frame{Type: wire.SnapshotReq, Seq: c.seq}
	return c.roundTrip(&f, c.seq)
}

// Seq returns the last sequence number used.
func (c *Client) Seq() uint64 { return c.seq }

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) roundTrip(f *wire.Frame, wantSeq uint64) ([]byte, error) {
	if err := c.send(f); err != nil {
		return nil, err
	}
	return c.recv(wantSeq)
}

func (c *Client) send(f *wire.Frame) error {
	var err error
	c.buf, err = wire.Append(c.buf[:0], f)
	if err != nil {
		return err
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	_, err = c.nc.Write(c.buf)
	return err
}

// recv reads one complete reply and maps it: ACK → (data, nil), ERR →
// *RemoteError. Window-1 discipline means the first reply is the one for
// the request just sent; a seq mismatch is a protocol bug and surfaces
// as an error.
func (c *Client) recv(wantSeq uint64) ([]byte, error) {
	if err := c.readFrame(); err != nil {
		return nil, err
	}
	switch c.in.Type {
	case wire.Ack:
		if c.in.Seq != wantSeq {
			return nil, fmt.Errorf("server: ACK for seq %d, want %d", c.in.Seq, wantSeq)
		}
		return c.in.Data, nil
	case wire.Err:
		return nil, &RemoteError{Code: c.in.Code, Seq: c.in.Seq, Msg: c.in.Msg}
	default:
		return nil, fmt.Errorf("server: unexpected %s reply", c.in.Type)
	}
}

// readFrame blocks until the splitter yields the next complete frame
// into c.in, feeding it socket reads as needed.
func (c *Client) readFrame() error {
	var readErr error // deferred: a Read can return data and an error together
	for {
		ok, err := c.sp.Next(&c.in)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if readErr != nil {
			return readErr
		}
		c.nc.SetReadDeadline(time.Now().Add(c.timeout))
		n, err := c.nc.Read(c.rbuf)
		if n > 0 {
			if ferr := c.sp.Feed(c.rbuf[:n]); ferr != nil {
				return ferr
			}
		}
		readErr = err
		if n == 0 && err != nil {
			return err
		}
	}
}

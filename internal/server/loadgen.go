package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"affectedge/internal/fleet"
	"affectedge/internal/obs"
)

// LoadConfig drives RunLoad/DirectLoad: N concurrent sessions, each
// sending Obs observations of deterministic seeded traffic. The same
// config fed to both produces byte-identical per-session observation
// sequences, which is what makes the TCP-vs-in-process fingerprint
// comparison meaningful.
type LoadConfig struct {
	Addr     string // TCP address (RunLoad only)
	Sessions int    // session ids 0..Sessions-1, already added to the fleet
	Obs      int    // observations per session
	Dim      int    // feature dimensionality (fleet.FeatureDim)
	// ChunkEvery > 0 sends every ChunkEvery-th observation as two
	// fragments through the chunked path (OBSERVE_CHUNK over TCP,
	// ObserveChunks in-process). Mutually exclusive with Batch.
	ChunkEvery int
	// Batch > 0 switches RunLoad sessions to the pipelined batching
	// client (OBSERVE_BATCH frames of Batch observations, Window frames
	// in flight, coalesced ACK_BATCH replies with per-item NACK retry).
	// DirectLoad ignores it — the in-process twin is the semantic
	// baseline either way.
	Batch  int
	Window int           // in-flight OBSERVE_BATCH frames (default 4)
	Linger time.Duration // partial-batch flush deadline (0: size-only)
	Seed   int64
	Timeout    time.Duration // per round trip (default 30s)
	// DialBurst bounds concurrent dial attempts while ramping (default
	// 512) so a 10k-session ramp doesn't overflow the accept backlog;
	// established connections all stay open concurrently.
	DialBurst int
	// Latency, when non-nil, records each observation round trip in
	// microseconds (nil-safe: an unwired histogram is a no-op).
	Latency *obs.Histogram
}

// LoadResult is the generator's accounting. The invariant callers check:
// Acked == Sessions*Obs (every observation lands; NACKs are retried) and
// Nacked counts only backpressure round trips, each followed by a retry.
type LoadResult struct {
	Sent    int64         `json:"sent"`    // observation round trips, retries included
	Acked   int64         `json:"acked"`   // observations accepted
	Nacked  int64         `json:"nacked"`  // backpressure NACKs (all retried)
	Elapsed time.Duration `json:"elapsed"` // wall time of the observe phase
}

// trafficRNG derives session id's private RNG from the run seed —
// SplitMix-style odd-constant mixing so adjacent ids get uncorrelated
// streams.
func trafficRNG(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(int64(uint64(seed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15)))
}

// nextObs synthesizes observation i for one session: a standard-normal
// feature vector (refilled in place) stamped with a virtual timestamp.
func nextObs(rng *rand.Rand, i int, vals []float64) time.Duration {
	for j := range vals {
		vals[j] = rng.NormFloat64()
	}
	return time.Duration(i+1) * time.Millisecond
}

func (cfg LoadConfig) normalize() (LoadConfig, error) {
	if cfg.Sessions <= 0 || cfg.Obs <= 0 || cfg.Dim <= 0 {
		return cfg, fmt.Errorf("server: load config needs sessions, obs, dim > 0 (got %d, %d, %d)",
			cfg.Sessions, cfg.Obs, cfg.Dim)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.DialBurst <= 0 {
		cfg.DialBurst = 512
	}
	if cfg.Batch > 0 && cfg.ChunkEvery > 0 {
		return cfg, errors.New("server: load config: Batch and ChunkEvery are mutually exclusive")
	}
	return cfg, nil
}

// RunLoad drives cfg.Sessions concurrent window-1 clients against a
// running ingest server. All sessions connect first (dial concurrency
// bounded by DialBurst, connections held open), then send in lockstep
// release: every observation is retried through backpressure NACKs until
// ACKed, so a clean run loses nothing. The first hard error (anything
// but backpressure) aborts that session and surfaces in the returned
// error; the other sessions run to completion.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	res := &LoadResult{}
	var (
		wg       sync.WaitGroup
		dialSem  = make(chan struct{}, cfg.DialBurst)
		ready    sync.WaitGroup
		start    = make(chan struct{})
		firstErr atomic.Pointer[error]
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, &err)
	}
	ready.Add(cfg.Sessions)
	wg.Add(cfg.Sessions)
	for id := 0; id < cfg.Sessions; id++ {
		go func(id int) {
			defer wg.Done()
			dialSem <- struct{}{}
			cli, err := Dial(cfg.Addr, id, cfg.Dim, cfg.Timeout)
			<-dialSem
			ready.Done()
			if err != nil {
				fail(fmt.Errorf("session %d: %w", id, err))
				return
			}
			defer cli.Close()
			<-start
			rng := trafficRNG(cfg.Seed, id)
			vals := make([]float64, cfg.Dim)
			if cfg.Batch > 0 {
				cli.StartBatching(BatchConfig{
					BatchSize: cfg.Batch, Window: cfg.Window,
					Linger: cfg.Linger, Latency: cfg.Latency,
				})
				for i := 0; i < cfg.Obs; i++ {
					at := nextObs(rng, i, vals)
					if err := cli.ObserveQueued(at, vals); err != nil {
						fail(fmt.Errorf("session %d obs %d: %w", id, i, err))
						return
					}
				}
				if err := cli.Flush(); err != nil {
					fail(fmt.Errorf("session %d flush: %w", id, err))
					return
				}
				acked, nacked, _ := cli.BatchStats()
				atomic.AddInt64(&res.Sent, acked+nacked)
				atomic.AddInt64(&res.Acked, acked)
				atomic.AddInt64(&res.Nacked, nacked)
				return
			}
			for i := 0; i < cfg.Obs; i++ {
				at := nextObs(rng, i, vals)
				chunked := cfg.ChunkEvery > 0 && (i+1)%cfg.ChunkEvery == 0
				for {
					t0 := time.Now()
					if chunked {
						half := cfg.Dim / 2
						err = cli.ObserveChunks(at, vals[:half], vals[half:])
					} else {
						err = cli.Observe(at, vals)
					}
					atomic.AddInt64(&res.Sent, 1)
					cfg.Latency.Observe(time.Since(t0).Microseconds())
					if err == nil {
						atomic.AddInt64(&res.Acked, 1)
						break
					}
					if IsBackpressure(err) {
						atomic.AddInt64(&res.Nacked, 1)
						time.Sleep(50 * time.Microsecond)
						continue
					}
					fail(fmt.Errorf("session %d obs %d: %w", id, i, err))
					return
				}
			}
		}(id)
	}
	ready.Wait() // every session holds its connection (or failed to dial)
	t0 := time.Now()
	close(start)
	wg.Wait()
	res.Elapsed = time.Since(t0)
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	return res, nil
}

// DirectLoad is RunLoad's in-process twin: identical traffic (same seed,
// same per-session RNG streams, same chunk schedule) fed straight into
// fleet.Observe/ObserveChunks with the same retry-through-backpressure
// discipline. Running both against equally-configured fleets and
// comparing Stats.Fingerprint proves the network path is semantics-free.
func DirectLoad(f *fleet.Fleet, cfg LoadConfig) (*LoadResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	res := &LoadResult{}
	var (
		wg       sync.WaitGroup
		firstErr atomic.Pointer[error]
	)
	wg.Add(cfg.Sessions)
	t0 := time.Now()
	for id := 0; id < cfg.Sessions; id++ {
		go func(id int) {
			defer wg.Done()
			rng := trafficRNG(cfg.Seed, id)
			vals := make([]float64, cfg.Dim)
			for i := 0; i < cfg.Obs; i++ {
				at := nextObs(rng, i, vals)
				chunked := cfg.ChunkEvery > 0 && (i+1)%cfg.ChunkEvery == 0
				for {
					var err error
					if chunked {
						half := cfg.Dim / 2
						err = f.ObserveChunks(id, at, vals[:half], vals[half:])
					} else {
						err = f.Observe(id, at, vals)
					}
					atomic.AddInt64(&res.Sent, 1)
					if err == nil {
						atomic.AddInt64(&res.Acked, 1)
						break
					}
					if errors.Is(err, fleet.ErrBackpressure) {
						atomic.AddInt64(&res.Nacked, 1)
						time.Sleep(50 * time.Microsecond)
						continue
					}
					e := fmt.Errorf("session %d obs %d: %w", id, i, err)
					firstErr.CompareAndSwap(nil, &e)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	res.Elapsed = time.Since(t0)
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	return res, nil
}

// VerifyConfig returns the fleet configuration both sides of a
// fingerprint comparison must share: MaxBatch 1 pins the live path's
// batching accounting (every coalesce round is exactly one row), which
// is the one timing-dependent degree of freedom in Stats.Fingerprint;
// everything else in the fingerprint is already order-independent
// because sessions are closed systems and the int8 kernels are bit-exact
// regardless of batch composition.
func VerifyConfig(sessions, shards, queueDepth int, seed int64) fleet.Config {
	return fleet.Config{
		Sessions:   sessions,
		Shards:     shards,
		QueueDepth: queueDepth,
		MaxBatch:   1,
		Seed:       seed,
	}
}

package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"affectedge/internal/fleet"
	"affectedge/internal/parallel"
	"affectedge/internal/wire"
)

// TestLoopbackAccountingBatched is TestLoopbackAccounting's pipelined
// twin: a full concurrent load through OBSERVE_BATCH frames must keep
// every ledger balanced — client sent == acked + nacked, client acks ==
// server Accepted == fleet-applied, per-item NACK bits == fleet drops —
// and leak no goroutine. Run under -race this also exercises the
// reader → fleet → writer handoff of whole batches concurrently.
func TestLoopbackAccountingBatched(t *testing.T) {
	leak := checkGoroutines(t)
	const sessions, obs = 16, 50
	f, srv, addr := newTestServer(t, testFleetConfig(sessions), Config{})
	cfg := LoadConfig{
		Addr: addr, Sessions: sessions, Obs: obs,
		Dim: f.FeatureDim(), Seed: 7,
		Batch: 8, Window: 4, Linger: time.Millisecond,
	}
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Acked != sessions*obs {
		t.Errorf("acked %d, want %d", res.Acked, sessions*obs)
	}
	if res.Sent != res.Acked+res.Nacked {
		t.Errorf("sent %d != acked %d + nacked %d", res.Sent, res.Acked, res.Nacked)
	}
	srv.Close()
	f.Close() // drain: every ACKed observation must reach its session
	c := srv.Counters()
	if c.Accepted != res.Acked || c.Nacked != res.Nacked {
		t.Errorf("server counters (accepted %d, nacked %d) != client (acked %d, nacked %d)",
			c.Accepted, c.Nacked, res.Acked, res.Nacked)
	}
	if c.BatchesIn == 0 || c.BatchObs != res.Sent {
		t.Errorf("batches_in %d batch_obs %d, want > 0 and == sent %d",
			c.BatchesIn, c.BatchObs, res.Sent)
	}
	if c.Flushes == 0 || c.Flushes > c.FramesOut {
		t.Errorf("flushes %d vs frames_out %d: want 0 < flushes <= frames_out",
			c.Flushes, c.FramesOut)
	}
	st := f.Stats()
	if st.Observations+st.LateDrops != c.Accepted {
		t.Errorf("fleet observations %d + late drops %d != accepted %d",
			st.Observations, st.LateDrops, c.Accepted)
	}
	if st.Drops != res.Nacked {
		t.Errorf("fleet drops %d != client nacks %d", st.Drops, res.Nacked)
	}
	leak()
}

// TestBatchPartialNackRetry pins the retry loop against a deterministic
// partial NACK: an unstarted fleet with a depth-4 queue admits exactly 4
// of an 8-item batch, the ACK_BATCH bitmap NACKs the tail, and once the
// fleet starts draining, Flush retries the NACKed items to full
// acceptance — nothing lost, nothing duplicated.
func TestBatchPartialNackRetry(t *testing.T) {
	f, err := fleet.New(fleet.Config{Sessions: 1, Shards: 1, Seed: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(f, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		f.Close()
	}()
	dim := f.FeatureDim()
	cli, err := Dial(addr.String(), 0, dim, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.StartBatching(BatchConfig{BatchSize: 8, Window: 1})
	vals := make([]float64, dim)
	for i := 0; i < 8; i++ {
		// The 8th append fills the batch and flushes the frame; window 1
		// means it is now in flight, unacknowledged by the client.
		if err := cli.ObserveQueued(time.Duration(i+1)*time.Millisecond, vals); err != nil {
			t.Fatalf("queue %d: %v", i, err)
		}
	}
	// Start the fleet so the retry has somewhere to go, then drain the
	// pipeline: the first ACK_BATCH carries 4 NACK bits, Flush requeues
	// and resends until everything is accepted.
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	acked, nacked, frames := cli.BatchStats()
	if acked != 8 {
		t.Errorf("acked %d, want 8", acked)
	}
	if nacked < 4 {
		t.Errorf("nacked %d, want >= 4 (depth-4 queue saw an 8-item batch)", nacked)
	}
	if frames < 2 {
		t.Errorf("frames %d, want >= 2 (initial batch + at least one retry)", frames)
	}
	srv.Close()
	f.Close()
	if got := f.Stats().Observations; got != 8 {
		t.Errorf("fleet applied %d, want 8", got)
	}
}

// TestObserveBatchWire drives hand-built OBSERVE_BATCH frames through a
// raw connection, pinning the exact reply shapes: a clean batch gets one
// ACK_BATCH with a clear bitmap, a partially admitted batch gets the
// precise NACK bits, a wrong-width item refuses the whole frame with a
// kept-connection CodeDim ERR, and a zero-item batch is a protocol error.
func TestObserveBatchWire(t *testing.T) {
	f, err := fleet.New(fleet.Config{Sessions: 2, Shards: 1, Seed: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(f, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		f.Close()
	}()
	dim := f.FeatureDim()
	_, send, recv := rawDial(t, addr.String())
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	vals := make([]float64, dim)
	batch := func(base uint64, n int) *wire.Frame {
		fr := &wire.Frame{Type: wire.ObserveBatch}
		for i := 0; i < n; i++ {
			fr.Batch = append(fr.Batch, wire.BatchObs{
				Seq: base + uint64(i), At: int64(base) + int64(i), Vals: vals,
			})
		}
		return fr
	}

	// Depth-4 queue, unstarted fleet: a 6-item batch admits 4, NACKs 2.
	send(batch(1, 6))
	r := recv()
	if r.Type != wire.AckBatch || r.Seq != 1 || r.Count != 6 {
		t.Fatalf("got %s seq %d count %d, want ACK_BATCH seq 1 count 6", r.Type, r.Seq, r.Count)
	}
	for i := 0; i < 6; i++ {
		if want := i >= 4; wire.Nacked(r.Bitmap, i) != want {
			t.Errorf("bitmap bit %d = %v, want %v", i, !want, want)
		}
	}

	// A wrong-width item anywhere refuses the whole frame, connection kept.
	bad := batch(10, 3)
	bad.Batch[1].Vals = vals[:dim-2]
	send(bad)
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeDim || r.Seq != 11 {
		t.Fatalf("got %s code %d seq %d, want ERR CodeDim seq 11", r.Type, r.Code, r.Seq)
	}

	// Connection still works: drain the queue, then a clean batch ACKs clean.
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	send(batch(20, 4))
	r = recv()
	if r.Type != wire.AckBatch || r.Seq != 20 || r.Count != 4 {
		t.Fatalf("got %s seq %d count %d, want ACK_BATCH seq 20 count 4", r.Type, r.Seq, r.Count)
	}
	for i := 0; i < 4; i++ {
		if wire.Nacked(r.Bitmap, i) {
			t.Errorf("clean batch NACKed item %d", i)
		}
	}

	c := srv.Counters()
	if c.BatchesIn != 3 || c.BatchObs != 13 {
		t.Errorf("batches_in %d batch_obs %d, want 3 and 13", c.BatchesIn, c.BatchObs)
	}
	if c.Accepted != 8 || c.Nacked != 2 || c.Rejected != 3 {
		t.Errorf("accepted %d nacked %d rejected %d, want 8, 2, 3", c.Accepted, c.Nacked, c.Rejected)
	}
}

// TestBatchSlowReaderKill floods OBSERVE_BATCH frames down a connection
// that never reads its coalesced ACKs: the bounded write queue plus the
// write deadline must kill the connection mid-batch-stream instead of
// wedging the writer, and a well-behaved batched client on the same
// listener must be untouched.
func TestBatchSlowReaderKill(t *testing.T) {
	leak := checkGoroutines(t)
	f, srv, addr := newTestServer(t, testFleetConfig(4),
		Config{WriteQueue: 4, WriteTimeout: 100 * time.Millisecond})
	dim := f.FeatureDim()

	nc, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	fr := &wire.Frame{Type: wire.ObserveBatch}
	vals := make([]float64, dim)
	for i := 0; i < 16; i++ {
		fr.Batch = append(fr.Batch, wire.BatchObs{Seq: uint64(i + 1), At: int64(i + 1), Vals: vals})
	}
	req, err := wire.Append(nil, fr)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < 200000; i++ {
		if _, err := nc.Write(req); err != nil {
			break
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := srv.Counters()
		if c.SlowKills+c.WriteErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow batch reader never killed: %+v", c)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A healthy batched client still gets full service.
	cli, err := Dial(addr, 1, dim, 5*time.Second)
	if err != nil {
		t.Fatalf("healthy client: %v", err)
	}
	cli.StartBatching(BatchConfig{BatchSize: 4, Window: 2})
	for i := 0; i < 8; i++ {
		if err := cli.ObserveQueued(time.Duration(i+1)*time.Millisecond, vals); err != nil {
			t.Fatalf("healthy queue %d: %v", i, err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatalf("healthy flush: %v", err)
	}
	cli.Close()
	srv.Close()
	f.Close()
	leak()
}

// TestBatchedFingerprintGrid is the PR's keystone determinism proof:
// identical seeded traffic driven (a) in-process, (b) over TCP window-1
// singles, and (c) over TCP pipelined batches at sizes 1, 8, and 64 must
// leave equally-configured fleets with one identical Stats.Fingerprint —
// at 1 and 8 pool workers. Queue depth is a shard's whole traffic share,
// so drops (and therefore NACK-retry reordering) are structurally
// impossible and per-session arrival order is exactly send order in
// every mode.
func TestBatchedFingerprintGrid(t *testing.T) {
	const (
		sessions = 16
		shards   = 4
		obs      = 64
		seed     = 777
		trafSeed = 99
		depth    = (sessions / shards) * obs
	)
	baseLoad := LoadConfig{Sessions: sessions, Obs: obs, Seed: trafSeed}
	newFleet := func(t *testing.T) *fleet.Fleet {
		t.Helper()
		f, err := fleet.New(VerifyConfig(sessions, shards, depth, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Start(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			old := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(old)

			// In-process baseline.
			fD := newFleet(t)
			load := baseLoad
			load.Dim = fD.FeatureDim()
			if _, err := DirectLoad(fD, load); err != nil {
				t.Fatalf("DirectLoad: %v", err)
			}
			fD.Close()
			want := fD.Stats().Fingerprint()

			tcpRun := func(t *testing.T, batch int) {
				f := newFleet(t)
				srv := New(f, Config{})
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				l := load
				l.Addr = addr.String()
				l.Batch = batch
				res, err := RunLoad(l)
				if err != nil {
					t.Fatalf("RunLoad: %v", err)
				}
				srv.Close()
				f.Close()
				if res.Acked != sessions*obs || res.Nacked != 0 {
					t.Fatalf("acked %d nacked %d, want %d and 0", res.Acked, res.Nacked, sessions*obs)
				}
				if got := f.Stats().Fingerprint(); got != want {
					t.Errorf("fingerprint mismatch (batch=%d):\n  tcp    %s\n  direct %s", batch, got, want)
				}
			}
			t.Run("unbatched", func(t *testing.T) { tcpRun(t, 0) })
			for _, batch := range []int{1, 8, 64} {
				t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) { tcpRun(t, batch) })
			}
		})
	}
}

// TestObserveBatchEmptyFrame pins the strict-decode posture end to end:
// a zero-item OBSERVE_BATCH cannot even be encoded, and a hand-crafted
// one on the wire is a protocol error that costs the connection.
func TestObserveBatchEmptyFrame(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	nc, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	if _, err := wire.Append(nil, &wire.Frame{Type: wire.ObserveBatch}); !errors.Is(err, wire.ErrEmptyBatch) {
		t.Fatalf("encoding empty batch: %v, want ErrEmptyBatch", err)
	}
	// Raw bytes: len=3, type OBSERVE_BATCH, count=0.
	if _, err := nc.Write([]byte{3, 0, 0, 0, 0x07, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeBadFrame {
		t.Fatalf("got %s code %d, want ERR CodeBadFrame", r.Type, r.Code)
	}
}

package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"affectedge/internal/fleet"
	"affectedge/internal/wire"
)

// checkGoroutines snapshots the goroutine count and returns a closure
// that fails the test if the count has not returned to the baseline
// (retrying: connection teardown finishes shortly after Close returns).
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		for i := 0; i < 100; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// newTestServer builds a started fleet behind a listening ingest server
// on loopback. Cleanup closes server then fleet (the documented drain
// order).
func newTestServer(t *testing.T, fcfg fleet.Config, scfg Config) (*fleet.Fleet, *Server, string) {
	t.Helper()
	f, err := fleet.New(fcfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("fleet.Start: %v", err)
	}
	srv := New(f, scfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		f.Close()
	})
	return f, srv, addr.String()
}

func testFleetConfig(sessions int) fleet.Config {
	return fleet.Config{Sessions: sessions, Shards: 4, Seed: 42, QueueDepth: 256}
}

// TestLoopbackAccounting pins the serving invariant end to end: over a
// full concurrent load, sent == acked + nacked on the client side,
// client acks == server Accepted == fleet-applied observations, and no
// goroutine outlives the teardown.
func TestLoopbackAccounting(t *testing.T) {
	leak := checkGoroutines(t)
	const sessions, obs = 16, 50
	f, srv, addr := newTestServer(t, testFleetConfig(sessions), Config{})
	cfg := LoadConfig{
		Addr: addr, Sessions: sessions, Obs: obs,
		Dim: f.FeatureDim(), ChunkEvery: 7, Seed: 7,
	}
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Acked != sessions*obs {
		t.Errorf("acked %d, want %d", res.Acked, sessions*obs)
	}
	if res.Sent != res.Acked+res.Nacked {
		t.Errorf("sent %d != acked %d + nacked %d", res.Sent, res.Acked, res.Nacked)
	}
	srv.Close()
	f.Close() // drain: every ACKed observation must reach its session
	c := srv.Counters()
	if c.Accepted != res.Acked || c.Nacked != res.Nacked {
		t.Errorf("server counters (accepted %d, nacked %d) != client (acked %d, nacked %d)",
			c.Accepted, c.Nacked, res.Acked, res.Nacked)
	}
	if c.Hellos != sessions || c.ConnsTotal != sessions {
		t.Errorf("hellos %d conns_total %d, want %d", c.Hellos, c.ConnsTotal, sessions)
	}
	st := f.Stats()
	if st.Observations+st.LateDrops != c.Accepted {
		t.Errorf("fleet observations %d + late drops %d != accepted %d",
			st.Observations, st.LateDrops, c.Accepted)
	}
	if st.Drops != res.Nacked {
		t.Errorf("fleet drops %d != client nacks %d", st.Drops, res.Nacked)
	}
	if c.Conns != 0 {
		t.Errorf("conns gauge %d after close, want 0", c.Conns)
	}
	leak()
}

// rawDial opens a plain TCP connection and returns a send/expect pair
// for hand-built frames — the misbehaving-client harness.
func rawDial(t *testing.T, addr string) (net.Conn, func(*wire.Frame), func() *wire.Frame) {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	var sp wire.Splitter
	buf := make([]byte, 4096)
	send := func(f *wire.Frame) {
		t.Helper()
		b, err := wire.Append(nil, f)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := nc.Write(b); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	recv := func() *wire.Frame {
		t.Helper()
		var f wire.Frame
		for {
			ok, err := sp.Next(&f)
			if err != nil {
				t.Fatalf("split: %v", err)
			}
			if ok {
				return &f
			}
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := nc.Read(buf)
			if n > 0 {
				if err := sp.Feed(buf[:n]); err != nil {
					t.Fatalf("feed: %v", err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	return nc, send, recv
}

func helloFrame(session int, dim int) *wire.Frame {
	return &wire.Frame{Type: wire.Hello, Version: wire.Version, Session: uint64(session), Dim: uint16(dim)}
}

// TestHelloErrors pins every handshake refusal to its wire code.
func TestHelloErrors(t *testing.T) {
	leak := checkGoroutines(t)
	f, srv, addr := newTestServer(t, testFleetConfig(4), Config{})
	dim := f.FeatureDim()

	t.Run("wrong version", func(t *testing.T) {
		_, send, recv := rawDial(t, addr)
		h := helloFrame(0, dim)
		h.Version = wire.Version + 9
		send(h)
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeVersion {
			t.Fatalf("got %s code %d, want ERR CodeVersion", r.Type, r.Code)
		}
	})
	t.Run("unknown session", func(t *testing.T) {
		_, send, recv := rawDial(t, addr)
		send(helloFrame(9999, dim))
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeUnknownSession {
			t.Fatalf("got %s code %d, want ERR CodeUnknownSession", r.Type, r.Code)
		}
	})
	t.Run("parked session", func(t *testing.T) {
		if err := f.Disconnect(1); err != nil {
			t.Fatal(err)
		}
		defer f.Reconnect(1)
		_, send, recv := rawDial(t, addr)
		send(helloFrame(1, dim))
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeUnknownSession {
			t.Fatalf("got %s code %d, want ERR CodeUnknownSession for parked session", r.Type, r.Code)
		}
	})
	t.Run("wrong dim", func(t *testing.T) {
		_, send, recv := rawDial(t, addr)
		send(helloFrame(0, dim+1))
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeDim {
			t.Fatalf("got %s code %d, want ERR CodeDim", r.Type, r.Code)
		}
	})
	t.Run("observe before hello", func(t *testing.T) {
		_, send, recv := rawDial(t, addr)
		send(&wire.Frame{Type: wire.Observe, Seq: 1, Vals: make([]float64, dim)})
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeBadFrame {
			t.Fatalf("got %s code %d, want ERR CodeBadFrame", r.Type, r.Code)
		}
	})
	t.Run("dial helper surfaces refusal", func(t *testing.T) {
		if _, err := Dial(addr, 9999, dim, time.Second); err == nil {
			t.Fatal("Dial of unknown session succeeded")
		}
	})
	srv.Close()
	f.Close()
	leak()
}

// TestAbruptDisconnectMidFrame kills a connection with half a frame on
// the wire: the server must count the reset, leak nothing, and keep
// serving other clients on the same listener.
func TestAbruptDisconnectMidFrame(t *testing.T) {
	leak := checkGoroutines(t)
	f, srv, addr := newTestServer(t, testFleetConfig(4), Config{})
	dim := f.FeatureDim()

	nc, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	// One full observation, then 7 bytes of the next frame, then gone.
	full, err := wire.Append(nil, &wire.Frame{Type: wire.Observe, Seq: 1, Vals: make([]float64, dim)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(full); err != nil {
		t.Fatal(err)
	}
	if r := recv(); r.Type != wire.Ack || r.Seq != 1 {
		t.Fatalf("got %s seq %d, want ACK 1", r.Type, r.Seq)
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(full))-4)
	if _, err := nc.Write(head[:7]); err != nil {
		t.Fatal(err)
	}
	nc.Close()

	// The reset is observed asynchronously; the server must stay usable.
	cli, err := Dial(addr, 1, dim, 5*time.Second)
	if err != nil {
		t.Fatalf("second client: %v", err)
	}
	if err := cli.Observe(time.Millisecond, make([]float64, dim)); err != nil {
		t.Fatalf("second client observe: %v", err)
	}
	cli.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Counters().MidFrameResets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mid-frame reset never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	f.Close()
	if c := srv.Counters(); c.Accepted != 2 {
		t.Errorf("accepted %d, want 2", c.Accepted)
	}
	leak()
}

// TestSlowReaderBackpressure floods a connection with snapshot requests
// while never reading the (large) replies: the bounded write queue plus
// the write deadline must kill the connection instead of wedging the
// server, and other clients must remain unaffected.
func TestSlowReaderBackpressure(t *testing.T) {
	leak := checkGoroutines(t)
	f, srv, addr := newTestServer(t, testFleetConfig(4),
		Config{WriteQueue: 4, WriteTimeout: 100 * time.Millisecond})
	dim := f.FeatureDim()

	nc, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	// Flood without reading. Replies pile into the socket buffers, then
	// the 4-frame queue, then the connection dies (slow kill or write
	// timeout — both count). Client writes fail once the server resets.
	nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
	req, err := wire.Append(nil, &wire.Frame{Type: wire.SnapshotReq, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		if _, err := nc.Write(req); err != nil {
			break
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := srv.Counters()
		if c.SlowKills+c.WriteErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow reader never killed: %+v", c)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The server still serves a well-behaved client.
	cli, err := Dial(addr, 1, dim, 5*time.Second)
	if err != nil {
		t.Fatalf("healthy client: %v", err)
	}
	if err := cli.Observe(time.Millisecond, make([]float64, dim)); err != nil {
		t.Fatalf("healthy observe: %v", err)
	}
	cli.Close()
	srv.Close()
	f.Close()
	leak()
}

// TestServerCloseDrains pins the drain ordering: every observation ACKed
// before Close is applied to its session once server and fleet have both
// closed, and the listener refuses new work afterwards.
func TestServerCloseDrains(t *testing.T) {
	leak := checkGoroutines(t)
	const obs = 200
	f, srv, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	cli, err := Dial(addr, 0, dim, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, dim)
	acked := 0
	for i := 0; i < obs; i++ {
		err := cli.Observe(time.Duration(i+1)*time.Millisecond, vals)
		if err == nil {
			acked++
			continue
		}
		if !IsBackpressure(err) {
			t.Fatalf("obs %d: %v", i, err)
		}
	}
	cli.Close()
	srv.Close()
	f.Close()
	st := f.Stats()
	if st.Observations+st.LateDrops != int64(acked) {
		t.Errorf("applied %d + late %d != acked %d", st.Observations, st.LateDrops, acked)
	}
	if _, err := Dial(addr, 0, dim, 500*time.Millisecond); err == nil {
		t.Error("dial after Close succeeded")
	}
	if srv.Close() != nil {
		t.Error("second Close errored")
	}
	leak()
}

// TestSnapshotOverTCP round-trips a session through the wire snapshot
// path: SNAPSHOT_REQ → remove → RestoreSession(bytes) revives it, and
// the revived session accepts traffic again over a fresh connection.
func TestSnapshotOverTCP(t *testing.T) {
	leak := checkGoroutines(t)
	f, srv, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	cli, err := Dial(addr, 0, dim, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, dim)
	for i := 0; i < 10; i++ {
		if err := cli.Observe(time.Duration(i+1)*time.Millisecond, vals); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	snap, err := cli.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	keep := append([]byte(nil), snap...) // reply buffer is reused
	cli.Close()

	if err := f.RemoveSession(0); err != nil {
		t.Fatal(err)
	}
	if f.Connected(0) {
		t.Fatal("session 0 still connected after remove")
	}
	if err := f.RestoreSession(bytes.NewReader(keep)); err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	if !f.Connected(0) {
		t.Fatal("session 0 not connected after restore")
	}
	cli2, err := Dial(addr, 0, dim, 5*time.Second)
	if err != nil {
		t.Fatalf("dial restored session: %v", err)
	}
	if err := cli2.Observe(20*time.Millisecond, vals); err != nil {
		t.Fatalf("observe restored session: %v", err)
	}
	cli2.Close()
	srv.Close()
	f.Close()
	if c := srv.Counters(); c.SnapshotReqs != 1 {
		t.Errorf("snapshot_reqs %d, want 1", c.SnapshotReqs)
	}
	leak()
}

// TestObserveDimMismatch pins the kept-connection refusal: a wrong-width
// observation is rejected with CodeDim and the connection keeps working.
func TestObserveDimMismatch(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	cli, err := Dial(addr, 0, dim, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	err = cli.Observe(time.Millisecond, make([]float64, dim+3))
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeDim {
		t.Fatalf("got %v, want RemoteError CodeDim", err)
	}
	if err := cli.Observe(2*time.Millisecond, make([]float64, dim)); err != nil {
		t.Fatalf("connection dead after dim refusal: %v", err)
	}
}

// TestChunkAbandon pins the chunk-reassembly refusal: starting a new seq
// with a fragment outstanding abandons the old chunk with an ERR, and
// the replacement observation still lands.
func TestChunkAbandon(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	_, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	vals := make([]float64, dim)
	// Fragment of seq 1 (not last), then a whole chunked seq 2.
	send(&wire.Frame{Type: wire.ObserveChunk, Seq: 1, At: 1, Vals: vals[:4]})
	send(&wire.Frame{Type: wire.ObserveChunk, Seq: 2, At: 2, Last: true, Vals: vals})
	if r := recv(); r.Type != wire.Err || r.Seq != 1 || r.Code != wire.CodeBadFrame {
		t.Fatalf("got %s seq %d code %d, want ERR seq 1 CodeBadFrame", r.Type, r.Seq, r.Code)
	}
	if r := recv(); r.Type != wire.Ack || r.Seq != 2 {
		t.Fatalf("got %s seq %d, want ACK seq 2", r.Type, r.Seq)
	}
}

package server

import (
	"fmt"
	"testing"
	"time"

	"affectedge/internal/fleet"
)

// BenchmarkLoopbackObserve measures one window-1 client's observation
// round trip over loopback TCP: encode, kernel round trip, server
// decode+dispatch, ACK back — the per-observation serving overhead the
// wire adds on top of fleet.Observe.
func BenchmarkLoopbackObserve(b *testing.B) {
	f, err := fleet.New(fleet.Config{Sessions: 1, Shards: 1, Seed: 1, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Start(); err != nil {
		b.Fatal(err)
	}
	srv := New(f, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		srv.Close()
		f.Close()
	}()
	cli, err := Dial(addr.String(), 0, f.FeatureDim(), 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	vals := make([]float64, f.FeatureDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := cli.Observe(time.Duration(i+1)*time.Microsecond, vals)
		if err != nil && !IsBackpressure(err) {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackObserveBatch measures the amortized per-observation
// cost of the pipelined batching path at several frame sizes: ns/op is
// one observation's share of its OBSERVE_BATCH round trip, with up to 4
// frames in flight. Compare against BenchmarkLoopbackObserve (window-1
// singles) for the coalescing win.
func BenchmarkLoopbackObserveBatch(b *testing.B) {
	for _, batch := range []int{8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			f, err := fleet.New(fleet.Config{Sessions: 1, Shards: 1, Seed: 1, QueueDepth: 8192})
			if err != nil {
				b.Fatal(err)
			}
			if err := f.Start(); err != nil {
				b.Fatal(err)
			}
			srv := New(f, Config{})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				srv.Close()
				f.Close()
			}()
			cli, err := Dial(addr.String(), 0, f.FeatureDim(), 10*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()
			cli.StartBatching(BatchConfig{BatchSize: batch, Window: 4})
			vals := make([]float64, f.FeatureDim())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.ObserveQueued(time.Duration(i+1)*time.Microsecond, vals); err != nil {
					b.Fatal(err)
				}
			}
			if err := cli.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			acked, _, _ := cli.BatchStats()
			if acked != int64(b.N) {
				b.Fatalf("acked %d, want %d", acked, b.N)
			}
		})
	}
}

// BenchmarkLoadgen16 measures aggregate loopback throughput with 16
// concurrent window-1 sessions — the obs/sec figure cmd/fleetload
// reports, in benchmark form.
func BenchmarkLoadgen16(b *testing.B) {
	const sessions = 16
	f, err := fleet.New(fleet.Config{Sessions: sessions, Shards: 4, Seed: 1, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Start(); err != nil {
		b.Fatal(err)
	}
	srv := New(f, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		srv.Close()
		f.Close()
	}()
	obs := b.N/sessions + 1
	b.ReportAllocs()
	b.ResetTimer()
	res, err := RunLoad(LoadConfig{
		Addr: addr.String(), Sessions: sessions, Obs: obs,
		Dim: f.FeatureDim(), Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if res.Acked != int64(sessions*obs) {
		b.Fatalf("acked %d, want %d", res.Acked, sessions*obs)
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"affectedge/internal/fleet"
	"affectedge/internal/obs"
	"affectedge/internal/obs/obshttp"
)

// HTTP control plane: session lifecycle, stats, and metrics over plain
// REST, separate from the binary ingest socket — operators curl it, the
// data plane never shares a connection with it.
//
//	GET    /healthz                       liveness
//	GET    /stats                         fleet Stats + run fingerprint
//	GET    /counters                      server ingest accounting
//	POST   /sessions/{id}                 AddSession
//	DELETE /sessions/{id}                 RemoveSession
//	POST   /sessions/{id}/disconnect      park (ingest starts NACKing the id)
//	POST   /sessions/{id}/reconnect       revive
//	GET    /sessions/{id}/snapshot        versioned gob snapshot (octet-stream)
//	POST   /sessions/restore              RestoreSession(body) — the snapshot
//	                                      envelope names the session
//	GET    /metrics                       obs registry JSON (when wired)

// ControlMux builds the control-plane handler. reg, when non-nil, also
// mounts /metrics through the obshttp seam (the full /debug surface —
// expvar, pprof — stays with obshttp.Serve).
func (s *Server) ControlMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.f.Stats()
		writeJSON(w, struct {
			*fleet.Stats
			Fingerprint string `json:"fingerprint"`
		}{st, st.Fingerprint()})
	})
	mux.HandleFunc("GET /counters", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Counters())
	})
	mux.HandleFunc("POST /sessions/{id}", s.sessionOp(s.f.AddSession))
	mux.HandleFunc("DELETE /sessions/{id}", s.sessionOp(s.f.RemoveSession))
	mux.HandleFunc("POST /sessions/{id}/disconnect", s.sessionOp(s.f.Disconnect))
	mux.HandleFunc("POST /sessions/{id}/reconnect", s.sessionOp(s.f.Reconnect))
	mux.HandleFunc("GET /sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		id, ok := sessionID(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := s.f.SnapshotSession(id, w); err != nil {
			// Headers may already be out; a mid-stream error can only abort.
			http.Error(w, err.Error(), statusOf(err))
		}
	})
	mux.HandleFunc("POST /sessions/restore", func(w http.ResponseWriter, r *http.Request) {
		if err := s.f.RestoreSession(r.Body); err != nil {
			http.Error(w, err.Error(), statusOf(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	if reg != nil {
		mux.Handle("GET /metrics", obshttp.Handler(reg))
	}
	return mux
}

// ServeControl starts the control plane on addr in a new goroutine,
// mirroring obshttp.Serve: the caller Closes the returned server; startup
// errors surface on the channel.
func (s *Server) ServeControl(addr string, reg *obs.Registry) (*http.Server, <-chan error) {
	srv := &http.Server{Addr: addr, Handler: s.ControlMux(reg)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	return srv, errc
}

// sessionOp adapts a fleet session-lifecycle method into a handler.
func (s *Server) sessionOp(op func(int) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := sessionID(w, r)
		if !ok {
			return
		}
		if err := op(id); err != nil {
			http.Error(w, err.Error(), statusOf(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func sessionID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

// statusOf maps fleet errors onto HTTP: unknown session 404, closed
// fleet 503, every other refusal (duplicate add, double disconnect,
// snapshot version/config mismatch) 409.
func statusOf(err error) int {
	switch {
	case errors.Is(err, fleet.ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, fleet.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusConflict
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

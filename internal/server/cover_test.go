package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"affectedge/internal/obs"
	"affectedge/internal/wire"
)

func TestTruncMsg(t *testing.T) {
	if got := truncMsg("short"); got != "short" {
		t.Fatalf("short message mangled: %q", got)
	}
	long := strings.Repeat("x", wire.MaxMsg+100)
	if got := truncMsg(long); len(got) != wire.MaxMsg {
		t.Fatalf("truncated to %d bytes, want %d", len(got), wire.MaxMsg)
	}
}

func TestIsBackpressure(t *testing.T) {
	re := &RemoteError{Code: wire.CodeBackpressure, Seq: 7, Msg: "queue full"}
	if !IsBackpressure(re) {
		t.Fatal("bare backpressure RemoteError not recognized")
	}
	if !IsBackpressure(fmt.Errorf("observe: %w", re)) {
		t.Fatal("wrapped backpressure RemoteError not recognized")
	}
	if IsBackpressure(nil) {
		t.Fatal("nil is not backpressure")
	}
	if IsBackpressure(errors.New("plain")) {
		t.Fatal("plain error is not backpressure")
	}
	if IsBackpressure(&RemoteError{Code: wire.CodeDim}) {
		t.Fatal("dim refusal is not backpressure")
	}
	if msg := re.Error(); !strings.Contains(msg, "queue full") {
		t.Fatalf("RemoteError.Error() lost the message: %q", msg)
	}
}

func TestListenErrors(t *testing.T) {
	f, srv, _ := newTestServer(t, testFleetConfig(2), Config{})
	if srv.Addr() == nil {
		t.Fatal("Addr nil after Listen")
	}
	bad := New(f, Config{})
	if _, err := bad.Listen("256.256.256.256:0"); err == nil {
		t.Fatal("Listen on a bogus address succeeded")
	}
}

// TestClientSeq pins that the client's sequence counter advances once
// per accepted observation — the value retries reuse.
func TestClientSeq(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	cli, err := Dial(addr, 0, dim, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if got := cli.Seq(); got != 0 {
		t.Fatalf("fresh client at seq %d, want 0", got)
	}
	if err := cli.Observe(time.Millisecond, make([]float64, dim)); err != nil {
		t.Fatal(err)
	}
	if got := cli.Seq(); got != 1 {
		t.Fatalf("after one observe at seq %d, want 1", got)
	}
}

// TestServeControlStartStop covers the convenience launcher: the control
// plane comes up on an ephemeral port and Close surfaces ErrServerClosed
// on the error channel (handler behavior itself is pinned in http_test).
func TestServeControlStartStop(t *testing.T) {
	_, srv, _ := newTestServer(t, testFleetConfig(2), Config{})
	hsrv, errc := srv.ServeControl("127.0.0.1:0", nil)
	time.Sleep(20 * time.Millisecond) // let ListenAndServe bind before Close
	hsrv.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("got %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeControl goroutine never exited")
	}
}

// TestWireMetricsWiring proves the explicit metrics seam: once wired to
// a registry scope, the package handles feed named counters, and the
// names match the Counters JSON tags an operator sees on /counters.
func TestWireMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	WireMetrics(reg.Scope("server"))

	f, srv, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	cli, err := Dial(addr, 0, dim, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Observe(time.Millisecond, make([]float64, dim)); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	// Rewiring the global handles while connection goroutines run would
	// race; quiesce the server first (Close waits them out), then restore
	// the no-op handles for the rest of the suite.
	srv.Close()
	f.Close()
	WireMetrics(nil)
	if v := reg.Counter("server.hellos").Value(); v < 1 {
		t.Fatalf("server.hellos = %d, want >= 1", v)
	}
	if v := reg.Counter("server.accepted").Value(); v < 1 {
		t.Fatalf("server.accepted = %d, want >= 1", v)
	}
	if v := reg.Counter("server.frames_in").Value(); v < 2 {
		t.Fatalf("server.frames_in = %d, want >= 2 (HELLO + OBSERVE)", v)
	}
}

// TestObserveUnknownSession pins the dispatch mapping for a session that
// disappears mid-connection: typed ERR, connection kept (the session may
// be restored), and both the whole-observation and snapshot paths agree.
func TestObserveUnknownSession(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	_, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	if err := f.RemoveSession(0); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, dim)
	send(&wire.Frame{Type: wire.Observe, Seq: 1, At: 1, Vals: vals})
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeUnknownSession || r.Seq != 1 {
		t.Fatalf("got %s code %d, want ERR CodeUnknownSession", r.Type, r.Code)
	}
	// The connection survives the refusal: a snapshot request for the
	// same missing session draws the same typed ERR, not an EOF.
	send(&wire.Frame{Type: wire.SnapshotReq, Seq: 2})
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeUnknownSession || r.Seq != 2 {
		t.Fatalf("got %s code %d, want ERR CodeUnknownSession", r.Type, r.Code)
	}
}

// TestObserveClosedFleet pins the terminal mapping: a closed fleet draws
// ERR CodeClosed and the server hangs up after flushing it.
func TestObserveClosedFleet(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	nc, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	send(&wire.Frame{Type: wire.Observe, Seq: 1, At: 1, Vals: make([]float64, dim)})
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeClosed {
		t.Fatalf("got %s code %d, want ERR CodeClosed", r.Type, r.Code)
	}
	// Drain-on-close flushed the ERR; the next read is EOF.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		_, err := nc.Read(buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("got %v after CodeClosed, want EOF", err)
			}
			break
		}
	}
}

// TestHelloSessionOutOfRange covers the id guard: a session id beyond
// int64 can never name a fleet session, so it refuses as unknown.
func TestHelloSessionOutOfRange(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	_, send, recv := rawDial(t, addr)
	send(&wire.Frame{Type: wire.Hello, Version: wire.Version, Session: math.MaxUint64, Dim: uint16(dim)})
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeUnknownSession {
		t.Fatalf("got %s code %d, want ERR CodeUnknownSession", r.Type, r.Code)
	}
}

// TestProtocolViolations pins the hangup cases: a second HELLO and a
// server-only frame type both draw ERR CodeBadFrame and lose the
// connection.
func TestProtocolViolations(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()

	t.Run("duplicate hello", func(t *testing.T) {
		_, send, recv := rawDial(t, addr)
		send(helloFrame(0, dim))
		if r := recv(); r.Type != wire.Ack {
			t.Fatalf("handshake: got %s", r.Type)
		}
		send(helloFrame(0, dim))
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeBadFrame {
			t.Fatalf("got %s code %d, want ERR CodeBadFrame", r.Type, r.Code)
		}
	})
	t.Run("client sends ack", func(t *testing.T) {
		_, send, recv := rawDial(t, addr)
		send(helloFrame(1, dim))
		if r := recv(); r.Type != wire.Ack {
			t.Fatalf("handshake: got %s", r.Type)
		}
		send(&wire.Frame{Type: wire.Ack, Seq: 9})
		if r := recv(); r.Type != wire.Err || r.Code != wire.CodeBadFrame {
			t.Fatalf("got %s code %d, want ERR CodeBadFrame", r.Type, r.Code)
		}
	})
}

// TestChunkDimErrors pins the reassembly bounds: a fragment overflowing
// the feature dimensionality and a final fragment leaving the vector
// short both refuse with CodeDim, and the connection keeps working.
func TestChunkDimErrors(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(2), Config{})
	dim := f.FeatureDim()
	_, send, recv := rawDial(t, addr)
	send(helloFrame(0, dim))
	if r := recv(); r.Type != wire.Ack {
		t.Fatalf("handshake: got %s", r.Type)
	}
	vals := make([]float64, dim)
	// Overflow: a full-dim fragment held open, then one value too many.
	send(&wire.Frame{Type: wire.ObserveChunk, Seq: 1, At: 1, Vals: vals})
	send(&wire.Frame{Type: wire.ObserveChunk, Seq: 1, At: 1, Vals: vals[:1]})
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeDim || r.Seq != 1 {
		t.Fatalf("got %s seq %d code %d, want ERR seq 1 CodeDim", r.Type, r.Seq, r.Code)
	}
	// Short: FlagLast with only part of the vector assembled.
	send(&wire.Frame{Type: wire.ObserveChunk, Seq: 2, At: 2, Last: true, Vals: vals[:3]})
	if r := recv(); r.Type != wire.Err || r.Code != wire.CodeDim || r.Seq != 2 {
		t.Fatalf("got %s seq %d code %d, want ERR seq 2 CodeDim", r.Type, r.Seq, r.Code)
	}
	// Both refusals left the connection and chunk state clean.
	send(&wire.Frame{Type: wire.ObserveChunk, Seq: 3, At: 3, Last: true, Vals: vals})
	if r := recv(); r.Type != wire.Ack || r.Seq != 3 {
		t.Fatalf("got %s seq %d, want ACK seq 3", r.Type, r.Seq)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Fatal("RunLoad accepted an empty config")
	}
	if _, err := DirectLoad(nil, LoadConfig{}); err == nil {
		t.Fatal("DirectLoad accepted an empty config")
	}
}

// TestRunLoadDialFailure pins the generator's error discipline: a dead
// address fails the run with a session-tagged error instead of hanging.
func TestRunLoadDialFailure(t *testing.T) {
	// Grab a loopback port with no listener behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = RunLoad(LoadConfig{Addr: addr, Sessions: 2, Obs: 1, Dim: 4, Timeout: 2 * time.Second})
	if err == nil {
		t.Fatal("RunLoad against a dead address succeeded")
	}
}

// TestRunLoadLatency pins the latency seam: every round trip lands one
// histogram sample, so quantiles are computed over sent, not acked.
func TestRunLoadLatency(t *testing.T) {
	f, _, addr := newTestServer(t, testFleetConfig(4), Config{})
	reg := obs.NewRegistry()
	hist := reg.Histogram("loadgen.rtt_us", obs.ExponentialBuckets(1, 2, 24))
	res, err := RunLoad(LoadConfig{
		Addr: addr, Sessions: 4, Obs: 5, Dim: f.FeatureDim(),
		ChunkEvery: 2, Seed: 11, Latency: hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked != 20 {
		t.Fatalf("acked %d, want 20", res.Acked)
	}
	if got := hist.Count(); got != res.Sent {
		t.Fatalf("histogram holds %d samples, want %d (one per round trip)", got, res.Sent)
	}
	snap, ok := reg.Snapshot().Histogram("loadgen.rtt_us")
	if !ok || snap.Quantile(0.5) < 0 {
		t.Fatal("latency quantile unavailable from snapshot")
	}
}

// Package server makes the fleet a network service: a TCP ingest server
// speaking the internal/wire frame protocol, an HTTP control/metrics
// plane (http.go), a synchronous protocol client (client.go), and a
// load generator that drives thousands of concurrent sessions over
// loopback (loadgen.go).
//
// Connection model — one connection is one session:
//
//   - The first frame must be a HELLO carrying the protocol magic and
//     version and the session id the connection authenticates as. A
//     wrong version, an unknown/parked session, or a dimensionality
//     mismatch is refused with a typed ERR and the connection closes.
//   - Every OBSERVE/OBSERVE_CHUNK after that belongs to the
//     authenticated session and is routed to the owning shard through
//     fleet.Observe / fleet.ObserveChunks. The fleet's non-blocking
//     ingest contract surfaces on the wire: an accepted observation is
//     ACKed, a full shard queue (fleet.ErrBackpressure) is NACKed with
//     CodeBackpressure — the client retries, nothing blocks the reader.
//   - SNAPSHOT_REQ returns the session's versioned gob snapshot in the
//     ACK payload, so a device can checkpoint its server-side state over
//     the same connection it streams on.
//
// Replies travel through a bounded per-connection write queue (a
// stream.FIFO) drained by a writer goroutine under a write deadline; a
// client that stops reading its ACKs until the queue overflows is killed
// and counted (SlowKills) rather than allowed to wedge the reader. Close
// is a graceful drain: intake stops, every queued reply is flushed, and
// all connection goroutines join before Close returns — every
// observation the server ACKed is in a shard queue (drain ordering is
// pinned by the loopback suite; see DESIGN.md §16).
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"affectedge/internal/fleet"
	"affectedge/internal/stream"
	"affectedge/internal/wire"
)

// Config tunes the ingest server. The zero value of every field has a
// sensible default; see normalize.
type Config struct {
	// WriteQueue bounds each connection's outgoing reply queue in frames
	// (default 256). Overflow kills the connection (slow reader).
	WriteQueue int
	// ReadBuf is the per-connection read buffer in bytes (default 32KiB).
	ReadBuf int
	// ReadTimeout is the idle read deadline (default 30s): a connection
	// that sends nothing for this long is dropped.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply write (default 10s).
	WriteTimeout time.Duration
	// FlushBytes bounds how many encoded reply bytes one vectored flush
	// accumulates before it is forced out (default 32KiB). The writer
	// always flushes the moment its queue is momentarily empty, so a
	// window-1 client still sees single-frame latency; the threshold only
	// bites under pipelined load, where it caps flush latency by size.
	FlushBytes int
	// FlushFrames caps the frames per vectored flush (default 64) — the
	// net.Buffers length handed to one writev.
	FlushFrames int
}

func (c Config) normalize() Config {
	if c.WriteQueue <= 0 {
		c.WriteQueue = 256
	}
	if c.ReadBuf <= 0 {
		c.ReadBuf = 32 << 10
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 32 << 10
	}
	if c.FlushFrames <= 0 {
		c.FlushFrames = 64
	}
	return c
}

// Counters is a snapshot of the server's accounting. The serving
// invariant the loopback suite pins: every observation frame read is
// exactly one of Accepted (ACKed, in a shard queue), Nacked
// (backpressure ERR), or Rejected (unknown session / bad dimension /
// abandoned chunk ERR).
type Counters struct {
	Conns          int64 `json:"conns"`            // currently open
	ConnsTotal     int64 `json:"conns_total"`      // ever accepted
	Hellos         int64 `json:"hellos"`           // authenticated connections
	FramesIn       int64 `json:"frames_in"`        // complete frames decoded
	FramesOut      int64 `json:"frames_out"`       // replies written
	Accepted       int64 `json:"accepted"`         // observations the fleet accepted
	Nacked         int64 `json:"nacked"`           // backpressure NACKs (frames or batch items)
	Rejected       int64 `json:"rejected"`         // refused observations (ERR, connection kept)
	BatchesIn      int64 `json:"batches_in"`       // OBSERVE_BATCH frames dispatched
	BatchObs       int64 `json:"batch_obs"`        // observations carried by OBSERVE_BATCH frames
	Flushes        int64 `json:"flushes"`          // vectored reply flushes (one writev each)
	SnapshotReqs   int64 `json:"snapshot_reqs"`    // session snapshots served
	SlowKills      int64 `json:"slow_kills"`       // connections killed for unread replies
	MidFrameResets int64 `json:"mid_frame_resets"` // peers gone with a partial frame buffered
	ReadErrors     int64 `json:"read_errors"`      // connections ended by a read error
	WriteErrors    int64 `json:"write_errors"`     // connections ended by a write error/timeout
	ProtocolErrors int64 `json:"protocol_errors"`  // malformed or out-of-protocol frames
}

// Server is the TCP ingest front end of one fleet. Create with New, arm
// with Listen, stop with Close. The caller owns the fleet: Start it
// before Listen, Close it after Close (the server never closes the
// fleet, so queued observations drain through the fleet's own fence).
type Server struct {
	f   *fleet.Fleet
	cfg Config
	dim int

	ln     net.Listener
	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	n struct {
		conns, connsTotal, hellos         atomic.Int64
		framesIn, framesOut               atomic.Int64
		accepted, nacked, rejected        atomic.Int64
		batchesIn, batchObs, flushes      atomic.Int64
		snapshotReqs, slowKills           atomic.Int64
		midFrame, readErrors, writeErrors atomic.Int64
		protocolErrors                    atomic.Int64
	}
}

// New wraps f in an ingest server. Wire metrics (WireMetrics) before New
// if the obs mirror is wanted.
func New(f *fleet.Fleet, cfg Config) *Server {
	return &Server{
		f:     f,
		cfg:   cfg.normalize(),
		dim:   f.FeatureDim(),
		conns: map[*conn]struct{}{},
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting. The
// returned address is the bound one — port 0 resolves here.
func (s *Server) Listen(addr string) (net.Addr, error) {
	if s.closed.Load() {
		return nil, errors.New("server: closed")
	}
	if s.ln != nil {
		return nil, errors.New("server: already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops intake and drains: the listener closes, every connection's
// reader is woken and exits, queued replies are flushed under the write
// deadline, and all goroutines join. Idempotent. Drain ordering: after
// Close returns, every ACKed observation sits in a shard queue — call
// fleet.Close next to drain those into the sessions.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.wake()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Counters snapshots the accounting.
func (s *Server) Counters() Counters {
	return Counters{
		Conns:          s.n.conns.Load(),
		ConnsTotal:     s.n.connsTotal.Load(),
		Hellos:         s.n.hellos.Load(),
		FramesIn:       s.n.framesIn.Load(),
		FramesOut:      s.n.framesOut.Load(),
		Accepted:       s.n.accepted.Load(),
		Nacked:         s.n.nacked.Load(),
		Rejected:       s.n.rejected.Load(),
		BatchesIn:      s.n.batchesIn.Load(),
		BatchObs:       s.n.batchObs.Load(),
		Flushes:        s.n.flushes.Load(),
		SnapshotReqs:   s.n.snapshotReqs.Load(),
		SlowKills:      s.n.slowKills.Load(),
		MidFrameResets: s.n.midFrame.Load(),
		ReadErrors:     s.n.readErrors.Load(),
		WriteErrors:    s.n.writeErrors.Load(),
		ProtocolErrors: s.n.protocolErrors.Load(),
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return // listener closed by Close
			}
			// Transient accept failure (EMFILE under fd pressure, aborted
			// handshake): back off briefly and keep serving — a dying
			// accept loop would strand every future client.
			s.n.readErrors.Add(1)
			mtr.readErrors.Inc()
			time.Sleep(10 * time.Millisecond)
			continue
		}
		c := newConn(s, nc)
		if !s.track(c) {
			nc.Close()
			return
		}
		s.n.conns.Add(1)
		s.n.connsTotal.Add(1)
		mtr.conns.Add(1)
		mtr.connsTotal.Inc()
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// track registers c unless the server is closing (the Accept/Close race:
// Close snapshots the map after flipping closed, so a connection is
// either refused here or woken there — never stranded).
func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.n.conns.Add(-1)
	mtr.conns.Add(-1)
}

// conn is one client connection: a reader goroutine that decodes and
// dispatches frames, and a writer goroutine that drains the bounded
// reply queue. The reader owns all protocol state; they meet only at the
// FIFO and the socket.
type conn struct {
	srv *Server
	nc  net.Conn
	out *stream.FIFO[wire.Frame]

	// Reader-owned session state.
	session int
	helloed bool

	// Chunked-observation assembly (reader-owned): fragments of one
	// in-flight chunked observation, flattened into vals with recorded
	// fragment lengths so dispatch can rebuild the chunk views for
	// fleet.ObserveChunks.
	chunkOpen bool
	chunkSeq  uint64
	chunkAt   int64
	vals      []float64
	fragLens  []int

	// Batched-dispatch scratch (reader-owned): the fleet.ObserveBatch
	// item and status views rebuilt per OBSERVE_BATCH frame.
	bitems []fleet.Obs
	bstat  []error
}

func newConn(s *Server, nc net.Conn) *conn {
	out, err := stream.New[wire.Frame](s.cfg.WriteQueue)
	if err != nil {
		panic(err) // normalized WriteQueue > 0
	}
	return &conn{srv: s, nc: nc, out: out}
}

// wake forces a blocked Read to return so the reader can observe the
// server's closed flag.
func (c *conn) wake() { c.nc.SetReadDeadline(time.Now()) }

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	buf := make([]byte, c.srv.cfg.ReadBuf)
	var sp wire.Splitter
	var fr wire.Frame
	defer func() {
		// Drain ordering: closing the FIFO stops intake but keeps queued
		// replies readable; the writer flushes them and closes the socket.
		c.out.Close()
		c.srv.untrack(c)
	}()
	for {
		c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout))
		n, err := c.nc.Read(buf)
		if n > 0 {
			if ferr := sp.Feed(buf[:n]); ferr != nil {
				c.protoErr(ferr)
				return
			}
			for {
				ok, nerr := sp.Next(&fr)
				if nerr != nil {
					c.protoErr(nerr)
					return
				}
				if !ok {
					break
				}
				c.srv.n.framesIn.Add(1)
				mtr.framesIn.Inc()
				if !c.handle(&fr) {
					return
				}
			}
		}
		if err != nil {
			if c.srv.closed.Load() {
				return // graceful shutdown woke us
			}
			if sp.Pending() > 0 {
				// Peer vanished mid-frame: nothing half-applied — frames
				// dispatch only when complete — just counted and cleaned up.
				c.srv.n.midFrame.Add(1)
				mtr.midFrame.Inc()
			}
			if !errors.Is(err, io.EOF) {
				c.srv.n.readErrors.Add(1)
				mtr.readErrors.Inc()
			}
			return
		}
	}
}

// writeLoop drains the reply queue with an explicit flush policy: block
// for one frame, then gather every frame already queued — each encoded
// into its own recycled buffer — and hand the lot to one vectored write
// (net.Buffers → writev), flushing when the queue is momentarily empty or
// when the FlushFrames/FlushBytes threshold is hit. Queue-empty flushing
// keeps a window-1 client at single-frame latency; under pipelined load
// the per-frame syscall cost amortizes across the whole flush.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.nc.Close()
	bufs := make([][]byte, 0, c.srv.cfg.FlushFrames)
	var nb net.Buffers
	for {
		f, err := c.out.Pop() // blocks; ErrClosed once closed and drained
		if err != nil {
			return
		}
		n, total := 0, 0
		for {
			if n == len(bufs) {
				bufs = append(bufs, nil)
			}
			b, err := wire.Append(bufs[n][:0], &f)
			if err != nil {
				panic(fmt.Sprintf("server: reply frame failed to encode: %v", err))
			}
			bufs[n] = b
			n++
			total += len(b)
			if n >= c.srv.cfg.FlushFrames || total >= c.srv.cfg.FlushBytes {
				break
			}
			next, ok, _ := c.out.TryPop()
			if !ok {
				break // queue momentarily empty: flush what we have
			}
			f = next
		}
		// nb copies the slice headers: WriteTo consumes nb in place, while
		// the byte buffers in bufs stay ours for the next gather.
		nb = append(nb[:0], bufs[:n]...)
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if _, err := nb.WriteTo(c.nc); err != nil {
			c.srv.n.writeErrors.Add(1)
			mtr.writeErrors.Inc()
			return
		}
		c.srv.n.framesOut.Add(int64(n))
		c.srv.n.flushes.Add(1)
		mtr.framesOut.Add(int64(n))
		mtr.flushes.Inc()
	}
}

// reply queues one frame for the writer. A full queue means the client
// is not reading its replies: the connection is killed (queue closed,
// socket closed to unblock a mid-write writer) and counted — the server
// never lets a slow reader wedge the read loop. Returns false when the
// connection should close.
func (c *conn) reply(f wire.Frame) bool {
	switch err := c.out.TryPush(f); {
	case err == nil:
		return true
	case errors.Is(err, stream.ErrBackpressure):
		c.srv.n.slowKills.Add(1)
		mtr.slowKills.Inc()
		c.out.Close()
		c.nc.Close()
		return false
	default: // ErrClosed: already shutting down
		return false
	}
}

// protoErr handles an unparseable or out-of-protocol input: counted, a
// best-effort BAD_FRAME ERR queued, connection closed.
func (c *conn) protoErr(err error) {
	c.srv.n.protocolErrors.Add(1)
	mtr.protocolErrors.Inc()
	c.reply(wire.Frame{Type: wire.Err, Code: wire.CodeBadFrame, Msg: truncMsg(err.Error())})
}

// handle dispatches one decoded frame; false closes the connection.
func (c *conn) handle(fr *wire.Frame) bool {
	if !c.helloed {
		if fr.Type != wire.Hello {
			c.protoErr(fmt.Errorf("first frame %s, want HELLO", fr.Type))
			return false
		}
		return c.hello(fr)
	}
	switch fr.Type {
	case wire.Hello:
		c.protoErr(errors.New("duplicate HELLO"))
		return false
	case wire.Observe:
		return c.observe(fr)
	case wire.ObserveBatch:
		return c.observeBatch(fr)
	case wire.ObserveChunk:
		return c.observeChunk(fr)
	case wire.SnapshotReq:
		return c.snapshot(fr)
	default: // Ack/Err are server→client only
		c.protoErr(fmt.Errorf("unexpected %s from client", fr.Type))
		return false
	}
}

// hello authenticates the connection: protocol version, session
// existence (live, not parked), and feature dimensionality all check
// before the ACK. Refusals are typed ERR frames so the client can tell
// a version skew from a missing session.
func (c *conn) hello(fr *wire.Frame) bool {
	if err := wire.CheckHello(fr); err != nil {
		var ve *wire.VersionError
		if errors.As(err, &ve) {
			c.reply(wire.Frame{Type: wire.Err, Code: wire.CodeVersion, Msg: truncMsg(err.Error())})
			c.srv.n.protocolErrors.Add(1)
			mtr.protocolErrors.Inc()
			return false
		}
		c.protoErr(err)
		return false
	}
	if fr.Session > math.MaxInt64 {
		c.reply(wire.Frame{Type: wire.Err, Code: wire.CodeUnknownSession, Msg: "session id out of range"})
		return false
	}
	id := int(fr.Session)
	if !c.srv.f.Connected(id) {
		c.reply(wire.Frame{Type: wire.Err, Code: wire.CodeUnknownSession,
			Msg: fmt.Sprintf("session %d not connected", id)})
		return false
	}
	if int(fr.Dim) != c.srv.dim {
		c.reply(wire.Frame{Type: wire.Err, Code: wire.CodeDim,
			Msg: fmt.Sprintf("dim %d, fleet serves %d", fr.Dim, c.srv.dim)})
		return false
	}
	c.session = id
	c.helloed = true
	c.srv.n.hellos.Add(1)
	mtr.hellos.Inc()
	return c.reply(wire.Frame{Type: wire.Ack, Seq: 0}) // HELLO acks as seq 0
}

// observe routes one whole observation into the fleet.
func (c *conn) observe(fr *wire.Frame) bool {
	if len(fr.Vals) != c.srv.dim {
		c.srv.n.rejected.Add(1)
		mtr.rejected.Inc()
		return c.reply(wire.Frame{Type: wire.Err, Seq: fr.Seq, Code: wire.CodeDim,
			Msg: fmt.Sprintf("observation dim %d, want %d", len(fr.Vals), c.srv.dim)})
	}
	return c.dispatch(fr.Seq, c.srv.f.Observe(c.session, time.Duration(fr.At), fr.Vals))
}

// observeBatch routes one OBSERVE_BATCH into the fleet as a shard-level
// grouped submission (fleet.ObserveBatch: one lock acquisition and one
// coalesced enqueue per same-shard run) and answers with one ACK_BATCH
// whose bitmap NACKs exactly the backpressured items — a full shard costs
// those items a retry, not the whole frame. The PR 9 error-mapping
// contract is otherwise preserved: a dimension mismatch is refused with a
// frame-level CodeDim ERR before anything is submitted, an unknown
// session (removed mid-flight) maps to a kept-connection ERR, and a
// closed fleet to CodeClosed plus hangup.
func (c *conn) observeBatch(fr *wire.Frame) bool {
	n := len(fr.Batch)
	c.srv.n.batchesIn.Add(1)
	c.srv.n.batchObs.Add(int64(n))
	mtr.batchesIn.Inc()
	mtr.batchObs.Add(int64(n))
	for i := range fr.Batch {
		if len(fr.Batch[i].Vals) != c.srv.dim {
			c.srv.n.rejected.Add(int64(n))
			mtr.rejected.Add(int64(n))
			return c.reply(wire.Frame{Type: wire.Err, Seq: fr.Batch[i].Seq, Code: wire.CodeDim,
				Msg: fmt.Sprintf("batch item %d dim %d, want %d", i, len(fr.Batch[i].Vals), c.srv.dim)})
		}
	}
	if cap(c.bitems) < n {
		c.bitems = make([]fleet.Obs, n)
		c.bstat = make([]error, n)
	}
	items, statuses := c.bitems[:n], c.bstat[:n]
	for i := range fr.Batch {
		items[i] = fleet.Obs{ID: c.session, At: time.Duration(fr.Batch[i].At), X: fr.Batch[i].Vals}
	}
	if err := c.srv.f.ObserveBatch(items, statuses); err != nil {
		return c.dispatch(fr.Batch[0].Seq, err) // ErrClosed or a programming error
	}
	// Fresh bitmap per reply: the frame travels through the FIFO to the
	// writer, so the reader must not reuse its backing.
	bitmap := make([]byte, wire.BitmapLen(n))
	acked, nacked := 0, 0
	for i, st := range statuses {
		switch {
		case st == nil:
			acked++
		case errors.Is(st, fleet.ErrBackpressure):
			wire.SetNack(bitmap, i)
			nacked++
		default:
			// Session removed mid-batch: the accepted prefix is already
			// applied; the rest of the frame resolves to one kept-
			// connection ERR exactly like a single OBSERVE would.
			c.srv.n.accepted.Add(int64(acked))
			mtr.accepted.Add(int64(acked))
			c.srv.n.rejected.Add(int64(n - acked))
			mtr.rejected.Add(int64(n - acked))
			if errors.Is(st, fleet.ErrUnknownSession) {
				return c.reply(wire.Frame{Type: wire.Err, Seq: fr.Batch[i].Seq,
					Code: wire.CodeUnknownSession, Msg: truncMsg(st.Error())})
			}
			c.reply(wire.Frame{Type: wire.Err, Seq: fr.Batch[i].Seq,
				Code: wire.CodeInternal, Msg: truncMsg(st.Error())})
			return false
		}
	}
	c.srv.n.accepted.Add(int64(acked))
	c.srv.n.nacked.Add(int64(nacked))
	mtr.accepted.Add(int64(acked))
	mtr.nacked.Add(int64(nacked))
	return c.reply(wire.Frame{Type: wire.AckBatch, Seq: fr.Batch[0].Seq, Count: n, Bitmap: bitmap})
}

// observeChunk assembles fragments of one observation. Fragments share a
// seq and timestamp and concatenate in arrival order; FlagLast dispatches
// the assembled observation through fleet.ObserveChunks with the original
// fragment boundaries. A fragment for a new seq abandons an unfinished
// chunk with an ERR (counted Rejected) — fragments never interleave.
func (c *conn) observeChunk(fr *wire.Frame) bool {
	if c.chunkOpen && (fr.Seq != c.chunkSeq || fr.At != c.chunkAt) {
		c.srv.n.rejected.Add(1)
		mtr.rejected.Inc()
		abandoned := c.chunkSeq
		c.resetChunk()
		if !c.reply(wire.Frame{Type: wire.Err, Seq: abandoned, Code: wire.CodeBadFrame,
			Msg: "chunk abandoned by next observation"}) {
			return false
		}
	}
	if !c.chunkOpen {
		c.chunkOpen = true
		c.chunkSeq = fr.Seq
		c.chunkAt = fr.At
	}
	if len(c.vals)+len(fr.Vals) > c.srv.dim {
		c.srv.n.rejected.Add(1)
		mtr.rejected.Inc()
		seq := c.chunkSeq
		c.resetChunk()
		return c.reply(wire.Frame{Type: wire.Err, Seq: seq, Code: wire.CodeDim,
			Msg: fmt.Sprintf("chunked observation exceeds dim %d", c.srv.dim)})
	}
	c.vals = append(c.vals, fr.Vals...)
	c.fragLens = append(c.fragLens, len(fr.Vals))
	if !fr.Last {
		return true
	}
	seq := c.chunkSeq
	if len(c.vals) != c.srv.dim {
		c.srv.n.rejected.Add(1)
		mtr.rejected.Inc()
		n := len(c.vals)
		c.resetChunk()
		return c.reply(wire.Frame{Type: wire.Err, Seq: seq, Code: wire.CodeDim,
			Msg: fmt.Sprintf("chunked observation dim %d, want %d", n, c.srv.dim)})
	}
	// Rebuild the fragment views over the flat buffer and feed them
	// through the chunked ingest seam — equivalent to Observe of the
	// assembled vector, but exercising the same path a streaming
	// featurizer uses in-process.
	chunks := make([][]float64, 0, len(c.fragLens))
	off := 0
	for _, n := range c.fragLens {
		chunks = append(chunks, c.vals[off:off+n])
		off += n
	}
	at := c.chunkAt
	ok := c.dispatch(seq, c.srv.f.ObserveChunks(c.session, time.Duration(at), chunks...))
	c.resetChunk()
	return ok
}

func (c *conn) resetChunk() {
	c.chunkOpen = false
	c.vals = c.vals[:0]
	c.fragLens = c.fragLens[:0]
}

// snapshot serves the session's versioned gob snapshot in an ACK payload.
func (c *conn) snapshot(fr *wire.Frame) bool {
	var buf bytes.Buffer
	if err := c.srv.f.SnapshotSession(c.session, &buf); err != nil {
		return c.dispatch(fr.Seq, err)
	}
	c.srv.n.snapshotReqs.Add(1)
	mtr.snapshotReqs.Inc()
	if buf.Len() > wire.MaxData {
		return c.reply(wire.Frame{Type: wire.Err, Seq: fr.Seq, Code: wire.CodeInternal,
			Msg: fmt.Sprintf("snapshot %d bytes exceeds frame bound", buf.Len())})
	}
	return c.reply(wire.Frame{Type: wire.Ack, Seq: fr.Seq, Data: buf.Bytes()})
}

// dispatch maps a fleet ingest result onto the wire: nil → ACK,
// backpressure → NACK (retryable), unknown session → ERR (connection
// kept: the session may Reconnect), closed fleet → ERR and drop the
// connection.
func (c *conn) dispatch(seq uint64, err error) bool {
	switch {
	case err == nil:
		c.srv.n.accepted.Add(1)
		mtr.accepted.Inc()
		return c.reply(wire.Frame{Type: wire.Ack, Seq: seq})
	case errors.Is(err, fleet.ErrBackpressure):
		c.srv.n.nacked.Add(1)
		mtr.nacked.Inc()
		return c.reply(wire.Frame{Type: wire.Err, Seq: seq, Code: wire.CodeBackpressure,
			Msg: "shard ingress queue full"})
	case errors.Is(err, fleet.ErrUnknownSession):
		c.srv.n.rejected.Add(1)
		mtr.rejected.Inc()
		return c.reply(wire.Frame{Type: wire.Err, Seq: seq, Code: wire.CodeUnknownSession,
			Msg: truncMsg(err.Error())})
	case errors.Is(err, fleet.ErrClosed):
		c.reply(wire.Frame{Type: wire.Err, Seq: seq, Code: wire.CodeClosed, Msg: "fleet closed"})
		return false
	default:
		c.reply(wire.Frame{Type: wire.Err, Seq: seq, Code: wire.CodeInternal, Msg: truncMsg(err.Error())})
		return false
	}
}

func truncMsg(s string) string {
	if len(s) > wire.MaxMsg {
		return s[:wire.MaxMsg]
	}
	return s
}

package server

import "affectedge/internal/obs"

// metrics holds the package's nil-safe instrument handles, mirroring the
// Server.Counters accounting into an obs scope for the /metrics plane.
// Deliberately NOT wired by the affectedge.WireMetrics facade: pulling
// the serving layer into every binary's metric surface would drag
// net-facing concerns into offline tools — cmd/fleetload (and any other
// serving binary) calls server.WireMetrics explicitly.
type metrics struct {
	conns          *obs.Gauge   // currently open connections
	connsTotal     *obs.Counter // connections ever accepted
	hellos         *obs.Counter // authenticated connections
	framesIn       *obs.Counter // complete frames decoded off sockets
	framesOut      *obs.Counter // reply frames written
	accepted       *obs.Counter // observations the fleet accepted
	nacked         *obs.Counter // backpressure NACKs sent
	rejected       *obs.Counter // observations refused with a kept connection
	batchesIn      *obs.Counter // OBSERVE_BATCH frames dispatched
	batchObs       *obs.Counter // observations carried by OBSERVE_BATCH frames
	flushes        *obs.Counter // vectored reply flushes (one writev per flush)
	snapshotReqs   *obs.Counter // session snapshots served over TCP
	slowKills      *obs.Counter // connections killed for unread replies
	midFrame       *obs.Counter // peers gone with a partial frame buffered
	readErrors     *obs.Counter // connections ended by a read error
	writeErrors    *obs.Counter // connections ended by a write error/timeout
	protocolErrors *obs.Counter // malformed or out-of-protocol frames
}

var mtr metrics

// WireMetrics attaches the server package to an observability scope.
// Call before New; all handles are nil (and every method a no-op) until
// then, so unwired servers pay a single predictable branch per event.
func WireMetrics(s *obs.Scope) {
	mtr.conns = s.Gauge("conns")
	mtr.connsTotal = s.Counter("conns_total")
	mtr.hellos = s.Counter("hellos")
	mtr.framesIn = s.Counter("frames_in")
	mtr.framesOut = s.Counter("frames_out")
	mtr.accepted = s.Counter("accepted")
	mtr.nacked = s.Counter("nacked")
	mtr.rejected = s.Counter("rejected")
	mtr.batchesIn = s.Counter("batches_in")
	mtr.batchObs = s.Counter("batch_obs")
	mtr.flushes = s.Counter("flushes")
	mtr.snapshotReqs = s.Counter("snapshot_reqs")
	mtr.slowKills = s.Counter("slow_kills")
	mtr.midFrame = s.Counter("mid_frame_resets")
	mtr.readErrors = s.Counter("read_errors")
	mtr.writeErrors = s.Counter("write_errors")
	mtr.protocolErrors = s.Counter("protocol_errors")
}
